#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "text/synthetic.h"

namespace phrasemine::bench {

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

namespace {

BenchContext Build(const std::string& name, SyntheticCorpusOptions corpus_options,
                   QueryGenOptions query_options) {
  StopWatch watch;
  SyntheticCorpusGenerator generator(corpus_options);
  BenchContext ctx{name, MiningEngine::Build(generator.Generate()), {}};
  QuerySetGenerator qgen(query_options);
  ctx.queries = qgen.Generate(ctx.engine.dict(), ctx.engine.inverted(), ctx.engine.corpus().size());
  // Word-list construction is preprocessing (Section 4.2), not query time:
  // do it here so per-query measurements are clean.
  ctx.engine.EnsureWordListsFor(ctx.queries);
  std::fprintf(stderr,
               "[setup] %s: %zu docs, %zu phrases, %zu queries (%.1fs)\n",
               name.c_str(), ctx.engine.corpus().size(),
               ctx.engine.dict().size(), ctx.queries.size(),
               watch.ElapsedMillis() / 1000.0);
  return ctx;
}

}  // namespace

BenchContext BuildReuters() {
  SyntheticCorpusOptions corpus = SyntheticCorpusGenerator::ReutersLike();
  corpus.num_docs = EnvSize("PM_REUTERS_DOCS", corpus.num_docs);
  QueryGenOptions queries;
  queries.seed = 100;
  queries.num_queries = EnvSize("PM_REUTERS_QUERIES", 100);
  queries.num_six_word = 2;
  queries.num_five_word = 2;
  return Build("reuters-like", corpus, queries);
}

BenchContext BuildPubmed() {
  SyntheticCorpusOptions corpus =
      SyntheticCorpusGenerator::PubmedLike(EnvSize("PM_PUBMED_DOCS", 20000));
  QueryGenOptions queries;
  queries.seed = 52;
  queries.num_queries = EnvSize("PM_PUBMED_QUERIES", 52);
  queries.num_six_word = 2;
  queries.num_five_word = 2;
  return Build("pubmed-like", corpus, queries);
}

void PrintHeader(const std::string& title, const std::string& expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper shape: %s\n", expectation.c_str());
  std::printf("==============================================================\n");
}

}  // namespace phrasemine::bench
