// Reproduces Figures 7 & 8: in-memory running times of SMJ at various
// partial-list percentages against the exact GM baseline, for AND and OR
// queries on both datasets. The paper reports SMJ winning by 2-4 orders of
// magnitude, with GM's OR times far above its AND times.

#include <cstdio>

#include "bench_common.h"

using namespace phrasemine;
using namespace phrasemine::bench;

namespace {

void RunDataset(BenchContext& ctx) {
  std::printf("\n--- %s (avg ms per query, in-memory) ---\n", ctx.name.c_str());
  std::printf("%-14s %12s %12s\n", "method", "AND", "OR");
  for (double fraction : {0.1, 0.2, 0.5, 1.0}) {
    ctx.engine.SetSmjFraction(fraction);
    double and_ms = 0.0;
    double or_ms = 0.0;
    for (QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
      AggregateRun run =
          RunExperiment(ctx.engine, ctx.queries, op, Algorithm::kSmj,
                        MineOptions{.k = 5}, /*evaluate_quality=*/false);
      (op == QueryOperator::kAnd ? and_ms : or_ms) = run.avg_total_ms;
    }
    std::printf("SMJ-%3.0f%%       %12.4f %12.4f\n", fraction * 100, and_ms,
                or_ms);
  }
  double and_ms = 0.0;
  double or_ms = 0.0;
  for (QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
    AggregateRun run =
        RunExperiment(ctx.engine, ctx.queries, op, Algorithm::kGm,
                      MineOptions{.k = 5}, /*evaluate_quality=*/false);
    (op == QueryOperator::kAnd ? and_ms : or_ms) = run.avg_total_ms;
  }
  std::printf("GM (exact)     %12.4f %12.4f\n", and_ms, or_ms);
}

}  // namespace

int main() {
  PrintHeader(
      "Figures 7 & 8: running times, SMJ vs GM",
      "SMJ orders of magnitude faster than GM; GM's OR much slower than its "
      "AND (larger D'); SMJ cost grows with list percentage");
  BenchContext reuters = BuildReuters();
  RunDataset(reuters);
  BenchContext pubmed = BuildPubmed();
  RunDataset(pubmed);
  return 0;
}
