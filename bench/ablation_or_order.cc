// Ablation (Section 4.1.3): the OR score truncates the inclusion-exclusion
// expansion at the first-order term (Eq. 12). How much quality does keeping
// higher-order terms buy? Under the independence assumption the full
// expansion telescopes to 1 - prod(1 - P(qi|p)), so all three variants are
// computable from the same lists.

#include <cstdio>

#include "bench_common.h"

using namespace phrasemine;
using namespace phrasemine::bench;

namespace {

const char* OrderName(OrExpansionOrder order) {
  switch (order) {
    case OrExpansionOrder::kFirstOrder:
      return "first-order (Eq.12)";
    case OrExpansionOrder::kSecondOrder:
      return "second-order";
    case OrExpansionOrder::kFull:
      return "full expansion";
  }
  return "?";
}

void RunDataset(BenchContext& ctx) {
  std::printf("\n--- %s (OR queries, full lists) ---\n", ctx.name.c_str());
  std::printf("%-22s %8s %8s %12s %10s\n", "expansion", "NDCG", "MAP",
              "|est-true|", "avg ms");
  ctx.engine.SetSmjFraction(1.0);
  for (OrExpansionOrder order :
       {OrExpansionOrder::kFirstOrder, OrExpansionOrder::kSecondOrder,
        OrExpansionOrder::kFull}) {
    AggregateRun run = RunExperiment(
        ctx.engine, ctx.queries, QueryOperator::kOr, Algorithm::kSmj,
        MineOptions{.k = 5, .or_order = order}, /*evaluate_quality=*/true);
    std::printf("%-22s %8.3f %8.3f %12.4f %10.4f\n", OrderName(order),
                run.quality.ndcg, run.quality.map,
                run.mean_interestingness_diff, run.avg_total_ms);
  }
}

}  // namespace

int main() {
  PrintHeader(
      "Ablation: OR-score inclusion-exclusion cutoff (Section 4.1.3)",
      "first-order already accurate for ranking (justifying Eq. 12); higher "
      "orders mainly tighten the absolute interestingness estimate");
  BenchContext reuters = BuildReuters();
  RunDataset(reuters);
  BenchContext pubmed = BuildPubmed();
  RunDataset(pubmed);
  return 0;
}
