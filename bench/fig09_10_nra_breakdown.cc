// Reproduces Figures 9 & 10: break-up of the disk-based NRA response time
// into computational cost and (simulated) disk-access cost, for AND queries
// at increasing partial-list percentages. The paper finds disk access
// responsible for ~84-89% of the response time and both cost components
// tapering off at higher percentages thanks to pruning.

#include <cstdio>

#include "bench_common.h"

using namespace phrasemine;
using namespace phrasemine::bench;

namespace {

void RunDataset(BenchContext& ctx) {
  std::printf("\n--- %s (AND queries, avg ms per query) ---\n",
              ctx.name.c_str());
  std::printf("%-8s %10s %10s %10s %8s\n", "list%", "compute", "disk",
              "total", "disk%");
  double previous_total = 0.0;
  for (double fraction : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    AggregateRun run = RunExperiment(
        ctx.engine, ctx.queries, QueryOperator::kAnd, Algorithm::kNraDisk,
        MineOptions{.k = 5, .list_fraction = fraction},
        /*evaluate_quality=*/false);
    const double disk_share =
        run.avg_total_ms > 0 ? 100.0 * run.avg_disk_ms / run.avg_total_ms : 0;
    std::printf("%-8.0f %10.3f %10.3f %10.3f %7.1f%%", fraction * 100,
                run.avg_compute_ms, run.avg_disk_ms, run.avg_total_ms,
                disk_share);
    if (previous_total > 0) {
      std::printf("  (delta %+.3f)", run.avg_total_ms - previous_total);
    }
    std::printf("\n");
    previous_total = run.avg_total_ms;
  }
}

}  // namespace

int main() {
  PrintHeader(
      "Figures 9 & 10: NRA cost break-up, compute vs simulated disk",
      "disk cost dominates (~84-89%); per-step deltas shrink at higher "
      "percentages because pruning stops NRA early");
  BenchContext reuters = BuildReuters();
  RunDataset(reuters);
  BenchContext pubmed = BuildPubmed();
  RunDataset(pubmed);
  return 0;
}
