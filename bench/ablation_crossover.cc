// Ablation (Section 4.5 analysis claim): SMJ beats NRA for short (strongly
// truncated) lists because its per-entry work is cheaper, while NRA's
// pruning wins on long lists. The paper locates the in-memory crossover at
// ~35% lists for Pubmed and ~90% for Reuters. This bench sweeps the
// partial-list fraction and reports both methods' in-memory runtimes.

#include <cstdio>

#include "bench_common.h"

using namespace phrasemine;
using namespace phrasemine::bench;

namespace {

void RunDataset(BenchContext& ctx) {
  std::printf("\n--- %s (OR queries, avg ms per query, in-memory) ---\n",
              ctx.name.c_str());
  std::printf("%-8s %12s %12s %10s\n", "list%", "SMJ", "NRA", "winner");
  double crossover = -1.0;
  bool nra_was_losing = true;
  for (double fraction : {0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0}) {
    ctx.engine.SetSmjFraction(fraction);
    AggregateRun smj =
        RunExperiment(ctx.engine, ctx.queries, QueryOperator::kOr,
                      Algorithm::kSmj, MineOptions{.k = 5},
                      /*evaluate_quality=*/false);
    AggregateRun nra = RunExperiment(
        ctx.engine, ctx.queries, QueryOperator::kOr, Algorithm::kNra,
        MineOptions{.k = 5, .list_fraction = fraction, .nra_batch_size = 64},
        /*evaluate_quality=*/false);
    const bool nra_wins = nra.avg_total_ms < smj.avg_total_ms;
    if (nra_wins && nra_was_losing && crossover < 0) crossover = fraction;
    if (!nra_wins) nra_was_losing = true;
    std::printf("%-8.0f %12.4f %12.4f %10s\n", fraction * 100,
                smj.avg_total_ms, nra.avg_total_ms, nra_wins ? "NRA" : "SMJ");
  }
  if (crossover > 0) {
    std::printf("first NRA win at %.0f%% lists\n", crossover * 100);
  } else {
    std::printf("SMJ won at every measured fraction\n");
  }
}

}  // namespace

int main() {
  PrintHeader(
      "Ablation: NRA vs SMJ in-memory crossover over list fraction",
      "SMJ ahead at small fractions, NRA catches up as lists lengthen "
      "(paper: crossover ~35% on the large dataset, ~90% on the small one)");
  BenchContext reuters = BuildReuters();
  RunDataset(reuters);
  BenchContext pubmed = BuildPubmed();
  RunDataset(pubmed);
  return 0;
}
