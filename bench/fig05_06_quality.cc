// Reproduces Figures 5 & 6: result quality (Precision, MRR, MAP, NDCG) of
// the list-based approximation (SMJ and NRA give identical result sets)
// against the exact top-k, at 20% and 50% partial lists, for AND and OR
// queries, on both datasets.

#include <cstdio>

#include "bench_common.h"

using namespace phrasemine;
using namespace phrasemine::bench;

namespace {

void RunDataset(BenchContext& ctx) {
  std::printf("\n--- %s ---\n", ctx.name.c_str());
  std::printf("%-10s %10s %8s %8s %8s %8s\n", "config", "", "Prec", "MRR",
              "MAP", "NDCG");
  for (double fraction : {0.2, 0.5}) {
    ctx.engine.SetSmjFraction(fraction);
    for (QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
      AggregateRun run =
          RunExperiment(ctx.engine, ctx.queries, op, Algorithm::kSmj,
                        MineOptions{.k = 5}, /*evaluate_quality=*/true);
      std::printf("%3.0f-%-6s %10s %8.3f %8.3f %8.3f %8.3f\n", fraction * 100,
                  QueryOperatorName(op), "", run.quality.precision,
                  run.quality.mrr, run.quality.map, run.quality.ndcg);
    }
  }
}

}  // namespace

int main() {
  PrintHeader(
      "Figures 5 & 6: result quality vs exact top-5 (k=5)",
      "all measures >= ~0.9 even at 20% lists; OR >= AND; larger corpus "
      "(pubmed) more accurate than the smaller one (reuters)");
  BenchContext reuters = BuildReuters();
  RunDataset(reuters);
  BenchContext pubmed = BuildPubmed();
  RunDataset(pubmed);
  return 0;
}
