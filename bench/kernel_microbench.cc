// Hot-path kernel microbenchmark: the SoA galloping/block merge kernels
// against the scalar AoS reference merge, on synthetic id-ordered word
// lists, for AND and OR queries over skewed (1:100 short-vs-long) and
// uniform list-length mixes. Both paths run through the real SmjMiner (the
// scalar side via MineOptions::use_kernels = false), so the measured gap
// is the data-layout + galloping win, not harness differences, and the
// differential tests guarantee both produce bitwise-identical rankings.
//
// Acceptance target: >= 2x AND-query throughput on the skewed mix (the
// galloping intersection drives from the short list and skips most of the
// long ones; the scalar merge must consume every entry). Enforced when
// PM_KERNEL_ENFORCE=1 (the CI step sets it; the tiny smoke run does not) --
// exit 2 below target.
//
// Writes BENCH_kernels.json for the CI perf trajectory and the
// bench-regression gate.
//
// Knobs: PM_KERNEL_SHORT (short list entries, default 2000),
//        PM_KERNEL_LONG (long list entries, default 200000),
//        PM_KERNEL_MS (per-measurement wall budget, default 300).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/kernels.h"
#include "core/smj_miner.h"
#include "index/word_lists.h"
#include "phrase/phrase_dictionary.h"

namespace phrasemine::bench {
namespace {

/// Sorted unique synthetic list over a sparse id universe. `overlap`
/// entries are copied from `base` (when given) so AND intersections are
/// non-trivial.
SharedWordList MakeList(Rng& rng, std::size_t size, PhraseId universe,
                        const std::vector<ListEntry>* base,
                        std::size_t overlap) {
  std::vector<ListEntry> entries;
  entries.reserve(size + overlap);
  for (std::size_t i = 0; i < size; ++i) {
    entries.push_back(ListEntry{static_cast<PhraseId>(rng.NextBelow(universe)),
                                1.0 - rng.NextDouble()});
  }
  if (base != nullptr) {
    for (std::size_t i = 0; i < overlap && i < base->size(); ++i) {
      entries.push_back((*base)[rng.NextBelow(base->size())]);
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const ListEntry& a, const ListEntry& b) {
              return a.phrase < b.phrase;
            });
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const ListEntry& a, const ListEntry& b) {
                              return a.phrase == b.phrase;
                            }),
                entries.end());
  return std::make_shared<const std::vector<ListEntry>>(std::move(entries));
}

struct Case {
  std::string name;
  WordIdOrderedLists lists{1.0};
  Query query;
  double scalar_qps = 0.0;
  double kernel_qps = 0.0;
  double speedup = 0.0;
};

Case MakeCase(std::string name, Rng& rng, QueryOperator op,
              std::span<const std::size_t> sizes, PhraseId universe) {
  Case c;
  c.name = std::move(name);
  c.query.op = op;
  const std::vector<ListEntry>* anchor = nullptr;
  SharedWordList first;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    // Every later list absorbs a slice of the first so the AND join has
    // survivors to score (~half the short list).
    SharedWordList list = MakeList(rng, sizes[i], universe, anchor,
                                   anchor != nullptr ? sizes[0] / 2 : 0);
    if (i == 0) {
      first = list;
      anchor = first.get();
    }
    c.lists.Insert(static_cast<TermId>(i), std::move(list));
    c.query.terms.push_back(static_cast<TermId>(i));
  }
  return c;
}

/// Queries/second of one SmjMiner configuration, measured over a fixed
/// wall budget (first call excluded as warmup).
double MeasureQps(SmjMiner& miner, const Query& query,
                  const MineOptions& options, double budget_ms) {
  (void)miner.Mine(query, options);
  StopWatch watch;
  std::size_t iterations = 0;
  do {
    (void)miner.Mine(query, options);
    ++iterations;
  } while (watch.ElapsedMillis() < budget_ms);
  return 1000.0 * static_cast<double>(iterations) / watch.ElapsedMillis();
}

int Main() {
  PrintHeader("Kernel microbench: SoA galloping/block merges vs scalar SMJ",
              ">= 2x AND throughput on the skewed mix (galloping skips what "
              "the scalar merge must read); OR gains come from the SoA "
              "layout alone");

  const std::size_t short_len = EnvSize("PM_KERNEL_SHORT", 2000);
  const std::size_t long_len = EnvSize("PM_KERNEL_LONG", 200000);
  const double budget_ms =
      static_cast<double>(EnvSize("PM_KERNEL_MS", 300));
  const bool enforce = [] {
    const char* v = std::getenv("PM_KERNEL_ENFORCE");
    return v != nullptr && v[0] == '1';
  }();
  const auto universe =
      static_cast<PhraseId>(std::max<std::size_t>(4 * long_len, 1024));

  std::printf("short %zu, long %zu entries, %.0f ms per measurement, "
              "avx2 %s\n\n",
              short_len, long_len, budget_ms,
              kernels::HasAvx2() ? "yes" : "no");

  Rng rng(99);
  const std::size_t skewed_sizes[] = {short_len, long_len, long_len};
  const std::size_t uniform_sizes[] = {long_len / 2, long_len / 2,
                                       long_len / 2};
  std::vector<Case> cases;
  cases.push_back(MakeCase("and_skewed", rng, QueryOperator::kAnd,
                           skewed_sizes, universe));
  cases.push_back(MakeCase("and_uniform", rng, QueryOperator::kAnd,
                           uniform_sizes, universe));
  cases.push_back(MakeCase("or_skewed", rng, QueryOperator::kOr,
                           skewed_sizes, universe));
  cases.push_back(MakeCase("or_uniform", rng, QueryOperator::kOr,
                           uniform_sizes, universe));

  const PhraseDictionary dict;  // SMJ never consults it
  std::printf("%-12s %14s %14s %9s\n", "case", "scalar q/s", "kernel q/s",
              "speedup");
  double and_skewed_speedup = 0.0;
  double and_skewed_kernel_qps = 0.0;
  for (Case& c : cases) {
    SmjMiner miner(c.lists, dict);
    MineOptions scalar{.k = 10};
    scalar.use_kernels = false;
    MineOptions kernel{.k = 10};
    kernel.use_kernels = true;
    c.scalar_qps = MeasureQps(miner, c.query, scalar, budget_ms);
    c.kernel_qps = MeasureQps(miner, c.query, kernel, budget_ms);
    c.speedup = c.scalar_qps > 0.0 ? c.kernel_qps / c.scalar_qps : 0.0;
    if (c.name == "and_skewed") {
      and_skewed_speedup = c.speedup;
      and_skewed_kernel_qps = c.kernel_qps;
    }
    std::printf("%-12s %14.1f %14.1f %8.2fx\n", c.name.c_str(), c.scalar_qps,
                c.kernel_qps, c.speedup);
  }

  const bool meets_target = and_skewed_speedup >= 2.0;
  if (std::FILE* json = std::fopen("BENCH_kernels.json", "w")) {
    std::fprintf(json,
                 "{\n  \"kernel_and_skewed_qps\": %.1f,\n"
                 "  \"and_skewed_speedup\": %.2f,\n  \"avx2\": %s,\n"
                 "  \"cases\": [",
                 and_skewed_kernel_qps, and_skewed_speedup,
                 kernels::HasAvx2() ? "true" : "false");
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const Case& c = cases[i];
      std::fprintf(json,
                   "%s\n    {\"name\": \"%s\", \"scalar_qps\": %.1f, "
                   "\"kernel_qps\": %.1f, \"speedup\": %.2f}",
                   i == 0 ? "" : ",", c.name.c_str(), c.scalar_qps,
                   c.kernel_qps, c.speedup);
    }
    std::fprintf(json,
                 "\n  ],\n  \"target_enforced\": %s,\n"
                 "  \"meets_target\": %s\n}\n",
                 enforce ? "true" : "false", meets_target ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_kernels.json\n");
  }

  std::printf("AND skewed speedup: %.2fx %s\n", and_skewed_speedup,
              meets_target ? "(meets >=2x target)"
              : enforce    ? "(BELOW 2x target)"
                           : "(informational)");
  return enforce && !meets_target ? 2 : 0;
}

}  // namespace
}  // namespace phrasemine::bench

int main() { return phrasemine::bench::Main(); }
