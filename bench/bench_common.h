#ifndef PHRASEMINE_BENCH_BENCH_COMMON_H_
#define PHRASEMINE_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"

namespace phrasemine::bench {

/// One benchmark dataset: an engine over a synthetic corpus plus the
/// harvested query workload (term sets; the operator is chosen per
/// experiment, as in the paper).
struct BenchContext {
  std::string name;
  MiningEngine engine;
  std::vector<Query> queries;
};

/// Reuters-21578-shaped dataset with the paper's 100-query workload
/// (two 6-word, two 5-word, rest 2-4 words). Document count can be scaled
/// with the PM_REUTERS_DOCS environment variable (default 21578).
BenchContext BuildReuters();

/// Pubmed-shaped dataset with the paper's 52-query workload. The paper used
/// 655k abstracts; the default here is 20000 so the whole bench suite runs
/// in minutes -- scale up with PM_PUBMED_DOCS for closer absolute numbers
/// (relative shapes are stable across scales).
BenchContext BuildPubmed();

/// Prints the experiment banner: which paper table/figure this regenerates
/// and what shape the paper reports.
void PrintHeader(const std::string& title, const std::string& expectation);

/// Reads a positive integer environment variable with a default.
std::size_t EnvSize(const char* name, std::size_t fallback);

}  // namespace phrasemine::bench

#endif  // PHRASEMINE_BENCH_BENCH_COMMON_H_
