// Reproduces Table 5: word-list index sizes at 10/20/50% partial lists with
// the NDCG achieved at each size, per dataset. Sizes are reported three
// ways: measured over the query workload's lists at the paper's packed 12
// bytes/entry, the same workload at the resident sizeof(ListEntry) = 16
// bytes (the in-memory AoS figure -- the padded id used to be silently
// under-counted as 12), and extrapolated to the whole vocabulary at the
// packed rate exactly as Section 5.7 does (avg list size x vocabulary
// size).

#include <cstdio>

#include "bench_common.h"

using namespace phrasemine;
using namespace phrasemine::bench;

namespace {

std::string Human(double bytes) {
  char buf[64];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", bytes / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / 1e3);
  }
  return buf;
}

void RunDataset(BenchContext& ctx) {
  const WordScoreLists& lists = ctx.engine.word_lists();
  const double avg_list_bytes =
      lists.num_terms() == 0
          ? 0.0
          : static_cast<double>(lists.SizeBytes(1.0)) /
                static_cast<double>(lists.num_terms());
  const double vocab = static_cast<double>(ctx.engine.corpus().vocab().size());

  std::printf("\n--- %s (vocabulary %zu terms, avg full list %s packed, "
              "%zu B/entry resident) ---\n",
              ctx.name.c_str(), ctx.engine.corpus().vocab().size(),
              Human(avg_list_bytes).c_str(), kListEntryInMemoryBytes);
  std::printf("%-7s %14s %14s %16s %8s %8s\n", "list%", "packed(12B)",
              "in-mem(16B)", "extrapolated", "NDCG-AND", "NDCG-OR");
  for (double fraction : {0.1, 0.2, 0.5}) {
    ctx.engine.SetSmjFraction(fraction);
    double ndcg_and = 0.0;
    double ndcg_or = 0.0;
    for (QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
      AggregateRun run =
          RunExperiment(ctx.engine, ctx.queries, op, Algorithm::kSmj,
                        MineOptions{.k = 5}, /*evaluate_quality=*/true);
      (op == QueryOperator::kAnd ? ndcg_and : ndcg_or) = run.quality.ndcg;
    }
    std::printf(
        "%-7.0f %14s %14s %16s %8.3f %8.3f\n", fraction * 100,
        Human(static_cast<double>(lists.SizeBytes(fraction))).c_str(),
        Human(static_cast<double>(lists.InMemoryBytes(fraction))).c_str(),
        Human(avg_list_bytes * fraction * vocab).c_str(), ndcg_and, ndcg_or);
  }
}

}  // namespace

int main() {
  PrintHeader(
      "Table 5: index sizes vs accuracy (packed 12 B/entry; resident AoS "
      "lists pay sizeof(ListEntry) = 16 B)",
      "modest storage (tens-of-MB range for the small dataset, GB range for "
      "the large one at full vocabulary) achieves NDCG > 0.9 by 20% lists");
  BenchContext reuters = BuildReuters();
  RunDataset(reuters);
  BenchContext pubmed = BuildPubmed();
  RunDataset(pubmed);
  return 0;
}
