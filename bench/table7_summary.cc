// Reproduces Table 7: the experiments summary -- NDCG and in-memory runtime
// for the GM baseline and for NRA/SMJ at 20% and 50% lists, under AND and
// OR, on both datasets.

#include <cstdio>

#include "bench_common.h"

using namespace phrasemine;
using namespace phrasemine::bench;

namespace {

void Row(BenchContext& ctx, const char* method, Algorithm algorithm,
         double fraction) {
  double ndcg[2] = {1.0, 1.0};
  double ms[2] = {0.0, 0.0};
  if (fraction > 0) ctx.engine.SetSmjFraction(fraction);
  int i = 0;
  for (QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
    MineOptions options;
    options.k = 5;
    options.list_fraction = fraction > 0 ? fraction : 1.0;
    const bool quality = algorithm != Algorithm::kGm;  // GM is the reference
    AggregateRun run = RunExperiment(ctx.engine, ctx.queries, op, algorithm,
                                     options, quality);
    if (quality) ndcg[i] = run.quality.ndcg;
    ms[i] = run.avg_total_ms;
    ++i;
  }
  if (fraction > 0) {
    std::printf("%-6s %5.0f%% %9.3f %9.3f %12.4f %12.4f\n", method,
                fraction * 100, ndcg[0], ndcg[1], ms[0], ms[1]);
  } else {
    std::printf("%-6s %6s %9.3f %9.3f %12.4f %12.4f\n", method, "NA", ndcg[0],
                ndcg[1], ms[0], ms[1]);
  }
}

void RunDataset(BenchContext& ctx) {
  std::printf("\n--- %s ---\n", ctx.name.c_str());
  std::printf("%-6s %6s %9s %9s %12s %12s\n", "method", "list%", "NDCG-AND",
              "NDCG-OR", "ms-AND", "ms-OR");
  Row(ctx, "GM", Algorithm::kGm, 0);
  Row(ctx, "NRA", Algorithm::kNra, 0.2);
  Row(ctx, "NRA", Algorithm::kNra, 0.5);
  Row(ctx, "SMJ", Algorithm::kSmj, 0.2);
  Row(ctx, "SMJ", Algorithm::kSmj, 0.5);
}

}  // namespace

int main() {
  PrintHeader(
      "Table 7: summary -- quality and in-memory runtime",
      "GM exact (NDCG 1.0) but orders of magnitude slower; NRA/SMJ NDCG "
      "~0.9+ at 20% and ~0.93+ at 50%, with millisecond-range responses");
  BenchContext reuters = BuildReuters();
  RunDataset(reuters);
  BenchContext pubmed = BuildPubmed();
  RunDataset(pubmed);
  return 0;
}
