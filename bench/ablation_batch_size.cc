// Ablation (Section 4.5): the NRA pruning batch size b trades bookkeeping
// cost against pruning promptness. Small b prunes eagerly but runs the
// O(|C|) maintenance often; very large b lets prunable candidates linger.
// The paper's complexity analysis is O(l^2 r^2 / b).

#include <cstdio>

#include "bench_common.h"

using namespace phrasemine;
using namespace phrasemine::bench;

namespace {

void RunDataset(BenchContext& ctx) {
  std::printf("\n--- %s (OR queries, full lists) ---\n", ctx.name.c_str());
  std::printf("%-10s %12s %16s %14s\n", "batch b", "avg ms", "entries/query",
              "traversed%");
  for (std::size_t batch : {8u, 64u, 256u, 1024u, 8192u, 65536u}) {
    AggregateRun run = RunExperiment(
        ctx.engine, ctx.queries, QueryOperator::kOr, Algorithm::kNra,
        MineOptions{.k = 5, .nra_batch_size = batch},
        /*evaluate_quality=*/false);
    std::printf("%-10zu %12.4f %16.0f %13.1f%%\n", batch, run.avg_total_ms,
                run.avg_entries_read, 100.0 * run.avg_traversed_fraction);
  }
}

}  // namespace

int main() {
  PrintHeader(
      "Ablation: NRA pruning batch size b",
      "moderate b fastest; tiny b pays bookkeeping overhead, huge b delays "
      "early termination (more entries read)");
  BenchContext reuters = BuildReuters();
  RunDataset(reuters);
  BenchContext pubmed = BuildPubmed();
  RunDataset(pubmed);
  return 0;
}
