#ifndef PHRASEMINE_BENCH_WORKLOAD_GENERATOR_H_
#define PHRASEMINE_BENCH_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/query.h"
#include "text/vocabulary.h"
#include "workload/trace.h"

namespace phrasemine::workload {

/// One distinct query of the workload pool the generator draws from
/// (typically harvested via QuerySetGenerator and resolved to texts with
/// PoolFromQueries below).
struct WorkloadQuerySpec {
  QueryOperator op = QueryOperator::kAnd;
  std::size_t k = 5;
  std::vector<std::string> terms;
};

/// Generator knobs. Every field here is a documented knob of
/// docs/workloads.md; keep the two in sync.
struct WorkloadOptions {
  /// Seeds the single SplitMix64 stream behind popularity assignment,
  /// Zipf draws and interarrival sampling: same seed + same pool ->
  /// bitwise-identical trace (the determinism contract).
  uint64_t seed = 42;
  /// Events to generate.
  std::size_t num_queries = 600;
  /// Zipf exponent of the popularity distribution over the pool (rank 0
  /// is hottest). ~1.0 is natural-language shaped; higher is spikier.
  double zipf_s = 1.1;
  /// Events between hot-set rotations (0 = no drift): every cadence the
  /// rank->query assignment rotates by drift_rotate slots, so the
  /// hottest queries become different pool entries while the *shape* of
  /// the distribution stays fixed.
  std::size_t drift_cadence = 0;
  /// Pool slots the popularity ranks shift per drift step.
  std::size_t drift_rotate = 1;
  /// Open-loop arrival shape: every burst_period events, the first
  /// burst_len of them arrive at burst_height times the base rate
  /// (0 period = steady Poisson arrivals).
  std::size_t burst_period = 0;
  std::size_t burst_len = 0;
  double burst_height = 4.0;
  /// Mean of the exponential interarrival gap outside bursts.
  double mean_interarrival_us = 400.0;
};

/// Resolves harvested TermId queries to text-form pool specs (traces
/// store texts; see TraceQuery). Every query keeps its operator; `k` is
/// stamped uniformly.
std::vector<WorkloadQuerySpec> PoolFromQueries(std::span<const Query> queries,
                                               const Vocabulary& vocab,
                                               std::size_t k);

/// Generates a trace over `pool`: per event, draw a Zipf rank, map it
/// through the (seeded, drift-rotated) rank->pool permutation, and
/// advance the arrival clock by an exponential gap (compressed inside
/// bursts). Deterministic: a pure function of (pool, options), using
/// only the repo's cross-platform Rng -- never std::shuffle or
/// libstdc++ distributions, whose streams differ across platforms.
WorkloadTrace GenerateTrace(std::span<const WorkloadQuerySpec> pool,
                            const WorkloadOptions& options);

}  // namespace phrasemine::workload

#endif  // PHRASEMINE_BENCH_WORKLOAD_GENERATOR_H_
