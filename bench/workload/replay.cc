#include "workload/replay.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <mutex>
#include <thread>

#include "common/stopwatch.h"

namespace phrasemine::workload {

namespace {

/// Canonical result rendering for bitwise comparisons. Sharded replies
/// carry phrase texts (ids are shard-local); single-engine replies carry
/// global PhraseIds. %.17g prints doubles round-trip exact.
std::string SignatureOf(const ServiceReply& reply) {
  std::string sig;
  char buf[64];
  for (std::size_t i = 0; i < reply.result.phrases.size(); ++i) {
    const MinedPhrase& p = reply.result.phrases[i];
    if (i < reply.phrase_texts.size()) {
      sig += reply.phrase_texts[i];
    } else {
      sig += std::to_string(p.phrase);
    }
    std::snprintf(buf, sizeof(buf), ":%.17g;", p.score);
    sig += buf;
  }
  return sig;
}

double Percentile(std::vector<double> sorted_samples, double q) {
  if (sorted_samples.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_samples.size()));
  return sorted_samples[std::min(rank, sorted_samples.size() - 1)];
}

/// Resolves one trace event against the service's engine vocabulary.
std::optional<ServiceRequest> ResolveEvent(const PhraseService& service,
                                           const TraceQuery& event,
                                           const ReplayOptions& options) {
  std::string text;
  for (const std::string& term : event.terms) {
    if (!text.empty()) text += ' ';
    text += term;
  }
  Result<Query> parsed = service.engine().ParseQuery(text, event.op);
  if (!parsed.ok()) return std::nullopt;
  ServiceRequest request;
  request.query = std::move(parsed).value();
  request.options.k = event.k;
  request.algorithm = options.algorithm;
  return request;
}

void Finalize(ReplayResult* result, std::vector<double> latencies) {
  std::sort(latencies.begin(), latencies.end());
  result->p50_ms = Percentile(latencies, 0.50);
  result->p95_ms = Percentile(latencies, 0.95);
  result->p99_ms = Percentile(latencies, 0.99);
  if (result->wall_ms > 0.0) {
    result->qps = 1000.0 * static_cast<double>(result->queries -
                                               result->unresolved) /
                  result->wall_ms;
  }
}

ReplayResult ReplaySequential(PhraseService& service,
                              const WorkloadTrace& trace,
                              const ReplayOptions& options) {
  ReplayResult result;
  result.queries = trace.queries.size();
  result.signatures.reserve(trace.queries.size());
  std::vector<double> latencies;
  latencies.reserve(trace.queries.size());
  StopWatch watch;
  for (const TraceQuery& event : trace.queries) {
    std::optional<ServiceRequest> request =
        ResolveEvent(service, event, options);
    if (!request.has_value()) {
      ++result.unresolved;
      result.signatures.emplace_back("unresolved");
      continue;
    }
    const ServiceReply reply = service.MineSync(*request);
    latencies.push_back(reply.latency_ms);
    result.signatures.push_back(SignatureOf(reply));
  }
  result.wall_ms = watch.ElapsedMillis();
  Finalize(&result, std::move(latencies));
  return result;
}

ReplayResult ReplayPaced(PhraseService& service, const WorkloadTrace& trace,
                         const ReplayOptions& options) {
  using Clock = std::chrono::steady_clock;
  const double speed = options.speed > 0.0 ? options.speed : 1.0;
  const std::size_t n = trace.queries.size();

  ReplayResult result;
  result.queries = n;
  result.signatures.assign(n, std::string());
  std::vector<std::future<ServiceReply>> futures(n);
  std::vector<Clock::time_point> scheduled(n);
  std::vector<uint8_t> resolved(n, 0);
  std::vector<double> latencies;
  latencies.reserve(n);

  std::mutex mu;
  std::condition_variable cv;
  std::size_t submitted = 0;

  const Clock::time_point start = Clock::now();
  // Collector: waits futures in submission order and timestamps each
  // completion. With out-of-order completions across pool workers a
  // later-finished predecessor delays the observation of its successors,
  // so per-query sojourn is an upper bound -- fine for open-loop tail
  // reporting, and it keeps the harness free of completion hooks.
  std::thread collector([&] {
    for (std::size_t i = 0; i < n; ++i) {
      {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] { return submitted > i; });
      }
      if (!resolved[i]) {
        result.signatures[i] = "unresolved";
        continue;
      }
      const ServiceReply reply = futures[i].get();
      const Clock::time_point done = Clock::now();
      const double sojourn_ms =
          std::chrono::duration<double, std::milli>(done - scheduled[i])
              .count();
      latencies.push_back(std::max(sojourn_ms, 0.0));
      result.signatures[i] = SignatureOf(reply);
    }
  });

  for (std::size_t i = 0; i < n; ++i) {
    const auto offset = std::chrono::microseconds(static_cast<int64_t>(
        static_cast<double>(trace.queries[i].arrival_us) / speed));
    const Clock::time_point target = start + offset;
    std::this_thread::sleep_until(target);  // open loop: never waits on
                                            // completions, only the clock
    std::optional<ServiceRequest> request =
        ResolveEvent(service, trace.queries[i], options);
    if (request.has_value()) {
      scheduled[i] = target;
      futures[i] = service.Submit(std::move(*request));
      resolved[i] = 1;
    } else {
      ++result.unresolved;
    }
    {
      std::scoped_lock lock(mu);
      submitted = i + 1;
    }
    cv.notify_one();
  }
  collector.join();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  Finalize(&result, std::move(latencies));
  return result;
}

}  // namespace

ReplayResult ReplayTrace(PhraseService& service, const WorkloadTrace& trace,
                         const ReplayOptions& options) {
  return options.paced ? ReplayPaced(service, trace, options)
                       : ReplaySequential(service, trace, options);
}

}  // namespace phrasemine::workload
