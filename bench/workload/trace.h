#ifndef PHRASEMINE_BENCH_WORKLOAD_TRACE_H_
#define PHRASEMINE_BENCH_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/query.h"

namespace phrasemine::workload {

/// Schema version written into (and required from) every trace file.
/// Bump only with a reader that still accepts every older version it
/// claims to; goldens checked into the repository pin the format.
inline constexpr int kTraceFormatVersion = 1;

/// One query arrival of a recorded workload. Terms are stored as texts,
/// not TermIds: the trace stays replayable against any engine whose
/// vocabulary contains the words (ids are an engine-build artifact), and
/// the checked-in goldens stay human-readable.
struct TraceQuery {
  /// Scheduled arrival, microseconds from trace start (non-decreasing).
  uint64_t arrival_us = 0;
  QueryOperator op = QueryOperator::kAnd;
  /// Requested result depth (MineOptions::k).
  std::size_t k = 0;
  std::vector<std::string> terms;

  bool operator==(const TraceQuery&) const = default;
};

/// A deterministic, versioned query trace: the generator knobs that
/// produced it (provenance, echoed into the header) plus the fully
/// materialized arrival stream. The events are self-contained -- a
/// replayer never re-derives anything from the header, so a hand-edited
/// or externally recorded trace replays just as well.
struct WorkloadTrace {
  uint64_t seed = 0;
  double zipf_s = 0.0;
  std::size_t drift_cadence = 0;
  std::size_t drift_rotate = 0;
  std::size_t burst_period = 0;
  std::size_t burst_len = 0;
  double burst_height = 1.0;
  double mean_interarrival_us = 0.0;
  std::vector<TraceQuery> queries;

  bool operator==(const WorkloadTrace&) const = default;

  /// Renders the canonical line-based text form. Deterministic: equal
  /// traces serialize to identical bytes (fixed "%.6f" float rendering,
  /// LF line endings), which is what the golden tests compare.
  std::string Serialize() const;

  /// Parses Serialize()'s format. Rejects unknown magic/version, header
  /// keys, malformed events, and arrival-time regressions with
  /// InvalidArgument -- a trace that parses is replayable.
  static Result<WorkloadTrace> Parse(std::string_view text);

  /// Serialize() to / Parse() from a file.
  Status WriteFile(const std::string& path) const;
  static Result<WorkloadTrace> ReadFile(const std::string& path);
};

}  // namespace phrasemine::workload

#endif  // PHRASEMINE_BENCH_WORKLOAD_TRACE_H_
