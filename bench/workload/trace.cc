#include "workload/trace.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace phrasemine::workload {

namespace {

constexpr const char* kMagic = "phrasemine-trace";

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

/// Splits one line into whitespace-separated fields.
std::vector<std::string> Fields(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string field;
  while (in >> field) out.push_back(std::move(field));
  return out;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseF64(const std::string& s, double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

std::string WorkloadTrace::Serialize() const {
  std::string out;
  out.reserve(64 * (queries.size() + 10));
  out += kMagic;
  out += " v";
  out += std::to_string(kTraceFormatVersion);
  out += '\n';
  out += "seed " + std::to_string(seed) + "\n";
  out += "zipf_s " + FormatDouble(zipf_s) + "\n";
  out += "drift_cadence " + std::to_string(drift_cadence) + "\n";
  out += "drift_rotate " + std::to_string(drift_rotate) + "\n";
  out += "burst_period " + std::to_string(burst_period) + "\n";
  out += "burst_len " + std::to_string(burst_len) + "\n";
  out += "burst_height " + FormatDouble(burst_height) + "\n";
  out += "mean_interarrival_us " + FormatDouble(mean_interarrival_us) + "\n";
  out += "queries " + std::to_string(queries.size()) + "\n";
  for (const TraceQuery& q : queries) {
    out += "q ";
    out += std::to_string(q.arrival_us);
    out += q.op == QueryOperator::kAnd ? " AND " : " OR ";
    out += std::to_string(q.k);
    for (const std::string& term : q.terms) {
      out += ' ';
      out += term;
    }
    out += '\n';
  }
  out += "end\n";
  return out;
}

Result<WorkloadTrace> WorkloadTrace::Parse(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty trace");
  }
  {
    const std::vector<std::string> head = Fields(line);
    if (head.size() != 2 || head[0] != kMagic) {
      return Status::InvalidArgument("not a phrasemine trace: '" + line + "'");
    }
    const std::string want = "v" + std::to_string(kTraceFormatVersion);
    if (head[1] != want) {
      return Status::InvalidArgument("unsupported trace version " + head[1] +
                                     " (reader speaks " + want + ")");
    }
  }

  WorkloadTrace trace;
  uint64_t declared_queries = 0;
  bool saw_queries = false;
  // Header: fixed "key value" lines until the declared query count.
  while (!saw_queries) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("trace header truncated");
    }
    const std::vector<std::string> kv = Fields(line);
    if (kv.size() != 2) {
      return Status::InvalidArgument("malformed header line: '" + line + "'");
    }
    const std::string& key = kv[0];
    const std::string& value = kv[1];
    bool ok = true;
    uint64_t u = 0;
    if (key == "seed") {
      ok = ParseU64(value, &trace.seed);
    } else if (key == "zipf_s") {
      ok = ParseF64(value, &trace.zipf_s);
    } else if (key == "drift_cadence") {
      ok = ParseU64(value, &u), trace.drift_cadence = u;
    } else if (key == "drift_rotate") {
      ok = ParseU64(value, &u), trace.drift_rotate = u;
    } else if (key == "burst_period") {
      ok = ParseU64(value, &u), trace.burst_period = u;
    } else if (key == "burst_len") {
      ok = ParseU64(value, &u), trace.burst_len = u;
    } else if (key == "burst_height") {
      ok = ParseF64(value, &trace.burst_height);
    } else if (key == "mean_interarrival_us") {
      ok = ParseF64(value, &trace.mean_interarrival_us);
    } else if (key == "queries") {
      ok = ParseU64(value, &declared_queries);
      saw_queries = true;
    } else {
      return Status::InvalidArgument("unknown header key '" + key + "'");
    }
    if (!ok) {
      return Status::InvalidArgument("bad header value: '" + line + "'");
    }
  }

  trace.queries.reserve(declared_queries);
  uint64_t last_arrival = 0;
  for (uint64_t i = 0; i < declared_queries; ++i) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("trace events truncated");
    }
    const std::vector<std::string> f = Fields(line);
    // "q <arrival_us> <AND|OR> <k> <term>..." with at least one term.
    if (f.size() < 5 || f[0] != "q") {
      return Status::InvalidArgument("malformed event: '" + line + "'");
    }
    TraceQuery q;
    uint64_t k = 0;
    if (!ParseU64(f[1], &q.arrival_us) || !ParseU64(f[3], &k)) {
      return Status::InvalidArgument("malformed event numbers: '" + line +
                                     "'");
    }
    q.k = k;
    if (f[2] == "AND") {
      q.op = QueryOperator::kAnd;
    } else if (f[2] == "OR") {
      q.op = QueryOperator::kOr;
    } else {
      return Status::InvalidArgument("unknown operator '" + f[2] + "'");
    }
    if (q.arrival_us < last_arrival) {
      return Status::InvalidArgument("arrival times must be non-decreasing");
    }
    last_arrival = q.arrival_us;
    q.terms.assign(f.begin() + 4, f.end());
    trace.queries.push_back(std::move(q));
  }
  if (!std::getline(in, line) || Fields(line) != std::vector<std::string>{
                                                     "end"}) {
    return Status::InvalidArgument("missing 'end' trailer");
  }
  return trace;
}

Status WorkloadTrace::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  const std::string text = Serialize();
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<WorkloadTrace> WorkloadTrace::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return Status::IOError("read failed: " + path);
  return Parse(buffer.str());
}

}  // namespace phrasemine::workload
