#ifndef PHRASEMINE_BENCH_WORKLOAD_REPLAY_H_
#define PHRASEMINE_BENCH_WORKLOAD_REPLAY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "service/service.h"
#include "workload/trace.h"

namespace phrasemine::workload {

/// Replay knobs.
struct ReplayOptions {
  /// Forces every query down one algorithm; nullopt lets the service's
  /// cost planner choose per query.
  std::optional<Algorithm> algorithm;
  /// false (default): closed-loop sequential replay -- each query runs
  /// to completion on the calling thread before the next starts, so
  /// qps measures service capacity and the latency percentiles are
  /// per-query execution time. true: open-loop paced replay -- queries
  /// are submitted at their trace arrival times (scaled by `speed`)
  /// regardless of completions, and latency is measured from the
  /// *scheduled* arrival to observed completion, so queue delay under
  /// bursts is included (the tail-realism mode).
  bool paced = false;
  /// Paced mode: arrival times are divided by this (2.0 = replay twice
  /// as fast as recorded).
  double speed = 1.0;
};

/// What one replay measured. `signatures` is the bitwise determinism
/// surface: one canonical "<phrase>:<score>;..." rendering per trace
/// event, in trace order, with scores printed round-trip exact (%.17g).
/// Two replays of the same trace against equivalently-built services
/// must produce identical vectors (tested), and re-placement must never
/// change them (placement moves cost, not results).
struct ReplayResult {
  std::size_t queries = 0;
  /// Events whose terms the engine's vocabulary could not resolve; they
  /// contribute an "unresolved" signature and no latency sample.
  std::size_t unresolved = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::vector<std::string> signatures;
};

/// Replays `trace` against `service` (see ReplayOptions for the two
/// pacing modes). The caller owns service configuration -- notably,
/// measuring placement effects needs the result cache off, or repeats
/// of a hot query are absorbed before they touch the disk tier.
ReplayResult ReplayTrace(PhraseService& service, const WorkloadTrace& trace,
                         const ReplayOptions& options = {});

}  // namespace phrasemine::workload

#endif  // PHRASEMINE_BENCH_WORKLOAD_REPLAY_H_
