#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace phrasemine::workload {

std::vector<WorkloadQuerySpec> PoolFromQueries(std::span<const Query> queries,
                                               const Vocabulary& vocab,
                                               std::size_t k) {
  std::vector<WorkloadQuerySpec> pool;
  pool.reserve(queries.size());
  for (const Query& q : queries) {
    WorkloadQuerySpec spec;
    spec.op = q.op;
    spec.k = k;
    spec.terms.reserve(q.terms.size());
    for (TermId t : q.terms) spec.terms.push_back(vocab.TermText(t));
    pool.push_back(std::move(spec));
  }
  return pool;
}

WorkloadTrace GenerateTrace(std::span<const WorkloadQuerySpec> pool,
                            const WorkloadOptions& options) {
  PM_CHECK_MSG(!pool.empty(), "workload pool must not be empty");
  WorkloadTrace trace;
  trace.seed = options.seed;
  trace.zipf_s = options.zipf_s;
  trace.drift_cadence = options.drift_cadence;
  trace.drift_rotate = options.drift_rotate;
  trace.burst_period = options.burst_period;
  trace.burst_len = options.burst_len;
  trace.burst_height = options.burst_height;
  trace.mean_interarrival_us = options.mean_interarrival_us;

  Rng rng(options.seed);
  // rank -> pool index. Seeded Fisher-Yates decorrelates popularity from
  // pool order (harvest order correlates with term df, and the placement
  // differential should measure feedback vs static df, not a lucky
  // alignment of the two).
  std::vector<std::size_t> perm(pool.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.NextBelow(i)]);
  }

  const ZipfSampler zipf(pool.size(), options.zipf_s);
  double arrival_us = 0.0;
  trace.queries.reserve(options.num_queries);
  for (std::size_t i = 0; i < options.num_queries; ++i) {
    if (options.drift_cadence > 0 && i > 0 &&
        i % options.drift_cadence == 0) {
      // Hot-set drift: rotate the rank->query assignment so the head of
      // the Zipf lands on different pool entries each phase.
      const std::size_t shift = options.drift_rotate % perm.size();
      std::rotate(perm.begin(), perm.begin() + shift, perm.end());
    }
    double mean = options.mean_interarrival_us;
    if (options.burst_period > 0 &&
        i % options.burst_period < options.burst_len &&
        options.burst_height > 0.0) {
      mean /= options.burst_height;  // inside a burst: compressed gaps
    }
    // Exponential interarrival via inverse CDF; NextDouble() < 1 keeps
    // the log argument positive.
    arrival_us += -mean * std::log(1.0 - rng.NextDouble());

    const WorkloadQuerySpec& spec = pool[perm[zipf.Sample(rng)]];
    TraceQuery q;
    q.arrival_us = static_cast<uint64_t>(arrival_us);
    q.op = spec.op;
    q.k = spec.k;
    q.terms = spec.terms;
    trace.queries.push_back(std::move(q));
  }
  return trace;
}

}  // namespace phrasemine::workload
