// Sharded mining throughput: uncached scatter-gather mining through
// ShardedEngine at 1/2/4/8 shards against the serial monolithic
// MiningEngine::Mine baseline, on the same harvested query workload. No
// result caches anywhere -- every query recomputes, so the speedup is
// pure partition-parallelism (per-shard scans are 1/N the size and run
// concurrently on the shard pool) minus the merge overhead.
//
// Acceptance target: >= 2x Exact mining throughput at 4 shards over the
// 1-shard configuration -- the partition-parallelism claim, isolated
// from the constant merge overhead both configurations pay (the
// monolithic baseline is reported alongside for the absolute cost of
// the scatter-gather machinery). The target needs >= 4 hardware threads
// to be meaningful; on smaller machines the run is informational
// (reported in the JSON, not enforced).
//
// Writes BENCH_shard.json for the CI perf trajectory and the
// bench-regression gate.
//
// Knobs: PM_SHARD_DOCS (corpus size, default 4000),
//        PM_SHARD_QUERIES (distinct queries, default 30),
//        PM_SHARD_PASSES (workload repetitions, default 3).

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/engine.h"
#include "eval/query_gen.h"
#include "shard/sharded_engine.h"
#include "text/synthetic.h"

namespace phrasemine::bench {
namespace {

Corpus MakeCorpus(std::size_t num_docs) {
  SyntheticCorpusOptions options = SyntheticCorpusGenerator::ReutersLike();
  options.num_docs = num_docs;
  SyntheticCorpusGenerator generator(options);
  return generator.Generate();
}

struct Row {
  std::size_t shards = 0;
  double exact_qps = 0.0;
  double exact_speedup = 0.0;
  double smj_qps = 0.0;
  double smj_speedup = 0.0;
  // Threshold-exchange accounting over the SMJ AND+OR workload: fill-round
  // support slots with the exchange off vs on, and candidates pruned.
  std::size_t fill_slots_off = 0;
  std::size_t fill_slots_on = 0;
  uint64_t pruned = 0;
};

int Main() {
  PrintHeader("Sharded engine scaling: scatter-gather vs monolithic mining",
              ">= 2x Exact mining throughput at 4 shards on >= 4 hardware "
              "threads; SMJ merge stays exact (verified per run)");

  const std::size_t num_docs = EnvSize("PM_SHARD_DOCS", 4000);
  const std::size_t num_queries = EnvSize("PM_SHARD_QUERIES", 30);
  const std::size_t passes = EnvSize("PM_SHARD_PASSES", 3);
  const unsigned hw_threads = std::thread::hardware_concurrency();

  std::printf("corpus: %zu docs, %zu distinct queries x %zu passes, "
              "%u hardware threads\n\n",
              num_docs, num_queries, passes, hw_threads);

  MiningEngine mono = MiningEngine::Build(MakeCorpus(num_docs));

  QueryGenOptions gen_options;
  gen_options.num_queries = num_queries;
  gen_options.min_term_df = 8;
  gen_options.min_pairwise_codf = 3;
  gen_options.min_and_matches = 3;
  std::vector<Query> queries = QuerySetGenerator(gen_options).Generate(
      mono.dict(), mono.inverted(), mono.corpus().size());
  if (queries.empty()) {
    std::printf("no usable queries harvested; corpus too small\n");
    return 1;
  }
  // OR queries: union sub-collections are the heavy-mining case sharding
  // exists for (AND sub-collections on this workload fit in microseconds
  // monolithically, where fan-out overhead is all that is measured).
  queries = WithOperator(std::move(queries), QueryOperator::kOr);
  std::printf("harvested %zu queries\n", queries.size());
  mono.EnsureWordListsFor(queries);  // SMJ preprocessing, excluded from timing
  const std::size_t total = queries.size() * passes;

  // --- Serial monolithic baselines -----------------------------------------
  auto time_mono = [&](Algorithm algorithm) {
    StopWatch watch;
    for (std::size_t p = 0; p < passes; ++p) {
      for (const Query& q : queries) {
        (void)mono.Mine(q, algorithm, MineOptions{.k = 5});
      }
    }
    return 1000.0 * static_cast<double>(total) / watch.ElapsedMillis();
  };
  (void)mono.Mine(queries.front(), Algorithm::kSmj, MineOptions{.k = 5});
  const double mono_exact_qps = time_mono(Algorithm::kExact);
  const double mono_smj_qps = time_mono(Algorithm::kSmj);
  std::printf("\nmonolithic serial: Exact %8.1f q/s, SMJ %8.1f q/s\n\n",
              mono_exact_qps, mono_smj_qps);

  // --- Sharded sweep ---------------------------------------------------------
  std::printf("%8s %12s %9s %12s %9s %10s\n", "shards", "Exact q/s",
              "speedup", "SMJ q/s", "speedup", "verified");
  std::vector<Row> sweep;
  double speedup_at_4 = 0.0;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    ShardedEngineOptions options;
    options.num_shards = shards;
    ShardedEngine sharded = ShardedEngine::Build(MakeCorpus(num_docs),
                                                 options);
    // Warm the per-shard word lists (preprocessing, like the baseline).
    for (const Query& q : queries) {
      (void)sharded.Mine(q, Algorithm::kSmj, MineOptions{.k = 1});
    }
    // Differential sanity: the exhaustive merge must reproduce the
    // monolithic score sequence (the tests prove set equality; here we
    // cheaply re-verify per run so the bench can't drift silently).
    std::size_t verified = 0;
    for (const Query& q : queries) {
      const MineResult m = mono.Mine(q, Algorithm::kSmj, MineOptions{.k = 5});
      const ShardedMineResult s =
          sharded.Mine(q, Algorithm::kSmj, MineOptions{.k = 5});
      if (m.phrases.size() != s.result.phrases.size()) continue;
      bool equal = true;
      for (std::size_t i = 0; i < m.phrases.size(); ++i) {
        equal &= m.phrases[i].score == s.result.phrases[i].score;
      }
      verified += equal;
    }

    Row row;
    row.shards = shards;
    {
      StopWatch watch;
      for (std::size_t p = 0; p < passes; ++p) {
        for (const Query& q : queries) {
          (void)sharded.Mine(q, Algorithm::kExact, MineOptions{.k = 5});
        }
      }
      row.exact_qps = 1000.0 * static_cast<double>(total) /
                      watch.ElapsedMillis();
    }
    {
      StopWatch watch;
      for (std::size_t p = 0; p < passes; ++p) {
        for (const Query& q : queries) {
          (void)sharded.Mine(q, Algorithm::kSmj, MineOptions{.k = 5});
        }
      }
      row.smj_qps = 1000.0 * static_cast<double>(total) /
                    watch.ElapsedMillis();
    }
    // Threshold-exchange savings: the same SMJ workload (AND and OR
    // operators) with the exchange off, then on. Results are provably
    // identical either way; what changes is how many (shard, candidate)
    // support slots the fill round still has to compute.
    {
      std::vector<Query> both = queries;
      for (Query q : WithOperator(queries, QueryOperator::kAnd)) {
        both.push_back(std::move(q));
      }
      sharded.SetThresholdExchange(false);
      for (const Query& q : both) {
        const ShardedMineResult r5 =
            sharded.Mine(q, Algorithm::kSmj, MineOptions{.k = 5});
        row.fill_slots_off += r5.fill_slots;
      }
      sharded.SetThresholdExchange(true);
      for (const Query& q : both) {
        const ShardedMineResult r5 =
            sharded.Mine(q, Algorithm::kSmj, MineOptions{.k = 5});
        row.fill_slots_on += r5.fill_slots;
        row.pruned += r5.result.candidates_pruned;
      }
    }
    // Speedups are relative to the 1-shard row: partition parallelism,
    // isolated from the constant merge overhead both setups pay.
    row.exact_speedup =
        sweep.empty() ? 1.0 : row.exact_qps / sweep.front().exact_qps;
    row.smj_speedup =
        sweep.empty() ? 1.0 : row.smj_qps / sweep.front().smj_qps;
    if (shards == 4) speedup_at_4 = row.exact_speedup;
    sweep.push_back(row);
    std::printf("%8zu %12.1f %8.2fx %12.1f %8.2fx %7zu/%zu\n", shards,
                row.exact_qps, row.exact_speedup, row.smj_qps,
                row.smj_speedup, verified, queries.size());
    if (verified != queries.size()) {
      std::printf("DIFFERENTIAL FAILURE: sharded SMJ diverged from "
                  "monolithic scores\n");
      return 3;
    }
  }

  // --- Threshold-exchange savings -------------------------------------------
  std::printf("\nthreshold exchange (SMJ AND+OR workload):\n"
              "%8s %15s %15s %9s %9s\n", "shards", "fill slots off",
              "fill slots on", "saved", "pruned");
  for (const Row& row : sweep) {
    const double saved =
        row.fill_slots_off == 0
            ? 0.0
            : 100.0 *
                  static_cast<double>(row.fill_slots_off - row.fill_slots_on) /
                  static_cast<double>(row.fill_slots_off);
    std::printf("%8zu %15zu %15zu %8.1f%% %9llu\n", row.shards,
                row.fill_slots_off, row.fill_slots_on, saved,
                static_cast<unsigned long long>(row.pruned));
  }

  const bool enough_hw = hw_threads >= 4;
  const bool meets_target = speedup_at_4 >= 2.0;

  // --- JSON report -----------------------------------------------------------
  if (std::FILE* json = std::fopen("BENCH_shard.json", "w")) {
    std::fprintf(json,
                 "{\n  \"mono_exact_qps\": %.1f,\n  \"mono_smj_qps\": %.1f,\n"
                 "  \"hw_threads\": %u,\n  \"sweep\": [",
                 mono_exact_qps, mono_smj_qps, hw_threads);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const Row& row = sweep[i];
      std::fprintf(json,
                   "%s\n    {\"shards\": %zu, \"exact_qps\": %.1f, "
                   "\"exact_speedup\": %.2f, \"smj_qps\": %.1f, "
                   "\"smj_speedup\": %.2f, \"fill_slots_off\": %zu, "
                   "\"fill_slots_on\": %zu, \"pruned\": %llu}",
                   i == 0 ? "" : ",", row.shards, row.exact_qps,
                   row.exact_speedup, row.smj_qps, row.smj_speedup,
                   row.fill_slots_off, row.fill_slots_on,
                   static_cast<unsigned long long>(row.pruned));
    }
    std::fprintf(json,
                 "\n  ],\n  \"speedup_at_4\": %.2f,\n"
                 "  \"target_enforced\": %s,\n  \"meets_target\": %s\n}\n",
                 speedup_at_4, enough_hw ? "true" : "false",
                 meets_target ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_shard.json\n");
  }

  std::printf("Exact speedup at 4 shards: %.2fx %s\n", speedup_at_4,
              !enough_hw ? "(informational: < 4 hardware threads)"
              : meets_target ? "(meets >=2x target)"
                             : "(BELOW 2x target)");
  if (!enough_hw) return 0;
  return meets_target ? 0 : 2;
}

}  // namespace
}  // namespace phrasemine::bench

int main() { return phrasemine::bench::Main(); }
