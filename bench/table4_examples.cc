// Reproduces Table 4: sample top-5 result phrases for an AND query on the
// pubmed-like dataset and an OR query on the reuters-like dataset. The
// paper's qualitative observation: results are strongly correlated with the
// query words but often share few or no words with the query itself.

#include <cstdio>
#include <unordered_set>

#include "bench_common.h"

using namespace phrasemine;
using namespace phrasemine::bench;

namespace {

void ShowQuery(BenchContext& ctx, const Query& query) {
  std::printf("\n%s %s query: %s\n", ctx.name.c_str(),
              QueryOperatorName(query.op),
              query.ToString(ctx.engine.corpus().vocab()).c_str());
  MineResult result = ctx.engine.Mine(query, Algorithm::kSmj,
                                      MineOptions{.k = 5});
  std::unordered_set<TermId> query_terms(query.terms.begin(),
                                         query.terms.end());
  for (const MinedPhrase& p : result.phrases) {
    // Count lexical overlap with the query (the paper's observation).
    std::size_t overlap = 0;
    for (TermId t : ctx.engine.dict().info(p.phrase).tokens) {
      if (query_terms.contains(t)) ++overlap;
    }
    std::printf("  %-44s est=%.3f overlap=%zu/%zu words\n",
                ctx.engine.PhraseText(p.phrase).c_str(), p.interestingness,
                overlap, ctx.engine.dict().info(p.phrase).tokens.size());
  }
}

}  // namespace

int main() {
  PrintHeader(
      "Table 4: sample top-5 interesting phrases",
      "results correlate with the query topic; several top phrases share "
      "little or no vocabulary with the query words themselves");

  BenchContext pubmed = BuildPubmed();
  // The paper's example is a 3-word AND query; take the first such query.
  for (const Query& base : pubmed.queries) {
    if (base.terms.size() == 3) {
      Query q = base;
      q.op = QueryOperator::kAnd;
      ShowQuery(pubmed, q);
      break;
    }
  }

  BenchContext reuters = BuildReuters();
  // The paper's example is a 2-word OR query.
  for (const Query& base : reuters.queries) {
    if (base.terms.size() == 2) {
      Query q = base;
      q.op = QueryOperator::kOr;
      ShowQuery(reuters, q);
      break;
    }
  }
  return 0;
}
