// Reproduces Figure 11: average fraction of the (full) word lists NRA
// traverses before its stopping condition fires, per dataset and operator.
// The paper reports ~27% for Pubmed and ~30%+ for Reuters, similar across
// AND and OR.

#include <cstdio>

#include "bench_common.h"

using namespace phrasemine;
using namespace phrasemine::bench;

namespace {

void RunDataset(BenchContext& ctx) {
  for (QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
    AggregateRun run = RunExperiment(
        ctx.engine, ctx.queries, op, Algorithm::kNra,
        MineOptions{.k = 5, .nra_batch_size = 64},
        /*evaluate_quality=*/false);
    std::printf("%-14s %-4s %10.1f%% %14.0f\n", ctx.name.c_str(),
                QueryOperatorName(op), 100.0 * run.avg_traversed_fraction,
                run.avg_entries_read);
  }
}

}  // namespace

int main() {
  PrintHeader(
      "Figure 11: percentage of lists traversed by NRA before stopping",
      "well under 100% (paper: ~27% pubmed, ~31% reuters); AND and OR "
      "similar within a dataset");
  std::printf("%-14s %-4s %11s %14s\n", "dataset", "op", "traversed",
              "entries/query");
  BenchContext reuters = BuildReuters();
  RunDataset(reuters);
  BenchContext pubmed = BuildPubmed();
  RunDataset(pubmed);
  return 0;
}
