// Trace-driven workload replay: feedback placement vs static df.
//
// Generates (or loads, PM_WORKLOAD_TRACE) a Zipfian trace with hot-set
// drift over a pool of harvested queries, persists the engine to the
// single-file index format, and replays the identical trace against two
// cold mmap-backed services forced down kNraDisk with the result cache
// off:
//
//   static   -- resident sets placed by the default df-descending
//               hotness order, never re-derived.
//   feedback -- the service re-derives placement from the per-term
//               query counters every PM_WORKLOAD_REFRESH served queries
//               (PhraseService::RefreshPlacement), so the resident
//               prefix tracks what the trace actually asks for, drift
//               included.
//
// Every kNraDisk mine resets the mapped device's touch state, so each
// query pays full first-touch I/O for its spilled lists: the measured
// block counts are a deterministic, per-placement quantity, and the
// bench's differential target is that feedback touches strictly fewer
// blocks than static on the same trace. Like the disk bench's 2x
// target, the differential needs enough trace mass per placement phase
// to be meaningful, so it is enforced -- exit 2 -- only when
// PM_WORKLOAD_ENFORCE=1 (the dedicated CI step); tiny smoke runs report
// it informationally.
//
// Correctness is enforced at every scale (exit 3): replaying the trace
// twice against the static service must produce bitwise-identical
// result signatures (the determinism contract), and the feedback
// service's signatures must equal the static service's (placement moves
// cost, never results).
//
// The headline columns for the regression gate are the feedback phase's
// sequential-replay qps and p50/p95/p99 execution latency; a paced
// open-loop replay (arrivals at trace timestamps, queue delay included
// in the sojourn tail) is reported informationally.
//
// Writes BENCH_workload.json.
//
// Knobs: PM_WORKLOAD_DOCS    corpus size          (default 4000)
//        PM_WORKLOAD_POOL    distinct queries     (default 32)
//        PM_WORKLOAD_EVENTS  trace length         (default 600)
//        PM_WORKLOAD_ZIPF_S  popularity exponent  (default 1.2)
//        PM_WORKLOAD_DRIFT   events per hot-set rotation (default events/4)
//        PM_WORKLOAD_REFRESH feedback cadence     (default drift/2)
//        PM_WORKLOAD_RESIDENT percent of list bytes pinned (default 50)
//        PM_WORKLOAD_PAGE    device block bytes   (default 1024)
//        PM_WORKLOAD_TRACE   replay this trace file instead of generating
//        PM_WORKLOAD_ENFORCE 1 = exit 2 unless feedback beats static

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "eval/query_gen.h"
#include "service/service.h"
#include "text/synthetic.h"
#include "workload/generator.h"
#include "workload/replay.h"
#include "workload/trace.h"

namespace phrasemine::bench {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end != value && parsed > 0.0 ? parsed : fallback;
}

Corpus MakeCorpus(std::size_t num_docs) {
  SyntheticCorpusOptions options = SyntheticCorpusGenerator::ReutersLike();
  options.num_docs = num_docs;
  SyntheticCorpusGenerator generator(options);
  return generator.Generate();
}

void PrintPhase(const char* name, const workload::ReplayResult& r,
                uint64_t blocks) {
  std::printf("%9s: %5zu queries (%zu unresolved)  %8.1f q/s  "
              "p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  %llu blocks\n",
              name, r.queries, r.unresolved, r.qps, r.p50_ms, r.p95_ms,
              r.p99_ms, static_cast<unsigned long long>(blocks));
}

int Main() {
  PrintHeader("Trace-driven workload replay: feedback placement vs static df",
              "feedback placement touches strictly fewer first-touch blocks "
              "than static df on the same Zipf+drift trace; results bitwise "
              "identical across placements and replays (verified per run)");

  const std::size_t num_docs = EnvSize("PM_WORKLOAD_DOCS", 4000);
  const std::size_t pool_size = EnvSize("PM_WORKLOAD_POOL", 32);
  const std::size_t num_events = EnvSize("PM_WORKLOAD_EVENTS", 600);
  const double zipf_s = EnvDouble("PM_WORKLOAD_ZIPF_S", 1.2);
  const std::size_t drift = EnvSize("PM_WORKLOAD_DRIFT", num_events / 4);
  const std::size_t refresh =
      EnvSize("PM_WORKLOAD_REFRESH", std::max<std::size_t>(1, drift / 2));
  const std::size_t resident_pct = EnvSize("PM_WORKLOAD_RESIDENT", 50);
  const std::size_t page_bytes = EnvSize("PM_WORKLOAD_PAGE", 1024);
  const char* enforce = std::getenv("PM_WORKLOAD_ENFORCE");
  const bool enforced = enforce != nullptr && enforce[0] == '1';

  // Harvest the query pool from a throwaway in-memory engine; the trace
  // stores term texts so it replays against any engine over this corpus.
  MiningEngine mono = MiningEngine::Build(MakeCorpus(num_docs));
  QueryGenOptions gen_options;
  gen_options.num_queries = pool_size;
  gen_options.min_term_df = 8;
  gen_options.min_pairwise_codf = 3;
  gen_options.min_and_matches = 3;
  std::vector<Query> queries = QuerySetGenerator(gen_options).Generate(
      mono.dict(), mono.inverted(), mono.corpus().size());
  if (queries.empty()) {
    std::printf("no usable queries harvested; corpus too small\n");
    return 1;
  }
  queries = WithOperator(std::move(queries), QueryOperator::kOr);
  const std::vector<workload::WorkloadQuerySpec> pool =
      workload::PoolFromQueries(queries, mono.corpus().vocab(), 5);

  workload::WorkloadTrace trace;
  if (const char* trace_path = std::getenv("PM_WORKLOAD_TRACE");
      trace_path != nullptr && trace_path[0] != '\0') {
    Result<workload::WorkloadTrace> loaded =
        workload::WorkloadTrace::ReadFile(trace_path);
    if (!loaded.ok()) {
      std::printf("cannot read PM_WORKLOAD_TRACE %s: %s\n", trace_path,
                  loaded.status().message().c_str());
      return 1;
    }
    trace = std::move(loaded).value();
    std::printf("replaying recorded trace %s: %zu events\n\n", trace_path,
                trace.queries.size());
  } else {
    workload::WorkloadOptions wopts;
    wopts.num_queries = num_events;
    wopts.zipf_s = zipf_s;
    wopts.drift_cadence = drift;
    wopts.drift_rotate = std::max<std::size_t>(1, pool.size() / 3);
    wopts.burst_period = 60;
    wopts.burst_len = 12;
    trace = workload::GenerateTrace(pool, wopts);
    std::printf("generated trace: %zu events over %zu distinct queries, "
                "zipf s=%.2f, drift every %zu events\n\n",
                trace.queries.size(), pool.size(), zipf_s, drift);
  }

  // Persist once; both services reopen the same file cold so placement is
  // the only degree of freedom between them.
  const std::string persist_path = "BENCH_workload.pmidx";
  for (const Query& q : queries) {
    (void)mono.Mine(q, Algorithm::kSmj, MineOptions{.k = 1});
  }
  if (const Status saved = mono.SaveToFile(persist_path); !saved.ok()) {
    std::printf("persist failed: %s\n", saved.message().c_str());
    return 1;
  }

  MiningEngine::Options load_options;
  load_options.disk.page_size_bytes = page_bytes;
  auto reopen = [&]() -> Result<MiningEngine> {
    return MiningEngine::LoadFromFile(persist_path, load_options);
  };

  workload::ReplayOptions replay_options;
  replay_options.algorithm = Algorithm::kNraDisk;
  PhraseServiceOptions base_service;
  base_service.enable_result_cache = false;  // repeats must touch the tier

  bool diverged = false;

  // --- Phase A: static df placement, replayed twice ------------------------
  workload::ReplayResult static_run;
  workload::ReplayResult static_repeat;
  uint64_t static_blocks = 0;
  uint64_t budget = 0;
  {
    Result<MiningEngine> engine = reopen();
    if (!engine.ok()) {
      std::printf("reopen failed: %s\n", engine.status().message().c_str());
      return 1;
    }
    budget = static_cast<uint64_t>(
        static_cast<double>(resident_pct) / 100.0 *
        static_cast<double>(engine.value().word_lists().InMemoryBytes()));
    engine.value().SetDiskResidentBudget(budget);
    PhraseService service(&engine.value(), base_service);
    static_run = workload::ReplayTrace(service, trace, replay_options);
    static_blocks = service.stats().disk_io.blocks_read;
    static_repeat = workload::ReplayTrace(service, trace, replay_options);
  }
  const bool deterministic = static_run.signatures == static_repeat.signatures;
  if (!deterministic) {
    std::printf("DETERMINISM FAILURE: two replays of the same trace against "
                "the same service produced different result signatures\n");
    diverged = true;
  }
  PrintPhase("static", static_run, static_blocks);

  // --- Phase B: feedback placement on the service's own counters -----------
  workload::ReplayResult feedback_run;
  workload::ReplayResult paced_run;
  uint64_t feedback_blocks = 0;
  uint64_t refreshes = 0;
  {
    Result<MiningEngine> engine = reopen();
    if (!engine.ok()) {
      std::printf("reopen failed: %s\n", engine.status().message().c_str());
      return 1;
    }
    engine.value().SetDiskResidentBudget(budget);
    PhraseServiceOptions feedback_service = base_service;
    feedback_service.placement_refresh_interval = refresh;
    PhraseService service(&engine.value(), feedback_service);
    feedback_run = workload::ReplayTrace(service, trace, replay_options);
    feedback_blocks = service.stats().disk_io.blocks_read;
    refreshes = service.stats().placement_refreshes;

    // Informational open-loop pass on the now-adapted service: arrivals at
    // trace timestamps, so the tail includes queue delay under bursts.
    workload::ReplayOptions paced_options = replay_options;
    paced_options.paced = true;
    paced_run = workload::ReplayTrace(service, trace, paced_options);
  }
  if (feedback_run.signatures != static_run.signatures) {
    std::printf("DIFFERENTIAL FAILURE: feedback placement changed ranked "
                "output -- placement must move cost, never results\n");
    diverged = true;
  }
  PrintPhase("feedback", feedback_run, feedback_blocks);
  PrintPhase("paced", paced_run, 0);
  std::printf("\nplacement refreshes installed: %llu (cadence %zu)\n",
              static_cast<unsigned long long>(refreshes), refresh);

  const double ratio =
      feedback_blocks > 0
          ? static_cast<double>(static_blocks) /
                static_cast<double>(feedback_blocks)
          : 0.0;
  const bool meets_target = feedback_blocks > 0 &&
                            feedback_blocks < static_blocks;

  // --- JSON report ----------------------------------------------------------
  if (std::FILE* json = std::fopen("BENCH_workload.json", "w")) {
    std::fprintf(json,
                 "{\n  \"workload\": {\"docs\": %zu, \"pool\": %zu, "
                 "\"events\": %zu, \"zipf_s\": %.2f, \"drift_cadence\": %zu, "
                 "\"refresh_interval\": %zu, \"resident_pct\": %zu, "
                 "\"budget_bytes\": %llu, \"seed\": %llu},\n",
                 num_docs, pool.size(), trace.queries.size(), trace.zipf_s,
                 trace.drift_cadence, refresh, resident_pct,
                 static_cast<unsigned long long>(budget),
                 static_cast<unsigned long long>(trace.seed));
    std::fprintf(json,
                 "  \"replay\": {\"qps\": %.1f, \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f, \"p99_ms\": %.3f, \"wall_ms\": %.1f, "
                 "\"queries\": %zu, \"unresolved\": %zu},\n",
                 feedback_run.qps, feedback_run.p50_ms, feedback_run.p95_ms,
                 feedback_run.p99_ms, feedback_run.wall_ms,
                 feedback_run.queries, feedback_run.unresolved);
    std::fprintf(json,
                 "  \"static\": {\"qps\": %.1f, \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f, \"p99_ms\": %.3f},\n",
                 static_run.qps, static_run.p50_ms, static_run.p95_ms,
                 static_run.p99_ms);
    std::fprintf(json,
                 "  \"paced\": {\"qps\": %.1f, \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f, \"p99_ms\": %.3f},\n",
                 paced_run.qps, paced_run.p50_ms, paced_run.p95_ms,
                 paced_run.p99_ms);
    std::fprintf(json,
                 "  \"placement\": {\"static_blocks\": %llu, "
                 "\"feedback_blocks\": %llu, \"ratio\": %.3f, "
                 "\"refreshes\": %llu, \"identical_results\": %s, "
                 "\"deterministic_replay\": %s},\n",
                 static_cast<unsigned long long>(static_blocks),
                 static_cast<unsigned long long>(feedback_blocks), ratio,
                 static_cast<unsigned long long>(refreshes),
                 feedback_run.signatures == static_run.signatures ? "true"
                                                                  : "false",
                 deterministic ? "true" : "false");
    std::fprintf(json,
                 "  \"target_enforced\": %s,\n  \"meets_target\": %s\n}\n",
                 enforced ? "true" : "false",
                 meets_target ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_workload.json\n");
  }
  std::remove(persist_path.c_str());

  if (diverged) return 3;
  std::printf("placement differential: %llu static vs %llu feedback blocks "
              "(%.2fx) %s\n",
              static_cast<unsigned long long>(static_blocks),
              static_cast<unsigned long long>(feedback_blocks), ratio,
              meets_target ? "(feedback wins)"
              : enforced   ? "(FEEDBACK DID NOT WIN)"
                           : "(informational without PM_WORKLOAD_ENFORCE=1)");
  if (!enforced) return 0;
  return meets_target ? 0 : 2;
}

}  // namespace
}  // namespace phrasemine::bench

int main() { return phrasemine::bench::Main(); }
