// google-benchmark microbenchmarks for the core primitives: posting-list
// set algebra, phrase extraction, forward-index construction, word-list
// construction, and per-query latency of every miner on a fixed mid-size
// corpus. These complement the table/figure harnesses with
// statistically-stable per-operation numbers.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/engine.h"
#include "eval/query_gen.h"
#include "index/word_lists.h"
#include "phrase/phrase_extractor.h"
#include "text/synthetic.h"

namespace phrasemine {
namespace {

SyntheticCorpusOptions MicroCorpusOptions(std::size_t docs) {
  SyntheticCorpusOptions o;
  o.seed = 77;
  o.num_docs = docs;
  o.num_topics = 10;
  o.topic_vocab = 250;
  o.shared_vocab = 1200;
  o.num_stopwords = 60;
  o.phrases_per_topic = 30;
  o.min_doc_tokens = 50;
  o.max_doc_tokens = 150;
  return o;
}

Corpus MakeCorpus(std::size_t docs) {
  SyntheticCorpusGenerator generator(MicroCorpusOptions(docs));
  return generator.Generate();
}

/// Shared engine + workload for the per-query benchmarks (built once).
struct SharedState {
  SharedState() : engine(MiningEngine::Build(MakeCorpus(4000))) {
    QuerySetGenerator qgen(QueryGenOptions{.seed = 7, .num_queries = 20});
    queries = qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
    engine.EnsureWordListsFor(queries);
    engine.SetSmjFraction(1.0);
    // Force lazy structures so the benches do not measure their build.
    (void)engine.postings();
    Query warm = queries.front();
    warm.op = QueryOperator::kOr;
    (void)engine.Mine(warm, Algorithm::kSmj);
    (void)engine.Mine(warm, Algorithm::kNra);
    (void)engine.Mine(warm, Algorithm::kGm);
    (void)engine.Mine(warm, Algorithm::kExact);
  }
  MiningEngine engine;
  std::vector<Query> queries;
};

SharedState& Shared() {
  static SharedState* state = new SharedState();
  return *state;
}

void BM_PhraseExtraction(benchmark::State& state) {
  Corpus corpus = MakeCorpus(static_cast<std::size_t>(state.range(0)));
  PhraseExtractor extractor;
  for (auto _ : state) {
    PhraseDictionary dict = extractor.Extract(corpus);
    benchmark::DoNotOptimize(dict.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.TotalTokens()));
}
BENCHMARK(BM_PhraseExtraction)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_ForwardIndexBuild(benchmark::State& state) {
  Corpus corpus = MakeCorpus(2000);
  PhraseDictionary dict = PhraseExtractor().Extract(corpus);
  const ForwardStorage storage = state.range(0) == 0
                                     ? ForwardStorage::kFull
                                     : ForwardStorage::kPrefixCompressed;
  for (auto _ : state) {
    ForwardIndex index = ForwardIndex::Build(corpus, dict, storage);
    benchmark::DoNotOptimize(index.TotalStoredEntries());
  }
}
BENCHMARK(BM_ForwardIndexBuild)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_WordListBuild(benchmark::State& state) {
  SharedState& shared = Shared();
  // Rebuild the lists of the first query's terms each iteration.
  const std::vector<TermId>& terms = shared.queries.front().terms;
  for (auto _ : state) {
    WordScoreLists lists =
        WordScoreLists::Build(shared.engine.inverted(), shared.engine.forward(),
                              shared.engine.dict(), terms);
    benchmark::DoNotOptimize(lists.TotalEntries());
  }
}
BENCHMARK(BM_WordListBuild)->Unit(benchmark::kMillisecond);

void BM_PostingIntersect(benchmark::State& state) {
  SharedState& shared = Shared();
  const Query& q = shared.queries.front();
  std::vector<const std::vector<DocId>*> lists;
  for (TermId t : q.terms) lists.push_back(&shared.engine.inverted().docs(t));
  for (auto _ : state) {
    auto result = InvertedIndex::Intersect(lists);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_PostingIntersect);

void BM_PostingUnion(benchmark::State& state) {
  SharedState& shared = Shared();
  const Query& q = shared.queries.front();
  std::vector<const std::vector<DocId>*> lists;
  for (TermId t : q.terms) lists.push_back(&shared.engine.inverted().docs(t));
  for (auto _ : state) {
    auto result = InvertedIndex::Union(lists);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_PostingUnion);

void MineAllQueries(benchmark::State& state, Algorithm algorithm,
                    QueryOperator op) {
  SharedState& shared = Shared();
  std::size_t i = 0;
  for (auto _ : state) {
    Query q = shared.queries[i % shared.queries.size()];
    q.op = op;
    MineResult r = shared.engine.Mine(q, algorithm, MineOptions{.k = 5});
    benchmark::DoNotOptimize(r.phrases.data());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_MineExactAnd(benchmark::State& state) {
  MineAllQueries(state, Algorithm::kExact, QueryOperator::kAnd);
}
void BM_MineGmAnd(benchmark::State& state) {
  MineAllQueries(state, Algorithm::kGm, QueryOperator::kAnd);
}
void BM_MineGmOr(benchmark::State& state) {
  MineAllQueries(state, Algorithm::kGm, QueryOperator::kOr);
}
void BM_MineSmjAnd(benchmark::State& state) {
  MineAllQueries(state, Algorithm::kSmj, QueryOperator::kAnd);
}
void BM_MineSmjOr(benchmark::State& state) {
  MineAllQueries(state, Algorithm::kSmj, QueryOperator::kOr);
}
void BM_MineNraAnd(benchmark::State& state) {
  MineAllQueries(state, Algorithm::kNra, QueryOperator::kAnd);
}
void BM_MineNraOr(benchmark::State& state) {
  MineAllQueries(state, Algorithm::kNra, QueryOperator::kOr);
}
void BM_MineSimitsisAnd(benchmark::State& state) {
  MineAllQueries(state, Algorithm::kSimitsis, QueryOperator::kAnd);
}

BENCHMARK(BM_MineExactAnd)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MineGmAnd)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MineGmOr)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MineSmjAnd)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MineSmjOr)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MineNraAnd)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MineNraOr)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MineSimitsisAnd)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace phrasemine

BENCHMARK_MAIN();
