// Reproduces Table 6: mean absolute difference between the interestingness
// estimated under the independence assumption and the true Eq. 1 value, for
// the result phrases of each dataset/operator configuration. The paper
// reports ~0.001 for OR and 0.02-0.05 for AND.

#include <cstdio>

#include "bench_common.h"

using namespace phrasemine;
using namespace phrasemine::bench;

namespace {

void RunDataset(BenchContext& ctx, double out[2]) {
  ctx.engine.SetSmjFraction(1.0);
  int i = 0;
  for (QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
    AggregateRun run =
        RunExperiment(ctx.engine, ctx.queries, op, Algorithm::kSmj,
                      MineOptions{.k = 5}, /*evaluate_quality=*/true);
    out[i++] = run.mean_interestingness_diff;
  }
}

}  // namespace

int main() {
  PrintHeader(
      "Table 6: interestingness estimate accuracy (mean |est - true|)",
      "very low error for OR (~0.001 in the paper); small for AND "
      "(0.02-0.05); absolute values, not just ranking, are preserved");
  BenchContext reuters = BuildReuters();
  double r[2];
  RunDataset(reuters, r);
  BenchContext pubmed = BuildPubmed();
  double p[2];
  RunDataset(pubmed, p);

  std::printf("\n%-14s %10s %10s\n", "dataset", "AND", "OR");
  std::printf("%-14s %10.4f %10.4f\n", "reuters-like", r[0], r[1]);
  std::printf("%-14s %10.4f %10.4f\n", "pubmed-like", p[0], p[1]);
  return 0;
}
