// Ablation (Section 4.5.1): cost and behaviour of the incremental delta
// overlay. Measures SMJ query time with delta batches of growing size and
// verifies the overlay changes scores in the expected direction.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/delta_index.h"
#include "text/synthetic.h"

using namespace phrasemine;
using namespace phrasemine::bench;

int main() {
  PrintHeader(
      "Ablation: incremental updates via the delta index (Section 4.5.1)",
      "query-time overhead grows mildly with pending updates; a periodic "
      "offline rebuild bounds it");

  BenchContext ctx = BuildReuters();
  ctx.engine.SetSmjFraction(1.0);

  // Baseline: no delta.
  AggregateRun base =
      RunExperiment(ctx.engine, ctx.queries, QueryOperator::kOr,
                    Algorithm::kSmj, MineOptions{.k = 5},
                    /*evaluate_quality=*/false);
  std::printf("\n%-16s %12s\n", "pending updates", "avg ms");
  std::printf("%-16d %12.4f\n", 0, base.avg_total_ms);

  // Generate update documents by cloning existing ones (their vocabulary is
  // guaranteed to be known to the frozen dictionary).
  DeltaIndex delta(ctx.engine.dict());
  const Corpus& corpus = ctx.engine.corpus();
  std::size_t next_doc = 0;
  for (std::size_t batch : {100u, 1000u, 5000u}) {
    while (delta.pending_updates() < batch) {
      const Document& doc =
          corpus.doc(static_cast<DocId>(next_doc % corpus.size()));
      delta.AddDocument(doc.tokens, doc.facets);
      ++next_doc;
    }
    MineOptions options;
    options.k = 5;
    options.delta = &delta;
    AggregateRun run =
        RunExperiment(ctx.engine, ctx.queries, QueryOperator::kOr,
                      Algorithm::kSmj, options, /*evaluate_quality=*/false);
    std::printf("%-16zu %12.4f\n", delta.pending_updates(), run.avg_total_ms);
  }

  // Directional sanity: inserting documents that contain both a query term
  // and a phrase raises that phrase's adjusted P(q|p) numerator and df
  // denominator together; re-running a query must still succeed and return
  // k results.
  Query q = ctx.queries.front();
  q.op = QueryOperator::kOr;
  MineOptions options;
  options.k = 5;
  options.delta = &delta;
  MineResult with_delta = ctx.engine.Mine(q, Algorithm::kSmj, options);
  std::printf("\nafter %zu updates the first workload query returns %zu "
              "results (top est %.3f)\n",
              delta.pending_updates(), with_delta.phrases.size(),
              with_delta.phrases.empty() ? 0.0
                                         : with_delta.phrases[0].interestingness);
  return 0;
}
