// Reproduces Figures 12 & 13: response time of the *disk-based* NRA against
// the *in-memory* exact GM baseline -- a comparison deliberately biased in
// GM's favor (it pays no I/O), which the paper uses to show the list-based
// approach still wins on large corpora: ~2x-50x on Reuters and 35x-3500x on
// the 655k-document Pubmed.
//
// GM's cost is linear in |D'| and therefore in corpus size, while NRA's
// cost tracks list depth, which saturates; the paper's dramatic Pubmed
// numbers come from that divergence at 655k documents. Since the default
// harness corpora are laptop-sized, this bench additionally sweeps the
// corpus size to expose the trend and the projected crossover.

#include <cstdio>

#include "bench_common.h"
#include "eval/query_gen.h"
#include "text/synthetic.h"

using namespace phrasemine;
using namespace phrasemine::bench;

namespace {

void RunDataset(BenchContext& ctx) {
  std::printf("\n--- %s (avg ms per query) ---\n", ctx.name.c_str());
  std::printf("%-18s %12s %12s\n", "method", "AND", "OR");
  for (Algorithm algorithm : {Algorithm::kNraDisk, Algorithm::kGm}) {
    double and_ms = 0.0;
    double or_ms = 0.0;
    for (QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
      AggregateRun run =
          RunExperiment(ctx.engine, ctx.queries, op, algorithm,
                        MineOptions{.k = 5, .nra_batch_size = 64},
                        /*evaluate_quality=*/false);
      (op == QueryOperator::kAnd ? and_ms : or_ms) = run.avg_total_ms;
    }
    std::printf("%-18s %12.3f %12.3f\n",
                algorithm == Algorithm::kNraDisk ? "NRA (disk)"
                                                 : "GM (in-memory)",
                and_ms, or_ms);
  }
}

void ScalingSweep() {
  std::printf("\n--- corpus-size scaling (pubmed-like, OR queries) ---\n");
  std::printf("%-10s %16s %16s %12s\n", "docs", "GM in-mem (ms)",
              "NRA disk (ms)", "NRA/GM");
  const std::size_t base = EnvSize("PM_SCALING_BASE_DOCS", 5000);
  for (std::size_t docs : {base, base * 2, base * 4}) {
    SyntheticCorpusGenerator generator(
        SyntheticCorpusGenerator::PubmedLike(docs));
    MiningEngine engine = MiningEngine::Build(generator.Generate());
    QueryGenOptions qopts;
    qopts.seed = 52;
    qopts.num_queries = 20;
    QuerySetGenerator qgen(qopts);
    auto queries = qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
    engine.EnsureWordListsFor(queries);

    AggregateRun gm =
        RunExperiment(engine, queries, QueryOperator::kOr, Algorithm::kGm,
                      MineOptions{.k = 5}, /*evaluate_quality=*/false);
    AggregateRun nra = RunExperiment(
        engine, queries, QueryOperator::kOr, Algorithm::kNraDisk,
        MineOptions{.k = 5, .nra_batch_size = 64},
        /*evaluate_quality=*/false);
    std::printf("%-10zu %16.3f %16.3f %12.2f\n", docs, gm.avg_total_ms,
                nra.avg_total_ms,
                gm.avg_total_ms > 0 ? nra.avg_total_ms / gm.avg_total_ms : 0);
  }
  std::printf(
      "GM grows ~linearly with corpus size; NRA-disk stays ~flat. At the\n"
      "paper's 655k documents the ratio inverts by orders of magnitude.\n");
}

}  // namespace

int main() {
  PrintHeader(
      "Figures 12 & 13: disk-based NRA vs in-memory GM",
      "on the paper's corpus sizes NRA wins despite paying simulated I/O; "
      "at laptop scale the same trend shows as GM's linear growth vs NRA's "
      "flat cost");
  BenchContext reuters = BuildReuters();
  RunDataset(reuters);
  BenchContext pubmed = BuildPubmed();
  RunDataset(pubmed);
  ScalingSweep();
  return 0;
}
