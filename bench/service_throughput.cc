// PhraseService throughput: queries/sec and cache hit rate at 1/2/4/8
// worker threads against the serial MiningEngine::Mine baseline, on a
// synthetic workload with realistic repetition (production query streams
// are heavily skewed, which is what the result cache exploits). A final
// mixed read/update phase interleaves Ingest batches with the query
// stream to price epoch-based cache invalidation. Results are also
// written to BENCH_service.json so the perf trajectory is tracked across
// PRs.
//
// Knobs: PM_SERVICE_DOCS (corpus size, default 2000),
//        PM_SERVICE_REQUESTS (workload length, default 1200),
//        PM_SERVICE_DISTINCT (distinct queries, default 40),
//        PM_SERVICE_UPDATES (ingest batches in the mixed phase,
//                            default requests/20).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/engine.h"
#include "eval/query_gen.h"
#include "service/cache.h"
#include "service/planner.h"
#include "service/service.h"
#include "text/synthetic.h"

namespace phrasemine::bench {
namespace {

MiningEngine BuildEngine(std::size_t num_docs) {
  SyntheticCorpusOptions options = SyntheticCorpusGenerator::ReutersLike();
  options.num_docs = num_docs;
  SyntheticCorpusGenerator generator(options);
  return MiningEngine::Build(generator.Generate());
}

/// A skewed request stream over a fixed set of distinct queries: Zipf-ish
/// repetition via squared uniform draws, mimicking head-heavy traffic.
std::vector<ServiceRequest> MakeWorkload(const std::vector<Query>& distinct,
                                         std::size_t num_requests) {
  Rng rng(2024);
  std::vector<ServiceRequest> workload;
  workload.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    const double u = rng.NextDouble();
    const auto index = static_cast<std::size_t>(
        u * u * static_cast<double>(distinct.size()));
    Query q = distinct[std::min(index, distinct.size() - 1)];
    q.op = (index % 3 == 0) ? QueryOperator::kOr : QueryOperator::kAnd;
    workload.push_back(ServiceRequest{std::move(q), MineOptions{}, {}});
  }
  return workload;
}

/// One row of the warm-cache thread sweep, kept for the JSON report.
struct SweepRow {
  std::size_t threads = 0;
  double qps = 0.0;
  double speedup = 0.0;
  double hit_rate = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

/// Documents re-materialized as strings so the mixed-phase updater never
/// reads the engine corpus concurrently with queries.
std::vector<UpdateDoc> MaterializeUpdateDocs(const MiningEngine& engine,
                                             std::size_t count) {
  std::vector<UpdateDoc> docs;
  const Corpus& corpus = engine.corpus();
  docs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    UpdateDoc doc;
    for (TermId t : corpus.doc(static_cast<DocId>(i % corpus.size())).tokens) {
      doc.tokens.push_back(corpus.vocab().TermText(t));
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

int Main() {
  PrintHeader("Service throughput: thread pool + planner + sharded caches",
              "Warm-cache service at 8 threads >= 4x serial Mine QPS; "
              "hit rate grows with thread-count reruns of the same stream");

  const std::size_t num_docs = EnvSize("PM_SERVICE_DOCS", 2000);
  const std::size_t num_requests = EnvSize("PM_SERVICE_REQUESTS", 1200);
  const std::size_t num_distinct = EnvSize("PM_SERVICE_DISTINCT", 40);

  std::printf("corpus: %zu docs, workload: %zu requests over <=%zu distinct "
              "queries\n\n",
              num_docs, num_requests, num_distinct);

  MiningEngine engine = BuildEngine(num_docs);

  QueryGenOptions gen_options;
  gen_options.num_queries = num_distinct;
  gen_options.min_term_df = 8;
  gen_options.min_pairwise_codf = 3;
  gen_options.min_and_matches = 3;
  std::vector<Query> distinct = QuerySetGenerator(gen_options).Generate(
      engine.dict(), engine.inverted(), engine.corpus().size());
  if (distinct.empty()) {
    std::printf("no usable queries harvested; corpus too small\n");
    return 1;
  }
  std::printf("harvested %zu distinct queries\n", distinct.size());
  std::vector<ServiceRequest> workload =
      MakeWorkload(distinct, num_requests);

  // --- Serial baseline: planner-chosen algorithm, no caches ---------------
  // A separate engine so the service's lazily shared state cannot help it.
  MiningEngine serial_engine = BuildEngine(num_docs);
  CostPlanner serial_planner(&serial_engine);
  // Pre-plan outside the timed region (the service amortizes planning the
  // same way through its result cache).
  std::vector<std::pair<Query, Algorithm>> serial_plan;
  serial_plan.reserve(workload.size());
  for (const ServiceRequest& request : workload) {
    const Query canonical = CanonicalizeQuery(request.query);
    serial_plan.emplace_back(
        canonical, serial_planner.Plan(canonical, request.options).algorithm);
  }
  StopWatch serial_watch;
  for (const auto& [query, algorithm] : serial_plan) {
    MineResult result = serial_engine.Mine(query, algorithm);
    (void)result;
  }
  const double serial_ms = serial_watch.ElapsedMillis();
  const double serial_qps =
      1000.0 * static_cast<double>(workload.size()) / serial_ms;
  std::printf("\nserial MiningEngine::Mine: %7.1f ms total, %9.0f q/s\n\n",
              serial_ms, serial_qps);

  // --- Service at increasing thread counts --------------------------------
  std::printf("%8s %10s %10s %9s %9s %9s\n", "threads", "total_ms", "q/s",
              "speedup", "hit_rate", "p95_ms");
  double speedup_at_8 = 0.0;
  std::vector<SweepRow> sweep;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    PhraseServiceOptions options;
    options.pool.num_threads = threads;
    options.pool.queue_capacity = 512;
    PhraseService service(&engine, options);

    // Warm both caches: one untimed pass over the distinct queries in both
    // operator modes (the acceptance criterion measures warm serving).
    for (const ServiceRequest& request : workload) {
      (void)service.MineSync(request);
    }
    const CacheStats warm = service.stats().result_cache;

    StopWatch watch;
    std::vector<std::future<ServiceReply>> futures;
    futures.reserve(workload.size());
    for (const ServiceRequest& request : workload) {
      futures.push_back(service.Submit(request));
    }
    for (auto& future : futures) (void)future.get();
    const double ms = watch.ElapsedMillis();
    const double qps = 1000.0 * static_cast<double>(workload.size()) / ms;
    const ServiceStats stats = service.stats();
    // Hit rate of the timed pass only.
    const uint64_t timed_hits = stats.result_cache.hits - warm.hits;
    const uint64_t timed_lookups = (stats.result_cache.hits +
                                    stats.result_cache.misses) -
                                   (warm.hits + warm.misses);
    const double hit_rate =
        timed_lookups == 0
            ? 0.0
            : static_cast<double>(timed_hits) /
                  static_cast<double>(timed_lookups);
    const double speedup = qps / serial_qps;
    if (threads == 8) speedup_at_8 = speedup;
    sweep.push_back(SweepRow{threads, qps, speedup, hit_rate,
                             stats.p50_latency_ms, stats.p95_latency_ms,
                             stats.p99_latency_ms, stats.p999_latency_ms});
    std::printf("%8zu %10.1f %10.0f %8.1fx %8.1f%% %9.3f\n", threads, ms,
                qps, speedup, 100.0 * hit_rate, stats.p95_latency_ms);
  }

  // --- Mixed read/update workload (8 threads) ------------------------------
  // An updater thread ingests document batches while the full query stream
  // is in flight: every ingest moves the epoch, so the result cache keeps
  // re-missing -- this prices epoch-based invalidation under churn.
  const std::size_t num_updates = EnvSize(
      "PM_SERVICE_UPDATES", std::max<std::size_t>(10, num_requests / 20));
  SweepRow mixed;
  uint64_t mixed_epoch = 0;
  {
    PhraseServiceOptions options;
    options.pool.num_threads = 8;
    options.pool.queue_capacity = 512;
    PhraseService service(&engine, options);
    for (const ServiceRequest& request : workload) {
      (void)service.MineSync(request);  // warm lists + epoch-0 results
    }
    const CacheStats warm = service.stats().result_cache;
    const std::vector<UpdateDoc> update_docs =
        MaterializeUpdateDocs(engine, num_updates);

    StopWatch watch;
    std::thread updater([&] {
      for (std::size_t i = 0; i < num_updates; ++i) {
        UpdateBatch batch;
        batch.inserts.push_back(update_docs[i]);
        (void)service.IngestBatch(batch);
        std::this_thread::yield();
      }
    });
    std::vector<std::future<ServiceReply>> futures;
    futures.reserve(workload.size());
    for (const ServiceRequest& request : workload) {
      futures.push_back(service.Submit(request));
    }
    // Per-reply execution latencies of the timed pass only -- the
    // service's own histogram is cumulative and would mix in the warm-up
    // replay's samples.
    std::vector<double> latencies;
    latencies.reserve(futures.size());
    for (auto& future : futures) {
      latencies.push_back(future.get().latency_ms);
    }
    updater.join();
    const double ms = watch.ElapsedMillis();
    const ServiceStats stats = service.stats();
    std::sort(latencies.begin(), latencies.end());
    mixed.threads = 8;
    mixed.qps = 1000.0 * static_cast<double>(workload.size()) / ms;
    mixed.speedup = mixed.qps / serial_qps;
    // Hit rate of the timed (churning) pass only -- the warm-up replay
    // would otherwise mask the epoch-invalidation cost this phase prices.
    const uint64_t timed_hits = stats.result_cache.hits - warm.hits;
    const uint64_t timed_lookups =
        (stats.result_cache.hits + stats.result_cache.misses) -
        (warm.hits + warm.misses);
    mixed.hit_rate = timed_lookups == 0
                         ? 0.0
                         : static_cast<double>(timed_hits) /
                               static_cast<double>(timed_lookups);
    auto tail = [&](std::size_t permille) {
      return latencies.empty()
                 ? 0.0
                 : latencies[std::min(latencies.size() - 1,
                                      latencies.size() * permille / 1000)];
    };
    mixed.p50_ms = latencies.empty() ? 0.0 : latencies[latencies.size() / 2];
    mixed.p95_ms = tail(950);
    mixed.p99_ms = tail(990);
    mixed.p999_ms = tail(999);
    mixed_epoch = stats.epoch;
    std::printf("\nmixed read/update at 8 threads: %.0f q/s (%.1fx serial) "
                "with %zu ingests, final epoch %llu, hit_rate %.1f%%\n",
                mixed.qps, mixed.speedup, num_updates,
                static_cast<unsigned long long>(mixed_epoch),
                100.0 * mixed.hit_rate);
  }

  // --- Overload: open-loop at 2x capacity, admission control on -------------
  // Arrivals are paced at twice the service's measured capacity with the
  // result cache off, so the queue would grow without bound if nothing
  // shed. The admission gate (bounded depth + hopeless-deadline check)
  // must keep the *admitted* tail flat and convert the excess into typed
  // ResourceExhausted/DeadlineExceeded refusals instead of unbounded
  // queueing delay. Reported: shed rate and p99 of admitted queries.
  struct OverloadRow {
    std::size_t requests = 0;
    double capacity_qps = 0.0;
    double offered_qps = 0.0;
    double shed_rate = 0.0;
    double deadline_rate = 0.0;
    double p99_admitted_ms = 0.0;
    std::size_t ok = 0;
    std::size_t shed = 0;
    std::size_t deadline_exceeded = 0;
  } overload;
  {
    PhraseServiceOptions options;
    options.pool.num_threads = 2;
    options.pool.queue_capacity = 64;
    options.enable_result_cache = false;  // every admitted query executes
    options.admission.max_queue_depth = 16;
    PhraseService service(&engine, options);

    // Capacity probe: closed-loop sequential, the sustainable q/s of this
    // configuration (and, inverted, its mean execution time).
    const std::size_t probe_n = std::min<std::size_t>(workload.size(), 100);
    StopWatch probe;
    for (std::size_t i = 0; i < probe_n; ++i) {
      (void)service.MineSync(workload[i]);
    }
    overload.capacity_qps =
        1000.0 * static_cast<double>(probe_n) / probe.ElapsedMillis();

    overload.requests = std::min<std::size_t>(workload.size(), 400);
    overload.offered_qps = 2.0 * overload.capacity_qps;
    const double mean_exec_ms = 1000.0 / overload.capacity_qps;
    // Deadline with headroom over one execution but not over a growing
    // queue: an admitted query that waits behind ~a full admission window
    // blows it, which is exactly what the gate is there to prevent.
    const double deadline_ms = std::max(10.0, 20.0 * mean_exec_ms);
    const auto interarrival =
        std::chrono::duration<double, std::micro>(1e6 / overload.offered_qps);

    // Bursty arrivals (the workload generator's burst model, compressed):
    // each burst lands back-to-back, then the loop sleeps to hold the 2x
    // *average* rate. Per-request sleeps would let scheduler overshoot
    // quietly pace the offered load back down to capacity; bursts keep
    // the instantaneous depth honest, which is what the gate bounds.
    constexpr std::size_t kBurst = 32;
    std::vector<std::future<ServiceReply>> futures;
    futures.reserve(overload.requests);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < overload.requests; ++i) {
      ServiceRequest request = workload[i];
      request.deadline_ms = deadline_ms;
      futures.push_back(service.Submit(std::move(request)));
      if ((i + 1) % kBurst == 0) {
        std::this_thread::sleep_until(
            start +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                interarrival * static_cast<double>(i + 1)));
      }
    }
    std::vector<double> admitted_ms;
    admitted_ms.reserve(futures.size());
    for (auto& future : futures) {
      const ServiceReply reply = future.get();
      if (reply.status.ok()) {
        ++overload.ok;
        admitted_ms.push_back(reply.latency_ms);
      } else if (reply.status.code() == StatusCode::kDeadlineExceeded) {
        ++overload.deadline_exceeded;
      } else {
        ++overload.shed;  // admission / queue-bound refusals
      }
    }
    const auto total = static_cast<double>(overload.requests);
    overload.shed_rate = static_cast<double>(overload.shed) / total;
    overload.deadline_rate =
        static_cast<double>(overload.deadline_exceeded) / total;
    std::sort(admitted_ms.begin(), admitted_ms.end());
    overload.p99_admitted_ms =
        admitted_ms.empty()
            ? 0.0
            : admitted_ms[std::min(admitted_ms.size() - 1,
                                   admitted_ms.size() * 990 / 1000)];
    std::printf("\noverload at 2x capacity (%.0f q/s offered, cache off, "
                "admission depth 16, deadline %.1fms):\n"
                "  %zu requests: %zu ok, %zu shed (%.1f%%), %zu deadline-"
                "exceeded (%.1f%%), p99 of admitted %.3fms\n",
                overload.offered_qps, deadline_ms, overload.requests,
                overload.ok, overload.shed, 100.0 * overload.shed_rate,
                overload.deadline_exceeded, 100.0 * overload.deadline_rate,
                overload.p99_admitted_ms);
  }

  // --- JSON report ----------------------------------------------------------
  if (std::FILE* json = std::fopen("BENCH_service.json", "w")) {
    std::fprintf(json, "{\n  \"serial_qps\": %.1f,\n  \"warm_sweep\": [",
                 serial_qps);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const SweepRow& row = sweep[i];
      std::fprintf(json,
                   "%s\n    {\"threads\": %zu, \"qps\": %.1f, \"speedup\": "
                   "%.2f, \"hit_rate\": %.4f, \"p50_ms\": %.4f, \"p95_ms\": "
                   "%.4f, \"p99_ms\": %.4f, \"p999_ms\": %.4f}",
                   i == 0 ? "" : ",", row.threads, row.qps, row.speedup,
                   row.hit_rate, row.p50_ms, row.p95_ms, row.p99_ms,
                   row.p999_ms);
    }
    std::fprintf(json,
                 "\n  ],\n  \"mixed\": {\"threads\": %zu, \"qps\": %.1f, "
                 "\"speedup\": %.2f, \"hit_rate\": %.4f, \"p50_ms\": %.4f, "
                 "\"p95_ms\": %.4f, \"p99_ms\": %.4f, \"p999_ms\": %.4f, "
                 "\"updates\": %zu, \"final_epoch\": "
                 "%llu},\n",
                 mixed.threads, mixed.qps, mixed.speedup, mixed.hit_rate,
                 mixed.p50_ms, mixed.p95_ms, mixed.p99_ms, mixed.p999_ms,
                 num_updates,
                 static_cast<unsigned long long>(mixed_epoch));
    std::fprintf(json,
                 "  \"overload\": {\"requests\": %zu, \"capacity_qps\": "
                 "%.1f, \"offered_qps\": %.1f, \"ok\": %zu, \"shed\": %zu, "
                 "\"deadline_exceeded\": %zu, \"shed_rate\": %.4f, "
                 "\"deadline_rate\": %.4f, \"p99_admitted_ms\": %.4f},\n",
                 overload.requests, overload.capacity_qps,
                 overload.offered_qps, overload.ok, overload.shed,
                 overload.deadline_exceeded, overload.shed_rate,
                 overload.deadline_rate, overload.p99_admitted_ms);
    std::fprintf(json,
                 "  \"speedup_at_8\": %.2f,\n  \"meets_target\": %s\n}\n",
                 speedup_at_8, speedup_at_8 >= 4.0 ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_service.json\n");
  }

  std::printf("\nspeedup at 8 threads (warm cache): %.1fx %s\n", speedup_at_8,
              speedup_at_8 >= 4.0 ? "(meets >=4x target)"
                                  : "(BELOW 4x target)");
  return speedup_at_8 >= 4.0 ? 0 : 2;
}

}  // namespace
}  // namespace phrasemine::bench

int main() { return phrasemine::bench::Main(); }
