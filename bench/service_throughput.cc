// PhraseService throughput: queries/sec and cache hit rate at 1/2/4/8
// worker threads against the serial MiningEngine::Mine baseline, on a
// synthetic workload with realistic repetition (production query streams
// are heavily skewed, which is what the result cache exploits).
//
// Knobs: PM_SERVICE_DOCS (corpus size, default 2000),
//        PM_SERVICE_REQUESTS (workload length, default 1200),
//        PM_SERVICE_DISTINCT (distinct queries, default 40).

#include <cstdio>
#include <future>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/engine.h"
#include "eval/query_gen.h"
#include "service/cache.h"
#include "service/planner.h"
#include "service/service.h"
#include "text/synthetic.h"

namespace phrasemine::bench {
namespace {

MiningEngine BuildEngine(std::size_t num_docs) {
  SyntheticCorpusOptions options = SyntheticCorpusGenerator::ReutersLike();
  options.num_docs = num_docs;
  SyntheticCorpusGenerator generator(options);
  return MiningEngine::Build(generator.Generate());
}

/// A skewed request stream over a fixed set of distinct queries: Zipf-ish
/// repetition via squared uniform draws, mimicking head-heavy traffic.
std::vector<ServiceRequest> MakeWorkload(const std::vector<Query>& distinct,
                                         std::size_t num_requests) {
  Rng rng(2024);
  std::vector<ServiceRequest> workload;
  workload.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    const double u = rng.NextDouble();
    const auto index = static_cast<std::size_t>(
        u * u * static_cast<double>(distinct.size()));
    Query q = distinct[std::min(index, distinct.size() - 1)];
    q.op = (index % 3 == 0) ? QueryOperator::kOr : QueryOperator::kAnd;
    workload.push_back(ServiceRequest{std::move(q), MineOptions{}, {}});
  }
  return workload;
}

int Main() {
  PrintHeader("Service throughput: thread pool + planner + sharded caches",
              "Warm-cache service at 8 threads >= 4x serial Mine QPS; "
              "hit rate grows with thread-count reruns of the same stream");

  const std::size_t num_docs = EnvSize("PM_SERVICE_DOCS", 2000);
  const std::size_t num_requests = EnvSize("PM_SERVICE_REQUESTS", 1200);
  const std::size_t num_distinct = EnvSize("PM_SERVICE_DISTINCT", 40);

  std::printf("corpus: %zu docs, workload: %zu requests over <=%zu distinct "
              "queries\n\n",
              num_docs, num_requests, num_distinct);

  MiningEngine engine = BuildEngine(num_docs);

  QueryGenOptions gen_options;
  gen_options.num_queries = num_distinct;
  gen_options.min_term_df = 8;
  gen_options.min_pairwise_codf = 3;
  gen_options.min_and_matches = 3;
  std::vector<Query> distinct = QuerySetGenerator(gen_options).Generate(
      engine.dict(), engine.inverted(), engine.corpus().size());
  if (distinct.empty()) {
    std::printf("no usable queries harvested; corpus too small\n");
    return 1;
  }
  std::printf("harvested %zu distinct queries\n", distinct.size());
  std::vector<ServiceRequest> workload =
      MakeWorkload(distinct, num_requests);

  // --- Serial baseline: planner-chosen algorithm, no caches ---------------
  // A separate engine so the service's lazily shared state cannot help it.
  MiningEngine serial_engine = BuildEngine(num_docs);
  CostPlanner serial_planner(&serial_engine);
  // Pre-plan outside the timed region (the service amortizes planning the
  // same way through its result cache).
  std::vector<std::pair<Query, Algorithm>> serial_plan;
  serial_plan.reserve(workload.size());
  for (const ServiceRequest& request : workload) {
    const Query canonical = CanonicalizeQuery(request.query);
    serial_plan.emplace_back(
        canonical, serial_planner.Plan(canonical, request.options).algorithm);
  }
  StopWatch serial_watch;
  for (const auto& [query, algorithm] : serial_plan) {
    MineResult result = serial_engine.Mine(query, algorithm);
    (void)result;
  }
  const double serial_ms = serial_watch.ElapsedMillis();
  const double serial_qps =
      1000.0 * static_cast<double>(workload.size()) / serial_ms;
  std::printf("\nserial MiningEngine::Mine: %7.1f ms total, %9.0f q/s\n\n",
              serial_ms, serial_qps);

  // --- Service at increasing thread counts --------------------------------
  std::printf("%8s %10s %10s %9s %9s %9s\n", "threads", "total_ms", "q/s",
              "speedup", "hit_rate", "p95_ms");
  double speedup_at_8 = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    PhraseServiceOptions options;
    options.pool.num_threads = threads;
    options.pool.queue_capacity = 512;
    PhraseService service(&engine, options);

    // Warm both caches: one untimed pass over the distinct queries in both
    // operator modes (the acceptance criterion measures warm serving).
    for (const ServiceRequest& request : workload) {
      (void)service.MineSync(request);
    }
    const CacheStats warm = service.stats().result_cache;

    StopWatch watch;
    std::vector<std::future<ServiceReply>> futures;
    futures.reserve(workload.size());
    for (const ServiceRequest& request : workload) {
      futures.push_back(service.Submit(request));
    }
    for (auto& future : futures) (void)future.get();
    const double ms = watch.ElapsedMillis();
    const double qps = 1000.0 * static_cast<double>(workload.size()) / ms;
    const ServiceStats stats = service.stats();
    // Hit rate of the timed pass only.
    const uint64_t timed_hits = stats.result_cache.hits - warm.hits;
    const uint64_t timed_lookups = (stats.result_cache.hits +
                                    stats.result_cache.misses) -
                                   (warm.hits + warm.misses);
    const double hit_rate =
        timed_lookups == 0
            ? 0.0
            : static_cast<double>(timed_hits) /
                  static_cast<double>(timed_lookups);
    const double speedup = qps / serial_qps;
    if (threads == 8) speedup_at_8 = speedup;
    std::printf("%8zu %10.1f %10.0f %8.1fx %8.1f%% %9.3f\n", threads, ms,
                qps, speedup, 100.0 * hit_rate, stats.p95_latency_ms);
  }

  std::printf("\nspeedup at 8 threads (warm cache): %.1fx %s\n", speedup_at_8,
              speedup_at_8 >= 4.0 ? "(meets >=4x target)"
                                  : "(BELOW 4x target)");
  return speedup_at_8 >= 4.0 ? 0 : 2;
}

}  // namespace
}  // namespace phrasemine::bench

int main() { return phrasemine::bench::Main(); }
