// Per-shard disk tier scaling: kNraDisk mining through ShardedEngine at
// 1/2/4/8 shards, every shard owning its own independently-throttled
// SimulatedDisk, against the single-device (1-shard) configuration on
// the same corpus -- crossed with a resident-fraction sweep of the
// per-shard spill budget (0 = fully disk-resident, the Section 5.5
// protocol; 1 = everything pinned, the all-resident path).
//
// Throughput is *modeled*: per query, compute wall time plus the slowest
// shard device's charged I/O (MineResult::TotalMs() under the paper's
// simulation protocol, extended to parallel devices as a makespan).
// Partitioning shrinks every device's share of the reads, so the
// makespan I/O drops with the shard count -- that drop, not host
// parallelism, is what this bench isolates, which also makes the target
// meaningful on small CI machines.
//
// Acceptance target: >= 2x modeled disk-path throughput at 4 shards over
// the single-device configuration at resident fraction 0. The target
// needs paper-shaped list lengths to be meaningful (tiny smoke corpora
// are dominated by per-list seek constants that partitioning cannot
// touch), so it is enforced -- exit 2 below target -- only when
// PM_DISK_ENFORCE=1, which the dedicated CI step sets on a full-size
// run. Ranked output is differential-verified per run against the
// all-resident path and against in-memory kNra on the same fleet
// (placement moves cost, never contents; exit 3 on divergence, enforced
// at every scale).
//
// Writes BENCH_disk.json for the CI perf trajectory and regression gate.
//
// The device block is scaled down with the miniature corpus
// (PM_DISK_PAGE, default 1024 bytes vs the paper's 32 KiB): on bench
// corpora ~1000x smaller than the paper's, a 32 KiB block holds whole
// word lists and the only I/O left is each list's first-block seek -- a
// per-device constant that replicates across shards instead of
// partitioning. A block a few hundred entries wide puts the runs back
// in the traversal-dominated regime the full-size corpora are in.
//
// Knobs: PM_DISK_DOCS (corpus size, default 4000),
//        PM_DISK_QUERIES (distinct queries, default 24),
//        PM_DISK_PASSES (workload repetitions, default 2),
//        PM_DISK_PAGE (device block bytes, default 1024).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/engine.h"
#include "eval/query_gen.h"
#include "shard/sharded_engine.h"
#include "text/synthetic.h"

namespace phrasemine::bench {
namespace {

Corpus MakeCorpus(std::size_t num_docs) {
  SyntheticCorpusOptions options = SyntheticCorpusGenerator::ReutersLike();
  options.num_docs = num_docs;
  SyntheticCorpusGenerator generator(options);
  return generator.Generate();
}

/// One (shard count, resident fraction) cell of the sweep.
struct Row {
  std::size_t shards = 0;
  double fraction = 0.0;
  uint64_t budget_per_shard = 0;
  double modeled_qps = 0.0;  // total / sum(compute_ms + makespan disk_ms)
  double wall_qps = 0.0;
  double mean_disk_ms = 0.0;  // mean per-query makespan I/O charge
  uint64_t blocks = 0;        // summed across all shard devices
  uint64_t seeks = 0;
  uint64_t bytes = 0;
  std::size_t verified = 0;   // queries bitwise-equal to the reference
};

/// Ranked output signature for the differential check (benches do not
/// link the test library; tests share testing::RankedSignature).
std::vector<std::pair<PhraseId, double>> Signature(const MineResult& r) {
  std::vector<std::pair<PhraseId, double>> sig;
  sig.reserve(r.phrases.size());
  for (const MinedPhrase& p : r.phrases) sig.emplace_back(p.phrase, p.score);
  return sig;
}

int Main() {
  PrintHeader("Per-shard disk tier: parallel simulated devices vs one",
              ">= 2x modeled NRA-disk throughput at 4 shards (fraction 0); "
              "ranked output identical across resident fractions and equal "
              "to in-memory NRA (verified per run)");

  const std::size_t num_docs = EnvSize("PM_DISK_DOCS", 4000);
  const std::size_t num_queries = EnvSize("PM_DISK_QUERIES", 24);
  const std::size_t passes = EnvSize("PM_DISK_PASSES", 2);
  const std::size_t page_bytes = EnvSize("PM_DISK_PAGE", 1024);
  const unsigned hw_threads = std::thread::hardware_concurrency();

  std::printf("corpus: %zu docs, %zu distinct queries x %zu passes, "
              "%zu-byte device blocks, %u hardware threads\n\n",
              num_docs, num_queries, passes, page_bytes, hw_threads);

  // Harvest the workload once from a throwaway monolithic engine so every
  // shard configuration mines the identical query set.
  MiningEngine mono = MiningEngine::Build(MakeCorpus(num_docs));
  QueryGenOptions gen_options;
  gen_options.num_queries = num_queries;
  gen_options.min_term_df = 8;
  gen_options.min_pairwise_codf = 3;
  gen_options.min_and_matches = 3;
  std::vector<Query> queries = QuerySetGenerator(gen_options).Generate(
      mono.dict(), mono.inverted(), mono.corpus().size());
  if (queries.empty()) {
    std::printf("no usable queries harvested; corpus too small\n");
    return 1;
  }
  queries = WithOperator(std::move(queries), QueryOperator::kOr);
  std::printf("harvested %zu queries\n\n", queries.size());
  const std::size_t total = queries.size() * passes;

  const double fractions[] = {0.0, 0.5, 1.0};
  std::vector<Row> sweep;
  double modeled_at_1 = 0.0;
  double modeled_at_4 = 0.0;
  bool diverged = false;

  std::printf("%7s %9s %13s %11s %11s %9s %9s %10s\n", "shards", "resident",
              "modeled q/s", "wall q/s", "disk ms/q", "blocks", "seeks",
              "verified");
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    ShardedEngineOptions options;
    options.num_shards = shards;
    options.disk_backed = true;
    options.disk_budget_per_shard = 0;  // fully disk-resident to start
    options.engine.disk.page_size_bytes = page_bytes;
    ShardedEngine sharded =
        ShardedEngine::Build(MakeCorpus(num_docs), options);

    // Warm every shard's word lists (preprocessing, excluded from
    // timing) and size the budget sweep off the largest shard's resident
    // list bytes: fraction f pins f * that many bytes per shard.
    for (const Query& q : queries) {
      (void)sharded.Mine(q, Algorithm::kNraDisk, MineOptions{.k = 1});
    }
    uint64_t max_shard_bytes = 0;
    for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
      max_shard_bytes = std::max<uint64_t>(
          max_shard_bytes, sharded.shard(s).word_lists().InMemoryBytes());
    }

    // The all-resident reference signatures: one per query, mined with
    // everything pinned (charges only phrase lookups) -- by construction
    // also what in-memory kNra produces on the same fleet.
    sharded.SetDiskBudgetPerShard(max_shard_bytes);
    std::vector<std::vector<std::pair<PhraseId, double>>> reference;
    reference.reserve(queries.size());
    for (const Query& q : queries) {
      const ShardedMineResult all_resident =
          sharded.Mine(q, Algorithm::kNraDisk, MineOptions{.k = 5});
      const ShardedMineResult in_memory =
          sharded.Mine(q, Algorithm::kNra, MineOptions{.k = 5});
      if (Signature(all_resident.result) != Signature(in_memory.result)) {
        std::printf("DIFFERENTIAL FAILURE: all-resident kNraDisk diverged "
                    "from in-memory kNra\n");
        diverged = true;
      }
      reference.push_back(Signature(all_resident.result));
    }

    for (const double fraction : fractions) {
      const auto budget = static_cast<uint64_t>(
          fraction * static_cast<double>(max_shard_bytes));
      sharded.SetDiskBudgetPerShard(budget);

      Row row;
      row.shards = shards;
      row.fraction = fraction;
      row.budget_per_shard = budget;
      double modeled_ms = 0.0;
      StopWatch watch;
      for (std::size_t p = 0; p < passes; ++p) {
        for (std::size_t i = 0; i < queries.size(); ++i) {
          const ShardedMineResult r =
              sharded.Mine(queries[i], Algorithm::kNraDisk,
                           MineOptions{.k = 5});
          modeled_ms += r.result.TotalMs();
          row.mean_disk_ms += r.result.disk_ms;
          row.blocks += r.result.disk_io.blocks_read;
          row.seeks += r.result.disk_io.seeks;
          row.bytes += r.result.disk_io.bytes;
          if (p == 0) {
            row.verified += Signature(r.result) == reference[i] ? 1 : 0;
          }
        }
      }
      const double wall_ms = watch.ElapsedMillis();
      row.modeled_qps = 1000.0 * static_cast<double>(total) / modeled_ms;
      row.wall_qps = 1000.0 * static_cast<double>(total) / wall_ms;
      row.mean_disk_ms /= static_cast<double>(total);
      if (shards == 1 && fraction == 0.0) modeled_at_1 = row.modeled_qps;
      if (shards == 4 && fraction == 0.0) modeled_at_4 = row.modeled_qps;
      if (row.verified != queries.size()) diverged = true;
      sweep.push_back(row);
      std::printf("%7zu %8.0f%% %13.1f %11.1f %11.2f %9llu %9llu %7zu/%zu\n",
                  shards, 100.0 * fraction, row.modeled_qps, row.wall_qps,
                  row.mean_disk_ms,
                  static_cast<unsigned long long>(row.blocks),
                  static_cast<unsigned long long>(row.seeks), row.verified,
                  queries.size());
    }
  }

  if (diverged) {
    std::printf("\nDIFFERENTIAL FAILURE: ranked output changed with "
                "placement -- the disk tier must never move results\n");
    return 3;
  }

  // --- Measured tier: persist, reopen cold, replay the workload -------------
  // Everything above *models* the paper's device. This section persists the
  // monolithic engine to the single-file index format, reopens it via mmap,
  // and reports what actually happened on the measured backend: cold-open
  // wall time (validation touches every payload byte once through the
  // checksums) and per-query first-touch I/O of the mapped word lists
  // (each kNraDisk query resets the touch state, so every query is cold).
  const std::string persist_path = "BENCH_engine.pmidx";
  double cold_open_ms = 0.0;
  uint64_t file_bytes = 0;
  double measured_disk_ms = 0.0;
  uint64_t measured_blocks = 0;
  uint64_t measured_seeks = 0;
  uint64_t measured_bytes = 0;
  bool measured_ok = false;
  {
    // Materialize the workload's word lists so the persisted file carries
    // them (and the reopened engine maps them instead of rebuilding).
    for (const Query& q : queries) {
      (void)mono.Mine(q, Algorithm::kSmj, MineOptions{.k = 1});
    }
    const Status saved = mono.SaveToFile(persist_path);
    if (!saved.ok()) {
      std::printf("\nmeasured tier skipped: persist failed (%s)\n",
                  saved.message().c_str());
    } else {
      auto reopened = MiningEngine::LoadFromFile(persist_path);
      if (!reopened.ok()) {
        std::printf("\nmeasured tier skipped: reopen failed (%s)\n",
                    reopened.status().message().c_str());
      } else {
        MiningEngine& cold = reopened.value();
        cold_open_ms = cold.index_file()->open_ms();
        file_bytes = cold.index_file()->file_bytes();
        for (const Query& q : queries) {
          const MineResult r =
              cold.Mine(q, Algorithm::kNraDisk, MineOptions{.k = 5});
          measured_disk_ms += r.disk_ms;
          measured_blocks += r.disk_io.blocks_read;
          measured_seeks += r.disk_io.seeks;
          measured_bytes += r.disk_io.bytes;
        }
        measured_ok = true;
        std::printf(
            "\nmeasured (mmap-backed) tier: cold open %.2f ms over %llu "
            "file bytes; %zu cold queries touched %llu blocks "
            "(%llu seeks, %llu bytes) in %.2f ms\n",
            cold_open_ms, static_cast<unsigned long long>(file_bytes),
            queries.size(), static_cast<unsigned long long>(measured_blocks),
            static_cast<unsigned long long>(measured_seeks),
            static_cast<unsigned long long>(measured_bytes),
            measured_disk_ms);
      }
    }
    std::remove(persist_path.c_str());
  }

  const double speedup_at_4 =
      modeled_at_1 > 0.0 ? modeled_at_4 / modeled_at_1 : 0.0;
  const bool meets_target = speedup_at_4 >= 2.0;
  const char* enforce = std::getenv("PM_DISK_ENFORCE");
  const bool enforced = enforce != nullptr && enforce[0] == '1';

  // --- JSON report -----------------------------------------------------------
  if (std::FILE* json = std::fopen("BENCH_disk.json", "w")) {
    std::fprintf(json, "{\n  \"hw_threads\": %u,\n  \"disk_sweep\": [",
                 hw_threads);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const Row& row = sweep[i];
      std::fprintf(
          json,
          "%s\n    {\"shards\": %zu, \"fraction\": %.2f, "
          "\"budget_per_shard\": %llu, \"modeled_qps\": %.1f, "
          "\"wall_qps\": %.1f, \"mean_disk_ms\": %.3f, \"blocks\": %llu, "
          "\"seeks\": %llu, \"bytes\": %llu, \"verified\": %zu}",
          i == 0 ? "" : ",", row.shards, row.fraction,
          static_cast<unsigned long long>(row.budget_per_shard),
          row.modeled_qps, row.wall_qps, row.mean_disk_ms,
          static_cast<unsigned long long>(row.blocks),
          static_cast<unsigned long long>(row.seeks),
          static_cast<unsigned long long>(row.bytes), row.verified);
    }
    std::fprintf(
        json,
        "\n  ],\n  \"measured\": {\"ok\": %s, \"cold_open_ms\": %.3f, "
        "\"file_bytes\": %llu, \"queries\": %zu, \"disk_ms\": %.3f, "
        "\"blocks\": %llu, \"seeks\": %llu, \"bytes\": %llu},\n",
        measured_ok ? "true" : "false", cold_open_ms,
        static_cast<unsigned long long>(file_bytes), queries.size(),
        measured_disk_ms, static_cast<unsigned long long>(measured_blocks),
        static_cast<unsigned long long>(measured_seeks),
        static_cast<unsigned long long>(measured_bytes));
    std::fprintf(json,
                 "  \"modeled_qps_at_4\": %.1f,\n"
                 "  \"speedup_at_4\": %.2f,\n  \"target_enforced\": %s,\n"
                 "  \"meets_target\": %s\n}\n",
                 modeled_at_4, speedup_at_4, enforced ? "true" : "false",
                 meets_target ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_disk.json\n");
  }

  std::printf("modeled disk-path speedup at 4 shards (fraction 0): %.2fx %s\n",
              speedup_at_4,
              meets_target          ? "(meets >=2x target)"
              : enforced            ? "(BELOW 2x target)"
                                    : "(below 2x target; informational "
                                      "without PM_DISK_ENFORCE=1)");
  if (!enforced) return 0;
  return meets_target ? 0 : 2;
}

}  // namespace
}  // namespace phrasemine::bench

int main() { return phrasemine::bench::Main(); }
