// Standing-query throughput: end-to-end ingest batches/sec with N live
// subscriptions fanning out over the update stream, against (a) the bare
// ingest path with no subscriptions and (b) the naive strategy that
// re-mines every subscription after every batch. The incremental delta
// path must keep the re-mine fallback rare -- the acceptance bar is
// subscribe_remine_total < batches * subscriptions / 2, enforced with
// exit code 2 -- and a final differential pass asserts every published
// top-k is bitwise equal to a fresh mine (exit code 3 on divergence).
// Results are written to BENCH_subscribe.json for the CI perf trajectory.
//
// Knobs: PM_SUB_DOCS    (corpus size, default 2000),
//        PM_SUB_BATCHES (update batches per phase, default 200),
//        PM_SUB_SUBS    (live subscriptions, default 12).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/engine.h"
#include "eval/query_gen.h"
#include "obs/metrics.h"
#include "subscribe/subscription_manager.h"
#include "text/synthetic.h"

namespace phrasemine::bench {
namespace {

MiningEngine BuildEngine(std::size_t num_docs) {
  SyntheticCorpusOptions options = SyntheticCorpusGenerator::ReutersLike();
  options.num_docs = num_docs;
  SyntheticCorpusGenerator generator(options);
  return MiningEngine::Build(generator.Generate());
}

/// Update batches pre-materialized as strings so no phase reads the
/// vocabulary concurrently with ingest. Each batch inserts two short
/// fragments sliced from base documents -- the streaming-update shape the
/// paper's Section 4.5 targets, where a batch touches a small phrase set
/// rather than re-submitting whole documents -- and every fourth batch
/// deletes one base id (re-deleting an already-deleted id is a no-op,
/// which is fine for a throughput run).
std::vector<UpdateBatch> MaterializeBatches(const MiningEngine& engine,
                                            std::size_t count,
                                            uint64_t seed) {
  const Corpus& corpus = engine.corpus();
  Rng rng(seed);
  std::vector<UpdateBatch> batches;
  batches.reserve(count);
  for (std::size_t b = 0; b < count; ++b) {
    UpdateBatch batch;
    for (int i = 0; i < 2; ++i) {
      const Document& doc = corpus.doc(
          static_cast<DocId>(rng.NextBelow(corpus.size())));
      UpdateDoc out;
      const std::size_t len = std::min<std::size_t>(
          8 + rng.NextBelow(16), doc.tokens.size());
      const std::size_t start =
          doc.tokens.size() > len ? rng.NextBelow(doc.tokens.size() - len)
                                  : 0;
      for (std::size_t t = start; t < start + len; ++t) {
        out.tokens.push_back(corpus.vocab().TermText(doc.tokens[t]));
      }
      batch.inserts.push_back(std::move(out));
    }
    if (b % 4 == 3) {
      batch.deletes.push_back(
          static_cast<DocId>(rng.NextBelow(corpus.size())));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

struct SubSpec {
  SubscriptionRequest request;
  std::string text;  // ParseQuery input for the differential pass
};

int Main() {
  PrintHeader("Standing queries: incremental top-k over the update stream",
              "Incremental delta path sustains ingest with live "
              "subscriptions; re-mine fallback fires on fewer than half "
              "of (batch, subscription) pairs");

  const std::size_t num_docs = EnvSize("PM_SUB_DOCS", 2000);
  const std::size_t num_batches = EnvSize("PM_SUB_BATCHES", 200);
  const std::size_t num_subs = EnvSize("PM_SUB_SUBS", 12);

  MiningEngine engine = BuildEngine(num_docs);

  QueryGenOptions gen_options;
  gen_options.num_queries = num_subs;
  gen_options.min_term_df = 8;
  gen_options.min_pairwise_codf = 3;
  gen_options.min_and_matches = 3;
  const std::vector<Query> harvested = QuerySetGenerator(gen_options).Generate(
      engine.dict(), engine.inverted(), engine.corpus().size());
  if (harvested.empty()) {
    std::printf("no usable queries harvested; corpus too small\n");
    return 1;
  }
  std::vector<SubSpec> specs;
  for (std::size_t i = 0; i < harvested.size(); ++i) {
    SubSpec spec;
    for (TermId t : harvested[i].terms) {
      spec.request.terms.push_back(engine.corpus().vocab().TermText(t));
    }
    // The differential mine must run the canonical (sorted-term) query:
    // Subscribe sorts terms like PhraseService, and the log-sum score is
    // order-sensitive at the ulp level.
    std::sort(spec.request.terms.begin(), spec.request.terms.end());
    for (const std::string& term : spec.request.terms) {
      if (!spec.text.empty()) spec.text += ' ';
      spec.text += term;
    }
    spec.request.op =
        (i % 3 == 2) ? QueryOperator::kOr : QueryOperator::kAnd;
    spec.request.k = 10;
    specs.push_back(std::move(spec));
  }
  std::printf("corpus: %zu docs, %zu batches/phase, %zu subscriptions "
              "(%zu AND, %zu OR)\n\n",
              num_docs, num_batches, specs.size(),
              specs.size() - specs.size() / 3, specs.size() / 3);

  // --- Phase A: bare ingest, no subscriptions ------------------------------
  {
    const std::vector<UpdateBatch> batches =
        MaterializeBatches(engine, num_batches, 1);
    StopWatch watch;
    for (const UpdateBatch& batch : batches) (void)engine.ApplyUpdate(batch);
    const double ms = watch.ElapsedMillis();
    const double bps = 1000.0 * static_cast<double>(num_batches) / ms;
    std::printf("bare ingest:        %8.1f ms, %9.0f batches/s\n", ms, bps);
    // Fold the accumulated overlay into the base index so every phase
    // starts from an empty delta: ApplyUpdate copies the overlay, so a
    // phase that inherits a big one would be charged for its history.
    engine.Rebuild();

    // --- Phase B: naive strategy, re-mine every subscription per batch ----
    // Same batch count as the incremental phase: ApplyUpdate's cost grows
    // with the overlay, so truncating this phase would hand it the cheap
    // prefix of the ingest curve and understate the re-mine penalty.
    const std::size_t remine_batches = num_batches;
    const std::vector<UpdateBatch> remine_stream =
        MaterializeBatches(engine, remine_batches, 2);
    MineOptions mine_options;
    mine_options.k = 10;
    StopWatch remine_watch;
    for (const UpdateBatch& batch : remine_stream) {
      (void)engine.ApplyUpdate(batch);
      for (const SubSpec& spec : specs) {
        const Query query =
            engine.ParseQuery(spec.text, spec.request.op).value();
        MineResult result = engine.Mine(query, Algorithm::kSmj, mine_options);
        (void)result;
      }
    }
    const double remine_ms = remine_watch.ElapsedMillis();
    const double remine_bps =
        1000.0 * static_cast<double>(remine_batches) / remine_ms;
    std::printf("re-mine everything: %8.1f ms, %9.0f batches/s "
                "(%zu batches x %zu mines)\n",
                remine_ms, remine_bps, remine_batches, specs.size());
    engine.Rebuild();

    // --- Phase C: incremental standing queries ----------------------------
    MetricsRegistry registry;
    SubscriptionManagerOptions options;
    options.metrics = &registry;
    SubscriptionManager manager(&engine, options);
    std::vector<uint64_t> ids;
    for (const SubSpec& spec : specs) {
      auto id = manager.Subscribe(spec.request);
      if (!id.ok()) {
        std::printf("Subscribe failed: %s\n", id.status().ToString().c_str());
        return 1;
      }
      ids.push_back(id.value());
    }
    manager.Flush();  // bootstrap mines happen outside the timed region

    const std::vector<UpdateBatch> sub_stream =
        MaterializeBatches(engine, num_batches, 3);
    StopWatch sub_watch;
    for (const UpdateBatch& batch : sub_stream) (void)engine.ApplyUpdate(batch);
    manager.Flush();  // drain: the fan-out cost is part of the phase
    const double sub_ms = sub_watch.ElapsedMillis();
    const double sub_bps =
        1000.0 * static_cast<double>(num_batches) / sub_ms;
    const MetricsSnapshot snapshot = registry.Snapshot();
    const uint64_t incremental = snapshot.counter("subscribe_incremental_total");
    const uint64_t remined = snapshot.counter("subscribe_remine_total");
    const uint64_t notifications =
        snapshot.counter("subscribe_notifications_total");
    std::printf("incremental:        %8.1f ms, %9.0f batches/s "
                "(%.1fx re-mine strategy)\n\n",
                sub_ms, sub_bps, sub_bps / remine_bps);
    std::printf("subscription steps: %llu incremental, %llu re-mined, "
                "%llu notifications\n",
                static_cast<unsigned long long>(incremental),
                static_cast<unsigned long long>(remined),
                static_cast<unsigned long long>(notifications));

    // --- Differential pass: published state == fresh mine -----------------
    for (std::size_t i = 0; i < specs.size(); ++i) {
      auto state = manager.Snapshot(ids[i]);
      if (!state.ok() || !state.value().exact) {
        std::printf("DIVERGENCE: subscription %zu not exact\n", i);
        return 3;
      }
      const Query query =
          engine.ParseQuery(specs[i].text, specs[i].request.op).value();
      MineResult fresh = engine.Mine(query, Algorithm::kSmj, mine_options);
      if (state.value().topk.size() != fresh.phrases.size()) {
        std::printf("DIVERGENCE: subscription %zu size %zu != fresh %zu\n", i,
                    state.value().topk.size(), fresh.phrases.size());
        return 3;
      }
      for (std::size_t r = 0; r < fresh.phrases.size(); ++r) {
        if (state.value().topk[r].phrase != fresh.phrases[r].phrase ||
            state.value().topk[r].score != fresh.phrases[r].score) {
          std::printf("DIVERGENCE: subscription %zu (%s) rank %zu: "
                      "published phrase %llu score %.17g, fresh phrase %llu "
                      "score %.17g\n",
                      i, specs[i].text.c_str(), r,
                      static_cast<unsigned long long>(
                          state.value().topk[r].phrase),
                      state.value().topk[r].score,
                      static_cast<unsigned long long>(fresh.phrases[r].phrase),
                      fresh.phrases[r].score);
          return 3;
        }
      }
    }
    std::printf("differential pass: all %zu subscriptions bitwise equal to "
                "fresh mines\n",
                specs.size());

    const uint64_t remine_budget =
        static_cast<uint64_t>(num_batches) * specs.size() / 2;
    const bool meets_target = remined < remine_budget;
    const double remine_fraction =
        static_cast<double>(remined) /
        static_cast<double>(num_batches * specs.size());

    if (std::FILE* json = std::fopen("BENCH_subscribe.json", "w")) {
      std::fprintf(
          json,
          "{\n  \"subscription\": {\n"
          "    \"docs\": %zu,\n    \"batches\": %zu,\n"
          "    \"subscriptions\": %zu,\n"
          "    \"bare_ingest_batches_per_sec\": %.1f,\n"
          "    \"remine_batches_per_sec\": %.1f,\n"
          "    \"batches_per_sec\": %.1f,\n"
          "    \"speedup_vs_remine\": %.2f,\n"
          "    \"incremental_total\": %llu,\n"
          "    \"remine_total\": %llu,\n"
          "    \"remine_fraction\": %.4f,\n"
          "    \"notifications_total\": %llu,\n"
          "    \"meets_target\": %s\n  }\n}\n",
          num_docs, num_batches, specs.size(), bps, remine_bps, sub_bps,
          sub_bps / remine_bps, static_cast<unsigned long long>(incremental),
          static_cast<unsigned long long>(remined), remine_fraction,
          static_cast<unsigned long long>(notifications),
          meets_target ? "true" : "false");
      std::fclose(json);
      std::printf("wrote BENCH_subscribe.json\n");
    }

    std::printf("\nre-mine fallback: %llu of %zu (batch, subscription) "
                "pairs (%.1f%%) %s\n",
                static_cast<unsigned long long>(remined),
                num_batches * specs.size(), 100.0 * remine_fraction,
                meets_target ? "(meets < 50% target)"
                             : "(ABOVE 50% target)");
    return meets_target ? 0 : 2;
  }
}

}  // namespace
}  // namespace phrasemine::bench

int main() { return phrasemine::bench::Main(); }
