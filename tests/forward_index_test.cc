#include <algorithm>

#include "gtest/gtest.h"
#include "index/forward_index.h"
#include "phrase/phrase_extractor.h"
#include "test_util.h"

namespace phrasemine {
namespace {

using testing::MakeTinyCorpus;

struct TinyFixture {
  Corpus corpus = MakeTinyCorpus();
  PhraseDictionary dict =
      PhraseExtractor({.max_phrase_len = 4, .min_df = 2}).Extract(corpus);
};

TEST(ForwardIndexTest, FullListsSortedDistinct) {
  TinyFixture f;
  ForwardIndex index =
      ForwardIndex::Build(f.corpus, f.dict, ForwardStorage::kFull);
  ASSERT_EQ(index.num_docs(), f.corpus.size());
  for (DocId d = 0; d < index.num_docs(); ++d) {
    auto list = index.stored(d);
    EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
    EXPECT_EQ(std::adjacent_find(list.begin(), list.end()), list.end());
  }
}

TEST(ForwardIndexTest, FullContainsKnownPhrase) {
  TinyFixture f;
  ForwardIndex index =
      ForwardIndex::Build(f.corpus, f.dict, ForwardStorage::kFull);
  const PhraseId p = f.dict.Find(std::vector<TermId>{
      f.corpus.vocab().Lookup("query"), f.corpus.vocab().Lookup("optimization")});
  ASSERT_NE(p, kInvalidPhraseId);
  // Docs 0-3 contain "query optimization".
  for (DocId d = 0; d < 4; ++d) {
    auto list = index.stored(d);
    EXPECT_TRUE(std::binary_search(list.begin(), list.end(), p)) << d;
  }
  for (DocId d = 4; d < 8; ++d) {
    auto list = index.stored(d);
    EXPECT_FALSE(std::binary_search(list.begin(), list.end(), p)) << d;
  }
}

TEST(ForwardIndexTest, CompressedSmallerThanFull) {
  TinyFixture f;
  ForwardIndex full =
      ForwardIndex::Build(f.corpus, f.dict, ForwardStorage::kFull);
  ForwardIndex compressed =
      ForwardIndex::Build(f.corpus, f.dict, ForwardStorage::kPrefixCompressed);
  EXPECT_LT(compressed.TotalStoredEntries(), full.TotalStoredEntries());
}

TEST(ForwardIndexTest, CompressedExpandsToFullSet) {
  TinyFixture f;
  ForwardIndex full =
      ForwardIndex::Build(f.corpus, f.dict, ForwardStorage::kFull);
  ForwardIndex compressed =
      ForwardIndex::Build(f.corpus, f.dict, ForwardStorage::kPrefixCompressed);
  for (DocId d = 0; d < f.corpus.size(); ++d) {
    const std::vector<PhraseId> expanded = compressed.Phrases(d, f.dict);
    const std::vector<PhraseId> reference = full.Phrases(d, f.dict);
    EXPECT_EQ(expanded, reference) << "doc " << d;
  }
}

TEST(ForwardIndexTest, CompressedStoresNoImpliedPrefix) {
  TinyFixture f;
  ForwardIndex compressed =
      ForwardIndex::Build(f.corpus, f.dict, ForwardStorage::kPrefixCompressed);
  for (DocId d = 0; d < f.corpus.size(); ++d) {
    auto list = compressed.stored(d);
    for (PhraseId p : list) {
      // No stored phrase may be the parent of another stored phrase.
      for (PhraseId q : list) {
        if (q == p) continue;
        EXPECT_NE(f.dict.info(q).parent, p)
            << "doc " << d << " stores both a phrase and its prefix";
      }
    }
  }
}

TEST(ForwardIndexTest, CollectDocPhrasesWalksAllLengths) {
  TinyFixture f;
  const auto& tokens = f.corpus.doc(0).tokens;
  const std::vector<PhraseId> phrases = CollectDocPhrases(tokens, f.dict);
  // Must contain the unigram "query", the bigram "query optimization" and
  // the stopword bigram "the of".
  const TermId query = f.corpus.vocab().Lookup("query");
  const TermId optimization = f.corpus.vocab().Lookup("optimization");
  EXPECT_TRUE(std::binary_search(phrases.begin(), phrases.end(),
                                 f.dict.Unigram(query)));
  EXPECT_TRUE(std::binary_search(
      phrases.begin(), phrases.end(),
      f.dict.Find(std::vector<TermId>{query, optimization})));
}

TEST(ForwardIndexTest, SerializationRoundTrip) {
  TinyFixture f;
  for (ForwardStorage storage :
       {ForwardStorage::kFull, ForwardStorage::kPrefixCompressed}) {
    ForwardIndex index = ForwardIndex::Build(f.corpus, f.dict, storage);
    BinaryWriter w;
    index.Serialize(&w);
    BinaryReader r(w.TakeBuffer());
    auto loaded = ForwardIndex::Deserialize(&r);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().storage(), storage);
    ASSERT_EQ(loaded.value().num_docs(), index.num_docs());
    for (DocId d = 0; d < index.num_docs(); ++d) {
      EXPECT_TRUE(std::equal(index.stored(d).begin(), index.stored(d).end(),
                             loaded.value().stored(d).begin(),
                             loaded.value().stored(d).end()));
    }
  }
}

// Property: expansion equivalence holds on synthetic corpora too.
class ForwardIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ForwardIndexPropertyTest, CompressedEquivalentOnSynthetic) {
  Corpus corpus = testing::MakeSmallSyntheticCorpus(80 + 10 * GetParam());
  PhraseDictionary dict =
      PhraseExtractor({.max_phrase_len = 5, .min_df = 3}).Extract(corpus);
  ForwardIndex full = ForwardIndex::Build(corpus, dict, ForwardStorage::kFull);
  ForwardIndex compressed =
      ForwardIndex::Build(corpus, dict, ForwardStorage::kPrefixCompressed);
  EXPECT_LE(compressed.TotalStoredEntries(), full.TotalStoredEntries());
  for (DocId d = 0; d < corpus.size(); d += 7) {
    EXPECT_EQ(compressed.Phrases(d, dict), full.Phrases(d, dict));
  }
}

INSTANTIATE_TEST_SUITE_P(Synthetic, ForwardIndexPropertyTest,
                         ::testing::Range<uint64_t>(0, 5));

}  // namespace
}  // namespace phrasemine
