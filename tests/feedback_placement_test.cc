// Feedback-driven placement: the observed-count hotness order, the
// strict-prefix spill contract under feedback, engine re-placement
// result invariance, the planner's observed_queries prior, and the
// service's RefreshPlacement window/cadence loop.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/disk_lists.h"
#include "core/engine.h"
#include "index/list_entry.h"
#include "service/planner.h"
#include "service/service.h"
#include "shard/sharded_engine.h"
#include "test_util.h"

namespace phrasemine {
namespace {

using testing::MakeSmallEngine;
using testing::RankedSignature;

/// Terms with built word lists on `engine`, covering every term with a
/// positive df (BuildAll keeps the test independent of query harvesting).
std::vector<TermId> BuildAllLists(MiningEngine& engine) {
  std::vector<TermId> terms;
  for (TermId t = 0; t < engine.inverted().num_terms(); ++t) {
    if (engine.inverted().df(t) > 0) terms.push_back(t);
  }
  engine.EnsureWordLists(terms);
  return terms;
}

uint64_t ListBytes(const MiningEngine& engine, TermId t) {
  return engine.word_lists().list(t).size() * kListEntryInMemoryBytes;
}

/// A two-term OR query over the engine's highest-df terms.
Query HeavyQuery(const MiningEngine& engine) {
  std::vector<TermId> terms;
  for (TermId t = 0; t < engine.inverted().num_terms(); ++t) {
    if (engine.inverted().df(t) > 0) terms.push_back(t);
  }
  std::sort(terms.begin(), terms.end(), [&](TermId a, TermId b) {
    return engine.inverted().df(a) > engine.inverted().df(b);
  });
  Query query;
  query.op = QueryOperator::kOr;
  query.terms = {terms.at(0), terms.at(1)};
  std::sort(query.terms.begin(), query.terms.end());
  return query;
}

/// A two-term OR query over the engine's *coldest* listed terms: static
/// df order ranks them last, so any budget sized to their lists spills
/// them -- the configuration where feedback placement visibly differs.
Query ColdQuery(const MiningEngine& engine) {
  const std::vector<TermId> order = DiskResidentLists::HotnessOrder(
      engine.word_lists(), engine.inverted());
  Query query;
  query.op = QueryOperator::kOr;
  query.terms = {order[order.size() - 2], order[order.size() - 1]};
  std::sort(query.terms.begin(), query.terms.end());
  return query;
}

TEST(FeedbackPlacementTest, HotnessOrderPrefersObservedCountsThenDf) {
  MiningEngine engine = MakeSmallEngine();
  BuildAllLists(engine);

  const std::vector<TermId> static_order = DiskResidentLists::HotnessOrder(
      engine.word_lists(), engine.inverted());
  ASSERT_GT(static_order.size(), 4u);

  // Boost the statically coldest term: with feedback it must lead the
  // order, and the never-queried remainder must keep its static relative
  // order (count ties fall back to df desc, then TermId).
  const TermId cold = static_order.back();
  TermPopularity observed;
  observed[cold] = 5;
  const std::vector<TermId> feedback_order = DiskResidentLists::HotnessOrder(
      engine.word_lists(), engine.inverted(), &observed);
  ASSERT_EQ(feedback_order.size(), static_order.size());
  EXPECT_EQ(feedback_order.front(), cold);
  std::vector<TermId> expected_tail(static_order.begin(),
                                    static_order.end() - 1);
  const std::vector<TermId> tail(feedback_order.begin() + 1,
                                 feedback_order.end());
  EXPECT_EQ(tail, expected_tail);

  // Counts rank above each other too, not just above zero.
  const TermId warm = static_order[static_order.size() - 2];
  observed[warm] = 9;
  const std::vector<TermId> two_hot = DiskResidentLists::HotnessOrder(
      engine.word_lists(), engine.inverted(), &observed);
  EXPECT_EQ(two_hot[0], warm);
  EXPECT_EQ(two_hot[1], cold);
}

TEST(FeedbackPlacementTest, ResidentSetIsStrictPrefixOfFeedbackOrder) {
  MiningEngine engine = MakeSmallEngine();
  const std::vector<TermId> terms = BuildAllLists(engine);

  TermPopularity observed;
  const std::vector<TermId> static_order = DiskResidentLists::HotnessOrder(
      engine.word_lists(), engine.inverted());
  observed[static_order.back()] = 40;
  observed[static_order[static_order.size() / 2]] = 20;

  const std::vector<TermId> order = DiskResidentLists::HotnessOrder(
      engine.word_lists(), engine.inverted(), &observed);
  const uint64_t budget = engine.word_lists().InMemoryBytes() / 3;
  const auto resident = DiskResidentLists::ResidentSet(
      engine.word_lists(), engine.inverted(), budget, &observed);
  ASSERT_FALSE(resident.empty());
  ASSERT_LT(resident.size(), terms.size());

  // Walk the feedback order accumulating bytes: pinning stops at the
  // first list that does not fit, everything after spills.
  uint64_t used = 0;
  bool stopped = false;
  for (TermId t : order) {
    const uint64_t bytes = ListBytes(engine, t);
    if (!stopped && used + bytes <= budget) {
      used += bytes;
      EXPECT_TRUE(resident.contains(t)) << "hot term " << t << " not pinned";
    } else {
      stopped = true;
      EXPECT_FALSE(resident.contains(t)) << "cold term " << t << " pinned";
    }
  }
}

TEST(FeedbackPlacementTest, ReplacementNeverChangesResults) {
  MiningEngine engine = MakeSmallEngine();
  BuildAllLists(engine);
  engine.SetDiskResidentBudget(engine.word_lists().InMemoryBytes() / 2);
  const Query query = HeavyQuery(engine);

  const MineResult before = engine.Mine(query, Algorithm::kNraDisk);
  auto observed = std::make_shared<TermPopularity>();
  const std::vector<TermId> order = DiskResidentLists::HotnessOrder(
      engine.word_lists(), engine.inverted());
  (*observed)[order.back()] = 100;  // pin something df would never pin
  engine.SetTermPopularity(observed);
  const MineResult after = engine.Mine(query, Algorithm::kNraDisk);
  EXPECT_EQ(RankedSignature(before), RankedSignature(after));

  // Clearing the snapshot restores static placement, still bitwise equal.
  engine.SetTermPopularity(nullptr);
  const MineResult cleared = engine.Mine(query, Algorithm::kNraDisk);
  EXPECT_EQ(RankedSignature(before), RankedSignature(cleared));
}

TEST(FeedbackPlacementTest, PlacementTracksInstalledPopularity) {
  MiningEngine engine = MakeSmallEngine();
  BuildAllLists(engine);
  const Query query = ColdQuery(engine);

  // Budget exactly the query's own lists: under static df order other
  // terms may out-rank them, but once the query's terms are the observed
  // hot set the spill policy must pin exactly them.
  uint64_t budget = 0;
  for (TermId t : query.terms) budget += ListBytes(engine, t);
  engine.SetDiskResidentBudget(budget);

  const MineResult spilled = engine.Mine(query, Algorithm::kNraDisk);

  auto observed = std::make_shared<TermPopularity>();
  for (TermId t : query.terms) (*observed)[t] = 1000;
  engine.SetTermPopularity(observed);
  const MineResult placed = engine.Mine(query, Algorithm::kNraDisk);

  EXPECT_EQ(RankedSignature(spilled), RankedSignature(placed));
  EXPECT_LT(placed.disk_io.blocks_read, spilled.disk_io.blocks_read)
      << "feedback placement must stop charging I/O for the observed-hot "
         "lists";
}

TEST(FeedbackPlacementTest, PlannerSurfacesObservedQueriesPrior) {
  // The planner only gathers disk inputs from engines built disk-backed.
  MiningEngine::Options build_options;
  build_options.extractor.min_df = 5;
  build_options.disk_backed = true;
  MiningEngine engine = MiningEngine::Build(
      testing::MakeSmallSyntheticCorpus(), build_options);
  BuildAllLists(engine);
  const Query query = ColdQuery(engine);
  uint64_t budget = 0;
  for (TermId t : query.terms) budget += ListBytes(engine, t);
  engine.SetDiskResidentBudget(budget);

  CostPlanner planner(&engine);
  const PlannerInputs before = planner.GatherInputs(query, MineOptions{});
  ASSERT_TRUE(before.disk_backed);
  bool any_on_disk_before = false;
  for (const TermPlanStats& t : before.terms) {
    EXPECT_EQ(t.observed_queries, 0u) << "no snapshot installed yet";
    any_on_disk_before |= t.on_disk;
  }
  EXPECT_TRUE(any_on_disk_before)
      << "the query's terms must not all fit under static df order (else "
         "this corpus cannot distinguish the placements)";

  auto observed = std::make_shared<TermPopularity>();
  for (TermId t : query.terms) (*observed)[t] = 17;
  engine.SetTermPopularity(observed);

  const PlannerInputs after = planner.GatherInputs(query, MineOptions{});
  for (const TermPlanStats& t : after.terms) {
    EXPECT_EQ(t.observed_queries, 17u);
    EXPECT_FALSE(t.on_disk)
        << "observed-hot term " << t.term << " still predicted spilled";
    EXPECT_EQ(t.disk_blocks, 0u);
  }
}

TEST(FeedbackPlacementTest, ServiceRefreshUsesWindowedCounts) {
  MiningEngine engine = MakeSmallEngine();
  BuildAllLists(engine);
  engine.SetDiskResidentBudget(engine.word_lists().InMemoryBytes() / 2);

  PhraseServiceOptions options;
  options.enable_result_cache = false;
  PhraseService service(&engine, options);

  // Nothing served yet: a refresh has no window and installs nothing.
  EXPECT_FALSE(service.RefreshPlacement());
  EXPECT_EQ(service.stats().placement_refreshes, 0u);

  ServiceRequest request;
  request.query = HeavyQuery(engine);
  request.algorithm = Algorithm::kNraDisk;
  const ServiceReply first = service.MineSync(request);
  EXPECT_TRUE(service.RefreshPlacement());
  EXPECT_EQ(service.stats().placement_refreshes, 1u);

  // The per-term counters are published under the documented names.
  const MetricsSnapshot snap = service.metrics_snapshot();
  for (TermId t : request.query.terms) {
    const std::string name =
        "service_term_queries_total{term=\"" + std::to_string(t) + "\"}";
    EXPECT_EQ(snap.counter(name), 1u) << name;
  }

  // No traffic since the last refresh: the window is empty, placement
  // stays, the counter does not move.
  EXPECT_FALSE(service.RefreshPlacement());
  EXPECT_EQ(service.stats().placement_refreshes, 1u);

  // Placement moves cost, never results.
  const ServiceReply after = service.MineSync(request);
  EXPECT_EQ(RankedSignature(first.result), RankedSignature(after.result));
  EXPECT_TRUE(service.RefreshPlacement());
  EXPECT_EQ(service.stats().placement_refreshes, 2u);
}

TEST(FeedbackPlacementTest, WindowedCountsSurviveRebuild) {
  // Regression pin for the windowed-placement semantics: a full engine
  // Rebuild reassigns PhraseIds but carries the vocabulary over, so the
  // service's per-term query counters -- keyed by TermId -- must keep
  // their totals, the refresh window must keep accumulating across the
  // rebuild, and a post-rebuild RefreshPlacement must still install a
  // placement without changing results.
  MiningEngine engine = MakeSmallEngine();
  BuildAllLists(engine);
  engine.SetDiskResidentBudget(engine.word_lists().InMemoryBytes() / 2);

  PhraseServiceOptions options;
  options.enable_result_cache = false;
  PhraseService service(&engine, options);

  ServiceRequest request;
  request.query = HeavyQuery(engine);
  request.algorithm = Algorithm::kNraDisk;
  const ServiceReply before = service.MineSync(request);
  ASSERT_TRUE(before.status.ok());
  EXPECT_TRUE(service.RefreshPlacement());

  // One more served query lands in the *new* window, then churn + a full
  // rebuild happen under it.
  (void)service.MineSync(request);
  UpdateBatch batch;
  UpdateDoc doc;
  doc.tokens = {"windowed", "placement", "rebuild"};
  batch.inserts.push_back(std::move(doc));
  service.IngestBatch(batch);
  batch.deletes = {0};
  batch.inserts.clear();
  service.IngestBatch(batch);
  engine.Rebuild();
  BuildAllLists(engine);

  // Counter totals survive: TermIds are stable across Rebuild.
  const MetricsSnapshot snap = service.metrics_snapshot();
  for (TermId t : request.query.terms) {
    const std::string name =
        "service_term_queries_total{term=\"" + std::to_string(t) + "\"}";
    EXPECT_EQ(snap.counter(name), 2u) << name;
  }

  // The pre-rebuild window entry is still pending: the refresh installs
  // it onto the rebuilt engine's lists, and placement stays cost-only.
  const ServiceReply rebuilt = service.MineSync(request);
  ASSERT_TRUE(rebuilt.status.ok());
  EXPECT_TRUE(service.RefreshPlacement());
  EXPECT_EQ(service.stats().placement_refreshes, 2u);
  const ServiceReply placed = service.MineSync(request);
  ASSERT_TRUE(placed.status.ok());
  EXPECT_EQ(RankedSignature(rebuilt.result), RankedSignature(placed.result));
}

TEST(FeedbackPlacementTest, ServiceCadenceFiresAutomatically) {
  MiningEngine engine = MakeSmallEngine();
  BuildAllLists(engine);
  engine.SetDiskResidentBudget(engine.word_lists().InMemoryBytes() / 2);

  PhraseServiceOptions options;
  options.enable_result_cache = false;
  options.placement_refresh_interval = 3;
  PhraseService service(&engine, options);

  ServiceRequest request;
  request.query = HeavyQuery(engine);
  request.algorithm = Algorithm::kNraDisk;
  for (int i = 0; i < 7; ++i) (void)service.MineSync(request);
  EXPECT_GE(service.stats().placement_refreshes, 2u);
}

TEST(FeedbackPlacementTest, ShardedBroadcastKeepsResults) {
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.disk_backed = true;
  ShardedEngine sharded = ShardedEngine::Build(
      testing::MakeSmallSyntheticCorpus(), options);

  Query query = HeavyQuery(sharded.shard(0));
  const ShardedMineResult before =
      sharded.Mine(query, Algorithm::kNraDisk, MineOptions{.k = 5});

  auto observed = std::make_shared<TermPopularity>();
  for (TermId t : query.terms) (*observed)[t] = 50;
  sharded.SetTermPopularity(observed);
  const ShardedMineResult after =
      sharded.Mine(query, Algorithm::kNraDisk, MineOptions{.k = 5});
  EXPECT_EQ(RankedSignature(before.result), RankedSignature(after.result));
}

}  // namespace
}  // namespace phrasemine
