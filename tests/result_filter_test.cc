#include "core/result_filter.h"

#include "core/engine.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace phrasemine {
namespace {

TEST(ResultFilterTest, OverlapFractionComputation) {
  MiningEngine engine = testing::MakeTinyEngine();
  const Corpus& corpus = engine.corpus();
  auto q = engine.ParseQuery("query optimization", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());

  const PhraseId qo = engine.dict().Find(std::vector<TermId>{
      corpus.vocab().Lookup("query"), corpus.vocab().Lookup("optimization")});
  ASSERT_NE(qo, kInvalidPhraseId);
  EXPECT_DOUBLE_EQ(QueryOverlapFraction(q.value(), qo, engine.dict()), 1.0);

  const PhraseId join = engine.dict().Unigram(corpus.vocab().Lookup("join"));
  ASSERT_NE(join, kInvalidPhraseId);
  EXPECT_DOUBLE_EQ(QueryOverlapFraction(q.value(), join, engine.dict()), 0.0);
}

TEST(ResultFilterTest, RemovesHighOverlapResults) {
  MiningEngine engine = testing::MakeTinyEngine();
  auto q = engine.ParseQuery("query optimization", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  MineResult result =
      engine.Mine(q.value(), Algorithm::kExact, MineOptions{.k = 50});
  const std::size_t before = result.phrases.size();
  ASSERT_GT(before, 0u);

  OverlapFilterOptions filter;
  filter.max_overlap_fraction = 0.0;  // Drop anything touching the query.
  const std::size_t removed =
      FilterQueryOverlap(q.value(), engine.dict(), filter, &result);
  EXPECT_GT(removed, 0u);
  EXPECT_EQ(result.phrases.size() + removed, before);
  for (const MinedPhrase& p : result.phrases) {
    EXPECT_DOUBLE_EQ(QueryOverlapFraction(q.value(), p.phrase, engine.dict()),
                     0.0);
  }
}

TEST(ResultFilterTest, ThresholdOneKeepsEverything) {
  MiningEngine engine = testing::MakeTinyEngine();
  auto q = engine.ParseQuery("db", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  MineResult result =
      engine.Mine(q.value(), Algorithm::kExact, MineOptions{.k = 20});
  OverlapFilterOptions filter;
  filter.max_overlap_fraction = 1.0;
  EXPECT_EQ(FilterQueryOverlap(q.value(), engine.dict(), filter, &result), 0u);
}

TEST(ResultFilterTest, PreservesRankOrder) {
  MiningEngine engine = testing::MakeTinyEngine();
  auto q = engine.ParseQuery("kernel", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  MineResult result =
      engine.Mine(q.value(), Algorithm::kExact, MineOptions{.k = 30});
  OverlapFilterOptions filter;
  filter.max_overlap_fraction = 0.4;
  FilterQueryOverlap(q.value(), engine.dict(), filter, &result);
  for (std::size_t i = 1; i < result.phrases.size(); ++i) {
    EXPECT_GE(result.phrases[i - 1].score, result.phrases[i].score);
  }
}

TEST(InterestingnessTest, NormalizedFrequencyIsEq1) {
  EXPECT_DOUBLE_EQ(
      EvaluateInterestingness(InterestingnessMeasure::kNormalizedFrequency, 3,
                              12, 100, 1000),
      0.25);
}

TEST(InterestingnessTest, DegenerateInputsYieldZero) {
  for (InterestingnessMeasure m :
       {InterestingnessMeasure::kNormalizedFrequency,
        InterestingnessMeasure::kPmi}) {
    EXPECT_DOUBLE_EQ(EvaluateInterestingness(m, 0, 10, 100, 1000), 0.0);
    EXPECT_DOUBLE_EQ(EvaluateInterestingness(m, 5, 0, 100, 1000), 0.0);
    EXPECT_DOUBLE_EQ(EvaluateInterestingness(m, 5, 10, 0, 1000), 0.0);
  }
}

TEST(InterestingnessTest, PmiPositiveForConcentration) {
  // Phrase fully concentrated in a 10% sub-collection: PMI = log(10) > 0.
  const double pmi = EvaluateInterestingness(InterestingnessMeasure::kPmi, 10,
                                             10, 100, 1000);
  EXPECT_NEAR(pmi, std::log(10.0), 1e-12);
}

TEST(InterestingnessTest, PmiNegativeForAvoidance) {
  // Phrase under-represented in the sub-collection: PMI < 0.
  const double pmi = EvaluateInterestingness(InterestingnessMeasure::kPmi, 1,
                                             100, 500, 1000);
  EXPECT_LT(pmi, 0.0);
}

TEST(InterestingnessTest, ExactMinerSupportsPmi) {
  MiningEngine engine = testing::MakeTinyEngine();
  auto q = engine.ParseQuery("query optimization", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  MineOptions options;
  options.k = 5;
  options.measure = InterestingnessMeasure::kPmi;
  MineResult pmi = engine.Mine(q.value(), Algorithm::kExact, options);
  ASSERT_FALSE(pmi.phrases.empty());
  // PMI and Eq. 1 agree on which phrases are maximally concentrated, and
  // both must exclude the everywhere-frequent stopword bigram from the top.
  const PhraseId stop_bigram = engine.dict().Find(std::vector<TermId>{
      engine.corpus().vocab().Lookup("the"),
      engine.corpus().vocab().Lookup("of")});
  for (const MinedPhrase& p : pmi.phrases) {
    EXPECT_NE(p.phrase, stop_bigram);
  }
  // PMI scores are log-scale: top score = log(|D| / |D'|) for phrases fully
  // inside D'.
  const std::vector<DocId> subset =
      EvalSubCollection(q.value(), engine.inverted());
  EXPECT_NEAR(pmi.phrases[0].score,
              std::log(static_cast<double>(engine.corpus().size()) /
                       static_cast<double>(subset.size())),
              1e-12);
}

TEST(InterestingnessTest, PmiAndEq1AgreeOnGmToo) {
  MiningEngine engine = testing::MakeTinyEngine();
  auto q = engine.ParseQuery("kernel", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  MineOptions options;
  options.k = 3;
  options.measure = InterestingnessMeasure::kPmi;
  MineResult exact = engine.Mine(q.value(), Algorithm::kExact, options);
  MineResult gm = engine.Mine(q.value(), Algorithm::kGm, options);
  EXPECT_EQ(testing::Ids(exact), testing::Ids(gm));
}

}  // namespace
}  // namespace phrasemine
