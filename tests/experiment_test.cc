#include "eval/experiment.h"

#include "eval/query_gen.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace phrasemine {
namespace {

struct Fixture {
  Fixture() : engine(testing::MakeSmallEngine(400)) {
    QuerySetGenerator qgen(QueryGenOptions{.seed = 19, .num_queries = 6});
    queries =
        qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
    engine.EnsureWordListsFor(queries);
  }
  MiningEngine engine;
  std::vector<Query> queries;
};

TEST(ExperimentTest, ExactAgainstItselfIsPerfect) {
  Fixture f;
  AggregateRun run =
      RunExperiment(f.engine, f.queries, QueryOperator::kAnd,
                    Algorithm::kExact, MineOptions{.k = 5},
                    /*evaluate_quality=*/true);
  EXPECT_EQ(run.num_queries, f.queries.size());
  EXPECT_NEAR(run.quality.precision, 1.0, 1e-12);
  EXPECT_NEAR(run.quality.ndcg, 1.0, 1e-12);
  EXPECT_NEAR(run.quality.mrr, 1.0, 1e-12);
  EXPECT_NEAR(run.quality.map, 1.0, 1e-12);
  // Exact scores equal true interestingness: zero divergence.
  EXPECT_NEAR(run.mean_interestingness_diff, 0.0, 1e-12);
}

TEST(ExperimentTest, GmAgainstExactIsPerfectToo) {
  Fixture f;
  AggregateRun run = RunExperiment(f.engine, f.queries, QueryOperator::kOr,
                                   Algorithm::kGm, MineOptions{.k = 5},
                                   /*evaluate_quality=*/true);
  EXPECT_NEAR(run.quality.ndcg, 1.0, 1e-12);
}

TEST(ExperimentTest, TimingOnlySkipsQualityWork) {
  Fixture f;
  AggregateRun run =
      RunExperiment(f.engine, f.queries, QueryOperator::kAnd, Algorithm::kSmj,
                    MineOptions{.k = 5}, /*evaluate_quality=*/false);
  EXPECT_EQ(run.num_queries, f.queries.size());
  EXPECT_DOUBLE_EQ(run.quality.ndcg, 0.0);
  EXPECT_GE(run.avg_total_ms, 0.0);
  EXPECT_GT(run.avg_entries_read, 0.0);
}

TEST(ExperimentTest, OperatorIsApplied) {
  Fixture f;
  // AND and OR must traverse different amounts of data for GM.
  AggregateRun and_run =
      RunExperiment(f.engine, f.queries, QueryOperator::kAnd, Algorithm::kGm,
                    MineOptions{.k = 5}, /*evaluate_quality=*/false);
  AggregateRun or_run =
      RunExperiment(f.engine, f.queries, QueryOperator::kOr, Algorithm::kGm,
                    MineOptions{.k = 5}, /*evaluate_quality=*/false);
  EXPECT_GT(or_run.avg_entries_read, and_run.avg_entries_read);
}

TEST(ExperimentTest, TrueInterestingnessMatchesDefinition) {
  Fixture f;
  Query q = f.queries.front();
  q.op = QueryOperator::kOr;
  const std::vector<DocId> subset = EvalSubCollection(q, f.engine.inverted());
  ASSERT_FALSE(subset.empty());
  // For any phrase: |docs(p) ∩ D'| / df(p), cross-checked against postings.
  for (PhraseId p = 0; p < std::min<std::size_t>(f.engine.dict().size(), 50);
       ++p) {
    const double value = TrueInterestingness(f.engine, p, subset);
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0);
    const double expected =
        static_cast<double>(InvertedIndex::IntersectSize(
            f.engine.postings().docs(p), subset)) /
        static_cast<double>(f.engine.dict().df(p));
    EXPECT_DOUBLE_EQ(value, expected);
  }
}

TEST(ExperimentTest, DiskRunsAccumulateDiskTime) {
  Fixture f;
  AggregateRun run = RunExperiment(
      f.engine, f.queries, QueryOperator::kAnd, Algorithm::kNraDisk,
      MineOptions{.k = 5}, /*evaluate_quality=*/false);
  EXPECT_GT(run.avg_disk_ms, 0.0);
  EXPECT_NEAR(run.avg_total_ms, run.avg_compute_ms + run.avg_disk_ms, 1e-9);
}

TEST(ExperimentTest, EmptyWorkloadIsSafe) {
  Fixture f;
  AggregateRun run =
      RunExperiment(f.engine, {}, QueryOperator::kAnd, Algorithm::kExact,
                    MineOptions{.k = 5}, /*evaluate_quality=*/true);
  EXPECT_EQ(run.num_queries, 0u);
  EXPECT_DOUBLE_EQ(run.avg_total_ms, 0.0);
}

}  // namespace
}  // namespace phrasemine
