// Deadline propagation and cooperative cancellation: CancelToken
// semantics, miner-level aborts with partial accounting and trace
// markers, bounded cancellation latency (the trace-asserted "< 2
// block-check intervals" contract), determinism when the deadline never
// fires, and the service's deadline surface end to end.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.h"
#include "core/engine.h"
#include "obs/trace.h"
#include "service/service.h"
#include "shard/sharded_engine.h"
#include "test_util.h"
#include "testing/failpoint.h"

namespace phrasemine {
namespace {

using testing::MakeSmallEngine;
using testing::MakeSmallSyntheticCorpus;
using testing::RankedSignature;

/// Depth-first search for a counter anywhere in a span tree.
bool FindCounter(const TraceSpan* span, const std::string& name,
                 double* value) {
  if (span == nullptr) return false;
  for (const auto& [n, v] : span->counters) {
    if (n == name) {
      *value = v;
      return true;
    }
  }
  for (const auto& child : span->children) {
    if (FindCounter(child.get(), name, value)) return true;
  }
  return false;
}

/// A two-term OR query over the engine's highest-df terms: long lists, so
/// an un-cancelled mine does real traversal work.
Query HeavyQuery(const MiningEngine& engine) {
  std::vector<TermId> terms;
  for (TermId t = 0; t < engine.inverted().num_terms(); ++t) {
    if (engine.inverted().df(t) > 0) terms.push_back(t);
  }
  std::sort(terms.begin(), terms.end(), [&](TermId a, TermId b) {
    return engine.inverted().df(a) > engine.inverted().df(b);
  });
  Query query;
  query.op = QueryOperator::kOr;
  query.terms = {terms.at(0), terms.at(1)};
  std::sort(query.terms.begin(), query.terms.end());
  return query;
}

TEST(CancelTokenTest, Semantics) {
  CancelToken none;  // never expires on its own
  EXPECT_FALSE(none.has_deadline());
  EXPECT_FALSE(none.Expired());
  EXPECT_FALSE(none.cancelled());
  EXPECT_GT(none.remaining_ms(), 1e12);
  none.Cancel();
  EXPECT_TRUE(none.cancelled());
  EXPECT_TRUE(none.Expired());
  EXPECT_EQ(none.remaining_ms(), 0.0);

  CancelToken past = CancelToken::AfterMillis(-1.0);
  EXPECT_TRUE(past.has_deadline());
  EXPECT_LT(past.remaining_ms(), 0.0);
  // The flag is not set until a full check latches it...
  EXPECT_FALSE(past.cancelled());
  // ...and Expired() is that check: it observes the past deadline and
  // publishes the verdict to flag-only readers (sibling shard legs).
  EXPECT_TRUE(past.Expired());
  EXPECT_TRUE(past.cancelled());

  CancelToken future = CancelToken::AfterMillis(60'000.0);
  EXPECT_FALSE(future.Expired());
  EXPECT_GT(future.remaining_ms(), 1'000.0);

  EXPECT_FALSE(CancelRequested(nullptr));
  EXPECT_FALSE(CancelExpired(nullptr));
}

TEST(DeadlineTest, ExpiredTokenAbortsNraWithTraceMarkers) {
  MiningEngine engine = MakeSmallEngine();
  const Query query = HeavyQuery(engine);
  const CancelToken expired = CancelToken::AfterMillis(-1.0);
  MineOptions options;
  options.trace = true;
  options.cancel = &expired;
  const MineResult aborted = engine.Mine(query, Algorithm::kNra, options);
  EXPECT_EQ(aborted.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(aborted.entries_read, 0u);  // expired before the traversal
  ASSERT_NE(aborted.trace, nullptr);
  double cancelled = 0.0;
  EXPECT_TRUE(FindCounter(aborted.trace.get(), "cancelled", &cancelled));
  EXPECT_EQ(cancelled, 1.0);
  double at_cancel = -1.0;
  EXPECT_TRUE(
      FindCounter(aborted.trace.get(), "entries_at_cancel", &at_cancel));
  EXPECT_EQ(at_cancel, 0.0);

  // The same engine serves the same query normally afterwards.
  const MineResult ok = engine.Mine(query, Algorithm::kNra, MineOptions{});
  EXPECT_TRUE(ok.status.ok());
  EXPECT_FALSE(ok.phrases.empty());
}

TEST(DeadlineTest, ExpiredTokenAbortsSmjBothPaths) {
  MiningEngine engine = MakeSmallEngine();
  const Query query = HeavyQuery(engine);
  const CancelToken expired = CancelToken::AfterMillis(-1.0);
  for (const bool kernels : {true, false}) {
    MineOptions options;
    options.use_kernels = kernels;
    options.trace = true;
    options.cancel = &expired;
    const MineResult aborted = engine.Mine(query, Algorithm::kSmj, options);
    EXPECT_EQ(aborted.status.code(), StatusCode::kDeadlineExceeded)
        << (kernels ? "kernel" : "scalar");
    double cancelled = 0.0;
    EXPECT_TRUE(FindCounter(aborted.trace.get(), "cancelled", &cancelled));
  }
}

TEST(DeadlineTest, UnfiredDeadlineIsBitwiseInvisible) {
  // A token that never fires must not change one byte of ranked output on
  // any list-based path -- the polls are branches, not behavior.
  MiningEngine engine = MakeSmallEngine();
  const Query query = HeavyQuery(engine);
  const CancelToken generous = CancelToken::AfterMillis(600'000.0);
  for (const Algorithm algorithm : {Algorithm::kNra, Algorithm::kSmj}) {
    for (const bool kernels : {true, false}) {
      MineOptions plain;
      plain.use_kernels = kernels;
      MineOptions timed = plain;
      timed.cancel = &generous;
      const MineResult a = engine.Mine(query, algorithm, plain);
      const MineResult b = engine.Mine(query, algorithm, timed);
      EXPECT_TRUE(b.status.ok());
      EXPECT_EQ(RankedSignature(a), RankedSignature(b))
          << AlgorithmName(algorithm) << (kernels ? "/kernel" : "/scalar");
    }
  }
}

TEST(DeadlineTest, RunningShardedMineCancelsWithinTwoBatches) {
  // The acceptance bound: an expiring deadline stops a *running* sharded
  // mine within two block-check intervals per shard leg, asserted via the
  // trace's entries_at_cancel counter. A latency failpoint on the
  // simulated device makes every spilled read slow (budget 0: everything
  // spills), so a short deadline reliably fires inside the first NRA
  // batch and the batch-cadence check must catch it at the next boundary.
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.disk_backed = true;
  options.disk_budget_per_shard = 0;
  options.engine.extractor.min_df = 3;
  ShardedEngine sharded =
      ShardedEngine::Build(MakeSmallSyntheticCorpus(700), std::move(options));
  const Query query = HeavyQuery(sharded.shard(0));

  constexpr std::size_t kBatch = 64;
  failpoint::Arm("disk.sim.read", {.delay_ms = 0.5});
  const CancelToken deadline = CancelToken::AfterMillis(1.0);
  MineOptions mine_options;
  mine_options.trace = true;
  mine_options.nra_batch_size = kBatch;
  mine_options.cancel = &deadline;
  const ShardedMineResult aborted =
      sharded.Mine(query, Algorithm::kNraDisk, mine_options);
  failpoint::DisarmAll();

  EXPECT_EQ(aborted.result.status.code(), StatusCode::kDeadlineExceeded);
  ASSERT_NE(aborted.result.trace, nullptr);
  double cancelled = 0.0;
  EXPECT_TRUE(
      FindCounter(aborted.result.trace.get(), "cancelled", &cancelled));
  EXPECT_EQ(cancelled, 1.0);
  double at_cancel = -1.0;
  ASSERT_TRUE(FindCounter(aborted.result.trace.get(), "entries_at_cancel",
                          &at_cancel));
  // Each shard leg stops within two batch boundaries of the deadline
  // firing; the counter aggregates the legs.
  EXPECT_LE(at_cancel,
            static_cast<double>(2 * kBatch * sharded.num_shards()));

  // Faults off: the same fleet serves the same query to completion.
  const ShardedMineResult ok =
      sharded.Mine(query, Algorithm::kNraDisk, MineOptions{});
  EXPECT_TRUE(ok.result.status.ok());
  EXPECT_FALSE(ok.result.phrases.empty());
}

TEST(DeadlineTest, ServiceDeadlineExpiresMidExecution) {
  // End to end through the front door: a deadline that fires during a
  // slow disk-backed mine surfaces as ServiceReply::status ==
  // DeadlineExceeded, bumps the metric, and never caches the partial.
  MiningEngineOptions engine_options;
  engine_options.extractor.min_df = 3;
  engine_options.disk_backed = true;
  engine_options.disk_resident_budget = 0;
  MiningEngine engine =
      MiningEngine::Build(MakeSmallSyntheticCorpus(700), engine_options);
  PhraseService service(&engine, {});
  const Query query = HeavyQuery(engine);

  failpoint::Arm("disk.sim.read", {.delay_ms = 0.5});
  ServiceRequest request{query, MineOptions{}, Algorithm::kNraDisk};
  request.deadline_ms = 5.0;
  const ServiceReply slow = service.MineSync(request);
  failpoint::DisarmAll();
  EXPECT_EQ(slow.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.stats().deadline_exceeded, 1u);

  // The partial was not cached: the same request without a deadline now
  // executes (no cache hit) and completes.
  const ServiceReply replay = service.MineSync(
      ServiceRequest{query, MineOptions{}, Algorithm::kNraDisk});
  EXPECT_TRUE(replay.status.ok()) << replay.status.ToString();
  EXPECT_FALSE(replay.result_cache_hit);
  EXPECT_FALSE(replay.result.phrases.empty());
}

}  // namespace
}  // namespace phrasemine
