// Unit-level behaviour of the NRA miner against hand-constructed word
// lists, mirroring the worked example of Figure 3 in the paper: candidate
// bounds, the checknew cutoff, and bound-based termination.

#include "core/nra_miner.h"

#include "core/smj_miner.h"
#include "eval/query_gen.h"
#include "gtest/gtest.h"
#include "index/word_lists.h"
#include "phrase/phrase_dictionary.h"
#include "phrase/phrase_extractor.h"
#include "test_util.h"
#include "text/corpus.h"

namespace phrasemine {
namespace {

// Builds a fixture whose word lists are fully under test control: a small
// corpus engineered so that terms a/b co-occur with known phrase sets.
struct HandFixture {
  HandFixture() {
    // Vocabulary: a b p1 p2 p3 filler...
    // docs(p1) = {0,1}: both contain a and b        -> P(a|p1)=P(b|p1)=1
    // docs(p2) = {0,1,2,3}: a in {0,1,2}, b in {0,1,3} -> P=3/4 each
    // docs(p3) = {4,5}: only a                      -> P(a|p3)=1, P(b|p3)=0
    corpus.AddTokenized({"a", "b", "p1", "p2"});
    corpus.AddTokenized({"a", "b", "p1", "p2"});
    corpus.AddTokenized({"a", "p2", "x1"});
    corpus.AddTokenized({"b", "p2", "x2"});
    corpus.AddTokenized({"a", "p3", "x3"});
    corpus.AddTokenized({"a", "p3", "x4"});
    PhraseExtractor extractor({.max_phrase_len = 1, .min_df = 2});
    dict = extractor.Extract(corpus);
    inverted = InvertedIndex::Build(corpus);
    forward = ForwardIndex::Build(corpus, dict, ForwardStorage::kFull);
    lists = WordScoreLists::BuildAll(inverted, forward, dict);
  }

  TermId term(const char* w) const { return corpus.vocab().Lookup(w); }
  PhraseId phrase(const char* w) const { return dict.Unigram(term(w)); }

  Corpus corpus;
  PhraseDictionary dict;
  InvertedIndex inverted;
  ForwardIndex forward;
  WordScoreLists lists;
};

TEST(NraDetailTest, OrQueryRanksByProbabilitySum) {
  HandFixture f;
  NraMiner miner(f.lists, f.dict);
  Query q;
  q.terms = {f.term("a"), f.term("b")};
  q.op = QueryOperator::kOr;
  MineResult r = miner.Mine(q, MineOptions{.k = 3});
  ASSERT_GE(r.phrases.size(), 3u);
  // p1 (1+1=2) first; true runner-up score is 1.0 shared by several
  // unigrams ("a" and "b" themselves score 2.0 as well though!).
  // Verify p1 is ranked at score 2 and p3 scores exactly 1.0 (= P(a|p3)).
  bool found_p1 = false;
  bool found_p3 = false;
  for (const MinedPhrase& p : r.phrases) {
    if (p.phrase == f.phrase("p1")) {
      EXPECT_NEAR(p.score, 2.0, 1e-12);
      found_p1 = true;
    }
    if (p.phrase == f.phrase("p3")) {
      EXPECT_NEAR(p.score, 1.0, 1e-12);
      found_p3 = true;
    }
  }
  EXPECT_TRUE(found_p1);
  (void)found_p3;  // p3 ties with other 1.0-scored phrases; may be cut.
}

TEST(NraDetailTest, AndQueryExcludesSingleSidedPhrases) {
  HandFixture f;
  NraMiner miner(f.lists, f.dict);
  Query q;
  q.terms = {f.term("a"), f.term("b")};
  q.op = QueryOperator::kAnd;
  MineResult r = miner.Mine(q, MineOptions{.k = 10});
  // p3 co-occurs only with a: P(b|p3) = 0 -> log 0 = -inf -> excluded.
  for (const MinedPhrase& p : r.phrases) {
    EXPECT_NE(p.phrase, f.phrase("p3"));
  }
  // p1 present with exp(log1+log1) = 1.0; p2 with (3/4)^2 = 0.5625.
  ASSERT_FALSE(r.phrases.empty());
  bool found_p2 = false;
  for (const MinedPhrase& p : r.phrases) {
    if (p.phrase == f.phrase("p2")) {
      EXPECT_NEAR(p.interestingness, 0.5625, 1e-12);
      found_p2 = true;
    }
  }
  EXPECT_TRUE(found_p2);
}

TEST(NraDetailTest, AndInterestingnessIsProductOfProbs) {
  HandFixture f;
  NraMiner miner(f.lists, f.dict);
  Query q;
  q.terms = {f.term("a"), f.term("b")};
  q.op = QueryOperator::kAnd;
  MineResult r = miner.Mine(q, MineOptions{.k = 1});
  ASSERT_EQ(r.phrases.size(), 1u);
  // Top AND phrase has P(a|p)=P(b|p)=1 (several tie; all have product 1).
  EXPECT_NEAR(r.phrases[0].interestingness, 1.0, 1e-12);
}

TEST(NraDetailTest, EntriesReadBoundedByLists) {
  HandFixture f;
  NraMiner miner(f.lists, f.dict);
  Query q;
  q.terms = {f.term("a"), f.term("b")};
  q.op = QueryOperator::kOr;
  MineResult r = miner.Mine(q, MineOptions{.k = 2});
  const std::size_t total = f.lists.list(f.term("a")).size() +
                            f.lists.list(f.term("b")).size();
  EXPECT_LE(r.entries_read, total);
  EXPECT_GT(r.entries_read, 0u);
}

TEST(NraDetailTest, FractionZeroReadsNothing) {
  HandFixture f;
  NraMiner miner(f.lists, f.dict);
  Query q;
  q.terms = {f.term("a")};
  q.op = QueryOperator::kOr;
  MineResult r =
      miner.Mine(q, MineOptions{.k = 5, .list_fraction = 0.0});
  EXPECT_EQ(r.entries_read, 0u);
  EXPECT_TRUE(r.phrases.empty());
}

TEST(NraDetailTest, SingleEntryBatchStillCorrect) {
  HandFixture f;
  NraMiner miner(f.lists, f.dict);
  WordIdOrderedLists id_lists = WordIdOrderedLists::Build(f.lists, 1.0);
  SmjMiner smj_miner(id_lists, f.dict);
  Query q;
  q.terms = {f.term("a"), f.term("b")};
  q.op = QueryOperator::kOr;
  MineResult nra = miner.Mine(q, MineOptions{.k = 2, .nra_batch_size = 1});
  MineResult smj = smj_miner.Mine(q, MineOptions{.k = 2});
  ASSERT_EQ(nra.phrases.size(), smj.phrases.size());
  for (std::size_t i = 0; i < nra.phrases.size(); ++i) {
    EXPECT_NEAR(nra.phrases[i].score, smj.phrases[i].score, 1e-12);
  }
}

// Regression for the top-k extraction's partial_sort: with maintenance
// disabled (huge batch) every k sees the identical surviving candidate
// set, so the k-truncated ranking must be exactly the prefix of the
// all-candidates ranking -- heap-select must not perturb the order.
TEST(NraDetailTest, PartialSortSelectionMatchesFullSortPrefix) {
  MiningEngine engine = testing::MakeSmallEngine(400);
  QuerySetGenerator qgen(QueryGenOptions{.seed = 41, .num_queries = 5});
  auto queries =
      qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  ASSERT_FALSE(queries.empty());
  for (Query q : queries) {
    for (const QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
      q.op = op;
      const MineOptions all{.k = 100000, .nra_batch_size = 1u << 30};
      const MineResult full = engine.Mine(q, Algorithm::kNra, all);
      for (const std::size_t k : {1u, 2u, 5u, 17u}) {
        MineOptions topk = all;
        topk.k = k;
        const MineResult cut = engine.Mine(q, Algorithm::kNra, topk);
        ASSERT_EQ(cut.phrases.size(), std::min(k, full.phrases.size()));
        for (std::size_t i = 0; i < cut.phrases.size(); ++i) {
          EXPECT_EQ(cut.phrases[i].phrase, full.phrases[i].phrase);
          EXPECT_EQ(cut.phrases[i].score, full.phrases[i].score);
        }
      }
    }
  }
}

TEST(NraDetailTest, UnknownTermListYieldsEmptyForAnd) {
  HandFixture f;
  NraMiner miner(f.lists, f.dict);
  Query q;
  // "x1" has df 1 < min_df 2, so it has a list (it is a term) but no
  // phrase can satisfy AND with a term whose co-occurrences are sparse...
  // Use a vocabulary term that has a list plus one with an *empty* list:
  // term ids beyond the built set have empty lists.
  q.terms = {f.term("a"), static_cast<TermId>(f.corpus.vocab().size() - 1)};
  q.op = QueryOperator::kAnd;
  MineResult r = miner.Mine(q, MineOptions{.k = 5});
  // The second list may be empty or tiny; every returned result must have
  // a finite score.
  for (const MinedPhrase& p : r.phrases) {
    EXPECT_GT(p.interestingness, 0.0);
  }
}

}  // namespace
}  // namespace phrasemine
