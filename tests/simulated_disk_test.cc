#include "gtest/gtest.h"
#include "storage/simulated_disk.h"

namespace phrasemine {
namespace {

DiskOptions NoLookahead() {
  DiskOptions o;
  o.lookahead = false;
  return o;
}

TEST(SimulatedDiskTest, FirstAccessIsRandom) {
  SimulatedDisk disk(NoLookahead());
  const uint32_t f = disk.RegisterFile(1 << 20);
  disk.AccessPage(f, 0);
  EXPECT_EQ(disk.stats().random_fetches, 1u);
  EXPECT_EQ(disk.stats().sequential_fetches, 0u);
  EXPECT_DOUBLE_EQ(disk.stats().cost_ms, 10.0);
}

TEST(SimulatedDiskTest, ConsecutivePagesAreSequential) {
  SimulatedDisk disk(NoLookahead());
  const uint32_t f = disk.RegisterFile(1 << 20);
  disk.AccessPage(f, 0);
  disk.AccessPage(f, 1);
  disk.AccessPage(f, 2);
  EXPECT_EQ(disk.stats().random_fetches, 1u);
  EXPECT_EQ(disk.stats().sequential_fetches, 2u);
  EXPECT_DOUBLE_EQ(disk.stats().cost_ms, 12.0);
}

TEST(SimulatedDiskTest, BackwardJumpIsRandom) {
  SimulatedDisk disk(NoLookahead());
  const uint32_t f = disk.RegisterFile(1 << 20);
  disk.AccessPage(f, 5);
  disk.AccessPage(f, 2);
  EXPECT_EQ(disk.stats().random_fetches, 2u);
}

TEST(SimulatedDiskTest, CacheHitCostsNothing) {
  SimulatedDisk disk(NoLookahead());
  const uint32_t f = disk.RegisterFile(1 << 20);
  disk.AccessPage(f, 3);
  const double cost = disk.stats().cost_ms;
  disk.AccessPage(f, 3);
  EXPECT_DOUBLE_EQ(disk.stats().cost_ms, cost);
  EXPECT_EQ(disk.stats().cache_hits, 1u);
}

TEST(SimulatedDiskTest, LruEvictsOldest) {
  DiskOptions options = NoLookahead();
  options.cache_pages = 2;
  SimulatedDisk disk(options);
  const uint32_t f = disk.RegisterFile(1 << 20);
  disk.AccessPage(f, 0);  // cache: {0}
  disk.AccessPage(f, 1);  // cache: {1, 0}
  disk.AccessPage(f, 2);  // evicts 0; cache: {2, 1}
  disk.ResetStats();
  disk.AccessPage(f, 1);  // hit
  EXPECT_EQ(disk.stats().cache_hits, 1u);
  disk.AccessPage(f, 0);  // miss (was evicted)
  EXPECT_EQ(disk.stats().cache_hits, 1u);
  EXPECT_EQ(disk.stats().random_fetches, 1u);
}

TEST(SimulatedDiskTest, LookaheadPrefetchesNextPage) {
  DiskOptions options;  // lookahead on
  SimulatedDisk disk(options);
  const uint32_t f = disk.RegisterFile(1 << 20);
  disk.AccessPage(f, 0);
  // Page 0 fetched random + page 1 prefetched sequential.
  EXPECT_EQ(disk.stats().random_fetches, 1u);
  EXPECT_EQ(disk.stats().sequential_fetches, 1u);
  disk.ResetStats();
  disk.AccessPage(f, 1);  // already prefetched -> hit + prefetch of 2
  EXPECT_EQ(disk.stats().cache_hits, 1u);
  EXPECT_EQ(disk.stats().sequential_fetches, 1u);
}

TEST(SimulatedDiskTest, LookaheadStopsAtEndOfFile) {
  DiskOptions options;
  options.page_size_bytes = 1024;
  SimulatedDisk disk(options);
  const uint32_t f = disk.RegisterFile(1024);  // single page
  disk.AccessPage(f, 0);
  EXPECT_EQ(disk.stats().sequential_fetches, 0u);  // nothing to prefetch
}

TEST(SimulatedDiskTest, ReadSpanningPagesTouchesEach) {
  DiskOptions options = NoLookahead();
  options.page_size_bytes = 100;
  SimulatedDisk disk(options);
  const uint32_t f = disk.RegisterFile(1000);
  disk.Read(f, 95, 10);  // spans pages 0 and 1
  EXPECT_EQ(disk.stats().page_requests, 2u);
}

TEST(SimulatedDiskTest, SequentialEntryScanIsCheap) {
  // Scanning a list sequentially must cost ~1ms/page, not 10ms/page.
  DiskOptions options;
  SimulatedDisk disk(options);
  const uint64_t bytes = 12 * 10000;  // 10k 12-byte entries
  const uint32_t f = disk.RegisterFile(bytes);
  for (uint64_t i = 0; i < 10000; ++i) {
    disk.Read(f, i * 12, 12);
  }
  const uint64_t pages = disk.PagesForBytes(bytes);
  // First page random (10ms), everything else covered by sequential
  // prefetches (1ms each).
  EXPECT_DOUBLE_EQ(disk.stats().cost_ms,
                   10.0 + 1.0 * static_cast<double>(pages - 1));
}

TEST(SimulatedDiskTest, ResetClearsCache) {
  SimulatedDisk disk(NoLookahead());
  const uint32_t f = disk.RegisterFile(1 << 20);
  disk.AccessPage(f, 0);
  disk.Reset();
  EXPECT_DOUBLE_EQ(disk.stats().cost_ms, 0.0);
  disk.AccessPage(f, 0);
  EXPECT_EQ(disk.stats().random_fetches, 1u);  // cold again
}

TEST(SimulatedDiskTest, DistinctFilesNeverSequential) {
  SimulatedDisk disk(NoLookahead());
  const uint32_t a = disk.RegisterFile(1 << 20);
  const uint32_t b = disk.RegisterFile(1 << 20);
  disk.AccessPage(a, 0);
  disk.AccessPage(b, 1);  // page number is last+1 but different file
  EXPECT_EQ(disk.stats().random_fetches, 2u);
}

TEST(DiskListCursorTest, AdvancesThroughAllEntries) {
  SimulatedDisk disk{DiskOptions{}};
  const uint32_t f = disk.RegisterFile(12 * 100);
  DiskListCursor cursor(&disk, f, 0, 100, 12);
  std::size_t n = 0;
  while (cursor.HasNext()) {
    cursor.Advance();
    ++n;
  }
  EXPECT_EQ(n, 100u);
  EXPECT_EQ(cursor.position(), 100u);
  EXPECT_GT(disk.stats().page_requests, 0u);
}

TEST(SimulatedDiskTest, BytesReadCountsLogicalRequests) {
  SimulatedDisk disk(NoLookahead());
  const uint32_t f = disk.RegisterFile(1 << 20);
  disk.Read(f, 0, 12);
  disk.Read(f, 100, 50);
  EXPECT_EQ(disk.stats().bytes_read, 62u);
  // AccessPage touches whole pages; it does not count logical bytes.
  disk.AccessPage(f, 3);
  EXPECT_EQ(disk.stats().bytes_read, 62u);
  EXPECT_EQ(disk.stats().BlocksRead(),
            disk.stats().sequential_fetches + disk.stats().random_fetches);
  EXPECT_EQ(disk.stats().Seeks(), disk.stats().random_fetches);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().bytes_read, 0u);
}

TEST(SimulatedDiskTest, PrefetchAfterHitPaysRealHeadPosition) {
  // Regression: a lookahead fetch is only sequential when it actually
  // trails the head. After a cache hit the head has not moved, so a
  // prefetch jumping back from the head's position pays the random rate
  // (the old simulator charged every prefetch as sequential).
  SimulatedDisk disk{DiskOptions{}};  // lookahead on
  const uint32_t f = disk.RegisterFile(1 << 20);
  disk.AccessPage(f, 0);  // fetch 0 (random) + prefetch 1 (sequential)
  disk.AccessPage(f, 5);  // fetch 5 (random) + prefetch 6 (sequential)
  disk.ResetStats();
  disk.AccessPage(f, 1);  // hit; prefetch of page 2 seeks back from 6
  EXPECT_EQ(disk.stats().cache_hits, 1u);
  EXPECT_EQ(disk.stats().random_fetches, 1u);
  EXPECT_EQ(disk.stats().sequential_fetches, 0u);
  EXPECT_DOUBLE_EQ(disk.stats().cost_ms, 10.0);
}

TEST(SimulatedDiskDeathTest, PageBeyondKeyWidthAborts) {
  // PageKey packs (file, page) as 24 + 40 bits; a page number at the
  // boundary must abort instead of silently colliding with another file's
  // key space.
  SimulatedDisk disk(NoLookahead());
  const uint32_t f =
      disk.RegisterFile(((1ull << 40) + 2) * (32ull << 10));  // > 2^40 pages
  EXPECT_DEATH(disk.AccessPage(f, 1ull << 40), "PageKey width");
}

TEST(SimulatedDiskTest, PagesForBytesRoundsUp) {
  SimulatedDisk disk{DiskOptions{}};
  EXPECT_EQ(disk.PagesForBytes(1), 1u);
  EXPECT_EQ(disk.PagesForBytes(32 * 1024), 1u);
  EXPECT_EQ(disk.PagesForBytes(32 * 1024 + 1), 2u);
}

}  // namespace
}  // namespace phrasemine
