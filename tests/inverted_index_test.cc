#include <algorithm>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "index/inverted_index.h"
#include "test_util.h"
#include "text/corpus.h"

namespace phrasemine {
namespace {

using testing::MakeTinyCorpus;

TEST(InvertedIndexTest, PostingsSortedAndDeduped) {
  Corpus corpus = MakeTinyCorpus();
  InvertedIndex index = InvertedIndex::Build(corpus);
  for (TermId t = 0; t < corpus.vocab().size(); ++t) {
    const auto& docs = index.docs(t);
    EXPECT_TRUE(std::is_sorted(docs.begin(), docs.end()));
    EXPECT_EQ(std::adjacent_find(docs.begin(), docs.end()), docs.end());
  }
}

TEST(InvertedIndexTest, DocumentFrequencies) {
  Corpus corpus = MakeTinyCorpus();
  InvertedIndex index = InvertedIndex::Build(corpus);
  EXPECT_EQ(index.df(corpus.vocab().Lookup("the")), 8u);
  EXPECT_EQ(index.df(corpus.vocab().Lookup("db")), 4u);
  EXPECT_EQ(index.df(corpus.vocab().Lookup("kernel")), 4u);
  EXPECT_EQ(index.df(corpus.vocab().Lookup("histograms")), 1u);
}

TEST(InvertedIndexTest, FacetsIndexed) {
  Corpus corpus;
  corpus.AddTokenized({"words"}, {"topic:db"});
  corpus.AddTokenized({"words"}, {"topic:os"});
  InvertedIndex index = InvertedIndex::Build(corpus);
  EXPECT_EQ(index.df(corpus.vocab().Lookup("topic:db")), 1u);
  EXPECT_EQ(index.df(corpus.vocab().Lookup("words")), 2u);
}

TEST(InvertedIndexTest, UnknownTermEmpty) {
  Corpus corpus = MakeTinyCorpus();
  InvertedIndex index = InvertedIndex::Build(corpus);
  EXPECT_TRUE(index.docs(999999).empty());
  EXPECT_EQ(index.df(999999), 0u);
}

TEST(InvertedIndexTest, IntersectBasic) {
  std::vector<DocId> a = {1, 3, 5, 7, 9};
  std::vector<DocId> b = {2, 3, 5, 8, 9};
  std::vector<DocId> c = {3, 9};
  auto result = InvertedIndex::Intersect({&a, &b, &c});
  EXPECT_EQ(result, (std::vector<DocId>{3, 9}));
}

TEST(InvertedIndexTest, IntersectWithEmptyListIsEmpty) {
  std::vector<DocId> a = {1, 2, 3};
  std::vector<DocId> empty;
  EXPECT_TRUE(InvertedIndex::Intersect({&a, &empty}).empty());
}

TEST(InvertedIndexTest, IntersectSingleList) {
  std::vector<DocId> a = {4, 5, 6};
  EXPECT_EQ(InvertedIndex::Intersect({&a}), a);
}

TEST(InvertedIndexTest, IntersectNoLists) {
  EXPECT_TRUE(InvertedIndex::Intersect({}).empty());
}

TEST(InvertedIndexTest, UnionBasic) {
  std::vector<DocId> a = {1, 3};
  std::vector<DocId> b = {2, 3, 4};
  auto result = InvertedIndex::Union({&a, &b});
  EXPECT_EQ(result, (std::vector<DocId>{1, 2, 3, 4}));
}

TEST(InvertedIndexTest, UnionWithEmpty) {
  std::vector<DocId> a = {1, 2};
  std::vector<DocId> empty;
  EXPECT_EQ(InvertedIndex::Union({&empty, &a}), a);
  EXPECT_TRUE(InvertedIndex::Union({&empty, &empty}).empty());
}

TEST(InvertedIndexTest, IntersectSizeMatchesIntersect) {
  std::vector<DocId> a = {1, 4, 6, 9, 12, 40, 77};
  std::vector<DocId> b = {4, 9, 13, 40, 78, 100};
  EXPECT_EQ(InvertedIndex::IntersectSize(a, b), 3u);
  EXPECT_EQ(InvertedIndex::IntersectSize(b, a), 3u);
  EXPECT_EQ(InvertedIndex::IntersectSize(a, {}), 0u);
}

TEST(InvertedIndexTest, SerializationRoundTrip) {
  Corpus corpus = MakeTinyCorpus();
  InvertedIndex index = InvertedIndex::Build(corpus);
  BinaryWriter w;
  index.Serialize(&w);
  BinaryReader r(w.TakeBuffer());
  auto loaded = InvertedIndex::Deserialize(&r);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_terms(), index.num_terms());
  for (TermId t = 0; t < index.num_terms(); ++t) {
    EXPECT_EQ(loaded.value().docs(t), index.docs(t));
  }
}

// Property sweep: Intersect/Union agree with a naive reference on random
// sorted lists.
class InvertedIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InvertedIndexPropertyTest, SetAlgebraMatchesReference) {
  Rng rng(GetParam());
  auto make_list = [&](std::size_t max_len) {
    std::vector<DocId> list;
    const std::size_t len = rng.NextBelow(max_len + 1);
    DocId cursor = 0;
    for (std::size_t i = 0; i < len; ++i) {
      cursor += 1 + static_cast<DocId>(rng.NextBelow(5));
      list.push_back(cursor);
    }
    return list;
  };
  std::vector<DocId> a = make_list(60);
  std::vector<DocId> b = make_list(60);
  std::vector<DocId> c = make_list(30);

  std::vector<DocId> ref_and;
  for (DocId d : a) {
    if (std::binary_search(b.begin(), b.end(), d) &&
        std::binary_search(c.begin(), c.end(), d)) {
      ref_and.push_back(d);
    }
  }
  std::vector<DocId> ref_or = a;
  ref_or.insert(ref_or.end(), b.begin(), b.end());
  ref_or.insert(ref_or.end(), c.begin(), c.end());
  std::sort(ref_or.begin(), ref_or.end());
  ref_or.erase(std::unique(ref_or.begin(), ref_or.end()), ref_or.end());

  EXPECT_EQ(InvertedIndex::Intersect({&a, &b, &c}), ref_and);
  EXPECT_EQ(InvertedIndex::Union({&a, &b, &c}), ref_or);
  EXPECT_EQ(InvertedIndex::IntersectSize(a, b),
            InvertedIndex::Intersect({&a, &b}).size());
}

INSTANTIATE_TEST_SUITE_P(RandomLists, InvertedIndexPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace phrasemine
