// CostPlanner decision table over synthesized statistics, plus integration
// with a real engine's index statistics.

#include <cmath>
#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "service/planner.h"
#include "test_util.h"

namespace phrasemine {
namespace {

TermPlanStats Term(TermId id, uint32_t df, bool built,
                   std::size_t list_length) {
  TermPlanStats t;
  t.term = id;
  t.df = df;
  t.list_built = built;
  t.list_length = list_length;
  return t;
}

PlannerInputs BaseInputs() {
  PlannerInputs inputs;
  inputs.num_docs = 100000;
  inputs.avg_doc_phrases = 50.0;
  inputs.op = QueryOperator::kAnd;
  inputs.k = 5;
  return inputs;
}

TEST(PlannerTest, EmptyQueryFallsBackToGm) {
  PlannerInputs inputs = BaseInputs();
  PlanDecision d = CostPlanner::PlanFromInputs(inputs, {});
  EXPECT_EQ(d.algorithm, Algorithm::kGm);
  EXPECT_NE(d.reason.find("empty query"), std::string::npos);
}

TEST(PlannerTest, ZeroDfTermUnderAndShortCircuitsToGm) {
  PlannerInputs inputs = BaseInputs();
  inputs.terms = {Term(1, 5000, true, 1000), Term(2, 0, false, 0)};
  PlanDecision d = CostPlanner::PlanFromInputs(inputs, {});
  EXPECT_EQ(d.algorithm, Algorithm::kGm);
  EXPECT_EQ(d.estimated_subcollection, 0u);
  EXPECT_NE(d.reason.find("empty subcollection"), std::string::npos);
}

TEST(PlannerTest, ApproximationDisallowedNeverPicksListMethods) {
  PlannerInputs inputs = BaseInputs();
  inputs.terms = {Term(1, 20000, true, 30000), Term(2, 20000, true, 30000)};
  PlannerOptions options;
  options.allow_approximate = false;
  PlanDecision d = CostPlanner::PlanFromInputs(inputs, options);
  EXPECT_EQ(d.algorithm, Algorithm::kGm);

  // Tiny subcollection under the same flag goes to Exact.
  inputs.terms = {Term(1, 100, true, 200), Term(2, 100, true, 200)};
  d = CostPlanner::PlanFromInputs(inputs, options);
  EXPECT_EQ(d.algorithm, Algorithm::kExact);
}

TEST(PlannerTest, TinySubcollectionGoesExact) {
  PlannerInputs inputs = BaseInputs();
  // Backoff estimate: 1e5 * 0.002 * sqrt(0.002) ~ 9 <= threshold of 16.
  inputs.terms = {Term(1, 200, true, 500), Term(2, 200, true, 500)};
  PlanDecision d = CostPlanner::PlanFromInputs(inputs, {});
  EXPECT_EQ(d.algorithm, Algorithm::kExact);
  EXPECT_LE(d.estimated_subcollection, 16u);
}

TEST(PlannerTest, LongBuiltListsFavorNra) {
  PlannerInputs inputs = BaseInputs();
  // Backoff est |D'| = 1e5 * 0.2 * sqrt(0.2) ~ 8944; GM ~ 447k entries.
  // Lists: 60k entries at traversal 0.3 and entry cost 2 -> ~36.5k. NRA.
  inputs.terms = {Term(1, 20000, true, 30000), Term(2, 20000, true, 30000)};
  PlanDecision d = CostPlanner::PlanFromInputs(inputs, {});
  EXPECT_EQ(d.algorithm, Algorithm::kNra);
  ASSERT_EQ(d.estimated_costs.size(), 3u);
  EXPECT_NE(d.reason.find("NRA"), std::string::npos);
}

TEST(PlannerTest, ShortBuiltListsFavorSmj) {
  PlannerInputs inputs = BaseInputs();
  // Backoff est |D'| = 1e5 * 0.04 * sqrt(0.04) = 800; GM ~ 40k. Lists
  // total 600 entries: SMJ ~ 650 beats NRA ~ 860 (fixed setup overhead).
  inputs.terms = {Term(1, 4000, true, 300), Term(2, 4000, true, 300)};
  PlanDecision d = CostPlanner::PlanFromInputs(inputs, {});
  EXPECT_EQ(d.algorithm, Algorithm::kSmj);
}

TEST(PlannerTest, UnbuiltListsChargeBuildCostTowardGm) {
  PlannerInputs inputs = BaseInputs();
  inputs.avg_doc_phrases = 50.0;
  // Unbuilt lists with huge estimated lengths plus amortized build cost
  // make the list-based methods lose to a plain forward scan.
  inputs.terms = {Term(1, 20000, false, 200000),
                  Term(2, 20000, false, 200000)};
  PlanDecision d = CostPlanner::PlanFromInputs(inputs, {});
  EXPECT_EQ(d.algorithm, Algorithm::kGm);
}

TEST(PlannerTest, LargerKRaisesNraCost) {
  PlannerInputs inputs = BaseInputs();
  inputs.terms = {Term(1, 20000, true, 30000), Term(2, 20000, true, 30000)};
  inputs.k = 5;
  PlanDecision small_k = CostPlanner::PlanFromInputs(inputs, {});
  inputs.k = 40;
  PlanDecision large_k = CostPlanner::PlanFromInputs(inputs, {});
  double nra_small = 0.0, nra_large = 0.0;
  for (const auto& [a, c] : small_k.estimated_costs) {
    if (a == Algorithm::kNra) nra_small = c;
  }
  for (const auto& [a, c] : large_k.estimated_costs) {
    if (a == Algorithm::kNra) nra_large = c;
  }
  EXPECT_GT(nra_large, nra_small);
}

TEST(PlannerTest, OrSubcollectionIsCappedSum) {
  PlannerInputs inputs = BaseInputs();
  inputs.op = QueryOperator::kOr;
  inputs.terms = {Term(1, 70000, true, 30000), Term(2, 70000, true, 30000)};
  PlanDecision d = CostPlanner::PlanFromInputs(inputs, {});
  EXPECT_EQ(d.estimated_subcollection, inputs.num_docs);  // capped at |D|
}

TEST(PlannerTest, DecisionIsDeterministic) {
  PlannerInputs inputs = BaseInputs();
  inputs.terms = {Term(1, 20000, true, 30000), Term(2, 4000, false, 9000)};
  PlanDecision a = CostPlanner::PlanFromInputs(inputs, {});
  PlanDecision b = CostPlanner::PlanFromInputs(inputs, {});
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.reason, b.reason);
  EXPECT_EQ(a.estimated_subcollection, b.estimated_subcollection);
}

TEST(PlannerTest, PendingUpdatesExcludeStaleMethods) {
  // The count-based methods mine the base corpus; while an unrebuilt
  // overlay is pending the planner must route to NRA/SMJ so the answer
  // reflects the live corpus.
  PlannerInputs inputs = BaseInputs();
  inputs.updates_pending = true;
  // Tiny subcollection: would be Exact without pending updates.
  inputs.terms = {Term(1, 3, true, 10), Term(2, 3, true, 10)};
  PlanDecision tiny = CostPlanner::PlanFromInputs(inputs, {});
  EXPECT_TRUE(tiny.algorithm == Algorithm::kNra ||
              tiny.algorithm == Algorithm::kSmj)
      << AlgorithmName(tiny.algorithm);
  // Huge subcollection: GM must not appear in the candidate costs.
  inputs.terms = {Term(1, 70000, true, 30000), Term(2, 70000, true, 30000)};
  PlanDecision big = CostPlanner::PlanFromInputs(inputs, {});
  EXPECT_TRUE(big.algorithm == Algorithm::kNra ||
              big.algorithm == Algorithm::kSmj);
  for (const auto& [algorithm, cost] : big.estimated_costs) {
    EXPECT_NE(algorithm, Algorithm::kGm);
  }
  // Zero-df under AND: emptiness must be proven against the live corpus.
  inputs.terms = {Term(1, 5000, true, 1000), Term(2, 0, false, 0)};
  PlanDecision zero = CostPlanner::PlanFromInputs(inputs, {});
  EXPECT_EQ(zero.algorithm, Algorithm::kSmj);
  // allow_approximate == false is an explicit base-corpus promise and
  // overrides the restriction.
  PlannerOptions exact_only;
  exact_only.allow_approximate = false;
  inputs.terms = {Term(1, 20000, true, 30000)};
  PlanDecision promised = CostPlanner::PlanFromInputs(inputs, exact_only);
  EXPECT_EQ(promised.algorithm, Algorithm::kGm);
}

TEST(PlannerTest, DiskBackedEmitsNraDiskCandidateWithIoCharge) {
  PlannerInputs inputs = BaseInputs();
  inputs.terms = {Term(1, 20000, true, 30000), Term(2, 20000, true, 30000)};
  const PlanDecision in_memory = CostPlanner::PlanFromInputs(inputs, {});

  inputs.disk_backed = true;
  for (TermPlanStats& t : inputs.terms) {
    t.on_disk = true;
    t.disk_blocks = 12;  // ~30k packed entries over 32 KiB blocks
  }
  const PlanDecision on_disk = CostPlanner::PlanFromInputs(inputs, {});

  double nra_mem = -1.0, nra_disk = -1.0;
  for (const auto& [algorithm, cost] : in_memory.estimated_costs) {
    EXPECT_NE(algorithm, Algorithm::kNraDisk);
    if (algorithm == Algorithm::kNra) nra_mem = cost;
  }
  for (const auto& [algorithm, cost] : on_disk.estimated_costs) {
    EXPECT_NE(algorithm, Algorithm::kNra)
        << "disk-backed inputs must cost the NRA candidate as kNraDisk";
    if (algorithm == Algorithm::kNraDisk) nra_disk = cost;
  }
  ASSERT_GE(nra_mem, 0.0);
  ASSERT_GE(nra_disk, 0.0);
  EXPECT_GT(nra_disk, nra_mem);  // the spilled blocks' I/O charge

  // Resident placement charges nothing: same model, new label only.
  for (TermPlanStats& t : inputs.terms) {
    t.on_disk = false;
    t.disk_blocks = 0;
  }
  const PlanDecision pinned = CostPlanner::PlanFromInputs(inputs, {});
  for (const auto& [algorithm, cost] : pinned.estimated_costs) {
    if (algorithm == Algorithm::kNraDisk) EXPECT_DOUBLE_EQ(cost, nra_mem);
  }

  // A single spilled list streams at the sequential rate: the random
  // charge models the head jumping between on-device files, which needs
  // more than one of them -- pinning all but one list must not pay it.
  inputs.terms[0].on_disk = true;
  inputs.terms[0].disk_blocks = 12;
  const PlanDecision one_spilled = CostPlanner::PlanFromInputs(inputs, {});
  const PlannerOptions defaults;
  const double traversal =
      defaults.nra_traversal_fraction +
      defaults.nra_k_penalty * static_cast<double>(inputs.k);
  const double expected_io =
      std::ceil(traversal * 12.0) * defaults.disk_sequential_block_cost;
  for (const auto& [algorithm, cost] : one_spilled.estimated_costs) {
    if (algorithm == Algorithm::kNraDisk) {
      EXPECT_DOUBLE_EQ(cost, nra_mem + expected_io);
    }
  }

  // A zero-block "spilled" term (df 0, or an estimate rounding to
  // nothing) occupies no device file, so it must not count toward the
  // interleave and flip the real list's reads to the random rate.
  inputs.terms[1].on_disk = true;
  inputs.terms[1].disk_blocks = 0;
  const PlanDecision with_empty = CostPlanner::PlanFromInputs(inputs, {});
  for (const auto& [algorithm, cost] : with_empty.estimated_costs) {
    if (algorithm == Algorithm::kNraDisk) {
      EXPECT_DOUBLE_EQ(cost, nra_mem + expected_io);
    }
  }
}

TEST(PlannerTest, DiskChargesSteerBetweenNraDiskAndSmj) {
  // Long spilled lists on a multi-term query: NRA-disk's round-robin
  // head pays the random rate per traversed block while SMJ streams
  // sequentially, so SMJ wins once lists are long enough that I/O
  // dominates -- flip the traversal fraction low and NRA-disk's partial
  // reads win back. Both decisions route through the disk path, never
  // bare kNra.
  PlannerInputs inputs = BaseInputs();
  inputs.disk_backed = true;
  inputs.terms = {Term(1, 30000, true, 30000), Term(2, 30000, true, 30000)};
  for (TermPlanStats& t : inputs.terms) {
    t.on_disk = true;
    t.disk_blocks = 1000;
  }
  const PlanDecision streamed = CostPlanner::PlanFromInputs(inputs, {});
  EXPECT_EQ(streamed.algorithm, Algorithm::kSmj);

  PlannerOptions shallow;
  shallow.nra_traversal_fraction = 0.01;
  shallow.nra_k_penalty = 0.0;
  const PlanDecision partial = CostPlanner::PlanFromInputs(inputs, shallow);
  EXPECT_EQ(partial.algorithm, Algorithm::kNraDisk);
}

TEST(PlannerTest, PlanAcrossShardsChargesDiskMakespan) {
  // Two shards, identical in-memory stats; one spilled its lists. The
  // fleet must plan under the kNraDisk label (one disk-backed shard
  // makes the scatter's slowest shard disk-bound) and the makespan must
  // carry the spilled shard's I/O term.
  PlannerInputs resident = BaseInputs();
  resident.terms = {Term(1, 20000, true, 30000), Term(2, 20000, true, 30000)};
  resident.disk_backed = true;

  PlannerInputs spilled = resident;
  for (TermPlanStats& t : spilled.terms) {
    t.on_disk = true;
    t.disk_blocks = 500;
  }

  std::vector<PlannerInputs> shards = {resident, spilled};
  const PlanDecision fleet = CostPlanner::PlanAcrossShards(shards, {});
  double fleet_nra_disk = -1.0;
  for (const auto& [algorithm, cost] : fleet.estimated_costs) {
    EXPECT_NE(algorithm, Algorithm::kNra);
    if (algorithm == Algorithm::kNraDisk) fleet_nra_disk = cost;
  }
  ASSERT_GE(fleet_nra_disk, 0.0);

  // The makespan equals the spilled shard's own kNraDisk cost (the
  // resident shard is strictly cheaper).
  const PlanDecision alone = CostPlanner::PlanFromInputs(spilled, {});
  double alone_nra_disk = -1.0;
  for (const auto& [algorithm, cost] : alone.estimated_costs) {
    if (algorithm == Algorithm::kNraDisk) alone_nra_disk = cost;
  }
  EXPECT_DOUBLE_EQ(fleet_nra_disk, alone_nra_disk);
}

TEST(PlannerTest, PlanOverRealEngineFillsStatistics) {
  MiningEngine engine = testing::MakeTinyEngine();
  CostPlanner planner(&engine);
  auto q = engine.ParseQuery("query optimization", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  PlanDecision d = planner.Plan(q.value(), MineOptions{});
  EXPECT_FALSE(d.reason.empty());
  ASSERT_EQ(d.terms.size(), 2u);
  for (const TermPlanStats& t : d.terms) {
    EXPECT_EQ(t.df, engine.inverted().df(t.term));
    EXPECT_FALSE(t.list_built);  // Engine lists are lazy and untouched.
  }
  // The planner only ever selects serving algorithms.
  EXPECT_TRUE(d.algorithm == Algorithm::kExact ||
              d.algorithm == Algorithm::kGm ||
              d.algorithm == Algorithm::kNra ||
              d.algorithm == Algorithm::kSmj);
  EXPECT_FALSE(d.ToString().empty());
}

}  // namespace
}  // namespace phrasemine
