// Unit coverage for the subscription surface: registration validation,
// the bootstrap publish, Poll's blocking drain, drop-oldest notification
// queues, change-kind classification, event-queue overflow degradation,
// the PhraseService wrappers, and the subscribe_* metric rows. The
// equal-to-re-mining proof lives in subscription_differential_test.cc;
// here the assertions are about the API contract around it.

#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "service/service.h"
#include "subscribe/subscription_manager.h"
#include "test_util.h"
#include "testing/failpoint.h"

namespace phrasemine {
namespace {

/// Churn corpus with score headroom (see subscription_differential_test).
MiningEngine MakeChurnEngine() {
  Corpus corpus;
  corpus.AddTokenized({"alpha", "beta", "pad1"});
  corpus.AddTokenized({"alpha", "beta", "pad2"});
  corpus.AddTokenized({"beta", "gamma", "pad3"});
  corpus.AddTokenized({"beta", "gamma", "pad4"});
  corpus.AddTokenized({"beta", "delta", "pad5"});
  corpus.AddTokenized({"beta", "delta", "pad6"});
  MiningEngine::Options options;
  options.extractor.min_df = 1;
  options.extractor.max_phrase_len = 2;
  return MiningEngine::Build(std::move(corpus), options);
}

UpdateBatch OneDoc(std::vector<std::string> tokens) {
  UpdateBatch batch;
  batch.inserts.push_back(UpdateDoc{std::move(tokens), {}});
  return batch;
}

TEST(SubscriptionManagerTest, SubscribeValidatesRequests) {
  MiningEngine engine = MakeChurnEngine();
  SubscriptionManager manager(&engine);

  SubscriptionRequest no_terms;
  EXPECT_EQ(manager.Subscribe(no_terms).status().code(),
            StatusCode::kInvalidArgument);

  SubscriptionRequest zero_k;
  zero_k.terms = {"beta"};
  zero_k.k = 0;
  EXPECT_EQ(manager.Subscribe(zero_k).status().code(),
            StatusCode::kInvalidArgument);

  SubscriptionRequest unknown;
  unknown.terms = {"no_such_term"};
  EXPECT_FALSE(manager.Subscribe(unknown).ok());

  EXPECT_EQ(manager.num_subscriptions(), 0u);
}

TEST(SubscriptionManagerTest, TruncatedSmjListsAreRefused) {
  // Exactness needs full id-ordered lists; a fractional engine must be
  // rejected up front instead of silently publishing approximations.
  Corpus corpus;
  corpus.AddTokenized({"alpha", "beta"});
  corpus.AddTokenized({"alpha", "beta"});
  MiningEngine::Options options;
  options.extractor.min_df = 1;
  options.default_smj_fraction = 0.5;
  MiningEngine engine = MiningEngine::Build(std::move(corpus), options);
  SubscriptionManager manager(&engine);

  SubscriptionRequest request;
  request.terms = {"beta"};
  EXPECT_EQ(manager.Subscribe(request).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SubscriptionManagerTest, BootstrapPublishArrivesThroughPoll) {
  MiningEngine engine = MakeChurnEngine();
  MetricsRegistry registry;
  SubscriptionManagerOptions options;
  options.metrics = &registry;
  SubscriptionManager manager(&engine, options);

  SubscriptionRequest request;
  request.terms = {"beta"};
  request.k = 3;
  auto id = manager.Subscribe(request);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(manager.num_subscriptions(), 1u);

  // Blocking Poll: the bootstrap mine runs on the worker; the wait must
  // cover it without an explicit Flush.
  auto updates = manager.Poll(id.value(), 16, /*wait_ms=*/10000.0);
  ASSERT_TRUE(updates.ok());
  ASSERT_EQ(updates.value().size(), 1u);
  const SubscriptionUpdate& boot = updates.value()[0];
  EXPECT_TRUE(boot.initial);
  EXPECT_TRUE(boot.exact);
  EXPECT_EQ(boot.subscription, id.value());
  EXPECT_EQ(boot.topk.size(), 3u);
  // Every entry of the bootstrap delta is an "entered".
  ASSERT_EQ(boot.changes.size(), boot.topk.size());
  for (const TopKChange& change : boot.changes) {
    EXPECT_EQ(change.kind, TopKChangeKind::kEntered);
    EXPECT_EQ(change.old_rank, -1);
  }

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.gauge("subscribe_subscriptions"), 1);
  EXPECT_EQ(snap.counter("subscribe_notifications_total"), 1u);
  // The bootstrap mine is not a fallback; the re-mine counter stays 0.
  EXPECT_EQ(snap.counter("subscribe_remine_total"), 0u);
}

TEST(SubscriptionManagerTest, UnsubscribeStopsDeliveryAndReportsNotFound) {
  MiningEngine engine = MakeChurnEngine();
  SubscriptionManager manager(&engine);
  EXPECT_EQ(manager.Unsubscribe(42).code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.Poll(42).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.Snapshot(42).status().code(), StatusCode::kNotFound);

  SubscriptionRequest request;
  request.terms = {"beta"};
  auto id = manager.Subscribe(request);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(manager.Unsubscribe(id.value()).ok());
  EXPECT_EQ(manager.num_subscriptions(), 0u);
  EXPECT_EQ(manager.Poll(id.value()).status().code(), StatusCode::kNotFound);
  // Events after the unsubscribe must not resurrect it.
  engine.ApplyUpdate(OneDoc({"gamma", "beta", "pad7"}));
  manager.Flush();
  EXPECT_EQ(manager.Snapshot(id.value()).status().code(),
            StatusCode::kNotFound);
}

TEST(SubscriptionManagerTest, SlowPollersDropOldestNotifications) {
  MiningEngine engine = MakeChurnEngine();
  MetricsRegistry registry;
  SubscriptionManagerOptions options;
  options.queue_capacity = 1;
  options.metrics = &registry;
  SubscriptionManager manager(&engine, options);

  // k = 30 covers every qualifying phrase, so each dilution batch below
  // is guaranteed to move the published state (the diluted term's
  // P(beta|term) leaves the tied 1.0 crowd and sinks within the set).
  SubscriptionRequest request;
  request.terms = {"beta"};
  request.k = 30;
  auto id = manager.Subscribe(request);
  ASSERT_TRUE(id.ok());
  manager.Flush();

  // Three publishes against a capacity-1 queue: only the newest
  // notification survives; the published Snapshot still tracks the head
  // of the stream. The Flush between batches makes the publish count
  // deterministic -- back-to-back events would let the worker's catch-up
  // re-mine cover several batches with one publish.
  engine.ApplyUpdate(OneDoc({"alpha", "pad7"}));
  manager.Flush();
  engine.ApplyUpdate(OneDoc({"gamma", "pad8"}));
  manager.Flush();
  engine.ApplyUpdate(OneDoc({"delta", "pad9"}));
  manager.Flush();

  auto updates = manager.Poll(id.value(), 16);
  ASSERT_TRUE(updates.ok());
  ASSERT_EQ(updates.value().size(), 1u);
  auto snapshot = manager.Snapshot(id.value());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(updates.value()[0].epoch, snapshot.value().epoch);
  EXPECT_GE(registry.Snapshot().counter("subscribe_dropped_total"), 2u);
}

TEST(SubscriptionManagerTest, ChangeKindsCoverTheWholeEnum) {
  MiningEngine engine = MakeChurnEngine();
  SubscriptionManager manager(&engine);
  // k = 30 covers every qualifying phrase (the churn corpus has ~15), so
  // diluted phrases sink WITHIN the published set instead of dropping out
  // -- the only way to observe kReordered and kRescored deterministically.
  SubscriptionRequest request;
  request.terms = {"beta"};
  request.k = 30;
  auto id = manager.Subscribe(request);
  ASSERT_TRUE(id.ok());
  manager.Flush();

  std::set<TopKChangeKind> seen;
  auto drain = [&] {
    manager.Flush();
    auto updates = manager.Poll(id.value(), 64);
    ASSERT_TRUE(updates.ok());
    for (const SubscriptionUpdate& update : updates.value()) {
      for (const TopKChange& change : update.changes) {
        seen.insert(change.kind);
        if (change.kind == TopKChangeKind::kEntered) {
          EXPECT_EQ(change.old_rank, -1);
          EXPECT_GE(change.new_rank, 0);
        }
        if (change.kind == TopKChangeKind::kLeft) {
          EXPECT_EQ(change.new_rank, -1);
          EXPECT_GE(change.old_rank, 0);
        }
      }
    }
  };
  drain();  // bootstrap: everything kEntered

  // Dilute alpha once: P(beta|alpha) drops to 2/3, alpha sinks from its
  // tie-rank to the bottom of the set -> kReordered.
  engine.ApplyUpdate(OneDoc({"alpha", "padA"}));
  drain();
  // Dilute alpha again: 2/4, already at the bottom -> same rank, new
  // score -> kRescored.
  engine.ApplyUpdate(OneDoc({"alpha", "padB"}));
  drain();
  // Remove both base alpha-beta documents: codf(alpha, beta) hits 0, so
  // alpha (and "alpha beta", "beta pad1", ...) stop qualifying -> kLeft.
  UpdateBatch cut;
  cut.deletes.push_back(0);
  cut.deletes.push_back(1);
  engine.ApplyUpdate(cut);
  drain();
  // Restore one support -> alpha qualifies again -> kEntered (again,
  // post-bootstrap this time).
  engine.ApplyUpdate(OneDoc({"alpha", "beta", "pad1"}));
  drain();

  EXPECT_EQ(seen.size(), 4u)
      << "observed only " << seen.size() << " of 4 change kinds";
  EXPECT_STREQ(TopKChangeKindName(TopKChangeKind::kEntered), "entered");
  EXPECT_STREQ(TopKChangeKindName(TopKChangeKind::kLeft), "left");
  EXPECT_STREQ(TopKChangeKindName(TopKChangeKind::kReordered), "reordered");
  EXPECT_STREQ(TopKChangeKindName(TopKChangeKind::kRescored), "rescored");
}

TEST(SubscriptionManagerTest, EventOverflowDegradesToRemineNotWrongness) {
  // A capacity-1 event queue plus an artificially slow notification
  // channel forces event drops; the contract is graceful degradation:
  // ingest never blocks, the lost-flag re-mines every subscription at the
  // next processed event, and the final state equals a fresh mine.
  MiningEngine engine = MakeChurnEngine();
  MetricsRegistry registry;
  SubscriptionManagerOptions options;
  options.event_capacity = 1;
  options.metrics = &registry;
  SubscriptionManager manager(&engine, options);

  SubscriptionRequest request;
  request.terms = {"beta"};
  request.k = 3;
  auto id = manager.Subscribe(request);
  ASSERT_TRUE(id.ok());
  manager.Flush();

  failpoint::Arm("subscribe.notify", [] {
    failpoint::Action action;
    action.delay_ms = 20.0;
    return action;
  }());
  for (int i = 0; i < 12; ++i) {
    engine.ApplyUpdate(
        OneDoc({i % 2 == 0 ? "gamma" : "delta", "beta", "padZ"}));
  }
  failpoint::DisarmAll();
  // One more batch after the storm: whatever was lost, this event's
  // processing re-mines the subscription to the live state.
  engine.ApplyUpdate(OneDoc({"alpha", "beta", "padY"}));
  manager.Flush();

  EXPECT_GE(registry.Snapshot().counter("subscribe_events_dropped_total"), 1u);
  auto snapshot = manager.Snapshot(id.value());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(snapshot.value().exact);
  Query query = engine.ParseQuery("beta", QueryOperator::kAnd).value();
  MineOptions mo;
  mo.k = request.k;
  MineResult fresh = engine.Mine(query, Algorithm::kSmj, mo);
  ASSERT_EQ(snapshot.value().topk.size(), fresh.phrases.size());
  for (std::size_t i = 0; i < fresh.phrases.size(); ++i) {
    EXPECT_EQ(snapshot.value().topk[i].phrase, fresh.phrases[i].phrase);
    EXPECT_EQ(snapshot.value().topk[i].score, fresh.phrases[i].score);
  }
}

TEST(SubscriptionManagerTest, BatchTraceRecordsIncrementalWork) {
  MiningEngine engine = MakeChurnEngine();
  SubscriptionManagerOptions options;
  options.trace = true;
  SubscriptionManager manager(&engine, options);
  SubscriptionRequest request;
  request.terms = {"beta"};
  auto id = manager.Subscribe(request);
  ASSERT_TRUE(id.ok());
  manager.Flush();

  engine.ApplyUpdate(OneDoc({"gamma", "beta", "padT"}));
  engine.ApplyUpdate(OneDoc({"delta", "beta", "padU"}));
  manager.Flush();

  auto trace = manager.LastBatchTrace();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->name, "subscribe.batch");
  bool has_touched = false;
  for (const auto& [name, value] : trace->counters) {
    if (name == "touched") has_touched = value > 0;
  }
  EXPECT_TRUE(has_touched);
}

TEST(SubscriptionServiceTest, WrappersRouteThroughTheLazyManager) {
  MiningEngine engine = MakeChurnEngine();
  PhraseServiceOptions options;
  options.pool.num_threads = 1;
  options.enable_auto_rebuild = false;
  PhraseService service(&engine, options);

  // Before the first Subscribe there is no manager at all.
  EXPECT_EQ(service.subscriptions(), nullptr);
  EXPECT_EQ(service.Unsubscribe(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(service.PollSubscription(1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.SubscriptionSnapshot(1).status().code(),
            StatusCode::kNotFound);

  SubscriptionRequest request;
  request.terms = {"beta"};
  request.k = 3;
  auto id = service.Subscribe(request);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_NE(service.subscriptions(), nullptr);

  auto updates = service.PollSubscription(id.value(), 16, /*wait_ms=*/10000.0);
  ASSERT_TRUE(updates.ok());
  ASSERT_EQ(updates.value().size(), 1u);
  EXPECT_TRUE(updates.value()[0].initial);

  // Ingest through the service front door reaches the manager.
  service.IngestBatch(OneDoc({"gamma", "beta", "padS"}));
  service.subscriptions()->Flush();
  auto snapshot = service.SubscriptionSnapshot(id.value());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().epoch, 1u);

  // The subscribe_* rows land in the service's own registry.
  MetricsSnapshot snap = service.metrics_snapshot();
  EXPECT_EQ(snap.gauge("subscribe_subscriptions"), 1);
  EXPECT_GE(snap.counter("subscribe_batches_total"), 1u);

  EXPECT_TRUE(service.Unsubscribe(id.value()).ok());
}

TEST(SubscriptionServiceTest, ShardedServiceServesSubscriptions) {
  // The num_shards config switch: the lazily created manager must target
  // the internal fleet, not the seed engine the service was handed.
  MiningEngine engine = testing::MakeSmallEngine(120);
  PhraseServiceOptions options;
  options.pool.num_threads = 2;
  options.num_shards = 2;
  options.enable_auto_rebuild = false;
  PhraseService service(&engine, options);

  const std::string term =
      engine.corpus().vocab().TermText(engine.corpus().doc(0).tokens[0]);
  SubscriptionRequest request;
  request.terms = {term};
  request.k = 4;
  auto id = service.Subscribe(request);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  auto updates = service.PollSubscription(id.value(), 16, /*wait_ms=*/10000.0);
  ASSERT_TRUE(updates.ok());
  ASSERT_EQ(updates.value().size(), 1u);

  service.IngestBatch(OneDoc({term, term, term}));
  service.subscriptions()->Flush();
  auto snapshot = service.SubscriptionSnapshot(id.value());
  ASSERT_TRUE(snapshot.ok());
  // Composite epoch: exactly one shard absorbed the batch.
  EXPECT_EQ(snapshot.value().epoch, 1u);
  EXPECT_TRUE(snapshot.value().exact);
}

}  // namespace
}  // namespace phrasemine
