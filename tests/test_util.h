#ifndef PHRASEMINE_TESTS_TEST_UTIL_H_
#define PHRASEMINE_TESTS_TEST_UTIL_H_

#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "text/corpus.h"

namespace phrasemine::testing {

/// Builds a tiny hand-written corpus with known phrase statistics, used by
/// most unit tests. Eight documents over a small vocabulary:
///   docs 0-3 are "database" themed and all contain the bigram
///   "query optimization"; docs 4-7 are "systems" themed; every document
///   contains the stopword pair "the of" so that an un-normalized scorer
///   would rank it first.
Corpus MakeTinyCorpus();

/// Builds a mid-size deterministic synthetic corpus (fast enough for unit
/// tests, large enough for the miners to disagree in interesting ways).
Corpus MakeSmallSyntheticCorpus(std::size_t num_docs = 600);

/// Engine over MakeTinyCorpus with min_df = 2 (so tiny-corpus phrases
/// qualify).
MiningEngine MakeTinyEngine();

/// Engine over MakeSmallSyntheticCorpus with default extraction options.
MiningEngine MakeSmallEngine(std::size_t num_docs = 600);

/// Result phrase ids in rank order.
std::vector<PhraseId> Ids(const MineResult& result);

/// (phrase, score) sequence of a ranked result: the signature the
/// differential tests compare bitwise (disk placement, kernel paths,
/// sharded merges). Two results with equal signatures rank the same
/// phrases with the same scores in the same order.
std::vector<std::pair<PhraseId, double>> RankedSignature(
    const MineResult& result);

/// Renders ranked results as "text:score" strings (debugging aid).
std::vector<std::string> Rendered(const MiningEngine& engine,
                                  const MineResult& result);

}  // namespace phrasemine::testing

#endif  // PHRASEMINE_TESTS_TEST_UTIL_H_
