#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "service/cache.h"
#include "service/service.h"
#include "shard/sharded_engine.h"
#include "test_util.h"

// Global allocation counter for the tracing-off overhead test below: the
// observability contract is that an untraced request performs ZERO trace
// allocations, and counting every operator new is the only way to see one
// sneak in. The counter is relaxed -- the test reads it single-threaded
// with the pool idle.
namespace {
std::atomic<std::size_t> g_alloc_count{0};

void* CountingAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountingAlloc(size); }
void* operator new[](std::size_t size) { return CountingAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace phrasemine {
namespace {

using testing::MakeSmallSyntheticCorpus;
using testing::MakeTinyEngine;

const TraceSpan* Child(const TraceSpan& span, const std::string& name) {
  for (const auto& child : span.children) {
    if (child->name == name) return child.get();
  }
  return nullptr;
}

double CounterValue(const TraceSpan& span, const std::string& name) {
  for (const auto& [counter, value] : span.counters) {
    if (counter == name) return value;
  }
  return 0.0;
}

TEST(ObsTraceTest, HelpersAreNullSafe) {
  EXPECT_EQ(AddSpan(nullptr, "child"), nullptr);
  AddCounter(nullptr, "n", 1.0);  // must not crash
  SetDetail(nullptr, "detail");
  TraceSpan root;
  TraceSpan* child = AddSpan(&root, "child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0].get(), child);
}

TEST(ObsTraceTest, ExplainGolden) {
  TraceSpan root;
  root.name = "query";
  root.wall_ms = 1.5;
  TraceSpan* plan = AddSpan(&root, "plan");
  plan->wall_ms = 0.25;
  SetDetail(plan, "cost: NRA");
  TraceSpan* mine = AddSpan(&root, "mine");
  mine->wall_ms = 1.0;
  AddCounter(mine, "shards", 3);
  AddCounter(mine, "frac", 0.5);
  TraceSpan* shard = AddSpan(mine, "shard 0");
  shard->wall_ms = 0.5;
  AddCounter(shard, "entries_read", 10);

  EXPECT_EQ(root.Explain(),
            "query  1.500 ms\n"
            "|- plan  0.250 ms  cost: NRA\n"
            "`- mine  1.000 ms  [shards=3 frac=0.500]\n"
            "   `- shard 0  0.500 ms  [entries_read=10]\n");
  EXPECT_EQ(root.ToJson(),
            "{\"name\": \"query\", \"wall_ms\": 1.5000, \"children\": "
            "[{\"name\": \"plan\", \"wall_ms\": 0.2500, "
            "\"detail\": \"cost: NRA\"}, "
            "{\"name\": \"mine\", \"wall_ms\": 1.0000, "
            "\"counters\": {\"shards\": 3, \"frac\": 0.500}, \"children\": "
            "[{\"name\": \"shard 0\", \"wall_ms\": 0.5000, "
            "\"counters\": {\"entries_read\": 10}}]}]}\n");
}

TEST(ObsTraceTest, SingleEngineTraceCarriesMinePhases) {
  MiningEngine engine = MakeTinyEngine();
  PhraseServiceOptions options;
  options.pool.num_threads = 1;
  PhraseService service(&engine, options);

  ServiceRequest request;
  request.query =
      engine.ParseQuery("query optimization", QueryOperator::kAnd).value();
  request.options.trace = true;
  request.algorithm = Algorithm::kNra;
  const ServiceReply reply = service.MineSync(request);

  ASSERT_NE(reply.trace, nullptr);
  EXPECT_EQ(reply.trace->name, "query");
  // The mine's trace was re-rooted under the request span and stripped
  // from the (cacheable) result.
  EXPECT_EQ(reply.result.trace, nullptr);
  const TraceSpan* plan = Child(*reply.trace, "plan");
  ASSERT_NE(plan, nullptr);
  EXPECT_FALSE(plan->detail.empty());
  const TraceSpan* cache = Child(*reply.trace, "cache_lookup");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(CounterValue(*cache, "hit"), 0.0);
  const TraceSpan* mine = Child(*reply.trace, "mine:nra");
  ASSERT_NE(mine, nullptr);
  const TraceSpan* traversal = Child(*mine, "traversal");
  ASSERT_NE(traversal, nullptr);
  EXPECT_GT(CounterValue(*traversal, "entries_read"), 0.0);
  EXPECT_NE(Child(*mine, "extract_topk"), nullptr);
}

TEST(ObsTraceTest, ShardedDiskTraceStructureAndFleetDeltasAgree) {
  ShardedEngineOptions engine_options;
  engine_options.num_shards = 3;
  engine_options.engine.extractor.min_df = 2;
  engine_options.disk_backed = true;
  ShardedEngine sharded = ShardedEngine::Build(MakeSmallSyntheticCorpus(300),
                                               std::move(engine_options));
  PhraseServiceOptions options;
  options.pool.num_threads = 2;
  PhraseService service(&sharded, options);

  ServiceRequest request;
  request.query = sharded.ParseQuery("topic:0 topic:1",
                                     QueryOperator::kOr).value();
  request.options.trace = true;
  request.algorithm = Algorithm::kNraDisk;

  const MetricsSnapshot before = service.metrics_snapshot();
  const ServiceReply cold = service.MineSync(request);
  const MetricsSnapshot after = service.metrics_snapshot();

  ASSERT_NE(cold.trace, nullptr);
  EXPECT_EQ(cold.trace->name, "query");
  const TraceSpan* mine = Child(*cold.trace, "mine:sharded");
  ASSERT_NE(mine, nullptr);
  EXPECT_FALSE(mine->detail.empty());
  EXPECT_EQ(CounterValue(*mine, "shards"), 3.0);
  for (const char* phase : {"exchange", "fill", "gather", "materialize"}) {
    EXPECT_NE(Child(*mine, phase), nullptr) << phase;
  }

  // Every shard's scatter leg is its own span; the traced per-shard disk
  // reads must sum to the merged result's device charge AND to the fleet
  // counters' delta -- three views of one execution.
  const TraceSpan* scatter = Child(*mine, "scatter");
  ASSERT_NE(scatter, nullptr);
  ASSERT_EQ(scatter->children.size(), 3u);
  double traced_blocks = 0.0;
  double traced_entries = 0.0;
  for (std::size_t s = 0; s < scatter->children.size(); ++s) {
    const TraceSpan& leg = *scatter->children[s];
    EXPECT_EQ(leg.name, "shard " + std::to_string(s));
    traced_blocks += CounterValue(leg, "disk_blocks");
    traced_entries += CounterValue(leg, "entries_read");
  }
  EXPECT_GT(traced_blocks, 0.0);
  EXPECT_GT(traced_entries, 0.0);
  EXPECT_EQ(traced_blocks,
            static_cast<double>(cold.result.disk_io.blocks_read));
  EXPECT_EQ(traced_blocks,
            static_cast<double>(after.counter("disk_blocks_total") -
                                before.counter("disk_blocks_total")));
  uint64_t per_shard_blocks = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    const std::string name =
        "shard_disk_blocks_total{shard=\"" + std::to_string(s) + "\"}";
    per_shard_blocks += after.counter(name) - before.counter(name);
  }
  EXPECT_EQ(static_cast<double>(per_shard_blocks), traced_blocks);
  EXPECT_EQ(after.counter("service_queries_total") -
                before.counter("service_queries_total"),
            1u);

  // Warm repeat: the trace collapses to plan + cache lookup.
  const ServiceReply warm = service.MineSync(request);
  ASSERT_NE(warm.trace, nullptr);
  ASSERT_TRUE(warm.result_cache_hit);
  EXPECT_EQ(warm.trace->children.size(), 2u);
  const TraceSpan* cache = Child(*warm.trace, "cache_lookup");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(CounterValue(*cache, "hit"), 1.0);
  EXPECT_EQ(Child(*warm.trace, "mine:sharded"), nullptr);
}

TEST(ObsTraceTest, TracingOffAddsNoAllocationsOnTheWarmPath) {
  MiningEngine engine = MakeTinyEngine();
  PhraseServiceOptions options;
  options.pool.num_threads = 1;
  PhraseService service(&engine, options);

  ServiceRequest request;
  request.query =
      engine.ParseQuery("query optimization", QueryOperator::kAnd).value();
  request.algorithm = Algorithm::kExact;

  // Warm the result cache, the word-list structures and every lazy
  // thread_local so the measured runs are identical cache hits.
  ASSERT_FALSE(service.MineSync(request).result_cache_hit);
  ASSERT_TRUE(service.MineSync(request).result_cache_hit);

  const auto measure = [&](bool trace) {
    request.options.trace = trace;
    const std::size_t start = g_alloc_count.load(std::memory_order_relaxed);
    const ServiceReply reply = service.MineSync(request);
    const std::size_t used =
        g_alloc_count.load(std::memory_order_relaxed) - start;
    EXPECT_TRUE(reply.result_cache_hit);
    EXPECT_EQ(reply.trace != nullptr, trace);
    return used;
  };

  // A warm untraced hit allocates the same (small) amount every time --
  // the trace machinery contributes exactly nothing when off -- while
  // turning tracing on must be the only thing that costs more.
  const std::size_t off_first = measure(false);
  const std::size_t off_second = measure(false);
  const std::size_t on = measure(true);
  EXPECT_EQ(off_first, off_second);
  EXPECT_GT(on, off_first);
}

}  // namespace
}  // namespace phrasemine
