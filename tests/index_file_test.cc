// Index file format: writer/reader round trip, the corruption matrix the
// validator must reject, and the measured MappedDisk backend's first-touch
// accounting over a mapped file.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/io_util.h"
#include "gtest/gtest.h"
#include "storage/index_file.h"
#include "testing/failpoint.h"

namespace phrasemine {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint8_t> Payload(std::size_t n, uint8_t seed) {
  std::vector<uint8_t> bytes(n);
  for (std::size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<uint8_t>(seed + i * 7);
  }
  return bytes;
}

/// Writes a small two-section file and returns its path.
std::string WriteSample(const char* name) {
  IndexFileWriter writer;
  writer.AddSection(IndexSection::kVocabulary, Payload(100, 3));
  writer.AddSection(IndexSection::kWordScoreLists, Payload(10000, 11));
  const std::string path = TempPath(name);
  EXPECT_TRUE(writer.WriteTo(path).ok());
  return path;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  auto reader = BinaryReader::FromFile(path);
  EXPECT_TRUE(reader.ok());
  std::vector<uint8_t> bytes(reader.value().Remaining());
  EXPECT_TRUE(reader.value().GetRaw(bytes.data(), bytes.size()).ok());
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  BinaryWriter w;
  w.PutRaw(bytes.data(), bytes.size());
  ASSERT_TRUE(w.WriteToFile(path).ok());
}

TEST(IndexFileTest, RoundTripPreservesSections) {
  const std::string path = WriteSample("roundtrip.pmidx");
  auto file = IndexFile::Open(path);
  ASSERT_TRUE(file.ok());
  const IndexFile& f = file.value();

  EXPECT_TRUE(f.has_section(IndexSection::kVocabulary));
  EXPECT_TRUE(f.has_section(IndexSection::kWordScoreLists));
  EXPECT_FALSE(f.has_section(IndexSection::kManifest));
  EXPECT_EQ(f.section_offset(IndexSection::kManifest), DiskBackend::kNoOffset);

  const auto vocab = f.section(IndexSection::kVocabulary);
  const auto lists = f.section(IndexSection::kWordScoreLists);
  ASSERT_EQ(vocab.size(), 100u);
  ASSERT_EQ(lists.size(), 10000u);
  const std::vector<uint8_t> expected_vocab = Payload(100, 3);
  const std::vector<uint8_t> expected_lists = Payload(10000, 11);
  EXPECT_TRUE(std::equal(vocab.begin(), vocab.end(), expected_vocab.begin()));
  EXPECT_TRUE(std::equal(lists.begin(), lists.end(), expected_lists.begin()));

  // Payloads start on page boundaries and the file is whole pages.
  EXPECT_EQ(f.section_offset(IndexSection::kVocabulary) % kIndexPageBytes, 0u);
  EXPECT_EQ(f.section_offset(IndexSection::kWordScoreLists) % kIndexPageBytes,
            0u);
  EXPECT_EQ(f.file_bytes() % kIndexPageBytes, 0u);
  EXPECT_GE(f.open_ms(), 0.0);
  std::remove(path.c_str());
}

TEST(IndexFileTest, OpenMissingFileIsIOError) {
  auto file = IndexFile::Open(TempPath("nonexistent.pmidx"));
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kIOError);
}

TEST(IndexFileTest, RejectsBadMagic) {
  const std::string path = WriteSample("badmagic.pmidx");
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes[0] ^= 0xFF;
  WriteAll(path, bytes);
  auto file = IndexFile::Open(path);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IndexFileTest, RejectsUnsupportedVersion) {
  const std::string path = WriteSample("badversion.pmidx");
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes[4] = 99;  // version field
  WriteAll(path, bytes);
  auto file = IndexFile::Open(path);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IndexFileTest, RejectsForeignEndianStamp) {
  const std::string path = WriteSample("badendian.pmidx");
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes[8] = 2;  // endian stamp: 1 = little
  WriteAll(path, bytes);
  auto file = IndexFile::Open(path);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IndexFileTest, RejectsTruncation) {
  const std::string path = WriteSample("truncated.pmidx");
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes.resize(bytes.size() / 2);
  WriteAll(path, bytes);
  auto file = IndexFile::Open(path);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IndexFileTest, RejectsTrailingGarbage) {
  const std::string path = WriteSample("trailing.pmidx");
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes.insert(bytes.end(), 64, 0xAB);
  WriteAll(path, bytes);
  auto file = IndexFile::Open(path);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IndexFileTest, RejectsFlippedPayloadByte) {
  const std::string path = WriteSample("payloadflip.pmidx");
  std::vector<uint8_t> bytes = ReadAll(path);
  // Flip a byte in the middle of the second section's payload (vocab fills
  // page 1, lists start at page 2) so only its checksum can catch it --
  // tail padding is not covered, a mid-payload byte is.
  bytes[2 * kIndexPageBytes + 5000] ^= 0x01;
  WriteAll(path, bytes);
  auto file = IndexFile::Open(path);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IndexFileTest, RejectsFlippedTableByte) {
  const std::string path = WriteSample("tableflip.pmidx");
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes[40] ^= 0x01;  // inside the first section-table entry
  WriteAll(path, bytes);
  auto file = IndexFile::Open(path);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IndexFileTest, FileTooSmallForHeader) {
  const std::string path = TempPath("tiny.pmidx");
  WriteAll(path, std::vector<uint8_t>(8, 0));
  auto file = IndexFile::Open(path);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(MappedDiskTest, ColdReadThenCacheHit) {
  const std::string path = WriteSample("mapped.pmidx");
  auto file = IndexFile::Open(path);
  ASSERT_TRUE(file.ok());
  MappedDisk disk(&file.value());
  const uint32_t r = disk.RegisterRange(
      file.value().section_offset(IndexSection::kWordScoreLists), 10000);

  disk.Read(r, 0, 10000);  // 10000 bytes span 3 mapped 4 KiB blocks
  EXPECT_EQ(disk.stats().BlocksRead(), 3u);
  EXPECT_EQ(disk.stats().bytes_read, 10000u);
  // First block is a seek, the rest stream sequentially.
  EXPECT_EQ(disk.stats().Seeks(), 1u);
  EXPECT_EQ(disk.stats().sequential_fetches, 2u);

  disk.Read(r, 0, 10000);  // warm: every block already touched
  EXPECT_EQ(disk.stats().BlocksRead(), 3u);
  EXPECT_EQ(disk.stats().cache_hits, 3u);

  disk.Reset();  // cold again
  disk.Read(r, 0, 4096);
  EXPECT_EQ(disk.stats().BlocksRead(), 1u);
  EXPECT_TRUE(disk.measured());
  std::remove(path.c_str());
}

TEST(MappedDiskTest, UnbackedRangesAccountArithmetically) {
  // Ranges registered at kNoOffset (structures with no bytes in any file)
  // are charged over a synthetic address space and never dereferenced --
  // this must work even with no file at all.
  MappedDisk disk(nullptr);
  const uint32_t a = disk.RegisterRange(DiskBackend::kNoOffset, 8192);
  const uint32_t b = disk.RegisterRange(DiskBackend::kNoOffset, 4096);
  disk.Read(a, 0, 8192);
  EXPECT_EQ(disk.stats().BlocksRead(), 2u);
  disk.Read(b, 0, 1);
  // Distinct ranges are padded apart, so crossing ranges is never
  // mistaken for a sequential continuation.
  EXPECT_EQ(disk.stats().Seeks(), 2u);
}

TEST(MappedDiskTest, SparseTouchesCountTouchedBlocksOnly) {
  const std::string path = WriteSample("sparse.pmidx");
  auto file = IndexFile::Open(path);
  ASSERT_TRUE(file.ok());
  MappedDisk disk(&file.value());
  const uint32_t r = disk.RegisterRange(
      file.value().section_offset(IndexSection::kWordScoreLists), 10000);
  disk.Read(r, 0, 12);      // block 0
  disk.Read(r, 8200, 12);   // block 2 (skips block 1)
  EXPECT_EQ(disk.stats().BlocksRead(), 2u);
  EXPECT_EQ(disk.stats().Seeks(), 2u);  // non-adjacent: both are seeks
  EXPECT_EQ(disk.stats().bytes_read, 24u);
  std::remove(path.c_str());
}

TEST(IndexFileWriterTest, CrashBeforeRenameLeavesPreviousVersionIntact) {
  // Durability regression: a failure injected at the power-cut site
  // (data synced into the .tmp, rename not yet executed) must surface as
  // a typed error, remove the orphan .tmp, and leave whatever lived
  // under the final name before the write byte-for-byte untouched.
  failpoint::DisarmAll();
  const std::string path = WriteSample("durable.pmidx");
  const std::vector<uint8_t> before = ReadAll(path);

  IndexFileWriter writer;
  writer.AddSection(IndexSection::kVocabulary, Payload(200, 5));
  failpoint::Arm("index_file.write.before_rename",
                 {.error_code = StatusCode::kIOError,
                  .error_message = "injected power cut",
                  .max_hits = 1});
  const Status crashed = writer.WriteTo(path);
  failpoint::DisarmAll();
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.code(), StatusCode::kIOError);
  // No half-state: the orphan is cleaned up, the old version survives.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_EQ(ReadAll(path), before);
  auto old_version = IndexFile::Open(path);
  ASSERT_TRUE(old_version.ok());
  EXPECT_TRUE(old_version.value().has_section(IndexSection::kWordScoreLists));

  // Faults off, the same writer replaces the file atomically.
  ASSERT_TRUE(writer.WriteTo(path).ok());
  auto new_version = IndexFile::Open(path);
  ASSERT_TRUE(new_version.ok());
  EXPECT_FALSE(new_version.value().has_section(IndexSection::kWordScoreLists));
  EXPECT_EQ(new_version.value().section(IndexSection::kVocabulary).size(),
            200u);
  std::remove(path.c_str());
}

TEST(IndexFileTest, OpenFailpointInjectsTypedCorruption) {
  failpoint::DisarmAll();
  const std::string path = WriteSample("openfault.pmidx");
  failpoint::Arm("index_file.open", {.error_code = StatusCode::kCorruption,
                                     .error_message = "injected torn page",
                                     .max_hits = 1});
  auto file = IndexFile::Open(path);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kCorruption);
  failpoint::DisarmAll();
  // The injection auto-disarmed after one hit; the file itself is fine.
  EXPECT_TRUE(IndexFile::Open(path).ok());
  std::remove(path.c_str());
}

TEST(IndexFileWriterTest, EmptyWriterProducesOpenableFile) {
  IndexFileWriter writer;
  const std::string path = TempPath("empty.pmidx");
  ASSERT_TRUE(writer.WriteTo(path).ok());
  auto file = IndexFile::Open(path);
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE(file.value().has_section(IndexSection::kVocabulary));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace phrasemine
