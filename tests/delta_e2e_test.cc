// End-to-end differential test of the live-update path (Section 4.5.1):
// randomized insert/delete batches are absorbed through
// MiningEngine::ApplyUpdate, and after every batch the delta-corrected
// miners are compared against an engine rebuilt from scratch over the live
// document set. SMJ must match the rebuild *exactly* (same phrase set,
// bit-identical scores); NRA's recall against the rebuild is measured and
// bounded. Everything is driven by a seeded RNG, so there are no flaky
// thresholds -- the asserted bounds are far below the deterministic
// observed values.

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/delta_index.h"
#include "core/engine.h"
#include "gtest/gtest.h"
#include "text/corpus.h"

namespace phrasemine {
namespace {

MiningEngine::Options TestOptions() {
  MiningEngine::Options options;
  // min_df = 1 makes the base dictionary contain *every* n-gram of the
  // base corpus, so a rebuild over duplicated documents can never surface
  // a phrase the overlay does not know about -- the precondition for exact
  // equality (new-content inserts are covered separately below).
  options.extractor.min_df = 1;
  options.extractor.max_phrase_len = 3;
  return options;
}

std::vector<std::string> RandomDoc(Rng& rng, std::size_t vocab_size) {
  const std::size_t len = 8 + rng.NextBelow(7);
  std::vector<std::string> tokens;
  tokens.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    tokens.push_back("w" + std::to_string(rng.NextBelow(vocab_size)));
  }
  return tokens;
}

Corpus MakeCorpus(const std::vector<std::vector<std::string>>& docs) {
  Corpus corpus;
  for (const auto& doc : docs) corpus.AddTokenized(doc);
  return corpus;
}

/// Result keyed by phrase token-id sequence (term ids are shared between
/// the engines via a copied vocabulary), valued by interestingness.
std::map<std::vector<TermId>, double> ResultByTokens(const MiningEngine& engine,
                                                     const MineResult& result) {
  std::map<std::vector<TermId>, double> out;
  for (const MinedPhrase& p : result.phrases) {
    out.emplace(engine.dict().info(p.phrase).tokens, p.interestingness);
  }
  return out;
}

/// Fresh engine over the live documents, sharing the base vocabulary so
/// term ids (and parsed queries) carry over.
MiningEngine RebuildReference(
    const MiningEngine& base,
    const std::vector<std::optional<std::vector<std::string>>>& live) {
  Corpus corpus;
  corpus.vocab() = base.corpus().vocab();
  for (const auto& doc : live) {
    if (doc.has_value()) corpus.AddTokenized(*doc);
  }
  return MiningEngine::Build(std::move(corpus), TestOptions());
}

/// Shared harness: runs `num_batches` randomized update batches against a
/// base engine, comparing delta-corrected SMJ/NRA to a fresh rebuild after
/// each. `duplicate_only` restricts inserts to copies of live documents
/// (the exact-equality regime); otherwise inserts carry new random content
/// and the comparison is restricted to base-dictionary phrases.
void RunDifferential(uint64_t seed, int num_batches, bool duplicate_only,
                     double min_nra_recall) {
  constexpr std::size_t kVocab = 25;
  constexpr std::size_t kBaseDocs = 80;
  Rng rng(seed);

  std::vector<std::vector<std::string>> base_docs;
  for (std::size_t i = 0; i < kBaseDocs; ++i) {
    base_docs.push_back(RandomDoc(rng, kVocab));
  }
  MiningEngine engine = MiningEngine::Build(MakeCorpus(base_docs),
                                            TestOptions());

  // Mirror of the engine's live-document numbering: base docs first, then
  // inserts in ingest order; deleted slots are nullopt.
  std::vector<std::optional<std::vector<std::string>>> live(
      base_docs.begin(), base_docs.end());

  int smj_exact_batches = 0;
  double nra_recall_sum = 0.0;
  std::size_t nra_recall_samples = 0;

  for (int batch_no = 0; batch_no < num_batches; ++batch_no) {
    // --- Compose and apply a random batch --------------------------------
    UpdateBatch batch;
    const std::size_t num_inserts = rng.NextBelow(4);
    for (std::size_t i = 0; i < num_inserts; ++i) {
      UpdateDoc doc;
      if (duplicate_only) {
        for (;;) {
          const std::size_t id = rng.NextBelow(live.size());
          if (live[id].has_value()) {
            doc.tokens = *live[id];
            break;
          }
        }
      } else {
        doc.tokens = RandomDoc(rng, kVocab);
      }
      live.emplace_back(doc.tokens);
      batch.inserts.push_back(std::move(doc));
    }
    std::size_t num_live = 0;
    for (const auto& d : live) num_live += d.has_value() ? 1 : 0;
    const std::size_t num_deletes = num_live > 20 ? rng.NextBelow(3) : 0;
    for (std::size_t i = 0; i < num_deletes; ++i) {
      for (;;) {
        const auto id = static_cast<DocId>(rng.NextBelow(live.size()));
        if (live[id].has_value()) {
          live[id].reset();
          batch.deletes.push_back(id);
          break;
        }
      }
    }
    if (batch.inserts.empty() && batch.deletes.empty()) {
      UpdateDoc doc;
      if (duplicate_only) {
        for (;;) {
          const std::size_t id = rng.NextBelow(live.size());
          if (live[id].has_value()) {
            doc.tokens = *live[id];
            break;
          }
        }
      } else {
        doc.tokens = RandomDoc(rng, kVocab);
      }
      live.emplace_back(doc.tokens);
      batch.inserts.push_back(std::move(doc));
    }
    const UpdateStats stats = engine.ApplyUpdate(batch);
    EXPECT_EQ(stats.epoch, static_cast<uint64_t>(batch_no + 1));

    // --- Rebuild reference and compare -----------------------------------
    MiningEngine fresh = RebuildReference(engine, live);

    Query query;
    query.op = rng.NextBool(0.5) ? QueryOperator::kAnd : QueryOperator::kOr;
    const std::size_t num_terms = 1 + rng.NextBelow(2);
    for (std::size_t i = 0; i < num_terms; ++i) {
      const std::string text = "w" + std::to_string(rng.NextBelow(kVocab));
      const TermId t = engine.corpus().vocab().Lookup(text);
      if (t != kInvalidTermId) query.terms.push_back(t);
    }
    if (query.terms.empty()) continue;
    std::sort(query.terms.begin(), query.terms.end());
    query.terms.erase(std::unique(query.terms.begin(), query.terms.end()),
                      query.terms.end());

    MineOptions all;
    all.k = 100000;  // everything with a positive score
    const MineResult delta_smj = engine.Mine(query, Algorithm::kSmj, all);
    EXPECT_EQ(delta_smj.guarantee, UpdateGuarantee::kExactUnderDelta);
    EXPECT_EQ(delta_smj.epoch, stats.epoch);
    const MineResult fresh_smj = fresh.Mine(query, Algorithm::kSmj, all);
    EXPECT_EQ(fresh_smj.guarantee, UpdateGuarantee::kFresh);

    const auto delta_map = ResultByTokens(engine, delta_smj);
    const auto fresh_map = ResultByTokens(fresh, fresh_smj);
    bool exact = true;
    if (duplicate_only) {
      // Exact regime: identical phrase sets, bit-identical scores.
      EXPECT_EQ(delta_map.size(), fresh_map.size())
          << "batch " << batch_no << ": phrase sets diverged";
      exact = delta_map.size() == fresh_map.size();
      for (const auto& [tokens, score] : delta_map) {
        auto it = fresh_map.find(tokens);
        if (it == fresh_map.end()) {
          ADD_FAILURE() << "batch " << batch_no
                        << ": delta-SMJ phrase missing from rebuild";
          exact = false;
          continue;
        }
        EXPECT_DOUBLE_EQ(score, it->second) << "batch " << batch_no;
        if (score != it->second) exact = false;
      }
    } else {
      // New-content regime: every delta-side phrase must score exactly as
      // in the rebuild, and anything the overlay missed must be a phrase
      // that did not exist in the base dictionary (the documented
      // out-of-scope case: it enters P at the next rebuild).
      for (const auto& [tokens, score] : delta_map) {
        auto it = fresh_map.find(tokens);
        ASSERT_NE(it, fresh_map.end())
            << "batch " << batch_no << ": delta-SMJ phrase not in rebuild";
        EXPECT_DOUBLE_EQ(score, it->second) << "batch " << batch_no;
        if (score != it->second) exact = false;
      }
      for (const auto& [tokens, score] : fresh_map) {
        if (delta_map.contains(tokens)) continue;
        EXPECT_EQ(engine.dict().Find(tokens), kInvalidPhraseId)
            << "batch " << batch_no
            << ": base-dictionary phrase missing from delta-SMJ";
      }
    }
    if (exact) ++smj_exact_batches;

    // --- NRA recall vs the rebuild ---------------------------------------
    // Tie-robust quality recall: an NRA result counts as a hit when its
    // *true* (rebuilt) score reaches the reference k-th score. Plain set
    // overlap would punish nothing but tie-permutation (phrase ids -- the
    // tie-break -- are reassigned by the rebuild).
    MineOptions topk;
    topk.k = 10;
    const MineResult delta_nra = engine.Mine(query, Algorithm::kNra, topk);
    EXPECT_EQ(delta_nra.guarantee, UpdateGuarantee::kApproximateUnderDelta);
    const MineResult fresh_ref = fresh.Mine(query, Algorithm::kSmj, topk);
    if (!fresh_ref.phrases.empty()) {
      const double kth_score = fresh_ref.phrases.back().interestingness;
      std::size_t hits = 0;
      for (const MinedPhrase& p : delta_nra.phrases) {
        auto it = fresh_map.find(engine.dict().info(p.phrase).tokens);
        if (it != fresh_map.end() && it->second >= kth_score) ++hits;
      }
      nra_recall_sum += static_cast<double>(hits) /
                        static_cast<double>(fresh_ref.phrases.size());
      ++nra_recall_samples;
    }
  }

  if (duplicate_only) {
    EXPECT_EQ(smj_exact_batches, num_batches)
        << "SMJ-with-delta must match a fresh rebuild on every batch";
  }
  ASSERT_GT(nra_recall_samples, 0u);
  const double avg_recall =
      nra_recall_sum / static_cast<double>(nra_recall_samples);
  EXPECT_GE(avg_recall, min_nra_recall)
      << "NRA-with-delta average recall over " << nra_recall_samples
      << " batches";
}

TEST(DeltaE2eTest, SmjMatchesRebuildExactlyOver110Batches) {
  RunDifferential(/*seed=*/42, /*num_batches=*/110, /*duplicate_only=*/true,
                  /*min_nra_recall=*/0.70);
}

TEST(DeltaE2eTest, NewContentInsertsStayExactOnBaseDictionary) {
  RunDifferential(/*seed=*/7, /*num_batches=*/40, /*duplicate_only=*/false,
                  /*min_nra_recall=*/0.60);
}

TEST(DeltaE2eTest, TruncatedSmjIsLabeledApproximateUnderDelta) {
  // SMJ's exactness under a delta only holds over full id-ordered lists:
  // a truncated prefix hides base-positive pairs from the overlay, so the
  // stamped guarantee must downgrade to approximate.
  Rng rng(123);
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 30; ++i) docs.push_back(RandomDoc(rng, 15));
  MiningEngine engine = MiningEngine::Build(MakeCorpus(docs), TestOptions());
  UpdateBatch batch;
  UpdateDoc doc;
  doc.tokens = docs[0];
  batch.inserts.push_back(std::move(doc));
  engine.ApplyUpdate(batch);

  Query query;
  query.terms = {engine.corpus().vocab().Lookup("w1")};
  query.op = QueryOperator::kAnd;
  ASSERT_NE(query.terms[0], kInvalidTermId);

  EXPECT_EQ(engine.Mine(query, Algorithm::kSmj, {}).guarantee,
            UpdateGuarantee::kExactUnderDelta);
  engine.SetSmjFraction(0.5);
  EXPECT_EQ(engine.Mine(query, Algorithm::kSmj, {}).guarantee,
            UpdateGuarantee::kApproximateUnderDelta);
}

TEST(DeltaE2eTest, RebuildPromotesNewPhrasesAndPreservesQueries) {
  Rng rng(99);
  std::vector<std::vector<std::string>> base_docs;
  for (int i = 0; i < 40; ++i) base_docs.push_back(RandomDoc(rng, 20));
  MiningEngine::Options options;
  options.extractor.min_df = 2;
  options.extractor.max_phrase_len = 3;
  MiningEngine engine = MiningEngine::Build(MakeCorpus(base_docs), options);
  ASSERT_EQ(engine.epoch(), 0u);

  // A burst of documents around a brand-new bigram "flux capacitor".
  UpdateBatch batch;
  for (int i = 0; i < 6; ++i) {
    UpdateDoc doc;
    doc.tokens = {"flux", "capacitor", "w1", "w2"};
    batch.inserts.push_back(std::move(doc));
  }
  const UpdateStats stats = engine.ApplyUpdate(batch);
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(stats.batch_inserts, 6u);
  EXPECT_EQ(stats.pending_updates, 6u);
  // 6 pending updates over 46 live docs is below the default 0.25
  // threshold; the engine leaves the rebuild decision to the caller.
  EXPECT_FALSE(stats.rebuild_recommended);
  EXPECT_EQ(stats.live_docs, 46u);

  // New words were interned at ingest but the frozen dictionary cannot
  // hold the new phrase yet.
  const TermId flux = engine.corpus().vocab().Lookup("flux");
  ASSERT_NE(flux, kInvalidTermId);
  const TermId capacitor = engine.corpus().vocab().Lookup("capacitor");
  EXPECT_EQ(engine.dict().Find(std::vector<TermId>{flux, capacitor}),
            kInvalidPhraseId);

  // A query parsed before the rebuild must survive it (term ids are
  // preserved), and w1's scores must reflect the inserts afterwards.
  Query pre = engine.ParseQuery("w1", QueryOperator::kAnd).value();
  const uint64_t generation_before = engine.list_generation();
  engine.Rebuild();
  EXPECT_EQ(engine.epoch(), 2u);
  EXPECT_EQ(engine.list_generation(), generation_before + 1);
  EXPECT_EQ(engine.corpus().size(), 46u);
  EXPECT_EQ(engine.update_stats().pending_updates, 0u);

  // The new phrase entered P at the rebuild (df 6 >= min_df 2)...
  const PhraseId promoted =
      engine.dict().Find(std::vector<TermId>{flux, capacitor});
  ASSERT_NE(promoted, kInvalidPhraseId);
  EXPECT_EQ(engine.dict().df(promoted), 6u);
  // ...and is minable through the old query handle.
  const MineResult result = engine.Mine(pre, Algorithm::kSmj, {.k = 100});
  EXPECT_EQ(result.guarantee, UpdateGuarantee::kFresh);
  EXPECT_EQ(result.epoch, 2u);
  bool found = false;
  for (const MinedPhrase& p : result.phrases) {
    if (p.phrase == promoted) found = true;
  }
  EXPECT_TRUE(found) << "promoted phrase should co-occur with w1";
}

}  // namespace
}  // namespace phrasemine
