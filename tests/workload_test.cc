// Workload harness: generator determinism and knob semantics (Zipf
// skew, hot-set drift, bursts), the versioned trace format's round-trip
// and rejection behavior, the checked-in golden trace's byte stability,
// and the replay determinism contract (same trace -> bitwise-identical
// result signatures, pacing included).
//
// The golden lives at bench/workload/goldens/tiny_zipf.trace; regenerate
// it after an intentional format or generator change with
//   PM_UPDATE_GOLDEN=1 ./workload_test

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/service.h"
#include "test_util.h"
#include "workload/generator.h"
#include "workload/replay.h"
#include "workload/trace.h"

namespace phrasemine {
namespace {

using workload::GenerateTrace;
using workload::TraceQuery;
using workload::WorkloadOptions;
using workload::WorkloadQuerySpec;
using workload::WorkloadTrace;

/// Fixed literal pool over MakeTinyCorpus vocabulary, so the golden
/// trace is human-readable and replayable against MakeTinyEngine.
std::vector<WorkloadQuerySpec> TinyPool() {
  return {
      {QueryOperator::kOr, 5, {"query", "optimization"}},
      {QueryOperator::kAnd, 5, {"join", "order"}},
      {QueryOperator::kOr, 5, {"kernel", "systems"}},
      {QueryOperator::kOr, 5, {"db"}},
      {QueryOperator::kAnd, 5, {"the", "of"}},
      {QueryOperator::kOr, 5, {"scheduling", "kernel"}},
  };
}

/// The exact recipe behind the checked-in golden. Every knob pinned:
/// changing any of them (or the generator's draw order) changes the
/// bytes and the golden test fails, which is the point.
WorkloadOptions GoldenOptions() {
  WorkloadOptions options;
  options.seed = 7;
  options.num_queries = 40;
  options.zipf_s = 1.1;
  options.drift_cadence = 16;
  options.drift_rotate = 2;
  options.burst_period = 10;
  options.burst_len = 3;
  options.burst_height = 4.0;
  options.mean_interarrival_us = 250.0;
  return options;
}

std::string GoldenPath() {
  return std::string(PHRASEMINE_SOURCE_DIR) +
         "/bench/workload/goldens/tiny_zipf.trace";
}

TEST(WorkloadGeneratorTest, SameSeedSamePoolIsBitwiseDeterministic) {
  const std::vector<WorkloadQuerySpec> pool = TinyPool();
  WorkloadOptions options = GoldenOptions();
  const WorkloadTrace a = GenerateTrace(pool, options);
  const WorkloadTrace b = GenerateTrace(pool, options);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Serialize(), b.Serialize());

  options.seed = 8;
  const WorkloadTrace c = GenerateTrace(pool, options);
  EXPECT_NE(a, c) << "a different seed must change the trace";
}

TEST(WorkloadGeneratorTest, ZipfSkewsQueryPopularity) {
  WorkloadOptions options;
  options.seed = 11;
  options.num_queries = 300;
  options.zipf_s = 1.1;
  const WorkloadTrace trace = GenerateTrace(TinyPool(), options);

  std::map<std::vector<std::string>, std::size_t> counts;
  for (const TraceQuery& q : trace.queries) ++counts[q.terms];
  std::size_t hottest = 0;
  std::size_t coldest = trace.queries.size();
  for (const auto& [terms, n] : counts) {
    hottest = std::max(hottest, n);
    coldest = std::min(coldest, n);
  }
  EXPECT_GE(hottest, 3 * std::max<std::size_t>(coldest, 1))
      << "s=1.1 over a 6-query pool must be visibly head-heavy";
}

TEST(WorkloadGeneratorTest, DriftRotatesTheHotSetAtTheCadence) {
  WorkloadOptions steady;
  steady.seed = 11;
  steady.num_queries = 120;
  steady.drift_cadence = 0;
  WorkloadOptions drifting = steady;
  drifting.drift_cadence = 30;
  drifting.drift_rotate = 2;

  const WorkloadTrace a = GenerateTrace(TinyPool(), steady);
  const WorkloadTrace b = GenerateTrace(TinyPool(), drifting);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  // Rotation consumes no randomness: the first phase is identical, and
  // some later event must name a different query.
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(a.queries[i].terms, b.queries[i].terms) << "event " << i;
  }
  bool diverged = false;
  for (std::size_t i = 30; i < a.queries.size(); ++i) {
    diverged |= a.queries[i].terms != b.queries[i].terms;
  }
  EXPECT_TRUE(diverged) << "drift never changed the hot set";
}

TEST(WorkloadGeneratorTest, BurstsCompressInterarrivalGaps) {
  WorkloadOptions options;
  options.seed = 3;
  options.num_queries = 400;
  options.burst_period = 20;
  options.burst_len = 5;
  options.burst_height = 8.0;
  options.mean_interarrival_us = 400.0;
  const WorkloadTrace trace = GenerateTrace(TinyPool(), options);

  double burst_gap = 0.0, steady_gap = 0.0;
  std::size_t burst_n = 0, steady_n = 0;
  for (std::size_t i = 1; i < trace.queries.size(); ++i) {
    const double gap = static_cast<double>(trace.queries[i].arrival_us -
                                           trace.queries[i - 1].arrival_us);
    if (i % options.burst_period < options.burst_len) {
      burst_gap += gap;
      ++burst_n;
    } else {
      steady_gap += gap;
      ++steady_n;
    }
  }
  ASSERT_GT(burst_n, 0u);
  ASSERT_GT(steady_n, 0u);
  EXPECT_LT(burst_gap / static_cast<double>(burst_n),
            0.5 * steady_gap / static_cast<double>(steady_n))
      << "8x burst height must visibly compress in-burst gaps";
}

TEST(WorkloadTraceTest, SerializeParseRoundTripsExactly) {
  const WorkloadTrace trace = GenerateTrace(TinyPool(), GoldenOptions());
  const std::string text = trace.Serialize();
  Result<WorkloadTrace> parsed = WorkloadTrace::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value(), trace);
  EXPECT_EQ(parsed.value().Serialize(), text);

  const std::string path = ::testing::TempDir() + "/roundtrip.trace";
  ASSERT_TRUE(trace.WriteFile(path).ok());
  Result<WorkloadTrace> reread = WorkloadTrace::ReadFile(path);
  ASSERT_TRUE(reread.ok()) << reread.status().message();
  EXPECT_EQ(reread.value(), trace);
  std::remove(path.c_str());
}

TEST(WorkloadTraceTest, ParseRejectsMalformedInput) {
  const std::string good = GenerateTrace(TinyPool(), GoldenOptions())
                               .Serialize();
  EXPECT_FALSE(WorkloadTrace::Parse("").ok());
  EXPECT_FALSE(WorkloadTrace::Parse("not-a-trace v1\nend\n").ok());
  // Unsupported future version.
  std::string bad_version = good;
  bad_version.replace(bad_version.find("v1"), 2, "v9");
  EXPECT_FALSE(WorkloadTrace::Parse(bad_version).ok());
  // Unknown header key.
  std::string bad_key = good;
  bad_key.insert(bad_key.find("seed"), "mystery 3\n");
  EXPECT_FALSE(WorkloadTrace::Parse(bad_key).ok());
  // Truncated: missing the end marker.
  std::string truncated = good.substr(0, good.rfind("end"));
  EXPECT_FALSE(WorkloadTrace::Parse(truncated).ok());
  // Arrival regression.
  WorkloadTrace regressed = GenerateTrace(TinyPool(), GoldenOptions());
  ASSERT_GE(regressed.queries.size(), 2u);
  std::swap(regressed.queries.front().arrival_us,
            regressed.queries.back().arrival_us);
  EXPECT_FALSE(WorkloadTrace::Parse(regressed.Serialize()).ok());
}

TEST(WorkloadTraceTest, GoldenTraceIsByteStable) {
  const WorkloadTrace trace = GenerateTrace(TinyPool(), GoldenOptions());
  const std::string path = GoldenPath();
  if (const char* update = std::getenv("PM_UPDATE_GOLDEN");
      update != nullptr && update[0] == '1') {
    ASSERT_TRUE(trace.WriteFile(path).ok());
    GTEST_SKIP() << "golden regenerated at " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << "missing golden " << path
      << " -- regenerate with PM_UPDATE_GOLDEN=1 ./workload_test";
  std::ostringstream bytes;
  bytes << in.rdbuf();
  EXPECT_EQ(bytes.str(), trace.Serialize())
      << "generator or format drifted from the checked-in golden; if "
         "intentional, bump kTraceFormatVersion semantics deliberately and "
         "regenerate with PM_UPDATE_GOLDEN=1";
}

TEST(WorkloadReplayTest, ReplayingTheGoldenTwiceIsBitwiseIdentical) {
  Result<WorkloadTrace> golden = WorkloadTrace::ReadFile(GoldenPath());
  ASSERT_TRUE(golden.ok()) << golden.status().message();

  MiningEngine engine = testing::MakeTinyEngine();
  PhraseServiceOptions options;
  options.enable_result_cache = false;
  PhraseService service(&engine, options);

  const workload::ReplayResult a =
      workload::ReplayTrace(service, golden.value());
  const workload::ReplayResult b =
      workload::ReplayTrace(service, golden.value());
  EXPECT_EQ(a.queries, golden.value().queries.size());
  EXPECT_LT(a.unresolved, a.queries) << "golden terms must resolve";
  ASSERT_EQ(a.signatures.size(), b.signatures.size());
  EXPECT_EQ(a.signatures, b.signatures)
      << "same trace, same service: replay must be deterministic";
}

TEST(WorkloadReplayTest, PacedReplayMatchesSequentialSignatures) {
  Result<WorkloadTrace> golden = WorkloadTrace::ReadFile(GoldenPath());
  ASSERT_TRUE(golden.ok()) << golden.status().message();

  MiningEngine engine = testing::MakeTinyEngine();
  PhraseServiceOptions options;
  options.enable_result_cache = false;
  PhraseService service(&engine, options);

  const workload::ReplayResult sequential =
      workload::ReplayTrace(service, golden.value());
  workload::ReplayOptions paced;
  paced.paced = true;
  paced.speed = 10.0;
  const workload::ReplayResult open_loop =
      workload::ReplayTrace(service, golden.value(), paced);
  EXPECT_EQ(sequential.signatures, open_loop.signatures)
      << "pacing changes when queries run, never what they return";
}

}  // namespace
}  // namespace phrasemine
