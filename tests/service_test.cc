// PhraseService end-to-end behaviour: concurrent submissions return results
// byte-identical to serial MiningEngine::Mine, the result cache serves
// repeats, counters add up, and shutdown degrades gracefully.

#include <algorithm>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "eval/query_gen.h"
#include "gtest/gtest.h"
#include "service/cache.h"
#include "service/service.h"
#include "test_util.h"
#include "testing/failpoint.h"

namespace phrasemine {
namespace {

/// Exact (bitwise) equality of ranked results; the service must not change
/// a single byte relative to the serial engine.
void ExpectSameResults(const MineResult& serial, const MineResult& served,
                       const std::string& label) {
  ASSERT_EQ(serial.phrases.size(), served.phrases.size()) << label;
  for (std::size_t i = 0; i < serial.phrases.size(); ++i) {
    EXPECT_EQ(serial.phrases[i].phrase, served.phrases[i].phrase)
        << label << " rank " << i;
    EXPECT_EQ(serial.phrases[i].score, served.phrases[i].score)
        << label << " rank " << i;
    EXPECT_EQ(serial.phrases[i].interestingness,
              served.phrases[i].interestingness)
        << label << " rank " << i;
  }
}

/// Harvests a mixed AND/OR workload from the engine's own dictionary.
std::vector<Query> MakeWorkload(const MiningEngine& engine) {
  QueryGenOptions gen_options;
  gen_options.num_queries = 12;
  gen_options.min_term_df = 4;
  gen_options.min_pairwise_codf = 2;
  gen_options.min_and_matches = 2;
  QuerySetGenerator generator(gen_options);
  std::vector<Query> queries = generator.Generate(
      engine.dict(), engine.inverted(), engine.corpus().size());
  std::vector<Query> workload;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    Query q = queries[i];
    q.op = (i % 2 == 0) ? QueryOperator::kAnd : QueryOperator::kOr;
    workload.push_back(std::move(q));
  }
  return workload;
}

TEST(ServiceTest, ConcurrentResultsMatchSerialEngine) {
  // Two independently built engines over the same deterministic corpus:
  // one serves, one is the serial reference.
  MiningEngine serving = testing::MakeSmallEngine(400);
  MiningEngine reference = testing::MakeSmallEngine(400);
  std::vector<Query> workload = MakeWorkload(reference);
  ASSERT_GE(workload.size(), 4u) << "workload generator found too few queries";

  const std::vector<Algorithm> algorithms = {
      Algorithm::kExact, Algorithm::kGm, Algorithm::kNra, Algorithm::kSmj};

  // Serial ground truth on canonicalized queries (the service canonicalizes
  // internally; mining is defined over term sets, so this is behaviour-
  // preserving).
  std::vector<MineResult> expected;
  std::vector<std::string> labels;
  for (const Query& q : workload) {
    const Query canonical = CanonicalizeQuery(q);
    for (Algorithm a : algorithms) {
      expected.push_back(reference.Mine(canonical, a));
      labels.push_back(std::string(AlgorithmName(a)) + "/" +
                       QueryOperatorName(q.op));
    }
  }

  PhraseServiceOptions options;
  options.pool.num_threads = 4;
  options.pool.queue_capacity = 16;  // Force backpressure on submit.
  PhraseService service(&serving, options);

  std::vector<std::future<ServiceReply>> futures;
  for (const Query& q : workload) {
    for (Algorithm a : algorithms) {
      futures.push_back(service.Submit(ServiceRequest{q, MineOptions{}, a}));
    }
  }
  ASSERT_EQ(futures.size(), expected.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ServiceReply reply = futures[i].get();
    ExpectSameResults(expected[i], reply.result, labels[i]);
    EXPECT_EQ(reply.plan.reason, "forced by caller");
  }

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, futures.size());
  EXPECT_EQ(stats.forced, futures.size());
  EXPECT_EQ(stats.planned, 0u);
}

TEST(ServiceTest, PlannedQueriesMatchSerialEngineOnPlannedAlgorithm) {
  MiningEngine serving = testing::MakeSmallEngine(400);
  MiningEngine reference = testing::MakeSmallEngine(400);
  std::vector<Query> workload = MakeWorkload(reference);
  ASSERT_GE(workload.size(), 4u);

  PhraseServiceOptions options;
  options.pool.num_threads = 4;
  PhraseService service(&serving, options);

  std::vector<std::future<ServiceReply>> futures;
  for (const Query& q : workload) {
    futures.push_back(service.Submit(ServiceRequest{q, MineOptions{}, {}}));
  }
  uint64_t algorithm_count = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ServiceReply reply = futures[i].get();
    EXPECT_FALSE(reply.plan.reason.empty());
    MineResult serial =
        reference.Mine(CanonicalizeQuery(workload[i]), reply.plan.algorithm);
    ExpectSameResults(serial, reply.result, reply.plan.ToString());
    ++algorithm_count;
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.planned, algorithm_count);
  uint64_t per_algorithm_total = 0;
  for (uint64_t c : stats.per_algorithm) per_algorithm_total += c;
  EXPECT_EQ(per_algorithm_total, algorithm_count);
}

TEST(ServiceTest, ResultCacheServesRepeats) {
  MiningEngine engine = testing::MakeTinyEngine();
  PhraseServiceOptions options;
  options.pool.num_threads = 2;
  PhraseService service(&engine, options);

  auto q = engine.ParseQuery("query optimization", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  ServiceRequest request{q.value(), MineOptions{}, Algorithm::kNra};

  ServiceReply first = service.MineSync(request);
  EXPECT_FALSE(first.result_cache_hit);
  ServiceReply second = service.MineSync(request);
  EXPECT_TRUE(second.result_cache_hit);
  ExpectSameResults(first.result, second.result, "cached repeat");

  // A spelling with shuffled/duplicated terms hits the same entry.
  ServiceRequest shuffled = request;
  shuffled.query.terms = {request.query.terms[1], request.query.terms[0],
                          request.query.terms[0]};
  ServiceReply third = service.MineSync(shuffled);
  EXPECT_TRUE(third.result_cache_hit);
  ExpectSameResults(first.result, third.result, "canonicalized repeat");

  ServiceStats stats = service.stats();
  EXPECT_GE(stats.result_cache.hits, 2u);
  EXPECT_GE(stats.word_list_cache.hits + stats.word_list_cache.misses, 1u);
  EXPECT_GT(stats.p50_latency_ms, 0.0);
  EXPECT_GE(stats.p95_latency_ms, stats.p50_latency_ms);
  // per_algorithm attributes compute: the two cache hits don't count.
  EXPECT_EQ(stats.per_algorithm[static_cast<int>(Algorithm::kNra)], 1u);
  EXPECT_EQ(stats.queries, 3u);
}

TEST(ServiceTest, SmjFractionInheritsFromEngine) {
  // An engine pinned at a partial SMJ fraction must be served identically
  // whether kSmj goes through the service's cached bundles or not.
  MiningEngine serving = testing::MakeSmallEngine(300);
  MiningEngine reference = testing::MakeSmallEngine(300);
  serving.SetSmjFraction(0.3);
  reference.SetSmjFraction(0.3);

  auto q = serving.ParseQuery("topic:0", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  MineResult serial = reference.Mine(q.value(), Algorithm::kSmj);

  PhraseService service(&serving, {});  // smj_fraction unset: inherit 0.3.
  ServiceReply reply =
      service.MineSync(ServiceRequest{q.value(), MineOptions{}, Algorithm::kSmj});
  ExpectSameResults(serial, reply.result, "inherited smj fraction");
}

TEST(ServiceTest, DifferentKDoesNotShareCacheEntries) {
  MiningEngine engine = testing::MakeTinyEngine();
  PhraseService service(&engine, {});
  auto q = engine.ParseQuery("query optimization", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());

  MineOptions k3;
  k3.k = 3;
  MineOptions k5;
  k5.k = 5;
  ServiceReply r3 =
      service.MineSync(ServiceRequest{q.value(), k3, Algorithm::kNra});
  ServiceReply r5 =
      service.MineSync(ServiceRequest{q.value(), k5, Algorithm::kNra});
  EXPECT_FALSE(r5.result_cache_hit);
  EXPECT_LE(r3.result.phrases.size(), 3u);
}

TEST(ServiceTest, SubmitBatchPreservesOrder) {
  MiningEngine engine = testing::MakeTinyEngine();
  PhraseService service(&engine, {});
  auto q1 = engine.ParseQuery("query optimization", QueryOperator::kAnd);
  auto q2 = engine.ParseQuery("db", QueryOperator::kAnd);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());

  std::vector<ServiceRequest> batch;
  batch.push_back(ServiceRequest{q1.value(), MineOptions{}, Algorithm::kGm});
  batch.push_back(ServiceRequest{q2.value(), MineOptions{}, Algorithm::kGm});
  auto futures = service.SubmitBatch(std::move(batch));
  ASSERT_EQ(futures.size(), 2u);

  MiningEngine reference = testing::MakeTinyEngine();
  ExpectSameResults(
      reference.Mine(CanonicalizeQuery(q1.value()), Algorithm::kGm),
      futures[0].get().result, "batch[0]");
  ExpectSameResults(
      reference.Mine(CanonicalizeQuery(q2.value()), Algorithm::kGm),
      futures[1].get().result, "batch[1]");
}

TEST(ServiceTest, SubmitAfterShutdownResolvesUnavailable) {
  MiningEngine engine = testing::MakeTinyEngine();
  PhraseService service(&engine, {});
  service.Shutdown();

  auto q = engine.ParseQuery("db", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  auto future =
      service.Submit(ServiceRequest{q.value(), MineOptions{}, Algorithm::kGm});
  // Fulfilled despite the dead pool -- with a typed refusal, never a hang
  // and never inline execution on a shut-down service.
  ServiceReply reply = future.get();
  EXPECT_EQ(reply.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(reply.result.phrases.empty());
}

TEST(ServiceTest, InvalidRequestsResolveWithTypedStatus) {
  MiningEngine engine = testing::MakeTinyEngine();
  PhraseService service(&engine, {});
  auto q = engine.ParseQuery("db", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());

  // k == 0 is a malformed request at the service boundary (the engine
  // itself tolerates it; the front door refuses it).
  ServiceReply r = service.MineSync(
      ServiceRequest{q.value(), MineOptions{.k = 0}, Algorithm::kGm});
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(r.result.phrases.empty());

  // A term-less query.
  Query empty;
  empty.op = QueryOperator::kAnd;
  r = service.MineSync(ServiceRequest{empty, MineOptions{}, Algorithm::kGm});
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);

  // Unknown terms are NOT an error: empty lists mine an empty ranking
  // with status OK, matching the engine's semantics.
  Query unknown;
  unknown.op = QueryOperator::kAnd;
  unknown.terms = {static_cast<TermId>(1u << 20)};
  r = service.MineSync(ServiceRequest{unknown, MineOptions{}, Algorithm::kGm});
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.result.phrases.empty());

  // The typed error paths short-circuit before planning/execution, so the
  // executed-query counters stay clean.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.deadline_exceeded, 0u);
}

TEST(ServiceTest, AdmissionShedsHopelessDeadline) {
  MiningEngine engine = testing::MakeTinyEngine();
  PhraseServiceOptions options;
  options.admission.max_queue_depth = 8;  // enables the gate
  PhraseService service(&engine, options);
  auto q = engine.ParseQuery("db", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());

  // A deadline already in the past is the degenerate "hopeless" query:
  // the cost gate sheds it at admission without ever queueing work.
  ServiceRequest request{q.value(), MineOptions{}, Algorithm::kGm};
  request.cancel =
      std::make_shared<CancelToken>(CancelToken::AfterMillis(-1.0));
  ServiceReply reply = service.Submit(std::move(request)).get();
  EXPECT_EQ(reply.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(reply.result.phrases.empty());
  EXPECT_EQ(service.stats().shed, 1u);
  // The same request without admission control enabled instead runs to
  // the pre-execution deadline check and reports DeadlineExceeded.
  PhraseService unguarded(&engine, {});
  ServiceRequest late{q.value(), MineOptions{}, Algorithm::kGm};
  late.cancel = std::make_shared<CancelToken>(CancelToken::AfterMillis(-1.0));
  reply = unguarded.Submit(std::move(late)).get();
  EXPECT_EQ(reply.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(unguarded.stats().deadline_exceeded, 1u);
}

TEST(ServiceTest, RejectionStormResolvesTyped) {
  MiningEngine engine = testing::MakeTinyEngine();
  PhraseService service(&engine, {});
  auto q = engine.ParseQuery("db", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());

  // A pool-level rejection storm (failpoint in Enqueue): the future still
  // resolves, with ResourceExhausted -- never a hang, never an exception.
  failpoint::Arm("pool.submit",
                 {.error_code = StatusCode::kResourceExhausted,
                  .error_message = "injected submit storm",
                  .max_hits = 1});
  ServiceReply reply =
      service
          .Submit(ServiceRequest{q.value(), MineOptions{}, Algorithm::kGm})
          .get();
  failpoint::DisarmAll();
  EXPECT_EQ(reply.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.stats().shed, 1u);

  // The storm has passed: the service serves normally again.
  reply = service
              .Submit(ServiceRequest{q.value(), MineOptions{}, Algorithm::kGm})
              .get();
  EXPECT_TRUE(reply.status.ok()) << reply.status.ToString();
}

TEST(ServiceTest, ConcurrentEngineMineIsSafe) {
  // The engine-level satellite: direct concurrent Mine() calls (no service
  // in front) against the lazy word-list build path.
  MiningEngine engine = testing::MakeSmallEngine(300);
  MiningEngine reference = testing::MakeSmallEngine(300);
  std::vector<Query> workload = MakeWorkload(reference);
  ASSERT_GE(workload.size(), 3u);

  std::vector<MineResult> expected;
  for (const Query& q : workload) {
    expected.push_back(reference.Mine(q, Algorithm::kNra));
  }

  constexpr int kThreads = 4;
  std::vector<std::vector<MineResult>> got(kThreads);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&engine, &workload, &got, t] {
        for (const Query& q : workload) {
          got[t].push_back(engine.Mine(q, Algorithm::kNra));
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < workload.size(); ++i) {
      ExpectSameResults(expected[i], got[t][i],
                        "thread " + std::to_string(t));
    }
  }
}

}  // namespace
}  // namespace phrasemine
