// MiningEngine facade behaviour: lazy structures, word-list lifecycle,
// snapshot persistence, and end-to-end agreement after a save/load cycle.

#include <cstdio>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace phrasemine {
namespace {

TEST(EngineTest, BuildPopulatesAllEagerStructures) {
  MiningEngine engine = testing::MakeTinyEngine();
  EXPECT_GT(engine.dict().size(), 0u);
  EXPECT_EQ(engine.corpus().size(), 8u);
  EXPECT_EQ(engine.forward().num_docs(), 8u);
  EXPECT_EQ(engine.forward_compressed().storage(),
            ForwardStorage::kPrefixCompressed);
  EXPECT_EQ(engine.phrase_file().num_phrases(), engine.dict().size());
  EXPECT_EQ(engine.word_lists().num_terms(), 0u);  // Lazy.
}

TEST(EngineTest, ParseQueryUsesCorpusVocabulary) {
  MiningEngine engine = testing::MakeTinyEngine();
  EXPECT_TRUE(engine.ParseQuery("query db", QueryOperator::kAnd).ok());
  EXPECT_FALSE(engine.ParseQuery("nonexistentword", QueryOperator::kOr).ok());
}

TEST(EngineTest, MineBuildsWordListsOnDemand) {
  MiningEngine engine = testing::MakeTinyEngine();
  auto q = engine.ParseQuery("query optimization", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(engine.word_lists().num_terms(), 0u);
  (void)engine.Mine(q.value(), Algorithm::kSmj);
  EXPECT_EQ(engine.word_lists().num_terms(), 2u);
  // A second query extends rather than rebuilds.
  auto q2 = engine.ParseQuery("kernel", QueryOperator::kAnd);
  ASSERT_TRUE(q2.ok());
  (void)engine.Mine(q2.value(), Algorithm::kNra);
  EXPECT_EQ(engine.word_lists().num_terms(), 3u);
}

TEST(EngineTest, SetSmjFractionRebuildsIdLists) {
  MiningEngine engine = testing::MakeTinyEngine();
  auto q = engine.ParseQuery("db", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  engine.SetSmjFraction(1.0);
  MineResult full = engine.Mine(q.value(), Algorithm::kSmj);
  engine.SetSmjFraction(0.1);
  MineResult small = engine.Mine(q.value(), Algorithm::kSmj);
  EXPECT_DOUBLE_EQ(engine.smj_fraction(), 0.1);
  EXPECT_LE(small.entries_read, full.entries_read);
}

TEST(EngineTest, PhraseTextServedFromSlotFile) {
  MiningEngine engine = testing::MakeTinyEngine();
  for (PhraseId p = 0; p < engine.dict().size(); ++p) {
    EXPECT_EQ(engine.PhraseText(p),
              engine.dict().Text(p, engine.corpus().vocab()));
  }
}

TEST(EngineTest, AlgorithmNamesStable) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kExact), "Exact");
  EXPECT_STREQ(AlgorithmName(Algorithm::kGm), "GM");
  EXPECT_STREQ(AlgorithmName(Algorithm::kSimitsis), "Simitsis");
  EXPECT_STREQ(AlgorithmName(Algorithm::kNra), "NRA");
  EXPECT_STREQ(AlgorithmName(Algorithm::kNraDisk), "NRA-disk");
  EXPECT_STREQ(AlgorithmName(Algorithm::kSmj), "SMJ");
}

TEST(EngineTest, SnapshotRoundTripPreservesResults) {
  const std::string dir = ::testing::TempDir();
  MiningEngine original = testing::MakeTinyEngine();
  auto q = original.ParseQuery("query optimization", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  // Materialize word lists so the snapshot carries them.
  MineResult before = original.Mine(q.value(), Algorithm::kSmj);
  ASSERT_TRUE(original.SaveToDirectory(dir).ok());

  auto loaded = MiningEngine::LoadFromDirectory(dir);
  ASSERT_TRUE(loaded.ok());
  MiningEngine& engine = loaded.value();
  EXPECT_EQ(engine.corpus().size(), original.corpus().size());
  EXPECT_EQ(engine.dict().size(), original.dict().size());
  EXPECT_EQ(engine.word_lists().num_terms(),
            original.word_lists().num_terms());

  // Same query, same results, across all algorithms.
  auto q2 = engine.ParseQuery("query optimization", QueryOperator::kAnd);
  ASSERT_TRUE(q2.ok());
  for (Algorithm a : {Algorithm::kExact, Algorithm::kGm, Algorithm::kSmj,
                      Algorithm::kNra, Algorithm::kSimitsis}) {
    MineResult from_loaded = engine.Mine(q2.value(), a);
    MineResult from_original = original.Mine(q.value(), a);
    EXPECT_EQ(testing::Ids(from_loaded), testing::Ids(from_original))
        << AlgorithmName(a);
  }
  std::remove((dir + "/engine.pmidx").c_str());
}

TEST(EngineTest, LoadMissingSnapshotFails) {
  auto loaded = MiningEngine::LoadFromDirectory("/nonexistent/dir");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(EngineTest, LoadRejectsGarbageFile) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/engine.pmidx";
  {
    BinaryWriter w;
    w.PutU32(0xDEADBEEF);  // wrong magic
    for (int i = 0; i < 60; ++i) w.PutU8(0);  // past the minimum file size
    ASSERT_TRUE(w.WriteToFile(path).ok());
  }
  auto loaded = MiningEngine::LoadFromDirectory(dir);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(EngineTest, LoadRejectsWrongVersion) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/engine.pmidx";
  {
    BinaryWriter w;
    w.PutU32(kIndexFileMagic);
    w.PutU32(999);  // unsupported version
    for (int i = 0; i < 60; ++i) w.PutU8(0);
    ASSERT_TRUE(w.WriteToFile(path).ok());
  }
  auto loaded = MiningEngine::LoadFromDirectory(dir);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(EngineTest, TruncatedSnapshotFailsCleanly) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/engine.pmidx";
  MiningEngine original = testing::MakeTinyEngine();
  ASSERT_TRUE(original.SaveToDirectory(dir).ok());
  // Truncate the snapshot to its first half and expect a clean error.
  auto reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  const std::size_t full = reader.value().Remaining();
  {
    std::vector<uint8_t> half(full / 2);
    ASSERT_TRUE(reader.value().GetRaw(half.data(), half.size()).ok());
    BinaryWriter w;
    w.PutRaw(half.data(), half.size());
    ASSERT_TRUE(w.WriteToFile(path).ok());
  }
  auto loaded = MiningEngine::LoadFromDirectory(dir);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(EngineTest, NraDiskReportsDiskCost) {
  MiningEngine engine = testing::MakeSmallEngine(200);
  auto queries = engine.ParseQuery("topic:0", QueryOperator::kAnd);
  ASSERT_TRUE(queries.ok());
  MineResult r = engine.Mine(queries.value(), Algorithm::kNraDisk);
  EXPECT_GT(r.disk_ms, 0.0);
  EXPECT_GT(r.TotalMs(), r.compute_ms);
  // In-memory runs report no disk cost.
  MineResult mem = engine.Mine(queries.value(), Algorithm::kNra);
  EXPECT_DOUBLE_EQ(mem.disk_ms, 0.0);
}

}  // namespace
}  // namespace phrasemine
