// Differential proof-by-replay for the subscription subsystem
// (src/subscribe/): after EVERY randomized update batch, each standing
// query's incrementally maintained top-k must be bitwise identical --
// same phrases, same scores, same order -- to a fresh SMJ re-mine at the
// same epoch. The replay runs hundreds of batches over both a monolithic
// engine and a multi-shard fleet, with rebuilds interleaved, so the
// shadow-set/bound invariant and the epoch-vector contiguity guard are
// exercised across every maintenance path (incremental merge, scoped
// re-mine fallback, rebuild invalidation).
//
// The targeted property tests at the bottom pin the adversarial churn
// cases the randomized replay covers only statistically: a phrase whose
// support enters and leaves within one batch, score ties exactly at the
// k-th floor, and deletes resurrecting a phrase the shadow set had
// evicted.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "shard/sharded_engine.h"
#include "subscribe/subscription_manager.h"
#include "test_util.h"

namespace phrasemine {
namespace {

using phrasemine::testing::MakeSmallSyntheticCorpus;

/// One registered standing query plus the parsed form used for the
/// reference mines (TermIds survive rebuilds; PhraseIds do not, which is
/// exactly why the comparison re-mines instead of caching).
struct RegisteredSub {
  uint64_t id = 0;
  Query query;
  std::size_t k = 0;
  OrExpansionOrder or_order = OrExpansionOrder::kFirstOrder;
};

/// Frequent corpus terms make good subscription terms and good update
/// tokens: their word lists are non-trivial, so batches actually move
/// phrase statistics instead of touching df-0 ghosts.
std::vector<std::string> FrequentTerms(const Corpus& corpus,
                                       std::size_t count) {
  std::vector<uint64_t> freq(corpus.vocab().size(), 0);
  for (std::size_t d = 0; d < corpus.size(); ++d) {
    for (TermId t : corpus.doc(static_cast<DocId>(d)).tokens) {
      if (t < freq.size()) ++freq[t];
    }
  }
  std::vector<TermId> order(freq.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<TermId>(i);
  }
  std::sort(order.begin(), order.end(),
            [&](TermId a, TermId b) { return freq[a] > freq[b]; });
  std::vector<std::string> out;
  // Skip the most frequent few: those are the generator's stopwords and
  // their phrases saturate instead of churning.
  for (std::size_t i = 5; i < order.size() && out.size() < count; ++i) {
    out.push_back(corpus.vocab().TermText(order[i]));
  }
  return out;
}

/// A random update document: a token run copied from an existing document
/// (so it re-uses known terms and known phrase shapes), with a sprinkle of
/// extra occurrences of the subscribed terms to push their lists around.
UpdateDoc RandomDoc(const Corpus& corpus,
                    const std::vector<std::string>& hot_terms,
                    std::mt19937* rng) {
  std::uniform_int_distribution<std::size_t> pick_doc(0, corpus.size() - 1);
  const Document& doc = corpus.doc(static_cast<DocId>(pick_doc(*rng)));
  UpdateDoc out;
  if (!doc.tokens.empty()) {
    std::uniform_int_distribution<std::size_t> pick_off(0,
                                                        doc.tokens.size() - 1);
    const std::size_t offset = pick_off(*rng);
    const std::size_t len =
        std::min<std::size_t>(10 + (*rng)() % 30, doc.tokens.size() - offset);
    out.tokens.reserve(len + 4);
    for (std::size_t i = 0; i < len; ++i) {
      out.tokens.push_back(corpus.vocab().TermText(doc.tokens[offset + i]));
    }
  }
  std::uniform_int_distribution<std::size_t> pick_term(0, hot_terms.size() - 1);
  for (int i = 0; i < 3; ++i) {
    out.tokens.push_back(hot_terms[pick_term(*rng)]);
  }
  return out;
}

/// Replay harness shared by the monolith and sharded differential tests:
/// the callbacks are the only path-specific pieces (apply one batch,
/// rebuild, run the reference mine at the current epoch).
template <typename ApplyFn, typename RebuildFn, typename MineFn>
void ReplayAndCompare(SubscriptionManager* manager,
                      const std::vector<RegisteredSub>& subs,
                      const Corpus& corpus, std::size_t num_batches,
                      std::size_t rebuild_every, ApplyFn apply,
                      RebuildFn rebuild, MineFn mine) {
  std::mt19937 rng(20260808);
  const std::vector<std::string> hot_terms = FrequentTerms(corpus, 12);
  ASSERT_FALSE(hot_terms.empty());
  std::size_t live_docs = corpus.size();

  // The bootstrap publishes must land before the first comparison.
  manager->Flush();

  for (std::size_t batch_no = 0; batch_no < num_batches; ++batch_no) {
    UpdateBatch batch;
    const std::size_t num_inserts = rng() % 4;
    for (std::size_t i = 0; i < num_inserts; ++i) {
      batch.inserts.push_back(RandomDoc(corpus, hot_terms, &rng));
    }
    const std::size_t num_deletes = rng() % 3;
    for (std::size_t i = 0; i < num_deletes && live_docs > 0; ++i) {
      batch.deletes.push_back(static_cast<DocId>(rng() % live_docs));
    }
    apply(batch);
    live_docs += batch.inserts.size();  // deletes keep ids addressable

    if (rebuild_every > 0 && (batch_no + 1) % rebuild_every == 0) {
      rebuild();
      live_docs = 0;  // numbering compacted; re-learn below
    }
    if (live_docs == 0) live_docs = corpus.size();

    manager->Flush();
    for (const RegisteredSub& sub : subs) {
      auto snapshot = manager->Snapshot(sub.id);
      ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
      EXPECT_TRUE(snapshot.value().exact)
          << "batch " << batch_no << ": exact subscription published an "
          << "approximate state";

      MineResult fresh = mine(sub);
      ASSERT_TRUE(fresh.status.ok()) << fresh.status.ToString();
      EXPECT_EQ(snapshot.value().epoch, fresh.epoch)
          << "batch " << batch_no << ": subscription lags the engine";

      const std::vector<MinedPhrase>& got = snapshot.value().topk;
      ASSERT_EQ(got.size(), fresh.phrases.size())
          << "batch " << batch_no << " subscription " << sub.id;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].phrase, fresh.phrases[i].phrase)
            << "batch " << batch_no << " rank " << i;
        // Bitwise: the incremental rescore uses the engine's own
        // delta-adjustment arithmetic, so not even a ULP may differ.
        EXPECT_EQ(got[i].score, fresh.phrases[i].score)
            << "batch " << batch_no << " rank " << i;
        EXPECT_EQ(got[i].interestingness, fresh.phrases[i].interestingness)
            << "batch " << batch_no << " rank " << i;
      }
    }
  }
}

/// Registers a mixed bag of standing queries over the hot terms: AND and
/// OR, small and larger k, so floors sit at different depths.
std::vector<RegisteredSub> RegisterSubs(
    SubscriptionManager* manager, const Corpus& corpus,
    const std::function<Result<Query>(const std::string&, QueryOperator)>&
        parse) {
  const std::vector<std::string> hot = FrequentTerms(corpus, 6);
  struct Spec {
    std::vector<std::size_t> term_idx;
    QueryOperator op;
    std::size_t k;
  };
  const std::vector<Spec> specs = {
      {{0}, QueryOperator::kAnd, 5},
      {{1, 2}, QueryOperator::kAnd, 3},
      {{0, 3}, QueryOperator::kOr, 8},
  };
  std::vector<RegisteredSub> subs;
  for (const Spec& spec : specs) {
    SubscriptionRequest request;
    for (std::size_t idx : spec.term_idx) {
      request.terms.push_back(hot[idx]);
    }
    // Compare against the canonical (sorted-term) query: Subscribe sorts
    // terms like PhraseService does, and log-sum scoring is sensitive to
    // term order at the ulp level.
    std::vector<std::string> sorted_terms = request.terms;
    std::sort(sorted_terms.begin(), sorted_terms.end());
    std::string text;
    for (const std::string& term : sorted_terms) {
      if (!text.empty()) text += ' ';
      text += term;
    }
    request.op = spec.op;
    request.k = spec.k;
    auto id = manager->Subscribe(request);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    if (!id.ok()) continue;
    auto query = parse(text, spec.op);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    if (!query.ok()) continue;
    subs.push_back(RegisteredSub{id.value(), std::move(query).value(), spec.k,
                                 OrExpansionOrder::kFirstOrder});
  }
  return subs;
}

TEST(SubscriptionDifferentialTest, MonolithReplayMatchesFreshMine) {
  MiningEngine engine = MiningEngine::Build(MakeSmallSyntheticCorpus(300), [] {
    MiningEngine::Options options;
    options.extractor.min_df = 5;
    return options;
  }());
  MetricsRegistry registry;
  SubscriptionManagerOptions options;
  options.metrics = &registry;
  SubscriptionManager manager(&engine, options);

  const Corpus& corpus = engine.corpus();
  std::vector<RegisteredSub> subs = RegisterSubs(
      &manager, corpus, [&](const std::string& text, QueryOperator op) {
        return engine.ParseQuery(text, op);
      });
  ASSERT_EQ(subs.size(), 3u);

  ReplayAndCompare(
      &manager, subs, corpus, /*num_batches=*/120, /*rebuild_every=*/40,
      [&](const UpdateBatch& batch) { engine.ApplyUpdate(batch); },
      [&] { engine.Rebuild(); },
      [&](const RegisteredSub& sub) {
        MineOptions mo;
        mo.k = sub.k;
        mo.or_order = sub.or_order;
        return engine.Mine(sub.query, Algorithm::kSmj, mo);
      });

  // The incremental path must carry real weight: if every batch fell back
  // to a re-mine, the subsystem would be a slow spelling of re-mining.
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_GT(snap.counter("subscribe_incremental_total"), 0u);
  EXPECT_EQ(snap.counter("subscribe_batches_total"), 123u);  // + 3 rebuilds
  EXPECT_LT(snap.counter("subscribe_remine_total"),
            snap.counter("subscribe_batches_total") * subs.size() / 2);
}

TEST(SubscriptionDifferentialTest, ShardedReplayMatchesFreshMine) {
  ShardedEngineOptions options;
  options.num_shards = 3;
  options.engine.extractor.min_df = 5;
  ShardedEngine sharded =
      ShardedEngine::Build(MakeSmallSyntheticCorpus(300), options);
  MetricsRegistry registry;
  SubscriptionManagerOptions sub_options;
  sub_options.metrics = &registry;
  SubscriptionManager manager(&sharded, sub_options);

  // The global vocabulary lives with shard 0's engine (every shard clones
  // the same frozen phrase set over the same term ids).
  const Corpus& corpus = sharded.shard(0).corpus();
  std::vector<RegisteredSub> subs = RegisterSubs(
      &manager, corpus, [&](const std::string& text, QueryOperator op) {
        return sharded.ParseQuery(text, op);
      });
  ASSERT_EQ(subs.size(), 3u);

  std::size_t next_rebuild_shard = 0;
  ReplayAndCompare(
      &manager, subs, corpus, /*num_batches=*/110, /*rebuild_every=*/35,
      [&](const UpdateBatch& batch) { sharded.ApplyUpdate(batch); },
      [&] {
        // Shard-by-shard blast radius, like PhraseService's auto-rebuild.
        sharded.RebuildShard(next_rebuild_shard % sharded.num_shards());
        ++next_rebuild_shard;
      },
      [&](const RegisteredSub& sub) {
        MineOptions mo;
        mo.k = sub.k;
        mo.or_order = sub.or_order;
        return sharded.Mine(sub.query, Algorithm::kSmj, mo).result;
      });

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_GT(snap.counter("subscribe_incremental_total"), 0u);
  EXPECT_LT(snap.counter("subscribe_remine_total"),
            snap.counter("subscribe_batches_total") * subs.size() / 2);
}

// --- Adversarial churn properties -------------------------------------------

/// Small controlled corpus: P(alpha|beta) and friends have headroom so
/// single-document churn moves ranks deterministically.
MiningEngine MakeChurnEngine() {
  Corpus corpus;
  corpus.AddTokenized({"alpha", "beta", "pad1"});
  corpus.AddTokenized({"alpha", "beta", "pad2"});
  corpus.AddTokenized({"beta", "gamma", "pad3"});
  corpus.AddTokenized({"beta", "gamma", "pad4"});
  corpus.AddTokenized({"beta", "delta", "pad5"});
  corpus.AddTokenized({"beta", "delta", "pad6"});
  MiningEngine::Options options;
  options.extractor.min_df = 1;
  options.extractor.max_phrase_len = 2;
  return MiningEngine::Build(std::move(corpus), options);
}

/// Asserts the subscription equals a fresh mine right now.
void ExpectMatchesFresh(SubscriptionManager* manager, MiningEngine* engine,
                        uint64_t id, const Query& query, std::size_t k) {
  manager->Flush();
  auto snapshot = manager->Snapshot(id);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(snapshot.value().exact);
  MineOptions mo;
  mo.k = k;
  MineResult fresh = engine->Mine(query, Algorithm::kSmj, mo);
  ASSERT_EQ(snapshot.value().topk.size(), fresh.phrases.size());
  for (std::size_t i = 0; i < fresh.phrases.size(); ++i) {
    EXPECT_EQ(snapshot.value().topk[i].phrase, fresh.phrases[i].phrase);
    EXPECT_EQ(snapshot.value().topk[i].score, fresh.phrases[i].score);
  }
}

TEST(SubscriptionChurnTest, EnterAndLeaveWithinOneBatch) {
  MiningEngine engine = MakeChurnEngine();
  SubscriptionManager manager(&engine);
  SubscriptionRequest request;
  request.terms = {"beta"};
  request.k = 2;
  auto id = manager.Subscribe(request);
  ASSERT_TRUE(id.ok());
  Query query = engine.ParseQuery("beta", QueryOperator::kAnd).value();

  // One batch both inserts support for "epsilon beta" and deletes it
  // again (the insert lands at the next live id, which the same batch
  // deletes), plus removes one "alpha beta" support. The net effect on
  // epsilon is zero -- it must neither enter nor linger -- while alpha's
  // score genuinely moves.
  const DocId inserted = static_cast<DocId>(engine.corpus().size());
  UpdateBatch batch;
  batch.inserts.push_back(UpdateDoc{{"epsilon", "beta", "pad7"}, {}});
  batch.deletes.push_back(inserted);
  batch.deletes.push_back(0);  // one "alpha beta" support
  engine.ApplyUpdate(batch);
  ExpectMatchesFresh(&manager, &engine, id.value(), query, request.k);

  // And the mirrored case across two batches: enter, then leave.
  UpdateBatch enter;
  enter.inserts.push_back(UpdateDoc{{"alpha", "beta", "pad8"}, {}});
  engine.ApplyUpdate(enter);
  ExpectMatchesFresh(&manager, &engine, id.value(), query, request.k);
  UpdateBatch leave;
  leave.deletes.push_back(static_cast<DocId>(engine.corpus().size()) + 1);
  engine.ApplyUpdate(leave);
  ExpectMatchesFresh(&manager, &engine, id.value(), query, request.k);
}

TEST(SubscriptionChurnTest, TiesAtTheKthFloorBreakByPhraseId) {
  // alpha/gamma/delta all pair with beta at identical probabilities
  // (2 supports each over df(beta-ish phrases)), so ranks at the floor are
  // decided purely by the PhraseId tie-break. The replay must keep the
  // subscription's tie order identical to the miner's through churn that
  // repeatedly re-creates the tie.
  MiningEngine engine = MakeChurnEngine();
  SubscriptionManager manager(&engine);
  SubscriptionRequest request;
  request.terms = {"beta"};
  request.k = 2;  // the floor cuts through the tied group
  auto id = manager.Subscribe(request);
  ASSERT_TRUE(id.ok());
  Query query = engine.ParseQuery("beta", QueryOperator::kAnd).value();
  ExpectMatchesFresh(&manager, &engine, id.value(), query, request.k);

  // Break the tie, then restore it: both transitions must publish states
  // equal to the fresh mine, including the restored tie's id order.
  UpdateBatch boost;
  boost.inserts.push_back(UpdateDoc{{"gamma", "beta", "pad9"}, {}});
  engine.ApplyUpdate(boost);
  ExpectMatchesFresh(&manager, &engine, id.value(), query, request.k);

  UpdateBatch restore;
  restore.deletes.push_back(static_cast<DocId>(engine.corpus().size()));
  engine.ApplyUpdate(restore);
  ExpectMatchesFresh(&manager, &engine, id.value(), query, request.k);
}

TEST(SubscriptionChurnTest, DeletesResurrectEvictedPhrases) {
  // shadow_pad = 1 keeps the shadow set tight (k + 1), so pushing a
  // phrase's score down evicts it from the shadow entirely. When deletes
  // later lift it back above the floor, the bound must flag the step
  // inconclusive and the re-mine fallback must resurrect it -- silently
  // losing the phrase is the classic incremental-top-k bug.
  MiningEngine engine = MakeChurnEngine();
  MetricsRegistry registry;
  SubscriptionManagerOptions options;
  options.shadow_pad = 1;
  options.metrics = &registry;
  SubscriptionManager manager(&engine, options);
  SubscriptionRequest request;
  request.terms = {"beta"};
  request.k = 1;
  auto id = manager.Subscribe(request);
  ASSERT_TRUE(id.ok());
  Query query = engine.ParseQuery("beta", QueryOperator::kAnd).value();
  ExpectMatchesFresh(&manager, &engine, id.value(), query, request.k);

  // Sink "alpha beta": three extra beta-only docs dilute it three ranks
  // deep, past the k_shadow = 2 cap.
  UpdateBatch sink;
  sink.inserts.push_back(UpdateDoc{{"gamma", "beta", "padA"}, {}});
  sink.inserts.push_back(UpdateDoc{{"delta", "beta", "padB"}, {}});
  sink.deletes.push_back(0);  // drop one alpha support
  engine.ApplyUpdate(sink);
  ExpectMatchesFresh(&manager, &engine, id.value(), query, request.k);

  // Resurrect it: delete the boosting docs and restore alpha's support.
  const DocId base = static_cast<DocId>(engine.corpus().size());
  UpdateBatch lift;
  lift.deletes.push_back(base);      // the gamma boost
  lift.deletes.push_back(base + 1);  // the delta boost
  lift.inserts.push_back(UpdateDoc{{"alpha", "beta", "padC"}, {}});
  lift.inserts.push_back(UpdateDoc{{"alpha", "beta", "padD"}, {}});
  engine.ApplyUpdate(lift);
  ExpectMatchesFresh(&manager, &engine, id.value(), query, request.k);
}

TEST(SubscriptionDifferentialTest, BestEffortFlagsApproximatePublishes) {
  // A best-effort subscription with a starved shadow (pad 1) publishes
  // through inconclusive bounds instead of re-mining. The flag must tell
  // the truth: once `exact` reads true again the state must equal the
  // fresh mine, and approximate states may only under-report (every
  // published phrase is real with its exact score; the recall bound is
  // documented in docs/subscriptions.md).
  MiningEngine engine = MakeChurnEngine();
  MetricsRegistry registry;
  SubscriptionManagerOptions options;
  options.shadow_pad = 1;
  options.metrics = &registry;
  SubscriptionManager manager(&engine, options);
  SubscriptionRequest request;
  request.terms = {"beta"};
  request.k = 2;
  request.exact = false;
  auto id = manager.Subscribe(request);
  ASSERT_TRUE(id.ok());
  Query query = engine.ParseQuery("beta", QueryOperator::kAnd).value();

  std::mt19937 rng(7);
  const std::vector<std::string> pool = {"alpha", "gamma", "delta", "beta"};
  std::size_t live = engine.corpus().size();
  for (int i = 0; i < 30; ++i) {
    UpdateBatch batch;
    batch.inserts.push_back(
        UpdateDoc{{pool[rng() % pool.size()], "beta", "padX"}, {}});
    if (rng() % 2 == 0) batch.deletes.push_back(static_cast<DocId>(rng() % live));
    engine.ApplyUpdate(batch);
    ++live;
    manager.Flush();

    auto snapshot = manager.Snapshot(id.value());
    ASSERT_TRUE(snapshot.ok());
    MineOptions mo;
    mo.k = request.k;
    MineResult fresh = engine.Mine(query, Algorithm::kSmj, mo);
    if (snapshot.value().exact) {
      ASSERT_EQ(snapshot.value().topk.size(), fresh.phrases.size());
      for (std::size_t r = 0; r < fresh.phrases.size(); ++r) {
        EXPECT_EQ(snapshot.value().topk[r].phrase, fresh.phrases[r].phrase);
        EXPECT_EQ(snapshot.value().topk[r].score, fresh.phrases[r].score);
      }
    } else {
      // Approximate: scores of reported phrases are still exact.
      for (const MinedPhrase& got : snapshot.value().topk) {
        for (const MinedPhrase& want : fresh.phrases) {
          if (got.phrase == want.phrase) {
            EXPECT_EQ(got.score, want.score);
          }
        }
      }
    }
  }
  // A best-effort subscription never pays for fallback mines.
  EXPECT_EQ(registry.Snapshot().counter("subscribe_remine_total"), 0u);
}

}  // namespace
}  // namespace phrasemine
