#include "shard/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/disk_lists.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "eval/query_gen.h"
#include "test_util.h"

namespace phrasemine {
namespace {

using testing::MakeSmallSyntheticCorpus;
using testing::MakeTinyCorpus;

MiningEngineOptions EngineOptions(uint32_t min_df) {
  MiningEngineOptions options;
  options.extractor.min_df = min_df;
  return options;
}

ShardedEngine BuildSharded(Corpus corpus, std::size_t num_shards,
                           uint32_t min_df,
                           ShardedEngineOptions extra = {}) {
  ShardedEngineOptions options = std::move(extra);
  options.num_shards = num_shards;
  options.engine = EngineOptions(min_df);
  return ShardedEngine::Build(std::move(corpus), std::move(options));
}

/// Harvests a deterministic differential workload from the monolithic
/// engine (term ids are portable: every shard vocabulary is a copy of the
/// corpus vocabulary the monolithic engine holds too).
std::vector<Query> HarvestQueries(const MiningEngine& mono,
                                  std::size_t count) {
  QueryGenOptions options;
  options.num_queries = count;
  options.min_term_df = 8;
  options.min_pairwise_codf = 3;
  options.min_and_matches = 3;
  return QuerySetGenerator(options).Generate(mono.dict(), mono.inverted(),
                                             mono.corpus().size());
}

/// Asserts the sharded top-k equals the monolithic top-k: identical score
/// sequence, and identical phrase sets within every equal-score group.
/// The two sides break exact ties differently (the monolithic collector
/// prefers smaller shard-local PhraseIds, which do not exist globally;
/// the merge orders ties by text), so a tie group that straddles the
/// k-boundary is compared as a subset of the monolithic group instead.
void ExpectEquivalentTopK(MiningEngine& mono, ShardedEngine& sharded,
                          const Query& query, Algorithm algorithm,
                          const MineOptions& options) {
  MineOptions extended = options;
  extended.k = options.k + 200;  // headroom so boundary tie groups resolve
  const MineResult mono_ext = mono.Mine(query, algorithm, extended);
  const ShardedMineResult merged = sharded.Mine(query, algorithm, options);

  const std::size_t expect =
      std::min(options.k, mono_ext.phrases.size());
  ASSERT_EQ(merged.result.phrases.size(), expect);
  ASSERT_EQ(merged.texts.size(), expect);
  if (expect == 0) return;

  for (std::size_t i = 0; i < expect; ++i) {
    EXPECT_EQ(merged.result.phrases[i].score, mono_ext.phrases[i].score)
        << "rank " << i << ": sharded \"" << merged.texts[i]
        << "\" vs mono \"" << mono.PhraseText(mono_ext.phrases[i].phrase)
        << "\"";
  }

  std::map<double, std::multiset<std::string>> mono_groups;
  for (const MinedPhrase& p : mono_ext.phrases) {
    mono_groups[p.score].insert(mono.PhraseText(p.phrase));
  }
  std::map<double, std::multiset<std::string>> merged_groups;
  for (std::size_t i = 0; i < expect; ++i) {
    merged_groups[merged.result.phrases[i].score].insert(merged.texts[i]);
  }
  const double boundary = merged.result.phrases.back().score;
  for (const auto& [score, texts] : merged_groups) {
    const auto it = mono_groups.find(score);
    ASSERT_NE(it, mono_groups.end()) << "score " << score;
    if (score == boundary) {
      // The k-cut may split this group differently on the two sides.
      for (const std::string& text : texts) {
        EXPECT_TRUE(it->second.contains(text))
            << "boundary phrase \"" << text << "\" not in mono group";
      }
    } else {
      EXPECT_EQ(texts, it->second) << "at score " << score;
    }
  }
}

// --- Differential: merged Exact/SMJ == monolithic, randomized corpora -------

TEST(ShardedEngineTest, DifferentialExactAndSmjMatchMonolith) {
  for (const std::size_t num_docs : {400u, 900u}) {
    MiningEngine mono =
        MiningEngine::Build(MakeSmallSyntheticCorpus(num_docs),
                            EngineOptions(/*min_df=*/3));
    ShardedEngine sharded =
        BuildSharded(MakeSmallSyntheticCorpus(num_docs), /*num_shards=*/4,
                     /*min_df=*/3);
    const std::vector<Query> queries = HarvestQueries(mono, 10);
    ASSERT_FALSE(queries.empty());
    for (const Algorithm algorithm : {Algorithm::kExact, Algorithm::kSmj}) {
      for (const Query& base : queries) {
        for (const QueryOperator op :
             {QueryOperator::kAnd, QueryOperator::kOr}) {
          Query query = base;
          query.op = op;
          ExpectEquivalentTopK(mono, sharded, query, algorithm,
                               MineOptions{.k = 5});
        }
      }
    }
  }
}

// --- Threshold exchange ------------------------------------------------------

/// The exchange must be a pure fill-work optimization: ranked output
/// bitwise identical with the round on and off (and hence still identical
/// to the monolithic engine, which the differential test above already
/// pins), while at 4 shards it actually prunes candidates and saves fill
/// slots somewhere in the workload.
TEST(ShardedEngineTest, ThresholdExchangePreservesResultsAndPrunesFill) {
  MiningEngine mono =
      MiningEngine::Build(MakeSmallSyntheticCorpus(900),
                          EngineOptions(/*min_df=*/3));
  ShardedEngine sharded =
      BuildSharded(MakeSmallSyntheticCorpus(900), /*num_shards=*/4,
                   /*min_df=*/3);
  const std::vector<Query> queries = HarvestQueries(mono, 8);
  ASSERT_FALSE(queries.empty());

  uint64_t total_pruned = 0;
  std::size_t slots_on = 0;
  std::size_t slots_off = 0;
  for (const Algorithm algorithm : {Algorithm::kExact, Algorithm::kSmj}) {
    for (const Query& base : queries) {
      for (const QueryOperator op :
           {QueryOperator::kAnd, QueryOperator::kOr}) {
        Query query = base;
        query.op = op;
        sharded.SetThresholdExchange(false);
        const ShardedMineResult off =
            sharded.Mine(query, algorithm, MineOptions{.k = 5});
        EXPECT_EQ(off.result.candidates_pruned, 0u);
        sharded.SetThresholdExchange(true);
        const ShardedMineResult on =
            sharded.Mine(query, algorithm, MineOptions{.k = 5});

        ASSERT_EQ(on.result.phrases.size(), off.result.phrases.size());
        for (std::size_t i = 0; i < on.result.phrases.size(); ++i) {
          EXPECT_EQ(on.result.phrases[i].phrase, off.result.phrases[i].phrase);
          EXPECT_EQ(on.result.phrases[i].score, off.result.phrases[i].score);
        }
        EXPECT_EQ(on.candidates, off.candidates);
        EXPECT_LE(on.fill_slots, off.fill_slots);
        total_pruned += on.result.candidates_pruned;
        slots_on += on.fill_slots;
        slots_off += off.fill_slots;
      }
    }
  }
  // The workload as a whole must show real pruning (AND queries drop
  // cross-shard-only candidates; fully-reported floors prune the rest).
  EXPECT_GT(total_pruned, 0u);
  EXPECT_LT(slots_on, slots_off);
}

/// Same invariant under a pending delta overlay: the exchange reads the
/// delta-corrected scatter supports, so the on/off results must stay
/// identical after updates too.
TEST(ShardedEngineTest, ThresholdExchangeExactUnderDelta) {
  MiningEngine mono =
      MiningEngine::Build(MakeSmallSyntheticCorpus(500),
                          EngineOptions(/*min_df=*/3));
  ShardedEngine sharded =
      BuildSharded(MakeSmallSyntheticCorpus(500), /*num_shards=*/4,
                   /*min_df=*/3);
  const std::vector<Query> queries = HarvestQueries(mono, 5);
  ASSERT_FALSE(queries.empty());

  UpdateBatch batch;
  for (DocId d = 0; d < 20; ++d) {
    UpdateDoc doc;
    const Document& src = sharded.shard(0).corpus().doc(
        d % sharded.shard(0).corpus().size());
    for (TermId t : src.tokens) {
      doc.tokens.push_back(
          std::string(sharded.shard(0).corpus().vocab().TermText(t)));
    }
    batch.inserts.push_back(std::move(doc));
  }
  batch.deletes = {2, 4};
  (void)sharded.ApplyUpdate(batch);

  for (const Query& base : queries) {
    for (const QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
      Query query = base;
      query.op = op;
      sharded.SetThresholdExchange(false);
      const ShardedMineResult off =
          sharded.Mine(query, Algorithm::kSmj, MineOptions{.k = 5});
      sharded.SetThresholdExchange(true);
      const ShardedMineResult on =
          sharded.Mine(query, Algorithm::kSmj, MineOptions{.k = 5});
      EXPECT_EQ(on.result.guarantee, UpdateGuarantee::kExactUnderDelta);
      ASSERT_EQ(on.result.phrases.size(), off.result.phrases.size());
      for (std::size_t i = 0; i < on.result.phrases.size(); ++i) {
        EXPECT_EQ(on.result.phrases[i].phrase, off.result.phrases[i].phrase);
        EXPECT_EQ(on.result.phrases[i].score, off.result.phrases[i].score);
      }
    }
  }
}

// --- Scatter-gather edge cases ----------------------------------------------

TEST(ShardedEngineTest, EmptyShardsAreHarmless) {
  // Everything lands in shard 0; shards 1..3 stay completely empty.
  ShardedEngineOptions extra;
  extra.partitioner = [](DocId, std::size_t) { return 0u; };
  MiningEngine mono =
      MiningEngine::Build(MakeTinyCorpus(), EngineOptions(/*min_df=*/2));
  ShardedEngine sharded =
      BuildSharded(MakeTinyCorpus(), /*num_shards=*/4, /*min_df=*/2,
                   std::move(extra));

  const Query query = mono.ParseQuery("query optimization",
                                      QueryOperator::kAnd).value();
  ExpectEquivalentTopK(mono, sharded, query, Algorithm::kExact,
                       MineOptions{.k = 5});
  ExpectEquivalentTopK(mono, sharded, query, Algorithm::kSmj,
                       MineOptions{.k = 5});
  // The approximate paths must tolerate empty shards too.
  const ShardedMineResult nra =
      sharded.Mine(query, Algorithm::kNra, MineOptions{.k = 5});
  EXPECT_FALSE(nra.exact_merge);
  EXPECT_FALSE(nra.result.phrases.empty());
}

TEST(ShardedEngineTest, KLargerThanTotalResults) {
  MiningEngine mono =
      MiningEngine::Build(MakeTinyCorpus(), EngineOptions(/*min_df=*/2));
  ShardedEngine sharded =
      BuildSharded(MakeTinyCorpus(), /*num_shards=*/4, /*min_df=*/2);
  const Query query = mono.ParseQuery("query optimization",
                                      QueryOperator::kAnd).value();
  const MineOptions options{.k = 500};
  const MineResult mono_result = mono.Mine(query, Algorithm::kExact, options);
  const ShardedMineResult merged =
      sharded.Mine(query, Algorithm::kExact, options);
  // Fewer qualifying phrases than k: both sides return everything.
  EXPECT_LT(mono_result.phrases.size(), options.k);
  EXPECT_EQ(merged.result.phrases.size(), mono_result.phrases.size());
  ExpectEquivalentTopK(mono, sharded, query, Algorithm::kExact, options);
}

TEST(ShardedEngineTest, AllResultsInOneShard) {
  // The matching documents (0..3 carry "query optimization") all land in
  // shard 2; the other shards only contribute global df denominators.
  ShardedEngineOptions extra;
  extra.partitioner = [](DocId g, std::size_t n) {
    return g < 4 ? 2u : static_cast<uint32_t>(g % n);
  };
  MiningEngine mono =
      MiningEngine::Build(MakeTinyCorpus(), EngineOptions(/*min_df=*/2));
  ShardedEngine sharded =
      BuildSharded(MakeTinyCorpus(), /*num_shards=*/4, /*min_df=*/2,
                   std::move(extra));
  const Query query = mono.ParseQuery("query optimization",
                                      QueryOperator::kAnd).value();
  ExpectEquivalentTopK(mono, sharded, query, Algorithm::kExact,
                       MineOptions{.k = 8});
  ExpectEquivalentTopK(mono, sharded, query, Algorithm::kSmj,
                       MineOptions{.k = 8});
}

TEST(ShardedEngineTest, TieBreakDeterministicAcrossShardCounts) {
  // The exhaustive merge recomputes global supports, so the merged output
  // must be a pure function of the corpus -- identical across shard
  // counts and across repeated runs (ties ordered by text).
  MiningEngine mono =
      MiningEngine::Build(MakeSmallSyntheticCorpus(500),
                          EngineOptions(/*min_df=*/3));
  ShardedEngine two =
      BuildSharded(MakeSmallSyntheticCorpus(500), /*num_shards=*/2,
                   /*min_df=*/3);
  ShardedEngine four =
      BuildSharded(MakeSmallSyntheticCorpus(500), /*num_shards=*/4,
                   /*min_df=*/3);
  const std::vector<Query> queries = HarvestQueries(mono, 6);
  ASSERT_FALSE(queries.empty());
  for (const Query& query : queries) {
    for (const Algorithm algorithm : {Algorithm::kExact, Algorithm::kSmj}) {
      const ShardedMineResult a =
          two.Mine(query, algorithm, MineOptions{.k = 5});
      const ShardedMineResult b =
          four.Mine(query, algorithm, MineOptions{.k = 5});
      const ShardedMineResult c =
          four.Mine(query, algorithm, MineOptions{.k = 5});
      EXPECT_EQ(a.texts, b.texts);
      EXPECT_EQ(b.texts, c.texts);
      ASSERT_EQ(a.result.phrases.size(), b.result.phrases.size());
      for (std::size_t i = 0; i < a.result.phrases.size(); ++i) {
        EXPECT_EQ(a.result.phrases[i].score, b.result.phrases[i].score);
      }
    }
  }
}

// --- Approximate paths: bounded recall, exact scores ------------------------

TEST(ShardedEngineTest, TopKPathsReportExactGlobalScores) {
  MiningEngine mono =
      MiningEngine::Build(MakeSmallSyntheticCorpus(500),
                          EngineOptions(/*min_df=*/3));
  ShardedEngine sharded =
      BuildSharded(MakeSmallSyntheticCorpus(500), /*num_shards=*/4,
                   /*min_df=*/3);
  const std::vector<Query> queries = HarvestQueries(mono, 6);
  ASSERT_FALSE(queries.empty());
  for (const Query& query : queries) {
    // Ground truth: every phrase's exact global count-based score. Texts
    // come from the fixed-slot phrase file, so two long phrases can
    // render identically -- the truth maps therefore hold score *sets*.
    const MineResult exact =
        mono.Mine(query, Algorithm::kExact, MineOptions{.k = 100000});
    std::map<std::string, std::set<double>> truth;
    for (const MinedPhrase& p : exact.phrases) {
      truth[mono.PhraseText(p.phrase)].insert(p.score);
    }
    const ShardedMineResult gm =
        sharded.Mine(query, Algorithm::kGm, MineOptions{.k = 5});
    EXPECT_FALSE(gm.exact_merge);
    for (std::size_t i = 0; i < gm.texts.size(); ++i) {
      const auto it = truth.find(gm.texts[i]);
      ASSERT_NE(it, truth.end()) << gm.texts[i];
      EXPECT_TRUE(it->second.contains(gm.result.phrases[i].score))
          << gm.texts[i];
    }

    // List path: NRA candidates carry the exact merged list score -- the
    // score exhaustive sharded SMJ computes for the same phrase.
    const ShardedMineResult smj_all =
        sharded.Mine(query, Algorithm::kSmj, MineOptions{.k = 100000});
    std::map<std::string, std::set<double>> list_truth;
    for (std::size_t i = 0; i < smj_all.texts.size(); ++i) {
      list_truth[smj_all.texts[i]].insert(smj_all.result.phrases[i].score);
    }
    const ShardedMineResult nra =
        sharded.Mine(query, Algorithm::kNra, MineOptions{.k = 5});
    for (std::size_t i = 0; i < nra.texts.size(); ++i) {
      const auto it = list_truth.find(nra.texts[i]);
      ASSERT_NE(it, list_truth.end()) << nra.texts[i];
      EXPECT_TRUE(it->second.contains(nra.result.phrases[i].score))
          << nra.texts[i];
    }
  }
}

// --- Live updates ------------------------------------------------------------

TEST(ShardedEngineTest, UpdatesRouteToOwningShardsAndEpochsCompose) {
  // min_df 1 on both sides makes the phrase sets identical, so sharded
  // SMJ under a delta overlay must match the monolithic engine exactly.
  MiningEngine mono =
      MiningEngine::Build(MakeTinyCorpus(), EngineOptions(/*min_df=*/1));
  ShardedEngine sharded =
      BuildSharded(MakeTinyCorpus(), /*num_shards=*/3, /*min_df=*/1);

  UpdateBatch batch;
  batch.inserts.push_back(UpdateDoc{
      {"query", "optimization", "beats", "guessing"}, {}});
  batch.inserts.push_back(UpdateDoc{
      {"systems", "kernel", "query", "optimization"}, {}});
  batch.deletes.push_back(1);

  const UpdateStats mono_stats = mono.ApplyUpdate(batch);
  const ShardedUpdateStats stats = sharded.ApplyUpdate(batch);
  EXPECT_EQ(stats.total.batch_inserts, mono_stats.batch_inserts);
  EXPECT_EQ(stats.total.batch_deletes, mono_stats.batch_deletes);
  EXPECT_EQ(stats.total.live_docs, mono_stats.live_docs);
  EXPECT_EQ(stats.epochs.size(), 3u);
  uint64_t sum = 0;
  for (uint64_t e : stats.epochs) sum += e;
  EXPECT_EQ(stats.total.epoch, sum);
  EXPECT_GE(sum, 1u);

  const Query query =
      mono.ParseQuery("query optimization", QueryOperator::kAnd).value();
  const ShardedMineResult merged =
      sharded.Mine(query, Algorithm::kSmj, MineOptions{.k = 8});
  EXPECT_EQ(merged.result.guarantee, UpdateGuarantee::kExactUnderDelta);
  EXPECT_EQ(merged.result.shard_epochs, sharded.epochs());
  ExpectEquivalentTopK(mono, sharded, query, Algorithm::kSmj,
                       MineOptions{.k = 8});

  // Shard-by-shard rebuild: freshness returns one shard at a time, and
  // afterwards the merged output matches a monolithic rebuild.
  mono.Rebuild();
  for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
    sharded.RebuildShard(s);
  }
  const ShardedMineResult rebuilt =
      sharded.Mine(query, Algorithm::kSmj, MineOptions{.k = 8});
  EXPECT_EQ(rebuilt.result.guarantee, UpdateGuarantee::kFresh);
  ExpectEquivalentTopK(mono, sharded, query, Algorithm::kSmj,
                       MineOptions{.k = 8});

  // Deleting an ingested document by its global id (>= base size).
  UpdateBatch del;
  del.deletes.push_back(8);  // first insert above
  const ShardedUpdateStats del_stats = sharded.ApplyUpdate(del);
  EXPECT_EQ(del_stats.total.batch_deletes, 1u);
  UpdateBatch mono_del;
  // After the monolithic rebuild the first insert (doc id 8 pre-rebuild)
  // compacted to id 7 (doc 1 was deleted).
  mono_del.deletes.push_back(7);
  mono.ApplyUpdate(mono_del);
  ExpectEquivalentTopK(mono, sharded, query, Algorithm::kSmj,
                       MineOptions{.k = 8});
}

TEST(ShardedEngineTest, RefreshDictionaryAdmitsUpdateBornPhrases) {
  ShardedEngine sharded =
      BuildSharded(MakeTinyCorpus(), /*num_shards=*/3, /*min_df=*/2);
  const std::size_t set_before = sharded.phrase_set().size();

  // Two inserted documents establish a brand-new collocation; the frozen
  // phrase set cannot know it, so shard rebuilds alone never admit it.
  UpdateBatch batch;
  batch.inserts.push_back(UpdateDoc{{"brand", "new", "collocation"}, {}});
  batch.inserts.push_back(UpdateDoc{{"brand", "new", "collocation"}, {}});
  (void)sharded.ApplyUpdate(batch);
  const uint64_t epoch_before = sharded.epoch();

  const Query query =
      sharded.ParseQuery("brand new", QueryOperator::kAnd).value();
  const ShardedMineResult stale =
      sharded.Mine(query, Algorithm::kSmj, MineOptions{.k = 10});
  for (const std::string& text : stale.texts) {
    EXPECT_NE(text, "brand new");
  }

  sharded.RefreshDictionary();

  EXPECT_GT(sharded.phrase_set().size(), set_before);
  // Epochs continue strictly monotonically across the fleet swap, so no
  // epoch-vector cache key from before the refresh stays reachable.
  EXPECT_GT(sharded.epoch(), epoch_before);
  const ShardedMineResult fresh =
      sharded.Mine(query, Algorithm::kSmj, MineOptions{.k = 10});
  EXPECT_EQ(fresh.result.guarantee, UpdateGuarantee::kFresh);
  bool found = false;
  for (const std::string& text : fresh.texts) found |= text == "brand new";
  EXPECT_TRUE(found);
}

// --- Concurrency: ingest storm (TSan scope) ----------------------------------

// --- Per-shard disk tier -----------------------------------------------------

using testing::RankedSignature;

TEST(ShardedEngineTest, DiskTierDifferentialAcrossResidentFractions) {
  // Same corpus + same shard count: kNraDisk ranked output must be
  // bitwise identical at every resident budget (0, half, all) and equal
  // to in-memory kNra on the same fleet -- placement moves modeled cost,
  // never contents -- while the per-shard I/O counters shrink toward
  // zero as the budget pins more of each shard's lists.
  ShardedEngineOptions extra;
  extra.disk_backed = true;
  extra.disk_budget_per_shard = 0;
  ShardedEngine sharded =
      BuildSharded(MakeSmallSyntheticCorpus(700), /*num_shards=*/4,
                   /*min_df=*/3, std::move(extra));
  MiningEngine mono = MiningEngine::Build(MakeSmallSyntheticCorpus(700),
                                          EngineOptions(/*min_df=*/3));
  const std::vector<Query> queries = HarvestQueries(mono, 6);
  ASSERT_FALSE(queries.empty());

  // Warm every shard's lists, then size the budget off the largest shard.
  for (const Query& q : queries) {
    (void)sharded.Mine(q, Algorithm::kNraDisk, MineOptions{.k = 1});
  }
  uint64_t max_shard_bytes = 0;
  for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
    max_shard_bytes = std::max<uint64_t>(
        max_shard_bytes, sharded.shard(s).word_lists().InMemoryBytes());
  }
  ASSERT_GT(max_shard_bytes, 0u);

  for (const Query& base : queries) {
    for (const QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
      Query query = base;
      query.op = op;
      const MineOptions options{.k = 5};

      sharded.SetDiskBudgetPerShard(0);
      const ShardedMineResult spilled =
          sharded.Mine(query, Algorithm::kNraDisk, options);
      sharded.SetDiskBudgetPerShard(max_shard_bytes / 2);
      const ShardedMineResult half =
          sharded.Mine(query, Algorithm::kNraDisk, options);
      sharded.SetDiskBudgetPerShard(max_shard_bytes);
      const ShardedMineResult resident =
          sharded.Mine(query, Algorithm::kNraDisk, options);
      const ShardedMineResult in_memory =
          sharded.Mine(query, Algorithm::kNra, options);

      EXPECT_EQ(RankedSignature(spilled.result), RankedSignature(half.result));
      EXPECT_EQ(RankedSignature(spilled.result), RankedSignature(resident.result));
      EXPECT_EQ(RankedSignature(spilled.result), RankedSignature(in_memory.result));

      // Per-device counters: one entry per shard, aggregates sum them.
      ASSERT_EQ(spilled.shard_disk_io.size(), sharded.num_shards());
      DiskIoStats summed;
      for (const DiskIoStats& io : spilled.shard_disk_io) summed += io;
      EXPECT_EQ(summed.blocks_read, spilled.result.disk_io.blocks_read);
      EXPECT_EQ(summed.bytes, spilled.result.disk_io.bytes);
      // Fully pinned lists and no scatter-side phrase lookups: the
      // all-resident fleet charges nothing at all.
      EXPECT_EQ(resident.result.disk_io.blocks_read, 0u);
      EXPECT_DOUBLE_EQ(resident.result.disk_ms, 0.0);
      EXPECT_LE(half.result.disk_io.bytes, spilled.result.disk_io.bytes);
      EXPECT_EQ(in_memory.result.disk_io.blocks_read, 0u);
    }
  }
}

TEST(ShardedEngineTest, DiskTierSpillPlacementDeterministicPerShard) {
  // Same corpus + same budget => identical per-shard placement across
  // two independently built fleets (the satellite determinism contract:
  // placement is a pure function of corpus, budget and built lists).
  ShardedEngineOptions extra_a;
  extra_a.disk_backed = true;
  ShardedEngineOptions extra_b;
  extra_b.disk_backed = true;
  ShardedEngine a = BuildSharded(MakeSmallSyntheticCorpus(500),
                                 /*num_shards=*/3, /*min_df=*/3,
                                 std::move(extra_a));
  ShardedEngine b = BuildSharded(MakeSmallSyntheticCorpus(500),
                                 /*num_shards=*/3, /*min_df=*/3,
                                 std::move(extra_b));
  MiningEngine mono = MiningEngine::Build(MakeSmallSyntheticCorpus(500),
                                          EngineOptions(/*min_df=*/3));
  const std::vector<Query> queries = HarvestQueries(mono, 4);
  ASSERT_FALSE(queries.empty());
  for (const Query& q : queries) {
    (void)a.Mine(q, Algorithm::kNraDisk, MineOptions{.k = 1});
    (void)b.Mine(q, Algorithm::kNraDisk, MineOptions{.k = 1});
  }
  for (std::size_t s = 0; s < a.num_shards(); ++s) {
    const uint64_t budget = a.shard(s).word_lists().InMemoryBytes() / 2;
    const auto place_a = DiskResidentLists::ResidentSet(
        a.shard(s).word_lists(), a.shard(s).inverted(), budget);
    const auto place_b = DiskResidentLists::ResidentSet(
        b.shard(s).word_lists(), b.shard(s).inverted(), budget);
    EXPECT_EQ(place_a, place_b) << "shard " << s;
  }
}

TEST(ShardedEngineTest, ConcurrentShardIngestStorm) {
  ShardedEngine sharded =
      BuildSharded(MakeSmallSyntheticCorpus(200), /*num_shards=*/4,
                   /*min_df=*/2);
  const Query query =
      sharded.ParseQuery("topic:0 topic:1", QueryOperator::kOr).value();

  std::atomic<bool> stop{false};
  std::atomic<int> mined{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&sharded, &stop, w] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        UpdateBatch batch;
        UpdateDoc doc;
        doc.tokens = {"storm", "doc", w == 0 ? "alpha" : "beta",
                      std::to_string(i++)};
        batch.inserts.push_back(std::move(doc));
        if (i % 5 == 0) {
          batch.deletes.push_back(static_cast<DocId>(200 + i - 3));
        }
        (void)sharded.ApplyUpdate(batch);
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&sharded, &query, &stop, &mined, r] {
      uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const Algorithm algorithm =
            (r + mined.load(std::memory_order_relaxed)) % 2 == 0
                ? Algorithm::kSmj
                : Algorithm::kNra;
        const ShardedMineResult merged =
            sharded.Mine(query, algorithm, MineOptions{.k = 5});
        // Composite epoch sum never moves backwards for a single reader.
        EXPECT_GE(merged.result.epoch, last_epoch);
        last_epoch = merged.result.epoch;
        mined.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread rebuilder([&sharded, &stop] {
    std::size_t s = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      sharded.RebuildShard(s % sharded.num_shards());
      ++s;
      // Back-to-back rebuilds with zero gap are adversarial (every mine
      // would race a structure swap); a short breather models a sane
      // rebuild cadence while still exercising the swap path heavily.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  while (mined.load() < 30) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
  for (std::thread& t : readers) t.join();
  rebuilder.join();
  EXPECT_GE(sharded.epoch(), 1u);
}

}  // namespace
}  // namespace phrasemine
