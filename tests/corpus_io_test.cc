#include "text/corpus_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "gtest/gtest.h"

namespace phrasemine {
namespace {

TEST(CorpusReaderTest, PlainStreamOneDocPerLine) {
  std::istringstream in(
      "The first document body\n"
      "\n"
      "second document here\n");
  Corpus corpus = CorpusReader::FromPlainStream(in);
  ASSERT_EQ(corpus.size(), 2u);
  EXPECT_EQ(corpus.doc(0).tokens.size(), 4u);
  EXPECT_TRUE(corpus.doc(0).facets.empty());
  EXPECT_NE(corpus.vocab().Lookup("second"), kInvalidTermId);
}

TEST(CorpusReaderTest, FacetedStreamParsesFacets) {
  std::istringstream in(
      "topic:trade,year:1987\tgrain exports rise sharply\n"
      "topic:money\tcentral bank cuts rates\n");
  Corpus corpus = CorpusReader::FromFacetedStream(in);
  ASSERT_EQ(corpus.size(), 2u);
  EXPECT_EQ(corpus.doc(0).facets.size(), 2u);
  EXPECT_EQ(corpus.vocab().TermText(corpus.doc(0).facets[0]), "topic:trade");
  EXPECT_EQ(corpus.doc(1).facets.size(), 1u);
  EXPECT_EQ(corpus.doc(0).tokens.size(), 4u);
}

TEST(CorpusReaderTest, FacetedLineWithoutTabIsPlain) {
  std::istringstream in("just a plain line\n");
  Corpus corpus = CorpusReader::FromFacetedStream(in);
  ASSERT_EQ(corpus.size(), 1u);
  EXPECT_TRUE(corpus.doc(0).facets.empty());
  EXPECT_EQ(corpus.doc(0).tokens.size(), 4u);
}

TEST(CorpusReaderTest, FacetSpecSkipsSpacesAndEmpties) {
  std::istringstream in("a, b,,c\tbody text\n");
  Corpus corpus = CorpusReader::FromFacetedStream(in);
  ASSERT_EQ(corpus.size(), 1u);
  EXPECT_EQ(corpus.doc(0).facets.size(), 3u);
}

TEST(CorpusReaderTest, MissingFileFails) {
  auto r = CorpusReader::FromPlainFile("/nonexistent/corpus.txt");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(CorpusReaderTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pm_corpus_io_test.txt";
  {
    std::ofstream out(path);
    out << "alpha beta gamma\n";
    out << "topic:x\tdelta epsilon\n";
  }
  auto plain = CorpusReader::FromPlainFile(path);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().size(), 2u);

  auto faceted = CorpusReader::FromFacetedFile(path);
  ASSERT_TRUE(faceted.ok());
  EXPECT_EQ(faceted.value().size(), 2u);
  EXPECT_EQ(faceted.value().doc(1).facets.size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace phrasemine
