#include <cmath>

#include "eval/metrics.h"
#include "gtest/gtest.h"

namespace phrasemine {
namespace {

std::unordered_set<PhraseId> Rel(std::initializer_list<PhraseId> ids) {
  return std::unordered_set<PhraseId>(ids);
}

TEST(MetricsTest, PerfectRetrieval) {
  QualityMetrics m = ComputeQuality({1, 2, 3, 4, 5}, Rel({1, 2, 3, 4, 5}), 5);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);
  EXPECT_DOUBLE_EQ(m.map, 1.0);
  EXPECT_DOUBLE_EQ(m.ndcg, 1.0);
}

TEST(MetricsTest, AllWrong) {
  QualityMetrics m = ComputeQuality({6, 7, 8, 9, 10}, Rel({1, 2, 3, 4, 5}), 5);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.mrr, 0.0);
  EXPECT_DOUBLE_EQ(m.map, 0.0);
  EXPECT_DOUBLE_EQ(m.ndcg, 0.0);
}

TEST(MetricsTest, MrrSecondPosition) {
  QualityMetrics m = ComputeQuality({9, 1, 8, 7, 6}, Rel({1, 2, 3, 4, 5}), 5);
  EXPECT_DOUBLE_EQ(m.mrr, 0.5);
  EXPECT_DOUBLE_EQ(m.precision, 0.2);
}

TEST(MetricsTest, RankSensitivityOfNdcgAndMap) {
  // The paper's example: 2 correct results score higher at positions 1-2
  // than at positions 4-5.
  QualityMetrics top = ComputeQuality({1, 2, 8, 9, 10}, Rel({1, 2}), 5);
  QualityMetrics bottom = ComputeQuality({8, 9, 10, 1, 2}, Rel({1, 2}), 5);
  EXPECT_DOUBLE_EQ(top.precision, bottom.precision);
  EXPECT_GT(top.ndcg, bottom.ndcg);
  EXPECT_GT(top.map, bottom.map);
}

TEST(MetricsTest, PerfectWhenAllRelevantRetrievedAtTop) {
  // Only 2 relevant exist; retrieving them first is ideal -> NDCG = 1.
  QualityMetrics m = ComputeQuality({1, 2, 8, 9, 10}, Rel({1, 2}), 5);
  EXPECT_DOUBLE_EQ(m.ndcg, 1.0);
  EXPECT_DOUBLE_EQ(m.map, 1.0);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);
}

TEST(MetricsTest, ShortRetrievedList) {
  QualityMetrics m = ComputeQuality({1}, Rel({1, 2, 3}), 5);
  EXPECT_DOUBLE_EQ(m.precision, 0.2);  // 1 hit / k=5
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);
}

TEST(MetricsTest, EmptyInputs) {
  QualityMetrics m1 = ComputeQuality({}, Rel({1}), 5);
  EXPECT_DOUBLE_EQ(m1.precision, 0.0);
  QualityMetrics m2 = ComputeQuality({1, 2}, {}, 5);
  EXPECT_DOUBLE_EQ(m2.ndcg, 0.0);
  QualityMetrics m3 = ComputeQuality({1}, Rel({1}), 0);
  EXPECT_DOUBLE_EQ(m3.precision, 0.0);
}

TEST(MetricsTest, DcgUsesLogDiscount) {
  // Single relevant at rank 3 of 3 relevant total (k=5):
  // dcg = 1/log2(4), idcg = 1/log2(2)+1/log2(3)+1/log2(4).
  QualityMetrics m = ComputeQuality({8, 9, 1, 10, 11}, Rel({1, 2, 3}), 5);
  const double dcg = 1.0 / std::log2(4.0);
  const double idcg =
      1.0 / std::log2(2.0) + 1.0 / std::log2(3.0) + 1.0 / std::log2(4.0);
  EXPECT_NEAR(m.ndcg, dcg / idcg, 1e-12);
}

TEST(MetricsTest, AccumulateAndAverage) {
  QualityMetrics a{1.0, 1.0, 1.0, 1.0};
  QualityMetrics b{0.0, 0.5, 0.25, 0.75};
  a += b;
  QualityMetrics avg = a / 2.0;
  EXPECT_DOUBLE_EQ(avg.precision, 0.5);
  EXPECT_DOUBLE_EQ(avg.mrr, 0.75);
  EXPECT_DOUBLE_EQ(avg.map, 0.625);
  EXPECT_DOUBLE_EQ(avg.ndcg, 0.875);
}

TEST(MetricsTest, MonotoneInHits) {
  // Adding one more correct result never lowers any measure.
  QualityMetrics one = ComputeQuality({1, 8, 9, 10, 11}, Rel({1, 2}), 5);
  QualityMetrics two = ComputeQuality({1, 2, 9, 10, 11}, Rel({1, 2}), 5);
  EXPECT_GE(two.precision, one.precision);
  EXPECT_GE(two.map, one.map);
  EXPECT_GE(two.ndcg, one.ndcg);
  EXPECT_GE(two.mrr, one.mrr);
}

}  // namespace
}  // namespace phrasemine
