#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace phrasemine {
namespace {

TEST(ObsMetricsTest, CounterSumsStripes) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c_total");
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
  EXPECT_EQ(registry.Snapshot().counter("c_total"), 42u);
  EXPECT_EQ(registry.Snapshot().counter("missing"), 0u);
}

TEST(ObsMetricsTest, GaugeTracksLevelAndHighWater) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("depth");
  EXPECT_EQ(g->Add(3), 3);
  EXPECT_EQ(g->Add(-2), 1);
  EXPECT_EQ(g->Value(), 1);
  EXPECT_EQ(g->Max(), 3);
  g->Set(-5);
  EXPECT_EQ(g->Value(), -5);
  EXPECT_EQ(g->Max(), 3);  // peak survives the drop
  EXPECT_EQ(registry.Snapshot().gauge("depth"), -5);
}

TEST(ObsMetricsTest, RegistryHandlesAreStableAndFindOrCreate) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("same_total");
  for (int i = 0; i < 100; ++i) registry.GetCounter("filler_" + std::to_string(i));
  EXPECT_EQ(registry.GetCounter("same_total"), a);
  EXPECT_NE(registry.GetCounter("other_total"), a);
}

TEST(ObsMetricsTest, HistogramBucketBoundsCoverTheLogScale) {
  // Small values are exact; above that each bucket's inclusive upper
  // bound must actually contain every value mapping to the bucket and
  // the bounds must be strictly increasing (cumulative `le` samples
  // depend on it).
  for (uint64_t v : {1u, 2u, 3u}) {
    EXPECT_EQ(Histogram::BucketIndex(v), v - 1);
    EXPECT_EQ(Histogram::BucketUpperBound(v - 1), v);
  }
  uint64_t prev = 0;
  for (std::size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
    const uint64_t ub = Histogram::BucketUpperBound(i);
    EXPECT_GT(ub, prev) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(ub), i) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(ub + 1), i + 1) << "bucket " << i;
    prev = ub;
  }
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBuckets - 1), UINT64_MAX);
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);  // clamps into the first bucket
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kBuckets - 1);
}

TEST(ObsMetricsTest, HistogramQuantilesLandInTheRecordedOctave) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat_us");
  for (int i = 0; i < 90; ++i) h->Record(100);
  for (int i = 0; i < 10; ++i) h->Record(10000);
  const HistogramSnapshot* snap =
      registry.Snapshot().histogram("lat_us");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->count, 100u);
  EXPECT_EQ(snap->sum, 90u * 100 + 10u * 10000);
  // Log-scale buckets are ~19% wide, so quantiles are approximate: the
  // median must sit in 100's bucket, the p99 in 10000's.
  EXPECT_GE(snap->Quantile(0.50), 90.0);
  EXPECT_LE(snap->Quantile(0.50), 130.0);
  EXPECT_GE(snap->Quantile(0.99), 8000.0);
  EXPECT_LE(snap->Quantile(0.99), 13000.0);
  EXPECT_EQ(HistogramSnapshot{}.Quantile(0.5), 0.0);
}

TEST(ObsMetricsTest, PrometheusTextGolden) {
  MetricsRegistry registry;
  registry.GetCounter("service_queries_total")->Add(7);
  registry.GetCounter("pool_rejected_total");
  registry.GetGauge("pool_queue_depth")->Set(2);
  Histogram* h = registry.GetHistogram("service_latency_us");
  h->Record(1);
  h->Record(3);
  h->Record(3);

  const std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_EQ(text,
            "# TYPE pool_rejected_total counter\n"
            "pool_rejected_total 0\n"
            "# TYPE service_queries_total counter\n"
            "service_queries_total 7\n"
            "# TYPE pool_queue_depth gauge\n"
            "pool_queue_depth 2\n"
            "# TYPE service_latency_us histogram\n"
            "service_latency_us_bucket{le=\"1\"} 1\n"
            "service_latency_us_bucket{le=\"3\"} 3\n"
            "service_latency_us_bucket{le=\"+Inf\"} 3\n"
            "service_latency_us_sum 7\n"
            "service_latency_us_count 3\n");
}

TEST(ObsMetricsTest, LabeledNamesKeepSuffixesBeforeLabels) {
  // The registry treats `{label="v"}` as part of the name; the exposition
  // must splice histogram/bucket suffixes before the label block and the
  // TYPE line must carry the bare name.
  MetricsRegistry registry;
  registry.GetCounter("exec_total{algorithm=\"nra\"}")->Add(4);
  Histogram* h = registry.GetHistogram("lat_us{shard=\"0\"}");
  h->Record(2);

  const std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE exec_total counter\n"
                      "exec_total{algorithm=\"nra\"} 4\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE lat_us histogram\n"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_us_bucket{le=\"2\",shard=\"0\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_us_sum{shard=\"0\"} 2\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_us_count{shard=\"0\"} 1\n"), std::string::npos)
      << text;
}

TEST(ObsMetricsTest, JsonMatchesTextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("a_total")->Add(3);
  registry.GetGauge("b")->Set(-4);
  Histogram* h = registry.GetHistogram("c_us");
  h->Record(5);
  h->Record(9);

  EXPECT_EQ(registry.Snapshot().ToJson(),
            "{\n"
            "  \"counters\": {\n"
            "    \"a_total\": 3\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"b\": -4\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"c_us\": {\"count\": 2, \"sum\": 14, "
            "\"buckets\": [[5, 1], [9, 2]]}\n"
            "  }\n"
            "}\n");
}

// Thread-safety hammer: writers on every metric kind race a snapshotting
// reader. Run under TSan in CI (the sanitize-tsan job's scoped test list
// includes this binary); the final totals are exact once writers join.
TEST(ObsMetricsTest, ConcurrentWritersAndSnapshotsAgree) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("hammer_total");
  Gauge* g = registry.GetGauge("hammer_depth");
  Histogram* h = registry.GetHistogram("hammer_us");

  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c->Increment();
        g->Add(1);
        g->Add(-1);
        h->Record(static_cast<uint64_t>(t * kIters + i + 1));
        // Late-created metrics race the snapshotter's map walk too.
        if (i == kIters / 2) {
          registry.GetCounter("late_total{t=\"" + std::to_string(t) + "\"}")
              ->Increment();
        }
      }
    });
  }
  workers.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      const MetricsSnapshot snap = registry.Snapshot();
      EXPECT_LE(snap.counter("hammer_total"),
                static_cast<uint64_t>(kThreads) * kIters);
      (void)snap.ToPrometheusText();
    }
  });
  for (std::thread& w : workers) w.join();

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("hammer_total"),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.gauge("hammer_depth"), 0);
  EXPECT_LE(registry.GetGauge("hammer_depth")->Max(), kThreads);
  const HistogramSnapshot* hs = snap.histogram("hammer_us");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, static_cast<uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.counter("late_total{t=\"" + std::to_string(t) + "\"}"), 1u);
  }
}

}  // namespace
}  // namespace phrasemine
