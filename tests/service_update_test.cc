// Live updates through the PhraseService front door: cache invalidation
// across epochs (deterministic) and concurrent Ingest + Submit storms
// (epoch monotonicity, no pre-update results after an Ingest returns, no
// crashes under background rebuilds). The concurrency tests are the ones
// the TSan CI job scopes to.

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "service/service.h"
#include "test_util.h"
#include "testing/failpoint.h"

namespace phrasemine {
namespace {

/// Base corpus with score headroom: P(alpha|beta) starts at 2/4 = 0.5, so
/// inserts can move it without saturating at 1.
MiningEngine MakeHeadroomEngine() {
  Corpus corpus;
  corpus.AddTokenized({"alpha", "beta", "noise1"});
  corpus.AddTokenized({"alpha", "beta", "noise2"});
  corpus.AddTokenized({"beta", "gamma", "noise3"});
  corpus.AddTokenized({"beta", "gamma", "noise4"});
  MiningEngine::Options options;
  options.extractor.min_df = 1;
  options.extractor.max_phrase_len = 2;
  return MiningEngine::Build(std::move(corpus), options);
}

double ScoreOf(const MiningEngine& engine, const MineResult& result,
               PhraseId phrase) {
  for (const MinedPhrase& p : result.phrases) {
    if (p.phrase == phrase) return p.interestingness;
  }
  ADD_FAILURE() << "phrase " << engine.PhraseText(phrase) << " not in result";
  return -1.0;
}

TEST(ServiceUpdateTest, IngestInvalidatesResultCacheButKeepsWordLists) {
  MiningEngine engine = MakeHeadroomEngine();
  const TermId alpha = engine.corpus().vocab().Lookup("alpha");
  const PhraseId beta =
      engine.dict().Unigram(engine.corpus().vocab().Lookup("beta"));
  ASSERT_NE(alpha, kInvalidTermId);
  ASSERT_NE(beta, kInvalidPhraseId);

  PhraseServiceOptions options;
  options.pool.num_threads = 1;
  // Deterministic delta path: the tiny corpus would cross the rebuild
  // threshold immediately, and a background rebuild reassigns PhraseIds.
  options.enable_auto_rebuild = false;
  PhraseService service(&engine, options);

  ServiceRequest request;
  request.query.terms = {alpha};
  request.query.op = QueryOperator::kAnd;
  request.options.k = 16;
  request.algorithm = Algorithm::kSmj;

  // Warm both caches: the first mine builds alpha's word lists and caches
  // the result; the repeat must be a hit at epoch 0.
  ServiceReply first = service.MineSync(request);
  EXPECT_FALSE(first.result_cache_hit);
  EXPECT_EQ(first.epoch, 0u);
  EXPECT_EQ(first.result.guarantee, UpdateGuarantee::kFresh);
  EXPECT_DOUBLE_EQ(ScoreOf(engine, first.result, beta), 0.5);
  ServiceReply warm = service.MineSync(request);
  EXPECT_TRUE(warm.result_cache_hit);
  const std::size_t warm_list_entries = service.stats().word_list_cache.entries;
  EXPECT_GT(warm_list_entries, 0u);

  // Two more "alpha beta" documents: P(alpha|beta) becomes 4/6.
  UpdateBatch batch;
  batch.inserts.push_back(UpdateDoc{{"alpha", "beta", "noise5"}, {}});
  batch.inserts.push_back(UpdateDoc{{"alpha", "beta", "noise6"}, {}});
  const UpdateStats stats = service.IngestBatch(batch);
  EXPECT_EQ(stats.epoch, 1u);

  // The stale entry is unreachable: next query misses, mines under the
  // overlay, and reports the updated score with the SMJ exactness
  // guarantee.
  ServiceReply updated = service.MineSync(request);
  EXPECT_FALSE(updated.result_cache_hit);
  EXPECT_EQ(updated.epoch, 1u);
  EXPECT_EQ(updated.result.guarantee, UpdateGuarantee::kExactUnderDelta);
  EXPECT_DOUBLE_EQ(ScoreOf(engine, updated.result, beta), 4.0 / 6.0);

  // The new epoch caches normally...
  ServiceReply repeat = service.MineSync(request);
  EXPECT_TRUE(repeat.result_cache_hit);
  EXPECT_EQ(repeat.epoch, 1u);
  EXPECT_DOUBLE_EQ(ScoreOf(engine, repeat.result, beta), 4.0 / 6.0);

  // ...and the word lists were NOT invalidated (delta correction happens
  // at read time; only a rebuild re-keys them).
  EXPECT_EQ(service.stats().word_list_cache.entries, warm_list_entries);

  // NRA sees the update too, under the approximate guarantee.
  request.algorithm = Algorithm::kNra;
  ServiceReply nra = service.MineSync(request);
  EXPECT_FALSE(nra.result_cache_hit);
  EXPECT_EQ(nra.result.guarantee, UpdateGuarantee::kApproximateUnderDelta);
  EXPECT_DOUBLE_EQ(ScoreOf(engine, nra.result, beta), 4.0 / 6.0);
}

TEST(ServiceUpdateTest, DeleteDropsPhraseFromResults) {
  MiningEngine engine = MakeHeadroomEngine();
  const TermId alpha = engine.corpus().vocab().Lookup("alpha");
  const PhraseId gamma =
      engine.dict().Unigram(engine.corpus().vocab().Lookup("gamma"));
  ASSERT_NE(gamma, kInvalidPhraseId);

  PhraseServiceOptions options;
  options.pool.num_threads = 1;
  options.enable_auto_rebuild = false;  // see above: keep PhraseIds stable
  PhraseService service(&engine, options);

  ServiceRequest request;
  request.query.terms = {alpha};
  request.query.op = QueryOperator::kAnd;
  request.options.k = 16;
  request.algorithm = Algorithm::kSmj;

  // Insert one "alpha gamma" doc, then delete it again: the phrase must
  // appear at epoch 1 and vanish at epoch 2 (co-count back to zero). The
  // insert is a delta-only co-occurrence -- exactly the extra-entry case
  // that keeps SMJ exact.
  UpdateBatch insert;
  insert.inserts.push_back(UpdateDoc{{"alpha", "gamma"}, {}});
  const UpdateStats s1 = service.IngestBatch(insert);
  const DocId inserted_id = engine.corpus().size();  // first virtual id

  ServiceReply with = service.MineSync(request);
  EXPECT_EQ(with.epoch, s1.epoch);
  EXPECT_DOUBLE_EQ(ScoreOf(engine, with.result, gamma), 1.0 / 3.0);

  UpdateBatch erase;
  erase.deletes.push_back(inserted_id);
  const UpdateStats s2 = service.IngestBatch(erase);
  EXPECT_EQ(s2.epoch, s1.epoch + 1);

  ServiceReply without = service.MineSync(request);
  EXPECT_FALSE(without.result_cache_hit);
  for (const MinedPhrase& p : without.result.phrases) {
    EXPECT_NE(p.phrase, gamma) << "deleted co-occurrence still served";
  }
}

/// Pre-materialized update docs so writer threads never read the (possibly
/// rebuilding) corpus.
std::vector<UpdateDoc> HarvestUpdateDocs(const MiningEngine& engine,
                                         std::size_t count) {
  std::vector<UpdateDoc> docs;
  const Corpus& corpus = engine.corpus();
  for (std::size_t i = 0; i < count; ++i) {
    const auto id = static_cast<DocId>(i % corpus.size());
    UpdateDoc doc;
    for (TermId t : corpus.doc(id).tokens) {
      doc.tokens.push_back(corpus.vocab().TermText(t));
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

/// Frequent terms to query for; harvested before the storm starts.
std::vector<TermId> HarvestTerms(const MiningEngine& engine,
                                 std::size_t count) {
  std::vector<TermId> terms;
  for (TermId t = 0; t < engine.corpus().vocab().size() &&
                     terms.size() < count;
       ++t) {
    if (engine.inverted().df(t) >= 10) terms.push_back(t);
  }
  return terms;
}

void RunStorm(MiningEngine& engine, PhraseServiceOptions service_options,
              std::size_t num_ingests, bool expect_rebuilds) {
  PhraseService service(&engine, service_options);
  const std::vector<UpdateDoc> update_docs =
      HarvestUpdateDocs(engine, num_ingests * 2);
  const std::vector<TermId> terms = HarvestTerms(engine, 6);
  ASSERT_GE(terms.size(), 2u);
  const std::size_t base_docs = engine.corpus().size();

  // Epoch of the last *returned* Ingest: the service promises that any
  // query submitted afterwards replies with an epoch at least this high.
  std::atomic<uint64_t> last_ingested_epoch{0};
  std::atomic<bool> writer_done{false};

  std::thread writer([&] {
    for (std::size_t i = 0; i < num_ingests; ++i) {
      UpdateBatch batch;
      batch.inserts.push_back(update_docs[(2 * i) % update_docs.size()]);
      if (i % 3 == 1) {
        batch.inserts.push_back(update_docs[(2 * i + 1) % update_docs.size()]);
      }
      if (i % 4 == 3) {
        // Deleting an arbitrary id is fine: unknown/already-deleted ids
        // are ignored by contract.
        batch.deletes.push_back(static_cast<DocId>(i % base_docs));
      }
      const UpdateStats stats = service.IngestBatch(batch);
      // Epochs only move forward, across deltas and rebuilds alike.
      EXPECT_GT(stats.epoch, last_ingested_epoch.load());
      last_ingested_epoch.store(stats.epoch);
      std::this_thread::yield();
    }
    writer_done.store(true);
  });

  constexpr int kReaders = 3;
  constexpr int kQueriesPerReader = 120;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t previous_epoch = 0;
      for (int i = 0; i < kQueriesPerReader; ++i) {
        ServiceRequest request;
        request.query.terms = {terms[(r + i) % terms.size()]};
        if (i % 2 == 0) {
          request.query.terms.push_back(terms[(r + i + 1) % terms.size()]);
        }
        request.query.op =
            (i % 3 == 0) ? QueryOperator::kOr : QueryOperator::kAnd;
        request.options.k = 5;
        switch (i % 4) {
          case 0:
            request.algorithm = Algorithm::kSmj;
            break;
          case 1:
            request.algorithm = Algorithm::kNra;
            break;
          case 2:
            request.algorithm = Algorithm::kGm;
            break;
          default:
            break;  // planner's choice
        }
        const uint64_t floor_epoch = last_ingested_epoch.load();
        ServiceReply reply = service.Submit(std::move(request)).get();
        // The post-Ingest visibility guarantee, and per-thread epoch
        // monotonicity (sequential submits can only move forward).
        EXPECT_GE(reply.epoch, floor_epoch);
        EXPECT_GE(reply.epoch, previous_epoch);
        previous_epoch = reply.epoch;
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_TRUE(writer_done.load());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.ingests, num_ingests);
  EXPECT_GE(stats.epoch, num_ingests);
  EXPECT_EQ(stats.queries, static_cast<uint64_t>(kReaders) * kQueriesPerReader);
  service.Shutdown();
  if (expect_rebuilds) {
    EXPECT_GE(service.stats().rebuilds, 1u);
    EXPECT_GE(engine.list_generation(), 1u);
  } else {
    EXPECT_EQ(service.stats().rebuilds, 0u);
    EXPECT_EQ(engine.list_generation(), 0u);
  }

  // The service stayed coherent: a fresh query after the storm reflects
  // the final epoch and still parses against the (grown) vocabulary.
  ServiceRequest final_request;
  final_request.query.terms = {terms[0]};
  final_request.query.op = QueryOperator::kAnd;
  final_request.options.k = 5;
  ServiceReply final_reply = service.MineSync(final_request);
  EXPECT_GE(final_reply.epoch, last_ingested_epoch.load());
}

TEST(ServiceUpdateTest, ConcurrentIngestAndSubmitDeltaOnly) {
  MiningEngine::Options options;
  options.extractor.min_df = 5;
  options.rebuild_threshold = 0.0;  // never recommend: pure overlay path
  MiningEngine engine =
      MiningEngine::Build(testing::MakeSmallSyntheticCorpus(250), options);

  PhraseServiceOptions service_options;
  service_options.pool.num_threads = 4;
  RunStorm(engine, service_options, /*num_ingests=*/25,
           /*expect_rebuilds=*/false);
}

TEST(ServiceUpdateTest, ConcurrentIngestAndSubmitWithAutoRebuild) {
  MiningEngine::Options options;
  options.extractor.min_df = 5;
  // Tiny threshold so background rebuilds fire repeatedly mid-storm.
  options.rebuild_threshold = 0.01;
  MiningEngine engine =
      MiningEngine::Build(testing::MakeSmallSyntheticCorpus(250), options);

  PhraseServiceOptions service_options;
  service_options.pool.num_threads = 4;
  service_options.enable_auto_rebuild = true;
  RunStorm(engine, service_options, /*num_ingests=*/20,
           /*expect_rebuilds=*/true);
}

TEST(ServiceUpdateTest, IngestRacingDeadlineExpiredMineStaysCoherent) {
  // An ingest racing a mine whose deadline expires mid-flight: both must
  // complete with their own typed outcomes (the ingest is never aborted
  // by the query's deadline -- cancellation is per-request), the epoch
  // advances, and the service serves normally afterwards.
  MiningEngine::Options engine_options;
  engine_options.extractor.min_df = 3;
  engine_options.disk_backed = true;  // budget 0: mines are slow enough
  engine_options.disk_resident_budget = 0;
  MiningEngine engine = MiningEngine::Build(
      testing::MakeSmallSyntheticCorpus(400), engine_options);

  PhraseServiceOptions service_options;
  service_options.pool.num_threads = 2;
  service_options.enable_auto_rebuild = false;
  PhraseService service(&engine, service_options);
  const std::vector<TermId> terms = HarvestTerms(engine, 2);
  ASSERT_GE(terms.size(), 2u);
  const std::vector<UpdateDoc> docs = HarvestUpdateDocs(engine, 4);

  failpoint::Arm("disk.sim.read", {.delay_ms = 0.5});
  ServiceRequest doomed;
  doomed.query.terms = {terms[0], terms[1]};
  doomed.query.op = QueryOperator::kOr;
  doomed.options.k = 8;
  doomed.algorithm = Algorithm::kNraDisk;
  doomed.deadline_ms = 5.0;
  std::future<ServiceReply> mine = service.Submit(std::move(doomed));

  UpdateBatch batch;
  batch.inserts.push_back(docs[0]);
  const UpdateStats ingested = service.IngestBatch(batch);
  EXPECT_EQ(ingested.epoch, 1u);

  const ServiceReply reply = mine.get();
  failpoint::DisarmAll();
  // The mine either beat its deadline (OK) or refused with the typed
  // code -- on this slowed device the latter, but the invariant under
  // test is "typed either way, ingest unaffected".
  EXPECT_TRUE(reply.status.ok() ||
              reply.status.code() == StatusCode::kDeadlineExceeded)
      << reply.status.ToString();

  // Post-race: the epoch advanced and a fresh deadline-free query serves
  // the ingested state.
  ServiceRequest after;
  after.query.terms = {terms[0]};
  after.query.op = QueryOperator::kAnd;
  after.options.k = 8;
  const ServiceReply ok = service.MineSync(after);
  EXPECT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_GE(ok.epoch, 1u);
}

}  // namespace
}  // namespace phrasemine
