// ThreadPool: bounded-queue semantics, drain-on-shutdown, counters.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "service/thread_pool.h"

namespace phrasemine {
namespace {

TEST(ThreadPoolTest, ExecutesEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool({.num_threads = 4, .queue_capacity = 8});
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(pool.Submit([&counter] { ++counter; }));
    }
    pool.Shutdown();  // Drains before joining.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, TrySubmitFailsWhenQueueFull) {
  std::atomic<bool> release{false};
  ThreadPool pool({.num_threads = 1, .queue_capacity = 1});
  // Occupy the single worker...
  ASSERT_TRUE(pool.Submit([&release] {
    while (!release.load()) std::this_thread::yield();
  }));
  // ...then fill the queue. Eventually the slot is taken and TrySubmit
  // must fail instead of blocking.
  bool saw_rejection = false;
  for (int i = 0; i < 1000 && !saw_rejection; ++i) {
    if (!pool.TrySubmit([] {})) saw_rejection = true;
  }
  EXPECT_TRUE(saw_rejection);
  EXPECT_GT(pool.stats().rejected, 0u);
  release.store(true);
  pool.Shutdown();
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool({.num_threads = 2, .queue_capacity = 4});
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
  EXPECT_FALSE(pool.TrySubmit([] {}));
  EXPECT_EQ(pool.stats().rejected, 2u);
}

TEST(ThreadPoolTest, StatsBalanceAfterDrain) {
  ThreadPool pool({.num_threads = 2, .queue_capacity = 4});
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.Submit([] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }));
  }
  pool.Shutdown();
  const ThreadPoolStats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 20u);
  EXPECT_EQ(stats.executed, 20u);
  EXPECT_GE(stats.peak_queue_depth, 1u);
  EXPECT_LE(stats.peak_queue_depth, 4u);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool({.num_threads = 1, .queue_capacity = 1});
  pool.Shutdown();
  pool.Shutdown();  // Must not hang or crash.
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, SubmitShutdownRaceNeverHangs) {
  // Storms the documented submit/shutdown contract: every Submit verdict
  // is definite -- all `true` tasks run (Shutdown drains the queue), no
  // `false` task ever runs -- so ran == accepted exactly, and a submitter
  // parked on a full queue always wakes with `false` (the join below
  // would hang forever if it did not).
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool({.num_threads = 2, .queue_capacity = 2});
    std::atomic<int> ran{0};
    std::atomic<int> accepted{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 3; ++t) {
      submitters.emplace_back([&pool, &ran, &accepted, &stop] {
        while (!stop.load()) {
          if (pool.Submit([&ran] { ran.fetch_add(1); })) {
            accepted.fetch_add(1);
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    pool.Shutdown();  // Races live blocking Submits.
    stop.store(true);
    for (std::thread& t : submitters) t.join();
    EXPECT_EQ(ran.load(), accepted.load()) << "round " << round;
  }
}

TEST(ThreadPoolTest, ClampsDegenerateOptions) {
  ThreadPool pool({.num_threads = 0, .queue_capacity = 0});
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  ASSERT_TRUE(pool.Submit([&counter] { ++counter; }));
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 1);
}

}  // namespace
}  // namespace phrasemine
