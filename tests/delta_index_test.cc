// Section 4.5.1: the delta overlay must make SMJ produce the same scores it
// would produce over a rebuilt index on corpus + updates, for phrases that
// existed in the base dictionary.

#include <algorithm>
#include <vector>

#include "core/delta_index.h"
#include "core/engine.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "text/tokenizer.h"

namespace phrasemine {
namespace {

std::vector<TermId> ToIds(const Corpus& corpus, const char* text) {
  Tokenizer tokenizer;
  std::vector<TermId> ids;
  for (const std::string& w : tokenizer.Tokenize(text)) {
    const TermId t = corpus.vocab().Lookup(w);
    if (t != kInvalidTermId) ids.push_back(t);
  }
  return ids;
}

TEST(DeltaIndexTest, DfDeltaTracksInsertions) {
  MiningEngine engine = testing::MakeTinyEngine();
  DeltaIndex delta(engine.dict());
  const PhraseId qo = engine.dict().Find(std::vector<TermId>{
      engine.corpus().vocab().Lookup("query"),
      engine.corpus().vocab().Lookup("optimization")});
  ASSERT_NE(qo, kInvalidPhraseId);

  EXPECT_EQ(delta.DfDelta(qo), 0);
  auto doc = ToIds(engine.corpus(), "new query optimization article db");
  delta.AddDocument(doc);
  EXPECT_EQ(delta.DfDelta(qo), 1);
  delta.AddDocument(doc);
  EXPECT_EQ(delta.DfDelta(qo), 2);
  delta.RemoveDocument(doc);
  EXPECT_EQ(delta.DfDelta(qo), 1);
  EXPECT_EQ(delta.pending_updates(), 3u);
}

TEST(DeltaIndexTest, CoDeltaTracksWordPhrasePairs) {
  MiningEngine engine = testing::MakeTinyEngine();
  DeltaIndex delta(engine.dict());
  const Corpus& corpus = engine.corpus();
  const TermId db = corpus.vocab().Lookup("db");
  const TermId kernel = corpus.vocab().Lookup("kernel");
  const PhraseId qo = engine.dict().Find(std::vector<TermId>{
      corpus.vocab().Lookup("query"), corpus.vocab().Lookup("optimization")});

  auto doc = ToIds(corpus, "db query optimization again");
  delta.AddDocument(doc);
  EXPECT_EQ(delta.CoDelta(db, qo), 1);
  EXPECT_EQ(delta.CoDelta(kernel, qo), 0);
}

TEST(DeltaIndexTest, RepeatedPhraseInDocCountsOnce) {
  MiningEngine engine = testing::MakeTinyEngine();
  DeltaIndex delta(engine.dict());
  const Corpus& corpus = engine.corpus();
  const PhraseId qo = engine.dict().Find(std::vector<TermId>{
      corpus.vocab().Lookup("query"), corpus.vocab().Lookup("optimization")});
  auto doc =
      ToIds(corpus, "query optimization and query optimization twice db");
  delta.AddDocument(doc);
  EXPECT_EQ(delta.DfDelta(qo), 1);  // Document frequency, not occurrences.
}

TEST(DeltaIndexTest, AdjustedProbMatchesRebuiltIndex) {
  // Build base engine over the first 2/3 of a synthetic corpus; apply the
  // last third through the delta; compare SMJ scores against an engine
  // rebuilt over the whole corpus, restricted to base-dictionary phrases.
  Corpus base;
  Corpus complete;
  // Share one vocabulary by re-adding token text through the same intern
  // order: easiest is to copy documents by id into both corpora.
  // (Corpus is move-only, so build two fresh ones with identical content.)
  Corpus source = testing::MakeSmallSyntheticCorpus(300);
  const std::size_t cut = 200;
  for (DocId d = 0; d < source.size(); ++d) {
    std::vector<std::string> tokens;
    for (TermId t : source.doc(d).tokens) {
      tokens.push_back(source.vocab().TermText(t));
    }
    if (d < cut) base.AddTokenized(tokens);
    complete.AddTokenized(tokens);
  }

  MiningEngine::Options options;
  options.extractor.min_df = 4;
  MiningEngine base_engine = MiningEngine::Build(std::move(base), options);
  MiningEngine full_engine = MiningEngine::Build(std::move(complete), options);

  // Feed the tail documents into the delta (vocab ids from base corpus).
  DeltaIndex delta(base_engine.dict());
  for (DocId d = cut; d < source.size(); ++d) {
    std::vector<TermId> ids;
    for (TermId t : source.doc(d).tokens) {
      const TermId bt =
          base_engine.corpus().vocab().Lookup(source.vocab().TermText(t));
      if (bt != kInvalidTermId) ids.push_back(bt);
    }
    delta.AddDocument(ids);
  }

  // Pick a query from a moderately frequent term present in both engines.
  TermId query_term = kInvalidTermId;
  for (TermId t = 0; t < base_engine.corpus().vocab().size(); ++t) {
    if (base_engine.inverted().df(t) >= 20 &&
        base_engine.inverted().df(t) <= 120) {
      query_term = t;
      break;
    }
  }
  ASSERT_NE(query_term, kInvalidTermId);
  const std::string term_text =
      base_engine.corpus().vocab().TermText(query_term);

  Query base_query;
  base_query.terms = {query_term};
  base_query.op = QueryOperator::kAnd;

  MineOptions with_delta;
  with_delta.k = 10;
  with_delta.delta = &delta;
  MineResult adjusted = base_engine.Mine(base_query, Algorithm::kSmj,
                                         with_delta);

  // Reference: same probabilities from the rebuilt full engine.
  const TermId full_term = full_engine.corpus().vocab().Lookup(term_text);
  ASSERT_NE(full_term, kInvalidTermId);
  full_engine.EnsureWordLists(std::vector<TermId>{full_term});

  for (const MinedPhrase& p : adjusted.phrases) {
    // Map the phrase into the full engine's dictionary via its text tokens.
    std::vector<TermId> full_tokens;
    for (TermId t : base_engine.dict().info(p.phrase).tokens) {
      full_tokens.push_back(full_engine.corpus().vocab().Lookup(
          base_engine.corpus().vocab().TermText(t)));
    }
    const PhraseId full_phrase = full_engine.dict().Find(full_tokens);
    if (full_phrase == kInvalidPhraseId) continue;  // df drifted below floor
    double reference = 0.0;
    for (const ListEntry& e : full_engine.word_lists().list(full_term)) {
      if (e.phrase == full_phrase) {
        reference = e.prob;
        break;
      }
    }
    EXPECT_NEAR(p.interestingness, reference, 1e-9)
        << base_engine.PhraseText(p.phrase);
  }
}

TEST(DeltaIndexTest, RemovalCanZeroOutPhrase) {
  MiningEngine engine = testing::MakeTinyEngine();
  DeltaIndex delta(engine.dict());
  const Corpus& corpus = engine.corpus();
  const PhraseId hist =
      engine.dict().Unigram(corpus.vocab().Lookup("histograms"));
  ASSERT_EQ(hist, kInvalidPhraseId);  // df 1 < min_df 2: not a phrase.

  const PhraseId join = engine.dict().Unigram(corpus.vocab().Lookup("join"));
  ASSERT_NE(join, kInvalidPhraseId);
  // Remove both docs containing "join": df 2 -> 0.
  delta.RemoveDocument(
      std::vector<TermId>(corpus.doc(0).tokens.begin(),
                          corpus.doc(0).tokens.end()));
  delta.RemoveDocument(
      std::vector<TermId>(corpus.doc(2).tokens.begin(),
                          corpus.doc(2).tokens.end()));
  EXPECT_EQ(delta.DfDelta(join), -2);
  const TermId db = corpus.vocab().Lookup("db");
  EXPECT_DOUBLE_EQ(delta.AdjustedProb(db, join, 1.0), 0.0);
}

TEST(DeltaIndexTest, AdjustedProbClampedToUnitInterval) {
  MiningEngine engine = testing::MakeTinyEngine();
  DeltaIndex delta(engine.dict());
  const Corpus& corpus = engine.corpus();
  const PhraseId join = engine.dict().Unigram(corpus.vocab().Lookup("join"));
  const TermId db = corpus.vocab().Lookup("db");
  ASSERT_NE(join, kInvalidPhraseId);
  // Many co-occurring inserts cannot push the probability above 1.
  auto doc = ToIds(corpus, "db join stuff");
  for (int i = 0; i < 10; ++i) delta.AddDocument(doc);
  const double p = delta.AdjustedProb(db, join, 1.0);
  EXPECT_LE(p, 1.0);
  EXPECT_GT(p, 0.0);
}

}  // namespace
}  // namespace phrasemine
