// Chaos harness: replays the checked-in workload trace against a
// disk-backed service while failpoints inject device errors, device
// latency, and pool rejection storms. The invariants under fire:
//
//   1. no crash, no hang -- every future resolves (CTest's per-test
//      timeout is the hang backstop);
//   2. typed Status only -- a reply either serves a ranking (OK) or
//      refuses with DeadlineExceeded / ResourceExhausted / IOError /
//      Unavailable, never an exception or a silent wrong answer;
//   3. faults off, the replay is bitwise deterministic -- and after the
//      storm the service serves the exact pre-storm signatures again.

#include <chrono>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "service/service.h"
#include "shard/sharded_engine.h"
#include "subscribe/subscription_manager.h"
#include "test_util.h"
#include "testing/failpoint.h"
#include "workload/replay.h"
#include "workload/trace.h"

namespace phrasemine {
namespace {

using testing::MakeTinyCorpus;
using workload::ReplayOptions;
using workload::ReplayTrace;
using workload::TraceQuery;
using workload::WorkloadTrace;

WorkloadTrace LoadGoldenTrace() {
  auto trace = WorkloadTrace::ReadFile(
      std::string(PHRASEMINE_SOURCE_DIR) +
      "/bench/workload/goldens/tiny_zipf.trace");
  EXPECT_TRUE(trace.ok()) << trace.status().ToString();
  return std::move(trace).value();
}

/// Disk-backed tiny engine with everything spilled: every kNraDisk read
/// charges the simulated device, so the disk failpoints have maximal
/// surface.
MiningEngine MakeChaosEngine() {
  MiningEngineOptions options;
  options.extractor.min_df = 2;
  options.disk_backed = true;
  options.disk_resident_budget = 0;
  return MiningEngine::Build(MakeTinyCorpus(), options);
}

PhraseServiceOptions ChaosServiceOptions() {
  PhraseServiceOptions options;
  options.pool.num_threads = 2;
  // The result cache off keeps every replayed query on the execution
  // path (the determinism surface under test is the miners, not the
  // cache) and makes the three replay passes comparable event by event.
  options.enable_result_cache = false;
  options.admission.max_queue_depth = 16;
  return options;
}

bool IsTypedRefusal(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kIOError:
    case StatusCode::kCorruption:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

TEST(ChaosTest, StormYieldsTypedErrorsOnlyAndDeterminismSurvives) {
  failpoint::DisarmAll();
  MiningEngine engine = MakeChaosEngine();
  PhraseService service(&engine, ChaosServiceOptions());
  const WorkloadTrace trace = LoadGoldenTrace();
  ASSERT_FALSE(trace.queries.empty());

  ReplayOptions replay_options;
  replay_options.algorithm = Algorithm::kNraDisk;  // keep the device hot

  // Pre-storm baseline, twice: the replay itself is deterministic.
  const auto baseline = ReplayTrace(service, trace, replay_options);
  const auto baseline2 = ReplayTrace(service, trace, replay_options);
  EXPECT_EQ(baseline.signatures, baseline2.signatures);
  ASSERT_GT(baseline.queries - baseline.unresolved, 0u);

  // The storm: injected device read errors (after a grace period, for a
  // bounded number of hits), device latency on every read, and a brief
  // pool rejection storm. Deadlines on every third query race the slowed
  // device.
  failpoint::Arm("disk.read", {.error_code = StatusCode::kIOError,
                               .error_message = "injected device error",
                               .max_hits = 20,
                               .skip_first = 5});
  failpoint::Arm("disk.sim.read", {.delay_ms = 0.05});
  failpoint::Arm("pool.submit", {.error_code = StatusCode::kResourceExhausted,
                                 .error_message = "injected submit storm",
                                 .max_hits = 4,
                                 .skip_first = 3});
  std::size_t ok_replies = 0;
  std::size_t refused_replies = 0;
  std::vector<std::future<ServiceReply>> futures;
  std::size_t submitted = 0;
  for (const TraceQuery& event : trace.queries) {
    std::string text;
    for (const std::string& term : event.terms) {
      if (!text.empty()) text += ' ';
      text += term;
    }
    Result<Query> parsed = service.engine().ParseQuery(text, event.op);
    if (!parsed.ok()) continue;
    ServiceRequest request;
    request.query = std::move(parsed).value();
    request.options.k = event.k;
    request.algorithm = Algorithm::kNraDisk;
    if (submitted % 3 == 0) request.deadline_ms = 2.0;
    ++submitted;
    futures.push_back(service.Submit(std::move(request)));
  }
  for (auto& future : futures) {
    const ServiceReply reply = future.get();  // must resolve, never hang
    if (reply.status.ok()) {
      ++ok_replies;
    } else {
      EXPECT_TRUE(IsTypedRefusal(reply.status)) << reply.status.ToString();
      ++refused_replies;
    }
  }
  EXPECT_EQ(ok_replies + refused_replies, futures.size());
  // The injected device errors and the submit storm must have bitten at
  // least once (20 error hits + 4 rejections against a trace of
  // kNraDisk queries on a fully spilled tier).
  EXPECT_GE(refused_replies, 1u);
  EXPECT_GE(failpoint::HitCount("disk.read"), 1u);
  failpoint::DisarmAll();
  failpoint::ResetHitCounts();

  // Post-storm: the service is live and serves the exact pre-storm
  // bytes -- no fault leaked into any persistent structure.
  const auto post = ReplayTrace(service, trace, replay_options);
  EXPECT_EQ(post.signatures, baseline.signatures);
  ServiceStats stats = service.stats();
  EXPECT_GE(stats.shed + stats.deadline_exceeded, refused_replies > 0 ? 1u
                                                                      : 0u);
}

TEST(ChaosTest, ShardedStragglerDelaysButNeverCorrupts) {
  failpoint::DisarmAll();
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.engine.extractor.min_df = 2;
  ShardedEngine sharded =
      ShardedEngine::Build(MakeTinyCorpus(), std::move(options));
  PhraseService service(&sharded, ChaosServiceOptions());
  const WorkloadTrace trace = LoadGoldenTrace();

  ReplayOptions replay_options;  // planner-routed, in-memory fleet
  const auto baseline = ReplayTrace(service, trace, replay_options);

  // A straggling shard leg: every scatter to shard 1 sleeps. Slow is not
  // wrong -- the merged output must stay bitwise identical.
  failpoint::Arm("shard.scatter.1", {.delay_ms = 1.0});
  const auto straggling = ReplayTrace(service, trace, replay_options);
  failpoint::DisarmAll();
  EXPECT_EQ(straggling.signatures, baseline.signatures);

  // With a deadline racing the straggler, the refusal is typed; the
  // straggler disarmed, the same query serves normally.
  failpoint::Arm("shard.scatter.1", {.delay_ms = 20.0});
  auto q = sharded.shard(0).ParseQuery("query optimization",
                                       QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  ServiceRequest request{q.value(), MineOptions{}, Algorithm::kSmj};
  request.deadline_ms = 5.0;
  const ServiceReply raced = service.MineSync(request);
  failpoint::DisarmAll();
  EXPECT_TRUE(raced.status.ok() ||
              raced.status.code() == StatusCode::kDeadlineExceeded)
      << raced.status.ToString();
  const ServiceReply after = service.MineSync(
      ServiceRequest{q.value(), MineOptions{}, Algorithm::kSmj});
  EXPECT_TRUE(after.status.ok()) << after.status.ToString();
}

TEST(ChaosTest, SlowAndFailingSubscriberNeverBlocksOrCorruptsIngest) {
  failpoint::DisarmAll();
  failpoint::ResetHitCounts();
  MiningEngineOptions engine_options;
  engine_options.extractor.min_df = 2;
  MiningEngine engine = MiningEngine::Build(MakeTinyCorpus(), engine_options);
  PhraseServiceOptions service_options = ChaosServiceOptions();
  // Rebuild-under-subscription is covered by the differential replay
  // tests; keeping it out of this storm makes the final epoch exact and
  // the snapshot-vs-fresh-mine comparison race-free.
  service_options.enable_auto_rebuild = false;
  PhraseService service(&engine, service_options);

  // Every notification stalls 100 ms on the manager's worker and then
  // fails; armed before Subscribe so even the bootstrap publishes run
  // into it. Six hits bound the total injected stall at 600 ms.
  failpoint::Arm("subscribe.notify",
                 {.error_code = StatusCode::kUnavailable,
                  .error_message = "injected subscriber fault",
                  .delay_ms = 100.0,
                  .max_hits = 6});

  SubscriptionRequest first;
  first.terms = {"query"};
  first.k = 5;
  SubscriptionRequest second;
  second.terms = {"optimization"};
  second.k = 4;
  auto first_id = service.Subscribe(first);
  auto second_id = service.Subscribe(second);
  ASSERT_TRUE(first_id.ok());
  ASSERT_TRUE(second_id.ok());

  // The ingest storm races the stalled subscriber. The listener hook only
  // enqueues an event, so ingest latency must not see the injected
  // 600 ms: if the notify stall (or the notify failure's unwind) held any
  // ingest-path lock, this loop would serialize behind it.
  constexpr std::size_t kBatches = 12;
  const auto ingest_start = std::chrono::steady_clock::now();
  for (std::size_t b = 0; b < kBatches; ++b) {
    UpdateBatch batch;
    UpdateDoc doc;
    doc.tokens = {"query", "optimization", "chaos", "storm"};
    batch.inserts.push_back(std::move(doc));
    service.IngestBatch(batch);
  }
  const double ingest_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - ingest_start)
          .count();
  EXPECT_LT(ingest_ms, 300.0)
      << "ingest serialized behind the stalled subscriber";

  // The serving path is equally unaffected while the subscriber storm is
  // still draining.
  auto parsed = service.engine().ParseQuery("query", QueryOperator::kAnd);
  ASSERT_TRUE(parsed.ok());
  ServiceRequest request;
  request.query = parsed.value();
  request.options.k = 5;
  const ServiceReply reply = service.MineSync(request);
  EXPECT_TRUE(reply.status.ok()) << reply.status.ToString();

  // Drain the worker (it sleeps through the remaining injected stalls),
  // then prove no corruption: published state is exact, at the final
  // epoch, and bitwise equal to a fresh re-mine.
  service.subscriptions()->Flush();
  EXPECT_GE(failpoint::HitCount("subscribe.notify"), 2u);
  failpoint::DisarmAll();
  failpoint::ResetHitCounts();
  UpdateBatch clean;
  UpdateDoc clean_doc;
  clean_doc.tokens = {"query", "optimization", "recovery"};
  clean.inserts.push_back(std::move(clean_doc));
  service.IngestBatch(clean);
  service.subscriptions()->Flush();

  const MetricsSnapshot metrics = service.metrics_snapshot();
  EXPECT_GE(metrics.counter("subscribe_dropped_total"), 2u)
      << "failed notifications must be dropped, not retried into a wedge";

  const struct {
    uint64_t id;
    std::string term;
    std::size_t k;
  } subs[] = {{first_id.value(), "query", first.k},
              {second_id.value(), "optimization", second.k}};
  for (const auto& sub : subs) {
    auto snapshot = service.SubscriptionSnapshot(sub.id);
    ASSERT_TRUE(snapshot.ok());
    EXPECT_TRUE(snapshot.value().exact);
    EXPECT_EQ(snapshot.value().epoch, kBatches + 1);
    Query query =
        engine.ParseQuery(sub.term, QueryOperator::kAnd).value();
    MineOptions mine_options;
    mine_options.k = sub.k;
    MineResult fresh = engine.Mine(query, Algorithm::kSmj, mine_options);
    EXPECT_EQ(snapshot.value().epoch, fresh.epoch);
    ASSERT_EQ(snapshot.value().topk.size(), fresh.phrases.size());
    for (std::size_t i = 0; i < fresh.phrases.size(); ++i) {
      EXPECT_EQ(snapshot.value().topk[i].phrase, fresh.phrases[i].phrase);
      EXPECT_EQ(snapshot.value().topk[i].score, fresh.phrases[i].score);
    }
    // Poll still resolves after the storm (possibly empty: the dropped
    // notifications are gone by design, not queued).
    EXPECT_TRUE(service.PollSubscription(sub.id, 8, 0.0).ok());
  }
}

}  // namespace
}  // namespace phrasemine
