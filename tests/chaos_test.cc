// Chaos harness: replays the checked-in workload trace against a
// disk-backed service while failpoints inject device errors, device
// latency, and pool rejection storms. The invariants under fire:
//
//   1. no crash, no hang -- every future resolves (CTest's per-test
//      timeout is the hang backstop);
//   2. typed Status only -- a reply either serves a ranking (OK) or
//      refuses with DeadlineExceeded / ResourceExhausted / IOError /
//      Unavailable, never an exception or a silent wrong answer;
//   3. faults off, the replay is bitwise deterministic -- and after the
//      storm the service serves the exact pre-storm signatures again.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "service/service.h"
#include "shard/sharded_engine.h"
#include "test_util.h"
#include "testing/failpoint.h"
#include "workload/replay.h"
#include "workload/trace.h"

namespace phrasemine {
namespace {

using testing::MakeTinyCorpus;
using workload::ReplayOptions;
using workload::ReplayTrace;
using workload::TraceQuery;
using workload::WorkloadTrace;

WorkloadTrace LoadGoldenTrace() {
  auto trace = WorkloadTrace::ReadFile(
      std::string(PHRASEMINE_SOURCE_DIR) +
      "/bench/workload/goldens/tiny_zipf.trace");
  EXPECT_TRUE(trace.ok()) << trace.status().ToString();
  return std::move(trace).value();
}

/// Disk-backed tiny engine with everything spilled: every kNraDisk read
/// charges the simulated device, so the disk failpoints have maximal
/// surface.
MiningEngine MakeChaosEngine() {
  MiningEngineOptions options;
  options.extractor.min_df = 2;
  options.disk_backed = true;
  options.disk_resident_budget = 0;
  return MiningEngine::Build(MakeTinyCorpus(), options);
}

PhraseServiceOptions ChaosServiceOptions() {
  PhraseServiceOptions options;
  options.pool.num_threads = 2;
  // The result cache off keeps every replayed query on the execution
  // path (the determinism surface under test is the miners, not the
  // cache) and makes the three replay passes comparable event by event.
  options.enable_result_cache = false;
  options.admission.max_queue_depth = 16;
  return options;
}

bool IsTypedRefusal(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kIOError:
    case StatusCode::kCorruption:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

TEST(ChaosTest, StormYieldsTypedErrorsOnlyAndDeterminismSurvives) {
  failpoint::DisarmAll();
  MiningEngine engine = MakeChaosEngine();
  PhraseService service(&engine, ChaosServiceOptions());
  const WorkloadTrace trace = LoadGoldenTrace();
  ASSERT_FALSE(trace.queries.empty());

  ReplayOptions replay_options;
  replay_options.algorithm = Algorithm::kNraDisk;  // keep the device hot

  // Pre-storm baseline, twice: the replay itself is deterministic.
  const auto baseline = ReplayTrace(service, trace, replay_options);
  const auto baseline2 = ReplayTrace(service, trace, replay_options);
  EXPECT_EQ(baseline.signatures, baseline2.signatures);
  ASSERT_GT(baseline.queries - baseline.unresolved, 0u);

  // The storm: injected device read errors (after a grace period, for a
  // bounded number of hits), device latency on every read, and a brief
  // pool rejection storm. Deadlines on every third query race the slowed
  // device.
  failpoint::Arm("disk.read", {.error_code = StatusCode::kIOError,
                               .error_message = "injected device error",
                               .max_hits = 20,
                               .skip_first = 5});
  failpoint::Arm("disk.sim.read", {.delay_ms = 0.05});
  failpoint::Arm("pool.submit", {.error_code = StatusCode::kResourceExhausted,
                                 .error_message = "injected submit storm",
                                 .max_hits = 4,
                                 .skip_first = 3});
  std::size_t ok_replies = 0;
  std::size_t refused_replies = 0;
  std::vector<std::future<ServiceReply>> futures;
  std::size_t submitted = 0;
  for (const TraceQuery& event : trace.queries) {
    std::string text;
    for (const std::string& term : event.terms) {
      if (!text.empty()) text += ' ';
      text += term;
    }
    Result<Query> parsed = service.engine().ParseQuery(text, event.op);
    if (!parsed.ok()) continue;
    ServiceRequest request;
    request.query = std::move(parsed).value();
    request.options.k = event.k;
    request.algorithm = Algorithm::kNraDisk;
    if (submitted % 3 == 0) request.deadline_ms = 2.0;
    ++submitted;
    futures.push_back(service.Submit(std::move(request)));
  }
  for (auto& future : futures) {
    const ServiceReply reply = future.get();  // must resolve, never hang
    if (reply.status.ok()) {
      ++ok_replies;
    } else {
      EXPECT_TRUE(IsTypedRefusal(reply.status)) << reply.status.ToString();
      ++refused_replies;
    }
  }
  EXPECT_EQ(ok_replies + refused_replies, futures.size());
  // The injected device errors and the submit storm must have bitten at
  // least once (20 error hits + 4 rejections against a trace of
  // kNraDisk queries on a fully spilled tier).
  EXPECT_GE(refused_replies, 1u);
  EXPECT_GE(failpoint::HitCount("disk.read"), 1u);
  failpoint::DisarmAll();
  failpoint::ResetHitCounts();

  // Post-storm: the service is live and serves the exact pre-storm
  // bytes -- no fault leaked into any persistent structure.
  const auto post = ReplayTrace(service, trace, replay_options);
  EXPECT_EQ(post.signatures, baseline.signatures);
  ServiceStats stats = service.stats();
  EXPECT_GE(stats.shed + stats.deadline_exceeded, refused_replies > 0 ? 1u
                                                                      : 0u);
}

TEST(ChaosTest, ShardedStragglerDelaysButNeverCorrupts) {
  failpoint::DisarmAll();
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.engine.extractor.min_df = 2;
  ShardedEngine sharded =
      ShardedEngine::Build(MakeTinyCorpus(), std::move(options));
  PhraseService service(&sharded, ChaosServiceOptions());
  const WorkloadTrace trace = LoadGoldenTrace();

  ReplayOptions replay_options;  // planner-routed, in-memory fleet
  const auto baseline = ReplayTrace(service, trace, replay_options);

  // A straggling shard leg: every scatter to shard 1 sleeps. Slow is not
  // wrong -- the merged output must stay bitwise identical.
  failpoint::Arm("shard.scatter.1", {.delay_ms = 1.0});
  const auto straggling = ReplayTrace(service, trace, replay_options);
  failpoint::DisarmAll();
  EXPECT_EQ(straggling.signatures, baseline.signatures);

  // With a deadline racing the straggler, the refusal is typed; the
  // straggler disarmed, the same query serves normally.
  failpoint::Arm("shard.scatter.1", {.delay_ms = 20.0});
  auto q = sharded.shard(0).ParseQuery("query optimization",
                                       QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  ServiceRequest request{q.value(), MineOptions{}, Algorithm::kSmj};
  request.deadline_ms = 5.0;
  const ServiceReply raced = service.MineSync(request);
  failpoint::DisarmAll();
  EXPECT_TRUE(raced.status.ok() ||
              raced.status.code() == StatusCode::kDeadlineExceeded)
      << raced.status.ToString();
  const ServiceReply after = service.MineSync(
      ServiceRequest{q.value(), MineOptions{}, Algorithm::kSmj});
  EXPECT_TRUE(after.status.ok()) << after.status.ToString();
}

}  // namespace
}  // namespace phrasemine
