#include <cstdio>

#include "gtest/gtest.h"
#include "text/corpus.h"
#include "text/synthetic.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace phrasemine {
namespace {

TEST(TokenizerTest, SplitsOnWhitespaceAndPunctuation) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("Hello, world!"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizerTest, Lowercases) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("QUERY Optimization"),
            (std::vector<std::string>{"query", "optimization"}));
}

TEST(TokenizerTest, KeepsInnerApostrophes) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("taiwan's reserves"),
            (std::vector<std::string>{"taiwan's", "reserves"}));
}

TEST(TokenizerTest, StripsEdgeApostrophes) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("'quoted' words"),
            (std::vector<std::string>{"quoted", "words"}));
}

TEST(TokenizerTest, NumbersAreTokens) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("year 1997 sigmod"),
            (std::vector<std::string>{"year", "1997", "sigmod"}));
}

TEST(TokenizerTest, EmptyInput) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("  .,;! ").empty());
}

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary v;
  const TermId a = v.Intern("word");
  const TermId b = v.Intern("word");
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.size(), 1u);
}

TEST(VocabularyTest, LookupMissingReturnsInvalid) {
  Vocabulary v;
  EXPECT_EQ(v.Lookup("ghost"), kInvalidTermId);
}

TEST(VocabularyTest, RoundTripsText) {
  Vocabulary v;
  const TermId id = v.Intern("reserves");
  EXPECT_EQ(v.TermText(id), "reserves");
  EXPECT_EQ(v.Lookup("reserves"), id);
}

TEST(VocabularyTest, SerializationRoundTrip) {
  Vocabulary v;
  v.Intern("alpha");
  v.Intern("beta");
  v.Intern("topic:3");
  BinaryWriter w;
  v.Serialize(&w);
  BinaryReader r(w.TakeBuffer());
  auto loaded = Vocabulary::Deserialize(&r);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(loaded.value().Lookup("beta"), v.Lookup("beta"));
  EXPECT_EQ(loaded.value().TermText(2), "topic:3");
}

TEST(CorpusTest, AddTextTokenizes) {
  Corpus c;
  const DocId d = c.AddText("The quick brown fox");
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.doc(d).tokens.size(), 4u);
  EXPECT_EQ(c.vocab().size(), 4u);
}

TEST(CorpusTest, SharedVocabularyAcrossDocs) {
  Corpus c;
  c.AddText("apple banana");
  c.AddText("banana cherry");
  EXPECT_EQ(c.vocab().size(), 3u);
  EXPECT_EQ(c.doc(0).tokens[1], c.doc(1).tokens[0]);
}

TEST(CorpusTest, FacetsInterned) {
  Corpus c;
  c.AddTokenized({"some", "words"}, {"topic:db", "year:1997"});
  EXPECT_EQ(c.doc(0).facets.size(), 2u);
  EXPECT_NE(c.vocab().Lookup("topic:db"), kInvalidTermId);
}

TEST(CorpusTest, TotalTokens) {
  Corpus c;
  c.AddText("one two three");
  c.AddText("four five");
  EXPECT_EQ(c.TotalTokens(), 5u);
}

TEST(CorpusTest, SerializationRoundTrip) {
  Corpus c;
  c.AddTokenized({"query", "optimization"}, {"topic:db"});
  c.AddTokenized({"kernel", "systems"});
  BinaryWriter w;
  c.Serialize(&w);
  BinaryReader r(w.TakeBuffer());
  auto loaded = Corpus::Deserialize(&r);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value().doc(0).tokens, c.doc(0).tokens);
  EXPECT_EQ(loaded.value().doc(0).facets, c.doc(0).facets);
  EXPECT_EQ(loaded.value().vocab().Lookup("kernel"),
            c.vocab().Lookup("kernel"));
}

TEST(CorpusTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pm_corpus_test.bin";
  Corpus c;
  c.AddText("persistent corpus data");
  ASSERT_TRUE(c.SaveToFile(path).ok());
  auto loaded = Corpus::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value().TotalTokens(), 3u);
  std::remove(path.c_str());
}

TEST(SyntheticTest, GeneratesRequestedDocCount) {
  SyntheticCorpusOptions options;
  options.num_docs = 50;
  options.num_topics = 3;
  options.topic_vocab = 40;
  options.shared_vocab = 60;
  options.num_stopwords = 10;
  options.phrases_per_topic = 5;
  options.min_doc_tokens = 20;
  options.max_doc_tokens = 40;
  SyntheticCorpusGenerator gen(options);
  Corpus c = gen.Generate();
  EXPECT_EQ(c.size(), 50u);
  for (DocId d = 0; d < c.size(); ++d) {
    EXPECT_GE(c.doc(d).tokens.size(), 20u);
  }
}

TEST(SyntheticTest, DeterministicForSameSeed) {
  SyntheticCorpusOptions options;
  options.num_docs = 20;
  options.num_topics = 2;
  options.topic_vocab = 30;
  options.shared_vocab = 50;
  options.num_stopwords = 8;
  options.phrases_per_topic = 4;
  options.min_doc_tokens = 15;
  options.max_doc_tokens = 30;

  SyntheticCorpusGenerator g1(options);
  SyntheticCorpusGenerator g2(options);
  Corpus a = g1.Generate();
  Corpus b = g2.Generate();
  ASSERT_EQ(a.size(), b.size());
  for (DocId d = 0; d < a.size(); ++d) {
    EXPECT_EQ(a.doc(d).tokens, b.doc(d).tokens) << "doc " << d;
  }
  EXPECT_EQ(g1.seed_phrases(), g2.seed_phrases());
}

TEST(SyntheticTest, SeedPhrasesAppearInCorpus) {
  SyntheticCorpusOptions options;
  options.num_docs = 200;
  options.num_topics = 2;
  options.topic_vocab = 40;
  options.shared_vocab = 60;
  options.num_stopwords = 10;
  options.phrases_per_topic = 6;
  options.min_doc_tokens = 30;
  options.max_doc_tokens = 60;
  options.phrase_rate = 0.15;
  SyntheticCorpusGenerator gen(options);
  Corpus c = gen.Generate();

  // The most popular seed phrase of topic 0 must occur somewhere.
  const auto& phrase = gen.seed_phrases()[0];
  std::vector<TermId> ids;
  for (const auto& w : phrase) {
    const TermId t = c.vocab().Lookup(w);
    ASSERT_NE(t, kInvalidTermId) << w;
    ids.push_back(t);
  }
  bool found = false;
  for (DocId d = 0; d < c.size() && !found; ++d) {
    const auto& tokens = c.doc(d).tokens;
    if (tokens.size() < ids.size()) continue;
    for (std::size_t i = 0; i + ids.size() <= tokens.size(); ++i) {
      if (std::equal(ids.begin(), ids.end(), tokens.begin() + i)) {
        found = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(SyntheticTest, FacetsAttached) {
  SyntheticCorpusOptions options;
  options.num_docs = 10;
  options.num_topics = 2;
  options.topic_vocab = 20;
  options.shared_vocab = 30;
  options.num_stopwords = 5;
  options.phrases_per_topic = 3;
  options.min_doc_tokens = 15;
  options.max_doc_tokens = 25;
  options.add_facets = true;
  SyntheticCorpusGenerator gen(options);
  Corpus c = gen.Generate();
  for (DocId d = 0; d < c.size(); ++d) {
    EXPECT_EQ(c.doc(d).facets.size(), 2u);
  }
  EXPECT_NE(c.vocab().Lookup("topic:0"), kInvalidTermId);
}

TEST(SyntheticTest, SeedPhraseLengthsWithinPaperCap) {
  SyntheticCorpusOptions options;
  options.num_docs = 5;
  options.num_topics = 4;
  options.topic_vocab = 30;
  options.shared_vocab = 40;
  options.num_stopwords = 6;
  options.phrases_per_topic = 50;
  options.min_doc_tokens = 15;
  options.max_doc_tokens = 25;
  SyntheticCorpusGenerator gen(options);
  (void)gen.Generate();
  for (const auto& phrase : gen.seed_phrases()) {
    EXPECT_GE(phrase.size(), 2u);
    EXPECT_LE(phrase.size(), 6u);
  }
}

TEST(SyntheticTest, ReutersPresetShape) {
  const SyntheticCorpusOptions o = SyntheticCorpusGenerator::ReutersLike();
  EXPECT_EQ(o.num_docs, 21578u);
  EXPECT_GE(o.num_topics * o.topic_vocab + o.shared_vocab + o.num_stopwords,
            14000u);
}

TEST(SyntheticTest, PubmedPresetScales) {
  const SyntheticCorpusOptions o = SyntheticCorpusGenerator::PubmedLike(1000);
  EXPECT_EQ(o.num_docs, 1000u);
}

}  // namespace
}  // namespace phrasemine
