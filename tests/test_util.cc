#include "test_util.h"

#include "text/synthetic.h"

namespace phrasemine::testing {

Corpus MakeTinyCorpus() {
  Corpus corpus;
  // "the of" appears in every document; "query optimization" only in the
  // database documents; "join order" in two of them.
  corpus.AddText("the of query optimization improves join order in the of db");
  corpus.AddText("query optimization the of relies on cost models db");
  corpus.AddText("the of join order search is query optimization core db");
  corpus.AddText("db the of query optimization with histograms");
  corpus.AddText("the of operating systems schedule threads kernel");
  corpus.AddText("kernel the of systems code uses locks");
  corpus.AddText("the of scheduling in kernel systems");
  corpus.AddText("systems kernel the of page tables");
  return corpus;
}

Corpus MakeSmallSyntheticCorpus(std::size_t num_docs) {
  SyntheticCorpusOptions options;
  options.seed = 1234;
  options.num_docs = num_docs;
  options.num_topics = 6;
  options.topic_vocab = 120;
  options.shared_vocab = 400;
  options.num_stopwords = 30;
  options.phrases_per_topic = 20;
  options.min_doc_tokens = 40;
  options.max_doc_tokens = 120;
  SyntheticCorpusGenerator generator(options);
  return generator.Generate();
}

MiningEngine MakeTinyEngine() {
  MiningEngine::Options options;
  options.extractor.min_df = 2;
  options.extractor.max_phrase_len = 4;
  return MiningEngine::Build(MakeTinyCorpus(), options);
}

MiningEngine MakeSmallEngine(std::size_t num_docs) {
  MiningEngine::Options options;
  options.extractor.min_df = 5;
  return MiningEngine::Build(MakeSmallSyntheticCorpus(num_docs), options);
}

std::vector<PhraseId> Ids(const MineResult& result) {
  std::vector<PhraseId> ids;
  ids.reserve(result.phrases.size());
  for (const MinedPhrase& p : result.phrases) ids.push_back(p.phrase);
  return ids;
}

std::vector<std::pair<PhraseId, double>> RankedSignature(
    const MineResult& result) {
  std::vector<std::pair<PhraseId, double>> sig;
  sig.reserve(result.phrases.size());
  for (const MinedPhrase& p : result.phrases) {
    sig.emplace_back(p.phrase, p.score);
  }
  return sig;
}

std::vector<std::string> Rendered(const MiningEngine& engine,
                                  const MineResult& result) {
  std::vector<std::string> out;
  for (const MinedPhrase& p : result.phrases) {
    out.push_back(engine.PhraseText(p.phrase) + ":" +
                  std::to_string(p.score));
  }
  return out;
}

}  // namespace phrasemine::testing
