// Property tests for the hot-path kernel layer (core/kernels.h): the
// galloping AND join, the block OR merge, the sorted-probe gather and the
// doc-id intersection/union kernels are pitted against naive reference
// merges across adversarial list shapes -- empty lists, one-element lists,
// 1:1000 length skew, all-equal ids -- and the kernel-path SMJ miner is
// differentially compared against the scalar reference path, with and
// without delta overlays and under partial-list fractions.

#include "core/kernels.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "eval/query_gen.h"
#include "index/inverted_index.h"
#include "test_util.h"

namespace phrasemine {
namespace {

// --- List generators ---------------------------------------------------------

/// Sorted unique ids drawn from [0, universe), with random probs in (0, 1].
std::vector<ListEntry> RandomList(Rng& rng, std::size_t size,
                                  PhraseId universe) {
  std::set<PhraseId> ids;
  while (ids.size() < size && ids.size() < universe) {
    ids.insert(static_cast<PhraseId>(rng.NextBelow(universe)));
  }
  std::vector<ListEntry> list;
  list.reserve(ids.size());
  for (PhraseId id : ids) {
    list.push_back(ListEntry{id, 1.0 - rng.NextDouble()});
  }
  return list;
}

struct Emitted {
  PhraseId id;
  std::vector<double> probs;
  uint32_t mask;
  bool operator==(const Emitted&) const = default;
};

/// Naive reference k-way merge: every distinct id in increasing order with
/// per-list probs (0.0 where absent); `require_all` keeps only ids present
/// in every list (the AND contract).
std::vector<Emitted> ReferenceMerge(
    const std::vector<std::vector<ListEntry>>& lists, bool require_all) {
  std::map<PhraseId, Emitted> by_id;
  for (std::size_t i = 0; i < lists.size(); ++i) {
    for (const ListEntry& e : lists[i]) {
      auto [it, inserted] = by_id.try_emplace(
          e.phrase,
          Emitted{e.phrase, std::vector<double>(lists.size(), 0.0), 0});
      it->second.probs[i] = e.prob;
      it->second.mask |= 1u << i;
    }
  }
  std::vector<Emitted> out;
  const uint32_t full =
      lists.size() >= 32 ? ~0u : ((1u << lists.size()) - 1);
  for (auto& [id, e] : by_id) {
    if (require_all && e.mask != full) continue;
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<Emitted> RunKernel(const std::vector<std::vector<ListEntry>>& raw,
                               bool and_join) {
  std::vector<SoABlockList> soa;
  soa.reserve(raw.size());
  for (const auto& l : raw) {
    soa.push_back(SoABlockList::FromIdOrdered(l));
  }
  std::vector<const SoABlockList*> ptrs;
  for (const auto& l : soa) ptrs.push_back(&l);
  std::vector<Emitted> out;
  auto emit = [&](PhraseId id, const double* probs, uint32_t mask) {
    out.push_back(Emitted{
        id, std::vector<double>(probs, probs + raw.size()), mask});
  };
  if (and_join) {
    kernels::GallopingAndJoin(ptrs, emit);
  } else {
    kernels::BlockOrMerge(ptrs, emit);
  }
  return out;
}

void ExpectMergesMatch(const std::vector<std::vector<ListEntry>>& lists) {
  EXPECT_EQ(RunKernel(lists, /*and_join=*/true),
            ReferenceMerge(lists, /*require_all=*/true));
  EXPECT_EQ(RunKernel(lists, /*and_join=*/false),
            ReferenceMerge(lists, /*require_all=*/false));
}

// --- Merge kernels vs naive reference ---------------------------------------

TEST(KernelMergeTest, RandomizedShapes) {
  Rng rng(7);
  for (int round = 0; round < 40; ++round) {
    const std::size_t r = 1 + rng.NextBelow(5);
    const PhraseId universe =
        static_cast<PhraseId>(16 + rng.NextBelow(4000));
    std::vector<std::vector<ListEntry>> lists;
    for (std::size_t i = 0; i < r; ++i) {
      lists.push_back(
          RandomList(rng, rng.NextBelow(universe + 1), universe));
    }
    ExpectMergesMatch(lists);
  }
}

TEST(KernelMergeTest, EmptyAndSingleElementLists) {
  Rng rng(11);
  const std::vector<ListEntry> empty;
  const std::vector<ListEntry> one{{42, 0.5}};
  const std::vector<ListEntry> other{{41, 0.25}, {42, 0.75}, {43, 0.125}};
  ExpectMergesMatch({empty});
  ExpectMergesMatch({empty, empty});
  ExpectMergesMatch({one});
  ExpectMergesMatch({one, empty});
  ExpectMergesMatch({empty, one, other});
  ExpectMergesMatch({one, other});
  ExpectMergesMatch({other, RandomList(rng, 300, 400), empty});
}

TEST(KernelMergeTest, SkewedLengths1To1000) {
  Rng rng(13);
  for (int round = 0; round < 8; ++round) {
    std::vector<std::vector<ListEntry>> lists;
    lists.push_back(RandomList(rng, 5, 100000));
    lists.push_back(RandomList(rng, 5000, 100000));
    lists.push_back(RandomList(rng, 5000, 100000));
    // Force some intersection so the AND side is non-trivial.
    for (const ListEntry& e : lists[0]) {
      for (std::size_t i = 1; i < lists.size(); ++i) {
        if (rng.NextBool(0.5)) continue;
        auto& l = lists[i];
        auto pos = std::lower_bound(
            l.begin(), l.end(), e.phrase,
            [](const ListEntry& a, PhraseId p) { return a.phrase < p; });
        if (pos == l.end() || pos->phrase != e.phrase) {
          l.insert(pos, ListEntry{e.phrase, 0.5});
        }
      }
    }
    ExpectMergesMatch(lists);
  }
}

TEST(KernelMergeTest, AllEqualIds) {
  std::vector<ListEntry> same;
  for (PhraseId p = 0; p < 700; ++p) same.push_back({p * 3, 0.25});
  ExpectMergesMatch({same, same});
  ExpectMergesMatch({same, same, same, same});
}

// --- SkipTo / gather ---------------------------------------------------------

TEST(KernelSkipToTest, MatchesLowerBound) {
  Rng rng(17);
  const std::vector<ListEntry> entries = RandomList(rng, 3000, 50000);
  const SoABlockList soa = SoABlockList::FromIdOrdered(entries);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t from = rng.NextBelow(entries.size() + 1);
    const PhraseId target = static_cast<PhraseId>(rng.NextBelow(51000));
    const auto expect = static_cast<std::size_t>(
        std::lower_bound(entries.begin() + static_cast<std::ptrdiff_t>(from),
                         entries.end(), target,
                         [](const ListEntry& e, PhraseId t) {
                           return e.phrase < t;
                         }) -
        entries.begin());
    EXPECT_EQ(soa.SkipTo(from, target), expect) << from << " " << target;
  }
}

TEST(KernelGatherTest, MatchesLinearLookup) {
  Rng rng(19);
  for (int round = 0; round < 10; ++round) {
    const std::vector<ListEntry> entries =
        RandomList(rng, rng.NextBelow(2000), 20000);
    const SoABlockList soa = SoABlockList::FromIdOrdered(entries);
    std::set<PhraseId> probe_set;
    for (int i = 0; i < 300; ++i) {
      probe_set.insert(static_cast<PhraseId>(rng.NextBelow(21000)));
    }
    const std::vector<PhraseId> probes(probe_set.begin(), probe_set.end());
    std::vector<double> got(probes.size(), -1.0);
    kernels::GatherProbes(soa, probes, got.data());
    for (std::size_t i = 0; i < probes.size(); ++i) {
      double expect = 0.0;
      for (const ListEntry& e : entries) {
        if (e.phrase == probes[i]) expect = e.prob;
      }
      EXPECT_EQ(got[i], expect) << "probe " << probes[i];
    }
  }
}

// --- Doc-id kernels vs InvertedIndex reference -------------------------------

TEST(KernelDocIdTest, IntersectAndUnionMatchInvertedIndex) {
  Rng rng(23);
  for (int round = 0; round < 30; ++round) {
    const std::size_t r = 1 + rng.NextBelow(5);
    const PhraseId universe = static_cast<PhraseId>(8 + rng.NextBelow(3000));
    std::vector<std::vector<DocId>> docs(r);
    for (auto& list : docs) {
      std::set<DocId> ids;
      const std::size_t size = rng.NextBelow(universe + 1);
      while (ids.size() < size) {
        ids.insert(static_cast<DocId>(rng.NextBelow(universe)));
      }
      list.assign(ids.begin(), ids.end());
    }
    std::vector<const std::vector<DocId>*> ptrs;
    for (const auto& l : docs) ptrs.push_back(&l);
    EXPECT_EQ(kernels::IntersectSorted(ptrs), InvertedIndex::Intersect(ptrs));
    EXPECT_EQ(kernels::UnionSorted(ptrs), InvertedIndex::Union(ptrs));
  }
  // Degenerate shapes.
  const std::vector<DocId> empty;
  const std::vector<DocId> one{7};
  std::vector<const std::vector<DocId>*> shapes{&empty, &one};
  EXPECT_EQ(kernels::IntersectSorted(shapes), InvertedIndex::Intersect(shapes));
  EXPECT_EQ(kernels::UnionSorted(shapes), InvertedIndex::Union(shapes));
  EXPECT_TRUE(kernels::IntersectSorted({}).empty());
  EXPECT_TRUE(kernels::UnionSorted({}).empty());
}

// --- Kernel-path SMJ vs scalar reference, bitwise ----------------------------

void ExpectBitwiseEqual(const MineResult& kernel, const MineResult& scalar) {
  ASSERT_EQ(kernel.phrases.size(), scalar.phrases.size());
  for (std::size_t i = 0; i < kernel.phrases.size(); ++i) {
    EXPECT_EQ(kernel.phrases[i].phrase, scalar.phrases[i].phrase)
        << "rank " << i;
    // Bitwise score identity, tie order included -- EXPECT_EQ on doubles,
    // not EXPECT_NEAR.
    EXPECT_EQ(kernel.phrases[i].score, scalar.phrases[i].score) << i;
    EXPECT_EQ(kernel.phrases[i].interestingness,
              scalar.phrases[i].interestingness)
        << i;
  }
}

TEST(KernelSmjDifferentialTest, MatchesScalarAcrossFractionsAndOperators) {
  MiningEngine engine = testing::MakeSmallEngine(500);
  QuerySetGenerator qgen(QueryGenOptions{.seed = 5, .num_queries = 8});
  auto queries =
      qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  ASSERT_FALSE(queries.empty());
  for (const double fraction : {1.0, 0.5, 0.2}) {
    engine.SetSmjFraction(fraction);
    for (Query q : queries) {
      for (const QueryOperator op :
           {QueryOperator::kAnd, QueryOperator::kOr}) {
        q.op = op;
        for (const OrExpansionOrder order :
             {OrExpansionOrder::kFirstOrder, OrExpansionOrder::kFull}) {
          MineOptions kernel_options{.k = 10, .or_order = order};
          MineOptions scalar_options = kernel_options;
          scalar_options.use_kernels = false;
          ExpectBitwiseEqual(engine.Mine(q, Algorithm::kSmj, kernel_options),
                             engine.Mine(q, Algorithm::kSmj, scalar_options));
        }
      }
    }
  }
}

TEST(KernelSmjDifferentialTest, MatchesScalarUnderDeltaOverlay) {
  MiningEngine engine = testing::MakeSmallEngine(400);
  QuerySetGenerator qgen(QueryGenOptions{.seed = 29, .num_queries = 6});
  auto queries =
      qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  ASSERT_FALSE(queries.empty());

  // Build an overlay with inserts that reuse corpus vocabulary (new
  // co-occurrences of base phrases) and a few deletes.
  UpdateBatch batch;
  for (DocId d = 0; d < 30; ++d) {
    UpdateDoc doc;
    const Document& src = engine.corpus().doc(d % engine.corpus().size());
    for (TermId t : src.tokens) {
      doc.tokens.push_back(
          std::string(engine.corpus().vocab().TermText(t)));
    }
    std::reverse(doc.tokens.begin(), doc.tokens.end());
    batch.inserts.push_back(std::move(doc));
  }
  batch.deletes = {1, 3, 5};
  (void)engine.ApplyUpdate(batch);

  for (Query q : queries) {
    for (const QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
      q.op = op;
      MineOptions kernel_options{.k = 10};
      MineOptions scalar_options = kernel_options;
      scalar_options.use_kernels = false;
      const MineResult kernel = engine.Mine(q, Algorithm::kSmj, kernel_options);
      const MineResult scalar = engine.Mine(q, Algorithm::kSmj, scalar_options);
      EXPECT_EQ(kernel.guarantee, UpdateGuarantee::kExactUnderDelta);
      ExpectBitwiseEqual(kernel, scalar);
    }
  }
}

}  // namespace
}  // namespace phrasemine
