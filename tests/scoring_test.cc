#include <cmath>
#include <vector>

#include "core/scoring.h"
#include "gtest/gtest.h"

namespace phrasemine {
namespace {

TEST(ScoringTest, EntryScoreOrIsIdentity) {
  EXPECT_DOUBLE_EQ(EntryScore(0.25, QueryOperator::kOr), 0.25);
  EXPECT_DOUBLE_EQ(EntryScore(1.0, QueryOperator::kOr), 1.0);
}

TEST(ScoringTest, EntryScoreAndIsLog) {
  EXPECT_DOUBLE_EQ(EntryScore(1.0, QueryOperator::kAnd), 0.0);
  EXPECT_DOUBLE_EQ(EntryScore(0.5, QueryOperator::kAnd), std::log(0.5));
  EXPECT_EQ(EntryScore(0.0, QueryOperator::kAnd), kMinusInfinity);
}

TEST(ScoringTest, AndScoreSumsLogs) {
  std::vector<double> probs = {0.5, 0.25};
  EXPECT_NEAR(AndScore(probs), std::log(0.125), 1e-12);
}

TEST(ScoringTest, AndScoreZeroFactorIsMinusInf) {
  std::vector<double> probs = {0.9, 0.0, 0.8};
  EXPECT_EQ(AndScore(probs), kMinusInfinity);
}

TEST(ScoringTest, AndScoreEmptyIsZero) {
  EXPECT_DOUBLE_EQ(AndScore({}), 0.0);
}

TEST(ScoringTest, OrFirstOrderIsSum) {
  std::vector<double> probs = {0.2, 0.3, 0.1};
  EXPECT_NEAR(OrScore(probs, OrExpansionOrder::kFirstOrder), 0.6, 1e-12);
}

TEST(ScoringTest, OrSecondOrderSubtractsPairs) {
  std::vector<double> probs = {0.5, 0.5};
  // 1.0 - 0.25
  EXPECT_NEAR(OrScore(probs, OrExpansionOrder::kSecondOrder), 0.75, 1e-12);
}

TEST(ScoringTest, OrFullIsInclusionExclusion) {
  std::vector<double> probs = {0.5, 0.5};
  EXPECT_NEAR(OrScore(probs, OrExpansionOrder::kFull), 0.75, 1e-12);
  std::vector<double> three = {0.5, 0.5, 0.5};
  EXPECT_NEAR(OrScore(three, OrExpansionOrder::kFull), 0.875, 1e-12);
}

TEST(ScoringTest, OrOrdersAgreeForTwoTerms) {
  // With exactly two terms, second order equals the full expansion.
  std::vector<double> probs = {0.37, 0.81};
  EXPECT_NEAR(OrScore(probs, OrExpansionOrder::kSecondOrder),
              OrScore(probs, OrExpansionOrder::kFull), 1e-12);
}

TEST(ScoringTest, OrOrderSandwich) {
  // The truncated expansions alternate around the full value:
  // first order >= full >= ... and first >= second for non-negative probs.
  std::vector<double> probs = {0.4, 0.3, 0.6};
  const double first = OrScore(probs, OrExpansionOrder::kFirstOrder);
  const double second = OrScore(probs, OrExpansionOrder::kSecondOrder);
  const double full = OrScore(probs, OrExpansionOrder::kFull);
  EXPECT_GE(first, full);
  EXPECT_LE(second, full);
  EXPECT_GE(first, second);
}

TEST(ScoringTest, ScoreToInterestingnessAnd) {
  EXPECT_NEAR(ScoreToInterestingness(std::log(0.3), QueryOperator::kAnd), 0.3,
              1e-12);
  EXPECT_DOUBLE_EQ(ScoreToInterestingness(kMinusInfinity, QueryOperator::kAnd),
                   0.0);
}

TEST(ScoringTest, ScoreToInterestingnessOrIsIdentityBelowOne) {
  EXPECT_DOUBLE_EQ(ScoreToInterestingness(0.42, QueryOperator::kOr), 0.42);
}

TEST(ScoringTest, ScoreToInterestingnessOrClampedAtOne) {
  // The first-order OR sum can exceed 1, but it estimates a probability:
  // the reported interestingness caps at the Eq. 1 maximum.
  EXPECT_DOUBLE_EQ(ScoreToInterestingness(2.37, QueryOperator::kOr), 1.0);
}

// Property sweep: full expansion equals the probability of a union of
// independent events computed by brute force over subsets.
class OrExpansionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(OrExpansionPropertyTest, FullMatchesBruteForceInclusionExclusion) {
  const int n = 2 + GetParam() % 4;
  std::vector<double> probs;
  double seedling = 0.13 * (GetParam() + 1);
  for (int i = 0; i < n; ++i) {
    seedling = std::fmod(seedling * 1.7 + 0.11, 1.0);
    probs.push_back(seedling);
  }
  // Brute-force inclusion-exclusion over all non-empty subsets.
  double expected = 0.0;
  for (int mask = 1; mask < (1 << n); ++mask) {
    double product = 1.0;
    int bits = 0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) {
        product *= probs[i];
        ++bits;
      }
    }
    expected += (bits % 2 == 1 ? 1.0 : -1.0) * product;
  }
  EXPECT_NEAR(OrScore(probs, OrExpansionOrder::kFull), expected, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OrExpansionPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace phrasemine
