// Concurrency storms over the subscription subsystem -- the tests the
// TSan CI job scopes to. Ingest, Subscribe, Poll, Snapshot and
// Unsubscribe race freely; the assertions are the invariants that must
// hold under any interleaving: no data races (TSan), epochs monotone per
// subscription, every future/poll resolves, and after the storm drains a
// surviving subscription equals a fresh re-mine at the final epoch.

#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "service/service.h"
#include "subscribe/subscription_manager.h"
#include "test_util.h"

namespace phrasemine {
namespace {

/// Pre-generates update batches from the corpus BEFORE the storm starts:
/// ingest interns new terms under the engine's vocab lock, so test
/// threads must not read the vocabulary concurrently.
std::vector<UpdateBatch> PreparedBatches(const Corpus& corpus,
                                         std::size_t count, uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<UpdateBatch> batches;
  batches.reserve(count);
  for (std::size_t b = 0; b < count; ++b) {
    UpdateBatch batch;
    const std::size_t inserts = 1 + rng() % 2;
    for (std::size_t i = 0; i < inserts; ++i) {
      const Document& doc =
          corpus.doc(static_cast<DocId>(rng() % corpus.size()));
      UpdateDoc out;
      const std::size_t len = std::min<std::size_t>(8 + rng() % 16,
                                                    doc.tokens.size());
      for (std::size_t t = 0; t < len; ++t) {
        out.tokens.push_back(corpus.vocab().TermText(doc.tokens[t]));
      }
      batch.inserts.push_back(std::move(out));
    }
    if (rng() % 2 == 0) {
      batch.deletes.push_back(static_cast<DocId>(rng() % corpus.size()));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

/// Frequent non-stopword terms, picked before the storm for the same
/// vocabulary-locking reason.
std::vector<std::string> HotTerms(const Corpus& corpus, std::size_t count) {
  std::vector<uint64_t> freq(corpus.vocab().size(), 0);
  for (std::size_t d = 0; d < corpus.size(); ++d) {
    for (TermId t : corpus.doc(static_cast<DocId>(d)).tokens) ++freq[t];
  }
  std::vector<TermId> order(freq.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<TermId>(i);
  }
  std::sort(order.begin(), order.end(),
            [&](TermId a, TermId b) { return freq[a] > freq[b]; });
  std::vector<std::string> out;
  for (std::size_t i = 5; i < order.size() && out.size() < count; ++i) {
    out.push_back(corpus.vocab().TermText(order[i]));
  }
  return out;
}

TEST(SubscriptionStormTest, ConcurrentIngestSubscribePollUnsubscribe) {
  MiningEngine engine = testing::MakeSmallEngine(150);
  SubscriptionManager manager(&engine);
  const std::vector<std::string> hot = HotTerms(engine.corpus(), 8);
  ASSERT_GE(hot.size(), 4u);

  // One durable subscription survives the whole storm and is compared
  // against a fresh mine at the end.
  SubscriptionRequest durable;
  durable.terms = {hot[0]};
  durable.k = 6;
  auto durable_id = manager.Subscribe(durable);
  ASSERT_TRUE(durable_id.ok());

  constexpr int kIngestThreads = 2;
  constexpr int kSubThreads = 2;
  constexpr std::size_t kBatches = 30;
  std::vector<std::vector<UpdateBatch>> batches;
  for (int i = 0; i < kIngestThreads; ++i) {
    batches.push_back(
        PreparedBatches(engine.corpus(), kBatches, 1000 + (uint32_t)i));
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < kIngestThreads; ++i) {
    threads.emplace_back([&, i] {
      for (const UpdateBatch& batch : batches[static_cast<std::size_t>(i)]) {
        engine.ApplyUpdate(batch);
      }
    });
  }
  for (int i = 0; i < kSubThreads; ++i) {
    threads.emplace_back([&, i] {
      std::mt19937 rng(2000 + static_cast<uint32_t>(i));
      for (int round = 0; round < 15; ++round) {
        SubscriptionRequest request;
        request.terms = {hot[rng() % hot.size()]};
        if (rng() % 3 == 0) request.terms.push_back(hot[rng() % hot.size()]);
        request.op = rng() % 4 == 0 ? QueryOperator::kOr : QueryOperator::kAnd;
        request.k = 3 + rng() % 5;
        auto id = manager.Subscribe(request);
        if (!id.ok()) {
          failed.store(true);
          continue;
        }
        uint64_t last_epoch = 0;
        for (int polls = 0; polls < 3; ++polls) {
          auto updates = manager.Poll(id.value(), 8, /*wait_ms=*/2.0);
          if (!updates.ok()) {
            failed.store(true);
            break;
          }
          // Epochs are monotone within one subscription's stream.
          for (const SubscriptionUpdate& update : updates.value()) {
            if (update.epoch < last_epoch) failed.store(true);
            last_epoch = update.epoch;
          }
          auto snapshot = manager.Snapshot(id.value());
          if (!snapshot.ok()) failed.store(true);
        }
        if (!manager.Unsubscribe(id.value()).ok()) failed.store(true);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  // Storm drained: the durable subscription must equal a fresh re-mine.
  manager.Flush();
  EXPECT_EQ(manager.num_subscriptions(), 1u);
  auto snapshot = manager.Snapshot(durable_id.value());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(snapshot.value().exact);
  Query query = engine.ParseQuery(hot[0], QueryOperator::kAnd).value();
  MineOptions mo;
  mo.k = durable.k;
  MineResult fresh = engine.Mine(query, Algorithm::kSmj, mo);
  ASSERT_EQ(snapshot.value().topk.size(), fresh.phrases.size());
  for (std::size_t i = 0; i < fresh.phrases.size(); ++i) {
    EXPECT_EQ(snapshot.value().topk[i].phrase, fresh.phrases[i].phrase);
    EXPECT_EQ(snapshot.value().topk[i].score, fresh.phrases[i].score);
  }
}

TEST(SubscriptionStormTest, ServiceFrontDoorStormWithQueries) {
  // The same storm through PhraseService, with ad-hoc queries riding
  // alongside: subscriptions and the serving path share the engines, the
  // registry and (on this config) a 2-shard fleet. Auto-rebuild is off so
  // the final differential comparison races nothing.
  MiningEngine engine = testing::MakeSmallEngine(150);
  PhraseServiceOptions options;
  options.pool.num_threads = 2;
  options.num_shards = 2;
  options.enable_auto_rebuild = false;
  PhraseService service(&engine, options);
  const Corpus& corpus = service.engine().corpus();
  const std::vector<std::string> hot = HotTerms(corpus, 8);
  ASSERT_GE(hot.size(), 4u);

  SubscriptionRequest durable;
  durable.terms = {hot[1]};
  durable.k = 5;
  auto durable_id = service.Subscribe(durable);
  ASSERT_TRUE(durable_id.ok());

  std::vector<std::vector<UpdateBatch>> batches;
  for (int i = 0; i < 2; ++i) {
    batches.push_back(PreparedBatches(corpus, 20, 3000 + (uint32_t)i));
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      for (const UpdateBatch& batch : batches[static_cast<std::size_t>(i)]) {
        service.IngestBatch(batch);
      }
    });
  }
  threads.emplace_back([&] {
    std::mt19937 rng(4000);
    for (int round = 0; round < 10; ++round) {
      SubscriptionRequest request;
      request.terms = {hot[rng() % hot.size()]};
      request.k = 4;
      auto id = service.Subscribe(request);
      if (!id.ok()) {
        failed.store(true);
        continue;
      }
      auto updates = service.PollSubscription(id.value(), 8, /*wait_ms=*/2.0);
      if (!updates.ok()) failed.store(true);
      if (!service.Unsubscribe(id.value()).ok()) failed.store(true);
    }
  });
  threads.emplace_back([&] {
    std::mt19937 rng(5000);
    for (int round = 0; round < 10; ++round) {
      ServiceRequest request;
      auto query = service.sharded()->ParseQuery(hot[rng() % hot.size()],
                                                 QueryOperator::kAnd);
      if (!query.ok()) {
        failed.store(true);
        continue;
      }
      request.query = std::move(query).value();
      request.options.k = 5;
      ServiceReply reply = service.MineSync(request);
      if (!reply.status.ok()) failed.store(true);
    }
  });
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  service.subscriptions()->Flush();
  auto snapshot = service.SubscriptionSnapshot(durable_id.value());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(snapshot.value().exact);

  ServiceRequest verify;
  verify.query =
      service.sharded()->ParseQuery(hot[1], QueryOperator::kAnd).value();
  verify.options.k = durable.k;
  verify.algorithm = Algorithm::kSmj;
  ServiceReply fresh = service.MineSync(verify);
  ASSERT_TRUE(fresh.status.ok());
  ASSERT_EQ(snapshot.value().topk.size(), fresh.result.phrases.size());
  for (std::size_t i = 0; i < fresh.result.phrases.size(); ++i) {
    EXPECT_EQ(snapshot.value().topk[i].phrase, fresh.result.phrases[i].phrase);
    EXPECT_EQ(snapshot.value().topk[i].score, fresh.result.phrases[i].score);
  }
}

}  // namespace
}  // namespace phrasemine
