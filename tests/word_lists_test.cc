#include <algorithm>
#include <cmath>

#include "gtest/gtest.h"
#include "index/word_lists.h"
#include "phrase/phrase_extractor.h"
#include "test_util.h"

namespace phrasemine {
namespace {

using testing::MakeTinyCorpus;

struct Fixture {
  Fixture() {
    corpus = MakeTinyCorpus();
    dict = PhraseExtractor({.max_phrase_len = 4, .min_df = 2}).Extract(corpus);
    inverted = InvertedIndex::Build(corpus);
    forward = ForwardIndex::Build(corpus, dict, ForwardStorage::kFull);
  }
  Corpus corpus;
  PhraseDictionary dict;
  InvertedIndex inverted;
  ForwardIndex forward;

  TermId term(const char* w) const { return corpus.vocab().Lookup(w); }
};

TEST(WordScoreListsTest, SortedByScoreThenId) {
  Fixture f;
  WordScoreLists lists =
      WordScoreLists::BuildAll(f.inverted, f.forward, f.dict);
  for (TermId t : lists.Terms()) {
    auto list = lists.list(t);
    for (std::size_t i = 1; i < list.size(); ++i) {
      if (list[i - 1].prob == list[i].prob) {
        EXPECT_LT(list[i - 1].phrase, list[i].phrase);
      } else {
        EXPECT_GT(list[i - 1].prob, list[i].prob);
      }
    }
  }
}

TEST(WordScoreListsTest, ProbMatchesEq13) {
  Fixture f;
  const TermId db = f.term("db");
  WordScoreLists lists = WordScoreLists::Build(
      f.inverted, f.forward, f.dict, std::vector<TermId>{db});
  // P(db | "query optimization") = |docs(db) ∩ docs(qo)| / |docs(qo)| = 4/4.
  const PhraseId qo = f.dict.Find(std::vector<TermId>{
      f.term("query"), f.term("optimization")});
  ASSERT_NE(qo, kInvalidPhraseId);
  bool found = false;
  for (const ListEntry& e : lists.list(db)) {
    if (e.phrase == qo) {
      EXPECT_DOUBLE_EQ(e.prob, 1.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // P(db | "the of") = 4/8 = 0.5 -- the stopword phrase is in all docs.
  const PhraseId theof =
      f.dict.Find(std::vector<TermId>{f.term("the"), f.term("of")});
  ASSERT_NE(theof, kInvalidPhraseId);
  for (const ListEntry& e : lists.list(db)) {
    if (e.phrase == theof) {
      EXPECT_DOUBLE_EQ(e.prob, 0.5);
    }
  }
}

TEST(WordScoreListsTest, ZeroScoresOmitted) {
  Fixture f;
  // "kernel" never co-occurs with "query optimization": the phrase must be
  // absent from kernel's list.
  const TermId kernel = f.term("kernel");
  WordScoreLists lists = WordScoreLists::Build(
      f.inverted, f.forward, f.dict, std::vector<TermId>{kernel});
  const PhraseId qo = f.dict.Find(std::vector<TermId>{
      f.term("query"), f.term("optimization")});
  for (const ListEntry& e : lists.list(kernel)) {
    EXPECT_NE(e.phrase, qo);
    EXPECT_GT(e.prob, 0.0);
  }
}

TEST(WordScoreListsTest, ProbsAreValidProbabilities) {
  Fixture f;
  WordScoreLists lists =
      WordScoreLists::BuildAll(f.inverted, f.forward, f.dict);
  for (TermId t : lists.Terms()) {
    for (const ListEntry& e : lists.list(t)) {
      EXPECT_GT(e.prob, 0.0);
      EXPECT_LE(e.prob, 1.0);
    }
  }
}

TEST(WordScoreListsTest, PartialPrefix) {
  Fixture f;
  WordScoreLists lists =
      WordScoreLists::BuildAll(f.inverted, f.forward, f.dict);
  const TermId the = f.term("the");
  const auto full = lists.list(the);
  ASSERT_GT(full.size(), 4u);
  const auto half = lists.Partial(the, 0.5);
  EXPECT_EQ(half.size(),
            static_cast<std::size_t>(std::ceil(0.5 * full.size())));
  EXPECT_EQ(half.data(), full.data());  // Same underlying prefix.
  EXPECT_EQ(lists.Partial(the, 0.0).size(), 0u);
  EXPECT_EQ(lists.Partial(the, 1.0).size(), full.size());
  EXPECT_EQ(lists.Partial(the, 5.0).size(), full.size());  // clamped
}

TEST(WordScoreListsTest, MissingTermEmpty) {
  Fixture f;
  WordScoreLists lists = WordScoreLists::Build(
      f.inverted, f.forward, f.dict, std::vector<TermId>{f.term("db")});
  EXPECT_FALSE(lists.Has(f.term("kernel")));
  EXPECT_TRUE(lists.list(f.term("kernel")).empty());
}

TEST(WordScoreListsTest, SizeBytesAccounting) {
  Fixture f;
  WordScoreLists lists =
      WordScoreLists::BuildAll(f.inverted, f.forward, f.dict);
  EXPECT_EQ(lists.SizeBytes(1.0), lists.TotalEntries() * kListEntryBytes);
  EXPECT_LE(lists.SizeBytes(0.5), lists.SizeBytes(1.0));
  EXPECT_GT(lists.SizeBytes(0.5), 0u);
}

TEST(WordScoreListsTest, PackedVsInMemoryEntrySizes) {
  // The packed figure is the paper's 12 bytes (4-byte id + 8-byte prob);
  // the resident AoS figure is sizeof(ListEntry), padded to 16. The two
  // must never be conflated again (table5_index_sizes reports both).
  EXPECT_EQ(kListEntryBytes, 12u);
  EXPECT_EQ(kListEntryInMemoryBytes, sizeof(ListEntry));
  EXPECT_EQ(kListEntryInMemoryBytes, 16u);
  Fixture f;
  WordScoreLists lists =
      WordScoreLists::BuildAll(f.inverted, f.forward, f.dict);
  EXPECT_EQ(lists.InMemoryBytes(1.0),
            lists.TotalEntries() * kListEntryInMemoryBytes);
  EXPECT_GT(lists.InMemoryBytes(1.0), lists.SizeBytes(1.0));
}

TEST(WordScoreListsTest, MergeAddsNewTermsOnly) {
  Fixture f;
  WordScoreLists a = WordScoreLists::Build(
      f.inverted, f.forward, f.dict, std::vector<TermId>{f.term("db")});
  WordScoreLists b = WordScoreLists::Build(
      f.inverted, f.forward, f.dict,
      std::vector<TermId>{f.term("db"), f.term("kernel")});
  const std::size_t db_len = a.list(f.term("db")).size();
  a.Merge(std::move(b));
  EXPECT_TRUE(a.Has(f.term("kernel")));
  EXPECT_EQ(a.list(f.term("db")).size(), db_len);
}

TEST(WordScoreListsTest, SerializationRoundTrip) {
  Fixture f;
  WordScoreLists lists =
      WordScoreLists::BuildAll(f.inverted, f.forward, f.dict);
  BinaryWriter w;
  lists.Serialize(&w);
  BinaryReader r(w.TakeBuffer());
  auto loaded = WordScoreLists::Deserialize(&r);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_terms(), lists.num_terms());
  for (TermId t : lists.Terms()) {
    auto a = lists.list(t);
    auto b = loaded.value().list(t);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].phrase, b[i].phrase);
      EXPECT_DOUBLE_EQ(a[i].prob, b[i].prob);
    }
  }
}

TEST(WordIdOrderedListsTest, OrderedById) {
  Fixture f;
  WordScoreLists score_lists =
      WordScoreLists::BuildAll(f.inverted, f.forward, f.dict);
  WordIdOrderedLists id_lists = WordIdOrderedLists::Build(score_lists, 1.0);
  for (TermId t : score_lists.Terms()) {
    auto list = id_lists.list(t);
    for (std::size_t i = 1; i < list.size(); ++i) {
      EXPECT_LT(list[i - 1].phrase, list[i].phrase);
    }
    EXPECT_EQ(list.size(), score_lists.list(t).size());
  }
}

TEST(WordIdOrderedListsTest, FractionTruncatesTopScores) {
  Fixture f;
  WordScoreLists score_lists =
      WordScoreLists::BuildAll(f.inverted, f.forward, f.dict);
  WordIdOrderedLists id_lists = WordIdOrderedLists::Build(score_lists, 0.3);
  EXPECT_DOUBLE_EQ(id_lists.fraction(), 0.3);
  for (TermId t : score_lists.Terms()) {
    const auto prefix = score_lists.Partial(t, 0.3);
    const auto list = id_lists.list(t);
    ASSERT_EQ(list.size(), prefix.size());
    // Same multiset of entries, different order.
    std::vector<PhraseId> a, b;
    for (const auto& e : prefix) a.push_back(e.phrase);
    for (const auto& e : list) b.push_back(e.phrase);
    std::sort(a.begin(), a.end());
    EXPECT_EQ(a, b);
  }
  EXPECT_LE(id_lists.TotalEntries(), score_lists.TotalEntries());
}

}  // namespace
}  // namespace phrasemine
