// ShardedLruCache eviction/stats behaviour and result-key canonicalization.

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "service/cache.h"

namespace phrasemine {
namespace {

using StringCache = ShardedLruCache<int, std::shared_ptr<std::string>>;

std::shared_ptr<std::string> Val(const std::string& s) {
  return std::make_shared<std::string>(s);
}

TEST(ShardedLruCacheTest, PutGetAndMissCounters) {
  StringCache cache(/*num_shards=*/1, /*capacity_bytes=*/1000);
  EXPECT_FALSE(cache.Get(1).has_value());
  cache.Put(1, Val("one"), 10);
  auto hit = cache.Get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(**hit, "one");

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 10u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsedOnByteBudget) {
  StringCache cache(1, 100);
  cache.Put(1, Val("a"), 40);
  cache.Put(2, Val("b"), 40);
  ASSERT_TRUE(cache.Get(1).has_value());  // 1 is now most recent.
  cache.Put(3, Val("c"), 40);             // 120 > 100: evict LRU = 2.

  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, 100u);
}

TEST(ShardedLruCacheTest, OversizedEntryIsStillAdmitted) {
  StringCache cache(1, 100);
  cache.Put(1, Val("a"), 40);
  cache.Put(2, Val("big"), 1000);  // Larger than the whole budget.
  EXPECT_TRUE(cache.Get(2).has_value());
  EXPECT_FALSE(cache.Get(1).has_value());  // Evicted to make room.
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ShardedLruCacheTest, RefreshUpdatesValueAndCharge) {
  StringCache cache(1, 100);
  cache.Put(1, Val("old"), 40);
  cache.Put(1, Val("new"), 60);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 60u);
  EXPECT_EQ(stats.inserts, 1u);  // Refresh, not a second insert.
  EXPECT_EQ(**cache.Get(1), "new");
}

TEST(ShardedLruCacheTest, PeekDoesNotTouchCountersOrOrder) {
  StringCache cache(1, 100);
  cache.Put(1, Val("a"), 40);
  cache.Put(2, Val("b"), 40);
  ASSERT_TRUE(cache.Peek(1).has_value());  // Must NOT refresh key 1.
  const CacheStats before = cache.stats();
  EXPECT_EQ(before.hits, 0u);
  EXPECT_EQ(before.misses, 0u);
  cache.Put(3, Val("c"), 40);  // Evicts 1: Peek left it least-recent.
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(2).has_value());
}

TEST(ShardedLruCacheTest, ClearDropsEntriesKeepsCounters) {
  StringCache cache(4, 1000);
  cache.Put(1, Val("a"), 10);
  cache.Put(2, Val("b"), 10);
  ASSERT_TRUE(cache.Get(1).has_value());
  cache.Clear();
  EXPECT_FALSE(cache.Get(1).has_value());
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);  // Counters survive Clear.
}

TEST(ShardedLruCacheTest, ShardsSplitTheBudget) {
  StringCache cache(8, 800);
  EXPECT_EQ(cache.num_shards(), 8u);
  EXPECT_EQ(cache.stats().capacity_bytes, 800u);
}

TEST(ShardedLruCacheTest, ConcurrentMixedOperationsAreSafe) {
  StringCache cache(8, 4096);
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const int key = (t * 31 + i) % 97;
        if (i % 3 == 0) {
          cache.Put(key, Val(std::to_string(key)), 32);
        } else if (auto v = cache.Get(key)) {
          // A hit must always carry the value its key was stored with.
          EXPECT_EQ(**v, std::to_string(key));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const CacheStats stats = cache.stats();
  EXPECT_GT(stats.inserts, 0u);
  EXPECT_LE(stats.bytes, stats.capacity_bytes + 32 * 8);
}

TEST(ResultCacheKeyTest, CanonicalizationMergesSpellings) {
  Query a;
  a.terms = {7, 3, 3, 9};
  a.op = QueryOperator::kAnd;
  Query b;
  b.terms = {9, 7, 3};
  b.op = QueryOperator::kAnd;
  EXPECT_EQ(ResultCacheKey(CanonicalizeQuery(a), Algorithm::kNra, {}),
            ResultCacheKey(CanonicalizeQuery(b), Algorithm::kNra, {}));

  const Query canonical = CanonicalizeQuery(a);
  EXPECT_EQ(canonical.terms, (std::vector<TermId>{3, 7, 9}));
}

TEST(ResultCacheKeyTest, DistinctParametersGetDistinctKeys) {
  Query q;
  q.terms = {3, 7};
  q.op = QueryOperator::kAnd;
  const Query c = CanonicalizeQuery(q);
  const std::string base = ResultCacheKey(c, Algorithm::kNra, {});

  EXPECT_NE(ResultCacheKey(c, Algorithm::kSmj, {}), base);

  MineOptions k10;
  k10.k = 10;
  EXPECT_NE(ResultCacheKey(c, Algorithm::kNra, k10), base);

  MineOptions partial;
  partial.list_fraction = 0.5;
  EXPECT_NE(ResultCacheKey(c, Algorithm::kNra, partial), base);

  Query or_query = c;
  or_query.op = QueryOperator::kOr;
  EXPECT_NE(ResultCacheKey(or_query, Algorithm::kNra, {}), base);

  Query more_terms = c;
  more_terms.terms.push_back(11);
  EXPECT_NE(ResultCacheKey(more_terms, Algorithm::kNra, {}), base);

  // The SMJ construction fraction determines kSmj output and must key.
  EXPECT_NE(ResultCacheKey(c, Algorithm::kSmj, {}, 1.0),
            ResultCacheKey(c, Algorithm::kSmj, {}, 0.5));
}

}  // namespace
}  // namespace phrasemine
