#include <algorithm>

#include "gtest/gtest.h"
#include "phrase/phrase_dictionary.h"
#include "phrase/phrase_extractor.h"
#include "test_util.h"
#include "text/corpus.h"

namespace phrasemine {
namespace {

using testing::MakeTinyCorpus;

PhraseDictionary ExtractTiny(uint32_t min_df = 2, std::size_t max_len = 4) {
  Corpus corpus = MakeTinyCorpus();
  PhraseExtractor extractor({.max_phrase_len = max_len, .min_df = min_df});
  return extractor.Extract(corpus);
}

TEST(PhraseExtractorTest, FindsExpectedBigram) {
  Corpus corpus = MakeTinyCorpus();
  PhraseExtractor extractor({.max_phrase_len = 4, .min_df = 2});
  PhraseDictionary dict = extractor.Extract(corpus);

  const TermId query = corpus.vocab().Lookup("query");
  const TermId optimization = corpus.vocab().Lookup("optimization");
  ASSERT_NE(query, kInvalidTermId);
  ASSERT_NE(optimization, kInvalidTermId);
  const std::vector<TermId> tokens = {query, optimization};
  const PhraseId p = dict.Find(tokens);
  ASSERT_NE(p, kInvalidPhraseId);
  EXPECT_EQ(dict.df(p), 4u);  // Appears in all four database documents.
}

TEST(PhraseExtractorTest, StopwordBigramIsFrequent) {
  Corpus corpus = MakeTinyCorpus();
  PhraseExtractor extractor({.max_phrase_len = 4, .min_df = 2});
  PhraseDictionary dict = extractor.Extract(corpus);
  const std::vector<TermId> tokens = {corpus.vocab().Lookup("the"),
                                      corpus.vocab().Lookup("of")};
  const PhraseId p = dict.Find(tokens);
  ASSERT_NE(p, kInvalidPhraseId);
  EXPECT_EQ(dict.df(p), 8u);  // In every document: the normalization target.
}

TEST(PhraseExtractorTest, MinDfFiltersRarePhrases) {
  Corpus corpus = MakeTinyCorpus();
  PhraseExtractor strict({.max_phrase_len = 4, .min_df = 5});
  PhraseDictionary dict = strict.Extract(corpus);
  // "query optimization" has df 4 < 5 so it must not qualify.
  const std::vector<TermId> tokens = {corpus.vocab().Lookup("query"),
                                      corpus.vocab().Lookup("optimization")};
  EXPECT_EQ(dict.Find(tokens), kInvalidPhraseId);
  // "the of" has df 8 >= 5 and stays.
  const std::vector<TermId> stop = {corpus.vocab().Lookup("the"),
                                    corpus.vocab().Lookup("of")};
  EXPECT_NE(dict.Find(stop), kInvalidPhraseId);
}

TEST(PhraseExtractorTest, DocFrequencyIsSetSemantics) {
  Corpus corpus;
  // "a b" occurs twice in one document: df must still be counted once,
  // and with min_df = 2 the second document is required.
  corpus.AddText("a b x a b");
  corpus.AddText("a b y");
  PhraseExtractor extractor({.max_phrase_len = 2, .min_df = 2});
  PhraseDictionary dict = extractor.Extract(corpus);
  const std::vector<TermId> tokens = {corpus.vocab().Lookup("a"),
                                      corpus.vocab().Lookup("b")};
  const PhraseId p = dict.Find(tokens);
  ASSERT_NE(p, kInvalidPhraseId);
  EXPECT_EQ(dict.df(p), 2u);
}

TEST(PhraseExtractorTest, RespectsMaxLength) {
  Corpus corpus;
  corpus.AddText("one two three four five six seven");
  corpus.AddText("one two three four five six seven");
  PhraseExtractor extractor({.max_phrase_len = 3, .min_df = 2});
  PhraseDictionary dict = extractor.Extract(corpus);
  EXPECT_EQ(dict.max_len(), 3u);
  for (PhraseId p = 0; p < dict.size(); ++p) {
    EXPECT_LE(dict.info(p).tokens.size(), 3u);
  }
}

TEST(PhraseExtractorTest, AprioriParentAlwaysPresent) {
  PhraseDictionary dict = ExtractTiny();
  for (PhraseId p = 0; p < dict.size(); ++p) {
    const PhraseInfo& info = dict.info(p);
    if (info.tokens.size() == 1) {
      EXPECT_EQ(info.parent, kInvalidPhraseId);
    } else {
      ASSERT_NE(info.parent, kInvalidPhraseId);
      const PhraseInfo& parent = dict.info(info.parent);
      EXPECT_EQ(parent.tokens.size() + 1, info.tokens.size());
      // Parent df >= child df (superset of documents).
      EXPECT_GE(parent.df, info.df);
      // Parent tokens are the prefix.
      EXPECT_TRUE(std::equal(parent.tokens.begin(), parent.tokens.end(),
                             info.tokens.begin()));
    }
  }
}

TEST(PhraseExtractorTest, SixGramsOnRepeatedText) {
  Corpus corpus;
  for (int i = 0; i < 6; ++i) {
    corpus.AddText("alpha beta gamma delta epsilon zeta filler" +
                   std::to_string(i));
  }
  PhraseExtractor extractor({.max_phrase_len = 6, .min_df = 5});
  PhraseDictionary dict = extractor.Extract(corpus);
  std::vector<TermId> six;
  for (const char* w :
       {"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}) {
    six.push_back(corpus.vocab().Lookup(w));
  }
  const PhraseId p = dict.Find(six);
  ASSERT_NE(p, kInvalidPhraseId);
  EXPECT_EQ(dict.df(p), 6u);
  EXPECT_EQ(dict.info(p).tokens.size(), 6u);
}

TEST(PhraseDictionaryTest, ChildNavigation) {
  Corpus corpus = MakeTinyCorpus();
  PhraseExtractor extractor({.max_phrase_len = 4, .min_df = 2});
  PhraseDictionary dict = extractor.Extract(corpus);
  const TermId query = corpus.vocab().Lookup("query");
  const TermId optimization = corpus.vocab().Lookup("optimization");
  const PhraseId uni = dict.Unigram(query);
  ASSERT_NE(uni, kInvalidPhraseId);
  const PhraseId bi = dict.Child(uni, optimization);
  ASSERT_NE(bi, kInvalidPhraseId);
  EXPECT_EQ(dict.info(bi).parent, uni);
}

TEST(PhraseDictionaryTest, FindMissingReturnsInvalid) {
  PhraseDictionary dict = ExtractTiny();
  const std::vector<TermId> bogus = {9999999};
  EXPECT_EQ(dict.Find(bogus), kInvalidPhraseId);
  EXPECT_EQ(dict.Find({}), kInvalidPhraseId);
}

TEST(PhraseDictionaryTest, TextRendering) {
  Corpus corpus = MakeTinyCorpus();
  PhraseExtractor extractor({.max_phrase_len = 4, .min_df = 2});
  PhraseDictionary dict = extractor.Extract(corpus);
  const std::vector<TermId> tokens = {corpus.vocab().Lookup("query"),
                                      corpus.vocab().Lookup("optimization")};
  const PhraseId p = dict.Find(tokens);
  ASSERT_NE(p, kInvalidPhraseId);
  EXPECT_EQ(dict.Text(p, corpus.vocab()), "query optimization");
}

TEST(PhraseDictionaryTest, SerializationRoundTrip) {
  Corpus corpus = MakeTinyCorpus();
  PhraseExtractor extractor({.max_phrase_len = 4, .min_df = 2});
  PhraseDictionary dict = extractor.Extract(corpus);

  BinaryWriter w;
  dict.Serialize(&w);
  BinaryReader r(w.TakeBuffer());
  auto loaded = PhraseDictionary::Deserialize(&r);
  ASSERT_TRUE(loaded.ok());
  const PhraseDictionary& copy = loaded.value();
  ASSERT_EQ(copy.size(), dict.size());
  for (PhraseId p = 0; p < dict.size(); ++p) {
    EXPECT_EQ(copy.info(p).tokens, dict.info(p).tokens);
    EXPECT_EQ(copy.info(p).parent, dict.info(p).parent);
    EXPECT_EQ(copy.df(p), dict.df(p));
  }
}

TEST(PhraseDictionaryTest, SetDfMutates) {
  PhraseDictionary dict = ExtractTiny();
  ASSERT_GT(dict.size(), 0u);
  dict.set_df(0, 12345);
  EXPECT_EQ(dict.df(0), 12345u);
}

TEST(PhraseExtractorTest, EmptyCorpusYieldsEmptyDictionary) {
  Corpus corpus;
  PhraseExtractor extractor({.max_phrase_len = 6, .min_df = 1});
  PhraseDictionary dict = extractor.Extract(corpus);
  EXPECT_EQ(dict.size(), 0u);
}

TEST(PhraseExtractorTest, UnigramDfMatchesInvertedIndexCounts) {
  Corpus corpus = MakeTinyCorpus();
  PhraseExtractor extractor({.max_phrase_len = 1, .min_df = 1});
  PhraseDictionary dict = extractor.Extract(corpus);
  // "db" occurs in 4 documents.
  const PhraseId p = dict.Unigram(corpus.vocab().Lookup("db"));
  ASSERT_NE(p, kInvalidPhraseId);
  EXPECT_EQ(dict.df(p), 4u);
}

}  // namespace
}  // namespace phrasemine
