#include "gtest/gtest.h"
#include "index/phrase_list_file.h"
#include "index/phrase_posting_index.h"
#include "phrase/phrase_extractor.h"
#include "test_util.h"

namespace phrasemine {
namespace {

struct Fixture {
  Fixture() {
    corpus = testing::MakeTinyCorpus();
    dict = PhraseExtractor({.max_phrase_len = 4, .min_df = 2}).Extract(corpus);
  }
  Corpus corpus;
  PhraseDictionary dict;
};

TEST(PhraseListFileTest, TextRoundTripsForEveryPhrase) {
  Fixture f;
  PhraseListFile file = PhraseListFile::Build(f.dict, f.corpus.vocab());
  ASSERT_EQ(file.num_phrases(), f.dict.size());
  for (PhraseId p = 0; p < f.dict.size(); ++p) {
    EXPECT_EQ(file.Text(p), f.dict.Text(p, f.corpus.vocab()));
  }
  EXPECT_EQ(file.truncated_count(), 0u);
}

TEST(PhraseListFileTest, FixedSlotOffsets) {
  Fixture f;
  PhraseListFile file = PhraseListFile::Build(f.dict, f.corpus.vocab(), 64);
  EXPECT_EQ(file.slot_size(), 64u);
  EXPECT_EQ(file.SlotOffset(0), 0u);
  EXPECT_EQ(file.SlotOffset(3), 3u * 64u);
  EXPECT_EQ(file.SizeBytes(), f.dict.size() * 64u);
}

TEST(PhraseListFileTest, TruncatesLongPhrases) {
  Fixture f;
  // Slot of 8 bytes cannot hold "query optimization".
  PhraseListFile file = PhraseListFile::Build(f.dict, f.corpus.vocab(), 8);
  EXPECT_GT(file.truncated_count(), 0u);
  for (PhraseId p = 0; p < f.dict.size(); ++p) {
    EXPECT_LE(file.Text(p).size(), 8u);
  }
}

TEST(PhraseListFileTest, SerializationRoundTrip) {
  Fixture f;
  PhraseListFile file = PhraseListFile::Build(f.dict, f.corpus.vocab());
  BinaryWriter w;
  file.Serialize(&w);
  BinaryReader r(w.TakeBuffer());
  auto loaded = PhraseListFile::Deserialize(&r);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_phrases(), file.num_phrases());
  for (PhraseId p = 0; p < file.num_phrases(); ++p) {
    EXPECT_EQ(loaded.value().Text(p), file.Text(p));
  }
}

TEST(PhraseListFileTest, DefaultSlotMatchesPaper) {
  EXPECT_EQ(PhraseListFile::kDefaultSlotSize, 50u);
}

TEST(PhrasePostingIndexTest, PostingsMatchForwardIndex) {
  Fixture f;
  ForwardIndex forward =
      ForwardIndex::Build(f.corpus, f.dict, ForwardStorage::kFull);
  PhrasePostingIndex postings = PhrasePostingIndex::Build(forward, f.dict);
  ASSERT_EQ(postings.num_phrases(), f.dict.size());
  // Every phrase's posting-list length equals its df.
  for (PhraseId p = 0; p < f.dict.size(); ++p) {
    EXPECT_EQ(postings.docs(p).size(), f.dict.df(p)) << p;
  }
  EXPECT_EQ(postings.TotalEntries(), forward.TotalStoredEntries());
}

TEST(PhrasePostingIndexTest, CardinalityOrderNonIncreasing) {
  Fixture f;
  ForwardIndex forward =
      ForwardIndex::Build(f.corpus, f.dict, ForwardStorage::kFull);
  PhrasePostingIndex postings = PhrasePostingIndex::Build(forward, f.dict);
  const auto& order = postings.by_cardinality();
  ASSERT_EQ(order.size(), f.dict.size());
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(postings.docs(order[i - 1]).size(),
              postings.docs(order[i]).size());
  }
}

TEST(PhrasePostingIndexTest, PostingListsSorted) {
  Fixture f;
  ForwardIndex forward =
      ForwardIndex::Build(f.corpus, f.dict, ForwardStorage::kFull);
  PhrasePostingIndex postings = PhrasePostingIndex::Build(forward, f.dict);
  for (PhraseId p = 0; p < postings.num_phrases(); ++p) {
    auto docs = postings.docs(p);
    EXPECT_TRUE(std::is_sorted(docs.begin(), docs.end()));
  }
}

}  // namespace
}  // namespace phrasemine
