#include <chrono>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/delta_index.h"
#include "service/cache.h"
#include "service/service.h"
#include "shard/sharded_engine.h"
#include "test_util.h"

namespace phrasemine {
namespace {

using testing::MakeSmallSyntheticCorpus;
using testing::MakeTinyCorpus;

ShardedEngine BuildSharded(std::size_t num_shards, std::size_t num_docs,
                           uint32_t min_df = 2) {
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  options.engine.extractor.min_df = min_df;
  return ShardedEngine::Build(MakeSmallSyntheticCorpus(num_docs),
                              std::move(options));
}

Query FacetQuery(const ShardedEngine& sharded) {
  return sharded.ParseQuery("topic:0 topic:1", QueryOperator::kOr).value();
}

TEST(ShardedServiceTest, MineSyncMatchesDirectShardedMine) {
  ShardedEngine sharded = BuildSharded(4, 300);
  PhraseServiceOptions options;
  options.pool.num_threads = 2;
  PhraseService service(&sharded, options);
  ASSERT_EQ(service.sharded(), &sharded);

  const Query query = FacetQuery(sharded);
  for (const Algorithm algorithm :
       {Algorithm::kExact, Algorithm::kSmj, Algorithm::kNra}) {
    const ShardedMineResult direct =
        sharded.Mine(CanonicalizeQuery(query), algorithm, MineOptions{});
    const ServiceReply reply =
        service.MineSync(ServiceRequest{query, MineOptions{}, algorithm});
    ASSERT_EQ(reply.result.phrases.size(), direct.result.phrases.size());
    EXPECT_EQ(reply.phrase_texts, direct.texts);
    for (std::size_t i = 0; i < direct.result.phrases.size(); ++i) {
      EXPECT_EQ(reply.result.phrases[i].score,
                direct.result.phrases[i].score);
    }
    EXPECT_EQ(reply.result.shard_epochs, sharded.epochs());
  }
}

TEST(ShardedServiceTest, DiskBackedFleetSurfacesIoCountersInStats) {
  ShardedEngineOptions options;
  options.num_shards = 3;
  options.engine.extractor.min_df = 2;
  options.disk_backed = true;  // budget 0: every shard list spills
  ShardedEngine sharded = ShardedEngine::Build(MakeSmallSyntheticCorpus(300),
                                               std::move(options));
  PhraseServiceOptions service_options;
  service_options.pool.num_threads = 2;
  PhraseService service(&sharded, service_options);

  const Query query = FacetQuery(sharded);
  const ServiceReply reply = service.MineSync(
      ServiceRequest{query, MineOptions{}, Algorithm::kNraDisk});
  EXPECT_GT(reply.result.disk_io.blocks_read, 0u);
  EXPECT_GT(reply.result.disk_io.bytes, 0u);
  EXPECT_EQ(reply.result.shard_epochs.size(), 3u);

  // The executed mine's device counters accumulate into the service
  // stats (and render in ToString); an in-memory mine adds nothing.
  const ServiceStats after_disk = service.stats();
  EXPECT_EQ(after_disk.disk_io.blocks_read, reply.result.disk_io.blocks_read);
  EXPECT_EQ(after_disk.disk_io.bytes, reply.result.disk_io.bytes);
  EXPECT_NE(after_disk.ToString().find("disk tier:"), std::string::npos);

  (void)service.MineSync(ServiceRequest{query, MineOptions{}, Algorithm::kNra});
  EXPECT_EQ(service.stats().disk_io.blocks_read,
            after_disk.disk_io.blocks_read);
}

TEST(ShardedServiceTest, PlansAcrossShardsAndServesFromCache) {
  ShardedEngine sharded = BuildSharded(4, 300);
  PhraseServiceOptions options;
  options.pool.num_threads = 2;
  PhraseService service(&sharded, options);

  const ServiceRequest request{FacetQuery(sharded), MineOptions{}, {}};
  const ServiceReply first = service.MineSync(request);
  EXPECT_FALSE(first.result_cache_hit);
  EXPECT_NE(first.plan.reason.find("sharded(4)"), std::string::npos)
      << first.plan.reason;

  const ServiceReply second = service.MineSync(request);
  EXPECT_TRUE(second.result_cache_hit);
  EXPECT_EQ(second.phrase_texts, first.phrase_texts);
  ASSERT_EQ(second.result.phrases.size(), first.result.phrases.size());
  for (std::size_t i = 0; i < first.result.phrases.size(); ++i) {
    EXPECT_EQ(second.result.phrases[i].score, first.result.phrases[i].score);
  }
}

TEST(ShardedServiceTest, IngestMovesCompositeEpochAndInvalidatesByKey) {
  ShardedEngine sharded = BuildSharded(4, 300);
  PhraseServiceOptions options;
  options.pool.num_threads = 2;
  options.enable_auto_rebuild = false;  // deterministic epochs
  PhraseService service(&sharded, options);

  const ServiceRequest request{FacetQuery(sharded), MineOptions{}, {}};
  (void)service.MineSync(request);
  ASSERT_TRUE(service.MineSync(request).result_cache_hit);

  const std::vector<uint64_t> before = sharded.epochs();
  UpdateDoc doc;
  doc.tokens = {"fresh", "content", "for", "one", "shard"};
  const UpdateStats stats = service.Ingest(std::move(doc));
  EXPECT_GE(stats.epoch, 1u);

  // Exactly one shard (the insert's owner) advanced.
  const std::vector<uint64_t> after = sharded.epochs();
  std::size_t advanced = 0;
  for (std::size_t s = 0; s < after.size(); ++s) {
    if (after[s] != before[s]) ++advanced;
  }
  EXPECT_EQ(advanced, 1u);

  // The stale entry is unreachable under the new composite epoch vector.
  const ServiceReply refreshed = service.MineSync(request);
  EXPECT_FALSE(refreshed.result_cache_hit);
  EXPECT_EQ(refreshed.result.shard_epochs, after);
  EXPECT_GE(refreshed.epoch, stats.epoch);
}

TEST(ShardedServiceTest, NumShardsConfigSwitchReshardsMonolith) {
  MiningEngineOptions engine_options;
  engine_options.extractor.min_df = 2;
  MiningEngine engine = MiningEngine::Build(MakeTinyCorpus(), engine_options);

  PhraseServiceOptions options;
  options.pool.num_threads = 2;
  options.num_shards = 3;
  PhraseService service(&engine, options);
  ASSERT_NE(service.sharded(), nullptr);
  EXPECT_EQ(service.sharded()->num_shards(), 3u);

  const Query query =
      engine.ParseQuery("query optimization", QueryOperator::kAnd).value();
  const MineResult mono = engine.Mine(query, Algorithm::kExact,
                                      MineOptions{.k = 5});
  const ServiceReply reply = service.MineSync(
      ServiceRequest{query, MineOptions{.k = 5}, Algorithm::kExact});
  ASSERT_EQ(reply.result.phrases.size(), mono.phrases.size());
  // Scores must match rank by rank; texts only up to equal-score tie
  // order (the monolithic collector breaks ties by PhraseId, the merge
  // by text), so each reply text must score what its rank says.
  const MineResult mono_all = engine.Mine(query, Algorithm::kExact,
                                          MineOptions{.k = 100000});
  std::map<std::string, std::set<double>> truth;
  for (const MinedPhrase& p : mono_all.phrases) {
    truth[engine.PhraseText(p.phrase)].insert(p.score);
  }
  for (std::size_t i = 0; i < mono.phrases.size(); ++i) {
    EXPECT_EQ(reply.result.phrases[i].score, mono.phrases[i].score);
    const auto it = truth.find(reply.phrase_texts[i]);
    ASSERT_NE(it, truth.end()) << reply.phrase_texts[i];
    EXPECT_TRUE(it->second.contains(reply.result.phrases[i].score))
        << reply.phrase_texts[i];
  }
}

TEST(ShardedServiceTest, SurvivesDictionaryRefresh) {
  // A dictionary refresh swaps the whole shard fleet; the service must
  // keep planning and serving afterwards (it gathers per-shard planner
  // inputs through the engine's fleet lock instead of caching per-shard
  // planners that would dangle).
  ShardedEngine sharded = BuildSharded(3, 200);
  PhraseServiceOptions options;
  options.pool.num_threads = 2;
  options.enable_auto_rebuild = false;
  PhraseService service(&sharded, options);

  const ServiceRequest request{FacetQuery(sharded), MineOptions{}, {}};
  const ServiceReply before = service.MineSync(request);
  ASSERT_FALSE(before.result.phrases.empty());

  UpdateDoc doc;
  doc.tokens = {"refresh", "survivor", "phrase", "refresh", "survivor",
                "phrase"};
  (void)service.Ingest(std::move(doc));
  sharded.RefreshDictionary();

  const ServiceReply after = service.MineSync(request);
  EXPECT_FALSE(after.result_cache_hit);  // epochs advanced past the swap
  EXPECT_GT(after.epoch, before.epoch);
  // The refresh reassigns PhraseIds (extraction order over the grown
  // corpus), so equal-score ties may reorder; the score sequence itself
  // is a pure function of the unchanged supports.
  ASSERT_EQ(after.result.phrases.size(), before.result.phrases.size());
  for (std::size_t i = 0; i < after.result.phrases.size(); ++i) {
    EXPECT_EQ(after.result.phrases[i].score, before.result.phrases[i].score);
    EXPECT_FALSE(after.phrase_texts[i].empty());
  }
  // engine() re-resolves shard 0 after the swap.
  EXPECT_EQ(&service.engine(), &sharded.shard(0));
}

TEST(ShardedServiceTest, CallerDeltaIsIgnoredNotFatal) {
  ShardedEngine sharded = BuildSharded(2, 150);
  PhraseServiceOptions options;
  options.pool.num_threads = 1;
  PhraseService service(&sharded, options);

  DeltaIndex external(sharded.shard(0).dict());
  ServiceRequest request{FacetQuery(sharded), MineOptions{}, {}};
  request.options.delta = &external;
  const ServiceReply reply = service.MineSync(request);  // must not abort
  EXPECT_NE(reply.plan.reason.find("caller delta ignored"),
            std::string::npos)
      << reply.plan.reason;
  EXPECT_FALSE(reply.result_cache_hit);
}

TEST(ShardedServiceTest, AutoRebuildTargetsOnlyRecommendedShards) {
  // All inserts land in shard 0: global insert ids are >= the base corpus
  // size, so only shard 0 crosses its rebuild threshold.
  ShardedEngineOptions sharded_options;
  sharded_options.num_shards = 3;
  sharded_options.engine.extractor.min_df = 2;
  sharded_options.engine.rebuild_threshold = 0.05;
  const std::size_t base_docs = 120;
  sharded_options.partitioner = [base_docs](DocId g, std::size_t n) {
    return g >= base_docs ? 0u : static_cast<uint32_t>(g % n);
  };
  ShardedEngine sharded = ShardedEngine::Build(
      MakeSmallSyntheticCorpus(base_docs), std::move(sharded_options));
  const std::vector<uint64_t> generations_before = {
      sharded.shard(0).list_generation(), sharded.shard(1).list_generation(),
      sharded.shard(2).list_generation()};

  PhraseServiceOptions options;
  options.pool.num_threads = 2;
  PhraseService service(&sharded, options);

  for (int i = 0; i < 30; ++i) {
    UpdateDoc doc;
    doc.tokens = {"rebuild", "pressure", "doc", std::to_string(i)};
    (void)service.Ingest(std::move(doc));
  }
  // The rebuild runs on the service pool; wait for it to land.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (service.stats().rebuilds == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(service.stats().rebuilds, 1u);
  EXPECT_GT(sharded.shard(0).list_generation(), generations_before[0]);
  EXPECT_EQ(sharded.shard(1).list_generation(), generations_before[1]);
  EXPECT_EQ(sharded.shard(2).list_generation(), generations_before[2]);
}

}  // namespace
}  // namespace phrasemine
