// Parameterized property sweeps across the algorithm surface: for random
// (k, fraction, operator) configurations the miners must uphold their
// invariants -- result sizes, rank monotonicity, baseline exactness, and
// NRA's never-worse-than-SMJ result quality at equal fractions.

#include <algorithm>
#include <tuple>
#include <unordered_set>

#include "common/rng.h"
#include "core/engine.h"
#include "core/exact_miner.h"
#include "eval/query_gen.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace phrasemine {
namespace {

class TopKCollectorTest : public ::testing::Test {};

TEST_F(TopKCollectorTest, KeepsBestK) {
  TopKCollector collector(3);
  collector.Offer(1, 0.1, 0.1);
  collector.Offer(2, 0.9, 0.9);
  collector.Offer(3, 0.5, 0.5);
  collector.Offer(4, 0.7, 0.7);
  collector.Offer(5, 0.2, 0.2);
  auto out = collector.Take();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].phrase, 2u);
  EXPECT_EQ(out[1].phrase, 4u);
  EXPECT_EQ(out[2].phrase, 3u);
}

TEST_F(TopKCollectorTest, TieBreaksByAscendingId) {
  TopKCollector collector(2);
  collector.Offer(9, 0.5, 0.5);
  collector.Offer(3, 0.5, 0.5);
  collector.Offer(7, 0.5, 0.5);
  auto out = collector.Take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].phrase, 3u);
  EXPECT_EQ(out[1].phrase, 7u);
}

TEST_F(TopKCollectorTest, ZeroKIsEmpty) {
  TopKCollector collector(0);
  collector.Offer(1, 1.0, 1.0);
  EXPECT_TRUE(collector.Take().empty());
}

TEST_F(TopKCollectorTest, FewerOffersThanK) {
  TopKCollector collector(10);
  collector.Offer(5, 0.3, 0.3);
  collector.Offer(1, 0.8, 0.8);
  auto out = collector.Take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].phrase, 1u);
}

TEST_F(TopKCollectorTest, ManyOffersStressOrdering) {
  TopKCollector collector(16);
  Rng rng(4242);
  std::vector<std::pair<double, PhraseId>> all;
  for (PhraseId p = 0; p < 500; ++p) {
    const double score = rng.NextDouble();
    all.push_back({score, p});
    collector.Offer(p, score, score);
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  auto out = collector.Take();
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].phrase, all[i].second) << i;
  }
}

// --- Cross-algorithm sweep ------------------------------------------------

struct SweepCase {
  std::size_t k;
  double fraction;
  QueryOperator op;
};

class MinerSweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  // One shared engine across all sweep instances (build is the slow part).
  static MiningEngine& Engine() {
    static MiningEngine* engine =
        new MiningEngine(testing::MakeSmallEngine(500));
    return *engine;
  }
  static std::vector<Query>& Queries() {
    static std::vector<Query>* queries = [] {
      QuerySetGenerator qgen(QueryGenOptions{.seed = 77, .num_queries = 6});
      return new std::vector<Query>(qgen.Generate(
          Engine().dict(), Engine().inverted(), Engine().corpus().size()));
    }();
    return *queries;
  }
};

TEST_P(MinerSweepTest, InvariantsHoldForAllAlgorithms) {
  const SweepCase param = GetParam();
  MiningEngine& engine = Engine();
  engine.SetSmjFraction(param.fraction);
  MineOptions options;
  options.k = param.k;
  options.list_fraction = param.fraction;

  for (const Query& base : Queries()) {
    Query q = base;
    q.op = param.op;
    MineResult exact = engine.Mine(q, Algorithm::kExact, options);
    for (Algorithm a : {Algorithm::kExact, Algorithm::kGm, Algorithm::kSmj,
                        Algorithm::kNra, Algorithm::kSimitsis}) {
      MineResult r = engine.Mine(q, a, options);
      // Size invariant: never more than k.
      EXPECT_LE(r.phrases.size(), param.k) << AlgorithmName(a);
      // Rank invariant: scores non-increasing, ids distinct.
      std::unordered_set<PhraseId> seen;
      for (std::size_t i = 0; i < r.phrases.size(); ++i) {
        if (i > 0) {
          EXPECT_GE(r.phrases[i - 1].score, r.phrases[i].score)
              << AlgorithmName(a);
        }
        EXPECT_TRUE(seen.insert(r.phrases[i].phrase).second)
            << AlgorithmName(a) << " returned a duplicate phrase";
        // Interestingness estimates are in [0, 1] for the ratio measure.
        EXPECT_GE(r.phrases[i].interestingness, 0.0);
        EXPECT_LE(r.phrases[i].interestingness, 1.0 + 1e-9);
      }
      // GM is exact: identical ids to the exact miner.
      if (a == Algorithm::kGm) {
        EXPECT_EQ(testing::Ids(r), testing::Ids(exact));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinerSweepTest,
    ::testing::Values(SweepCase{1, 1.0, QueryOperator::kAnd},
                      SweepCase{1, 1.0, QueryOperator::kOr},
                      SweepCase{5, 1.0, QueryOperator::kAnd},
                      SweepCase{5, 1.0, QueryOperator::kOr},
                      SweepCase{5, 0.5, QueryOperator::kAnd},
                      SweepCase{5, 0.5, QueryOperator::kOr},
                      SweepCase{5, 0.2, QueryOperator::kAnd},
                      SweepCase{5, 0.2, QueryOperator::kOr},
                      SweepCase{20, 1.0, QueryOperator::kAnd},
                      SweepCase{20, 0.3, QueryOperator::kOr},
                      SweepCase{100, 1.0, QueryOperator::kAnd},
                      SweepCase{100, 1.0, QueryOperator::kOr}));

// --- NRA disk determinism ----------------------------------------------------

TEST(NraDiskTest, RepeatedQueriesChargeIdenticalCosts) {
  MiningEngine engine = testing::MakeSmallEngine(300);
  auto q = engine.ParseQuery("topic:0", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  MineResult first = engine.Mine(q.value(), Algorithm::kNraDisk);
  MineResult second = engine.Mine(q.value(), Algorithm::kNraDisk);
  // The simulated cache is cold-reset per query, so costs are reproducible.
  EXPECT_DOUBLE_EQ(first.disk_ms, second.disk_ms);
  EXPECT_EQ(first.entries_read, second.entries_read);
  EXPECT_EQ(testing::Ids(first), testing::Ids(second));
}

TEST(NraDiskTest, DiskAndMemoryAgreeOnResults) {
  MiningEngine engine = testing::MakeSmallEngine(300);
  QuerySetGenerator qgen(QueryGenOptions{.seed = 31, .num_queries = 5});
  auto queries =
      qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  for (Query q : queries) {
    for (QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
      q.op = op;
      MineResult disk = engine.Mine(q, Algorithm::kNraDisk);
      MineResult mem = engine.Mine(q, Algorithm::kNra);
      EXPECT_EQ(testing::Ids(disk), testing::Ids(mem));
      EXPECT_GT(disk.disk_ms, 0.0);
    }
  }
}

TEST(NraDiskTest, PartialListsReduceDiskCost) {
  MiningEngine engine = testing::MakeSmallEngine(400);
  QuerySetGenerator qgen(QueryGenOptions{.seed = 8, .num_queries = 4});
  auto queries =
      qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  ASSERT_FALSE(queries.empty());
  Query q = queries[0];
  q.op = QueryOperator::kOr;
  MineResult small = engine.Mine(
      q, Algorithm::kNraDisk,
      MineOptions{.k = 5, .list_fraction = 0.1, .nra_batch_size = 1u << 30});
  MineResult full = engine.Mine(
      q, Algorithm::kNraDisk,
      MineOptions{.k = 5, .list_fraction = 1.0, .nra_batch_size = 1u << 30});
  EXPECT_LE(small.entries_read, full.entries_read);
  EXPECT_LE(small.disk_ms, full.disk_ms);
}

}  // namespace
}  // namespace phrasemine
