// Cross-algorithm behaviour of the five miners: exactness of the baselines,
// agreement of NRA and SMJ (the paper proves they compute the same function
// when run on the same fraction), bound-based early stopping, and quality
// of the independence approximation against the exact results.

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/engine.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace phrasemine {
namespace {

using testing::Ids;
using testing::MakeSmallEngine;
using testing::MakeTinyEngine;

// Recomputes a phrase's list-based score (Eq. 8 / Eq. 12) directly from the
// word lists at a given partial fraction. This is the function both NRA and
// SMJ approximate, so it is the arbiter when their tie-breaking diverges.
double FullListScore(MiningEngine& engine, const Query& q, PhraseId phrase,
                     double fraction) {
  std::vector<double> probs;
  for (TermId t : q.terms) {
    double prob = 0.0;
    for (const ListEntry& e : engine.word_lists().Partial(t, fraction)) {
      if (e.phrase == phrase) {
        prob = e.prob;
        break;
      }
    }
    probs.push_back(prob);
  }
  return q.op == QueryOperator::kAnd
             ? AndScore(probs)
             : OrScore(probs, OrExpansionOrder::kFirstOrder);
}

// Asserts that two top-k results are score-equivalent: the multisets of
// their (recomputed) list-based scores agree. Massive ties are common --
// many phrases score exactly 1.0 per term -- so id-level equality is too
// strict, and bound-based early termination only fixes the top-k *set* up
// to ties, not the order within equal scores. The paper's own evaluation
// treats tied-at-max results as equally correct.
void ExpectScoreEquivalent(MiningEngine& engine, const Query& q,
                           const MineResult& a, const MineResult& b,
                           double fraction) {
  ASSERT_EQ(a.phrases.size(), b.phrases.size())
      << q.ToString(engine.corpus().vocab());
  std::vector<double> scores_a, scores_b;
  for (std::size_t i = 0; i < a.phrases.size(); ++i) {
    scores_a.push_back(FullListScore(engine, q, a.phrases[i].phrase, fraction));
    scores_b.push_back(FullListScore(engine, q, b.phrases[i].phrase, fraction));
    // Reported scores are upper bounds on the true list score.
    EXPECT_GE(a.phrases[i].score + 1e-9, scores_a.back());
    EXPECT_GE(b.phrases[i].score + 1e-9, scores_b.back());
  }
  std::sort(scores_a.begin(), scores_a.end(), std::greater<double>());
  std::sort(scores_b.begin(), scores_b.end(), std::greater<double>());
  for (std::size_t i = 0; i < scores_a.size(); ++i) {
    EXPECT_NEAR(scores_a[i], scores_b[i], 1e-9)
        << q.ToString(engine.corpus().vocab()) << " rank " << i;
  }
}

// --- Exactness of Exact vs GM ------------------------------------------------

TEST(MinersTest, GmMatchesExactOnTinyCorpus) {
  MiningEngine engine = MakeTinyEngine();
  for (const char* text : {"query optimization", "kernel systems", "db the"}) {
    for (QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
      auto q = engine.ParseQuery(text, op);
      ASSERT_TRUE(q.ok());
      MineResult exact = engine.Mine(q.value(), Algorithm::kExact);
      MineResult gm = engine.Mine(q.value(), Algorithm::kGm);
      ASSERT_EQ(exact.phrases.size(), gm.phrases.size());
      for (std::size_t i = 0; i < exact.phrases.size(); ++i) {
        EXPECT_EQ(exact.phrases[i].phrase, gm.phrases[i].phrase) << text;
        EXPECT_DOUBLE_EQ(exact.phrases[i].score, gm.phrases[i].score);
      }
    }
  }
}

TEST(MinersTest, GmMatchesExactOnSynthetic) {
  MiningEngine engine = MakeSmallEngine();
  QuerySetGenerator qgen(QueryGenOptions{.seed = 3, .num_queries = 12,
                                         .num_six_word = 1,
                                         .num_five_word = 1});
  auto queries = qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  ASSERT_FALSE(queries.empty());
  for (const Query& base : queries) {
    for (QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
      Query q = base;
      q.op = op;
      MineResult exact = engine.Mine(q, Algorithm::kExact);
      MineResult gm = engine.Mine(q, Algorithm::kGm);
      EXPECT_EQ(Ids(exact), Ids(gm));
    }
  }
}

TEST(MinersTest, ExactInterestingnessIsEq1) {
  MiningEngine engine = MakeTinyEngine();
  auto q = engine.ParseQuery("db", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  MineResult result = engine.Mine(q.value(), Algorithm::kExact);
  ASSERT_FALSE(result.phrases.empty());
  // Verify each reported score against a direct Eq. 1 computation.
  const std::vector<DocId> subset =
      EvalSubCollection(q.value(), engine.inverted());
  for (const MinedPhrase& p : result.phrases) {
    const double truth = TrueInterestingness(engine, p.phrase, subset);
    EXPECT_DOUBLE_EQ(p.interestingness, truth);
  }
}

TEST(MinersTest, NormalizationDemotesStopwordPhrases) {
  // The motivating example of Section 1: raw frequency would rank the
  // ubiquitous stopword bigram first; Eq. 1's normalization must not.
  MiningEngine engine = MakeTinyEngine();
  auto q = engine.ParseQuery("query optimization", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  MineResult result =
      engine.Mine(q.value(), Algorithm::kExact, MineOptions{.k = 5});
  const TermId the = engine.corpus().vocab().Lookup("the");
  const TermId of = engine.corpus().vocab().Lookup("of");
  const PhraseId stop_bigram =
      engine.dict().Find(std::vector<TermId>{the, of});
  ASSERT_NE(stop_bigram, kInvalidPhraseId);
  for (const MinedPhrase& p : result.phrases) {
    EXPECT_NE(p.phrase, stop_bigram);
  }
}

// --- NRA / SMJ agreement -----------------------------------------------------

TEST(MinersTest, NraAndSmjAgreeOnFullLists) {
  MiningEngine engine = MakeSmallEngine();
  QuerySetGenerator qgen(QueryGenOptions{.seed = 5, .num_queries = 15,
                                         .num_six_word = 1,
                                         .num_five_word = 2});
  auto queries = qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  ASSERT_GE(queries.size(), 10u);
  engine.SetSmjFraction(1.0);
  for (const Query& base : queries) {
    for (QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
      Query q = base;
      q.op = op;
      MineResult nra = engine.Mine(q, Algorithm::kNra);
      MineResult smj = engine.Mine(q, Algorithm::kSmj);
      ExpectScoreEquivalent(engine, q, nra, smj, 1.0);
    }
  }
}

TEST(MinersTest, NraPartialListMatchesSmjConstructionFraction) {
  MiningEngine engine = MakeSmallEngine();
  QuerySetGenerator qgen(QueryGenOptions{.seed = 9, .num_queries = 10});
  auto queries = qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  ASSERT_GE(queries.size(), 5u);
  for (double fraction : {0.2, 0.5}) {
    engine.SetSmjFraction(fraction);
    for (const Query& base : queries) {
      Query q = base;
      q.op = QueryOperator::kOr;
      MineResult nra =
          engine.Mine(q, Algorithm::kNra,
                      MineOptions{.k = 5, .list_fraction = fraction});
      MineResult smj = engine.Mine(q, Algorithm::kSmj, MineOptions{.k = 5});
      ExpectScoreEquivalent(engine, q, nra, smj, fraction);
    }
  }
}

TEST(MinersTest, NraEarlyTerminationDoesNotChangeResults) {
  MiningEngine engine = MakeSmallEngine();
  QuerySetGenerator qgen(QueryGenOptions{.seed = 21, .num_queries = 10});
  auto queries = qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  for (const Query& base : queries) {
    for (QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
      Query q = base;
      q.op = op;
      // Tiny batch size -> aggressive checking -> earliest stopping.
      MineResult eager = engine.Mine(
          q, Algorithm::kNra, MineOptions{.k = 5, .nra_batch_size = 8});
      // Huge batch size -> no early checks -> reads lists to the end.
      MineResult lazy = engine.Mine(
          q, Algorithm::kNra,
          MineOptions{.k = 5, .nra_batch_size = 100000000});
      ExpectScoreEquivalent(engine, q, eager, lazy, 1.0);
      EXPECT_LE(eager.entries_read, lazy.entries_read);
    }
  }
}

TEST(MinersTest, NraPruningStopsEarly) {
  MiningEngine engine = MakeSmallEngine();
  QuerySetGenerator qgen(QueryGenOptions{.seed = 33, .num_queries = 8});
  auto queries = qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  double avg_fraction = 0.0;
  std::size_t n = 0;
  for (const Query& base : queries) {
    Query q = base;
    q.op = QueryOperator::kOr;
    MineResult r = engine.Mine(q, Algorithm::kNra,
                               MineOptions{.k = 5, .nra_batch_size = 16});
    avg_fraction += r.lists_traversed_fraction;
    ++n;
  }
  ASSERT_GT(n, 0u);
  avg_fraction /= static_cast<double>(n);
  // The Figure 11 claim: bounds allow stopping well before exhaustion.
  EXPECT_LT(avg_fraction, 0.95);
}

// --- Approximation quality (the independence assumption) ----------------------

TEST(MinersTest, SmjQualityHighVsExact) {
  MiningEngine engine = MakeSmallEngine(800);
  QuerySetGenerator qgen(QueryGenOptions{.seed = 13, .num_queries = 20});
  auto queries = qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  ASSERT_GE(queries.size(), 10u);
  engine.EnsureWordListsFor(queries);
  engine.SetSmjFraction(1.0);
  for (QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
    AggregateRun run =
        RunExperiment(engine, queries, op, Algorithm::kSmj,
                      MineOptions{.k = 5}, /*evaluate_quality=*/true);
    // The paper reports > 0.9 on all measures; leave slack for the small
    // synthetic corpus.
    EXPECT_GT(run.quality.ndcg, 0.75) << QueryOperatorName(op);
    EXPECT_GT(run.quality.mrr, 0.7) << QueryOperatorName(op);
  }
}

TEST(MinersTest, SingleTermQueriesAreExact) {
  // With r = 1 the independence assumption is vacuous: P(q|p) equals the
  // normalized interestingness of p in docs(q) under both operators, so SMJ
  // and NRA must reproduce the exact top-k exactly.
  MiningEngine engine = MakeSmallEngine();
  // Single-term queries from moderately frequent terms.
  std::vector<Query> queries;
  for (TermId t = 0; t < engine.corpus().vocab().size() && queries.size() < 8;
       ++t) {
    if (engine.inverted().df(t) >= 30 && engine.inverted().df(t) <= 200) {
      Query q;
      q.terms = {t};
      q.op = QueryOperator::kAnd;
      queries.push_back(q);
    }
  }
  ASSERT_GE(queries.size(), 3u);
  for (const Query& q : queries) {
    MineResult exact = engine.Mine(q, Algorithm::kExact);
    MineResult smj = engine.Mine(q, Algorithm::kSmj);
    ASSERT_EQ(exact.phrases.size(), smj.phrases.size());
    for (std::size_t i = 0; i < exact.phrases.size(); ++i) {
      EXPECT_NEAR(exact.phrases[i].interestingness,
                  smj.phrases[i].interestingness, 1e-9);
    }
  }
}

// --- Simitsis baseline --------------------------------------------------------

TEST(MinersTest, SimitsisReturnsResultsAndStopsEarly) {
  MiningEngine engine = MakeSmallEngine();
  QuerySetGenerator qgen(QueryGenOptions{.seed = 17, .num_queries = 5});
  auto queries = qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  ASSERT_FALSE(queries.empty());
  Query q = queries[0];
  q.op = QueryOperator::kAnd;
  MineResult r = engine.Mine(q, Algorithm::kSimitsis);
  EXPECT_FALSE(r.phrases.empty());
  // Phase-1 cardinality cutoff must avoid scanning the whole dictionary.
  EXPECT_LT(r.lists_traversed_fraction, 1.0);
}

TEST(MinersTest, SimitsisScoresAreTrueInterestingness) {
  MiningEngine engine = MakeTinyEngine();
  auto q = engine.ParseQuery("db", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  MineResult r = engine.Mine(q.value(), Algorithm::kSimitsis);
  const std::vector<DocId> subset =
      EvalSubCollection(q.value(), engine.inverted());
  for (const MinedPhrase& p : r.phrases) {
    EXPECT_DOUBLE_EQ(p.interestingness,
                     TrueInterestingness(engine, p.phrase, subset));
  }
}

// --- Edge cases ----------------------------------------------------------------

TEST(MinersTest, EmptySubCollectionYieldsNoExactResults) {
  MiningEngine engine = MakeTinyEngine();
  // "histograms" (doc 3 only) AND "locks" (doc 5 only) -> empty D'.
  auto q = engine.ParseQuery("histograms locks", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(engine.Mine(q.value(), Algorithm::kExact).phrases.empty());
  EXPECT_TRUE(engine.Mine(q.value(), Algorithm::kGm).phrases.empty());
  // The list-based approximations may still return phrases here: a phrase
  // co-occurring with each term separately gets a non-zero independence
  // estimate even though D' is empty. That is precisely the kind of error
  // the independence assumption admits; verify any such result indeed has
  // true interestingness 0.
  const std::vector<DocId> subset =
      EvalSubCollection(q.value(), engine.inverted());
  ASSERT_TRUE(subset.empty());
  for (Algorithm a : {Algorithm::kSmj, Algorithm::kNra}) {
    for (const MinedPhrase& p : engine.Mine(q.value(), a).phrases) {
      EXPECT_DOUBLE_EQ(TrueInterestingness(engine, p.phrase, subset), 0.0);
    }
  }
}

TEST(MinersTest, KLargerThanCandidates) {
  MiningEngine engine = MakeTinyEngine();
  auto q = engine.ParseQuery("histograms", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  MineResult r =
      engine.Mine(q.value(), Algorithm::kExact, MineOptions{.k = 1000});
  EXPECT_FALSE(r.phrases.empty());
  EXPECT_LE(r.phrases.size(), 1000u);
  // Ranked non-increasing.
  for (std::size_t i = 1; i < r.phrases.size(); ++i) {
    EXPECT_GE(r.phrases[i - 1].score, r.phrases[i].score);
  }
}

TEST(MinersTest, KZeroYieldsEmpty) {
  MiningEngine engine = MakeTinyEngine();
  auto q = engine.ParseQuery("db", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  for (Algorithm a : {Algorithm::kExact, Algorithm::kGm, Algorithm::kSmj,
                      Algorithm::kNra}) {
    EXPECT_TRUE(engine.Mine(q.value(), a, MineOptions{.k = 0}).phrases.empty());
  }
}

TEST(MinersTest, ResultsAreRankedNonIncreasing) {
  MiningEngine engine = MakeSmallEngine();
  QuerySetGenerator qgen(QueryGenOptions{.seed = 41, .num_queries = 6});
  auto queries = qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  for (const Query& base : queries) {
    for (Algorithm a : {Algorithm::kExact, Algorithm::kGm, Algorithm::kSmj,
                        Algorithm::kNra, Algorithm::kSimitsis}) {
      for (QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
        Query q = base;
        q.op = op;
        MineResult r = engine.Mine(q, a, MineOptions{.k = 10});
        for (std::size_t i = 1; i < r.phrases.size(); ++i) {
          EXPECT_GE(r.phrases[i - 1].score, r.phrases[i].score)
              << AlgorithmName(a);
        }
      }
    }
  }
}

TEST(MinersTest, AndResultsRequireCooccurrenceWithAllTerms) {
  MiningEngine engine = MakeSmallEngine();
  QuerySetGenerator qgen(QueryGenOptions{.seed = 55, .num_queries = 5});
  auto queries = qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  ASSERT_FALSE(queries.empty());
  Query q = queries[0];
  q.op = QueryOperator::kAnd;
  MineResult r = engine.Mine(q, Algorithm::kSmj);
  const auto& lists = engine.word_lists();
  for (const MinedPhrase& p : r.phrases) {
    for (TermId t : q.terms) {
      bool found = false;
      for (const ListEntry& e : lists.list(t)) {
        if (e.phrase == p.phrase) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "AND result must co-occur with every query term";
    }
  }
}

}  // namespace
}  // namespace phrasemine
