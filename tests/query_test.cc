#include "core/query.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace phrasemine {
namespace {

using testing::MakeTinyCorpus;

TEST(QueryTest, ParseValidTerms) {
  Corpus corpus = MakeTinyCorpus();
  auto q = Query::Parse("query optimization", QueryOperator::kAnd,
                        corpus.vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().terms.size(), 2u);
  EXPECT_EQ(q.value().op, QueryOperator::kAnd);
}

TEST(QueryTest, ParseUnknownTermFails) {
  Corpus corpus = MakeTinyCorpus();
  auto q = Query::Parse("query zzzunknown", QueryOperator::kOr, corpus.vocab());
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST(QueryTest, ParseEmptyFails) {
  Corpus corpus = MakeTinyCorpus();
  auto q = Query::Parse("   ", QueryOperator::kAnd, corpus.vocab());
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, ToStringShowsOperator) {
  Corpus corpus = MakeTinyCorpus();
  auto q = Query::Parse("query db", QueryOperator::kOr, corpus.vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().ToString(corpus.vocab()), "query OR db");
}

TEST(QueryTest, OperatorNames) {
  EXPECT_STREQ(QueryOperatorName(QueryOperator::kAnd), "AND");
  EXPECT_STREQ(QueryOperatorName(QueryOperator::kOr), "OR");
}

TEST(EvalSubCollectionTest, AndIntersects) {
  Corpus corpus = MakeTinyCorpus();
  InvertedIndex index = InvertedIndex::Build(corpus);
  auto q = Query::Parse("query join", QueryOperator::kAnd, corpus.vocab());
  ASSERT_TRUE(q.ok());
  // "join" occurs in docs 0 and 2; "query" in docs 0-3.
  EXPECT_EQ(EvalSubCollection(q.value(), index), (std::vector<DocId>{0, 2}));
}

TEST(EvalSubCollectionTest, OrUnions) {
  Corpus corpus = MakeTinyCorpus();
  InvertedIndex index = InvertedIndex::Build(corpus);
  auto q = Query::Parse("histograms locks", QueryOperator::kOr, corpus.vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(EvalSubCollection(q.value(), index), (std::vector<DocId>{3, 5}));
}

TEST(EvalSubCollectionTest, SingleTermSameUnderBothOps) {
  Corpus corpus = MakeTinyCorpus();
  InvertedIndex index = InvertedIndex::Build(corpus);
  auto a = Query::Parse("kernel", QueryOperator::kAnd, corpus.vocab());
  auto o = Query::Parse("kernel", QueryOperator::kOr, corpus.vocab());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(o.ok());
  EXPECT_EQ(EvalSubCollection(a.value(), index),
            EvalSubCollection(o.value(), index));
}

TEST(EvalSubCollectionTest, FacetQuery) {
  Corpus corpus;
  corpus.AddTokenized({"alpha"}, {"topic:db", "year:1997"});
  corpus.AddTokenized({"beta"}, {"topic:db", "year:1998"});
  corpus.AddTokenized({"gamma"}, {"topic:os", "year:1997"});
  InvertedIndex index = InvertedIndex::Build(corpus);
  auto q = Query::Parse("topic:db year:1997", QueryOperator::kAnd,
                        corpus.vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(EvalSubCollection(q.value(), index), (std::vector<DocId>{0}));
}

}  // namespace
}  // namespace phrasemine
