// Per-shard disk tier: the DiskResidentLists spill policy (pin the
// hottest lists by term df, spill the cold tail), the free-read contract
// of pinned lists, placement determinism, and the planner's disk-aware
// routing over a real disk-backed engine.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/disk_lists.h"
#include "core/engine.h"
#include "index/list_entry.h"
#include "service/planner.h"
#include "shard/sharded_engine.h"
#include "test_util.h"

namespace phrasemine {
namespace {

using testing::MakeSmallEngine;

/// Terms with built word lists on `engine`, covering every term with a
/// positive df (BuildAll keeps the test independent of query harvesting).
std::vector<TermId> BuildAllLists(MiningEngine& engine) {
  std::vector<TermId> terms;
  for (TermId t = 0; t < engine.inverted().num_terms(); ++t) {
    if (engine.inverted().df(t) > 0) terms.push_back(t);
  }
  engine.EnsureWordLists(terms);
  return terms;
}

/// The df-descending (ties: smaller id) hotness order the policy pins by.
std::vector<TermId> HotnessOrder(const MiningEngine& engine,
                                 std::vector<TermId> terms) {
  std::sort(terms.begin(), terms.end(), [&](TermId a, TermId b) {
    const uint32_t da = engine.inverted().df(a);
    const uint32_t db = engine.inverted().df(b);
    if (da != db) return da > db;
    return a < b;
  });
  return terms;
}

/// A two-term OR query over the engine's highest-df terms (the synthetic
/// vocabulary is generated pseudo-words, so queries are built from term
/// ids rather than parsed text).
Query HeavyQuery(const MiningEngine& engine) {
  std::vector<TermId> terms;
  for (TermId t = 0; t < engine.inverted().num_terms(); ++t) {
    if (engine.inverted().df(t) > 0) terms.push_back(t);
  }
  std::sort(terms.begin(), terms.end(), [&](TermId a, TermId b) {
    return engine.inverted().df(a) > engine.inverted().df(b);
  });
  Query query;
  query.op = QueryOperator::kOr;
  query.terms = {terms.at(0), terms.at(1)};
  std::sort(query.terms.begin(), query.terms.end());
  return query;
}

TEST(DiskTierTest, ResidentSetPinsHottestStrictPrefix) {
  MiningEngine engine = MakeSmallEngine();
  const std::vector<TermId> terms = BuildAllLists(engine);
  ASSERT_GT(terms.size(), 4u);

  // Budget 0: everything spills.
  EXPECT_TRUE(DiskResidentLists::ResidentSet(engine.word_lists(),
                                             engine.inverted(), 0)
                  .empty());

  // Budget covering every list: everything pinned.
  const uint64_t all_bytes = engine.word_lists().InMemoryBytes();
  EXPECT_EQ(DiskResidentLists::ResidentSet(engine.word_lists(),
                                           engine.inverted(), all_bytes)
                .size(),
            terms.size());

  // A partial budget pins exactly the strict prefix of the hotness
  // order: walk the order accumulating bytes; pinning must stop at the
  // first list that does not fit and everything after must spill.
  const std::vector<TermId> order = HotnessOrder(engine, terms);
  const uint64_t budget = all_bytes / 3;
  const auto resident = DiskResidentLists::ResidentSet(
      engine.word_lists(), engine.inverted(), budget);
  EXPECT_FALSE(resident.empty());
  EXPECT_LT(resident.size(), terms.size());
  uint64_t used = 0;
  bool stopped = false;
  for (TermId t : order) {
    const uint64_t bytes =
        engine.word_lists().list(t).size() * kListEntryInMemoryBytes;
    if (!stopped && used + bytes <= budget) {
      used += bytes;
      EXPECT_TRUE(resident.contains(t)) << "hot term " << t << " not pinned";
    } else {
      stopped = true;  // cold tail: everything from here on spills
      EXPECT_FALSE(resident.contains(t)) << "cold term " << t << " pinned";
    }
  }
}

TEST(DiskTierTest, PlacementIsDeterministicAcrossIdenticalEngines) {
  MiningEngine a = MakeSmallEngine();
  MiningEngine b = MakeSmallEngine();
  BuildAllLists(a);
  BuildAllLists(b);
  const uint64_t budget = a.word_lists().InMemoryBytes() / 2;
  const auto ra =
      DiskResidentLists::ResidentSet(a.word_lists(), a.inverted(), budget);
  const auto rb =
      DiskResidentLists::ResidentSet(b.word_lists(), b.inverted(), budget);
  EXPECT_EQ(ra, rb);
  EXPECT_FALSE(ra.empty());
}

TEST(DiskTierTest, ResidentReadsChargeNothingSpilledReadsCharge) {
  MiningEngine engine = MakeSmallEngine();
  const std::vector<TermId> terms = BuildAllLists(engine);
  const std::vector<TermId> order = HotnessOrder(engine, terms);
  const TermId hottest = order.front();
  const TermId coldest = order.back();
  ASSERT_GT(engine.word_lists().list(hottest).size(), 0u);
  ASSERT_GT(engine.word_lists().list(coldest).size(), 0u);

  DiskTierOptions options;
  options.resident_budget_bytes =
      engine.word_lists().list(hottest).size() * kListEntryInMemoryBytes;
  DiskResidentLists tier(engine.word_lists(), engine.phrase_file(),
                         engine.inverted(), options);
  ASSERT_TRUE(tier.resident(hottest));
  ASSERT_FALSE(tier.resident(coldest));
  EXPECT_GT(tier.resident_bytes(), 0u);
  EXPECT_GT(tier.spilled_bytes(), 0u);

  tier.ChargeListRead(hottest, 0);
  EXPECT_EQ(tier.device().stats().page_requests, 0u);
  EXPECT_DOUBLE_EQ(tier.device().stats().cost_ms, 0.0);

  tier.ChargeListRead(coldest, 0);
  EXPECT_GT(tier.device().stats().page_requests, 0u);
  EXPECT_GT(tier.device().stats().cost_ms, 0.0);
  EXPECT_EQ(tier.device().stats().bytes_read, kListEntryBytes);
}

TEST(DiskTierTest, BudgetZeroMatchesLegacyAllSpillConstruction) {
  MiningEngine engine = MakeSmallEngine();
  const std::vector<TermId> terms = BuildAllLists(engine);

  DiskResidentLists legacy(engine.word_lists(), engine.phrase_file());
  DiskResidentLists tier(engine.word_lists(), engine.phrase_file(),
                         engine.inverted(), DiskTierOptions{});
  EXPECT_EQ(legacy.num_spilled(), tier.num_spilled());
  EXPECT_EQ(legacy.spilled_bytes(), tier.spilled_bytes());
  EXPECT_EQ(tier.num_resident(), 0u);

  // Same read pattern, same charge.
  for (TermId t : terms) {
    if (engine.word_lists().list(t).empty()) continue;
    legacy.ChargeListRead(t, 0);
    tier.ChargeListRead(t, 0);
  }
  EXPECT_DOUBLE_EQ(legacy.device().stats().cost_ms,
                   tier.device().stats().cost_ms);
  EXPECT_EQ(legacy.device().stats().page_requests,
            tier.device().stats().page_requests);
}

TEST(DiskTierTest, EngineResultsIdenticalAcrossBudgets) {
  MiningEngineOptions options;
  options.disk_backed = true;
  options.disk_resident_budget = 0;
  MiningEngine engine = MiningEngine::Build(
      testing::MakeSmallSyntheticCorpus(), options);
  const Query query = HeavyQuery(engine);

  const MineResult on_disk = engine.Mine(query, Algorithm::kNraDisk);
  EXPECT_GT(on_disk.disk_ms, 0.0);
  EXPECT_GT(on_disk.disk_io.blocks_read, 0u);
  EXPECT_GT(on_disk.disk_io.bytes, 0u);
  EXPECT_GE(on_disk.disk_io.blocks_read, on_disk.disk_io.seeks);

  engine.SetDiskResidentBudget(engine.word_lists().InMemoryBytes());
  const MineResult resident = engine.Mine(query, Algorithm::kNraDisk);
  const MineResult in_memory = engine.Mine(query, Algorithm::kNra);

  // Placement moves cost, never contents: bitwise-identical ranking.
  ASSERT_FALSE(on_disk.phrases.empty());
  EXPECT_EQ(testing::RankedSignature(on_disk),
            testing::RankedSignature(resident));
  EXPECT_EQ(testing::RankedSignature(on_disk),
            testing::RankedSignature(in_memory));
  // All-resident charges only the final phrase lookups; the list reads
  // that dominated the budget-0 run are gone.
  EXPECT_LT(resident.disk_ms, on_disk.disk_ms);
  EXPECT_LT(resident.disk_io.blocks_read, on_disk.disk_io.blocks_read);
}

TEST(DiskTierTest, EngineLevelTierSurvivesShardedBuild) {
  // A tier declared only on the embedded engine options must not be
  // silently dropped by ShardedEngine::Build's fleet-level switches
  // (Build merges the two surfaces, set-wins).
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.engine.extractor.min_df = 3;
  options.engine.disk_backed = true;
  options.engine.disk_resident_budget = 0;
  ShardedEngine sharded = ShardedEngine::Build(
      testing::MakeSmallSyntheticCorpus(300), std::move(options));
  EXPECT_TRUE(sharded.options().disk_backed);
  EXPECT_TRUE(sharded.options().engine.disk_backed);

  const Query query = HeavyQuery(sharded.shard(0));
  const ShardedMineResult mined =
      sharded.Mine(query, Algorithm::kNraDisk, MineOptions{.k = 5});
  EXPECT_GT(mined.result.disk_io.blocks_read, 0u);
  EXPECT_GT(mined.result.disk_ms, 0.0);
}

TEST(DiskTierTest, PlannerRoutesDiskBackedEngineToNraDisk) {
  // Identical corpora, one engine disk-backed: the planner must offer
  // kNraDisk (never bare kNra) on the disk-backed engine and kNra on the
  // in-memory one, with placement surfaced in the gathered inputs.
  MiningEngineOptions disk_options;
  disk_options.disk_backed = true;
  disk_options.disk_resident_budget = 0;
  MiningEngine disk_engine = MiningEngine::Build(
      testing::MakeSmallSyntheticCorpus(), disk_options);
  MiningEngine mem_engine =
      MiningEngine::Build(testing::MakeSmallSyntheticCorpus());

  const Query query = HeavyQuery(disk_engine);
  disk_engine.EnsureWordLists(query.terms);
  mem_engine.EnsureWordLists(query.terms);

  CostPlanner disk_planner(&disk_engine);
  CostPlanner mem_planner(&mem_engine);

  const PlannerInputs disk_inputs =
      disk_planner.GatherInputs(query, MineOptions{});
  EXPECT_TRUE(disk_inputs.disk_backed);
  for (const TermPlanStats& t : disk_inputs.terms) {
    EXPECT_TRUE(t.on_disk) << "budget 0 must spill term " << t.term;
    EXPECT_GT(t.disk_blocks, 0u);
  }
  const PlannerInputs mem_inputs =
      mem_planner.GatherInputs(query, MineOptions{});
  EXPECT_FALSE(mem_inputs.disk_backed);
  for (const TermPlanStats& t : mem_inputs.terms) {
    EXPECT_FALSE(t.on_disk);
    EXPECT_EQ(t.disk_blocks, 0u);
  }

  const PlanDecision disk_plan = disk_planner.Plan(query, MineOptions{});
  const PlanDecision mem_plan = mem_planner.Plan(query, MineOptions{});
  for (const auto& [algorithm, cost] : disk_plan.estimated_costs) {
    EXPECT_NE(algorithm, Algorithm::kNra)
        << "disk-backed engines must cost the NRA candidate as kNraDisk";
  }
  for (const auto& [algorithm, cost] : mem_plan.estimated_costs) {
    EXPECT_NE(algorithm, Algorithm::kNraDisk);
  }
  // Pinning everything removes the I/O terms: the kNraDisk candidate's
  // cost collapses to the in-memory kNra cost (same model, new label).
  disk_engine.SetDiskResidentBudget(
      disk_engine.word_lists().InMemoryBytes());
  const PlanDecision pinned_plan = disk_planner.Plan(query, MineOptions{});
  double pinned_nra = -1.0, mem_nra = -1.0, spilled_nra = -1.0;
  for (const auto& [algorithm, cost] : pinned_plan.estimated_costs) {
    if (algorithm == Algorithm::kNraDisk) pinned_nra = cost;
  }
  for (const auto& [algorithm, cost] : mem_plan.estimated_costs) {
    if (algorithm == Algorithm::kNra) mem_nra = cost;
  }
  for (const auto& [algorithm, cost] : disk_plan.estimated_costs) {
    if (algorithm == Algorithm::kNraDisk) spilled_nra = cost;
  }
  ASSERT_GE(pinned_nra, 0.0);
  ASSERT_GE(mem_nra, 0.0);
  ASSERT_GE(spilled_nra, 0.0);
  EXPECT_DOUBLE_EQ(pinned_nra, mem_nra);
  EXPECT_GT(spilled_nra, pinned_nra);
}

}  // namespace
}  // namespace phrasemine
