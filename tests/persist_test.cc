// Persistence acceptance: engines and fleets reopened from their index
// files answer bitwise-identically to the freshly built originals, across
// every algorithm including the measured (mmap-backed) disk path, after
// updates and rebuilds, and through a restarted PhraseService.

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "service/service.h"
#include "shard/sharded_engine.h"
#include "test_util.h"

namespace phrasemine {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveFleet(const std::string& prefix, std::size_t shards) {
  std::remove(ShardedEngine::FleetManifestPath(prefix).c_str());
  for (std::size_t s = 0; s < shards; ++s) {
    std::remove(ShardedEngine::ShardFilePath(prefix, s).c_str());
  }
}

TEST(PersistTest, BuildWithPersistPathAutoPersists) {
  const std::string path = TempPath("auto_persist.pmidx");
  MiningEngine::Options options;
  options.extractor.min_df = 2;
  options.extractor.max_phrase_len = 4;
  options.persist_path = path;
  MiningEngine original =
      MiningEngine::Build(testing::MakeTinyCorpus(), options);
  ASSERT_TRUE(original.persist_status().ok())
      << original.persist_status().message();

  auto q = original.ParseQuery("query optimization", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  // Warm lists on the original only: the loaded engine must produce the
  // same answers from its own (file-decoded) structures.
  (void)original.Mine(q.value(), Algorithm::kSmj);

  auto loaded = MiningEngine::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  MiningEngine& reopened = loaded.value();
  ASSERT_NE(reopened.index_file(), nullptr);

  auto q2 = reopened.ParseQuery("query optimization", QueryOperator::kAnd);
  ASSERT_TRUE(q2.ok());
  for (Algorithm a :
       {Algorithm::kExact, Algorithm::kGm, Algorithm::kSimitsis,
        Algorithm::kSmj, Algorithm::kNra, Algorithm::kNraDisk}) {
    EXPECT_EQ(testing::RankedSignature(reopened.Mine(q2.value(), a)),
              testing::RankedSignature(original.Mine(q.value(), a)))
        << AlgorithmName(a);
  }
  std::remove(path.c_str());
}

TEST(PersistTest, LoadedEngineMeasuresRealDiskIo) {
  const std::string path = TempPath("measured.pmidx");
  MiningEngine original = testing::MakeSmallEngine(200);
  auto q = original.ParseQuery("topic:0", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  // Materialize the query's word lists so the file carries their bytes
  // and the loaded disk tier can back the lists with real mapped ranges.
  MineResult from_memory = original.Mine(q.value(), Algorithm::kNra);
  ASSERT_TRUE(original.SaveToFile(path).ok());

  auto loaded = MiningEngine::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  MiningEngine& reopened = loaded.value();
  ASSERT_NE(reopened.index_file(), nullptr);
  EXPECT_GT(reopened.index_file()->open_ms(), 0.0);

  auto q2 = reopened.ParseQuery("topic:0", QueryOperator::kAnd);
  ASSERT_TRUE(q2.ok());
  const MineResult measured = reopened.Mine(q2.value(), Algorithm::kNraDisk);
  // Identical ranking (the disk tier moves cost, never contents) with
  // real I/O observed: the backend touched mapped bytes, not a model.
  EXPECT_EQ(testing::RankedSignature(measured),
            testing::RankedSignature(from_memory));
  EXPECT_GT(measured.disk_io.bytes, 0u);
  EXPECT_GT(measured.disk_io.blocks_read, 0u);
  std::remove(path.c_str());
}

TEST(PersistTest, RebuildRePersistsUpdatedState) {
  const std::string path = TempPath("rebuild_persist.pmidx");
  MiningEngine::Options options;
  options.extractor.min_df = 2;
  options.extractor.max_phrase_len = 4;
  options.persist_path = path;
  MiningEngine engine =
      MiningEngine::Build(testing::MakeTinyCorpus(), options);

  UpdateBatch batch;
  batch.inserts.push_back(UpdateDoc{
      {"query", "optimization", "beats", "guessing", "db"}, {}});
  batch.deletes.push_back(5);
  (void)engine.ApplyUpdate(batch);
  engine.Rebuild();  // absorbs the delta and re-persists
  ASSERT_TRUE(engine.persist_status().ok())
      << engine.persist_status().message();

  auto loaded = MiningEngine::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  MiningEngine& reopened = loaded.value();
  EXPECT_EQ(reopened.corpus().size(), engine.corpus().size());

  auto q = engine.ParseQuery("query optimization", QueryOperator::kAnd);
  auto q2 = reopened.ParseQuery("query optimization", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q2.ok());
  for (Algorithm a : {Algorithm::kExact, Algorithm::kSmj, Algorithm::kNra}) {
    EXPECT_EQ(testing::RankedSignature(reopened.Mine(q2.value(), a)),
              testing::RankedSignature(engine.Mine(q.value(), a)))
        << AlgorithmName(a);
  }
  std::remove(path.c_str());
}

TEST(PersistTest, ShardedFleetRoundTrip) {
  const std::string prefix = TempPath("fleet_roundtrip");
  ShardedEngineOptions options;
  options.num_shards = 3;
  options.engine.extractor.min_df = 2;
  options.engine.extractor.max_phrase_len = 4;
  options.persist_path = prefix;
  ShardedEngine original =
      ShardedEngine::Build(testing::MakeTinyCorpus(), options);
  ASSERT_TRUE(original.persist_status().ok())
      << original.persist_status().message();

  auto loaded = ShardedEngine::LoadFromFiles(prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ShardedEngine& reopened = loaded.value();
  EXPECT_EQ(reopened.num_shards(), 3u);
  EXPECT_EQ(reopened.num_docs(), original.num_docs());
  EXPECT_EQ(reopened.phrase_set().size(), original.phrase_set().size());

  auto q = original.ParseQuery("query optimization", QueryOperator::kAnd);
  auto q2 = reopened.ParseQuery("query optimization", QueryOperator::kAnd);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q2.ok());
  for (Algorithm a : {Algorithm::kExact, Algorithm::kGm, Algorithm::kSmj,
                      Algorithm::kNra, Algorithm::kSimitsis}) {
    const ShardedMineResult from_original = original.Mine(q.value(), a);
    const ShardedMineResult from_reopened = reopened.Mine(q2.value(), a);
    EXPECT_EQ(testing::RankedSignature(from_reopened.result),
              testing::RankedSignature(from_original.result))
        << AlgorithmName(a);
    EXPECT_EQ(from_reopened.texts, from_original.texts) << AlgorithmName(a);
  }

  // The restored document routing still accepts updates.
  UpdateBatch batch;
  batch.inserts.push_back(UpdateDoc{{"kernel", "systems", "db"}, {}});
  batch.deletes.push_back(0);
  const ShardedUpdateStats stats = reopened.ApplyUpdate(batch);
  EXPECT_EQ(stats.total.live_docs, original.num_docs());  // +1 -1
  RemoveFleet(prefix, 3);
}

TEST(PersistTest, ShardedSaveRefusesPendingDeltas) {
  const std::string prefix = TempPath("fleet_pending");
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.engine.extractor.min_df = 2;
  ShardedEngine sharded =
      ShardedEngine::Build(testing::MakeTinyCorpus(), options);

  UpdateBatch batch;
  batch.inserts.push_back(UpdateDoc{{"query", "optimization", "db"}, {}});
  (void)sharded.ApplyUpdate(batch);

  const Status refused = sharded.SaveToFiles(prefix);
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);

  sharded.Rebuild();  // absorbs the delta; the family is now writable
  ASSERT_TRUE(sharded.SaveToFiles(prefix).ok());
  auto loaded = ShardedEngine::LoadFromFiles(prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().num_docs(), sharded.num_docs());
  RemoveFleet(prefix, 2);
}

TEST(PersistTest, ServiceRestartAnswersIdentically) {
  // The end-to-end restart contract: a PhraseService constructed over an
  // engine reopened from its index file answers every query with the
  // same ranked phrases and scores as a service over the original.
  const std::string path = TempPath("service_restart.pmidx");
  MiningEngine original = testing::MakeSmallEngine(200);
  {
    auto warm = original.ParseQuery("topic:0 topic:1", QueryOperator::kOr);
    ASSERT_TRUE(warm.ok());
    (void)original.Mine(warm.value(), Algorithm::kSmj);
  }
  ASSERT_TRUE(original.SaveToFile(path).ok());
  auto loaded = MiningEngine::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  MiningEngine& reopened = loaded.value();

  PhraseService before(&original);
  PhraseService after(&reopened);
  for (const char* text : {"topic:0", "topic:1 topic:2", "topic:0 topic:3"}) {
    auto q = original.ParseQuery(text, QueryOperator::kOr);
    auto q2 = reopened.ParseQuery(text, QueryOperator::kOr);
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(q2.ok());
    for (Algorithm a :
         {Algorithm::kExact, Algorithm::kSmj, Algorithm::kNra}) {
      const ServiceReply reply_before =
          before.MineSync(ServiceRequest{q.value(), MineOptions{}, a});
      const ServiceReply reply_after =
          after.MineSync(ServiceRequest{q2.value(), MineOptions{}, a});
      EXPECT_EQ(testing::RankedSignature(reply_after.result),
                testing::RankedSignature(reply_before.result))
          << text << " / " << AlgorithmName(a);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace phrasemine
