#include <set>

#include "eval/query_gen.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace phrasemine {
namespace {

TEST(QueryGenTest, ProducesRequestedCountAndLengths) {
  MiningEngine engine = testing::MakeSmallEngine();
  QueryGenOptions options;
  options.num_queries = 30;
  options.num_six_word = 2;
  options.num_five_word = 2;
  QuerySetGenerator qgen(options);
  auto queries = qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  ASSERT_EQ(queries.size(), 30u);

  std::size_t six = 0, five = 0;
  for (const Query& q : queries) {
    EXPECT_GE(q.terms.size(), 2u);
    EXPECT_LE(q.terms.size(), 6u);
    if (q.terms.size() == 6) ++six;
    if (q.terms.size() == 5) ++five;
  }
  // The paper's shape: two six-word and two five-word queries.
  EXPECT_EQ(six, 2u);
  EXPECT_EQ(five, 2u);
}

TEST(QueryGenTest, QueriesAreDistinct) {
  MiningEngine engine = testing::MakeSmallEngine();
  QuerySetGenerator qgen(QueryGenOptions{.seed = 2, .num_queries = 25});
  auto queries = qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  std::set<std::vector<TermId>> seen;
  for (Query q : queries) {
    std::sort(q.terms.begin(), q.terms.end());
    EXPECT_TRUE(seen.insert(q.terms).second) << "duplicate query";
  }
}

TEST(QueryGenTest, TermsAreFrequentEnough) {
  MiningEngine engine = testing::MakeSmallEngine();
  QueryGenOptions options;
  options.num_queries = 20;
  options.min_term_df = 12;
  QuerySetGenerator qgen(options);
  auto queries = qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  for (const Query& q : queries) {
    for (TermId t : q.terms) {
      EXPECT_GE(engine.inverted().df(t), 12u);
    }
  }
}

TEST(QueryGenTest, Deterministic) {
  MiningEngine engine = testing::MakeSmallEngine();
  QuerySetGenerator a(QueryGenOptions{.seed = 9, .num_queries = 10});
  QuerySetGenerator b(QueryGenOptions{.seed = 9, .num_queries = 10});
  auto qa = a.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  auto qb = b.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  ASSERT_EQ(qa.size(), qb.size());
  for (std::size_t i = 0; i < qa.size(); ++i) {
    EXPECT_EQ(qa[i].terms, qb[i].terms);
  }
}

TEST(QueryGenTest, AndSubCollectionsNonEmpty) {
  // Harvested from co-occurring phrase words, so the AND of the terms
  // should select at least one document for most queries.
  MiningEngine engine = testing::MakeSmallEngine();
  QuerySetGenerator qgen(QueryGenOptions{.seed = 4, .num_queries = 15});
  auto queries = qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  std::size_t non_empty = 0;
  for (Query q : queries) {
    q.op = QueryOperator::kAnd;
    if (!EvalSubCollection(q, engine.inverted()).empty()) ++non_empty;
  }
  EXPECT_GE(non_empty, queries.size() / 2);
}

TEST(QueryGenTest, WithOperatorSwitches) {
  std::vector<Query> queries(3);
  for (auto& q : queries) q.op = QueryOperator::kAnd;
  auto switched = WithOperator(queries, QueryOperator::kOr);
  for (const auto& q : switched) EXPECT_EQ(q.op, QueryOperator::kOr);
}

}  // namespace
}  // namespace phrasemine
