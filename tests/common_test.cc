#include <cstdio>
#include <string>

#include "common/io_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "gtest/gtest.h"

namespace phrasemine {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IOError("disk gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(RngTest, Deterministic) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(ZipfSamplerTest, ProbabilitiesSumToOne) {
  ZipfSampler zipf(50, 1.1);
  double total = 0.0;
  for (std::size_t i = 0; i < zipf.size(); ++i) total += zipf.Probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, RankZeroMostProbable) {
  ZipfSampler zipf(100, 1.0);
  EXPECT_GT(zipf.Probability(0), zipf.Probability(1));
  EXPECT_GT(zipf.Probability(1), zipf.Probability(50));
}

TEST(ZipfSamplerTest, EmpiricalSkewMatches) {
  ZipfSampler zipf(10, 1.0);
  Rng rng(5);
  std::vector<int> histogram(10, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++histogram[zipf.Sample(rng)];
  // Rank 0 should be drawn roughly 1/H_10 ≈ 0.34 of the time.
  EXPECT_NEAR(static_cast<double>(histogram[0]) / n, zipf.Probability(0), 0.02);
  EXPECT_GT(histogram[0], histogram[4]);
}

TEST(ZipfSamplerTest, SingleOutcome) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(1);
  EXPECT_EQ(zipf.Sample(rng), 0u);
  EXPECT_NEAR(zipf.Probability(0), 1.0, 1e-12);
}

TEST(BinaryIoTest, ScalarRoundTrip) {
  BinaryWriter w;
  w.PutU8(7);
  w.PutU32(123456);
  w.PutU64(987654321012345ULL);
  w.PutDouble(3.25);
  w.PutString("hello");

  BinaryReader r(w.TakeBuffer());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  double d;
  std::string s;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 123456u);
  EXPECT_EQ(u64, 987654321012345ULL);
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, VectorRoundTrip) {
  BinaryWriter w;
  std::vector<uint32_t> v = {1, 2, 3, 0xFFFFFFFF};
  w.PutU32Vector(v);
  BinaryReader r(w.TakeBuffer());
  std::vector<uint32_t> out;
  ASSERT_TRUE(r.GetU32Vector(&out).ok());
  EXPECT_EQ(out, v);
}

TEST(BinaryIoTest, TruncatedReadFails) {
  BinaryWriter w;
  w.PutU32(5);
  BinaryReader r(w.TakeBuffer());
  uint64_t u64;
  EXPECT_FALSE(r.GetU64(&u64).ok());
}

TEST(BinaryIoTest, CorruptStringLengthFails) {
  BinaryWriter w;
  w.PutU32(1000);  // Claims 1000 bytes follow; none do.
  BinaryReader r(w.TakeBuffer());
  std::string s;
  EXPECT_EQ(r.GetString(&s).code(), StatusCode::kCorruption);
}

TEST(BinaryIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pm_io_test.bin";
  BinaryWriter w;
  w.PutU32(2024);
  w.PutString("edbt");
  ASSERT_TRUE(w.WriteToFile(path).ok());

  auto r = BinaryReader::FromFile(path);
  ASSERT_TRUE(r.ok());
  uint32_t year;
  std::string venue;
  ASSERT_TRUE(r.value().GetU32(&year).ok());
  ASSERT_TRUE(r.value().GetString(&venue).ok());
  EXPECT_EQ(year, 2024u);
  EXPECT_EQ(venue, "edbt");
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileFails) {
  auto r = BinaryReader::FromFile("/nonexistent/path/file.bin");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(StopWatchTest, MeasuresElapsedTime) {
  StopWatch watch;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sink, 0.0);
  EXPECT_GE(watch.ElapsedMicros(), 0);
  const double ms = watch.ElapsedMillis();
  EXPECT_GE(ms, 0.0);
}

}  // namespace
}  // namespace phrasemine
