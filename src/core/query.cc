#include "core/query.h"

#include <sstream>

#include "core/kernels.h"

namespace phrasemine {

const char* QueryOperatorName(QueryOperator op) {
  return op == QueryOperator::kAnd ? "AND" : "OR";
}

Result<Query> Query::Parse(std::string_view text, QueryOperator op,
                           const Vocabulary& vocab) {
  Query query;
  query.op = op;
  std::istringstream stream{std::string(text)};
  std::string word;
  while (stream >> word) {
    const TermId id = vocab.Lookup(word);
    if (id == kInvalidTermId) {
      return Status::NotFound("unknown query term: " + word);
    }
    query.terms.push_back(id);
  }
  if (query.terms.empty()) {
    return Status::InvalidArgument("query has no terms");
  }
  return query;
}

std::string Query::ToString(const Vocabulary& vocab) const {
  std::string out;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += (op == QueryOperator::kAnd) ? " AND " : " OR ";
    out += vocab.TermText(terms[i]);
  }
  return out;
}

std::vector<DocId> EvalSubCollection(const Query& query,
                                     const InvertedIndex& inverted) {
  std::vector<const std::vector<DocId>*> lists;
  lists.reserve(query.terms.size());
  for (TermId t : query.terms) {
    lists.push_back(&inverted.docs(t));
  }
  // The galloping/merge kernels produce exactly InvertedIndex::
  // Intersect/Union's sorted unique output (the kernel property test
  // pits them against each other); those remain the scalar reference.
  if (query.op == QueryOperator::kAnd) {
    return kernels::IntersectSorted(lists);
  }
  return kernels::UnionSorted(lists);
}

}  // namespace phrasemine
