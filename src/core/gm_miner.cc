#include "core/gm_miner.h"

#include "common/check.h"
#include "common/stopwatch.h"
#include "core/exact_miner.h"

namespace phrasemine {

GmMiner::GmMiner(const InvertedIndex& inverted, const ForwardIndex& forward,
                 const PhraseDictionary& dict)
    : inverted_(inverted), forward_(forward), dict_(dict) {
  counts_.assign(dict_.size(), 0);
  last_doc_.assign(dict_.size(), kInvalidTermId);
}

MineResult GmMiner::Mine(const Query& query, const MineOptions& options) {
  StopWatch watch;
  MineResult result;

  const std::vector<DocId> subset = EvalSubCollection(query, inverted_);
  result.subcollection_size = subset.size();

  touched_.clear();
  for (DocId d : subset) {
    for (PhraseId stored : forward_.stored(d)) {
      ++result.entries_read;
      // Count the stored phrase and all implied prefixes. The chain walk
      // stops at the first phrase already counted for this document: if a
      // phrase was counted, so were all its ancestors.
      PhraseId p = stored;
      while (p != kInvalidPhraseId && last_doc_[p] != d) {
        last_doc_[p] = d;
        if (counts_[p] == 0) touched_.push_back(p);
        ++counts_[p];
        p = dict_.info(p).parent;
      }
    }
  }

  TopKCollector collector(options.k);
  for (PhraseId p : touched_) {
    const uint32_t df = dict_.df(p);
    PM_CHECK(df > 0);
    const double score =
        EvaluateInterestingness(options.measure, counts_[p], df,
                                subset.size(), forward_.num_docs());
    collector.Offer(p, score, score);
    counts_[p] = 0;
    last_doc_[p] = kInvalidTermId;
  }
  result.phrases = collector.Take();
  result.compute_ms = watch.ElapsedMillis();
  return result;
}

}  // namespace phrasemine
