#ifndef PHRASEMINE_CORE_DELTA_INDEX_H_
#define PHRASEMINE_CORE_DELTA_INDEX_H_

#include <cstdint>
#include <span>
#include <unordered_map>

#include "phrase/phrase_dictionary.h"
#include "text/types.h"

namespace phrasemine {

/// Incremental-update overlay of Section 4.5.1. The word-specific lists
/// hold pre-computed conditional probabilities, which are expensive to keep
/// current under document churn; instead, inserted and deleted documents
/// are accumulated here, and when SMJ or NRA takes a phrase into its
/// candidate set it queries this index for the delta of the (word, phrase)
/// co-occurrence count and of the phrase's document frequency, from which
/// the corrected conditional probability follows. The paper notes -- and
/// our tests confirm -- that this keeps SMJ exact w.r.t. the updated
/// corpus, while NRA's pruning bounds become approximate (adjusted scores
/// need not respect the stored list order). Phrases that only become
/// frequent through updates are deliberately out of scope: they enter P at
/// the next periodic offline rebuild.
class DeltaIndex {
 public:
  explicit DeltaIndex(const PhraseDictionary& dict) : dict_(dict) {}

  /// Registers an inserted document given its token and facet term ids.
  void AddDocument(std::span<const TermId> tokens,
                   std::span<const TermId> facets = {});

  /// Registers a deletion of a document with this content.
  void RemoveDocument(std::span<const TermId> tokens,
                      std::span<const TermId> facets = {});

  /// Net change of |docs(p)| from the accumulated updates.
  int64_t DfDelta(PhraseId p) const;

  /// Net change of |docs(w) ∩ docs(p)|.
  int64_t CoDelta(TermId w, PhraseId p) const;

  /// Corrects a stored P(w|p) for the accumulated updates. `base_prob` is
  /// the pre-computed list value; the base co-occurrence count is recovered
  /// from it via the dictionary's base df. Returns a probability clamped to
  /// [0, 1]; a phrase whose adjusted df reaches zero yields 0.
  double AdjustedProb(TermId w, PhraseId p, double base_prob) const;

  /// Number of Add/Remove calls absorbed since construction; drives the
  /// "flush and rebuild offline" policy.
  std::size_t pending_updates() const { return pending_updates_; }

 private:
  static uint64_t CoKey(TermId w, PhraseId p) {
    return (static_cast<uint64_t>(w) << 32) | p;
  }

  void Apply(std::span<const TermId> tokens, std::span<const TermId> facets,
             int64_t sign);

  const PhraseDictionary& dict_;
  std::unordered_map<PhraseId, int64_t> df_delta_;
  std::unordered_map<uint64_t, int64_t> co_delta_;
  std::size_t pending_updates_ = 0;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_CORE_DELTA_INDEX_H_
