#ifndef PHRASEMINE_CORE_DELTA_INDEX_H_
#define PHRASEMINE_CORE_DELTA_INDEX_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "index/word_lists.h"
#include "phrase/phrase_dictionary.h"
#include "text/types.h"

namespace phrasemine {

/// Incremental-update overlay of Section 4.5.1. The word-specific lists
/// hold pre-computed conditional probabilities, which are expensive to keep
/// current under document churn; instead, inserted and deleted documents
/// are accumulated here, and when SMJ or NRA takes a phrase into its
/// candidate set it queries this index for the delta of the (word, phrase)
/// co-occurrence count and of the phrase's document frequency, from which
/// the corrected conditional probability follows. The paper notes -- and
/// our tests confirm -- that this keeps SMJ exact w.r.t. the updated
/// corpus, while NRA's pruning bounds become approximate (adjusted scores
/// need not respect the stored list order). Phrases that only become
/// frequent through updates are deliberately out of scope: they enter P at
/// the next periodic offline rebuild.
///
/// The dictionary is consulted only while updates are absorbed
/// (AddDocument/RemoveDocument): the base document frequency of every
/// touched phrase is snapshotted into the overlay at that point, so the
/// read-side accessors (AdjustedProb, the delta getters, the extra-entry
/// enumeration) touch nothing but the overlay's own immutable maps. That
/// is what lets MiningEngine hand out shared_ptr snapshots of this class
/// that stay valid -- and mine-safe without any lock -- across a
/// concurrent index rebuild.
///
/// Thread-safety: const member functions are safe to call concurrently;
/// mutations require exclusive access. MiningEngine treats instances as
/// immutable once published (copy-on-write per update batch).
class DeltaIndex {
 public:
  explicit DeltaIndex(const PhraseDictionary& dict) : dict_(&dict) {}

  /// Registers an inserted document given its token and facet term ids.
  /// When `touched` is non-null the phrase ids whose deltas this document
  /// moved are appended to it (unsorted, may repeat across calls) -- the
  /// subscription layer's per-batch "what could have changed" set.
  void AddDocument(std::span<const TermId> tokens,
                   std::span<const TermId> facets = {},
                   std::vector<PhraseId>* touched = nullptr);

  /// Registers a deletion of a document with this content.
  void RemoveDocument(std::span<const TermId> tokens,
                      std::span<const TermId> facets = {},
                      std::vector<PhraseId>* touched = nullptr);

  /// Net change of |docs(p)| from the accumulated updates.
  int64_t DfDelta(PhraseId p) const;

  /// Net change of |docs(w) ∩ docs(p)|.
  int64_t CoDelta(TermId w, PhraseId p) const;

  /// Net change of the *term* document frequency |docs(w)|, used by the
  /// cost planner to keep its selectivity estimates honest as the overlay
  /// grows.
  int64_t TermDfDelta(TermId w) const;

  /// Net change of the corpus document count |D|.
  int64_t DocsDelta() const { return docs_delta_; }

  /// Corrects a stored P(w|p) for the accumulated updates. `base_prob` is
  /// the pre-computed list value; the base co-occurrence count is recovered
  /// from it via the phrase's snapshotted base df. Returns a probability
  /// clamped to [0, 1]; a phrase whose adjusted df reaches zero yields 0.
  double AdjustedProb(TermId w, PhraseId p, double base_prob) const;

  /// Entries for phrases whose (w, p) co-occurrence became positive purely
  /// through updates -- they are absent from the stored word list (which
  /// only holds base-positive pairs), so the merge-based miners would never
  /// see them. Returned id-ordered with stored prob 0 (the correct base
  /// value), ready to merge into an id-ordered list via
  /// WordIdOrderedLists::MergeById; AdjustedProb then recovers the true
  /// probability at read time. `id_ordered_base` must be sorted by phrase
  /// id. This is what keeps SMJ exact under inserts that create new
  /// co-occurrences of base-dictionary phrases -- over *full* lists only:
  /// a truncated prefix (smj_fraction < 1) hides base-positive pairs, so
  /// an extra synthesized against it carries base count 0 instead of the
  /// hidden base count, and truncated SMJ stays approximate under updates
  /// (results are stamped accordingly).
  std::vector<ListEntry> ExtraIdOrderedEntries(
      TermId w, std::span<const ListEntry> id_ordered_base) const;

  /// Overlays this delta onto one stored id-ordered list: the base entries
  /// plus the delta-only extras for `term`. `base` may be null (term has
  /// no stored list); the result is never null, and is `base` itself when
  /// the overlay adds nothing. Shared by MiningEngine's and
  /// PhraseService's SMJ bundle assembly so the exactness-critical merge
  /// has exactly one implementation.
  SharedWordList OverlayIdOrdered(TermId term, SharedWordList base) const;

  /// Number of Add/Remove calls absorbed since construction; drives the
  /// "flush and rebuild offline" policy.
  std::size_t pending_updates() const { return pending_updates_; }

 private:
  void Apply(std::span<const TermId> tokens, std::span<const TermId> facets,
             int64_t sign, std::vector<PhraseId>* touched);

  const PhraseDictionary* dict_;  // write-side only; see class comment
  std::unordered_map<PhraseId, int64_t> df_delta_;
  /// Per-term co-occurrence deltas, keyed term-first so the extra-entry
  /// enumeration for one query term never scans other terms' pairs.
  std::unordered_map<TermId, std::unordered_map<PhraseId, int64_t>> co_delta_;
  /// Base |docs(p)| snapshotted at first touch; read-side df source.
  std::unordered_map<PhraseId, uint32_t> base_df_;
  std::unordered_map<TermId, int64_t> term_df_delta_;
  int64_t docs_delta_ = 0;
  std::size_t pending_updates_ = 0;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_CORE_DELTA_INDEX_H_
