#ifndef PHRASEMINE_CORE_QUERY_H_
#define PHRASEMINE_CORE_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "index/inverted_index.h"
#include "text/types.h"
#include "text/vocabulary.h"

namespace phrasemine {

/// Aggregation operator of Eq. 2: D' is the intersection (AND) or the union
/// (OR) of the per-feature document sets.
enum class QueryOperator { kAnd, kOr };

/// Renders "AND"/"OR" for reports.
const char* QueryOperatorName(QueryOperator op);

/// A query Q = [{q1..qr}, O] (Section 3). Terms may be word ids or facet
/// ids -- both are interned in the same Vocabulary.
struct Query {
  std::vector<TermId> terms;
  QueryOperator op = QueryOperator::kAnd;

  /// Parses a whitespace-separated term string against a vocabulary.
  /// Fails if any term is unknown (an unknown term selects no documents,
  /// which the caller should handle explicitly rather than silently).
  static Result<Query> Parse(std::string_view text, QueryOperator op,
                             const Vocabulary& vocab);

  /// Renders the query terms for reports.
  std::string ToString(const Vocabulary& vocab) const;
};

/// Materializes the sub-collection D' for [D, Q] per Eq. 2.
std::vector<DocId> EvalSubCollection(const Query& query,
                                     const InvertedIndex& inverted);

}  // namespace phrasemine

#endif  // PHRASEMINE_CORE_QUERY_H_
