#ifndef PHRASEMINE_CORE_KERNELS_H_
#define PHRASEMINE_CORE_KERNELS_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/cancel.h"
#include "common/check.h"
#include "index/list_entry.h"
#include "index/soa_list.h"
#include "text/types.h"

namespace phrasemine {
namespace kernels {

/// Maximum lists per kernel call (matches the miners' 32-term cap).
inline constexpr std::size_t kMaxLists = 32;

/// Cancellation polling stride of the AND kernel's leapfrog loop (the OR
/// kernel polls at its natural skip-block boundaries instead): one deadline
/// check per this many touched positions keeps the poll off the
/// per-comparison hot path while bounding cancellation latency to one
/// stride.
inline constexpr uint64_t kCancelStride = 1024;

/// Branch-light galloping k-way AND intersection over id-ordered SoA
/// lists. Drives from the shortest list and leapfrogs the others via the
/// block skip headers. For every phrase present in ALL lists, in strictly
/// increasing id order, calls
///     emit(PhraseId id, const double* probs, uint32_t present_mask)
/// with probs[i] = list i's stored probability (list order) and
/// present_mask = the full r-bit mask. Returns the number of list
/// positions touched (landed on), the kernel-path analogue of
/// MineResult::entries_read.
///
/// `cancel` (optional) is polled once every kCancelStride touched
/// positions; an expired token stops the join early (the emitted prefix is
/// a valid partial intersection). Null cancel leaves the output and the
/// instruction stream bitwise unchanged.
template <typename Emit>
uint64_t GallopingAndJoin(std::span<const SoABlockList* const> lists,
                          Emit&& emit, const CancelToken* cancel = nullptr) {
  const std::size_t r = lists.size();
  PM_CHECK_MSG(r <= kMaxLists, "too many lists for the AND kernel");
  if (r == 0) return 0;
  for (const SoABlockList* l : lists) {
    if (l->empty()) return 0;  // An empty factor empties the intersection.
  }
  std::size_t drive = 0;
  for (std::size_t i = 1; i < r; ++i) {
    if (lists[i]->size() < lists[drive]->size()) drive = i;
  }

  // Leapfrog join: `target` is the current candidate id, set by whichever
  // list last overshot it; `agree` counts lists (the setter included)
  // whose current entry equals target. Rotation visits the other r-1
  // lists before it could revisit the setter, and target strictly
  // increases, so every list is probed at most once per agreement round.
  std::array<std::size_t, kMaxLists> pos{};
  std::array<double, kMaxLists> probs;
  const uint32_t full_mask = r >= 32 ? ~0u : ((1u << r) - 1);
  if (r == 1) {  // Degenerate single-list AND: emit every entry.
    const SoABlockList& l = *lists[0];
    for (std::size_t p = 0; p < l.size(); ++p) {
      if (cancel != nullptr && p != 0 && p % kCancelStride == 0 &&
          cancel->Expired()) {
        return p;
      }
      probs[0] = l.probs()[p];
      emit(l.ids()[p], probs.data(), full_mask);
    }
    return l.size();
  }
  uint64_t touched = 1;  // the driver's first entry
  PhraseId target = lists[drive]->ids()[0];
  std::size_t agree = 1;           // lists whose current id == target
  std::size_t turn = (drive + 1) % r;
  for (;;) {
    if (cancel != nullptr && touched % kCancelStride == 0 &&
        cancel->Expired()) {
      break;
    }
    const SoABlockList& l = *lists[turn];
    std::size_t& p = pos[turn];
    p = l.SkipTo(p, target);
    if (p >= l.size()) break;  // One list exhausted: no more matches.
    ++touched;
    const PhraseId id = l.ids()[p];
    if (id == target) {
      if (++agree == r) {  // Present everywhere: emit and advance.
        for (std::size_t j = 0; j < r; ++j) {
          probs[j] = lists[j]->probs()[pos[j]];
        }
        emit(target, probs.data(), full_mask);
        std::size_t& dp = pos[drive];
        if (++dp >= lists[drive]->size()) break;
        ++touched;
        target = lists[drive]->ids()[dp];
        agree = 1;
        turn = (drive + 1) % r;
        continue;
      }
    } else {  // id > target: this list becomes the setter of a new round.
      target = id;
      agree = 1;
    }
    turn = (turn + 1) % r;
  }
  return touched;
}

/// Block-at-a-time k-way OR merge over id-ordered SoA lists. Every
/// distinct phrase across the lists is emitted exactly once, in strictly
/// increasing id order, as
///     emit(PhraseId id, const double* probs, uint32_t present_mask)
/// with probs[i] = list i's probability when bit i of present_mask is set
/// and 0.0 otherwise -- exactly the per-term vector the scalar SMJ merge
/// assembles, so downstream scoring is bitwise identical. The outer loop
/// advances one skip-header boundary at a time so the inner merge runs
/// over resident blocks. Returns total entries consumed (= the sum of
/// list lengths, matching the scalar merge's entries_read).
///
/// `cancel` (optional) is polled at every skip-block boundary -- the
/// literal "block granularity" check; an expired token ends the merge with
/// the blocks drained so far. Null cancel changes nothing.
template <typename Emit>
uint64_t BlockOrMerge(std::span<const SoABlockList* const> lists,
                      Emit&& emit, const CancelToken* cancel = nullptr) {
  const std::size_t r = lists.size();
  PM_CHECK_MSG(r <= kMaxLists, "too many lists for the OR kernel");
  std::array<std::size_t, kMaxLists> pos{};
  std::array<double, kMaxLists> probs;
  uint64_t consumed = 0;
  for (;;) {
    if (cancel != nullptr && cancel->Expired()) break;
    // Boundary: the smallest current-block max id across live lists. All
    // entries <= boundary sit in already-located blocks.
    PhraseId boundary = 0;
    bool live = false;
    for (std::size_t i = 0; i < r; ++i) {
      if (pos[i] >= lists[i]->size()) continue;
      const PhraseId bmax = lists[i]->BlockMaxAt(pos[i]);
      boundary = live ? std::min(boundary, bmax) : bmax;
      live = true;
    }
    if (!live) break;
    for (;;) {  // Drain every entry <= boundary with a plain k-way merge.
      PhraseId min_id = kInvalidPhraseId;
      for (std::size_t i = 0; i < r; ++i) {
        if (pos[i] < lists[i]->size() && lists[i]->ids()[pos[i]] < min_id) {
          min_id = lists[i]->ids()[pos[i]];
        }
      }
      if (min_id == kInvalidPhraseId || min_id > boundary) break;
      uint32_t mask = 0;
      for (std::size_t i = 0; i < r; ++i) {
        double p = 0.0;
        if (pos[i] < lists[i]->size() && lists[i]->ids()[pos[i]] == min_id) {
          p = lists[i]->probs()[pos[i]];
          mask |= 1u << i;
          ++pos[i];
          ++consumed;
        }
        probs[i] = p;
      }
      emit(min_id, probs.data(), mask);
    }
  }
  return consumed;
}

/// Galloping k-way intersection of sorted unique u32 lists (document ids).
/// Output is exactly InvertedIndex::Intersect's: the sorted common subset.
std::vector<uint32_t> IntersectSorted(
    std::span<const std::vector<uint32_t>* const> lists);

/// K-way union of sorted unique u32 lists; output is exactly
/// InvertedIndex::Union's sorted duplicate-free union.
std::vector<uint32_t> UnionSorted(
    std::span<const std::vector<uint32_t>* const> lists);

/// Sorted-probe gather: for each strictly increasing probe id, the list's
/// stored probability (0.0 when absent), via one forward galloping pass
/// over the skip headers. This is the sharded fill round's support lookup:
/// probes = the candidate union, list = one term's id-ordered list.
/// Returns list positions touched.
uint64_t GatherProbes(const SoABlockList& list,
                      std::span<const PhraseId> sorted_probes,
                      double* out_probs);

}  // namespace kernels
}  // namespace phrasemine

#endif  // PHRASEMINE_CORE_KERNELS_H_
