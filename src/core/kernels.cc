#include "core/kernels.h"

#include <algorithm>

namespace phrasemine {
namespace kernels {

std::vector<uint32_t> IntersectSorted(
    std::span<const std::vector<uint32_t>* const> lists) {
  if (lists.empty()) return {};
  std::vector<const std::vector<uint32_t>*> sorted(lists.begin(), lists.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<uint32_t> result = *sorted[0];
  for (std::size_t i = 1; i < sorted.size() && !result.empty(); ++i) {
    const std::vector<uint32_t>& other = *sorted[i];
    const uint32_t* a = other.data();
    const std::size_t n = other.size();
    std::size_t pos = 0;
    std::size_t out = 0;
    for (const uint32_t d : result) {
      pos = LowerBoundU32(a, n, pos, d);
      if (pos >= n) break;
      if (a[pos] == d) result[out++] = d;
    }
    result.resize(out);
  }
  return result;
}

std::vector<uint32_t> UnionSorted(
    std::span<const std::vector<uint32_t>* const> lists) {
  const std::size_t r = lists.size();
  std::vector<std::size_t> pos(r, 0);
  std::size_t total = 0;
  for (const auto* l : lists) total += l->size();
  std::vector<uint32_t> result;
  result.reserve(total);
  // K-way merge advancing every list carrying the minimum: inputs are
  // unique, so the output is the sorted duplicate-free union -- exactly
  // what the repeated pairwise std::set_union produced.
  for (;;) {
    uint32_t min_id = UINT32_MAX;
    bool live = false;
    for (std::size_t i = 0; i < r; ++i) {
      if (pos[i] < lists[i]->size()) {
        live = true;
        min_id = std::min(min_id, (*lists[i])[pos[i]]);
      }
    }
    if (!live) break;
    result.push_back(min_id);
    for (std::size_t i = 0; i < r; ++i) {
      if (pos[i] < lists[i]->size() && (*lists[i])[pos[i]] == min_id) {
        ++pos[i];
      }
    }
  }
  return result;
}

uint64_t GatherProbes(const SoABlockList& list,
                      std::span<const PhraseId> sorted_probes,
                      double* out_probs) {
  uint64_t touched = 0;
  std::size_t pos = 0;
  const std::size_t n = list.size();
  for (std::size_t i = 0; i < sorted_probes.size(); ++i) {
    const PhraseId probe = sorted_probes[i];
    pos = list.SkipTo(pos, probe);
    if (pos >= n) {
      for (; i < sorted_probes.size(); ++i) out_probs[i] = 0.0;
      break;
    }
    ++touched;
    out_probs[i] = list.ids()[pos] == probe ? list.probs()[pos] : 0.0;
  }
  return touched;
}

}  // namespace kernels
}  // namespace phrasemine
