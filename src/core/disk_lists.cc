#include "core/disk_lists.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "index/list_entry.h"
#include "testing/failpoint.h"

namespace phrasemine {

namespace {

/// Shared preamble of every charge point: free once the query is cancelled
/// (flag-only check) or a device error already latched, and evaluate the
/// "disk.read" failpoint (chaos tests inject device failures and latency
/// here). Returns false when the charge should be skipped.
bool ChargeAdmitted(const CancelToken* cancel, Status* error) {
  if (!error->ok()) return false;
  if (CancelRequested(cancel)) return false;
  if (failpoint::Enabled()) {
    if (Status s = PM_FAILPOINT("disk.read"); !s.ok()) {
      *error = std::move(s);
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<TermId> DiskResidentLists::HotnessOrder(
    const WordScoreLists& lists, const InvertedIndex& inverted,
    const TermPopularity* observed) {
  std::vector<TermId> terms = lists.Terms();
  // Static hotness order: term df descending (a list is touched once per
  // query naming its term, and high-df terms dominate harvested
  // workloads), ties to the smaller TermId so placement is a pure
  // function of the corpus and budget. With observed counts installed
  // the count leads and df only breaks ties: terms the workload never
  // named all carry count 0 and keep their static relative order.
  std::sort(terms.begin(), terms.end(), [&](TermId a, TermId b) {
    if (observed != nullptr) {
      auto ita = observed->find(a);
      auto itb = observed->find(b);
      const uint64_t ca = ita != observed->end() ? ita->second : 0;
      const uint64_t cb = itb != observed->end() ? itb->second : 0;
      if (ca != cb) return ca > cb;
    }
    const uint32_t da = inverted.df(a);
    const uint32_t db = inverted.df(b);
    if (da != db) return da > db;
    return a < b;
  });
  return terms;
}

std::unordered_set<TermId> DiskResidentLists::ResidentSet(
    const WordScoreLists& lists, const InvertedIndex& inverted,
    uint64_t budget_bytes, const TermPopularity* observed) {
  std::unordered_set<TermId> resident;
  if (budget_bytes == 0) return resident;
  const std::vector<TermId> terms = HotnessOrder(lists, inverted, observed);
  uint64_t remaining = budget_bytes;
  for (TermId t : terms) {
    const uint64_t bytes = static_cast<uint64_t>(lists.list(t).size()) *
                           kListEntryInMemoryBytes;
    // Strict prefix: the first list that does not fit ends the pinning,
    // so the spilled set is exactly the cold tail of the hotness order
    // (no best-fit backfilling -- predictability over packing).
    if (bytes > remaining) break;
    remaining -= bytes;
    resident.insert(t);
  }
  return resident;
}

DiskResidentLists::DiskResidentLists(const WordScoreLists& lists,
                                     const PhraseListFile& phrase_file,
                                     const InvertedIndex& inverted,
                                     DiskTierOptions options,
                                     std::unique_ptr<DiskBackend> device,
                                     MappedListLayout layout)
    : lists_(lists),
      phrase_file_(phrase_file),
      options_(options),
      device_(device != nullptr
                  ? std::move(device)
                  : std::make_unique<SimulatedDisk>(options.disk)),
      layout_(std::move(layout)),
      resident_(ResidentSet(lists, inverted, options.resident_budget_bytes,
                            options_.observed_popularity.get())) {
  PlaceAndRegister();
}

DiskResidentLists::DiskResidentLists(const WordScoreLists& lists,
                                     const PhraseListFile& phrase_file,
                                     DiskOptions options)
    : lists_(lists),
      phrase_file_(phrase_file),
      device_(std::make_unique<SimulatedDisk>(options)) {
  options_.disk = options;  // budget 0: resident_ stays empty, all spills
  PlaceAndRegister();
}

void DiskResidentLists::PlaceAndRegister() {
  for (TermId t : lists_.Terms()) {
    const uint64_t entries = lists_.list(t).size();
    if (resident_.contains(t)) {
      resident_bytes_ += entries * kListEntryInMemoryBytes;
      continue;
    }
    const uint64_t bytes = entries * kListEntryBytes;
    if (bytes == 0) continue;  // empty lists occupy no device range
    spilled_bytes_ += bytes;
    // A persisted list is backed by its entry run in the mapped file
    // (when the run length matches what is in memory); lists built after
    // load have no bytes in the file and register unbacked.
    uint64_t offset = DiskBackend::kNoOffset;
    auto run = layout_.entry_runs.find(t);
    if (run != layout_.entry_runs.end() && run->second.second == entries) {
      offset = run->second.first;
    }
    list_files_.emplace(t, device_->RegisterRange(offset, bytes));
  }
  phrase_file_id_ = device_->RegisterRange(
      layout_.phrase_slots_offset,
      std::max<uint64_t>(phrase_file_.SizeBytes(), 1));
}

void DiskResidentLists::ChargeListRead(TermId term, uint64_t pos) {
  if (resident_.contains(term)) return;  // pinned in RAM: no charge
  if (!ChargeAdmitted(cancel_, &error_)) return;
  auto it = list_files_.find(term);
  PM_CHECK_MSG(it != list_files_.end(), "no disk range for term list");
  device_->Read(it->second, pos * kListEntryBytes, kListEntryBytes);
}

void DiskResidentLists::ChargeListScan(TermId term, uint64_t entries) {
  if (entries == 0) return;
  if (resident_.contains(term)) return;  // pinned in RAM: no charge
  if (!ChargeAdmitted(cancel_, &error_)) return;
  auto it = list_files_.find(term);
  PM_CHECK_MSG(it != list_files_.end(), "no disk range for term list");
  device_->Read(it->second, 0, entries * kListEntryBytes);
}

void DiskResidentLists::ChargePhraseLookup(PhraseId id) {
  if (!ChargeAdmitted(cancel_, &error_)) return;
  device_->Read(phrase_file_id_, phrase_file_.SlotOffset(id),
                phrase_file_.slot_size());
}

}  // namespace phrasemine
