#include "core/disk_lists.h"

#include "common/check.h"

namespace phrasemine {

DiskResidentLists::DiskResidentLists(const WordScoreLists& lists,
                                     const PhraseListFile& phrase_file,
                                     DiskOptions options)
    : lists_(lists), phrase_file_(phrase_file), disk_(options) {
  for (TermId t : lists_.Terms()) {
    const uint64_t bytes =
        static_cast<uint64_t>(lists_.list(t).size()) * kListEntryBytes;
    if (bytes == 0) continue;
    list_files_.emplace(t, disk_.RegisterFile(bytes));
  }
  phrase_file_id_ = disk_.RegisterFile(
      std::max<uint64_t>(phrase_file_.SizeBytes(), 1));
}

void DiskResidentLists::ChargeListRead(TermId term, uint64_t pos) {
  auto it = list_files_.find(term);
  PM_CHECK_MSG(it != list_files_.end(), "no disk file for term list");
  disk_.Read(it->second, pos * kListEntryBytes, kListEntryBytes);
}

void DiskResidentLists::ChargePhraseLookup(PhraseId id) {
  disk_.Read(phrase_file_id_, phrase_file_.SlotOffset(id),
             phrase_file_.slot_size());
}

}  // namespace phrasemine
