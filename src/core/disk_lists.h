#ifndef PHRASEMINE_CORE_DISK_LISTS_H_
#define PHRASEMINE_CORE_DISK_LISTS_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "index/inverted_index.h"
#include "index/phrase_list_file.h"
#include "index/word_lists.h"
#include "storage/simulated_disk.h"
#include "text/types.h"

namespace phrasemine {

/// Configuration of one engine's (or one shard's) disk tier: the device
/// cost model plus the resident-memory budget its spill policy may pin.
struct DiskTierOptions {
  /// Device parameters: block (page) size, LRU cache depth, and the
  /// seek/transfer cost model (random vs sequential fetch charge).
  DiskOptions disk;
  /// RAM the tier may spend pinning word lists, in bytes of resident AoS
  /// entries (kListEntryInMemoryBytes each). The spill policy pins the
  /// hottest lists -- by term document frequency, ties to the smaller
  /// TermId -- as a strict prefix of the hotness order: pinning stops at
  /// the first list that does not fit, and everything colder spills to
  /// the device (the "cold tail"). 0 means every list is disk-resident,
  /// the paper's Section 5.5 protocol.
  uint64_t resident_budget_bytes = 0;
};

/// Disk residency wrapper for the NRA inputs: lays every *spilled*
/// word-specific score-ordered list out as its own simulated file
/// (12-byte packed entries, Section 4.2.2) and the phrase list as one
/// more file of fixed 50-byte slots (Section 4.2.1). The actual list
/// *contents* stay in memory -- per the paper's simulation protocol only
/// the I/O cost is modeled, and it is charged through the owned
/// SimulatedDisk as the algorithm touches bytes.
///
/// Placement is decided once at construction by the ResidentSet spill
/// policy below: lists inside the resident budget are pinned (their
/// reads charge nothing), the cold tail lives on the device. The phrase
/// list file is always device-resident -- it is the random-access lookup
/// the paper charges for result materialization, and pinning it is not
/// part of the word-list budget. Placement is deterministic: the same
/// lists, term dfs and budget always produce the same pinned set, which
/// is what keeps ranked output bitwise identical across budgets (the
/// budget moves cost, never contents).
class DiskResidentLists {
 public:
  /// Places `lists` on the tier under `options`, using `inverted` for
  /// the term-df hotness order of the spill policy.
  DiskResidentLists(const WordScoreLists& lists,
                    const PhraseListFile& phrase_file,
                    const InvertedIndex& inverted, DiskTierOptions options);

  /// Fully disk-resident tier (budget 0): every list spills, no hotness
  /// order needed. The pre-tier construction path, kept for callers that
  /// only want the Section 5.5 protocol.
  DiskResidentLists(const WordScoreLists& lists,
                    const PhraseListFile& phrase_file,
                    DiskOptions options = {});

  DiskResidentLists(const DiskResidentLists&) = delete;
  DiskResidentLists& operator=(const DiskResidentLists&) = delete;

  /// The spill policy, exposed so CostPlanner can predict placement
  /// without building a tier: terms of `lists` sorted hottest-first by
  /// `inverted` df (ties to the smaller TermId), pinned while the next
  /// list's resident bytes (entries * kListEntryInMemoryBytes) still fit
  /// the remaining budget; the first list that does not fit ends the
  /// pinning and the whole tail spills. Returns the pinned set.
  static std::unordered_set<TermId> ResidentSet(const WordScoreLists& lists,
                                                const InvertedIndex& inverted,
                                                uint64_t budget_bytes);

  /// Charges the I/O for reading entry `pos` of a term's list; free when
  /// the spill policy pinned the list.
  void ChargeListRead(TermId term, uint64_t pos);

  /// Charges the I/O for the final phrase-text lookup of a result id
  /// (a random access into the phrase list file; always device-resident).
  void ChargePhraseLookup(PhraseId id);

  /// True when the spill policy pinned this term's list in RAM.
  bool resident(TermId term) const { return resident_.contains(term); }

  /// Resident bytes the pinned lists occupy (<= the budget).
  uint64_t resident_bytes() const { return resident_bytes_; }
  /// Packed bytes living on the device across spilled lists.
  uint64_t spilled_bytes() const { return spilled_bytes_; }
  std::size_t num_resident() const { return resident_.size(); }
  std::size_t num_spilled() const { return list_files_.size(); }

  SimulatedDisk& disk() { return disk_; }
  const WordScoreLists& lists() const { return lists_; }
  const DiskTierOptions& tier_options() const { return options_; }

 private:
  /// Shared ctor tail: accounts resident bytes for pinned lists and
  /// registers a device file per spilled non-empty list plus the phrase
  /// file. Reads resident_ (empty on the all-spill path).
  void PlaceAndRegister();

  const WordScoreLists& lists_;
  const PhraseListFile& phrase_file_;
  DiskTierOptions options_;
  SimulatedDisk disk_;
  std::unordered_set<TermId> resident_;
  std::unordered_map<TermId, uint32_t> list_files_;  // spilled lists only
  uint64_t resident_bytes_ = 0;
  uint64_t spilled_bytes_ = 0;
  uint32_t phrase_file_id_ = 0;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_CORE_DISK_LISTS_H_
