#ifndef PHRASEMINE_CORE_DISK_LISTS_H_
#define PHRASEMINE_CORE_DISK_LISTS_H_

#include <unordered_map>

#include "index/phrase_list_file.h"
#include "index/word_lists.h"
#include "storage/simulated_disk.h"
#include "text/types.h"

namespace phrasemine {

/// Disk residency wrapper for the NRA inputs: lays every word-specific
/// score-ordered list out as its own simulated file (12-byte entries,
/// Section 4.2.2) and the phrase list as one more file of fixed 50-byte
/// slots (Section 4.2.1). The actual list *contents* stay in memory -- per
/// the paper's simulation protocol only the I/O cost is modeled, and it is
/// charged through the owned SimulatedDisk as the algorithm touches bytes.
class DiskResidentLists {
 public:
  DiskResidentLists(const WordScoreLists& lists,
                    const PhraseListFile& phrase_file,
                    DiskOptions options = {});

  DiskResidentLists(const DiskResidentLists&) = delete;
  DiskResidentLists& operator=(const DiskResidentLists&) = delete;

  /// Charges the I/O for reading entry `pos` of a term's list.
  void ChargeListRead(TermId term, uint64_t pos);

  /// Charges the I/O for the final phrase-text lookup of a result id
  /// (a random access into the phrase list file).
  void ChargePhraseLookup(PhraseId id);

  SimulatedDisk& disk() { return disk_; }
  const WordScoreLists& lists() const { return lists_; }

 private:
  const WordScoreLists& lists_;
  const PhraseListFile& phrase_file_;
  SimulatedDisk disk_;
  std::unordered_map<TermId, uint32_t> list_files_;
  uint32_t phrase_file_id_ = 0;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_CORE_DISK_LISTS_H_
