#ifndef PHRASEMINE_CORE_DISK_LISTS_H_
#define PHRASEMINE_CORE_DISK_LISTS_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "index/inverted_index.h"
#include "index/phrase_list_file.h"
#include "index/word_lists.h"
#include "storage/disk_backend.h"
#include "storage/simulated_disk.h"
#include "text/types.h"

namespace phrasemine {

/// Observed per-term query counts (term -> queries naming it), the
/// feedback signal of workload-aware placement. PhraseService accumulates
/// these in its metrics registry and installs a snapshot through
/// MiningEngine::SetTermPopularity; the spill policy then orders lists by
/// observed demand instead of static document frequency.
using TermPopularity = std::unordered_map<TermId, uint64_t>;

/// Configuration of one engine's (or one shard's) disk tier: the device
/// cost model plus the resident-memory budget its spill policy may pin.
struct DiskTierOptions {
  /// Device parameters: block (page) size, LRU cache depth, and the
  /// seek/transfer cost model (random vs sequential fetch charge). Only
  /// used by the modeled SimulatedDisk backend; a mapped backend measures
  /// instead of charging.
  DiskOptions disk;
  /// RAM the tier may spend pinning word lists, in bytes of resident AoS
  /// entries (kListEntryInMemoryBytes each). The spill policy pins the
  /// hottest lists -- by term document frequency, ties to the smaller
  /// TermId -- as a strict prefix of the hotness order: pinning stops at
  /// the first list that does not fit, and everything colder spills to
  /// the device (the "cold tail"). 0 means every list is disk-resident,
  /// the paper's Section 5.5 protocol.
  uint64_t resident_budget_bytes = 0;
  /// Observed query counts driving the hotness order (see HotnessOrder).
  /// Null (the default) keeps the static df order; when set, terms with
  /// higher observed counts pin first and df only breaks ties, so a
  /// re-placement after traffic shifted moves the budget to the lists the
  /// workload actually touches. Held as a shared immutable snapshot: the
  /// installer (MiningEngine::SetTermPopularity) may publish a newer map
  /// concurrently without invalidating a tier built from this one.
  std::shared_ptr<const TermPopularity> observed_popularity;
};

/// Where each persisted structure's bytes live inside an opened index
/// file: absolute file offsets of the word-lists entry runs (per term)
/// and of the phrase-list slots. MiningEngine captures this at load time
/// and hands it to DiskResidentLists, which then backs its device ranges
/// with the real mapped bytes instead of synthetic files.
struct MappedListLayout {
  /// term -> (absolute file offset of first entry, entry count).
  std::unordered_map<TermId, std::pair<uint64_t, uint64_t>> entry_runs;
  /// Absolute file offset of phrase slot 0 (kNoOffset when absent).
  uint64_t phrase_slots_offset = DiskBackend::kNoOffset;
};

/// Disk residency wrapper for the NRA/SMJ inputs: lays every *spilled*
/// word-specific score-ordered list out as its own device range
/// (12-byte packed entries, Section 4.2.2) and the phrase list as one
/// more range of fixed 50-byte slots (Section 4.2.1). The list *contents*
/// used for mining stay in memory; what the device does when the
/// algorithm touches bytes depends on the backend:
///   * SimulatedDisk (default) -- the paper's Section 5.5 protocol: only
///     the I/O cost is modeled, charged per touched page.
///   * MappedDisk over a persisted index file -- the ranges address the
///     structure's real bytes in the mapping, reads fault them in, and
///     the stats report measured blocks/bytes/time.
///
/// Placement is decided once at construction by the ResidentSet spill
/// policy below: lists inside the resident budget are pinned (their
/// reads charge nothing), the cold tail lives on the device. The phrase
/// list file is always device-resident -- it is the random-access lookup
/// the paper charges for result materialization, and pinning it is not
/// part of the word-list budget. Placement is deterministic: the same
/// lists, term dfs and budget always produce the same pinned set, which
/// is what keeps ranked output bitwise identical across budgets (the
/// budget moves cost, never contents).
class DiskResidentLists {
 public:
  /// Places `lists` on the tier under `options`, using `inverted` for
  /// the term-df hotness order of the spill policy. When `device` is
  /// null a SimulatedDisk over options.disk is created (modeled tier);
  /// otherwise the given backend is used, with `layout` mapping each
  /// structure to its on-device offsets (ranges without layout entries
  /// are registered unbacked and accounted arithmetically).
  DiskResidentLists(const WordScoreLists& lists,
                    const PhraseListFile& phrase_file,
                    const InvertedIndex& inverted, DiskTierOptions options,
                    std::unique_ptr<DiskBackend> device = nullptr,
                    MappedListLayout layout = {});

  /// Fully disk-resident tier (budget 0): every list spills, no hotness
  /// order needed. The pre-tier construction path, kept for callers that
  /// only want the Section 5.5 protocol.
  DiskResidentLists(const WordScoreLists& lists,
                    const PhraseListFile& phrase_file,
                    DiskOptions options = {});

  DiskResidentLists(const DiskResidentLists&) = delete;
  DiskResidentLists& operator=(const DiskResidentLists&) = delete;

  /// The hotness order the spill policy pins by: terms of `lists` sorted
  /// hottest-first. With `observed` null the order is static -- df
  /// descending, ties to the smaller TermId (a pure function of the
  /// corpus). With observed counts the primary key becomes the count
  /// (descending): never-queried terms all carry count 0 and keep their
  /// relative df order, so feedback re-placement degrades gracefully to
  /// the static policy where the workload is silent.
  static std::vector<TermId> HotnessOrder(
      const WordScoreLists& lists, const InvertedIndex& inverted,
      const TermPopularity* observed = nullptr);

  /// The spill policy, exposed so CostPlanner can predict placement
  /// without building a tier: terms of `lists` in HotnessOrder, pinned
  /// while the next list's resident bytes
  /// (entries * kListEntryInMemoryBytes) still fit the remaining budget;
  /// the first list that does not fit ends the pinning and the whole tail
  /// spills. Returns the pinned set -- always a strict prefix of
  /// HotnessOrder(lists, inverted, observed), which is the invariant
  /// feedback re-placement preserves (and tests assert).
  static std::unordered_set<TermId> ResidentSet(
      const WordScoreLists& lists, const InvertedIndex& inverted,
      uint64_t budget_bytes, const TermPopularity* observed = nullptr);

  /// Per-query arming of the charge points: installs the query's cancel
  /// token (null is fine) and clears any error latched by the previous
  /// query. The owning miner calls this at Mine() start, right after
  /// device().Reset(). Once the token's flag is set, every charge becomes
  /// a no-op -- a cancelled query stops accruing modeled I/O immediately,
  /// at flag-read cost (the clock is only consulted by the miner's batch
  /// checks, never here).
  void BeginQuery(const CancelToken* cancel) {
    cancel_ = cancel;
    error_ = Status::OK();
  }

  /// First device failure observed since BeginQuery (injected via the
  /// "disk.read" failpoint today; a real read error on a future backend
  /// takes the same latch). The charge methods return void -- pinned-list
  /// reads must stay free -- so errors latch here and the miner surfaces
  /// the latch at its batch cadence as MineResult::status.
  const Status& last_error() const { return error_; }

  /// Charges the I/O for reading entry `pos` of a term's list; free when
  /// the spill policy pinned the list.
  void ChargeListRead(TermId term, uint64_t pos);

  /// Charges the I/O for streaming the first `entries` entries of a
  /// term's list sequentially (the SMJ construction/scan access pattern);
  /// free when pinned. One Read covering the whole prefix, so the device
  /// sees the sequential access instead of per-entry touches.
  void ChargeListScan(TermId term, uint64_t entries);

  /// Charges the I/O for the final phrase-text lookup of a result id
  /// (a random access into the phrase list file; always device-resident).
  void ChargePhraseLookup(PhraseId id);

  /// True when the spill policy pinned this term's list in RAM.
  bool resident(TermId term) const { return resident_.contains(term); }

  /// Resident bytes the pinned lists occupy (<= the budget).
  uint64_t resident_bytes() const { return resident_bytes_; }
  /// Packed bytes living on the device across spilled lists.
  uint64_t spilled_bytes() const { return spilled_bytes_; }
  std::size_t num_resident() const { return resident_.size(); }
  std::size_t num_spilled() const { return list_files_.size(); }

  /// The charging backend (modeled or measured).
  DiskBackend& device() { return *device_; }
  /// True when device() measures real mapped reads rather than charging
  /// the Section 5.5 cost model.
  bool measured() const { return device_->measured(); }

  const WordScoreLists& lists() const { return lists_; }
  const DiskTierOptions& tier_options() const { return options_; }

 private:
  /// Shared ctor tail: accounts resident bytes for pinned lists and
  /// registers a device range per spilled non-empty list plus the phrase
  /// file. Reads resident_ (empty on the all-spill path) and layout_ for
  /// the on-device offsets of backed ranges.
  void PlaceAndRegister();

  const WordScoreLists& lists_;
  const PhraseListFile& phrase_file_;
  DiskTierOptions options_;
  std::unique_ptr<DiskBackend> device_;
  MappedListLayout layout_;
  std::unordered_set<TermId> resident_;
  std::unordered_map<TermId, uint32_t> list_files_;  // spilled lists only
  uint64_t resident_bytes_ = 0;
  uint64_t spilled_bytes_ = 0;
  uint32_t phrase_file_id_ = 0;
  /// Per-query state installed by BeginQuery (single-query-at-a-time per
  /// tier, like device() itself -- concurrency comes from shards, each
  /// owning a private tier).
  const CancelToken* cancel_ = nullptr;
  Status error_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_CORE_DISK_LISTS_H_
