#ifndef PHRASEMINE_CORE_SMJ_MINER_H_
#define PHRASEMINE_CORE_SMJ_MINER_H_

#include "core/miner.h"
#include "index/word_lists.h"
#include "phrase/phrase_dictionary.h"

namespace phrasemine {

/// Algorithm 2 of the paper: Sort-Merge-Join aggregation over the query
/// words' phrase-ID-ordered lists (Section 4.4). Because every list is
/// sorted by the join attribute (the phrase id), a single k-way merge
/// visits each phrase exactly once with all of its per-list probabilities
/// together, so scores are computed on the fly and only a k-sized heap is
/// kept. SMJ must scan every list to completion for OR queries -- there is
/// no early termination -- which is why the paper recommends it for short
/// (strongly truncated) lists and NRA for long ones. The partial-list
/// fraction is fixed at WordIdOrderedLists construction time;
/// MineOptions::list_fraction is ignored here.
///
/// Two implementations share the scoring and tie-break logic bit for bit:
/// the default kernel path runs on the lists' SoA block views
/// (core/kernels.h) -- a galloping intersection for AND that skips from
/// the shortest list via the block headers, a block-at-a-time merge for
/// OR -- and the scalar path is the textbook entry-at-a-time merge, kept
/// as the differential-test reference (MineOptions::use_kernels).
class SmjMiner : public Miner {
 public:
  SmjMiner(const WordIdOrderedLists& lists, const PhraseDictionary& dict);

  MineResult Mine(const Query& query, const MineOptions& options) override;
  std::string_view name() const override { return "SMJ"; }

 private:
  MineResult MineKernel(const Query& query, const MineOptions& options);
  MineResult MineScalar(const Query& query, const MineOptions& options);

  const WordIdOrderedLists& lists_;
  const PhraseDictionary& dict_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_CORE_SMJ_MINER_H_
