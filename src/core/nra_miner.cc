#include "core/nra_miner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "core/delta_index.h"
#include "core/exact_miner.h"
#include "obs/trace.h"

namespace phrasemine {

namespace {

constexpr double kPlusInfinity = std::numeric_limits<double>::infinity();

/// Per-list traversal state.
struct ListState {
  std::span<const ListEntry> entries;
  TermId term = kInvalidTermId;
  std::size_t pos = 0;        // next entry to read
  std::size_t limit = 0;      // traversal cap (partial lists)
  std::size_t full_len = 0;   // untruncated length
  // Score of the last entry read; +inf until the first read so that bounds
  // stay trivially safe before every list has been touched.
  double last_score = kPlusInfinity;
};

/// Candidate bookkeeping: sum of seen scores plus a seen-list bitmask.
struct Candidate {
  uint32_t mask = 0;
  double sum = 0.0;
};

}  // namespace

NraMiner::NraMiner(const WordScoreLists& lists, const PhraseDictionary& dict)
    : lists_(lists), dict_(dict) {}

NraMiner::NraMiner(DiskResidentLists* disk_lists, const PhraseDictionary& dict)
    : lists_(disk_lists->lists()), dict_(dict), disk_lists_(disk_lists) {}

MineResult NraMiner::Mine(const Query& query, const MineOptions& options) {
  PM_CHECK_MSG(query.terms.size() <= 32, "NRA supports up to 32 query terms");
  MineResult result;
  if (disk_lists_ != nullptr) {
    disk_lists_->device().Reset();  // Cold cache per query.
    // Install this query's cancel token on the charge points and clear any
    // device error latched by a previous query.
    disk_lists_->BeginQuery(options.cancel);
  }
  if (options.trace) {
    result.trace = std::make_shared<TraceSpan>();
    result.trace->name =
        disk_lists_ != nullptr ? "mine:nra-disk" : "mine:nra";
  }
  TraceSpan* trace = result.trace.get();
  StopWatch watch;

  const QueryOperator op = query.op;
  // Score assigned to a phrase proven absent from a (fully read) list:
  // P(q|p) = 0 contributes 0 to an OR sum and log(0) = -inf to an AND sum.
  const double absent_score =
      op == QueryOperator::kOr ? 0.0 : kMinusInfinity;
  const double fraction = std::clamp(options.list_fraction, 0.0, 1.0);

  // --- List setup -----------------------------------------------------------
  const std::size_t r = query.terms.size();
  std::vector<ListState> lists(r);
  for (std::size_t i = 0; i < r; ++i) {
    lists[i].term = query.terms[i];
    lists[i].entries = lists_.list(query.terms[i]);
    lists[i].full_len = lists[i].entries.size();
    lists[i].limit = static_cast<std::size_t>(
        std::ceil(fraction * static_cast<double>(lists[i].full_len)));
  }

  // Bound on scores not yet seen from list i: while entries remain, the
  // last read score bounds them from above; at exhaustion, absence is
  // proven. A partial list is the whole index from the algorithm's point of
  // view (Section 4.3), so a truncated list that ran out behaves exactly
  // like a fully-read one -- this is also what keeps NRA and SMJ
  // result-equivalent at equal fractions, as the paper observes.
  auto list_bound = [&](const ListState& l) {
    return l.pos < l.limit ? l.last_score : absent_score;
  };

  std::unordered_map<PhraseId, Candidate> cands;
  bool checknew = true;
  bool done = false;
  std::size_t reads_since_maintenance = 0;
  const std::size_t batch = std::max<std::size_t>(options.nra_batch_size, 1);

  auto candidate_lower = [&](const Candidate& c) {
    if (op == QueryOperator::kOr) return c.sum;
    // AND: unseen lists can contribute arbitrarily small log factors, so
    // only fully-seen candidates have a finite lower bound.
    return c.mask == (r >= 32 ? ~0u : ((1u << r) - 1)) ? c.sum
                                                       : kMinusInfinity;
  };
  auto candidate_upper = [&](const Candidate& c) {
    double upper = c.sum;
    for (std::size_t i = 0; i < r; ++i) {
      if ((c.mask & (1u << i)) == 0) upper += list_bound(lists[i]);
    }
    return upper;
  };

  // Lines 10-13 of Algorithm 1, run once per batch of b reads.
  struct BoundedCandidate {
    double lower;
    double upper;
    PhraseId phrase;
  };
  std::vector<BoundedCandidate> scratch;
  auto maintenance = [&]() {
    if (options.k == 0) {
      done = true;
      return;
    }
    double unseen_bound = 0.0;
    for (const ListState& l : lists) unseen_bound += list_bound(l);

    scratch.clear();
    scratch.reserve(cands.size());
    for (const auto& [phrase, cand] : cands) {
      scratch.push_back(BoundedCandidate{candidate_lower(cand),
                                         candidate_upper(cand), phrase});
    }
    if (scratch.size() < options.k) return;

    // Identify the current top-k by lower bound (ties by id, matching the
    // result tie-break).
    auto better = [](const BoundedCandidate& a, const BoundedCandidate& b) {
      if (a.lower != b.lower) return a.lower > b.lower;
      return a.phrase < b.phrase;
    };
    std::nth_element(scratch.begin(), scratch.begin() + (options.k - 1),
                     scratch.end(), better);
    const double kth_lower = scratch[options.k - 1].lower;
    if (kth_lower == kMinusInfinity) return;

    // Line 11: stop admitting unseen candidates once they cannot win.
    if (kth_lower >= unseen_bound) checknew = false;

    // Line 12: drop candidates whose ceiling is below the k-th floor.
    std::erase_if(cands, [&](const auto& kv) {
      return candidate_upper(kv.second) < kth_lower;
    });

    // Line 13: the current top-k is final once no unseen phrase can beat
    // the k-th floor and no candidate outside the top-k can either.
    if (kth_lower >= unseen_bound) {
      double max_outside_upper = kMinusInfinity;
      for (std::size_t i = options.k; i < scratch.size(); ++i) {
        max_outside_upper = std::max(max_outside_upper, scratch[i].upper);
      }
      if (max_outside_upper <= kth_lower) done = true;
    }
  };

  // --- Round-robin consumption (lines 4-13) ---------------------------------
  const double traversal_start =
      trace != nullptr ? watch.ElapsedMillis() : 0.0;
  if (CancelExpired(options.cancel)) {
    result.status = Status::DeadlineExceeded("deadline expired before NRA traversal");
    done = true;
  }
  while (!done) {
    bool read_any = false;
    for (std::size_t i = 0; i < r && !done; ++i) {
      ListState& l = lists[i];
      if (l.pos >= l.limit) continue;
      read_any = true;
      const ListEntry& entry = l.entries[l.pos];
      if (disk_lists_ != nullptr) {
        disk_lists_->ChargeListRead(l.term, l.pos);
      }
      ++l.pos;
      ++result.entries_read;

      double prob = entry.prob;
      if (options.delta != nullptr) {
        prob = options.delta->AdjustedProb(l.term, entry.phrase, prob);
      }
      const double score = EntryScore(prob, op);
      l.last_score = score;

      auto it = cands.find(entry.phrase);
      if (it == cands.end()) {
        if (!checknew) continue;
        it = cands.emplace(entry.phrase, Candidate{}).first;
      }
      Candidate& cand = it->second;
      const uint32_t bit = 1u << i;
      if ((cand.mask & bit) == 0) {
        cand.mask |= bit;
        cand.sum += score;
      }
      result.peak_candidates = std::max(result.peak_candidates, cands.size());

      if (++reads_since_maintenance >= batch) {
        reads_since_maintenance = 0;
        // Cancellation and disk-error checks share the maintenance cadence:
        // one deadline/latch poll per nra_batch_size entry reads bounds both
        // the cancellation latency and the steady-state overhead.
        if (CancelExpired(options.cancel)) {
          result.status = Status::DeadlineExceeded(
              "deadline expired during NRA traversal");
          done = true;
        } else if (disk_lists_ != nullptr && !disk_lists_->last_error().ok()) {
          result.status = disk_lists_->last_error();
          done = true;
        } else {
          maintenance();
        }
      }
    }
    if (!read_any) break;
  }
  // A device error latched in the final sub-batch (after the last cadence
  // check) must still surface.
  if (result.status.ok() && disk_lists_ != nullptr &&
      !disk_lists_->last_error().ok()) {
    result.status = disk_lists_->last_error();
  }
  const double traversal_end =
      trace != nullptr ? watch.ElapsedMillis() : 0.0;

  // --- Result extraction (line 14) -------------------------------------------
  // Rank by upper bound as the paper prescribes, breaking upper-bound ties
  // by lower bound (confirmed scores ahead of same-ceiling unconfirmed
  // ones), then by id. After a full traversal lower == upper for every
  // surviving candidate, so this is simply rank-by-score.
  std::vector<std::pair<const PhraseId, Candidate>*> ranked;
  ranked.reserve(cands.size());
  for (auto& kv : cands) {
    if (candidate_upper(kv.second) == kMinusInfinity) continue;  // score 0
    ranked.push_back(&kv);
  }
  const auto rank_order = [&](const auto* a, const auto* b) {
    const double ua = candidate_upper(a->second);
    const double ub = candidate_upper(b->second);
    if (ua != ub) return ua > ub;
    const double la = candidate_lower(a->second);
    const double lb = candidate_lower(b->second);
    if (la != lb) return la > lb;
    return a->first < b->first;
  };
  // Only the top k are returned, so a heap-select beats fully sorting the
  // surviving candidate set; the id tie-break makes rank_order a strict
  // total order, so the selected prefix is identical to a full sort's.
  if (ranked.size() > options.k) {
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<std::ptrdiff_t>(options.k),
                      ranked.end(), rank_order);
    ranked.resize(options.k);
  } else {
    std::sort(ranked.begin(), ranked.end(), rank_order);
  }
  for (const auto* kv : ranked) {
    const double upper = candidate_upper(kv->second);
    result.phrases.push_back(MinedPhrase{
        kv->first, upper, ScoreToInterestingness(upper, op)});
  }

  if (disk_lists_ != nullptr && options.charge_phrase_lookups &&
      result.status.ok()) {
    for (const MinedPhrase& p : result.phrases) {
      disk_lists_->ChargePhraseLookup(p.phrase);
    }
  }

  // Traversal-depth statistic (Figure 11): fraction of the *full* lists read.
  double traversed = 0.0;
  std::size_t measured = 0;
  for (const ListState& l : lists) {
    if (l.full_len == 0) continue;
    traversed += static_cast<double>(l.pos) / static_cast<double>(l.full_len);
    ++measured;
  }
  result.lists_traversed_fraction =
      measured == 0 ? 1.0 : traversed / static_cast<double>(measured);

  result.compute_ms = watch.ElapsedMillis();
  if (disk_lists_ != nullptr) {
    const DiskStats& stats = disk_lists_->device().stats();
    result.disk_ms = stats.cost_ms;
    result.disk_io.blocks_read = stats.BlocksRead();
    result.disk_io.seeks = stats.Seeks();
    result.disk_io.bytes = stats.bytes_read;
  }
  if (trace != nullptr) {
    trace->wall_ms = result.compute_ms;
    TraceSpan* traversal = AddSpan(trace, "traversal");
    traversal->wall_ms = traversal_end - traversal_start;
    AddCounter(traversal, "entries_read",
               static_cast<double>(result.entries_read));
    AddCounter(traversal, "peak_candidates",
               static_cast<double>(result.peak_candidates));
    AddCounter(traversal, "lists_traversed_fraction",
               result.lists_traversed_fraction);
    if (!result.status.ok()) {
      // The abort marker tests assert on: entries_at_cancel bounds how far
      // past the deadline the traversal ran (< 2 maintenance batches).
      AddCounter(traversal, "cancelled", 1.0);
      AddCounter(traversal, "entries_at_cancel",
                 static_cast<double>(result.entries_read));
    }
    TraceSpan* extract = AddSpan(trace, "extract_topk");
    extract->wall_ms = result.compute_ms - traversal_end;
    AddCounter(extract, "results", static_cast<double>(result.phrases.size()));
    if (disk_lists_ != nullptr) {
      // The device charge is modeled time overlapping the traversal, not a
      // separate phase, so it hangs off the root as an accounting span.
      TraceSpan* disk = AddSpan(trace, "disk_read");
      disk->wall_ms = result.disk_ms;
      AddCounter(disk, "blocks_read",
                 static_cast<double>(result.disk_io.blocks_read));
      AddCounter(disk, "seeks", static_cast<double>(result.disk_io.seeks));
      AddCounter(disk, "bytes", static_cast<double>(result.disk_io.bytes));
    }
  }
  return result;
}

}  // namespace phrasemine
