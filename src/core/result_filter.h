#ifndef PHRASEMINE_CORE_RESULT_FILTER_H_
#define PHRASEMINE_CORE_RESULT_FILTER_H_

#include "core/miner.h"
#include "core/query.h"
#include "phrase/phrase_dictionary.h"

namespace phrasemine {

/// Post-retrieval redundancy filter (Section 5.6): phrases composed largely
/// of the query's own words carry little new information, so applications
/// that want purely "discovered" phrases drop results whose lexical overlap
/// with the query exceeds a threshold.
struct OverlapFilterOptions {
  /// Maximum tolerated fraction of a phrase's words that appear in the
  /// query. 0.0 keeps only phrases fully disjoint from the query; 1.0
  /// disables the filter. The paper suggests suppressing "results with
  /// high overlap", so the default rejects phrases that are mostly query
  /// words.
  double max_overlap_fraction = 0.5;
};

/// Fraction of `phrase`'s words that are query terms, in [0, 1].
double QueryOverlapFraction(const Query& query, PhraseId phrase,
                            const PhraseDictionary& dict);

/// Removes high-overlap phrases from a mined result in place, preserving
/// rank order. Returns the number of removed results. Callers wanting a
/// full top-k after filtering should mine with a larger k and truncate.
std::size_t FilterQueryOverlap(const Query& query, const PhraseDictionary& dict,
                               const OverlapFilterOptions& options,
                               MineResult* result);

}  // namespace phrasemine

#endif  // PHRASEMINE_CORE_RESULT_FILTER_H_
