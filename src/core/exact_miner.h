#ifndef PHRASEMINE_CORE_EXACT_MINER_H_
#define PHRASEMINE_CORE_EXACT_MINER_H_

#include <vector>

#include "core/miner.h"
#include "index/forward_index.h"
#include "index/inverted_index.h"
#include "phrase/phrase_dictionary.h"

namespace phrasemine {

/// Exact interesting-phrase mining per Eq. 1: materializes D', aggregates
/// per-phrase document counts over the full forward lists of D', and ranks
/// by freq(p, D') / freq(p, D). This is the ground truth every approximate
/// method is evaluated against (Section 5.3) and is essentially the
/// unoptimized forward-index method of Bedathur et al. [2].
///
/// Not thread-safe: reuses internal scratch between queries.
class ExactMiner : public Miner {
 public:
  ExactMiner(const InvertedIndex& inverted, const ForwardIndex& forward,
             const PhraseDictionary& dict);

  MineResult Mine(const Query& query, const MineOptions& options) override;
  std::string_view name() const override { return "Exact"; }

 private:
  const InvertedIndex& inverted_;
  const ForwardIndex& forward_;
  const PhraseDictionary& dict_;

  // Scratch: per-phrase counts and the list of touched phrase ids.
  std::vector<uint32_t> counts_;
  std::vector<PhraseId> touched_;
};

/// Selects the top-k (score desc, id asc) from (phrase, score,
/// interestingness) triples accumulated by a miner. Shared by all miners so
/// tie-breaking is identical everywhere.
class TopKCollector {
 public:
  explicit TopKCollector(std::size_t k) : k_(k) {}

  /// Offers one candidate.
  void Offer(PhraseId phrase, double score, double interestingness);

  /// Extracts the ranked result (best first); the collector is consumed.
  std::vector<MinedPhrase> Take();

 private:
  std::size_t k_;
  std::vector<MinedPhrase> heap_;  // min-heap on (score asc, id desc)
};

}  // namespace phrasemine

#endif  // PHRASEMINE_CORE_EXACT_MINER_H_
