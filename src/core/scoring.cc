#include "core/scoring.h"

namespace phrasemine {

double AndScore(std::span<const double> probs) {
  double total = 0.0;
  for (double p : probs) {
    if (p <= 0.0) return kMinusInfinity;
    total += std::log(p);
  }
  return total;
}

double OrScore(std::span<const double> probs, OrExpansionOrder order) {
  switch (order) {
    case OrExpansionOrder::kFirstOrder: {
      double total = 0.0;
      for (double p : probs) total += p;
      return total;
    }
    case OrExpansionOrder::kSecondOrder: {
      double sum = 0.0;
      double pair_sum = 0.0;
      for (std::size_t i = 0; i < probs.size(); ++i) {
        sum += probs[i];
        for (std::size_t j = i + 1; j < probs.size(); ++j) {
          pair_sum += probs[i] * probs[j];
        }
      }
      return sum - pair_sum;
    }
    case OrExpansionOrder::kFull: {
      double none = 1.0;
      for (double p : probs) none *= (1.0 - p);
      return 1.0 - none;
    }
  }
  return 0.0;
}

double ScoreToInterestingness(double score, QueryOperator op) {
  if (op == QueryOperator::kAnd) {
    return score == kMinusInfinity ? 0.0 : std::exp(score);
  }
  return score < 1.0 ? score : 1.0;
}

}  // namespace phrasemine
