#include "core/exact_miner.h"

#include <algorithm>

#include "common/check.h"
#include "common/stopwatch.h"

namespace phrasemine {

namespace {

/// Min-heap ordering: the *worst* candidate sits at the front. A candidate
/// is worse when its score is lower, or on equal scores when its id is
/// larger (so ranking prefers smaller ids, matching the word-list
/// tie-break of Section 4.2.2).
bool HeapWorse(const MinedPhrase& a, const MinedPhrase& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.phrase < b.phrase;
}

}  // namespace

void TopKCollector::Offer(PhraseId phrase, double score,
                          double interestingness) {
  if (k_ == 0) return;
  MinedPhrase candidate{phrase, score, interestingness};
  if (heap_.size() < k_) {
    heap_.push_back(candidate);
    std::push_heap(heap_.begin(), heap_.end(), HeapWorse);
    return;
  }
  const MinedPhrase& worst = heap_.front();
  const bool better = candidate.score > worst.score ||
                      (candidate.score == worst.score &&
                       candidate.phrase < worst.phrase);
  if (better) {
    std::pop_heap(heap_.begin(), heap_.end(), HeapWorse);
    heap_.back() = candidate;
    std::push_heap(heap_.begin(), heap_.end(), HeapWorse);
  }
}

std::vector<MinedPhrase> TopKCollector::Take() {
  std::sort(heap_.begin(), heap_.end(),
            [](const MinedPhrase& a, const MinedPhrase& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.phrase < b.phrase;
            });
  return std::move(heap_);
}

ExactMiner::ExactMiner(const InvertedIndex& inverted,
                       const ForwardIndex& forward,
                       const PhraseDictionary& dict)
    : inverted_(inverted), forward_(forward), dict_(dict) {
  counts_.assign(dict_.size(), 0);
}

MineResult ExactMiner::Mine(const Query& query, const MineOptions& options) {
  StopWatch watch;
  MineResult result;

  const std::vector<DocId> subset = EvalSubCollection(query, inverted_);
  result.subcollection_size = subset.size();

  touched_.clear();
  for (DocId d : subset) {
    for (PhraseId p : forward_.Phrases(d, dict_)) {
      if (counts_[p] == 0) touched_.push_back(p);
      ++counts_[p];
      ++result.entries_read;
    }
  }

  TopKCollector collector(options.k);
  for (PhraseId p : touched_) {
    const uint32_t df = dict_.df(p);
    PM_CHECK(df > 0);
    const double score =
        EvaluateInterestingness(options.measure, counts_[p], df,
                                subset.size(), forward_.num_docs());
    collector.Offer(p, score, score);
    counts_[p] = 0;  // Reset scratch for the next query.
  }
  result.phrases = collector.Take();
  result.compute_ms = watch.ElapsedMillis();
  return result;
}

}  // namespace phrasemine
