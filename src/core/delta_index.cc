#include "core/delta_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "index/forward_index.h"

namespace phrasemine {

void DeltaIndex::AddDocument(std::span<const TermId> tokens,
                             std::span<const TermId> facets) {
  Apply(tokens, facets, +1);
}

void DeltaIndex::RemoveDocument(std::span<const TermId> tokens,
                                std::span<const TermId> facets) {
  Apply(tokens, facets, -1);
}

void DeltaIndex::Apply(std::span<const TermId> tokens,
                       std::span<const TermId> facets, int64_t sign) {
  const std::vector<PhraseId> phrases = CollectDocPhrases(tokens, dict_);
  std::unordered_set<TermId> terms(tokens.begin(), tokens.end());
  terms.insert(facets.begin(), facets.end());

  for (PhraseId p : phrases) {
    df_delta_[p] += sign;
    for (TermId w : terms) {
      co_delta_[CoKey(w, p)] += sign;
    }
  }
  ++pending_updates_;
}

int64_t DeltaIndex::DfDelta(PhraseId p) const {
  auto it = df_delta_.find(p);
  return it == df_delta_.end() ? 0 : it->second;
}

int64_t DeltaIndex::CoDelta(TermId w, PhraseId p) const {
  auto it = co_delta_.find(CoKey(w, p));
  return it == co_delta_.end() ? 0 : it->second;
}

double DeltaIndex::AdjustedProb(TermId w, PhraseId p,
                                double base_prob) const {
  const int64_t base_df = dict_.df(p);
  const int64_t base_count =
      std::llround(base_prob * static_cast<double>(base_df));
  const int64_t df = base_df + DfDelta(p);
  if (df <= 0) return 0.0;
  const int64_t count = base_count + CoDelta(w, p);
  const double prob =
      static_cast<double>(std::max<int64_t>(count, 0)) /
      static_cast<double>(df);
  return std::clamp(prob, 0.0, 1.0);
}

}  // namespace phrasemine
