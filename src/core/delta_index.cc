#include "core/delta_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "index/forward_index.h"

namespace phrasemine {

void DeltaIndex::AddDocument(std::span<const TermId> tokens,
                             std::span<const TermId> facets,
                             std::vector<PhraseId>* touched) {
  Apply(tokens, facets, +1, touched);
}

void DeltaIndex::RemoveDocument(std::span<const TermId> tokens,
                                std::span<const TermId> facets,
                                std::vector<PhraseId>* touched) {
  Apply(tokens, facets, -1, touched);
}

void DeltaIndex::Apply(std::span<const TermId> tokens,
                       std::span<const TermId> facets, int64_t sign,
                       std::vector<PhraseId>* touched) {
  const std::vector<PhraseId> phrases = CollectDocPhrases(tokens, *dict_);
  if (touched != nullptr) {
    touched->insert(touched->end(), phrases.begin(), phrases.end());
  }
  std::unordered_set<TermId> terms(tokens.begin(), tokens.end());
  terms.insert(facets.begin(), facets.end());

  for (PhraseId p : phrases) {
    base_df_.try_emplace(p, dict_->df(p));
    df_delta_[p] += sign;
    for (TermId w : terms) {
      co_delta_[w][p] += sign;
    }
  }
  for (TermId w : terms) {
    term_df_delta_[w] += sign;
  }
  docs_delta_ += sign;
  ++pending_updates_;
}

int64_t DeltaIndex::DfDelta(PhraseId p) const {
  auto it = df_delta_.find(p);
  return it == df_delta_.end() ? 0 : it->second;
}

int64_t DeltaIndex::CoDelta(TermId w, PhraseId p) const {
  auto term_it = co_delta_.find(w);
  if (term_it == co_delta_.end()) return 0;
  auto it = term_it->second.find(p);
  return it == term_it->second.end() ? 0 : it->second;
}

int64_t DeltaIndex::TermDfDelta(TermId w) const {
  auto it = term_df_delta_.find(w);
  return it == term_df_delta_.end() ? 0 : it->second;
}

double DeltaIndex::AdjustedProb(TermId w, PhraseId p,
                                double base_prob) const {
  auto df_it = base_df_.find(p);
  // Untouched phrases carry no deltas; the stored value stands.
  if (df_it == base_df_.end()) return std::clamp(base_prob, 0.0, 1.0);
  const int64_t base_df = df_it->second;
  const int64_t base_count =
      std::llround(base_prob * static_cast<double>(base_df));
  const int64_t df = base_df + DfDelta(p);
  if (df <= 0) return 0.0;
  const int64_t count = base_count + CoDelta(w, p);
  const double prob =
      static_cast<double>(std::max<int64_t>(count, 0)) /
      static_cast<double>(df);
  return std::clamp(prob, 0.0, 1.0);
}

std::vector<ListEntry> DeltaIndex::ExtraIdOrderedEntries(
    TermId w, std::span<const ListEntry> id_ordered_base) const {
  std::vector<ListEntry> extras;
  auto term_it = co_delta_.find(w);
  if (term_it == co_delta_.end()) return extras;
  for (const auto& [p, co] : term_it->second) {
    if (co <= 0) continue;  // Base-positive or net-removed: nothing new.
    auto pos = std::lower_bound(
        id_ordered_base.begin(), id_ordered_base.end(), p,
        [](const ListEntry& e, PhraseId id) { return e.phrase < id; });
    if (pos != id_ordered_base.end() && pos->phrase == p) continue;
    if (AdjustedProb(w, p, 0.0) <= 0.0) continue;
    extras.push_back(ListEntry{p, 0.0});
  }
  std::sort(extras.begin(), extras.end(),
            [](const ListEntry& a, const ListEntry& b) {
              return a.phrase < b.phrase;
            });
  return extras;
}

SharedWordList DeltaIndex::OverlayIdOrdered(TermId term,
                                            SharedWordList base) const {
  if (base == nullptr) {
    base = std::make_shared<const std::vector<ListEntry>>();
  }
  std::vector<ListEntry> extras = ExtraIdOrderedEntries(term, *base);
  if (extras.empty()) return base;
  return WordIdOrderedLists::MergeById(*base, extras);
}

}  // namespace phrasemine
