#ifndef PHRASEMINE_CORE_ENGINE_H_
#define PHRASEMINE_CORE_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/delta_index.h"
#include "core/disk_lists.h"
#include "core/exact_miner.h"
#include "core/gm_miner.h"
#include "core/miner.h"
#include "core/nra_miner.h"
#include "core/query.h"
#include "core/simitsis_miner.h"
#include "core/smj_miner.h"
#include "index/forward_index.h"
#include "index/inverted_index.h"
#include "index/phrase_list_file.h"
#include "index/phrase_posting_index.h"
#include "index/word_lists.h"
#include "phrase/phrase_dictionary.h"
#include "phrase/phrase_extractor.h"
#include "storage/index_file.h"
#include "storage/simulated_disk.h"
#include "text/corpus.h"

namespace phrasemine {

/// Algorithm selector for MiningEngine::Mine.
enum class Algorithm {
  kExact,     ///< Ground-truth Eq. 1 scoring over full forward lists.
  kGm,        ///< Exact forward-index baseline (Gao & Michel style).
  kSimitsis,  ///< Two-phase phrase-dictionary baseline (approximate).
  kNra,       ///< Paper's NRA over score-ordered word lists (approximate).
  kNraDisk,   ///< NRA with simulated disk-resident lists (Section 5.5).
  kSmj,       ///< Paper's SMJ over id-ordered word lists (approximate).
};

/// Renders "Exact"/"GM"/... for reports.
const char* AlgorithmName(Algorithm algorithm);

/// The guarantee a result mined by `algorithm` carries when a delta overlay
/// was (`delta_applied`) or was not in effect; see UpdateGuarantee. SMJ's
/// exactness under a delta holds only over full lists -- with truncated
/// id-ordered lists (`smj_full_lists` false) base-positive pairs beyond
/// the prefix are invisible to the overlay and the result is approximate.
UpdateGuarantee GuaranteeFor(Algorithm algorithm, bool delta_applied,
                             bool smj_full_lists = true);

/// One document of a live-update batch, in raw string form. Tokens unseen
/// by the engine's vocabulary are interned on ingest so a later Rebuild()
/// picks them up; until then they cannot contribute to any base-dictionary
/// phrase (the paper's "new phrases enter P at the next offline rebuild").
struct UpdateDoc {
  std::vector<std::string> tokens;
  std::vector<std::string> facets;
};

/// One live-update batch: documents to insert plus DocIds to delete.
/// Delete ids address the engine's current live numbering: ids below
/// corpus().size() are build-time documents, ids at or above it address
/// documents inserted since the last rebuild, in ingest order. Unknown or
/// already-deleted ids are ignored. A rebuild compacts the numbering.
struct UpdateBatch {
  std::vector<UpdateDoc> inserts;
  std::vector<DocId> deletes;
};

/// Per-epoch accounting returned by ApplyUpdate (and readable at any time
/// via MiningEngine::update_stats).
struct UpdateStats {
  /// Epoch after the batch was absorbed. The epoch advances by one per
  /// ApplyUpdate call and per completed Rebuild.
  uint64_t epoch = 0;
  /// Documents inserted/deleted by this batch (deletes that addressed
  /// unknown or already-deleted ids are not counted).
  std::size_t batch_inserts = 0;
  std::size_t batch_deletes = 0;
  /// Updates absorbed into the overlay since the last rebuild.
  std::size_t pending_updates = 0;
  /// Documents currently alive (base - deleted + inserted).
  std::size_t live_docs = 0;
  /// pending_updates / live_docs: the overlay's relative size, compared
  /// against MiningEngineOptions::rebuild_threshold.
  double delta_fraction = 0.0;
  /// True when delta_fraction crossed the rebuild threshold; the engine
  /// never rebuilds on its own -- callers (PhraseService does this on its
  /// thread pool) schedule Rebuild().
  bool rebuild_recommended = false;
};

/// An immutable view of the engine's update state: the epoch, the structure
/// generation (bumped only by Rebuild), and the delta overlay accumulated
/// since the last rebuild (null when no update was ever applied or right
/// after a rebuild). The shared_ptr keeps the overlay alive and readable
/// without locks even if further updates or a rebuild land concurrently.
struct EpochDelta {
  uint64_t epoch = 0;
  uint64_t generation = 0;
  std::shared_ptr<const DeltaIndex> delta;
};

/// Post-batch notification for standing-query consumers: everything the
/// subscription layer needs to rescore incrementally without re-reading
/// engine state (which could already have moved on). Delivered to the
/// installed update listener inside ApplyUpdate/Rebuild, after the new
/// epoch is published and still under the update mutex -- events arrive
/// in epoch order, exactly once. Listeners must be cheap and must not
/// call back into the engine (they run on the ingest thread; enqueue and
/// return).
struct UpdateEvent {
  /// Epoch after the batch (or rebuild) was absorbed.
  uint64_t epoch = 0;
  /// Structure generation at that epoch (bumped only by Rebuild).
  uint64_t generation = 0;
  /// Process-unique structure id; see MiningEngine::structure_version().
  uint64_t structure_version = 0;
  /// Overlay snapshot as of `epoch` (null right after a rebuild).
  std::shared_ptr<const DeltaIndex> delta;
  /// Phrase ids whose df or co-occurrence deltas this batch moved, sorted
  /// and deduplicated -- the complete "what can have changed" set for
  /// incremental top-k maintenance. Empty when `rebuilt` (PhraseIds were
  /// reassigned; nothing incremental survives).
  std::vector<PhraseId> touched;
  /// True when this event reports a completed Rebuild rather than an
  /// absorbed batch: every index was rebuilt and PhraseIds reassigned, so
  /// consumers must drop all derived state and start from a fresh mine.
  bool rebuilt = false;
};

/// Callback type for UpdateEvent delivery; see SetUpdateListener.
using UpdateListener = std::function<void(const UpdateEvent&)>;

/// Build-time knobs for MiningEngine.
struct MiningEngineOptions {
  /// Phrase-extraction knobs (n-gram cap and min document frequency).
  PhraseExtractorOptions extractor;
  /// When set, the engine does not extract its own phrase set: it clones
  /// this one (same PhraseIds, parents, token sequences) and recounts the
  /// document frequencies over its own corpus. Rebuild() keeps honoring
  /// it, so the phrase set stays frozen across rebuilds and new phrases
  /// enter only when the owner installs a fresh set. This is how
  /// ShardedEngine gives every shard one global dictionary with
  /// per-shard dfs -- the property that makes PhraseIds (and therefore
  /// the scatter-gather merge join) global. Phrases that never occur in
  /// this corpus simply keep df 0.
  std::shared_ptr<const PhraseDictionary> fixed_phrase_set;
  /// Disk-simulation device parameters (block size, LRU cache depth,
  /// seek/transfer cost model) used by Algorithm::kNraDisk.
  DiskOptions disk;
  /// Declares the word lists disk-backed: the score-ordered lists live
  /// on this engine's simulated disk tier (minus whatever the resident
  /// budget pins), so in-memory NRA is not honest -- CostPlanner then
  /// routes the NRA candidate through Algorithm::kNraDisk and charges
  /// per-block I/O for every spilled list. Off by default: the engine
  /// behaves exactly as before and kNraDisk stays an explicit request.
  bool disk_backed = false;
  /// Resident-memory budget of the disk tier, in bytes of in-memory AoS
  /// entries (kListEntryInMemoryBytes each): the spill policy pins the
  /// hottest lists by term df as a strict prefix of the hotness order
  /// and spills the cold tail (see DiskResidentLists::ResidentSet).
  /// 0 keeps every list on the device -- the paper's Section 5.5
  /// protocol and the pre-tier behavior of kNraDisk. Placement moves
  /// only cost, never results: ranked output is bitwise identical
  /// across budgets.
  uint64_t disk_resident_budget = 0;
  /// Construction fraction used when an SMJ mine is issued before
  /// SetSmjFraction was called.
  double default_smj_fraction = 1.0;
  /// When non-empty, Build() persists the engine to this index file
  /// (storage/index_file.h page format) right after construction, and
  /// Rebuild() re-persists after every swap, so a restart can
  /// LoadFromFile() instead of re-extracting. Persistence is best-effort
  /// from Build's perspective -- the engine is returned fully functional
  /// either way, with the write outcome in persist_status(). An engine
  /// loaded from a file keeps the file mmapped and backs its disk tier
  /// with the mapped bytes (measured I/O, see MappedDisk).
  std::string persist_path;
  /// When the delta overlay exceeds this fraction of the live corpus,
  /// ApplyUpdate flags rebuild_recommended. <= 0 disables the
  /// recommendation (updates then accumulate until a caller rebuilds
  /// explicitly).
  double rebuild_threshold = 0.25;
};

/// One-stop facade over the whole library: owns the corpus, builds the
/// phrase dictionary and every index, and routes Mine() calls to the five
/// algorithms. Word-specific lists are built lazily per query term (they
/// are the only index whose full materialization is quadratic-ish; see
/// WordScoreLists::Build), and id-ordered SMJ lists are cached per
/// construction fraction.
///
/// Typical use:
///   MiningEngine engine = MiningEngine::Build(std::move(corpus));
///   Query q = engine.ParseQuery("trade reserves", QueryOperator::kOr).value();
///   MineResult top = engine.Mine(q, Algorithm::kSmj, {.k = 5});
///   for (const MinedPhrase& p : top.phrases)
///     std::cout << engine.PhraseText(p.phrase) << "\n";
///
/// Live updates (Section 4.5.1): ApplyUpdate absorbs document churn into a
/// copy-on-write DeltaIndex overlay and bumps the epoch; Mine() then
/// delta-corrects NRA and SMJ scores automatically (SMJ stays exact, NRA
/// approximate -- MineResult::guarantee says which held). Rebuild()
/// re-extracts phrases and rebuilds every index over the live document
/// set, swaps the structures in under the engine's exclusive lock, resets
/// the overlay and bumps both the epoch and the structure generation.
/// Vocabulary term ids survive a rebuild (the vocabulary only grows), so
/// parsed queries stay valid; PhraseIds and DocIds are reassigned --
/// resolve result phrases via PhraseText promptly or pin the epoch.
///
/// Threading contract:
///   * Mine(), ParseQuery(), PhraseText() and the const component accessors
///     over eagerly built structures (corpus, dict, indexes, phrase file)
///     may be called concurrently from any number of threads. Mine() holds
///     a shared structure lock for its whole run, so a concurrent merge or
///     rebuild can never invalidate structures in use. External component
///     readers that must not race a rebuild swap should wrap their reads
///     in WithSharedStructures.
///   * ApplyUpdate serializes on an update mutex, publishes a fresh
///     immutable DeltaIndex snapshot, and never blocks readers beyond a
///     brief snapshot-pointer swap. Rebuild holds the update mutex for its
///     whole build (ingest stalls, mining does not) and takes the
///     exclusive structure lock only for the final swap.
///   * Exception: word_lists() hands out the lazily merged container
///     without synchronization. Only read it while no Mine(),
///     EnsureWordLists() or Rebuild() call can be in flight (tests,
///     benchmarks, single-threaded preprocessing). PhraseService never
///     reads it.
///   * Algorithms whose miners keep per-call scratch (kExact, kGm,
///     kSimitsis) serialize per algorithm; kNraDisk serializes on the
///     shared SimulatedDisk. kNra and kSmj run fully in parallel once
///     their lists exist -- these are the paper's serving algorithms and
///     the ones PhraseService routes through its own cache.
///   * Structural mutations -- SetSmjFraction, SaveToDirectory,
///     LoadFromDirectory, moves -- require external exclusive access: no
///     concurrent Mine(), ApplyUpdate() or Rebuild() calls may be in
///     flight. SaveToDirectory persists the base structures only; call
///     Rebuild() first if updates are pending.
class MiningEngine {
 public:
  using Options = MiningEngineOptions;

  /// Builds all eagerly-needed structures: dictionary, inverted index,
  /// full + prefix-compressed forward indexes, phrase list file. When
  /// options.persist_path is set, also writes the index file there (see
  /// persist_status() for the outcome).
  static MiningEngine Build(Corpus corpus, Options options = {});

  /// Persists the engine (corpus, dictionary, every index and the word
  /// lists built so far) as one page-based index file -- a versioned,
  /// checksummed superblock plus one typed section per structure
  /// (storage/index_file.h) -- so later sessions can skip the
  /// extraction/indexing cost. Call EnsureWordLists first if the word
  /// lists should ride along (they back the measured disk tier after a
  /// reload).
  Status SaveToFile(const std::string& path) const;

  /// Restores an engine persisted by SaveToFile: validates the file
  /// (magic, version, endianness, checksums -- malformed input fails with
  /// Corruption, never crashes), decodes every section, and keeps the
  /// file mmapped so the disk tier can serve measured reads from the
  /// mapped structure bytes (index_file(), MappedDisk).
  static Result<MiningEngine> LoadFromFile(const std::string& path,
                                           Options options = {});

  /// SaveToFile/LoadFromFile at the fixed name "engine.pmidx" inside an
  /// existing directory.
  Status SaveToDirectory(const std::string& dir) const;
  static Result<MiningEngine> LoadFromDirectory(const std::string& dir,
                                                Options options = {});

  /// Outcome of the last options-driven persist (Build / Rebuild with
  /// persist_path set); OK when no persist was requested.
  const Status& persist_status() const { return persist_status_; }

  /// The opened index file this engine was loaded from, or nullptr when
  /// it was built in memory. Its open_ms() is the measured cold-open
  /// cost (mapping + full checksum validation).
  const IndexFile* index_file() const { return index_file_.get(); }

  MiningEngine(MiningEngine&&) = default;
  MiningEngine& operator=(MiningEngine&&) = default;

  // --- Querying -------------------------------------------------------------

  /// Parses a whitespace-separated query against the corpus vocabulary.
  /// Safe to call concurrently with ApplyUpdate (which may intern new
  /// terms).
  Result<Query> ParseQuery(std::string_view text, QueryOperator op) const;

  /// Runs one of the algorithms. For kNra/kNraDisk/kSmj, the word lists of
  /// the query terms are built on first use (that cost is preprocessing,
  /// not query time, and is excluded from MineResult timings). When the
  /// engine carries a pending update overlay and the caller did not supply
  /// MineOptions::delta, the overlay is applied automatically; the result
  /// is stamped with the epoch and the guarantee that held.
  MineResult Mine(const Query& query, Algorithm algorithm,
                  const MineOptions& options = {});

  /// Lexical form of a phrase, served from the fixed-slot phrase list file
  /// under the shared structure lock (a concurrent rebuild swaps the file).
  std::string PhraseText(PhraseId id) const {
    std::shared_lock lock(sync_->lists_mu);
    return phrase_file_.Text(id);
  }

  // --- Live updates ----------------------------------------------------------

  /// Absorbs one batch of document inserts/deletes into the delta overlay
  /// and advances the epoch. Thread-safe against concurrent Mine() calls;
  /// concurrent ApplyUpdate/Rebuild calls serialize. On return the new
  /// epoch is visible to every subsequently started mine. When `event` is
  /// non-null it is filled with the batch's UpdateEvent (ShardedEngine
  /// collects per-shard events this way and merges them under the global
  /// PhraseId space instead of installing per-shard listeners).
  UpdateStats ApplyUpdate(const UpdateBatch& batch,
                          UpdateEvent* event = nullptr);

  /// Installs (or, with null, clears) the post-batch update listener; see
  /// UpdateEvent for the delivery contract. Serializes against in-flight
  /// ApplyUpdate/Rebuild calls: once SetUpdateListener(nullptr) returns,
  /// no further callback will run.
  void SetUpdateListener(UpdateListener listener);

  /// Raises the epoch to at least `min_epoch` without changing any state
  /// (no-op when already past it). ShardedEngine uses this after a
  /// dictionary refresh so the replacement engines' epochs continue
  /// monotonically from their predecessors' -- epoch-keyed caches must
  /// never see an epoch repeat with different contents.
  void AdvanceEpoch(uint64_t min_epoch);

  /// Deep copy of the base corpus (documents + vocabulary) under the
  /// structure and vocabulary locks, safe against concurrent rebuilds and
  /// ingest-time interning. Pending (un-rebuilt) inserts are not
  /// included; rebuild first if they matter.
  Corpus CloneBaseCorpus() const;

  /// Interns terms into the vocabulary without touching any document or
  /// index (idempotent; safe against concurrent ParseQuery/ApplyUpdate).
  /// ShardedEngine broadcasts every ingested document's terms through this
  /// before routing the document to its owning shard, which keeps all
  /// shard vocabularies identical -- identical intern order from identical
  /// starting vocabularies yields identical term ids -- so one parsed
  /// Query stays valid against every shard.
  void InternTerms(std::span<const std::string> terms);

  /// Full offline rebuild over the live document set: re-extracts phrases,
  /// rebuilds every index, re-materializes the word lists that were built
  /// before, swaps everything in, clears the overlay and advances the
  /// epoch and the structure generation. Blocks ingest (ApplyUpdate) for
  /// its duration; concurrent mines keep running against the old
  /// structures until the final swap.
  void Rebuild();

  /// Current epoch: 0 at build time, +1 per ApplyUpdate and per Rebuild.
  uint64_t epoch() const;

  /// Structure generation: bumped only by Rebuild. Cache layers keying
  /// derived structures (word lists) by generation invalidate exactly when
  /// the base indexes change.
  uint64_t list_generation() const;

  /// Process-unique id of the current structure set: assigned at
  /// construction (every Build/LoadFromFile) and reassigned by every
  /// Rebuild. Unlike list_generation() -- which restarts at 0 for every
  /// new engine instance -- this value never repeats within a process, so
  /// caches that may outlive an engine replacement (the subscription
  /// layer's base-list cache across a ShardedEngine dictionary refresh,
  /// which swaps in whole new shard engines) can key on it safely.
  uint64_t structure_version() const;

  /// Immutable snapshot of the update state for lock-free delta-corrected
  /// mining; see EpochDelta.
  EpochDelta delta_snapshot() const;

  /// Accounting as of the last ApplyUpdate/Rebuild.
  UpdateStats update_stats() const;

  /// Runs `fn` under the shared structure lock, so a concurrent Rebuild
  /// cannot swap the indexes mid-read. Component accessors used from
  /// concurrent contexts (the service planner and word-list builders)
  /// route through this.
  template <typename Fn>
  auto WithSharedStructures(Fn&& fn) const {
    std::shared_lock lock(sync_->lists_mu);
    return fn();
  }

  // --- Preprocessing control --------------------------------------------------

  /// Ensures word-specific score lists exist for these terms.
  void EnsureWordLists(std::span<const TermId> terms);

  /// Ensures lists exist for every term of every query (harness helper).
  void EnsureWordListsFor(std::span<const Query> queries);

  /// Ensures the id-ordered SMJ lists (and their SoA kernel views) exist
  /// for these terms at the current construction fraction -- the same
  /// structure an SMJ mine builds on first use. ShardedEngine's list
  /// scatter/fill rounds call this so their kernels run on the cached
  /// id-ordered lists instead of re-sorting score-ordered ones per query.
  void EnsureIdOrderedLists(std::span<const TermId> terms);

  /// Rebuilds the SMJ id-ordered lists at this construction fraction
  /// (Section 4.4.1: a construction-time decision).
  void SetSmjFraction(double fraction);

  /// Re-budgets the disk tier at runtime: the next kNraDisk mine lazily
  /// rebuilds DiskResidentLists under the new resident budget (benches
  /// sweep resident fractions this way without rebuilding the engine).
  /// Requires external exclusive access like the other structural
  /// mutations: no concurrent Mine/ApplyUpdate/Rebuild in flight.
  void SetDiskResidentBudget(uint64_t budget_bytes);

  /// Installs observed per-term query counts as the disk tier's hotness
  /// signal: the next kNraDisk mine lazily re-places the resident set in
  /// observed-count order (df breaks ties; see
  /// DiskResidentLists::HotnessOrder), and ResidentSetLocked() predicts
  /// the same placement for the planner. Null restores the static df
  /// order. Unlike the other structural mutations this is safe against
  /// concurrent mines -- it takes the exclusive structure lock itself, so
  /// PhraseService can re-place on a cadence while queries are in flight.
  /// Re-placement moves cost, never results: ranked output is bitwise
  /// identical before and after (tested).
  void SetTermPopularity(std::shared_ptr<const TermPopularity> observed);

  /// The installed observed-count snapshot (null when placement is
  /// static). Takes the shared structure lock itself; from inside
  /// WithSharedStructures use TermPopularityLocked() instead.
  std::shared_ptr<const TermPopularity> term_popularity() const {
    std::shared_lock lock(sync_->lists_mu);
    return term_popularity_;
  }

  /// Lock-free variant for callers already under the shared structure
  /// lock (WithSharedStructures), e.g. the planner's input gathering.
  std::shared_ptr<const TermPopularity> TermPopularityLocked() const {
    return term_popularity_;
  }

  /// The spill policy's placement over the currently built word lists
  /// at the current resident budget -- exactly what the next kNraDisk
  /// mine will pin (DiskResidentLists::ResidentSet). Memoized: the
  /// O(T log T) policy recomputes only when the built-list set, the
  /// structure generation or the budget changed, so the planner can
  /// call this per query on the serving path. Caller must hold the
  /// shared structure lock (WithSharedStructures).
  std::shared_ptr<const std::unordered_set<TermId>> ResidentSetLocked() const;
  double smj_fraction() const {
    std::shared_lock lock(sync_->lists_mu);  // Rebuild() rewrites it
    return smj_fraction_;
  }

  // --- Component access (benchmarks, tests) ----------------------------------

  /// The build-time options (ShardedEngine inherits them when resharding
  /// an already-built engine's corpus).
  const Options& options() const { return options_; }
  const Corpus& corpus() const { return corpus_; }
  const PhraseDictionary& dict() const { return dict_; }
  const InvertedIndex& inverted() const { return inverted_; }
  const ForwardIndex& forward() const { return forward_full_; }
  const ForwardIndex& forward_compressed() const { return forward_compressed_; }
  const PhraseListFile& phrase_file() const { return phrase_file_; }
  /// Unsynchronized view of the lazily built word lists; see the class
  /// threading contract before reading this concurrently.
  const WordScoreLists& word_lists() const { return *word_lists_; }

  /// The cached id-ordered SMJ lists at the current fraction, or nullptr
  /// before any SMJ mine / EnsureIdOrderedLists call (and right after a
  /// word-list merge or fraction change invalidates them). Read only
  /// under WithSharedStructures, and re-check for null there: the caller
  /// must fall back to the score-ordered lists when absent.
  const WordIdOrderedLists* id_ordered_lists() const {
    return id_lists_.get();
  }

  /// Phrase posting index, built lazily (only the Simitsis baseline uses
  /// it). Not rebuild-safe: the reference is invalidated by Rebuild().
  const PhrasePostingIndex& postings();

 private:
  /// Lock bundle kept behind a pointer so the engine stays movable.
  /// Acquisition order (never reversed): update_mu -> lists_mu ->
  /// {snapshot_mu, vocab_mu, postings_mu, disk_mu, per-miner mutexes}.
  struct Sync {
    /// Serializes ApplyUpdate and Rebuild against each other.
    std::mutex update_mu;
    /// Guards word_lists_, id_lists_, disk_lists_, smj_fraction_ and -- on
    /// a rebuild swap -- every base structure: shared for mining reads,
    /// exclusive for merges, fraction changes and rebuild swaps.
    std::shared_mutex lists_mu;
    /// Guards epoch_, generation_, delta_ and last_update_stats_.
    mutable std::mutex snapshot_mu;
    /// Guards the vocabulary: shared for ParseQuery lookups, exclusive for
    /// ingest-time interning of unseen terms.
    mutable std::shared_mutex vocab_mu;
    /// Guards lazy construction of postings_.
    std::mutex postings_mu;
    /// Serializes kNraDisk mines (the SimulatedDisk accumulates I/O).
    std::mutex disk_mu;
    /// Guards the memoized spill-policy placement (resident_memo_*).
    mutable std::mutex resident_mu;
    /// Per-miner locks for the scratch-carrying exact baselines.
    std::mutex exact_mu;
    std::mutex gm_mu;
    std::mutex simitsis_mu;
  };

  MiningEngine() = default;

  /// Hands out the next process-unique structure version (monotone
  /// counter starting at 1; 0 never occurs).
  static uint64_t NextStructureVersion();

  /// Invalidates structures derived from word_lists_ after it changes.
  /// Caller must hold lists_mu exclusively.
  void InvalidateDerivedLists();

  /// Lazily constructs the disk tier over the current word lists. When
  /// the engine was loaded from an index file the tier runs on a
  /// MappedDisk over the mapping (measured I/O); otherwise on the modeled
  /// SimulatedDisk. Caller must hold lists_mu (shared) and disk_mu.
  DiskResidentLists& EnsureDiskTierLocked();

  /// Lazy postings construction; caller must hold lists_mu (shared is
  /// enough -- postings_mu serializes the build itself).
  const PhrasePostingIndex& PostingsLocked();

  /// Live-document lookup for delete-by-id; caller must hold update_mu.
  /// Returns nullptr for out-of-range or already-deleted ids.
  const Document* LiveDoc(DocId id) const;

  Options options_;
  Corpus corpus_;
  PhraseDictionary dict_;
  InvertedIndex inverted_;
  ForwardIndex forward_full_;
  ForwardIndex forward_compressed_;
  PhraseListFile phrase_file_;

  /// Set when the engine was loaded from a persisted index file: the open
  /// mapping plus the absolute offsets of the persisted word-list entry
  /// runs and phrase slots, which back the disk tier's measured ranges.
  /// Cleared by Rebuild (the mapping describes the pre-rebuild bytes).
  std::unique_ptr<IndexFile> index_file_;
  MappedListLayout mapped_layout_;
  /// Outcome of the last persist_path-driven SaveToFile.
  Status persist_status_;

  std::unique_ptr<PhrasePostingIndex> postings_;  // lazy
  std::unique_ptr<WordScoreLists> word_lists_;
  double smj_fraction_ = 1.0;
  std::unique_ptr<WordIdOrderedLists> id_lists_;      // at smj_fraction_
  std::unique_ptr<DiskResidentLists> disk_lists_;     // lazy, tracks word_lists_

  /// Observed per-term query counts feeding the spill policy's hotness
  /// order (null = static df placement), plus a version bumped per
  /// install so the placement memo below invalidates. Guarded by
  /// lists_mu: exclusive to install, shared to read.
  std::shared_ptr<const TermPopularity> term_popularity_;
  uint64_t popularity_version_ = 0;

  // Memoized ResidentSetLocked() placement and its cache key (guarded by
  // Sync::resident_mu; the key fields are read under the caller's shared
  // structure lock).
  mutable std::shared_ptr<const std::unordered_set<TermId>> resident_memo_;
  mutable uint64_t resident_memo_generation_ = 0;
  mutable std::size_t resident_memo_terms_ = 0;
  mutable uint64_t resident_memo_budget_ = 0;
  mutable uint64_t resident_memo_popularity_ = 0;

  // Persistent miners so their scratch arrays are reused across queries.
  std::unique_ptr<ExactMiner> exact_;
  std::unique_ptr<GmMiner> gm_;
  std::unique_ptr<SimitsisMiner> simitsis_;

  // --- Update state (see Sync for the guarding mutexes) ----------------------
  uint64_t epoch_ = 0;                           // snapshot_mu
  uint64_t generation_ = 0;                      // snapshot_mu + lists_mu(excl)
  /// Process-unique structure id; reassigned by Rebuild (the fresh
  /// engine's id is adopted in the swap). Written under update_mu +
  /// snapshot_mu, read under either.
  uint64_t structure_version_ = NextStructureVersion();
  UpdateListener update_listener_;               // update_mu
  std::shared_ptr<const DeltaIndex> delta_;      // snapshot_mu
  UpdateStats last_update_stats_;                // snapshot_mu
  std::vector<Document> pending_inserts_;        // update_mu
  std::vector<uint8_t> insert_deleted_;          // update_mu
  std::vector<uint8_t> base_deleted_;            // update_mu; lazily sized
  std::size_t num_deleted_ = 0;                  // update_mu

  std::unique_ptr<Sync> sync_ = std::make_unique<Sync>();
};

}  // namespace phrasemine

#endif  // PHRASEMINE_CORE_ENGINE_H_
