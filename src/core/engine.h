#ifndef PHRASEMINE_CORE_ENGINE_H_
#define PHRASEMINE_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/disk_lists.h"
#include "core/exact_miner.h"
#include "core/gm_miner.h"
#include "core/miner.h"
#include "core/nra_miner.h"
#include "core/query.h"
#include "core/simitsis_miner.h"
#include "core/smj_miner.h"
#include "index/forward_index.h"
#include "index/inverted_index.h"
#include "index/phrase_list_file.h"
#include "index/phrase_posting_index.h"
#include "index/word_lists.h"
#include "phrase/phrase_dictionary.h"
#include "phrase/phrase_extractor.h"
#include "storage/simulated_disk.h"
#include "text/corpus.h"

namespace phrasemine {

/// Algorithm selector for MiningEngine::Mine.
enum class Algorithm {
  kExact,     ///< Ground-truth Eq. 1 scoring over full forward lists.
  kGm,        ///< Exact forward-index baseline (Gao & Michel style).
  kSimitsis,  ///< Two-phase phrase-dictionary baseline (approximate).
  kNra,       ///< Paper's NRA over score-ordered word lists (approximate).
  kNraDisk,   ///< NRA with simulated disk-resident lists (Section 5.5).
  kSmj,       ///< Paper's SMJ over id-ordered word lists (approximate).
};

/// Renders "Exact"/"GM"/... for reports.
const char* AlgorithmName(Algorithm algorithm);

/// Build-time knobs for MiningEngine.
struct MiningEngineOptions {
  /// Phrase-extraction knobs (n-gram cap and min document frequency).
  PhraseExtractorOptions extractor;
  /// Disk-simulation parameters used by Algorithm::kNraDisk.
  DiskOptions disk;
  /// Construction fraction used when an SMJ mine is issued before
  /// SetSmjFraction was called.
  double default_smj_fraction = 1.0;
};

/// One-stop facade over the whole library: owns the corpus, builds the
/// phrase dictionary and every index, and routes Mine() calls to the five
/// algorithms. Word-specific lists are built lazily per query term (they
/// are the only index whose full materialization is quadratic-ish; see
/// WordScoreLists::Build), and id-ordered SMJ lists are cached per
/// construction fraction.
///
/// Typical use:
///   MiningEngine engine = MiningEngine::Build(std::move(corpus));
///   Query q = engine.ParseQuery("trade reserves", QueryOperator::kOr).value();
///   MineResult top = engine.Mine(q, Algorithm::kSmj, {.k = 5});
///   for (const MinedPhrase& p : top.phrases)
///     std::cout << engine.PhraseText(p.phrase) << "\n";
///
/// Threading contract:
///   * Mine(), ParseQuery(), PhraseText() and the const component accessors
///     over eagerly built structures (corpus, dict, indexes, phrase file)
///     may be called concurrently from any number of threads. The lazy
///     build-on-first-use paths (word lists, id-ordered lists, disk lists,
///     phrase postings, persistent miners) are guarded internally: word
///     lists are built outside the lock and merged under it, and readers
///     hold a shared lock for the duration of a mine so a concurrent merge
///     can never invalidate lists in use.
///   * Exception: word_lists() hands out the lazily merged container
///     without synchronization. Only read it while no Mine() or
///     EnsureWordLists() call can be in flight (tests, benchmarks,
///     single-threaded preprocessing). PhraseService never reads it.
///   * Algorithms whose miners keep per-call scratch (kExact, kGm,
///     kSimitsis) serialize per algorithm; kNraDisk serializes on the
///     shared SimulatedDisk. kNra and kSmj run fully in parallel once
///     their lists exist -- these are the paper's serving algorithms and
///     the ones PhraseService routes through its own cache.
///   * Structural mutations -- SetSmjFraction, SaveToDirectory,
///     LoadFromDirectory, moves -- require external exclusive access: no
///     concurrent Mine() calls may be in flight.
class MiningEngine {
 public:
  using Options = MiningEngineOptions;

  /// Builds all eagerly-needed structures: dictionary, inverted index,
  /// full + prefix-compressed forward indexes, phrase list file.
  static MiningEngine Build(Corpus corpus, Options options = {});

  /// Persists the engine (corpus, dictionary, every index and the word
  /// lists built so far) into a directory so later sessions can skip the
  /// extraction/indexing cost. The directory must already exist.
  Status SaveToDirectory(const std::string& dir) const;

  /// Restores an engine persisted by SaveToDirectory. The snapshot format
  /// is versioned; loading a snapshot from an incompatible version fails
  /// with Corruption.
  static Result<MiningEngine> LoadFromDirectory(const std::string& dir,
                                                Options options = {});

  MiningEngine(MiningEngine&&) = default;
  MiningEngine& operator=(MiningEngine&&) = default;

  // --- Querying -------------------------------------------------------------

  /// Parses a whitespace-separated query against the corpus vocabulary.
  Result<Query> ParseQuery(std::string_view text, QueryOperator op) const;

  /// Runs one of the algorithms. For kNra/kNraDisk/kSmj, the word lists of
  /// the query terms are built on first use (that cost is preprocessing,
  /// not query time, and is excluded from MineResult timings).
  MineResult Mine(const Query& query, Algorithm algorithm,
                  const MineOptions& options = {});

  /// Lexical form of a phrase, served from the fixed-slot phrase list file.
  std::string PhraseText(PhraseId id) const { return phrase_file_.Text(id); }

  // --- Preprocessing control --------------------------------------------------

  /// Ensures word-specific score lists exist for these terms.
  void EnsureWordLists(std::span<const TermId> terms);

  /// Ensures lists exist for every term of every query (harness helper).
  void EnsureWordListsFor(std::span<const Query> queries);

  /// Rebuilds the SMJ id-ordered lists at this construction fraction
  /// (Section 4.4.1: a construction-time decision).
  void SetSmjFraction(double fraction);
  double smj_fraction() const { return smj_fraction_; }

  // --- Component access (benchmarks, tests) ----------------------------------

  const Corpus& corpus() const { return corpus_; }
  const PhraseDictionary& dict() const { return dict_; }
  const InvertedIndex& inverted() const { return inverted_; }
  const ForwardIndex& forward() const { return forward_full_; }
  const ForwardIndex& forward_compressed() const { return forward_compressed_; }
  const PhraseListFile& phrase_file() const { return phrase_file_; }
  /// Unsynchronized view of the lazily built word lists; see the class
  /// threading contract before reading this concurrently.
  const WordScoreLists& word_lists() const { return *word_lists_; }

  /// Phrase posting index, built lazily (only the Simitsis baseline uses it).
  const PhrasePostingIndex& postings();

 private:
  /// Lock bundle kept behind a pointer so the engine stays movable.
  struct Sync {
    /// Guards word_lists_, id_lists_, disk_lists_ and smj_fraction_:
    /// shared for mining reads, exclusive for merges and rebuilds.
    std::shared_mutex lists_mu;
    /// Guards lazy construction of postings_.
    std::mutex postings_mu;
    /// Serializes kNraDisk mines (the SimulatedDisk accumulates I/O).
    std::mutex disk_mu;
    /// Per-miner locks for the scratch-carrying exact baselines.
    std::mutex exact_mu;
    std::mutex gm_mu;
    std::mutex simitsis_mu;
  };

  MiningEngine() = default;

  /// Invalidates structures derived from word_lists_ after it changes.
  /// Caller must hold lists_mu exclusively.
  void InvalidateDerivedLists();

  Options options_;
  Corpus corpus_;
  PhraseDictionary dict_;
  InvertedIndex inverted_;
  ForwardIndex forward_full_;
  ForwardIndex forward_compressed_;
  PhraseListFile phrase_file_;

  std::unique_ptr<PhrasePostingIndex> postings_;  // lazy
  std::unique_ptr<WordScoreLists> word_lists_;
  double smj_fraction_ = 1.0;
  std::unique_ptr<WordIdOrderedLists> id_lists_;      // at smj_fraction_
  std::unique_ptr<DiskResidentLists> disk_lists_;     // lazy, tracks word_lists_

  // Persistent miners so their scratch arrays are reused across queries.
  std::unique_ptr<ExactMiner> exact_;
  std::unique_ptr<GmMiner> gm_;
  std::unique_ptr<SimitsisMiner> simitsis_;

  std::unique_ptr<Sync> sync_ = std::make_unique<Sync>();
};

}  // namespace phrasemine

#endif  // PHRASEMINE_CORE_ENGINE_H_
