#ifndef PHRASEMINE_CORE_NRA_MINER_H_
#define PHRASEMINE_CORE_NRA_MINER_H_

#include "core/disk_lists.h"
#include "core/miner.h"
#include "index/word_lists.h"
#include "phrase/phrase_dictionary.h"

namespace phrasemine {

/// Algorithm 1 of the paper: No-Random-Access aggregation over the query
/// words' score-ordered phrase lists.
///
/// Entries are consumed round-robin across the r = |Q| lists. Every
/// candidate phrase carries the sum of its seen per-list scores and a mask
/// of the lists it was seen on; the last score read from each list is the
/// "global bound" for entries not yet seen there. Every `nra_batch_size`
/// reads the miner:
///   * stops admitting new candidates once the k-th best lower bound
///     dominates the best possible score of a fully-unseen phrase
///     (the checknew flag, line 11),
///   * prunes candidates whose upper bound cannot reach the top-k
///     (line 12), and
///   * terminates early when the current top-k is provably final
///     (line 13).
/// Setting MineOptions::list_fraction < 1 caps traversal at that fraction
/// of each list -- the paper's run-time partial lists.
///
/// When constructed with a DiskResidentLists, every entry read and the
/// final top-k phrase lookups are charged to the simulated disk and
/// reported in MineResult::disk_ms (Section 5.5 protocol).
class NraMiner : public Miner {
 public:
  /// In-memory operation.
  NraMiner(const WordScoreLists& lists, const PhraseDictionary& dict);

  /// Disk-resident operation. `disk_lists` must wrap the same WordScoreLists
  /// and outlive the miner; its cache is cold-reset at the start of every
  /// Mine() call.
  NraMiner(DiskResidentLists* disk_lists, const PhraseDictionary& dict);

  MineResult Mine(const Query& query, const MineOptions& options) override;
  std::string_view name() const override { return "NRA"; }

 private:
  const WordScoreLists& lists_;
  const PhraseDictionary& dict_;
  DiskResidentLists* disk_lists_ = nullptr;  // null for in-memory runs
};

}  // namespace phrasemine

#endif  // PHRASEMINE_CORE_NRA_MINER_H_
