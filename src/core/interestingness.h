#ifndef PHRASEMINE_CORE_INTERESTINGNESS_H_
#define PHRASEMINE_CORE_INTERESTINGNESS_H_

#include <cstdint>
#include <cstddef>

namespace phrasemine {

/// Alternative interestingness formulations. The paper's evaluation uses
/// the normalized-frequency measure of Eq. 1 throughout; pointwise mutual
/// information is the alternative it cites ([19], Yang et al.), and the
/// conclusions pose extending the framework to other formulations as future
/// work. The exact miner supports both so that the measures can be
/// compared; the list-based approximations are derived from Eq. 1 and keep
/// using it.
enum class InterestingnessMeasure {
  /// I(p, D') = freq(p, D') / freq(p, D)          (Eq. 1)
  kNormalizedFrequency,
  /// PMI(p, D') = log [ P(p, D') / (P(p) P(D')) ]
  ///            = log [ (freq(p,D') * N) / (freq(p,D) * |D'|) ]
  /// where N = |D|. Like Eq. 1 it rewards concentration of p inside D',
  /// but it additionally discounts large sub-collections.
  kPmi,
};

/// Evaluates the chosen measure from raw counts. `freq_in_subset` is
/// freq(p, D'), `freq_in_corpus` is freq(p, D), `subset_size` is |D'| and
/// `corpus_size` is |D|. Returns 0 for degenerate inputs (empty subset or
/// unseen phrase).
double EvaluateInterestingness(InterestingnessMeasure measure,
                               uint32_t freq_in_subset,
                               uint32_t freq_in_corpus,
                               std::size_t subset_size,
                               std::size_t corpus_size);

}  // namespace phrasemine

#endif  // PHRASEMINE_CORE_INTERESTINGNESS_H_
