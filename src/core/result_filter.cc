#include "core/result_filter.h"

#include <algorithm>
#include <unordered_set>

namespace phrasemine {

double QueryOverlapFraction(const Query& query, PhraseId phrase,
                            const PhraseDictionary& dict) {
  const std::vector<TermId>& tokens = dict.info(phrase).tokens;
  if (tokens.empty()) return 0.0;
  const std::unordered_set<TermId> query_terms(query.terms.begin(),
                                               query.terms.end());
  std::size_t overlap = 0;
  for (TermId t : tokens) {
    if (query_terms.contains(t)) ++overlap;
  }
  return static_cast<double>(overlap) / static_cast<double>(tokens.size());
}

std::size_t FilterQueryOverlap(const Query& query,
                               const PhraseDictionary& dict,
                               const OverlapFilterOptions& options,
                               MineResult* result) {
  const std::size_t before = result->phrases.size();
  std::erase_if(result->phrases, [&](const MinedPhrase& p) {
    return QueryOverlapFraction(query, p.phrase, dict) >
           options.max_overlap_fraction;
  });
  return before - result->phrases.size();
}

}  // namespace phrasemine
