#ifndef PHRASEMINE_CORE_SCORING_H_
#define PHRASEMINE_CORE_SCORING_H_

#include <cmath>
#include <limits>
#include <span>

#include "core/query.h"

namespace phrasemine {

/// How many terms of the inclusion-exclusion expansion (Eq. 10/11) the OR
/// score keeps. The paper's method uses kFirstOrder (Eq. 12); the higher
/// orders are provided for the ablation study of Section 4.1.3.
enum class OrExpansionOrder {
  /// S = sum_i P(qi|p)  -- the paper's formulation (Eq. 12).
  kFirstOrder,
  /// S = sum_i P(qi|p) - sum_{i<j} P(qi|p) P(qj|p).
  kSecondOrder,
  /// All orders; under independence this telescopes to 1 - prod_i(1-P(qi|p)).
  kFull,
};

/// Sentinel for "phrase cannot qualify" (AND query with a zero factor).
inline constexpr double kMinusInfinity = -std::numeric_limits<double>::infinity();

/// Per-entry score contribution (Algorithm 1 line 7): the raw probability
/// for OR queries, its natural log for AND queries (Eq. 8). log(0) is mapped
/// to -infinity, consistent with P(AND|p)=0 when any factor vanishes.
inline double EntryScore(double prob, QueryOperator op) {
  if (op == QueryOperator::kOr) return prob;
  return prob > 0.0 ? std::log(prob) : kMinusInfinity;
}

/// Combines per-term conditional probabilities into the AND score of Eq. 8.
double AndScore(std::span<const double> probs);

/// Combines per-term conditional probabilities into the OR score at the
/// requested expansion order (Eqs. 10-12 under the independence assumption).
double OrScore(std::span<const double> probs, OrExpansionOrder order);

/// Converts an aggregate score back to an interestingness estimate:
/// exp(score) for AND (the product of factors), the score itself for OR.
/// The OR estimate approximates the probability P(∪ q_i | p), so the
/// first-order sum (which can overshoot when several factors are large) is
/// clamped to 1.0 -- the attainable maximum of Eq. 1. Ranking is unaffected
/// (the miners order by the raw aggregate score); only the reported
/// estimate, compared against the true interestingness in the Table 6
/// experiment, is clamped.
double ScoreToInterestingness(double score, QueryOperator op);

}  // namespace phrasemine

#endif  // PHRASEMINE_CORE_SCORING_H_
