#ifndef PHRASEMINE_CORE_GM_MINER_H_
#define PHRASEMINE_CORE_GM_MINER_H_

#include <vector>

#include "core/miner.h"
#include "index/forward_index.h"
#include "index/inverted_index.h"
#include "phrase/phrase_dictionary.h"

namespace phrasemine {

/// The exact forward-index baseline in the style of Gao & Michel [8]
/// ("GM" in the paper's evaluation): per-document phrase lists stored with
/// shared-prefix compression, aggregated over every document of D' with
/// parent-chain expansion and per-document dedup. Results are exact -- they
/// match ExactMiner -- but the cost is linear in |D'|, which is precisely
/// the weakness the paper's word-list methods attack.
///
/// Not thread-safe: reuses internal scratch between queries.
class GmMiner : public Miner {
 public:
  /// `forward` should be built with ForwardStorage::kPrefixCompressed to
  /// reflect GM's storage optimization; a full index also works.
  GmMiner(const InvertedIndex& inverted, const ForwardIndex& forward,
          const PhraseDictionary& dict);

  MineResult Mine(const Query& query, const MineOptions& options) override;
  std::string_view name() const override { return "GM"; }

 private:
  const InvertedIndex& inverted_;
  const ForwardIndex& forward_;
  const PhraseDictionary& dict_;

  std::vector<uint32_t> counts_;
  std::vector<DocId> last_doc_;  // per-phrase dedup marker
  std::vector<PhraseId> touched_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_CORE_GM_MINER_H_
