#include "core/smj_miner.h"

#include <array>
#include <vector>

#include "common/cancel.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "core/delta_index.h"
#include "core/exact_miner.h"
#include "core/kernels.h"
#include "obs/trace.h"

namespace phrasemine {

namespace {

/// Attaches the one-phase SMJ trace (both merge paths report the same
/// shape; `path` says which implementation ran).
void AttachSmjTrace(MineResult* result, const char* path) {
  result->trace = std::make_shared<TraceSpan>();
  result->trace->name = "mine:smj";
  result->trace->detail = path;
  result->trace->wall_ms = result->compute_ms;
  TraceSpan* merge = AddSpan(result->trace.get(), "merge");
  merge->wall_ms = result->compute_ms;
  AddCounter(merge, "entries_read",
             static_cast<double>(result->entries_read));
  AddCounter(merge, "distinct_candidates",
             static_cast<double>(result->peak_candidates));
  AddCounter(merge, "results", static_cast<double>(result->phrases.size()));
  if (!result->status.ok()) {
    AddCounter(merge, "cancelled", 1.0);
    AddCounter(merge, "entries_at_cancel",
               static_cast<double>(result->entries_read));
  }
}

/// Shared abort stamping of both merge paths: once the token's latch is
/// set (by a kernel poll, a scalar-loop poll, or a sibling shard leg) the
/// collected prefix is not a ranking -- mark the result DeadlineExceeded.
void StampCancelled(const CancelToken* cancel, MineResult* result) {
  if (CancelRequested(cancel)) {
    result->status =
        Status::DeadlineExceeded("deadline expired during SMJ merge");
  }
}

}  // namespace

SmjMiner::SmjMiner(const WordIdOrderedLists& lists,
                   const PhraseDictionary& dict)
    : lists_(lists), dict_(dict) {}

MineResult SmjMiner::Mine(const Query& query, const MineOptions& options) {
  PM_CHECK_MSG(query.terms.size() <= 32, "SMJ supports up to 32 query terms");
  if (options.use_kernels) return MineKernel(query, options);
  return MineScalar(query, options);
}

/// Kernel path: the SoA merge kernels emit each candidate phrase with its
/// per-term probability vector (list order), and this function applies
/// exactly the scalar path's delta adjustment and scoring to it -- same
/// AndScore/OrScore calls on the same values in the same order, so the
/// ranked output is bitwise identical (the differential tests enforce it).
MineResult SmjMiner::MineKernel(const Query& query,
                                const MineOptions& options) {
  MineResult result;
  StopWatch watch;

  const QueryOperator op = query.op;
  const std::size_t r = query.terms.size();
  static const SoABlockList kEmptyList;  // terms without a stored list
  std::array<const SoABlockList*, kernels::kMaxLists> lists;
  for (std::size_t i = 0; i < r; ++i) {
    const SoABlockList* soa = lists_.soa(query.terms[i]);
    lists[i] = soa != nullptr ? soa : &kEmptyList;
  }
  const std::span<const SoABlockList* const> span(lists.data(), r);

  TopKCollector collector(options.k);
  std::array<double, kernels::kMaxLists> adjusted;
  std::size_t distinct = 0;
  const DeltaIndex* delta = options.delta;

  // The overlay is applied per present entry, exactly as the scalar merge
  // does; absent terms contribute 0.0 without consulting it (an absent
  // (term, phrase) pair has no base count and no positive co-delta -- a
  // positive delta would have put it in the overlay's extra entries).
  auto adjust = [&](PhraseId id, const double* probs,
                    uint32_t mask) -> const double* {
    if (delta == nullptr) return probs;
    for (std::size_t i = 0; i < r; ++i) {
      adjusted[i] = (mask & (1u << i)) != 0
                        ? delta->AdjustedProb(query.terms[i], id, probs[i])
                        : 0.0;
    }
    return adjusted.data();
  };

  if (op == QueryOperator::kAnd) {
    result.entries_read = kernels::GallopingAndJoin(
        span,
        [&](PhraseId id, const double* probs, uint32_t mask) {
          ++distinct;
          const double* p = adjust(id, probs, mask);
          const double score = AndScore(std::span<const double>(p, r));
          if (score == kMinusInfinity) return;
          collector.Offer(id, score, ScoreToInterestingness(score, op));
        },
        options.cancel);
  } else {
    result.entries_read = kernels::BlockOrMerge(
        span,
        [&](PhraseId id, const double* probs, uint32_t mask) {
          ++distinct;
          const double* p = adjust(id, probs, mask);
          const double score =
              OrScore(std::span<const double>(p, r), options.or_order);
          if (score <= 0.0) return;
          collector.Offer(id, score, ScoreToInterestingness(score, op));
        },
        options.cancel);
  }

  result.peak_candidates = distinct;
  result.phrases = collector.Take();
  result.compute_ms = watch.ElapsedMillis();
  StampCancelled(options.cancel, &result);
  if (options.trace) AttachSmjTrace(&result, "kernel");
  return result;
}

/// Scalar reference path: the textbook one-entry-at-a-time k-way merge of
/// Algorithm 2, kept verbatim as the ground truth the kernel path is
/// differentially tested against.
MineResult SmjMiner::MineScalar(const Query& query,
                                const MineOptions& options) {
  MineResult result;
  StopWatch watch;

  const QueryOperator op = query.op;
  const std::size_t r = query.terms.size();
  std::vector<std::span<const ListEntry>> lists(r);
  std::vector<std::size_t> pos(r, 0);
  for (std::size_t i = 0; i < r; ++i) {
    lists[i] = lists_.list(query.terms[i]);
  }

  TopKCollector collector(options.k);
  std::vector<double> probs;
  probs.reserve(r);
  std::size_t distinct = 0;

  for (;;) {
    // Same polling stride as the kernels: one deadline check per
    // kCancelStride merged candidates.
    if (options.cancel != nullptr &&
        distinct % kernels::kCancelStride == kernels::kCancelStride - 1 &&
        options.cancel->Expired()) {
      break;
    }
    // Find the smallest unread phrase id across lists (Alg. 2 line 4);
    // r is tiny (2-6), so a linear scan beats a heap.
    PhraseId min_id = kInvalidPhraseId;
    for (std::size_t i = 0; i < r; ++i) {
      if (pos[i] < lists[i].size() && lists[i][pos[i]].phrase < min_id) {
        min_id = lists[i][pos[i]].phrase;
      }
    }
    if (min_id == kInvalidPhraseId) break;  // All lists exhausted.

    // Consume every list entry carrying min_id; collect the per-term
    // conditional probabilities (absent lists contribute 0).
    probs.clear();
    std::size_t present = 0;
    for (std::size_t i = 0; i < r; ++i) {
      double p = 0.0;
      if (pos[i] < lists[i].size() && lists[i][pos[i]].phrase == min_id) {
        p = lists[i][pos[i]].prob;
        if (options.delta != nullptr) {
          p = options.delta->AdjustedProb(query.terms[i], min_id, p);
        }
        ++pos[i];
        ++present;
        ++result.entries_read;
      }
      probs.push_back(p);
    }
    ++distinct;

    double score;
    if (op == QueryOperator::kAnd) {
      if (present < r) continue;  // A zero factor nullifies an AND product.
      score = AndScore(probs);
      if (score == kMinusInfinity) continue;
    } else {
      score = OrScore(probs, options.or_order);
      if (score <= 0.0) continue;
    }
    collector.Offer(min_id, score, ScoreToInterestingness(score, op));
  }

  result.peak_candidates = distinct;
  result.phrases = collector.Take();
  result.compute_ms = watch.ElapsedMillis();
  StampCancelled(options.cancel, &result);
  if (options.trace) AttachSmjTrace(&result, "scalar");
  return result;
}

}  // namespace phrasemine
