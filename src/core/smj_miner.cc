#include "core/smj_miner.h"

#include <array>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"
#include "core/delta_index.h"
#include "core/exact_miner.h"

namespace phrasemine {

SmjMiner::SmjMiner(const WordIdOrderedLists& lists,
                   const PhraseDictionary& dict)
    : lists_(lists), dict_(dict) {}

MineResult SmjMiner::Mine(const Query& query, const MineOptions& options) {
  PM_CHECK_MSG(query.terms.size() <= 32, "SMJ supports up to 32 query terms");
  MineResult result;
  StopWatch watch;

  const QueryOperator op = query.op;
  const std::size_t r = query.terms.size();
  std::vector<std::span<const ListEntry>> lists(r);
  std::vector<std::size_t> pos(r, 0);
  for (std::size_t i = 0; i < r; ++i) {
    lists[i] = lists_.list(query.terms[i]);
  }

  TopKCollector collector(options.k);
  std::vector<double> probs;
  probs.reserve(r);
  std::size_t distinct = 0;

  for (;;) {
    // Find the smallest unread phrase id across lists (Alg. 2 line 4);
    // r is tiny (2-6), so a linear scan beats a heap.
    PhraseId min_id = kInvalidPhraseId;
    for (std::size_t i = 0; i < r; ++i) {
      if (pos[i] < lists[i].size() && lists[i][pos[i]].phrase < min_id) {
        min_id = lists[i][pos[i]].phrase;
      }
    }
    if (min_id == kInvalidPhraseId) break;  // All lists exhausted.

    // Consume every list entry carrying min_id; collect the per-term
    // conditional probabilities (absent lists contribute 0).
    probs.clear();
    std::size_t present = 0;
    for (std::size_t i = 0; i < r; ++i) {
      double p = 0.0;
      if (pos[i] < lists[i].size() && lists[i][pos[i]].phrase == min_id) {
        p = lists[i][pos[i]].prob;
        if (options.delta != nullptr) {
          p = options.delta->AdjustedProb(query.terms[i], min_id, p);
        }
        ++pos[i];
        ++present;
        ++result.entries_read;
      }
      probs.push_back(p);
    }
    ++distinct;

    double score;
    if (op == QueryOperator::kAnd) {
      if (present < r) continue;  // A zero factor nullifies an AND product.
      score = AndScore(probs);
      if (score == kMinusInfinity) continue;
    } else {
      score = OrScore(probs, options.or_order);
      if (score <= 0.0) continue;
    }
    collector.Offer(min_id, score, ScoreToInterestingness(score, op));
  }

  result.peak_candidates = distinct;
  result.phrases = collector.Take();
  result.compute_ms = watch.ElapsedMillis();
  return result;
}

}  // namespace phrasemine
