#include "core/simitsis_miner.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/stopwatch.h"
#include "core/exact_miner.h"

namespace phrasemine {

SimitsisMiner::SimitsisMiner(const InvertedIndex& inverted,
                             const PhrasePostingIndex& postings,
                             const PhraseDictionary& dict,
                             std::size_t num_docs)
    : inverted_(inverted),
      postings_(postings),
      dict_(dict),
      num_docs_(num_docs) {}

MineResult SimitsisMiner::Mine(const Query& query,
                               const MineOptions& options) {
  StopWatch watch;
  MineResult result;

  const std::vector<DocId> subset = EvalSubCollection(query, inverted_);
  result.subcollection_size = subset.size();

  // Phase 1: scan lists longest-first, tracking the k best intersection
  // cardinalities; stop when remaining lists are shorter than the k-th best
  // (they cannot contain more matching documents than their length).
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<std::size_t>>
      best_counts;  // min-heap of the k largest intersection counts
  struct Candidate {
    PhraseId phrase;
    std::size_t count;
  };
  std::vector<Candidate> candidates;
  std::size_t scanned = 0;
  for (PhraseId p : postings_.by_cardinality()) {
    const std::span<const DocId> docs = postings_.docs(p);
    if (best_counts.size() >= options.k && !best_counts.empty() &&
        docs.size() < best_counts.top()) {
      break;  // All remaining lists are at most this long.
    }
    ++scanned;
    const std::size_t count = InvertedIndex::IntersectSize(docs, subset);
    result.entries_read += docs.size();
    if (count == 0) continue;
    candidates.push_back(Candidate{p, count});
    if (best_counts.size() < options.k) {
      best_counts.push(count);
    } else if (count > best_counts.top()) {
      best_counts.pop();
      best_counts.push(count);
    }
  }
  result.lists_traversed_fraction =
      postings_.num_phrases() == 0
          ? 1.0
          : static_cast<double>(scanned) /
                static_cast<double>(postings_.num_phrases());

  // Phase 2: normalized scoring of the retained candidates (Eq. 1, or the
  // requested alternative measure).
  TopKCollector collector(options.k);
  for (const Candidate& c : candidates) {
    const double score = EvaluateInterestingness(
        options.measure, static_cast<uint32_t>(c.count), dict_.df(c.phrase),
        subset.size(), num_docs_);
    collector.Offer(c.phrase, score, score);
  }
  result.peak_candidates = candidates.size();
  result.phrases = collector.Take();
  result.compute_ms = watch.ElapsedMillis();
  return result;
}

}  // namespace phrasemine
