#ifndef PHRASEMINE_CORE_MINER_H_
#define PHRASEMINE_CORE_MINER_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/interestingness.h"
#include "core/query.h"
#include "core/scoring.h"
#include "text/types.h"

namespace phrasemine {

class CancelToken;  // common/cancel.h
class DeltaIndex;   // core/delta_index.h
struct TraceSpan;   // obs/trace.h

/// What a result is worth relative to corpus updates absorbed so far
/// (Section 4.5.1). Stamped into MineResult by MiningEngine/PhraseService.
enum class UpdateGuarantee {
  /// No update overlay was in effect: the result reflects the base corpus
  /// under the algorithm's own exact/approximate contract.
  kFresh,
  /// A delta overlay was applied and the scores are exact with respect to
  /// the updated corpus (SMJ over full lists).
  kExactUnderDelta,
  /// A delta overlay was applied but the pruning bounds are heuristic, so
  /// the top-k is approximate with respect to the updated corpus (NRA: the
  /// adjusted scores need not respect the stored list order).
  kApproximateUnderDelta,
  /// Updates were pending but the algorithm cannot consult the overlay
  /// (the count-based miners Exact/GM/Simitsis mine the base corpus).
  kStale,
};

/// Renders "fresh"/"exact-under-delta"/... for reports.
const char* UpdateGuaranteeName(UpdateGuarantee guarantee);

/// Aggregate simulated-disk I/O behind one mine (all zeros for purely
/// in-memory runs). Filled by the kNraDisk path from the owning disk
/// tier's SimulatedDisk counters; ShardedEngine sums one of these per
/// shard device and PhraseService accumulates them into its stats.
struct DiskIoStats {
  /// Device blocks fetched (cache misses, lookahead prefetches included).
  uint64_t blocks_read = 0;
  /// Fetches charged at the random (seek) rate.
  uint64_t seeks = 0;
  /// Logical bytes the algorithm requested from the device.
  uint64_t bytes = 0;

  DiskIoStats& operator+=(const DiskIoStats& other) {
    blocks_read += other.blocks_read;
    seeks += other.seeks;
    bytes += other.bytes;
    return *this;
  }
};

/// One ranked result phrase.
struct MinedPhrase {
  PhraseId phrase = kInvalidPhraseId;
  /// The algorithm's internal aggregate score (sum of logs for AND, sum of
  /// probabilities for OR, raw interestingness for the exact methods).
  double score = 0.0;
  /// The algorithm's interestingness estimate in [0, 1]-ish range; for the
  /// exact methods this equals Eq. 1 exactly.
  double interestingness = 0.0;
};

/// Result of one Mine() call: the ranked top-k plus per-run accounting used
/// by the benchmark harnesses.
struct MineResult {
  std::vector<MinedPhrase> phrases;

  /// Measured in-memory computation time.
  double compute_ms = 0.0;
  /// Charged simulated disk time (0 for purely in-memory runs). For a
  /// sharded merge this is the *slowest shard device's* charge: shards
  /// own independent disks that run in parallel, so modeled I/O latency
  /// is a makespan, not a sum.
  double disk_ms = 0.0;
  /// Simulated-disk I/O counters behind disk_ms (zeros in-memory). For a
  /// sharded merge these are summed across shard devices -- aggregate
  /// work, where disk_ms is the parallel makespan; the per-device split
  /// is in ShardedMineResult::shard_disk_io.
  DiskIoStats disk_io;
  /// Total response time under the paper's simulation protocol.
  double TotalMs() const { return compute_ms + disk_ms; }

  /// List entries consumed (NRA, scalar SMJ, OR-kernel SMJ) or landed on
  /// (AND-kernel SMJ, whose galloping intersection skips entries -- the
  /// skipped ones are the savings), or forward-list entries touched (GM).
  uint64_t entries_read = 0;
  /// Candidates the sharded threshold-exchange round dropped before the
  /// fill round because they were provably below the global k-th bound
  /// (see ShardedEngine); 0 for single-engine mines.
  uint64_t candidates_pruned = 0;
  /// Average fraction of the query's lists traversed before stopping
  /// (Figure 11 metric); 1.0 when the algorithm always reads whole inputs.
  double lists_traversed_fraction = 1.0;
  /// Peak candidate-set size |C| (NRA/SMJ bookkeeping). Like
  /// entries_read, the AND-kernel SMJ path reports only the phrases its
  /// galloping intersection actually examined (the survivors), where the
  /// scalar merge counts every distinct id in the lists' union -- the
  /// gap is the work the kernel skipped, so the two paths' values are
  /// not comparable on AND queries.
  std::size_t peak_candidates = 0;
  /// Number of documents in the materialized sub-collection, when the
  /// algorithm materializes one (exact/GM/Simitsis); 0 otherwise.
  std::size_t subcollection_size = 0;

  /// Engine epoch this result was mined at (0 before any update was ever
  /// applied, or when the miner was driven directly without an engine).
  /// For results merged by ShardedEngine this is the sum of the per-shard
  /// epochs (monotone under updates); the full vector is in shard_epochs.
  uint64_t epoch = 0;
  /// Composite epoch vector: the epoch of every shard this result was
  /// mined against, in shard order. Empty for single-engine mines. Two
  /// results are freshness-comparable only if their vectors compare
  /// element-wise; the scalar `epoch` sum exists for monotone ordering
  /// and must not be used as a cache identity on its own.
  std::vector<uint64_t> shard_epochs;
  /// Which correctness guarantee held under the update overlay, if any.
  /// A merged result carries the worst guarantee across its shards.
  UpdateGuarantee guarantee = UpdateGuarantee::kFresh;
  /// Root span of this mine's trace (obs/trace.h), filled only when
  /// MineOptions::trace was set: null by default, so untraced mines pay
  /// one pointer of storage and nothing else. Shared so result copies
  /// (cache plumbing, merged replies) do not duplicate the tree;
  /// PhraseService strips it before caching a result (a cached trace
  /// would replay a stale execution story on every hit).
  std::shared_ptr<TraceSpan> trace;
  /// OK for a completed mine. DeadlineExceeded when MineOptions::cancel
  /// fired mid-run (phrases/accounting then describe the partial execution
  /// up to the abort -- the trace carries a "cancelled" counter), IOError/
  /// Corruption when the disk tier latched an injected or real device
  /// failure. Non-OK results must not be cached or treated as a ranking.
  Status status;
};

/// Per-query knobs shared by all algorithms.
struct MineOptions {
  /// Result count k; the paper fixes k = 5 in the evaluation.
  std::size_t k = 5;
  /// Fraction of each word list to traverse (NRA run-time partial lists).
  /// SMJ ignores this: its fraction is fixed when its id-ordered lists are
  /// built (Section 4.4.1).
  double list_fraction = 1.0;
  /// NRA pruning batch size b (Section 4.5): bounds maintenance and pruning
  /// run once every `nra_batch_size` entry reads.
  std::size_t nra_batch_size = 256;
  /// OR-score expansion order (Section 4.1.3 ablation).
  OrExpansionOrder or_order = OrExpansionOrder::kFirstOrder;
  /// Optional incremental-update overlay (Section 4.5.1). When set, NRA and
  /// SMJ adjust each list entry's conditional probability with the delta
  /// before aggregation.
  const DeltaIndex* delta = nullptr;
  /// kNraDisk only: charge the final top-k phrase-text lookups to the
  /// simulated device (the Section 5.5 result-materialization cost).
  /// ShardedEngine turns this off for its scatter mines: a shard's
  /// local top-k' candidates are never materialized (billing every
  /// device k' random lookups would add a constant per-device cost that
  /// does not partition), and the merged top-k's texts are served from
  /// the router's in-memory phrase file at the gather -- the sharded
  /// device model covers word-list I/O only. See docs/disk_tier.md.
  bool charge_phrase_lookups = true;
  /// Routes SMJ through the SoA merge kernels (core/kernels.h). The
  /// kernel and scalar paths are bitwise identical in ranked output (the
  /// differential tests prove it, delta overlays included); the scalar
  /// path exists as the reference those tests pit the kernels against and
  /// as the portable fallback. Leave this on outside of such tests.
  bool use_kernels = true;
  /// Interestingness formulation for the count-based miners (Exact, GM,
  /// Simitsis). The list-based methods (NRA/SMJ) are derived from the
  /// normalized-frequency measure and ignore this; extending the
  /// independence machinery to other measures is the paper's stated future
  /// work.
  InterestingnessMeasure measure =
      InterestingnessMeasure::kNormalizedFrequency;
  /// Opt-in per-request tracing: when true the mine allocates a span tree
  /// describing where its time went (MineResult::trace) -- per-shard
  /// scatter/exchange/fill/gather on the sharded path, traversal and disk
  /// phases in the list miners. Off by default: the untraced path is a
  /// single branch per phase, no allocations. Tracing never changes the
  /// ranked output (it is excluded from result-cache keys).
  bool trace = false;
  /// Optional cooperative cancellation token (common/cancel.h), polled at
  /// block granularity: NRA checks once per maintenance batch
  /// (nra_batch_size entry reads), SMJ/kernels once per merge block,
  /// sharded mines at every scatter/fill leg boundary, and the disk tier's
  /// charge points via the cheap flag-only form. When it fires the mine
  /// stops where it is and returns MineResult::status = DeadlineExceeded
  /// with partial accounting. Null (the default) compiles to one branch
  /// per block; the ranked output is bitwise unchanged. The count-based
  /// miners (Exact/GM/Simitsis) do not poll it. Not part of cache keys;
  /// the caller keeps the token alive for the duration of the mine.
  const CancelToken* cancel = nullptr;
};

/// Common interface of all five mining algorithms.
class Miner {
 public:
  virtual ~Miner() = default;

  /// Mines the top-k interesting phrases for the query.
  virtual MineResult Mine(const Query& query, const MineOptions& options) = 0;

  /// Short algorithm name for reports ("Exact", "GM", "NRA", ...).
  virtual std::string_view name() const = 0;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_CORE_MINER_H_
