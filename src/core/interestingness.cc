#include "core/interestingness.h"

#include <cmath>

namespace phrasemine {

double EvaluateInterestingness(InterestingnessMeasure measure,
                               uint32_t freq_in_subset,
                               uint32_t freq_in_corpus,
                               std::size_t subset_size,
                               std::size_t corpus_size) {
  if (freq_in_subset == 0 || freq_in_corpus == 0 || subset_size == 0 ||
      corpus_size == 0) {
    return 0.0;
  }
  const double in_subset = static_cast<double>(freq_in_subset);
  const double in_corpus = static_cast<double>(freq_in_corpus);
  switch (measure) {
    case InterestingnessMeasure::kNormalizedFrequency:
      return in_subset / in_corpus;
    case InterestingnessMeasure::kPmi:
      return std::log((in_subset * static_cast<double>(corpus_size)) /
                      (in_corpus * static_cast<double>(subset_size)));
  }
  return 0.0;
}

}  // namespace phrasemine
