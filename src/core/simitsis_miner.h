#ifndef PHRASEMINE_CORE_SIMITSIS_MINER_H_
#define PHRASEMINE_CORE_SIMITSIS_MINER_H_

#include "core/miner.h"
#include "index/inverted_index.h"
#include "index/phrase_posting_index.h"
#include "phrase/phrase_dictionary.h"

namespace phrasemine {

/// The two-phase phrase-dictionary baseline of Simitsis et al. [15]
/// (Section 2, Table 3 row 1). Phase 1 scans phrase posting lists in
/// decreasing cardinality order, computing |docs(p) ∩ D'| for each, and
/// stops once remaining lists are shorter than the k-th best intersection
/// cardinality seen so far (shorter lists cannot beat it on raw frequency).
/// Phase 2 rescores the retained candidates with the normalized
/// interestingness of Eq. 1. Because phase 1 filters on raw frequency while
/// phase 2 ranks by the normalized score, the result is approximate -- the
/// "disconnect" the paper describes.
class SimitsisMiner : public Miner {
 public:
  /// `num_docs` is |D|, needed by measures that discount by corpus size.
  SimitsisMiner(const InvertedIndex& inverted,
                const PhrasePostingIndex& postings,
                const PhraseDictionary& dict, std::size_t num_docs);

  MineResult Mine(const Query& query, const MineOptions& options) override;
  std::string_view name() const override { return "Simitsis"; }

 private:
  const InvertedIndex& inverted_;
  const PhrasePostingIndex& postings_;
  const PhraseDictionary& dict_;
  std::size_t num_docs_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_CORE_SIMITSIS_MINER_H_
