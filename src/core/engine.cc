#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "obs/trace.h"

namespace phrasemine {

namespace {

/// File name of an engine persisted into a directory.
constexpr const char* kIndexFileName = "engine.pmidx";

/// Serializes one structure into a detached payload buffer.
template <typename Fn>
std::vector<uint8_t> SerializeSection(Fn&& serialize) {
  BinaryWriter writer;
  serialize(&writer);
  return writer.TakeBuffer();
}

/// Borrowed reader over a required section; missing sections are
/// Corruption (an engine file always carries all eight).
Status SectionReader(const IndexFile& file, IndexSection type,
                     std::optional<BinaryReader>* out) {
  if (!file.has_section(type)) {
    return Status::Corruption("index file missing engine section " +
                              std::to_string(static_cast<uint32_t>(type)) +
                              ": " + file.path());
  }
  out->emplace(file.section(type));
  return Status::OK();
}

/// Clones a fixed phrase set (identical ids, parents and token
/// sequences -- extraction registers parents before children, so the
/// sequential AddPhrase replay is valid) and recounts document
/// frequencies set-wise over `corpus`. Phrases absent from the corpus
/// keep df 0.
PhraseDictionary CloneSetWithCorpusDfs(const PhraseDictionary& set,
                                       const Corpus& corpus) {
  PhraseDictionary dict;
  for (PhraseId p = 0; p < set.size(); ++p) {
    const PhraseInfo& info = set.info(p);
    dict.AddPhrase(info.tokens, info.parent, 0);
  }
  for (DocId d = 0; d < corpus.size(); ++d) {
    for (PhraseId p : CollectDocPhrases(corpus.doc(d).tokens, dict)) {
      dict.set_df(p, dict.df(p) + 1);
    }
  }
  return dict;
}

}  // namespace

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kExact:
      return "Exact";
    case Algorithm::kGm:
      return "GM";
    case Algorithm::kSimitsis:
      return "Simitsis";
    case Algorithm::kNra:
      return "NRA";
    case Algorithm::kNraDisk:
      return "NRA-disk";
    case Algorithm::kSmj:
      return "SMJ";
  }
  return "?";
}

const char* UpdateGuaranteeName(UpdateGuarantee guarantee) {
  switch (guarantee) {
    case UpdateGuarantee::kFresh:
      return "fresh";
    case UpdateGuarantee::kExactUnderDelta:
      return "exact-under-delta";
    case UpdateGuarantee::kApproximateUnderDelta:
      return "approximate-under-delta";
    case UpdateGuarantee::kStale:
      return "stale";
  }
  return "?";
}

UpdateGuarantee GuaranteeFor(Algorithm algorithm, bool delta_applied,
                             bool smj_full_lists) {
  if (!delta_applied) return UpdateGuarantee::kFresh;
  switch (algorithm) {
    case Algorithm::kSmj:
      return smj_full_lists ? UpdateGuarantee::kExactUnderDelta
                            : UpdateGuarantee::kApproximateUnderDelta;
    case Algorithm::kNra:
    case Algorithm::kNraDisk:
      return UpdateGuarantee::kApproximateUnderDelta;
    case Algorithm::kExact:
    case Algorithm::kGm:
    case Algorithm::kSimitsis:
      return UpdateGuarantee::kStale;
  }
  return UpdateGuarantee::kFresh;
}

MiningEngine MiningEngine::Build(Corpus corpus, Options options) {
  MiningEngine engine;
  engine.options_ = options;
  engine.corpus_ = std::move(corpus);
  if (options.fixed_phrase_set != nullptr) {
    engine.dict_ =
        CloneSetWithCorpusDfs(*options.fixed_phrase_set, engine.corpus_);
  } else {
    PhraseExtractor extractor(options.extractor);
    engine.dict_ = extractor.Extract(engine.corpus_);
  }
  engine.inverted_ = InvertedIndex::Build(engine.corpus_);
  engine.forward_full_ =
      ForwardIndex::Build(engine.corpus_, engine.dict_, ForwardStorage::kFull);
  engine.forward_compressed_ = ForwardIndex::Build(
      engine.corpus_, engine.dict_, ForwardStorage::kPrefixCompressed);
  engine.phrase_file_ =
      PhraseListFile::Build(engine.dict_, engine.corpus_.vocab());
  engine.word_lists_ = std::make_unique<WordScoreLists>();
  engine.smj_fraction_ = options.default_smj_fraction;
  if (!options.persist_path.empty()) {
    engine.persist_status_ = engine.SaveToFile(options.persist_path);
  }
  return engine;
}

Status MiningEngine::SaveToFile(const std::string& path) const {
  std::shared_lock lists_lock(sync_->lists_mu);
  IndexFileWriter writer;
  {
    // Shared against ingest-time interning of unseen terms.
    std::shared_lock vocab_lock(sync_->vocab_mu);
    writer.AddSection(IndexSection::kVocabulary, SerializeSection([&](
        BinaryWriter* w) { corpus_.vocab().Serialize(w); }));
  }
  writer.AddSection(IndexSection::kCorpusDocs, SerializeSection([&](
      BinaryWriter* w) { corpus_.SerializeDocs(w); }));
  writer.AddSection(IndexSection::kPhraseDictionary, SerializeSection([&](
      BinaryWriter* w) { dict_.Serialize(w); }));
  writer.AddSection(IndexSection::kInvertedIndex, SerializeSection([&](
      BinaryWriter* w) { inverted_.Serialize(w); }));
  writer.AddSection(IndexSection::kForwardIndexFull, SerializeSection([&](
      BinaryWriter* w) { forward_full_.Serialize(w); }));
  writer.AddSection(IndexSection::kForwardIndexCompressed, SerializeSection([&](
      BinaryWriter* w) { forward_compressed_.Serialize(w); }));
  writer.AddSection(IndexSection::kPhraseListFile, SerializeSection([&](
      BinaryWriter* w) { phrase_file_.Serialize(w); }));
  writer.AddSection(IndexSection::kWordScoreLists, SerializeSection([&](
      BinaryWriter* w) { word_lists_->Serialize(w); }));
  return writer.WriteTo(path);
}

Result<MiningEngine> MiningEngine::LoadFromFile(const std::string& path,
                                                Options options) {
  Result<IndexFile> file_or = IndexFile::Open(path);
  if (!file_or.ok()) return file_or.status();
  auto file = std::make_unique<IndexFile>(std::move(file_or.value()));

  MiningEngine engine;
  engine.options_ = options;
  Status s;
  std::optional<BinaryReader> reader;
  {
    if (!(s = SectionReader(*file, IndexSection::kVocabulary, &reader)).ok())
      return s;
    Result<Vocabulary> part = Vocabulary::Deserialize(&*reader);
    if (!part.ok()) return part.status();
    engine.corpus_.SetVocab(std::move(part.value()));
  }
  {
    if (!(s = SectionReader(*file, IndexSection::kCorpusDocs, &reader)).ok())
      return s;
    if (!(s = Corpus::DeserializeDocs(&*reader, &engine.corpus_)).ok())
      return s;
  }
  {
    if (!(s = SectionReader(*file, IndexSection::kPhraseDictionary, &reader))
             .ok())
      return s;
    Result<PhraseDictionary> part = PhraseDictionary::Deserialize(&*reader);
    if (!part.ok()) return part.status();
    engine.dict_ = std::move(part.value());
  }
  {
    if (!(s = SectionReader(*file, IndexSection::kInvertedIndex, &reader)).ok())
      return s;
    Result<InvertedIndex> part = InvertedIndex::Deserialize(&*reader);
    if (!part.ok()) return part.status();
    engine.inverted_ = std::move(part.value());
  }
  {
    if (!(s = SectionReader(*file, IndexSection::kForwardIndexFull, &reader))
             .ok())
      return s;
    Result<ForwardIndex> part = ForwardIndex::Deserialize(&*reader);
    if (!part.ok()) return part.status();
    engine.forward_full_ = std::move(part.value());
  }
  {
    if (!(s = SectionReader(*file, IndexSection::kForwardIndexCompressed,
                            &reader))
             .ok())
      return s;
    Result<ForwardIndex> part = ForwardIndex::Deserialize(&*reader);
    if (!part.ok()) return part.status();
    engine.forward_compressed_ = std::move(part.value());
  }
  {
    if (!(s = SectionReader(*file, IndexSection::kPhraseListFile, &reader))
             .ok())
      return s;
    Result<PhraseListFile> part = PhraseListFile::Deserialize(&*reader);
    if (!part.ok()) return part.status();
    engine.phrase_file_ = std::move(part.value());
  }
  {
    if (!(s = SectionReader(*file, IndexSection::kWordScoreLists, &reader))
             .ok())
      return s;
    WordScoreLists::SerializedLayout local;
    Result<WordScoreLists> part =
        WordScoreLists::Deserialize(&*reader, &local);
    if (!part.ok()) return part.status();
    engine.word_lists_ =
        std::make_unique<WordScoreLists>(std::move(part.value()));
    // Rebase the captured entry runs from section-local to absolute file
    // offsets: these are the byte ranges the measured disk tier serves.
    const uint64_t base = file->section_offset(IndexSection::kWordScoreLists);
    for (const auto& [term, run] : local.entry_runs) {
      engine.mapped_layout_.entry_runs[term] = {base + run.first, run.second};
    }
  }
  engine.mapped_layout_.phrase_slots_offset =
      file->section_offset(IndexSection::kPhraseListFile) +
      PhraseListFile::kSerializedSlotsOffset;
  engine.index_file_ = std::move(file);
  engine.smj_fraction_ = options.default_smj_fraction;
  return engine;
}

Status MiningEngine::SaveToDirectory(const std::string& dir) const {
  return SaveToFile(dir + "/" + kIndexFileName);
}

Result<MiningEngine> MiningEngine::LoadFromDirectory(const std::string& dir,
                                                     Options options) {
  return LoadFromFile(dir + "/" + kIndexFileName, options);
}

Result<Query> MiningEngine::ParseQuery(std::string_view text,
                                       QueryOperator op) const {
  // Shared against ingest-time interning of unseen terms.
  std::shared_lock vocab_lock(sync_->vocab_mu);
  return Query::Parse(text, op, corpus_.vocab());
}

const PhrasePostingIndex& MiningEngine::postings() {
  std::shared_lock lists_lock(sync_->lists_mu);
  return PostingsLocked();
}

const PhrasePostingIndex& MiningEngine::PostingsLocked() {
  std::scoped_lock lock(sync_->postings_mu);
  if (postings_ == nullptr) {
    postings_ = std::make_unique<PhrasePostingIndex>(
        PhrasePostingIndex::Build(forward_full_, dict_));
  }
  return *postings_;
}

void MiningEngine::EnsureWordLists(std::span<const TermId> terms) {
  // Retried when a rebuild swaps the base structures mid-build: lists
  // built from a previous generation must not be merged into the new one.
  for (;;) {
    uint64_t generation;
    std::vector<TermId> missing;
    {
      std::shared_lock lock(sync_->lists_mu);
      generation = generation_;
      for (TermId t : terms) {
        if (!word_lists_->Has(t)) missing.push_back(t);
      }
    }
    if (missing.empty()) return;
    // Build under the shared lock so concurrent mines keep running but a
    // rebuild cannot swap the source indexes away mid-build; two threads
    // racing on the same term both build it, and Merge keeps the first
    // copy (lists for a term are identical by construction).
    WordScoreLists built;
    {
      std::shared_lock lock(sync_->lists_mu);
      if (generation_ != generation) continue;
      built = WordScoreLists::Build(inverted_, forward_full_, dict_, missing);
    }
    {
      std::unique_lock lock(sync_->lists_mu);
      if (generation_ != generation) continue;
      const std::size_t before = word_lists_->num_terms();
      word_lists_->Merge(std::move(built));
      if (word_lists_->num_terms() != before) InvalidateDerivedLists();
      return;
    }
  }
}

void MiningEngine::EnsureWordListsFor(std::span<const Query> queries) {
  std::vector<TermId> terms;
  for (const Query& q : queries) {
    terms.insert(terms.end(), q.terms.begin(), q.terms.end());
  }
  EnsureWordLists(terms);
}

void MiningEngine::EnsureIdOrderedLists(std::span<const TermId> terms) {
  EnsureWordLists(terms);
  {
    // Fast path: after the first build the cache usually exists, and the
    // sharded scatter/fill rounds call this per shard per query -- an
    // unconditional exclusive lock here would serialize them against
    // every concurrent mine holding the shared lock.
    std::shared_lock lock(sync_->lists_mu);
    if (id_lists_ != nullptr) return;
  }
  std::unique_lock lock(sync_->lists_mu);
  if (id_lists_ == nullptr) {
    id_lists_ = std::make_unique<WordIdOrderedLists>(
        WordIdOrderedLists::Build(*word_lists_, smj_fraction_));
  }
}

void MiningEngine::InvalidateDerivedLists() {
  id_lists_.reset();
  disk_lists_.reset();
}

DiskResidentLists& MiningEngine::EnsureDiskTierLocked() {
  if (disk_lists_ == nullptr) {
    // Loaded engines back the tier with the mapped index file: reads
    // fault the structures' real bytes and the stats are measured.
    // Built-in-memory engines fall back to the modeled SimulatedDisk.
    std::unique_ptr<DiskBackend> device;
    if (index_file_ != nullptr) {
      device = std::make_unique<MappedDisk>(index_file_.get());
    }
    disk_lists_ = std::make_unique<DiskResidentLists>(
        *word_lists_, phrase_file_, inverted_,
        DiskTierOptions{options_.disk, options_.disk_resident_budget,
                        term_popularity_},
        std::move(device), mapped_layout_);
  }
  return *disk_lists_;
}

void MiningEngine::SetSmjFraction(double fraction) {
  std::unique_lock lock(sync_->lists_mu);
  smj_fraction_ = fraction;
  id_lists_.reset();
}

void MiningEngine::SetDiskResidentBudget(uint64_t budget_bytes) {
  std::unique_lock lock(sync_->lists_mu);
  options_.disk_resident_budget = budget_bytes;
  disk_lists_.reset();  // next kNraDisk mine re-places under the new budget
}

void MiningEngine::SetTermPopularity(
    std::shared_ptr<const TermPopularity> observed) {
  // Exclusive structure lock: in-flight mines hold it shared for their
  // whole run, so the install (and the tier teardown below) can never
  // pull a DiskResidentLists out from under a running query -- the next
  // kNraDisk mine lazily re-places under the new hotness order.
  std::unique_lock lock(sync_->lists_mu);
  term_popularity_ = std::move(observed);
  ++popularity_version_;
  disk_lists_.reset();
}

std::shared_ptr<const std::unordered_set<TermId>>
MiningEngine::ResidentSetLocked() const {
  // Key fields are stable under the caller's shared structure lock
  // (generation_ writers hold lists_mu exclusively; word-list merges and
  // budget changes do too); resident_mu only serializes memo updates
  // between concurrent planners.
  const uint64_t budget = options_.disk_resident_budget;
  const std::size_t terms = word_lists_->num_terms();
  std::scoped_lock memo_lock(sync_->resident_mu);
  if (resident_memo_ == nullptr || resident_memo_generation_ != generation_ ||
      resident_memo_terms_ != terms || resident_memo_budget_ != budget ||
      resident_memo_popularity_ != popularity_version_) {
    resident_memo_ = std::make_shared<const std::unordered_set<TermId>>(
        DiskResidentLists::ResidentSet(*word_lists_, inverted_, budget,
                                       term_popularity_.get()));
    resident_memo_generation_ = generation_;
    resident_memo_terms_ = terms;
    resident_memo_budget_ = budget;
    resident_memo_popularity_ = popularity_version_;
  }
  return resident_memo_;
}

MineResult MiningEngine::Mine(const Query& query, Algorithm algorithm,
                              const MineOptions& options) {
  const bool needs_lists = algorithm == Algorithm::kNra ||
                           algorithm == Algorithm::kNraDisk ||
                           algorithm == Algorithm::kSmj;
  // Acquire the shared structure lock for the whole mine, (re)building the
  // inputs the algorithm needs first. The loop restarts when a concurrent
  // rebuild swaps the structures between the build step and the lock.
  std::shared_lock lock(sync_->lists_mu, std::defer_lock);
  for (;;) {
    if (needs_lists) EnsureWordLists(query.terms);
    lock.lock();
    if (needs_lists) {
      bool have_all = true;
      for (TermId t : query.terms) {
        if (!word_lists_->Has(t)) {
          have_all = false;
          break;
        }
      }
      if (!have_all) {
        lock.unlock();
        continue;
      }
      if (algorithm == Algorithm::kSmj && id_lists_ == nullptr) {
        lock.unlock();
        {
          std::unique_lock build_lock(sync_->lists_mu);
          if (id_lists_ == nullptr) {
            id_lists_ = std::make_unique<WordIdOrderedLists>(
                WordIdOrderedLists::Build(*word_lists_, smj_fraction_));
          }
        }
        continue;  // Revalidate everything with the shared lock back.
      }
    }
    break;
  }

  // Fetched under the shared lock, so the overlay is consistent with the
  // structures this mine reads (a rebuild swap cannot interleave). When
  // the caller did not bring its own overlay, pending updates are applied
  // automatically.
  const EpochDelta snap = delta_snapshot();
  MineOptions effective = options;
  const bool caller_delta = options.delta != nullptr;
  if (!caller_delta && snap.delta != nullptr &&
      snap.delta->pending_updates() > 0) {
    effective.delta = snap.delta.get();
  }

  MineResult result;
  switch (algorithm) {
    case Algorithm::kExact: {
      std::scoped_lock miner_lock(sync_->exact_mu);
      if (exact_ == nullptr) {
        exact_ = std::make_unique<ExactMiner>(inverted_, forward_full_, dict_);
      }
      result = exact_->Mine(query, effective);
      break;
    }
    case Algorithm::kGm: {
      std::scoped_lock miner_lock(sync_->gm_mu);
      if (gm_ == nullptr) {
        gm_ = std::make_unique<GmMiner>(inverted_, forward_compressed_, dict_);
      }
      result = gm_->Mine(query, effective);
      break;
    }
    case Algorithm::kSimitsis: {
      const PhrasePostingIndex& phrase_postings = PostingsLocked();
      std::scoped_lock miner_lock(sync_->simitsis_mu);
      if (simitsis_ == nullptr) {
        simitsis_ = std::make_unique<SimitsisMiner>(inverted_, phrase_postings,
                                                    dict_, corpus_.size());
      }
      result = simitsis_->Mine(query, effective);
      break;
    }
    case Algorithm::kNra: {
      NraMiner miner(*word_lists_, dict_);
      result = miner.Mine(query, effective);
      break;
    }
    case Algorithm::kNraDisk: {
      // disk_mu serializes the whole mine (the device accumulates charged
      // or measured I/O); the shared structure lock keeps a concurrent
      // merge or rebuild from resetting disk_lists_ mid-mine.
      std::scoped_lock disk_lock(sync_->disk_mu);
      NraMiner miner(&EnsureDiskTierLocked(), dict_);
      result = miner.Mine(query, effective);
      break;
    }
    case Algorithm::kSmj: {
      if (effective.delta != nullptr) {
        // Per-query bundle: each stored list overlaid with the phrases
        // whose co-occurrence with the term became positive purely through
        // updates -- without them SMJ could not stay exact (Section 4.5.1).
        WordIdOrderedLists bundle(smj_fraction_);
        for (TermId t : query.terms) {
          const SharedWordList base = id_lists_->shared(t);
          SharedWordList overlaid =
              effective.delta->OverlayIdOrdered(t, base);
          // The overlay returns the base pointer untouched when the term
          // has no delta-only extras; reuse the cached SoA view then
          // instead of re-packing the whole list per query.
          SharedSoAList soa = overlaid == base && base != nullptr
                                  ? id_lists_->shared_soa(t)
                                  : nullptr;
          bundle.Insert(t, std::move(overlaid), std::move(soa));
        }
        SmjMiner miner(bundle, dict_);
        result = miner.Mine(query, effective);
      } else {
        SmjMiner miner(*id_lists_, dict_);
        result = miner.Mine(query, effective);
      }
      if (options_.disk_backed) {
        // Disk-backed SMJ streams each spilled list through the tier as
        // one sequential scan of its construction prefix (Section 4.4.1:
        // SMJ reads whole id-ordered lists): charge (or measure) that
        // I/O on the shared device. Resident lists stay free, mirroring
        // the NRA-disk protocol, and the cold-cache-per-query rule of
        // the tier applies here too.
        std::scoped_lock disk_lock(sync_->disk_mu);
        DiskResidentLists& tier = EnsureDiskTierLocked();
        tier.device().Reset();  // Cold cache per query.
        tier.BeginQuery(effective.cancel);
        std::unordered_set<TermId> charged;
        for (TermId t : query.terms) {
          if (!charged.insert(t).second) continue;
          tier.ChargeListScan(
              t, word_lists_->Partial(t, smj_fraction_).size());
        }
        const DiskStats& stats = tier.device().stats();
        result.disk_ms = stats.cost_ms;
        result.disk_io.blocks_read = stats.BlocksRead();
        result.disk_io.seeks = stats.Seeks();
        result.disk_io.bytes = stats.bytes_read;
        if (result.status.ok() && !tier.last_error().ok()) {
          result.status = tier.last_error();
        }
      }
      break;
    }
  }
  // The count-based miners have no internal phases to trace; synthesize
  // their one-span story from the result accounting so a traced request
  // always comes back with a tree (the list miners attach richer ones).
  if (effective.trace && result.trace == nullptr) {
    result.trace = std::make_shared<TraceSpan>();
    result.trace->name = std::string("mine:") + AlgorithmName(algorithm);
    result.trace->wall_ms = result.compute_ms;
    AddCounter(result.trace.get(), "entries_read",
               static_cast<double>(result.entries_read));
    AddCounter(result.trace.get(), "subcollection",
               static_cast<double>(result.subcollection_size));
  }
  // Stamp the epoch of the overlay actually applied: the engine's own
  // snapshot on the auto path. With a caller-supplied delta the engine
  // cannot know its epoch -- the label stays 0 and the caller (e.g.
  // PhraseService) stamps the epoch of the snapshot it passed in.
  if (!caller_delta) result.epoch = snap.epoch;
  result.guarantee = GuaranteeFor(algorithm, effective.delta != nullptr,
                                  smj_fraction_ >= 1.0);
  return result;
}

// --- Live updates ------------------------------------------------------------

uint64_t MiningEngine::NextStructureVersion() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void MiningEngine::SetUpdateListener(UpdateListener listener) {
  std::scoped_lock update_lock(sync_->update_mu);
  update_listener_ = std::move(listener);
}

UpdateStats MiningEngine::ApplyUpdate(const UpdateBatch& batch,
                                      UpdateEvent* event) {
  std::scoped_lock update_lock(sync_->update_mu);
  // Copy-on-write: mines keep reading the published overlay while this
  // batch is absorbed into a private successor. All writers of delta_
  // hold update_mu, so reading it here without snapshot_mu is safe.
  // The full copy makes an ingest stream quadratic in overlay size, but
  // the overlay is bounded by rebuild_threshold (a fraction of the
  // corpus); a chained-delta representation is the upgrade path if
  // ingest-heavy workloads ever make this the bottleneck.
  auto next = delta_ != nullptr ? std::make_unique<DeltaIndex>(*delta_)
                                : std::make_unique<DeltaIndex>(dict_);

  // Touched-phrase collection is only paid when someone consumes it.
  const bool want_event = event != nullptr || update_listener_ != nullptr;
  std::vector<PhraseId> touched;
  std::vector<PhraseId>* touched_out = want_event ? &touched : nullptr;

  UpdateStats stats;
  for (const UpdateDoc& doc : batch.inserts) {
    Document d;
    d.tokens.reserve(doc.tokens.size());
    d.facets.reserve(doc.facets.size());
    {
      // Unseen terms are interned so the next rebuild picks them up; they
      // cannot affect any base-dictionary phrase until then.
      std::unique_lock vocab_lock(sync_->vocab_mu);
      for (const std::string& t : doc.tokens) {
        d.tokens.push_back(corpus_.vocab().Intern(t));
      }
      for (const std::string& f : doc.facets) {
        d.facets.push_back(corpus_.vocab().Intern(f));
      }
    }
    next->AddDocument(d.tokens, d.facets, touched_out);
    pending_inserts_.push_back(std::move(d));
    insert_deleted_.push_back(0);
    ++stats.batch_inserts;
  }
  for (DocId id : batch.deletes) {
    const Document* doc = LiveDoc(id);
    if (doc == nullptr) continue;
    next->RemoveDocument(doc->tokens, doc->facets, touched_out);
    if (id < corpus_.size()) {
      if (base_deleted_.size() < corpus_.size()) {
        base_deleted_.resize(corpus_.size(), 0);
      }
      base_deleted_[id] = 1;
    } else {
      insert_deleted_[id - corpus_.size()] = 1;
    }
    ++num_deleted_;
    ++stats.batch_deletes;
  }

  stats.pending_updates = next->pending_updates();
  stats.live_docs = corpus_.size() + pending_inserts_.size() - num_deleted_;
  stats.delta_fraction =
      stats.live_docs == 0
          ? (stats.pending_updates > 0 ? 1.0 : 0.0)
          : static_cast<double>(stats.pending_updates) /
                static_cast<double>(stats.live_docs);
  stats.rebuild_recommended = options_.rebuild_threshold > 0 &&
                              stats.delta_fraction >= options_.rebuild_threshold;
  {
    std::scoped_lock snapshot_lock(sync_->snapshot_mu);
    delta_ = std::move(next);
    stats.epoch = ++epoch_;
    last_update_stats_ = stats;
  }
  if (want_event) {
    // generation_/structure_version_/delta_ writers all hold update_mu
    // (which we hold), so reading them here without snapshot_mu is safe.
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    UpdateEvent ev;
    ev.epoch = stats.epoch;
    ev.generation = generation_;
    ev.structure_version = structure_version_;
    ev.delta = delta_;
    ev.touched = std::move(touched);
    if (update_listener_ != nullptr) update_listener_(ev);
    if (event != nullptr) *event = std::move(ev);
  }
  return stats;
}

void MiningEngine::InternTerms(std::span<const std::string> terms) {
  std::unique_lock vocab_lock(sync_->vocab_mu);
  for (const std::string& t : terms) corpus_.vocab().Intern(t);
}

void MiningEngine::AdvanceEpoch(uint64_t min_epoch) {
  std::scoped_lock snapshot_lock(sync_->snapshot_mu);
  epoch_ = std::max(epoch_, min_epoch);
}

Corpus MiningEngine::CloneBaseCorpus() const {
  std::shared_lock lists_lock(sync_->lists_mu);
  std::shared_lock vocab_lock(sync_->vocab_mu);
  Corpus copy;
  copy.vocab() = corpus_.vocab();
  for (DocId d = 0; d < corpus_.size(); ++d) {
    copy.AddDocument(corpus_.doc(d));
  }
  return copy;
}

const Document* MiningEngine::LiveDoc(DocId id) const {
  if (id < corpus_.size()) {
    if (id < base_deleted_.size() && base_deleted_[id]) return nullptr;
    return &corpus_.doc(id);
  }
  const std::size_t i = id - corpus_.size();
  if (i >= pending_inserts_.size() || insert_deleted_[i]) return nullptr;
  return &pending_inserts_[i];
}

void MiningEngine::Rebuild() {
  // Holding update_mu for the whole rebuild keeps the live-document set
  // frozen: ingest stalls until the swap, mining does not. Known
  // limitation: the final exclusive lists_mu acquisition competes with a
  // stream of shared-holding mines, and a reader-preferring rwlock
  // implementation can delay the swap (and the ingest stream queued on
  // update_mu behind it) while query pressure stays high; a
  // rebuild-pending gate that pauses new mine admissions is the upgrade
  // path if ingest latency under saturation ever matters.
  std::scoped_lock update_lock(sync_->update_mu);

  // Materialize the live document set. The vocabulary is carried over so
  // term ids (and therefore parsed queries) survive the rebuild.
  Corpus updated;
  {
    std::shared_lock vocab_lock(sync_->vocab_mu);
    updated.vocab() = corpus_.vocab();
  }
  for (DocId d = 0; d < corpus_.size(); ++d) {
    if (d < base_deleted_.size() && base_deleted_[d]) continue;
    updated.AddDocument(corpus_.doc(d));
  }
  for (std::size_t i = 0; i < pending_inserts_.size(); ++i) {
    if (insert_deleted_[i]) continue;
    updated.AddDocument(pending_inserts_[i]);
  }

  std::vector<TermId> warm_terms;
  double fraction;
  {
    std::shared_lock lists_lock(sync_->lists_mu);
    warm_terms = word_lists_->Terms();
    fraction = smj_fraction_;
  }

  // The expensive part runs against a private engine; readers are
  // untouched until the swap below. The persist path is cleared for the
  // intermediate Build -- the re-persist happens once, below, after the
  // warm lists are in (so the persisted file backs them on a reload).
  Options build_options = options_;
  build_options.persist_path.clear();
  MiningEngine fresh = Build(std::move(updated), build_options);
  fresh.EnsureWordLists(warm_terms);

  std::unique_lock lists_lock(sync_->lists_mu);
  std::unique_lock vocab_lock(sync_->vocab_mu);
  corpus_ = std::move(fresh.corpus_);
  dict_ = std::move(fresh.dict_);
  inverted_ = std::move(fresh.inverted_);
  forward_full_ = std::move(fresh.forward_full_);
  forward_compressed_ = std::move(fresh.forward_compressed_);
  phrase_file_ = std::move(fresh.phrase_file_);
  word_lists_ = std::move(fresh.word_lists_);
  smj_fraction_ = fraction;
  id_lists_.reset();
  disk_lists_.reset();
  postings_.reset();
  exact_.reset();
  gm_.reset();
  simitsis_.reset();
  // Any open mapping describes the pre-rebuild structures; drop it (the
  // disk tier falls back to unbacked ranges until a reload).
  index_file_.reset();
  mapped_layout_ = MappedListLayout{};
  pending_inserts_.clear();
  insert_deleted_.clear();
  base_deleted_.clear();
  num_deleted_ = 0;
  uint64_t rebuilt_epoch;
  {
    std::scoped_lock snapshot_lock(sync_->snapshot_mu);
    delta_.reset();
    ++epoch_;
    ++generation_;
    // Adopt the fresh build's process-unique structure id: PhraseIds were
    // reassigned, so version-keyed caches must miss from now on.
    structure_version_ = fresh.structure_version_;
    last_update_stats_ = UpdateStats{};
    last_update_stats_.epoch = epoch_;
    last_update_stats_.live_docs = corpus_.size();
    rebuilt_epoch = epoch_;
  }
  lists_lock.unlock();
  vocab_lock.unlock();
  if (update_listener_ != nullptr) {
    UpdateEvent ev;
    ev.epoch = rebuilt_epoch;
    ev.generation = generation_;
    ev.structure_version = structure_version_;
    ev.rebuilt = true;
    update_listener_(ev);
  }
  // Re-persist the rebuilt engine (update_mu is still held, so no new
  // batch can interleave between the swap and the file write).
  if (!options_.persist_path.empty()) {
    persist_status_ = SaveToFile(options_.persist_path);
  }
}

uint64_t MiningEngine::epoch() const {
  std::scoped_lock lock(sync_->snapshot_mu);
  return epoch_;
}

uint64_t MiningEngine::list_generation() const {
  std::scoped_lock lock(sync_->snapshot_mu);
  return generation_;
}

uint64_t MiningEngine::structure_version() const {
  std::scoped_lock lock(sync_->snapshot_mu);
  return structure_version_;
}

EpochDelta MiningEngine::delta_snapshot() const {
  std::scoped_lock lock(sync_->snapshot_mu);
  return EpochDelta{epoch_, generation_, delta_};
}

UpdateStats MiningEngine::update_stats() const {
  std::scoped_lock lock(sync_->snapshot_mu);
  return last_update_stats_;
}

}  // namespace phrasemine
