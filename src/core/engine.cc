#include "core/engine.h"

#include <mutex>
#include <shared_mutex>
#include <utility>

#include "common/check.h"

namespace phrasemine {

namespace {

/// Snapshot format version; bump on any layout change.
constexpr uint32_t kSnapshotMagic = 0x504D534E;  // "PMSN"
constexpr uint32_t kSnapshotVersion = 1;

}  // namespace

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kExact:
      return "Exact";
    case Algorithm::kGm:
      return "GM";
    case Algorithm::kSimitsis:
      return "Simitsis";
    case Algorithm::kNra:
      return "NRA";
    case Algorithm::kNraDisk:
      return "NRA-disk";
    case Algorithm::kSmj:
      return "SMJ";
  }
  return "?";
}

MiningEngine MiningEngine::Build(Corpus corpus, Options options) {
  MiningEngine engine;
  engine.options_ = options;
  engine.corpus_ = std::move(corpus);
  PhraseExtractor extractor(options.extractor);
  engine.dict_ = extractor.Extract(engine.corpus_);
  engine.inverted_ = InvertedIndex::Build(engine.corpus_);
  engine.forward_full_ =
      ForwardIndex::Build(engine.corpus_, engine.dict_, ForwardStorage::kFull);
  engine.forward_compressed_ = ForwardIndex::Build(
      engine.corpus_, engine.dict_, ForwardStorage::kPrefixCompressed);
  engine.phrase_file_ =
      PhraseListFile::Build(engine.dict_, engine.corpus_.vocab());
  engine.word_lists_ = std::make_unique<WordScoreLists>();
  engine.smj_fraction_ = options.default_smj_fraction;
  return engine;
}

Status MiningEngine::SaveToDirectory(const std::string& dir) const {
  std::shared_lock lists_lock(sync_->lists_mu);
  BinaryWriter writer;
  writer.PutU32(kSnapshotMagic);
  writer.PutU32(kSnapshotVersion);
  corpus_.Serialize(&writer);
  dict_.Serialize(&writer);
  inverted_.Serialize(&writer);
  forward_full_.Serialize(&writer);
  forward_compressed_.Serialize(&writer);
  phrase_file_.Serialize(&writer);
  word_lists_->Serialize(&writer);
  return writer.WriteToFile(dir + "/engine.pmsnap");
}

Result<MiningEngine> MiningEngine::LoadFromDirectory(const std::string& dir,
                                                     Options options) {
  Result<BinaryReader> reader_or =
      BinaryReader::FromFile(dir + "/engine.pmsnap");
  if (!reader_or.ok()) return reader_or.status();
  BinaryReader& reader = reader_or.value();

  uint32_t magic = 0;
  uint32_t version = 0;
  Status s = reader.GetU32(&magic);
  if (!s.ok()) return s;
  s = reader.GetU32(&version);
  if (!s.ok()) return s;
  if (magic != kSnapshotMagic) {
    return Status::Corruption("not a phrasemine snapshot");
  }
  if (version != kSnapshotVersion) {
    return Status::Corruption("unsupported snapshot version");
  }

  MiningEngine engine;
  engine.options_ = options;
  {
    Result<Corpus> part = Corpus::Deserialize(&reader);
    if (!part.ok()) return part.status();
    engine.corpus_ = std::move(part.value());
  }
  {
    Result<PhraseDictionary> part = PhraseDictionary::Deserialize(&reader);
    if (!part.ok()) return part.status();
    engine.dict_ = std::move(part.value());
  }
  {
    Result<InvertedIndex> part = InvertedIndex::Deserialize(&reader);
    if (!part.ok()) return part.status();
    engine.inverted_ = std::move(part.value());
  }
  {
    Result<ForwardIndex> part = ForwardIndex::Deserialize(&reader);
    if (!part.ok()) return part.status();
    engine.forward_full_ = std::move(part.value());
  }
  {
    Result<ForwardIndex> part = ForwardIndex::Deserialize(&reader);
    if (!part.ok()) return part.status();
    engine.forward_compressed_ = std::move(part.value());
  }
  {
    Result<PhraseListFile> part = PhraseListFile::Deserialize(&reader);
    if (!part.ok()) return part.status();
    engine.phrase_file_ = std::move(part.value());
  }
  {
    Result<WordScoreLists> part = WordScoreLists::Deserialize(&reader);
    if (!part.ok()) return part.status();
    engine.word_lists_ =
        std::make_unique<WordScoreLists>(std::move(part.value()));
  }
  engine.smj_fraction_ = options.default_smj_fraction;
  return engine;
}

Result<Query> MiningEngine::ParseQuery(std::string_view text,
                                       QueryOperator op) const {
  return Query::Parse(text, op, corpus_.vocab());
}

const PhrasePostingIndex& MiningEngine::postings() {
  std::scoped_lock lock(sync_->postings_mu);
  if (postings_ == nullptr) {
    postings_ = std::make_unique<PhrasePostingIndex>(
        PhrasePostingIndex::Build(forward_full_, dict_));
  }
  return *postings_;
}

void MiningEngine::EnsureWordLists(std::span<const TermId> terms) {
  std::vector<TermId> missing;
  {
    std::shared_lock lock(sync_->lists_mu);
    for (TermId t : terms) {
      if (!word_lists_->Has(t)) missing.push_back(t);
    }
  }
  if (missing.empty()) return;
  // Build outside the lock so concurrent mines keep running; two threads
  // racing on the same term both build it, and Merge keeps the first copy
  // (lists for a term are identical by construction).
  WordScoreLists built =
      WordScoreLists::Build(inverted_, forward_full_, dict_, missing);
  std::unique_lock lock(sync_->lists_mu);
  const std::size_t before = word_lists_->num_terms();
  word_lists_->Merge(std::move(built));
  if (word_lists_->num_terms() != before) InvalidateDerivedLists();
}

void MiningEngine::EnsureWordListsFor(std::span<const Query> queries) {
  std::vector<TermId> terms;
  for (const Query& q : queries) {
    terms.insert(terms.end(), q.terms.begin(), q.terms.end());
  }
  EnsureWordLists(terms);
}

void MiningEngine::InvalidateDerivedLists() {
  id_lists_.reset();
  disk_lists_.reset();
}

void MiningEngine::SetSmjFraction(double fraction) {
  std::unique_lock lock(sync_->lists_mu);
  smj_fraction_ = fraction;
  id_lists_.reset();
}

MineResult MiningEngine::Mine(const Query& query, Algorithm algorithm,
                              const MineOptions& options) {
  switch (algorithm) {
    case Algorithm::kExact: {
      std::scoped_lock lock(sync_->exact_mu);
      if (exact_ == nullptr) {
        exact_ = std::make_unique<ExactMiner>(inverted_, forward_full_, dict_);
      }
      return exact_->Mine(query, options);
    }
    case Algorithm::kGm: {
      std::scoped_lock lock(sync_->gm_mu);
      if (gm_ == nullptr) {
        gm_ = std::make_unique<GmMiner>(inverted_, forward_compressed_, dict_);
      }
      return gm_->Mine(query, options);
    }
    case Algorithm::kSimitsis: {
      const PhrasePostingIndex& phrase_postings = postings();
      std::scoped_lock lock(sync_->simitsis_mu);
      if (simitsis_ == nullptr) {
        simitsis_ = std::make_unique<SimitsisMiner>(inverted_, phrase_postings,
                                                    dict_, corpus_.size());
      }
      return simitsis_->Mine(query, options);
    }
    case Algorithm::kNra: {
      EnsureWordLists(query.terms);
      std::shared_lock lock(sync_->lists_mu);
      NraMiner miner(*word_lists_, dict_);
      return miner.Mine(query, options);
    }
    case Algorithm::kNraDisk: {
      EnsureWordLists(query.terms);
      // disk_mu serializes the whole mine (the SimulatedDisk accumulates
      // charged I/O); the shared lists lock keeps a concurrent merge from
      // resetting disk_lists_ mid-mine. Only this path and the exclusive
      // InvalidateDerivedLists touch disk_lists_, so writing it under the
      // shared lock plus disk_mu is race-free.
      std::scoped_lock disk_lock(sync_->disk_mu);
      std::shared_lock lock(sync_->lists_mu);
      if (disk_lists_ == nullptr) {
        disk_lists_ = std::make_unique<DiskResidentLists>(
            *word_lists_, phrase_file_, options_.disk);
      }
      NraMiner miner(disk_lists_.get(), dict_);
      return miner.Mine(query, options);
    }
    case Algorithm::kSmj: {
      EnsureWordLists(query.terms);
      std::shared_lock lock(sync_->lists_mu);
      while (id_lists_ == nullptr) {
        lock.unlock();
        {
          std::unique_lock build_lock(sync_->lists_mu);
          if (id_lists_ == nullptr) {
            id_lists_ = std::make_unique<WordIdOrderedLists>(
                WordIdOrderedLists::Build(*word_lists_, smj_fraction_));
          }
        }
        // Re-acquire shared and re-check: a concurrent merge may have
        // invalidated the freshly built lists in the gap.
        lock.lock();
      }
      SmjMiner miner(*id_lists_, dict_);
      return miner.Mine(query, options);
    }
  }
  PM_CHECK_MSG(false, "unknown algorithm");
  return MineResult{};
}

}  // namespace phrasemine
