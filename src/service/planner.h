#ifndef PHRASEMINE_SERVICE_PLANNER_H_
#define PHRASEMINE_SERVICE_PLANNER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/miner.h"
#include "core/query.h"

namespace phrasemine {

/// Per-term statistics the planner based its decision on.
struct TermPlanStats {
  TermId term = 0;
  /// Document frequency |docs(q)| from the inverted index.
  uint32_t df = 0;
  /// True when the term's score-ordered word list already exists (engine
  /// lazy index or service cache), i.e. no build cost applies.
  bool list_built = false;
  /// Actual list length when built, otherwise the planner's estimate.
  std::size_t list_length = 0;
  /// Disk-backed engines only: true when this term's list is (predicted)
  /// spilled past the resident budget, i.e. reads charge device I/O.
  /// Always false when PlannerInputs::disk_backed is false.
  bool on_disk = false;
  /// Device blocks the full spilled list occupies (packed 12-byte
  /// entries over the tier's block size); 0 when resident or in-memory.
  uint64_t disk_blocks = 0;
  /// Observed queries naming this term, from the engine's installed
  /// popularity snapshot (MiningEngine::SetTermPopularity); 0 when no
  /// feedback is installed or the term was never queried. This is the
  /// prior behind the on_disk prediction above -- the spill policy pins
  /// by observed count once a snapshot is installed -- surfaced here so
  /// plan audits show *why* a hot term stopped charging device I/O.
  uint64_t observed_queries = 0;
};

/// The planner's explainable output: the chosen algorithm plus everything
/// needed to audit the choice -- per-term stats, the sub-collection
/// estimate, the modeled cost of every candidate, and a one-line reason.
struct PlanDecision {
  Algorithm algorithm = Algorithm::kGm;
  QueryOperator op = QueryOperator::kAnd;
  std::size_t k = 0;
  /// Estimated |D'| under the query operator (independence assumption for
  /// AND, truncated sum for OR).
  std::size_t estimated_subcollection = 0;
  std::vector<TermPlanStats> terms;
  /// Modeled cost (abstract "entries touched" units) per candidate
  /// algorithm, in the order they were evaluated.
  std::vector<std::pair<Algorithm, double>> estimated_costs;
  /// Human-readable justification, e.g. "cost: NRA cheapest (1.2e4)".
  std::string reason;

  /// Renders a compact single-line explanation for logs.
  std::string ToString() const;
};

/// Cost-model knobs. The absolute numbers only matter relative to each
/// other: the model ranks algorithms, it does not predict wall-clock time.
struct PlannerOptions {
  /// When false the planner never picks an approximate list-based method
  /// (NRA/SMJ); results then always match ExactMiner.
  bool allow_approximate = true;
  /// Sub-collections at or below this size go to Exact: scanning a handful
  /// of forward lists beats any index machinery.
  std::size_t exact_subcollection_threshold = 16;
  /// Expected fraction of the word lists NRA traverses before its early
  /// termination fires, at k = 1 (Figure 11 shape).
  double nra_traversal_fraction = 0.20;
  /// Traversal growth per unit of k: deeper result lists delay NRA's
  /// stopping condition.
  double nra_k_penalty = 0.02;
  /// Per-entry cost multipliers: NRA maintains a candidate hash and bounds
  /// per entry, SMJ only merges, GM scans forward lists linearly.
  double nra_entry_cost = 2.0;
  double smj_entry_cost = 1.0;
  double gm_entry_cost = 1.0;
  /// Exact uses the uncompressed forward index and recomputes supports.
  double exact_entry_cost = 1.2;
  /// Fixed per-query overhead (candidate-set setup for NRA, k-way merge
  /// setup for SMJ) that steers short-list queries toward SMJ, matching
  /// the paper's guidance (SMJ for short lists, NRA for long ones).
  double nra_fixed_cost = 500.0;
  double smj_fixed_cost = 50.0;
  /// OR queries expand candidate bookkeeping in the list-based methods.
  double or_overhead = 1.3;
  /// Fraction of a missing word list's build cost charged to the triggering
  /// query; the rest is treated as amortized over future queries that the
  /// cache will serve.
  double build_amortization = 0.25;
  /// Disk-tier charges (disk-backed engines only), in the same abstract
  /// entry units as the costs above, per device block. Sequential models
  /// a streamed list (SMJ's k-way merge reads each spilled list front to
  /// back; the device lookahead keeps the interleave cheap); random
  /// models NRA's round-robin head, which jumps between on-device list
  /// files every read once more than one list is spilled. Defaults keep
  /// the 10:1 seek:transfer ratio of the Section 5.5 device (1 ms vs
  /// 10 ms) and make one block roughly as expensive as merging a few
  /// hundred in-memory entries.
  double disk_sequential_block_cost = 200.0;
  double disk_random_block_cost = 2000.0;
};

/// Inputs of the pure cost model; CostPlanner::Plan gathers them from a
/// MiningEngine, tests can synthesize them directly.
struct PlannerInputs {
  std::size_t num_docs = 0;
  /// Average number of distinct phrases per document (forward-list length).
  double avg_doc_phrases = 0.0;
  QueryOperator op = QueryOperator::kAnd;
  std::size_t k = 0;
  /// True when the engine carries an unrebuilt update overlay. The
  /// count-based methods (Exact/GM/Simitsis) mine the base corpus and
  /// would serve stale answers, so the planner then restricts its choice
  /// to the delta-correctable list methods (NRA/SMJ) -- unless
  /// allow_approximate is off, which is an explicit operator promise of
  /// base-corpus exactness.
  bool updates_pending = false;
  /// True when the engine's word lists live on a simulated disk tier
  /// (MiningEngineOptions::disk_backed): in-memory NRA is not available,
  /// so the NRA candidate is costed and emitted as Algorithm::kNraDisk
  /// with per-block I/O terms for every spilled list, and SMJ is charged
  /// a sequential stream-in for its spilled inputs.
  bool disk_backed = false;
  std::vector<TermPlanStats> terms;
};

/// Selects the mining algorithm per query from per-term index statistics,
/// so callers of PhraseService never have to know the paper's
/// NRA-vs-SMJ-vs-forward-scan trade-offs. Decision procedure:
///   1. An AND query with a zero-df term has an empty sub-collection:
///      GM terminates immediately, pick it (SMJ when updates are pending,
///      so the emptiness reflects the *live* corpus).
///   2. allow_approximate == false: Exact for tiny sub-collections, GM
///      otherwise (both are exact methods; an explicit base-corpus
///      promise, even while updates are pending).
///   3. Sub-collection estimate <= exact_subcollection_threshold and no
///      updates pending: Exact.
///   4. Otherwise: argmin of the modeled cost over {GM, NRA, SMJ}; with
///      updates pending GM is excluded (it would mine the base corpus).
///
/// Disk routing rule: on a disk-backed engine (PlannerInputs::disk_backed,
/// set from MiningEngineOptions::disk_backed) the word lists live on the
/// simulated disk tier, so the in-memory kNra candidate is replaced by
/// kNraDisk -- the honest plan charges the spilled lists' block I/O --
/// and the argmin runs over {GM, NRA-disk, SMJ}. NRA-disk pays
/// traversal-scaled block reads at the random rate when more than one
/// list is spilled (its round-robin head seeks between on-device list
/// files; with a single spilled file the reads stream sequentially);
/// SMJ pays a full sequential stream-in of every spilled list (its
/// id-ordered inputs
/// are rebuilt in RAM in this reproduction, so the charge is model-only
/// and documented in docs/disk_tier.md). Resident (pinned) lists charge
/// nothing, which is how the spill policy's placement steers the
/// decision. kSimitsis is still never chosen -- it exists for the
/// paper's comparison studies and must be forced explicitly.
///
/// Under live updates the per-term and corpus document frequencies are
/// corrected by the engine's delta overlay before costing, so plans do not
/// degrade as the overlay grows between rebuilds (the overlay cannot shift
/// list lengths, which only change at a rebuild).
///
/// Thread-safety: Plan() is const, gathers engine statistics under the
/// engine's shared structure lock (so a concurrent rebuild cannot swap
/// indexes mid-read) and calls the injected list probe; it is safe from
/// any number of service threads concurrently.
class CostPlanner {
 public:
  /// Reports the score-list length for a term when one is already built,
  /// nullopt otherwise. PhraseService injects a probe over its sharded
  /// word-list cache; the default probe reads engine.word_lists(), which
  /// is only safe while no concurrent engine merges run.
  using ListProbe = std::function<std::optional<std::size_t>(TermId)>;

  explicit CostPlanner(const MiningEngine* engine,
                       PlannerOptions options = {}, ListProbe probe = nullptr);

  /// Plans one query. `query` should be canonicalized (sorted unique
  /// terms) so equal term sets produce identical decisions.
  PlanDecision Plan(const Query& query, const MineOptions& options) const;

  /// Same, against a caller-held update snapshot, so one request plans,
  /// mines and cache-keys against a single consistent epoch.
  PlanDecision Plan(const Query& query, const MineOptions& options,
                    const EpochDelta& snap) const;

  /// Gathers this engine's cost-model inputs for one query (per-term
  /// delta-corrected dfs, list availability, corpus scalars) without
  /// deciding anything. The sharded engine collects one of these per
  /// shard (under its fleet lock) and feeds them to PlanAcrossShards.
  PlannerInputs GatherInputs(const Query& query,
                             const MineOptions& options) const;
  PlannerInputs GatherInputs(const Query& query, const MineOptions& options,
                             const EpochDelta& snap) const;

  /// The planner-free gathering primitive: reads `engine`'s statistics
  /// under its shared structure lock against the caller's snapshot.
  /// `avg_doc_phrases` is sum_p df(p) / |D| (callers cache it; it only
  /// changes when the indexes rebuild). A null `probe` reads the
  /// engine's own lazily built word lists (safe: the probe runs under
  /// the structure lock).
  static PlannerInputs GatherInputs(const MiningEngine& engine,
                                    const Query& query,
                                    const MineOptions& options,
                                    const EpochDelta& snap,
                                    double avg_doc_phrases,
                                    const ListProbe& probe = nullptr);

  /// The pure cost model, exposed for decision-table tests.
  static PlanDecision PlanFromInputs(const PlannerInputs& inputs,
                                     const PlannerOptions& options);

  /// Plans one query across a shard fleet: the decision-procedure
  /// short-circuits (empty query, zero global df under AND, approximation
  /// disallowed, tiny sub-collection) run on the *aggregated* inputs --
  /// per-term dfs and doc counts summed over the disjoint partition --
  /// while the cost of each candidate algorithm is the *maximum* of its
  /// per-shard costs: shards mine in parallel, so the modeled latency of
  /// a scatter is its slowest shard (makespan), not the sum.
  static PlanDecision PlanAcrossShards(std::span<const PlannerInputs> shards,
                                       const PlannerOptions& options);

  const PlannerOptions& options() const { return options_; }

 private:
  const MiningEngine* engine_;
  PlannerOptions options_;
  ListProbe probe_;
  /// Precomputed average forward-list length of the corpus.
  double avg_doc_phrases_ = 0.0;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_SERVICE_PLANNER_H_
