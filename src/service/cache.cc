#include "service/cache.h"

#include <algorithm>
#include <cstdio>

namespace phrasemine {

std::string FormatCacheStats(const CacheStats& stats) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "hits=%llu misses=%llu hit_rate=%.1f%% entries=%zu "
                "bytes=%zu/%zu evictions=%llu",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                100.0 * stats.HitRate(), stats.entries, stats.bytes,
                stats.capacity_bytes,
                static_cast<unsigned long long>(stats.evictions));
  return buf;
}

Query CanonicalizeQuery(const Query& query) {
  Query canonical = query;
  std::sort(canonical.terms.begin(), canonical.terms.end());
  canonical.terms.erase(
      std::unique(canonical.terms.begin(), canonical.terms.end()),
      canonical.terms.end());
  return canonical;
}

std::string ResultCacheKey(const Query& canonical_query, Algorithm algorithm,
                           const MineOptions& options, double smj_fraction,
                           uint64_t epoch, std::span<const uint64_t> shard_epochs) {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "g%llu|a%d|o%d|k%zu|f%.17g|s%.17g|b%zu|e%d|m%d|t:",
                static_cast<unsigned long long>(epoch),
                static_cast<int>(algorithm),
                static_cast<int>(canonical_query.op), options.k,
                options.list_fraction, smj_fraction, options.nra_batch_size,
                static_cast<int>(options.or_order),
                static_cast<int>(options.measure));
  std::string key = buf;
  for (TermId t : canonical_query.terms) {
    std::snprintf(buf, sizeof(buf), "%u,", t);
    key += buf;
  }
  if (!shard_epochs.empty()) {
    key += "|v:";
    for (uint64_t e : shard_epochs) {
      std::snprintf(buf, sizeof(buf), "%llu,",
                    static_cast<unsigned long long>(e));
      key += buf;
    }
  }
  return key;
}

}  // namespace phrasemine
