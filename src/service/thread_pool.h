#ifndef PHRASEMINE_SERVICE_THREAD_POOL_H_
#define PHRASEMINE_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace phrasemine {

/// Sizing knobs for ThreadPool.
struct ThreadPoolOptions {
  /// Number of worker threads; clamped to at least 1.
  std::size_t num_threads = 4;
  /// Maximum queued (not yet running) tasks. Submit blocks when the queue
  /// is full, giving natural backpressure; TrySubmit fails instead.
  /// Clamped to at least 1.
  std::size_t queue_capacity = 256;
  /// Registry the pool publishes its counters into (names below, prefixed
  /// with `metric_prefix`). Null: the pool owns a private registry, so
  /// ThreadPoolStats stays per-instance either way -- two pools given the
  /// same shared registry and prefix would merge their counters.
  MetricsRegistry* registry = nullptr;
  /// Metric name prefix, e.g. "pool" -> pool_submitted_total.
  std::string metric_prefix = "pool";
};

/// Counters exposed by ThreadPool::stats -- a point-in-time view over the
/// pool's registry metrics.
struct ThreadPoolStats {
  uint64_t submitted = 0;  ///< Tasks accepted into the queue.
  uint64_t executed = 0;   ///< Tasks that finished running.
  uint64_t rejected = 0;   ///< TrySubmit failures plus post-shutdown submits.
  std::size_t queue_depth = 0;  ///< Currently queued (excludes running).
  /// High-water queue depth, from the depth gauge's max tracking. The
  /// gauge moves on both submit and pop, so the live `queue_depth` above
  /// is always current -- previously depth was only sampled at submit and
  /// never reported.
  std::size_t peak_queue_depth = 0;
};

/// Fixed-size worker pool with a bounded FIFO submission queue, the
/// execution substrate of PhraseService. Tasks are arbitrary
/// std::function<void()>; exceptions must not escape a task (wrap work in
/// a promise, as PhraseService does).
///
/// Shutdown semantics: Shutdown() stops accepting new tasks, lets the
/// workers drain everything already queued, then joins them. The
/// destructor calls Shutdown(). Both are idempotent and safe to call
/// concurrently with submitters.
///
/// Contract for submits racing Shutdown(): every Submit/TrySubmit call
/// returns a definite verdict, decided atomically against the shutdown
/// flag under the queue lock. `true` means the task WILL run (it was
/// queued before the flag was observed, and workers drain the whole queue
/// before exiting); `false` means the task will NEVER run (the caller
/// still owns whatever completion signal it wrapped -- PhraseService, for
/// example, then resolves the future itself with a typed error). There is
/// no third state: a task can neither be dropped after `true` nor run
/// after `false`, so a submitter that resolves its promise on `false` and
/// lets the task resolve it on `true` can never hang a future. A blocking
/// Submit parked on a full queue when Shutdown() fires wakes up and
/// returns false (counted as rejected). thread_pool_test's
/// SubmitShutdownRaceNeverHangs storms this contract.
class ThreadPool {
 public:
  explicit ThreadPool(ThreadPoolOptions options = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task, blocking while the queue is full. Returns false
  /// (dropping the task) only if the pool is shut down.
  bool Submit(std::function<void()> task);

  /// Enqueues a task without blocking. Returns false if the queue is full
  /// or the pool is shut down.
  bool TrySubmit(std::function<void()> task);

  /// Stops intake, drains the queue, joins the workers.
  void Shutdown();

  /// True once Shutdown() has set the intake-stopping flag. Racy by
  /// nature (a concurrent Shutdown may flip it right after the read);
  /// callers use it to pick an error message, never for correctness.
  bool shutting_down() const {
    std::scoped_lock lock(mu_);
    return shutdown_;
  }

  std::size_t num_threads() const { return options_.num_threads; }

  /// Tasks currently queued (excludes tasks being executed).
  std::size_t queue_depth() const;

  /// Point-in-time stats view over the pool's registry handles; lock-free.
  ThreadPoolStats stats() const;

  /// Registry the pool's metrics live in (the caller-provided one, or the
  /// pool's private fallback).
  MetricsRegistry& registry() { return *registry_; }

 private:
  bool Enqueue(std::function<void()> task, bool block);
  void WorkerLoop();

  ThreadPoolOptions options_;

  /// Set iff no registry was injected via options.
  std::unique_ptr<MetricsRegistry> owned_registry_;
  MetricsRegistry* registry_ = nullptr;
  Counter* submitted_ = nullptr;
  Counter* executed_ = nullptr;
  Counter* rejected_ = nullptr;
  Gauge* depth_ = nullptr;

  std::mutex shutdown_mu_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_SERVICE_THREAD_POOL_H_
