#ifndef PHRASEMINE_SERVICE_SERVICE_H_
#define PHRASEMINE_SERVICE_SERVICE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/miner.h"
#include "core/query.h"
#include "index/word_lists.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/cache.h"
#include "service/planner.h"
#include "service/thread_pool.h"
#include "shard/sharded_engine.h"
#include "subscribe/subscription_manager.h"

namespace phrasemine {

/// Admission-control / load-shedding policy for PhraseService::Submit.
/// Disabled by default (max_queue_depth == 0): Submit keeps the legacy
/// behavior of blocking on the pool's bounded queue for backpressure.
struct AdmissionOptions {
  /// Queue-depth bound: a Submit observing at least this many queued (not
  /// yet running) tasks is shed immediately with ResourceExhausted instead
  /// of blocking. 0 disables admission control (including the cost gate).
  std::size_t max_queue_depth = 0;
  /// Shed deadline-carrying requests that are already hopeless at submit
  /// time: projected wait (queue_depth x EWMA of executed latency, divided
  /// across the workers) plus the execution estimate exceeding the
  /// remaining deadline means the query would only burn pool time to
  /// return DeadlineExceeded anyway. Requests without a deadline are never
  /// cost-gated, only depth-bounded.
  bool cost_gate = true;
  /// Converts the planner's abstract cost units (modeled entries touched)
  /// into milliseconds for the cost gate's execution estimate; the gate
  /// takes max(EWMA, planner_cost * cost_to_ms). 0 (default) relies on the
  /// measured EWMA alone and skips the extra planning pass at admission.
  double cost_to_ms = 0.0;
};

/// Sizing and policy knobs for PhraseService.
struct PhraseServiceOptions {
  ThreadPoolOptions pool;
  PlannerOptions planner;
  /// Sharded LRU cache of full MineResults keyed by canonicalized query +
  /// algorithm + mining options.
  std::size_t result_cache_shards = 8;
  std::size_t result_cache_bytes = 8u << 20;
  bool enable_result_cache = true;
  /// Sharded LRU cache of per-term word lists (score-ordered and
  /// id-ordered), so concurrent queries stop re-building lists and the
  /// engine's global lock stays out of the NRA/SMJ hot path.
  std::size_t word_list_cache_shards = 8;
  std::size_t word_list_cache_bytes = 64u << 20;
  bool enable_word_list_cache = true;
  /// Construction fraction of the cached id-ordered (SMJ) lists
  /// (Section 4.4.1: fixed at construction time). Unset means "inherit
  /// the engine's smj_fraction() at service construction", which keeps
  /// service kSmj results identical to serial engine mines regardless of
  /// enable_word_list_cache.
  std::optional<double> smj_fraction;
  /// When an Ingest crosses the engine's rebuild threshold, schedule a
  /// full MiningEngine::Rebuild on this service's thread pool (one at a
  /// time; queries keep flowing while it runs). Disable to manage
  /// rebuilds externally. On the sharded path only the shards that
  /// crossed their own threshold rebuild (shard-by-shard blast radius).
  bool enable_auto_rebuild = true;
  /// Config switch for the sharded engine: > 0 makes a service
  /// constructed over a monolithic MiningEngine build an internal
  /// ShardedEngine from a copy of the engine's base corpus (inheriting
  /// the engine's build options) and route every query through the
  /// scatter-gather path. Costs one corpus copy plus the shard index
  /// build at construction; services that already hold a ShardedEngine
  /// should use the ShardedEngine* constructor instead and leave this 0.
  std::size_t num_shards = 0;
  /// Slow-query log threshold in milliseconds: queries at or above it are
  /// appended to a bounded in-memory log (PhraseService::slow_queries),
  /// with the explain tree attached when the request was traced. 0 (the
  /// default) disables the log.
  double slow_query_ms = 0.0;
  /// Entries the slow-query log retains (oldest evicted first).
  std::size_t slow_query_log_capacity = 64;
  /// Load-shedding policy (see AdmissionOptions); off by default.
  AdmissionOptions admission;
  /// Feedback-driven placement cadence: every this many served queries
  /// the service re-derives the disk tier's hotness order from the
  /// per-term query counters (service_term_queries_total{term=...}) and
  /// installs it via SetTermPopularity -- see RefreshPlacement(). 0 (the
  /// default) disables the automatic cadence; RefreshPlacement() can
  /// still be called explicitly. Only useful on disk-backed engines;
  /// harmless (placement is simply never consulted) otherwise.
  std::size_t placement_refresh_interval = 0;
  /// Standing-query knobs (queue bounds, shadow headroom, fan-out
  /// deadline; see docs/subscriptions.md). The SubscriptionManager is
  /// created lazily on the first Subscribe, so services that never
  /// subscribe keep a listener-free, zero-cost ingest path. The `metrics`
  /// field is overridden with this service's registry.
  SubscriptionManagerOptions subscriptions;
};

/// One unit of work for the service.
struct ServiceRequest {
  Query query;
  MineOptions options;
  /// When set, bypasses the planner and runs exactly this algorithm.
  std::optional<Algorithm> algorithm;
  /// Total time budget in milliseconds, measured from Submit (queue wait
  /// counts against it). > 0 makes the service materialize a CancelToken
  /// shared by every execution leg; an expired request unwinds with
  /// ServiceReply::status == DeadlineExceeded and whatever partial
  /// accounting the miners had produced. 0 (default): no deadline.
  double deadline_ms = 0.0;
  /// Caller-owned cancellation handle; set to observe or trigger
  /// cancellation externally (Cancel() from any thread). When null and
  /// deadline_ms > 0 the service creates one internally. The service keeps
  /// a reference for the lifetime of the request, so the caller may drop
  /// theirs at any time.
  std::shared_ptr<CancelToken> cancel;
};

/// What the service hands back per query.
struct ServiceReply {
  /// Typed outcome: OK for a served ranking; DeadlineExceeded when the
  /// request's deadline fired before or during execution (result then
  /// carries partial accounting, not a ranking); ResourceExhausted when
  /// admission control shed the request or the pool rejected it;
  /// Unavailable for submits after Shutdown(); InvalidArgument for
  /// malformed requests (no terms, k == 0); IOError/Corruption when the
  /// disk tier surfaced a device error. Mirrors result.status when the
  /// failure happened inside a miner.
  Status status;
  MineResult result;
  /// Sharded path only: the ranked phrases' texts, aligned with
  /// result.phrases. Shard-local PhraseIds are not comparable across
  /// shards, so merged results carry texts as the phrase identity
  /// (result.phrases[i].phrase is just i). Empty on the single-engine
  /// path, where MiningEngine::PhraseText resolves ids as before.
  std::vector<std::string> phrase_texts;
  /// How the algorithm was chosen (reason == "forced by caller" when the
  /// request pinned one).
  PlanDecision plan;
  /// Engine epoch the result is valid for (mirrors result.epoch; the sum
  /// of shard epochs on the sharded path, with the full composite vector
  /// in result.shard_epochs). After an Ingest returns epoch E, every
  /// subsequently submitted query replies with epoch >= E -- stale cache
  /// entries are unreachable by key.
  uint64_t epoch = 0;
  bool result_cache_hit = false;
  /// Execution latency measured from the moment a worker (or MineSync
  /// caller) starts the query; time spent queued in the thread pool is
  /// NOT included, so under saturation user-perceived latency is higher.
  double latency_ms = 0.0;
  /// Root of the request's span tree (plan -> cache -> mine phases), set
  /// only when MineOptions::trace was on; null otherwise. Render with
  /// TraceSpan::Explain() or ToJson().
  std::shared_ptr<TraceSpan> trace;
};

/// Aggregated service counters.
struct ServiceStats {
  uint64_t queries = 0;
  uint64_t planned = 0;
  uint64_t forced = 0;
  /// Actual mine executions per algorithm, indexed by
  /// static_cast<int>(Algorithm). Result-cache hits are excluded -- these
  /// counters attribute compute, and a hit costs none.
  std::array<uint64_t, 6> per_algorithm{};
  CacheStats result_cache;
  CacheStats word_list_cache;
  ThreadPoolStats pool;
  /// Latency percentiles over all served queries, from the registry's
  /// log-scale microsecond histogram (4 sub-buckets per octave, ~19%
  /// value resolution -- twice the old log2 bucketing's).
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double p999_latency_ms = 0.0;
  /// Cumulative simulated-disk I/O across executed queries (kNraDisk
  /// paths only; zeros otherwise). On the sharded path these sum every
  /// shard device's counters -- aggregate device work, the per-query
  /// split lives in ShardedMineResult::shard_disk_io.
  DiskIoStats disk_io;
  /// Live-update counters: current engine epoch, Ingest/IngestBatch calls
  /// served, background rebuilds completed, and the engine's per-epoch
  /// accounting as of the last update.
  uint64_t epoch = 0;
  uint64_t ingests = 0;
  uint64_t rebuilds = 0;
  /// Robustness counters: requests shed by admission control (or rejected
  /// by the pool) and requests that returned DeadlineExceeded.
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  /// Feedback-placement refreshes installed (manual RefreshPlacement
  /// calls plus automatic cadence firings that had fresh counts).
  uint64_t placement_refreshes = 0;
  UpdateStats update;

  std::string ToString() const;
};

/// Concurrent serving front door over a MiningEngine: a bounded thread
/// pool executes queries, the cost planner picks the algorithm per query,
/// and two sharded LRU caches (full results, per-term word lists) absorb
/// repeated work. This is the layer the ROADMAP's sharding/batching/async
/// items build on.
///
/// Queries are canonicalized (terms sorted, deduplicated) before planning
/// and execution, so every spelling of a term set hits the same cache
/// entry and produces byte-identical results.
///
/// NRA and SMJ run against per-query list bundles assembled from the
/// word-list cache and never mutate the engine; Exact/GM/Simitsis and the
/// disk-simulation mode route through MiningEngine::Mine, which is
/// internally synchronized (see the engine's threading contract).
///
/// Live updates: Ingest/IngestBatch apply document churn to the engine
/// synchronously (the delta overlay and new epoch are visible before the
/// call returns), so no query submitted afterwards can be served from a
/// pre-update epoch. Invalidation is by construction, not by flush:
/// result-cache keys carry the epoch and word-list keys carry the
/// structure generation, making stale entries unreachable while hot lists
/// stay shared (word lists remain valid across delta epochs because the
/// miners correct scores at read time; only a rebuild re-keys them). When
/// an ingest crosses the rebuild threshold and enable_auto_rebuild is on,
/// a full rebuild runs on this pool in the background.
///
/// Deadlines and shedding: a request carrying deadline_ms (or an explicit
/// CancelToken) is polled cooperatively at block granularity throughout
/// execution; when it fires, the reply resolves with status
/// DeadlineExceeded and partial accounting instead of a ranking. With
/// AdmissionOptions::max_queue_depth > 0, Submit sheds rather than blocks:
/// a full admission queue -- or a deadline the cost gate projects as
/// hopeless -- resolves the future immediately with ResourceExhausted, so
/// overload degrades by dropping excess queries, not by growing latency
/// unboundedly. See docs/robustness.md.
///
/// Thread-safety: all public members may be called from any thread.
/// Shutdown (or destruction) drains queued work; Submit after shutdown
/// resolves the future immediately with status Unavailable (it no longer
/// degrades to inline execution -- a shut-down service stops doing work).
/// Every future returned by Submit is always fulfilled, never dangles:
/// the pool's submit verdict is atomic against shutdown (see ThreadPool's
/// contract), and on `false` the service resolves the promise itself.
class PhraseService {
 public:
  /// One cached service result: the merged MineResult plus (sharded path)
  /// the phrase texts that stand in for cross-shard ids.
  struct CachedResult {
    MineResult result;
    std::vector<std::string> texts;
  };

  /// `engine` must outlive the service. The engine may be shared with
  /// other direct callers as long as they respect its threading contract.
  /// With options.num_shards > 0 the service additionally builds an
  /// internal ShardedEngine from the engine's base corpus and serves every
  /// query through it (see PhraseServiceOptions::num_shards).
  explicit PhraseService(MiningEngine* engine,
                         PhraseServiceOptions options = {});

  /// Serves through a caller-owned ShardedEngine (must outlive the
  /// service): queries scatter-gather across its shards, ingest routes to
  /// owning shards, the result cache keys carry the composite epoch
  /// vector, and auto-rebuild rebuilds only the shards that crossed their
  /// threshold. The service word-list cache is idle on this path (each
  /// shard engine caches its own lazily built lists).
  explicit PhraseService(ShardedEngine* sharded,
                         PhraseServiceOptions options = {});
  ~PhraseService();

  PhraseService(const PhraseService&) = delete;
  PhraseService& operator=(const PhraseService&) = delete;

  /// Enqueues one query; blocks only when the submission queue is full.
  std::future<ServiceReply> Submit(ServiceRequest request);

  /// Enqueues a batch; futures are in request order.
  std::vector<std::future<ServiceReply>> SubmitBatch(
      std::vector<ServiceRequest> requests);

  /// Runs one query synchronously on the calling thread (no queueing).
  ServiceReply MineSync(const ServiceRequest& request);

  // --- Live updates ----------------------------------------------------------

  /// Inserts one document. Synchronous: on return the update is absorbed
  /// and the returned stats carry the new epoch.
  UpdateStats Ingest(UpdateDoc doc);

  /// Applies one batch of inserts/deletes; same synchronous contract.
  /// May schedule a background rebuild (see enable_auto_rebuild).
  UpdateStats IngestBatch(const UpdateBatch& batch);

  /// Re-derives the disk tier's placement from observed traffic: reads
  /// the per-term query counters accumulated since the previous refresh
  /// (a drift-tracking window, not the lifetime cumulative), installs
  /// them through SetTermPopularity (broadcast to every shard on the
  /// sharded path), and bumps service_placement_refreshes_total. The
  /// next kNraDisk mine lazily re-places its resident sets in
  /// observed-count order; the planner's priors follow the same
  /// snapshot. A refresh with no new queries since the last one keeps
  /// the current placement (returns false, no counter bump). Safe from
  /// any thread, including concurrently with queries -- this is the
  /// explicit form of the placement_refresh_interval cadence.
  bool RefreshPlacement();

  // --- Standing queries ------------------------------------------------------

  /// Registers a standing top-k query over the update stream (see
  /// SubscriptionManager::Subscribe for semantics and failure modes). The
  /// manager is created lazily here, targeting the sharded fleet when one
  /// serves this instance, with its metrics in this service's registry.
  Result<uint64_t> Subscribe(const SubscriptionRequest& request);

  /// Deregisters a subscription; NotFound for unknown ids (including any
  /// id before the first Subscribe ever created the manager).
  Status Unsubscribe(uint64_t subscription);

  /// Drains up to max_updates pending notifications for one subscription,
  /// blocking up to wait_ms for the first (see SubscriptionManager::Poll).
  Result<std::vector<SubscriptionUpdate>> PollSubscription(
      uint64_t subscription, std::size_t max_updates = 16,
      double wait_ms = 0.0);

  /// The subscription's current published top-k, independent of the
  /// notification queue (see SubscriptionManager::Snapshot).
  Result<SubscriptionState> SubscriptionSnapshot(uint64_t subscription) const;

  /// The lazily created subscription manager, or nullptr before the first
  /// Subscribe. Tests use it for Flush() and LastBatchTrace().
  SubscriptionManager* subscriptions() const {
    return subscriptions_ptr_.load(std::memory_order_acquire);
  }

  /// Stops intake and drains in-flight work; idempotent.
  void Shutdown();

  /// Aggregated counters, assembled as a thin view over one
  /// metrics_snapshot() (plus the engine's live update accounting).
  ServiceStats stats() const;

  /// The service's metric registry: every counter behind stats() lives
  /// here under the names cataloged in docs/observability.md, alongside
  /// the pool's and both caches' metrics. Export with
  /// Snapshot().ToPrometheusText() / ToJson().
  MetricsRegistry& metrics() { return registry_; }
  const MetricsRegistry& metrics() const { return registry_; }

  /// Point-in-time copy of every metric in metrics().
  MetricsSnapshot metrics_snapshot() const { return registry_.Snapshot(); }

  /// One slow-query log entry (see PhraseServiceOptions::slow_query_ms).
  struct SlowQueryEntry {
    /// "algorithm op k=..: terms=[...]" summary of the canonical request.
    std::string description;
    double latency_ms = 0.0;
    /// Rendered explain tree when the request was traced; empty otherwise.
    std::string explain;
  };

  /// Snapshot of the slow-query log, oldest first.
  std::vector<SlowQueryEntry> slow_queries() const;

  /// The backing single engine; on the sharded path this is shard 0,
  /// resolved at call time through ShardedEngine::shard's contract: a
  /// ShardedEngine::RefreshDictionary destroys and replaces the fleet,
  /// so neither call this concurrently with one nor hold the reference
  /// across one (use Submit/MineSync -- the refresh-safe surface -- for
  /// anything that must overlap a refresh).
  const MiningEngine& engine() const {
    return sharded_ != nullptr ? sharded_->shard(0) : *engine_;
  }
  /// The sharded engine serving this instance, or nullptr on the
  /// single-engine path.
  const ShardedEngine* sharded() const { return sharded_; }
  const PhraseServiceOptions& options() const { return options_; }

 private:
  /// Word-list cache key: structure generation + term id + list kind
  /// (score- vs id-ordered). Lists survive delta epochs (miners correct
  /// scores at read time) but not a rebuild, which bumps the generation
  /// and thereby strands every old-generation entry.
  static uint64_t ScoreListKey(TermId term, uint64_t generation) {
    return (generation << 33) | (static_cast<uint64_t>(term) << 1);
  }
  static uint64_t IdListKey(TermId term, uint64_t generation) {
    return (generation << 33) | (static_cast<uint64_t>(term) << 1) | 1;
  }

  ServiceReply Execute(const ServiceRequest& request);
  ServiceReply ExecuteSharded(const ServiceRequest& request);
  /// Admission gate consulted by Submit when admission control is enabled
  /// (max_queue_depth > 0): non-OK (ResourceExhausted) means shed -- the
  /// caller resolves the future with it without ever queueing the task.
  Status AdmissionCheck(const ServiceRequest& request);
  /// Shared request validation: InvalidArgument for a term-less canonical
  /// query or k == 0. Unknown terms are NOT an error -- they mine empty
  /// lists and return an empty ranking with status OK, matching the
  /// engine's own semantics.
  static Status ValidateRequest(const Query& canonical,
                                const MineOptions& options);
  /// `snap` is taken by value: Run refreshes it (and retries the bundle
  /// assembly) when a background rebuild changes the structure generation
  /// mid-request.
  MineResult Run(const Query& canonical, Algorithm algorithm,
                 const MineOptions& options, EpochDelta snap);
  /// One word-list cache entry: the shared AoS run plus, for id-ordered
  /// lists, the shared SoA kernel view built alongside it -- cached
  /// together so per-query SMJ bundles reuse the packed view instead of
  /// re-packing the list on every request. `soa` is null for score lists
  /// (NRA consumes the AoS run directly).
  struct CachedWordList {
    SharedWordList list;
    SharedSoAList soa;
  };

  SharedWordList GetOrBuildScoreList(TermId term, uint64_t generation);
  CachedWordList GetOrBuildIdList(TermId term, uint64_t generation);
  /// `shard_flags` is the per-shard rebuild recommendation vector on the
  /// sharded path (only flagged shards rebuild); empty rebuilds the
  /// single engine.
  void MaybeScheduleRebuild(std::vector<uint8_t> shard_flags = {});
  /// `disk_io` is the executed mine's simulated-disk charge (zeros for
  /// in-memory algorithms and cache hits); accumulated into stats().
  void RecordQuery(Algorithm algorithm, bool forced, bool executed,
                   double latency_ms, const DiskIoStats& disk_io = {});
  /// Bumps service_term_queries_total{term=...} for every canonical
  /// query term (cache hits included -- the signal is demand, not
  /// compute) and fires RefreshPlacement() when the cadence elapses.
  void CountTermQueries(const Query& canonical);
  /// Resolves the service's registry metric handles (both constructors).
  void InitMetrics();
  /// Appends to the slow-query log when the reply crossed the threshold.
  void MaybeLogSlowQuery(const Query& canonical, Algorithm algorithm,
                         const ServiceReply& reply);

  MiningEngine* engine_;
  PhraseServiceOptions options_;
  /// Declared before the pool and caches: they are constructed with (and
  /// publish into) this registry, and metric handles must outlive them.
  MetricsRegistry registry_;
  /// Sharded serving target: the owned reshard (num_shards switch), the
  /// caller's ShardedEngine, or null for the single-engine path.
  std::unique_ptr<ShardedEngine> owned_sharded_;
  ShardedEngine* sharded_ = nullptr;
  /// Resolved SMJ construction fraction (options_.smj_fraction or the
  /// engine's fraction at construction).
  double smj_fraction_;
  CostPlanner planner_;
  ShardedLruCache<std::string, std::shared_ptr<const CachedResult>>
      result_cache_;
  ShardedLruCache<uint64_t, CachedWordList> word_list_cache_;

  // Registry metric handles (stable pointers into registry_), resolved by
  // InitMetrics(). RecordQuery and the ingest/rebuild paths touch only
  // these relaxed-atomic handles -- no stats mutex.
  Counter* queries_total_ = nullptr;
  Counter* planned_total_ = nullptr;
  Counter* forced_total_ = nullptr;
  Counter* ingests_total_ = nullptr;
  Counter* rebuilds_total_ = nullptr;
  Counter* slow_queries_total_ = nullptr;
  Counter* placement_refreshes_total_ = nullptr;
  /// Robustness metrics: service_shed_total counts requests resolved with
  /// ResourceExhausted before execution (admission depth bound, cost gate,
  /// pool rejection storms); service_deadline_exceeded_total counts
  /// replies that resolved DeadlineExceeded; the admission-depth gauge
  /// samples the pool queue depth each time the gate runs (its Max() is
  /// the high-water mark the shed decisions actually saw).
  Counter* shed_total_ = nullptr;
  Counter* deadline_exceeded_total_ = nullptr;
  Gauge* admission_depth_ = nullptr;
  std::array<Counter*, 6> algorithm_total_{};
  Counter* disk_blocks_total_ = nullptr;
  Counter* disk_seeks_total_ = nullptr;
  Counter* disk_bytes_total_ = nullptr;
  Counter* exchange_pruned_total_ = nullptr;
  Counter* fill_slots_total_ = nullptr;
  /// Query latency in microseconds (log-scale; quantiles in stats()).
  Histogram* latency_us_ = nullptr;
  /// Per-shard disk-tier counters, indexed by shard (sharded path only).
  std::vector<Counter*> shard_disk_blocks_;
  std::vector<Counter*> shard_disk_seeks_;
  std::vector<Counter*> shard_disk_bytes_;

  /// Feedback-placement state: per-term counter handles (stable registry
  /// pointers, keyed by TermId so RefreshPlacement can read values back
  /// without parsing metric names) and the per-term counts already
  /// installed by the previous refresh -- the delta between a counter
  /// and its installed floor is the refresh window's observed demand.
  mutable std::mutex term_counts_mu_;
  std::unordered_map<TermId, Counter*> term_counters_;
  std::unordered_map<TermId, uint64_t> installed_counts_;
  /// Queries since the cadence last fired (placement_refresh_interval).
  std::atomic<uint64_t> queries_since_refresh_{0};

  /// EWMA of executed-query latency in microseconds (alpha = 1/8,
  /// relaxed-atomic; races lose an update, never corrupt). Feeds the
  /// admission cost gate's wait/execute projection; 0 until the first
  /// executed query completes (the gate then only depth-bounds).
  std::atomic<uint64_t> ewma_latency_us_{0};

  /// Bounded slow-query log (options_.slow_query_ms threshold).
  mutable std::mutex slow_mu_;
  std::deque<SlowQueryEntry> slow_log_;

  /// One background rebuild at a time; set when scheduled, cleared by the
  /// pool task when the rebuild finishes.
  std::atomic<bool> rebuild_inflight_{false};

  /// Standing-query manager, created under subscriptions_mu_ by the first
  /// Subscribe and read lock-free through the atomic pointer elsewhere.
  /// Declared after owned_sharded_ so destruction detaches its engine
  /// listener and joins its worker while the engines are still alive.
  mutable std::mutex subscriptions_mu_;
  std::unique_ptr<SubscriptionManager> subscriptions_;
  std::atomic<SubscriptionManager*> subscriptions_ptr_{nullptr};

  ThreadPool pool_;  // Last member: workers must die before the caches.
};

}  // namespace phrasemine

#endif  // PHRASEMINE_SERVICE_SERVICE_H_
