#ifndef PHRASEMINE_SERVICE_SERVICE_H_
#define PHRASEMINE_SERVICE_SERVICE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/miner.h"
#include "core/query.h"
#include "index/word_lists.h"
#include "service/cache.h"
#include "service/planner.h"
#include "service/thread_pool.h"

namespace phrasemine {

/// Sizing and policy knobs for PhraseService.
struct PhraseServiceOptions {
  ThreadPoolOptions pool;
  PlannerOptions planner;
  /// Sharded LRU cache of full MineResults keyed by canonicalized query +
  /// algorithm + mining options.
  std::size_t result_cache_shards = 8;
  std::size_t result_cache_bytes = 8u << 20;
  bool enable_result_cache = true;
  /// Sharded LRU cache of per-term word lists (score-ordered and
  /// id-ordered), so concurrent queries stop re-building lists and the
  /// engine's global lock stays out of the NRA/SMJ hot path.
  std::size_t word_list_cache_shards = 8;
  std::size_t word_list_cache_bytes = 64u << 20;
  bool enable_word_list_cache = true;
  /// Construction fraction of the cached id-ordered (SMJ) lists
  /// (Section 4.4.1: fixed at construction time). Unset means "inherit
  /// the engine's smj_fraction() at service construction", which keeps
  /// service kSmj results identical to serial engine mines regardless of
  /// enable_word_list_cache.
  std::optional<double> smj_fraction;
  /// When an Ingest crosses the engine's rebuild threshold, schedule a
  /// full MiningEngine::Rebuild on this service's thread pool (one at a
  /// time; queries keep flowing while it runs). Disable to manage
  /// rebuilds externally.
  bool enable_auto_rebuild = true;
};

/// One unit of work for the service.
struct ServiceRequest {
  Query query;
  MineOptions options;
  /// When set, bypasses the planner and runs exactly this algorithm.
  std::optional<Algorithm> algorithm;
};

/// What the service hands back per query.
struct ServiceReply {
  MineResult result;
  /// How the algorithm was chosen (reason == "forced by caller" when the
  /// request pinned one).
  PlanDecision plan;
  /// Engine epoch the result is valid for (mirrors result.epoch). After an
  /// Ingest returns epoch E, every subsequently submitted query replies
  /// with epoch >= E -- stale cache entries are unreachable by key.
  uint64_t epoch = 0;
  bool result_cache_hit = false;
  /// Execution latency measured from the moment a worker (or MineSync
  /// caller) starts the query; time spent queued in the thread pool is
  /// NOT included, so under saturation user-perceived latency is higher.
  double latency_ms = 0.0;
};

/// Aggregated service counters.
struct ServiceStats {
  uint64_t queries = 0;
  uint64_t planned = 0;
  uint64_t forced = 0;
  /// Actual mine executions per algorithm, indexed by
  /// static_cast<int>(Algorithm). Result-cache hits are excluded -- these
  /// counters attribute compute, and a hit costs none.
  std::array<uint64_t, 6> per_algorithm{};
  CacheStats result_cache;
  CacheStats word_list_cache;
  ThreadPoolStats pool;
  /// Latency percentiles over all served queries, from a log-scale
  /// histogram (2x bucket resolution).
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  /// Live-update counters: current engine epoch, Ingest/IngestBatch calls
  /// served, background rebuilds completed, and the engine's per-epoch
  /// accounting as of the last update.
  uint64_t epoch = 0;
  uint64_t ingests = 0;
  uint64_t rebuilds = 0;
  UpdateStats update;

  std::string ToString() const;
};

/// Concurrent serving front door over a MiningEngine: a bounded thread
/// pool executes queries, the cost planner picks the algorithm per query,
/// and two sharded LRU caches (full results, per-term word lists) absorb
/// repeated work. This is the layer the ROADMAP's sharding/batching/async
/// items build on.
///
/// Queries are canonicalized (terms sorted, deduplicated) before planning
/// and execution, so every spelling of a term set hits the same cache
/// entry and produces byte-identical results.
///
/// NRA and SMJ run against per-query list bundles assembled from the
/// word-list cache and never mutate the engine; Exact/GM/Simitsis and the
/// disk-simulation mode route through MiningEngine::Mine, which is
/// internally synchronized (see the engine's threading contract).
///
/// Live updates: Ingest/IngestBatch apply document churn to the engine
/// synchronously (the delta overlay and new epoch are visible before the
/// call returns), so no query submitted afterwards can be served from a
/// pre-update epoch. Invalidation is by construction, not by flush:
/// result-cache keys carry the epoch and word-list keys carry the
/// structure generation, making stale entries unreachable while hot lists
/// stay shared (word lists remain valid across delta epochs because the
/// miners correct scores at read time; only a rebuild re-keys them). When
/// an ingest crosses the rebuild threshold and enable_auto_rebuild is on,
/// a full rebuild runs on this pool in the background.
///
/// Thread-safety: all public members may be called from any thread.
/// Shutdown (or destruction) drains queued work; Submit after shutdown
/// degrades to inline execution on the caller's thread so futures are
/// always fulfilled.
class PhraseService {
 public:
  /// `engine` must outlive the service. The engine may be shared with
  /// other direct callers as long as they respect its threading contract.
  explicit PhraseService(MiningEngine* engine,
                         PhraseServiceOptions options = {});
  ~PhraseService();

  PhraseService(const PhraseService&) = delete;
  PhraseService& operator=(const PhraseService&) = delete;

  /// Enqueues one query; blocks only when the submission queue is full.
  std::future<ServiceReply> Submit(ServiceRequest request);

  /// Enqueues a batch; futures are in request order.
  std::vector<std::future<ServiceReply>> SubmitBatch(
      std::vector<ServiceRequest> requests);

  /// Runs one query synchronously on the calling thread (no queueing).
  ServiceReply MineSync(const ServiceRequest& request);

  // --- Live updates ----------------------------------------------------------

  /// Inserts one document. Synchronous: on return the update is absorbed
  /// and the returned stats carry the new epoch.
  UpdateStats Ingest(UpdateDoc doc);

  /// Applies one batch of inserts/deletes; same synchronous contract.
  /// May schedule a background rebuild (see enable_auto_rebuild).
  UpdateStats IngestBatch(const UpdateBatch& batch);

  /// Stops intake and drains in-flight work; idempotent.
  void Shutdown();

  ServiceStats stats() const;

  const MiningEngine& engine() const { return *engine_; }
  const PhraseServiceOptions& options() const { return options_; }

 private:
  /// Word-list cache key: structure generation + term id + list kind
  /// (score- vs id-ordered). Lists survive delta epochs (miners correct
  /// scores at read time) but not a rebuild, which bumps the generation
  /// and thereby strands every old-generation entry.
  static uint64_t ScoreListKey(TermId term, uint64_t generation) {
    return (generation << 33) | (static_cast<uint64_t>(term) << 1);
  }
  static uint64_t IdListKey(TermId term, uint64_t generation) {
    return (generation << 33) | (static_cast<uint64_t>(term) << 1) | 1;
  }

  ServiceReply Execute(const ServiceRequest& request);
  /// `snap` is taken by value: Run refreshes it (and retries the bundle
  /// assembly) when a background rebuild changes the structure generation
  /// mid-request.
  MineResult Run(const Query& canonical, Algorithm algorithm,
                 const MineOptions& options, EpochDelta snap);
  SharedWordList GetOrBuildScoreList(TermId term, uint64_t generation);
  SharedWordList GetOrBuildIdList(TermId term, uint64_t generation);
  void MaybeScheduleRebuild();
  void RecordQuery(Algorithm algorithm, bool forced, bool executed,
                   double latency_ms);

  MiningEngine* engine_;
  PhraseServiceOptions options_;
  /// Resolved SMJ construction fraction (options_.smj_fraction or the
  /// engine's fraction at construction).
  double smj_fraction_;
  CostPlanner planner_;
  ShardedLruCache<std::string, std::shared_ptr<const MineResult>>
      result_cache_;
  ShardedLruCache<uint64_t, SharedWordList> word_list_cache_;

  mutable std::mutex stats_mu_;
  uint64_t queries_ = 0;
  uint64_t planned_ = 0;
  uint64_t forced_ = 0;
  uint64_t ingests_ = 0;
  uint64_t rebuilds_ = 0;
  std::array<uint64_t, 6> per_algorithm_{};
  /// Log2 microsecond latency histogram (bucket i covers [2^i, 2^(i+1)) us).
  std::array<uint64_t, 40> latency_buckets_{};

  /// One background rebuild at a time; set when scheduled, cleared by the
  /// pool task when the rebuild finishes.
  std::atomic<bool> rebuild_inflight_{false};

  ThreadPool pool_;  // Last member: workers must die before the caches.
};

}  // namespace phrasemine

#endif  // PHRASEMINE_SERVICE_SERVICE_H_
