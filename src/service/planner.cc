#include "service/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <unordered_set>

#include "common/check.h"
#include "core/disk_lists.h"
#include "index/list_entry.h"

namespace phrasemine {

namespace {

/// Appends "name=1.2e+04" style cost renderings to the reason line.
std::string FormatCost(double cost) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", cost);
  return buf;
}

}  // namespace

std::string PlanDecision::ToString() const {
  std::string out = AlgorithmName(algorithm);
  out += " (";
  out += QueryOperatorName(op);
  char buf[96];
  std::snprintf(buf, sizeof(buf), ", r=%zu, k=%zu, |D'|~%zu", terms.size(), k,
                estimated_subcollection);
  out += buf;
  out += "): ";
  out += reason;
  if (!estimated_costs.empty()) {
    out += " [";
    for (std::size_t i = 0; i < estimated_costs.size(); ++i) {
      if (i > 0) out += ", ";
      out += AlgorithmName(estimated_costs[i].first);
      out += "=";
      out += FormatCost(estimated_costs[i].second);
    }
    out += "]";
  }
  return out;
}

CostPlanner::CostPlanner(const MiningEngine* engine, PlannerOptions options,
                         ListProbe probe)
    : engine_(engine), options_(options), probe_(std::move(probe)) {
  if (!probe_) {
    probe_ = [engine](TermId term) -> std::optional<std::size_t> {
      if (!engine->word_lists().Has(term)) return std::nullopt;
      return engine->word_lists().list(term).size();
    };
  }
  // Average forward-list length: each phrase contributes one entry to the
  // forward list of every document it occurs in, so the mean list length
  // is sum_p df(p) / |D|.
  const PhraseDictionary& dict = engine_->dict();
  uint64_t total_df = 0;
  for (PhraseId p = 0; p < dict.size(); ++p) total_df += dict.df(p);
  const std::size_t num_docs = engine_->corpus().size();
  avg_doc_phrases_ =
      num_docs == 0 ? 0.0 : static_cast<double>(total_df) / num_docs;
}

PlanDecision CostPlanner::Plan(const Query& query,
                               const MineOptions& options) const {
  return Plan(query, options, engine_->delta_snapshot());
}

PlanDecision CostPlanner::Plan(const Query& query, const MineOptions& options,
                               const EpochDelta& snap) const {
  return PlanFromInputs(GatherInputs(query, options, snap), options_);
}

PlannerInputs CostPlanner::GatherInputs(const Query& query,
                                        const MineOptions& options) const {
  return GatherInputs(query, options, engine_->delta_snapshot());
}

PlannerInputs CostPlanner::GatherInputs(const Query& query,
                                        const MineOptions& options,
                                        const EpochDelta& snap) const {
  return GatherInputs(*engine_, query, options, snap, avg_doc_phrases_,
                      probe_);
}

PlannerInputs CostPlanner::GatherInputs(const MiningEngine& engine,
                                        const Query& query,
                                        const MineOptions& options,
                                        const EpochDelta& snap,
                                        double avg_doc_phrases,
                                        const ListProbe& probe) {
  // The overlay corrects the document-frequency inputs, so selectivity
  // estimates stay honest as updates accumulate between rebuilds. The
  // stats gathering runs under the engine's shared structure lock so a
  // concurrent rebuild cannot swap the indexes mid-read.
  const DeltaIndex* delta =
      snap.delta != nullptr && snap.delta->pending_updates() > 0
          ? snap.delta.get()
          : nullptr;
  PlannerInputs inputs = engine.WithSharedStructures([&] {
    PlannerInputs gathered;
    const int64_t docs_delta = delta != nullptr ? delta->DocsDelta() : 0;
    const auto base_docs = static_cast<int64_t>(engine.corpus().size());
    gathered.num_docs = static_cast<std::size_t>(
        std::max<int64_t>(base_docs + docs_delta, 0));
    gathered.avg_doc_phrases = avg_doc_phrases;
    gathered.op = query.op;
    gathered.k = options.k;
    gathered.updates_pending = delta != nullptr;
    gathered.disk_backed = engine.options().disk_backed;
    // Disk-backed engines: the tier's spill policy over the engine's
    // currently built lists (exactly what the next kNraDisk mine will
    // place -- a word-list merge invalidates and re-places). Memoized
    // inside the engine, so per-query planning pays a hash lookup per
    // term, not the O(T log T) policy. Safe here: this lambda runs
    // under the shared structure lock.
    std::shared_ptr<const std::unordered_set<TermId>> resident;
    if (gathered.disk_backed) resident = engine.ResidentSetLocked();
    // Observed-popularity priors (feedback-driven placement): the same
    // snapshot the spill policy orders by, so on_disk below predicts the
    // re-placed tier, not the static-df one.
    const std::shared_ptr<const TermPopularity> observed =
        engine.TermPopularityLocked();
    const std::size_t block_bytes =
        std::max<std::size_t>(engine.options().disk.page_size_bytes, 1);
    gathered.terms.reserve(query.terms.size());
    for (TermId t : query.terms) {
      TermPlanStats stats;
      stats.term = t;
      int64_t df = engine.inverted().df(t);
      if (delta != nullptr) df += delta->TermDfDelta(t);
      stats.df = static_cast<uint32_t>(std::max<int64_t>(df, 0));
      if (observed != nullptr) {
        auto it = observed->find(t);
        if (it != observed->end()) stats.observed_queries = it->second;
      }
      std::optional<std::size_t> len;
      if (probe) {
        len = probe(t);
      } else if (engine.word_lists().Has(t)) {
        // Probe-free fallback: the engine's own lazy lists, safe to read
        // here because this lambda runs under the structure lock.
        len = engine.word_lists().list(t).size();
      }
      if (len.has_value()) {
        stats.list_built = true;
        stats.list_length = *len;
      } else {
        // A term's list holds the distinct phrases co-occurring with it,
        // bounded by the total phrase occurrences across docs(term).
        stats.list_built = false;
        stats.list_length = static_cast<std::size_t>(std::min<double>(
            static_cast<double>(engine.dict().size()),
            static_cast<double>(stats.df) * gathered.avg_doc_phrases));
      }
      if (gathered.disk_backed) {
        // A built list is spilled when the policy left it out of the
        // resident set; an unbuilt list predicts as spilled (the policy
        // pins only what the budget provably covers, and a cold list
        // joins the placement at its df rank once built). Blocks cover
        // the packed on-device footprint at the estimated length.
        const bool built_on_engine = engine.word_lists().Has(t);
        stats.on_disk = !(built_on_engine && resident->contains(t));
        if (stats.on_disk) {
          stats.disk_blocks =
              (static_cast<uint64_t>(stats.list_length) * kListEntryBytes +
               block_bytes - 1) /
              block_bytes;
        }
      }
      gathered.terms.push_back(stats);
    }
    return gathered;
  });
  return inputs;
}

namespace {

/// Sub-collection estimate plus the zero-df flag the decision procedure
/// branches on.
struct SubcollectionEstimate {
  double est = 0.0;
  bool has_zero_df = false;
};

/// Sub-collection estimate (Eq. 2). AND uses exponential-backoff
/// selectivity (exponents 1, 1/2, 1/4, ... over ascending selectivities):
/// query terms are topically correlated, so plain independence
/// multiplication collapses every multi-term estimate toward zero and
/// would mis-route everything to Exact.
SubcollectionEstimate EstimateSubcollection(const PlannerInputs& inputs) {
  SubcollectionEstimate out;
  const double n = static_cast<double>(inputs.num_docs);
  if (inputs.op == QueryOperator::kAnd) {
    std::vector<double> selectivities;
    selectivities.reserve(inputs.terms.size());
    for (const TermPlanStats& t : inputs.terms) {
      if (t.df == 0) out.has_zero_df = true;
      selectivities.push_back(n == 0.0 ? 0.0
                                       : static_cast<double>(t.df) / n);
    }
    std::sort(selectivities.begin(), selectivities.end());
    out.est = n;
    double exponent = 1.0;
    for (double s : selectivities) {
      out.est *= std::pow(s, exponent);
      exponent *= 0.5;
    }
    if (out.has_zero_df) out.est = 0.0;
    if (!out.has_zero_df && !inputs.terms.empty() && out.est < 1.0) {
      out.est = 1.0;
    }
  } else {
    for (const TermPlanStats& t : inputs.terms) {
      out.est += static_cast<double>(t.df);
    }
    out.est = std::min(out.est, n);
  }
  return out;
}

/// Modeled cost of every candidate algorithm ({GM,} NRA, SMJ; GM is
/// excluded while updates are pending -- it would mine the base corpus).
/// On a disk-backed engine the NRA candidate is emitted as kNraDisk and
/// both list methods carry per-block I/O terms for their spilled inputs
/// (see the routing rule in the CostPlanner class comment).
std::vector<std::pair<Algorithm, double>> EstimateCosts(
    const PlannerInputs& inputs, const PlannerOptions& options, double est) {
  double total_list_entries = 0.0;
  double build_charge = 0.0;
  for (const TermPlanStats& t : inputs.terms) {
    total_list_entries += static_cast<double>(t.list_length);
    if (!t.list_built) {
      // Building scans the forward lists of docs(term).
      build_charge += static_cast<double>(t.df) * inputs.avg_doc_phrases *
                      options.build_amortization;
    }
  }
  const double or_factor =
      inputs.op == QueryOperator::kOr ? options.or_overhead : 1.0;
  const double traversal =
      std::min(1.0, options.nra_traversal_fraction +
                        options.nra_k_penalty * static_cast<double>(inputs.k));

  // Disk terms over the spilled lists: NRA-disk reads the traversed
  // prefix of each list's blocks, at the random rate when its
  // round-robin head interleaves more than one *spilled* list file
  // (reads of a single on-device file advance in order and stream at
  // the sequential rate, however many pinned lists interleave); SMJ
  // streams every spilled list once, sequentially. Resident lists
  // charge nothing.
  double nra_disk_io = 0.0;
  double smj_disk_io = 0.0;
  if (inputs.disk_backed) {
    // Only lists that actually occupy device blocks interleave: the tier
    // registers no file for an empty list, so a zero-block "spilled"
    // term (df 0, or an unbuilt estimate rounding to nothing) must not
    // flip the remaining reads to the random rate.
    std::size_t spilled = 0;
    for (const TermPlanStats& t : inputs.terms) {
      spilled += (t.on_disk && t.disk_blocks > 0) ? 1 : 0;
    }
    const double nra_block_cost = spilled > 1
                                      ? options.disk_random_block_cost
                                      : options.disk_sequential_block_cost;
    for (const TermPlanStats& t : inputs.terms) {
      if (!t.on_disk) continue;
      const double blocks = static_cast<double>(t.disk_blocks);
      nra_disk_io += std::ceil(traversal * blocks) * nra_block_cost;
      smj_disk_io += blocks * options.disk_sequential_block_cost;
    }
  }

  const double cost_gm =
      est * inputs.avg_doc_phrases * options.gm_entry_cost;
  const double cost_nra = options.nra_fixed_cost +
                          total_list_entries * traversal *
                              options.nra_entry_cost * or_factor +
                          build_charge + nra_disk_io;
  const double cost_smj = options.smj_fixed_cost +
                          total_list_entries * options.smj_entry_cost *
                              or_factor +
                          build_charge + smj_disk_io;

  std::vector<std::pair<Algorithm, double>> costs;
  if (!inputs.updates_pending) costs.emplace_back(Algorithm::kGm, cost_gm);
  costs.emplace_back(
      inputs.disk_backed ? Algorithm::kNraDisk : Algorithm::kNra, cost_nra);
  costs.emplace_back(Algorithm::kSmj, cost_smj);
  return costs;
}

/// Shared tail of every cost-based decision: argmin over
/// decision->estimated_costs (which must be non-empty), a
/// "<prefix><Algo> cheapest (<cost>)" reason, and the pending-updates
/// note. Keeps the single-engine and sharded plan output in lockstep.
void FinishCostDecision(PlanDecision* decision, bool updates_pending,
                        const std::string& reason_prefix) {
  decision->algorithm = decision->estimated_costs.front().first;
  double best = decision->estimated_costs.front().second;
  for (const auto& [algorithm, cost] : decision->estimated_costs) {
    if (cost < best) {
      decision->algorithm = algorithm;
      best = cost;
    }
  }
  decision->reason = reason_prefix + AlgorithmName(decision->algorithm) +
                     " cheapest (" + FormatCost(best) + ")";
  if (updates_pending) {
    decision->reason += ", pending updates restrict to delta-corrected methods";
  }
}

}  // namespace

PlanDecision CostPlanner::PlanFromInputs(const PlannerInputs& inputs,
                                         const PlannerOptions& options) {
  PlanDecision decision;
  decision.op = inputs.op;
  decision.k = inputs.k;
  decision.terms = inputs.terms;

  const SubcollectionEstimate subcollection = EstimateSubcollection(inputs);
  const double est = subcollection.est;
  const bool has_zero_df = subcollection.has_zero_df;
  decision.estimated_subcollection = static_cast<std::size_t>(std::llround(est));

  // --- Degenerate and exact-only cases -------------------------------------
  if (inputs.terms.empty()) {
    decision.algorithm = Algorithm::kGm;
    decision.reason = "empty query: nothing to aggregate, GM returns fast";
    return decision;
  }
  if (inputs.op == QueryOperator::kAnd && has_zero_df) {
    if (inputs.updates_pending && options.allow_approximate) {
      // The (delta-corrected) df hit zero through updates; GM would mine
      // the base corpus and could serve a stale non-empty answer. SMJ
      // over the delta-corrected lists yields the true (empty) result.
      decision.algorithm = Algorithm::kSmj;
      decision.reason =
          "zero-df term under AND with pending updates: delta-corrected SMJ";
      return decision;
    }
    decision.algorithm = Algorithm::kGm;
    decision.reason = "empty subcollection (zero-df term under AND)";
    return decision;
  }
  if (!options.allow_approximate) {
    if (decision.estimated_subcollection <=
        options.exact_subcollection_threshold) {
      decision.algorithm = Algorithm::kExact;
      decision.reason = "approximation disallowed, tiny subcollection: Exact";
    } else {
      decision.algorithm = Algorithm::kGm;
      decision.reason = "approximation disallowed: GM (exact forward scan)";
    }
    return decision;
  }
  if (!inputs.updates_pending &&
      decision.estimated_subcollection <=
          options.exact_subcollection_threshold) {
    decision.algorithm = Algorithm::kExact;
    decision.reason = "tiny subcollection: exact forward scan is cheapest";
    return decision;
  }

  // --- Cost model over {GM, NRA(-disk), SMJ} --------------------------------
  // GM mines the base corpus; with an unrebuilt overlay it would serve
  // stale answers, so the argmin is then restricted to NRA(-disk)/SMJ.
  // On a disk-backed engine the NRA candidate is kNraDisk with I/O terms.
  decision.estimated_costs = EstimateCosts(inputs, options, est);
  FinishCostDecision(&decision, inputs.updates_pending, "cost: ");
  return decision;
}

PlanDecision CostPlanner::PlanAcrossShards(
    std::span<const PlannerInputs> shards, const PlannerOptions& options) {
  PM_CHECK_MSG(!shards.empty(), "PlanAcrossShards requires at least one shard");

  // Aggregate to global inputs over the disjoint partition: dfs, doc
  // counts and list lengths sum; avg_doc_phrases is doc-weighted; a list
  // counts as built only when every shard has it.
  PlannerInputs aggregate = shards.front();
  aggregate.num_docs = 0;
  aggregate.avg_doc_phrases = 0.0;
  aggregate.updates_pending = false;
  aggregate.disk_backed = false;
  for (TermPlanStats& t : aggregate.terms) {
    t.df = 0;
    t.list_length = 0;
    t.list_built = true;
    t.on_disk = false;
    t.disk_blocks = 0;
  }
  for (const PlannerInputs& shard : shards) {
    PM_CHECK_MSG(shard.terms.size() == aggregate.terms.size(),
                 "shard inputs must describe the same query");
    aggregate.num_docs += shard.num_docs;
    aggregate.avg_doc_phrases +=
        shard.avg_doc_phrases * static_cast<double>(shard.num_docs);
    aggregate.updates_pending |= shard.updates_pending;
    aggregate.disk_backed |= shard.disk_backed;
    for (std::size_t i = 0; i < aggregate.terms.size(); ++i) {
      aggregate.terms[i].df += shard.terms[i].df;
      aggregate.terms[i].list_length += shard.terms[i].list_length;
      aggregate.terms[i].list_built &= shard.terms[i].list_built;
      // Disk placement: a term counts as spilled fleet-wide when any
      // shard spilled it, and the aggregate block count sums the
      // per-shard footprints (only used by the aggregate short-circuit
      // costs; the makespan below charges each shard its own blocks).
      aggregate.terms[i].on_disk |= shard.terms[i].on_disk;
      aggregate.terms[i].disk_blocks += shard.terms[i].disk_blocks;
      // Observed counts are broadcast fleet-wide (one service-level
      // snapshot per shard), so max -- not sum -- recovers the global
      // prior without multiplying it by the shard count.
      aggregate.terms[i].observed_queries =
          std::max(aggregate.terms[i].observed_queries,
                   shard.terms[i].observed_queries);
    }
  }
  if (aggregate.num_docs > 0) {
    aggregate.avg_doc_phrases /= static_cast<double>(aggregate.num_docs);
  }

  char prefix[48];
  std::snprintf(prefix, sizeof(prefix), "sharded(%zu): ", shards.size());

  PlanDecision decision = PlanFromInputs(aggregate, options);
  if (decision.estimated_costs.empty()) {
    // A decision-procedure short-circuit (empty query, zero global df,
    // approximation disallowed, tiny sub-collection) depends only on the
    // aggregated inputs; keep it.
    decision.reason = prefix + decision.reason;
    return decision;
  }

  // Cost-based choice: shards mine in parallel, so each algorithm's
  // modeled latency is the *slowest* shard's cost (makespan), not the
  // aggregate -- a skewed shard can flip the decision.
  std::vector<std::pair<Algorithm, double>> merged;
  for (const PlannerInputs& shard : shards) {
    const SubcollectionEstimate est = EstimateSubcollection(shard);
    // The aggregate decides GM's eligibility: one shard with pending
    // updates makes the merged result stale wherever GM would run. The
    // aggregate likewise decides the NRA candidate's identity: one
    // disk-backed shard routes the whole fleet through kNraDisk, so
    // every shard's cost lands under the same algorithm label (shards
    // without spilled lists simply contribute no I/O term).
    PlannerInputs costed = shard;
    costed.updates_pending = aggregate.updates_pending;
    costed.disk_backed = aggregate.disk_backed;
    for (const auto& [algorithm, cost] :
         EstimateCosts(costed, options, est.est)) {
      auto it = std::find_if(merged.begin(), merged.end(),
                             [a = algorithm](const auto& entry) {
                               return entry.first == a;
                             });
      if (it == merged.end()) {
        merged.emplace_back(algorithm, cost);
      } else {
        it->second = std::max(it->second, cost);
      }
    }
  }
  decision.estimated_costs = std::move(merged);
  FinishCostDecision(&decision, aggregate.updates_pending,
                     std::string(prefix) + "makespan cost: ");
  return decision;
}

}  // namespace phrasemine
