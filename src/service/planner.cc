#include "service/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace phrasemine {

namespace {

/// Appends "name=1.2e+04" style cost renderings to the reason line.
std::string FormatCost(double cost) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", cost);
  return buf;
}

}  // namespace

std::string PlanDecision::ToString() const {
  std::string out = AlgorithmName(algorithm);
  out += " (";
  out += QueryOperatorName(op);
  char buf[96];
  std::snprintf(buf, sizeof(buf), ", r=%zu, k=%zu, |D'|~%zu", terms.size(), k,
                estimated_subcollection);
  out += buf;
  out += "): ";
  out += reason;
  if (!estimated_costs.empty()) {
    out += " [";
    for (std::size_t i = 0; i < estimated_costs.size(); ++i) {
      if (i > 0) out += ", ";
      out += AlgorithmName(estimated_costs[i].first);
      out += "=";
      out += FormatCost(estimated_costs[i].second);
    }
    out += "]";
  }
  return out;
}

CostPlanner::CostPlanner(const MiningEngine* engine, PlannerOptions options,
                         ListProbe probe)
    : engine_(engine), options_(options), probe_(std::move(probe)) {
  if (!probe_) {
    probe_ = [engine](TermId term) -> std::optional<std::size_t> {
      if (!engine->word_lists().Has(term)) return std::nullopt;
      return engine->word_lists().list(term).size();
    };
  }
  // Average forward-list length: each phrase contributes one entry to the
  // forward list of every document it occurs in, so the mean list length
  // is sum_p df(p) / |D|.
  const PhraseDictionary& dict = engine_->dict();
  uint64_t total_df = 0;
  for (PhraseId p = 0; p < dict.size(); ++p) total_df += dict.df(p);
  const std::size_t num_docs = engine_->corpus().size();
  avg_doc_phrases_ =
      num_docs == 0 ? 0.0 : static_cast<double>(total_df) / num_docs;
}

PlanDecision CostPlanner::Plan(const Query& query,
                               const MineOptions& options) const {
  return Plan(query, options, engine_->delta_snapshot());
}

PlanDecision CostPlanner::Plan(const Query& query, const MineOptions& options,
                               const EpochDelta& snap) const {
  // The overlay corrects the document-frequency inputs, so selectivity
  // estimates stay honest as updates accumulate between rebuilds. The
  // stats gathering runs under the engine's shared structure lock so a
  // concurrent rebuild cannot swap the indexes mid-read.
  const DeltaIndex* delta =
      snap.delta != nullptr && snap.delta->pending_updates() > 0
          ? snap.delta.get()
          : nullptr;
  PlannerInputs inputs = engine_->WithSharedStructures([&] {
    PlannerInputs gathered;
    const int64_t docs_delta = delta != nullptr ? delta->DocsDelta() : 0;
    const auto base_docs = static_cast<int64_t>(engine_->corpus().size());
    gathered.num_docs = static_cast<std::size_t>(
        std::max<int64_t>(base_docs + docs_delta, 0));
    gathered.avg_doc_phrases = avg_doc_phrases_;
    gathered.op = query.op;
    gathered.k = options.k;
    gathered.updates_pending = delta != nullptr;
    gathered.terms.reserve(query.terms.size());
    for (TermId t : query.terms) {
      TermPlanStats stats;
      stats.term = t;
      int64_t df = engine_->inverted().df(t);
      if (delta != nullptr) df += delta->TermDfDelta(t);
      stats.df = static_cast<uint32_t>(std::max<int64_t>(df, 0));
      if (std::optional<std::size_t> len = probe_(t)) {
        stats.list_built = true;
        stats.list_length = *len;
      } else {
        // A term's list holds the distinct phrases co-occurring with it,
        // bounded by the total phrase occurrences across docs(term).
        stats.list_built = false;
        stats.list_length = static_cast<std::size_t>(std::min<double>(
            static_cast<double>(engine_->dict().size()),
            static_cast<double>(stats.df) * gathered.avg_doc_phrases));
      }
      gathered.terms.push_back(stats);
    }
    return gathered;
  });
  return PlanFromInputs(inputs, options_);
}

PlanDecision CostPlanner::PlanFromInputs(const PlannerInputs& inputs,
                                         const PlannerOptions& options) {
  PlanDecision decision;
  decision.op = inputs.op;
  decision.k = inputs.k;
  decision.terms = inputs.terms;

  // --- Sub-collection estimate (Eq. 2) -------------------------------------
  // AND uses exponential-backoff selectivity (exponents 1, 1/2, 1/4, ...
  // over ascending selectivities): query terms are topically correlated,
  // so plain independence multiplication collapses every multi-term
  // estimate toward zero and would mis-route everything to Exact.
  const double n = static_cast<double>(inputs.num_docs);
  double est = 0.0;
  bool has_zero_df = false;
  if (inputs.op == QueryOperator::kAnd) {
    std::vector<double> selectivities;
    selectivities.reserve(inputs.terms.size());
    for (const TermPlanStats& t : inputs.terms) {
      if (t.df == 0) has_zero_df = true;
      selectivities.push_back(n == 0.0 ? 0.0
                                       : static_cast<double>(t.df) / n);
    }
    std::sort(selectivities.begin(), selectivities.end());
    est = n;
    double exponent = 1.0;
    for (double s : selectivities) {
      est *= std::pow(s, exponent);
      exponent *= 0.5;
    }
    if (has_zero_df) est = 0.0;
    if (!has_zero_df && !inputs.terms.empty() && est < 1.0) est = 1.0;
  } else {
    for (const TermPlanStats& t : inputs.terms) {
      est += static_cast<double>(t.df);
    }
    est = std::min(est, n);
  }
  decision.estimated_subcollection = static_cast<std::size_t>(std::llround(est));

  // --- Degenerate and exact-only cases -------------------------------------
  if (inputs.terms.empty()) {
    decision.algorithm = Algorithm::kGm;
    decision.reason = "empty query: nothing to aggregate, GM returns fast";
    return decision;
  }
  if (inputs.op == QueryOperator::kAnd && has_zero_df) {
    if (inputs.updates_pending && options.allow_approximate) {
      // The (delta-corrected) df hit zero through updates; GM would mine
      // the base corpus and could serve a stale non-empty answer. SMJ
      // over the delta-corrected lists yields the true (empty) result.
      decision.algorithm = Algorithm::kSmj;
      decision.reason =
          "zero-df term under AND with pending updates: delta-corrected SMJ";
      return decision;
    }
    decision.algorithm = Algorithm::kGm;
    decision.reason = "empty subcollection (zero-df term under AND)";
    return decision;
  }
  if (!options.allow_approximate) {
    if (decision.estimated_subcollection <=
        options.exact_subcollection_threshold) {
      decision.algorithm = Algorithm::kExact;
      decision.reason = "approximation disallowed, tiny subcollection: Exact";
    } else {
      decision.algorithm = Algorithm::kGm;
      decision.reason = "approximation disallowed: GM (exact forward scan)";
    }
    return decision;
  }
  if (!inputs.updates_pending &&
      decision.estimated_subcollection <=
          options.exact_subcollection_threshold) {
    decision.algorithm = Algorithm::kExact;
    decision.reason = "tiny subcollection: exact forward scan is cheapest";
    return decision;
  }

  // --- Cost model over {GM, NRA, SMJ} --------------------------------------
  double total_list_entries = 0.0;
  double build_charge = 0.0;
  for (const TermPlanStats& t : inputs.terms) {
    total_list_entries += static_cast<double>(t.list_length);
    if (!t.list_built) {
      // Building scans the forward lists of docs(term).
      build_charge += static_cast<double>(t.df) * inputs.avg_doc_phrases *
                      options.build_amortization;
    }
  }
  const double or_factor =
      inputs.op == QueryOperator::kOr ? options.or_overhead : 1.0;
  const double traversal =
      std::min(1.0, options.nra_traversal_fraction +
                        options.nra_k_penalty * static_cast<double>(inputs.k));

  const double cost_gm =
      est * inputs.avg_doc_phrases * options.gm_entry_cost;
  const double cost_nra = options.nra_fixed_cost +
                          total_list_entries * traversal *
                              options.nra_entry_cost * or_factor +
                          build_charge;
  const double cost_smj = options.smj_fixed_cost +
                          total_list_entries * options.smj_entry_cost *
                              or_factor +
                          build_charge;

  // GM mines the base corpus; with an unrebuilt overlay it would serve
  // stale answers, so the argmin is then restricted to NRA/SMJ.
  if (!inputs.updates_pending) {
    decision.estimated_costs.emplace_back(Algorithm::kGm, cost_gm);
  }
  decision.estimated_costs.emplace_back(Algorithm::kNra, cost_nra);
  decision.estimated_costs.emplace_back(Algorithm::kSmj, cost_smj);
  decision.algorithm = decision.estimated_costs.front().first;
  double best = decision.estimated_costs.front().second;
  for (const auto& [algorithm, cost] : decision.estimated_costs) {
    if (cost < best) {
      decision.algorithm = algorithm;
      best = cost;
    }
  }
  decision.reason = std::string("cost: ") +
                    AlgorithmName(decision.algorithm) + " cheapest (" +
                    FormatCost(best) + ")";
  if (inputs.updates_pending) {
    decision.reason += ", pending updates restrict to delta-corrected methods";
  }
  return decision;
}

}  // namespace phrasemine
