#include "service/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace phrasemine {

namespace {

/// Appends "name=1.2e+04" style cost renderings to the reason line.
std::string FormatCost(double cost) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", cost);
  return buf;
}

}  // namespace

std::string PlanDecision::ToString() const {
  std::string out = AlgorithmName(algorithm);
  out += " (";
  out += QueryOperatorName(op);
  char buf[96];
  std::snprintf(buf, sizeof(buf), ", r=%zu, k=%zu, |D'|~%zu", terms.size(), k,
                estimated_subcollection);
  out += buf;
  out += "): ";
  out += reason;
  if (!estimated_costs.empty()) {
    out += " [";
    for (std::size_t i = 0; i < estimated_costs.size(); ++i) {
      if (i > 0) out += ", ";
      out += AlgorithmName(estimated_costs[i].first);
      out += "=";
      out += FormatCost(estimated_costs[i].second);
    }
    out += "]";
  }
  return out;
}

CostPlanner::CostPlanner(const MiningEngine* engine, PlannerOptions options,
                         ListProbe probe)
    : engine_(engine), options_(options), probe_(std::move(probe)) {
  if (!probe_) {
    probe_ = [engine](TermId term) -> std::optional<std::size_t> {
      if (!engine->word_lists().Has(term)) return std::nullopt;
      return engine->word_lists().list(term).size();
    };
  }
  // Average forward-list length: each phrase contributes one entry to the
  // forward list of every document it occurs in, so the mean list length
  // is sum_p df(p) / |D|.
  const PhraseDictionary& dict = engine_->dict();
  uint64_t total_df = 0;
  for (PhraseId p = 0; p < dict.size(); ++p) total_df += dict.df(p);
  const std::size_t num_docs = engine_->corpus().size();
  avg_doc_phrases_ =
      num_docs == 0 ? 0.0 : static_cast<double>(total_df) / num_docs;
}

PlanDecision CostPlanner::Plan(const Query& query,
                               const MineOptions& options) const {
  PlannerInputs inputs;
  inputs.num_docs = engine_->corpus().size();
  inputs.avg_doc_phrases = avg_doc_phrases_;
  inputs.op = query.op;
  inputs.k = options.k;
  inputs.terms.reserve(query.terms.size());
  for (TermId t : query.terms) {
    TermPlanStats stats;
    stats.term = t;
    stats.df = engine_->inverted().df(t);
    if (std::optional<std::size_t> len = probe_(t)) {
      stats.list_built = true;
      stats.list_length = *len;
    } else {
      // A term's list holds the distinct phrases co-occurring with it,
      // bounded by the total phrase occurrences across docs(term).
      stats.list_built = false;
      stats.list_length = static_cast<std::size_t>(std::min<double>(
          static_cast<double>(engine_->dict().size()),
          static_cast<double>(stats.df) * inputs.avg_doc_phrases));
    }
    inputs.terms.push_back(stats);
  }
  return PlanFromInputs(inputs, options_);
}

PlanDecision CostPlanner::PlanFromInputs(const PlannerInputs& inputs,
                                         const PlannerOptions& options) {
  PlanDecision decision;
  decision.op = inputs.op;
  decision.k = inputs.k;
  decision.terms = inputs.terms;

  // --- Sub-collection estimate (Eq. 2) -------------------------------------
  // AND uses exponential-backoff selectivity (exponents 1, 1/2, 1/4, ...
  // over ascending selectivities): query terms are topically correlated,
  // so plain independence multiplication collapses every multi-term
  // estimate toward zero and would mis-route everything to Exact.
  const double n = static_cast<double>(inputs.num_docs);
  double est = 0.0;
  bool has_zero_df = false;
  if (inputs.op == QueryOperator::kAnd) {
    std::vector<double> selectivities;
    selectivities.reserve(inputs.terms.size());
    for (const TermPlanStats& t : inputs.terms) {
      if (t.df == 0) has_zero_df = true;
      selectivities.push_back(n == 0.0 ? 0.0
                                       : static_cast<double>(t.df) / n);
    }
    std::sort(selectivities.begin(), selectivities.end());
    est = n;
    double exponent = 1.0;
    for (double s : selectivities) {
      est *= std::pow(s, exponent);
      exponent *= 0.5;
    }
    if (has_zero_df) est = 0.0;
    if (!has_zero_df && !inputs.terms.empty() && est < 1.0) est = 1.0;
  } else {
    for (const TermPlanStats& t : inputs.terms) {
      est += static_cast<double>(t.df);
    }
    est = std::min(est, n);
  }
  decision.estimated_subcollection = static_cast<std::size_t>(std::llround(est));

  // --- Degenerate and exact-only cases -------------------------------------
  if (inputs.terms.empty()) {
    decision.algorithm = Algorithm::kGm;
    decision.reason = "empty query: nothing to aggregate, GM returns fast";
    return decision;
  }
  if (inputs.op == QueryOperator::kAnd && has_zero_df) {
    decision.algorithm = Algorithm::kGm;
    decision.reason = "empty subcollection (zero-df term under AND)";
    return decision;
  }
  if (!options.allow_approximate) {
    if (decision.estimated_subcollection <=
        options.exact_subcollection_threshold) {
      decision.algorithm = Algorithm::kExact;
      decision.reason = "approximation disallowed, tiny subcollection: Exact";
    } else {
      decision.algorithm = Algorithm::kGm;
      decision.reason = "approximation disallowed: GM (exact forward scan)";
    }
    return decision;
  }
  if (decision.estimated_subcollection <=
      options.exact_subcollection_threshold) {
    decision.algorithm = Algorithm::kExact;
    decision.reason = "tiny subcollection: exact forward scan is cheapest";
    return decision;
  }

  // --- Cost model over {GM, NRA, SMJ} --------------------------------------
  double total_list_entries = 0.0;
  double build_charge = 0.0;
  for (const TermPlanStats& t : inputs.terms) {
    total_list_entries += static_cast<double>(t.list_length);
    if (!t.list_built) {
      // Building scans the forward lists of docs(term).
      build_charge += static_cast<double>(t.df) * inputs.avg_doc_phrases *
                      options.build_amortization;
    }
  }
  const double or_factor =
      inputs.op == QueryOperator::kOr ? options.or_overhead : 1.0;
  const double traversal =
      std::min(1.0, options.nra_traversal_fraction +
                        options.nra_k_penalty * static_cast<double>(inputs.k));

  const double cost_gm =
      est * inputs.avg_doc_phrases * options.gm_entry_cost;
  const double cost_nra = options.nra_fixed_cost +
                          total_list_entries * traversal *
                              options.nra_entry_cost * or_factor +
                          build_charge;
  const double cost_smj = options.smj_fixed_cost +
                          total_list_entries * options.smj_entry_cost *
                              or_factor +
                          build_charge;

  decision.estimated_costs = {{Algorithm::kGm, cost_gm},
                              {Algorithm::kNra, cost_nra},
                              {Algorithm::kSmj, cost_smj}};
  decision.algorithm = Algorithm::kGm;
  double best = cost_gm;
  if (cost_nra < best) {
    decision.algorithm = Algorithm::kNra;
    best = cost_nra;
  }
  if (cost_smj < best) {
    decision.algorithm = Algorithm::kSmj;
    best = cost_smj;
  }
  decision.reason = std::string("cost: ") +
                    AlgorithmName(decision.algorithm) + " cheapest (" +
                    FormatCost(best) + ")";
  return decision;
}

}  // namespace phrasemine
