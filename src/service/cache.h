#ifndef PHRASEMINE_SERVICE_CACHE_H_
#define PHRASEMINE_SERVICE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/miner.h"
#include "core/query.h"
#include "obs/metrics.h"

namespace phrasemine {

/// Aggregated counters of a ShardedLruCache (summed over shards).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t capacity_bytes = 0;

  double HitRate() const {
    const uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

/// Renders "hits=... misses=... hit_rate=..%" for logs and benchmarks.
std::string FormatCacheStats(const CacheStats& stats);

/// Returns `query` with terms sorted and deduplicated. Phrase mining is
/// defined over term *sets* (Section 3), so canonicalizing makes every
/// spelling of the same set share one cache entry and one deterministic
/// execution order.
Query CanonicalizeQuery(const Query& query);

/// Cache key for a full MineResult: canonicalized query terms + operator +
/// algorithm + every MineOptions knob that affects the ranked output.
/// `smj_fraction` is the construction fraction of the id-ordered lists the
/// mine will run on -- it determines kSmj output (MineOptions::list_fraction
/// is ignored there) and must be part of the key; pass the default for
/// algorithms that do not read it. `epoch` is the engine update epoch the
/// result is valid for: stamping it into the key makes an Ingest
/// atomically unreachable-invalidate every stale entry without a global
/// flush (old-epoch entries age out of the LRU). Queries carrying a
/// caller-supplied delta overlay must not be cached (that overlay is
/// external mutable state); PhraseService skips the cache for those.
/// `shard_epochs` is the composite epoch vector of a ShardedEngine mine:
/// the full vector enters the key (two different vectors can share one
/// epoch sum, so the scalar alone would alias distinct freshness states);
/// leave it empty for single-engine results.
std::string ResultCacheKey(const Query& canonical_query, Algorithm algorithm,
                           const MineOptions& options,
                           double smj_fraction = -1.0, uint64_t epoch = 0,
                           std::span<const uint64_t> shard_epochs = {});

/// A fixed-capacity LRU cache split into independently locked shards, so
/// concurrent queries on different keys rarely contend. Capacity is
/// byte-based: every Put carries an explicit charge and each shard evicts
/// from its own LRU tail once its slice of the budget is exceeded.
///
/// Value should be cheap to copy -- PhraseService stores shared_ptrs to
/// immutable results and word lists, so a Get hands out shared ownership
/// and an eviction never invalidates data a running query still uses.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// `num_shards` is clamped to at least 1; `capacity_bytes` is the total
  /// budget across all shards. When `registry` is non-null the cache also
  /// publishes its counters there under `metric_prefix` (hits/misses/
  /// inserts/evictions counters, entries/bytes gauges); the per-shard
  /// tallies behind stats() are unaffected either way.
  ShardedLruCache(std::size_t num_shards, std::size_t capacity_bytes,
                  MetricsRegistry* registry = nullptr,
                  const std::string& metric_prefix = "cache") {
    if (num_shards == 0) num_shards = 1;
    const std::size_t per_shard =
        std::max<std::size_t>(1, capacity_bytes / num_shards);
    shards_.reserve(num_shards);
    for (std::size_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(per_shard));
    }
    if (registry != nullptr) {
      hits_metric_ = registry->GetCounter(metric_prefix + "_hits_total");
      misses_metric_ = registry->GetCounter(metric_prefix + "_misses_total");
      inserts_metric_ = registry->GetCounter(metric_prefix + "_inserts_total");
      evictions_metric_ =
          registry->GetCounter(metric_prefix + "_evictions_total");
      entries_metric_ = registry->GetGauge(metric_prefix + "_entries");
      bytes_metric_ = registry->GetGauge(metric_prefix + "_bytes");
    }
  }

  /// Returns the value and marks the entry most-recently-used.
  std::optional<Value> Get(const Key& key) {
    Shard& s = shard(key);
    std::scoped_lock lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      ++s.misses;
      if (misses_metric_ != nullptr) misses_metric_->Increment();
      return std::nullopt;
    }
    ++s.hits;
    if (hits_metric_ != nullptr) hits_metric_->Increment();
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return it->second->value;
  }

  /// Inserts or refreshes an entry charged at `charge` bytes, then evicts
  /// least-recently-used entries until the shard fits its budget. A charge
  /// larger than the whole shard budget is still admitted (the shard then
  /// holds just that entry), so oversized results remain cacheable.
  void Put(const Key& key, Value value, std::size_t charge) {
    Shard& s = shard(key);
    std::scoped_lock lock(s.mu);
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      s.bytes -= it->second->charge;
      if (bytes_metric_ != nullptr) {
        bytes_metric_->Add(static_cast<int64_t>(charge) -
                           static_cast<int64_t>(it->second->charge));
      }
      it->second->value = std::move(value);
      it->second->charge = charge;
      s.bytes += charge;
      s.lru.splice(s.lru.begin(), s.lru, it->second);
    } else {
      s.lru.push_front(Entry{key, std::move(value), charge});
      s.map.emplace(key, s.lru.begin());
      s.bytes += charge;
      ++s.inserts;
      if (inserts_metric_ != nullptr) inserts_metric_->Increment();
      if (entries_metric_ != nullptr) entries_metric_->Add(1);
      if (bytes_metric_ != nullptr) {
        bytes_metric_->Add(static_cast<int64_t>(charge));
      }
    }
    while (s.bytes > s.capacity && s.lru.size() > 1) {
      const Entry& victim = s.lru.back();
      s.bytes -= victim.charge;
      ++s.evictions;
      if (evictions_metric_ != nullptr) evictions_metric_->Increment();
      if (entries_metric_ != nullptr) entries_metric_->Add(-1);
      if (bytes_metric_ != nullptr) {
        bytes_metric_->Add(-static_cast<int64_t>(victim.charge));
      }
      s.map.erase(victim.key);
      s.lru.pop_back();
    }
  }

  /// Peeks for presence without touching LRU order or hit counters.
  bool Contains(const Key& key) const {
    const Shard& s = shard(key);
    std::scoped_lock lock(s.mu);
    return s.map.contains(key);
  }

  /// Returns the value without touching LRU order or hit/miss counters.
  /// Used by the planner to probe list availability without polluting the
  /// serving hit rate.
  std::optional<Value> Peek(const Key& key) const {
    const Shard& s = shard(key);
    std::scoped_lock lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return std::nullopt;
    return it->second->value;
  }

  /// Drops every entry; counters are kept.
  void Clear() {
    for (auto& s : shards_) {
      std::scoped_lock lock(s->mu);
      if (entries_metric_ != nullptr) {
        entries_metric_->Add(-static_cast<int64_t>(s->map.size()));
      }
      if (bytes_metric_ != nullptr) {
        bytes_metric_->Add(-static_cast<int64_t>(s->bytes));
      }
      s->map.clear();
      s->lru.clear();
      s->bytes = 0;
    }
  }

  CacheStats stats() const {
    CacheStats total;
    for (const auto& s : shards_) {
      std::scoped_lock lock(s->mu);
      total.hits += s->hits;
      total.misses += s->misses;
      total.inserts += s->inserts;
      total.evictions += s->evictions;
      total.entries += s->map.size();
      total.bytes += s->bytes;
      total.capacity_bytes += s->capacity;
    }
    return total;
  }

  std::size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    Key key;
    Value value;
    std::size_t charge;
  };

  struct Shard {
    explicit Shard(std::size_t capacity_bytes) : capacity(capacity_bytes) {}

    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> map;
    std::size_t capacity;
    std::size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
  };

  Shard& shard(const Key& key) {
    return *shards_[hash_(key) % shards_.size()];
  }
  const Shard& shard(const Key& key) const {
    return *shards_[hash_(key) % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  Hash hash_;
  // Optional registry handles (all null when no registry was given).
  Counter* hits_metric_ = nullptr;
  Counter* misses_metric_ = nullptr;
  Counter* inserts_metric_ = nullptr;
  Counter* evictions_metric_ = nullptr;
  Gauge* entries_metric_ = nullptr;
  Gauge* bytes_metric_ = nullptr;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_SERVICE_CACHE_H_
