#include "service/thread_pool.h"

#include <algorithm>
#include <utility>

namespace phrasemine {

ThreadPool::ThreadPool(ThreadPoolOptions options) : options_(options) {
  options_.num_threads = std::max<std::size_t>(1, options_.num_threads);
  options_.queue_capacity = std::max<std::size_t>(1, options_.queue_capacity);
  workers_.reserve(options_.num_threads);
  for (std::size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  return Enqueue(std::move(task), /*block=*/true);
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  return Enqueue(std::move(task), /*block=*/false);
}

bool ThreadPool::Enqueue(std::function<void()> task, bool block) {
  std::unique_lock lock(mu_);
  if (block) {
    not_full_.wait(lock, [this] {
      return shutdown_ || queue_.size() < options_.queue_capacity;
    });
  }
  if (shutdown_ || queue_.size() >= options_.queue_capacity) {
    ++stats_.rejected;
    return false;
  }
  queue_.push_back(std::move(task));
  ++stats_.submitted;
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queue_.size());
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      not_empty_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shut down and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    task();
    {
      std::scoped_lock lock(mu_);
      ++stats_.executed;
    }
  }
}

void ThreadPool::Shutdown() {
  // shutdown_mu_ serializes concurrent Shutdown callers so only one joins.
  std::scoped_lock shutdown_lock(shutdown_mu_);
  {
    std::scoped_lock lock(mu_);
    shutdown_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

std::size_t ThreadPool::queue_depth() const {
  std::scoped_lock lock(mu_);
  return queue_.size();
}

ThreadPoolStats ThreadPool::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace phrasemine
