#include "service/thread_pool.h"

#include <algorithm>
#include <utility>

#include "testing/failpoint.h"

namespace phrasemine {

ThreadPool::ThreadPool(ThreadPoolOptions options) : options_(options) {
  options_.num_threads = std::max<std::size_t>(1, options_.num_threads);
  options_.queue_capacity = std::max<std::size_t>(1, options_.queue_capacity);
  if (options_.registry == nullptr) {
    owned_registry_ = std::make_unique<MetricsRegistry>();
    registry_ = owned_registry_.get();
  } else {
    registry_ = options_.registry;
  }
  const std::string& p = options_.metric_prefix;
  submitted_ = registry_->GetCounter(p + "_submitted_total");
  executed_ = registry_->GetCounter(p + "_executed_total");
  rejected_ = registry_->GetCounter(p + "_rejected_total");
  depth_ = registry_->GetGauge(p + "_queue_depth");
  workers_.reserve(options_.num_threads);
  for (std::size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  return Enqueue(std::move(task), /*block=*/true);
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  return Enqueue(std::move(task), /*block=*/false);
}

bool ThreadPool::Enqueue(std::function<void()> task, bool block) {
  // Rejection-storm site: an armed error makes this submit fail exactly
  // like a full-queue TrySubmit, exercising every caller's rejection path.
  if (failpoint::Enabled() && !PM_FAILPOINT("pool.submit").ok()) {
    rejected_->Increment();
    return false;
  }
  std::unique_lock lock(mu_);
  if (block) {
    not_full_.wait(lock, [this] {
      return shutdown_ || queue_.size() < options_.queue_capacity;
    });
  }
  if (shutdown_ || queue_.size() >= options_.queue_capacity) {
    lock.unlock();
    rejected_->Increment();
    return false;
  }
  queue_.push_back(std::move(task));
  lock.unlock();
  submitted_->Increment();
  // The +1 feeds the gauge's high-water tracking: depth only rises here,
  // so the gauge max is the true peak queue depth.
  depth_->Add(1);
  not_empty_.notify_one();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      not_empty_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shut down and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    depth_->Add(-1);
    not_full_.notify_one();
    task();
    executed_->Increment();
  }
}

void ThreadPool::Shutdown() {
  // shutdown_mu_ serializes concurrent Shutdown callers so only one joins.
  std::scoped_lock shutdown_lock(shutdown_mu_);
  {
    std::scoped_lock lock(mu_);
    shutdown_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

std::size_t ThreadPool::queue_depth() const {
  std::scoped_lock lock(mu_);
  return queue_.size();
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats s;
  s.submitted = submitted_->Value();
  s.executed = executed_->Value();
  s.rejected = rejected_->Value();
  s.queue_depth =
      static_cast<std::size_t>(std::max<int64_t>(0, depth_->Value()));
  s.peak_queue_depth = static_cast<std::size_t>(depth_->Max());
  return s;
}

}  // namespace phrasemine
