#include "service/service.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/stopwatch.h"
#include "core/nra_miner.h"
#include "core/smj_miner.h"

namespace phrasemine {

namespace {

/// Approximate bytes a cached result pins in memory.
std::size_t ResultCharge(const std::string& key,
                         const PhraseService::CachedResult& cached) {
  std::size_t bytes = key.size() + sizeof(PhraseService::CachedResult) +
                      cached.result.phrases.size() * sizeof(MinedPhrase) +
                      cached.result.shard_epochs.size() * sizeof(uint64_t) +
                      64;
  for (const std::string& text : cached.texts) bytes += text.size() + 16;
  return bytes;
}

/// Latency sample in whole microseconds (the unit service_latency_us
/// records in); sub-microsecond samples land in the histogram's first
/// bucket rather than vanishing.
uint64_t LatencyMicros(double latency_ms) {
  return static_cast<uint64_t>(std::max(1.0, latency_ms * 1000.0 + 0.5));
}

/// Injects the service's registry into the pool options (the pool then
/// publishes pool_* metrics alongside the service's own).
ThreadPoolOptions PoolOptionsWith(ThreadPoolOptions options,
                                  MetricsRegistry* registry) {
  options.registry = registry;
  return options;
}

}  // namespace

std::string ServiceStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "queries=%llu (planned=%llu forced=%llu) p50=%.3fms "
                "p95=%.3fms",
                static_cast<unsigned long long>(queries),
                static_cast<unsigned long long>(planned),
                static_cast<unsigned long long>(forced), p50_latency_ms,
                p95_latency_ms);
  std::string out = buf;
  std::snprintf(buf, sizeof(buf), " p99=%.3fms p999=%.3fms", p99_latency_ms,
                p999_latency_ms);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "\n  updates: epoch=%llu ingests=%llu rebuilds=%llu "
                "pending=%zu delta=%.1f%%",
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(ingests),
                static_cast<unsigned long long>(rebuilds),
                update.pending_updates, 100.0 * update.delta_fraction);
  out += buf;
  if (shed > 0 || deadline_exceeded > 0) {
    std::snprintf(buf, sizeof(buf),
                  "\n  robustness: shed=%llu deadline_exceeded=%llu",
                  static_cast<unsigned long long>(shed),
                  static_cast<unsigned long long>(deadline_exceeded));
    out += buf;
  }
  if (placement_refreshes > 0) {
    std::snprintf(buf, sizeof(buf), " placement_refreshes=%llu",
                  static_cast<unsigned long long>(placement_refreshes));
    out += buf;
  }
  out += "\n  per-algorithm:";
  for (std::size_t i = 0; i < per_algorithm.size(); ++i) {
    if (per_algorithm[i] == 0) continue;
    std::snprintf(buf, sizeof(buf), " %s=%llu",
                  AlgorithmName(static_cast<Algorithm>(i)),
                  static_cast<unsigned long long>(per_algorithm[i]));
    out += buf;
  }
  if (disk_io.blocks_read > 0 || disk_io.bytes > 0) {
    std::snprintf(buf, sizeof(buf),
                  "\n  disk tier: blocks=%llu seeks=%llu bytes=%llu",
                  static_cast<unsigned long long>(disk_io.blocks_read),
                  static_cast<unsigned long long>(disk_io.seeks),
                  static_cast<unsigned long long>(disk_io.bytes));
    out += buf;
  }
  out += "\n  result cache: " + FormatCacheStats(result_cache);
  out += "\n  word-list cache: " + FormatCacheStats(word_list_cache);
  std::snprintf(buf, sizeof(buf),
                "\n  pool: submitted=%llu executed=%llu rejected=%llu "
                "peak_queue=%zu",
                static_cast<unsigned long long>(pool.submitted),
                static_cast<unsigned long long>(pool.executed),
                static_cast<unsigned long long>(pool.rejected),
                pool.peak_queue_depth);
  out += buf;
  return out;
}

PhraseService::PhraseService(MiningEngine* engine,
                             PhraseServiceOptions options)
    : engine_(engine),
      options_(options),
      smj_fraction_(options.smj_fraction.value_or(engine->smj_fraction())),
      planner_(engine, options.planner,
               // Probe the service's own cache so planning never races
               // with engine-internal merges. With the cache disabled the
               // probe conservatively reports "not built".
               [this](TermId term) -> std::optional<std::size_t> {
                 if (!options_.enable_word_list_cache) return std::nullopt;
                 const uint64_t generation = engine_->list_generation();
                 if (auto entry =
                         word_list_cache_.Peek(ScoreListKey(term, generation))) {
                   return entry->list->size();
                 }
                 return std::nullopt;
               }),
      result_cache_(options.result_cache_shards, options.result_cache_bytes,
                    &registry_, "result_cache"),
      word_list_cache_(options.word_list_cache_shards,
                       options.word_list_cache_bytes, &registry_,
                       "word_list_cache"),
      pool_(PoolOptionsWith(options.pool, &registry_)) {
  if (options_.num_shards > 0) {
    // The num_shards config switch: reshard the engine's base corpus into
    // an internal ShardedEngine (one corpus copy + shard index build) and
    // serve every query through the scatter-gather path.
    ShardedEngineOptions sharded_options;
    sharded_options.num_shards = options_.num_shards;
    // A disk tier configured on the engine survives the reshard:
    // ShardedEngine::Build merges the embedded engine options' tier
    // into the fleet-level switches.
    sharded_options.engine = engine_->options();
    owned_sharded_ = std::make_unique<ShardedEngine>(ShardedEngine::Build(
        engine_->CloneBaseCorpus(), std::move(sharded_options)));
    sharded_ = owned_sharded_.get();
  }
  InitMetrics();
}

PhraseService::PhraseService(ShardedEngine* sharded,
                             PhraseServiceOptions options)
    : engine_(&sharded->shard(0)),
      options_(options),
      sharded_(sharded),
      smj_fraction_(1.0),  // sharded SMJ always merges full lists
      planner_(engine_, options.planner),
      result_cache_(options.result_cache_shards, options.result_cache_bytes,
                    &registry_, "result_cache"),
      word_list_cache_(options.word_list_cache_shards,
                       options.word_list_cache_bytes, &registry_,
                       "word_list_cache"),
      pool_(PoolOptionsWith(options.pool, &registry_)) {
  InitMetrics();
}

void PhraseService::InitMetrics() {
  queries_total_ = registry_.GetCounter("service_queries_total");
  planned_total_ = registry_.GetCounter("service_planned_total");
  forced_total_ = registry_.GetCounter("service_forced_total");
  ingests_total_ = registry_.GetCounter("service_ingests_total");
  rebuilds_total_ = registry_.GetCounter("service_rebuilds_total");
  slow_queries_total_ = registry_.GetCounter("service_slow_queries_total");
  placement_refreshes_total_ =
      registry_.GetCounter("service_placement_refreshes_total");
  shed_total_ = registry_.GetCounter("service_shed_total");
  deadline_exceeded_total_ =
      registry_.GetCounter("service_deadline_exceeded_total");
  admission_depth_ = registry_.GetGauge("service_admission_queue_depth");
  for (std::size_t i = 0; i < algorithm_total_.size(); ++i) {
    algorithm_total_[i] = registry_.GetCounter(
        std::string("service_executions_total{algorithm=\"") +
        AlgorithmName(static_cast<Algorithm>(i)) + "\"}");
  }
  disk_blocks_total_ = registry_.GetCounter("disk_blocks_total");
  disk_seeks_total_ = registry_.GetCounter("disk_seeks_total");
  disk_bytes_total_ = registry_.GetCounter("disk_bytes_total");
  exchange_pruned_total_ =
      registry_.GetCounter("exchange_candidates_pruned_total");
  fill_slots_total_ = registry_.GetCounter("exchange_fill_slots_total");
  latency_us_ = registry_.GetHistogram("service_latency_us");
  if (sharded_ != nullptr) {
    const std::size_t n = sharded_->num_shards();
    shard_disk_blocks_.reserve(n);
    shard_disk_seeks_.reserve(n);
    shard_disk_bytes_.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
      shard_disk_blocks_.push_back(
          registry_.GetCounter("shard_disk_blocks_total" + label));
      shard_disk_seeks_.push_back(
          registry_.GetCounter("shard_disk_seeks_total" + label));
      shard_disk_bytes_.push_back(
          registry_.GetCounter("shard_disk_bytes_total" + label));
    }
  }
}

PhraseService::~PhraseService() { Shutdown(); }

void PhraseService::Shutdown() { pool_.Shutdown(); }

std::future<ServiceReply> PhraseService::Submit(ServiceRequest request) {
  auto state = std::make_shared<std::promise<ServiceReply>>();
  std::future<ServiceReply> future = state->get_future();
  // Materialize the deadline at submit time so queue wait counts against
  // it -- a DeadlineExceeded reply then reflects user-perceived time, not
  // just execution time.
  if (request.cancel == nullptr && request.deadline_ms > 0.0) {
    request.cancel = std::make_shared<CancelToken>(
        CancelToken::AfterMillis(request.deadline_ms));
  }
  if (Status shed = AdmissionCheck(request); !shed.ok()) {
    shed_total_->Increment();
    ServiceReply reply;
    reply.status = std::move(shed);
    state->set_value(std::move(reply));
    return future;
  }
  const bool accepted = pool_.Submit([this, state, request] {
    try {
      state->set_value(Execute(request));
    } catch (...) {
      state->set_exception(std::current_exception());
    }
  });
  if (!accepted) {
    // The pool's contract: false means the task will NEVER run, so the
    // promise is ours to resolve -- with a typed error, not inline
    // execution (a shut-down service stops doing work). shutting_down()
    // is racy by design; the worst case is a rejection storm during
    // shutdown reporting Unavailable, which is still a typed refusal.
    shed_total_->Increment();
    ServiceReply reply;
    reply.status = pool_.shutting_down()
                       ? Status::Unavailable("service is shut down")
                       : Status::ResourceExhausted(
                             "thread pool rejected the submission");
    state->set_value(std::move(reply));
  }
  return future;
}

std::vector<std::future<ServiceReply>> PhraseService::SubmitBatch(
    std::vector<ServiceRequest> requests) {
  std::vector<std::future<ServiceReply>> futures;
  futures.reserve(requests.size());
  for (ServiceRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  return futures;
}

ServiceReply PhraseService::MineSync(const ServiceRequest& request) {
  // Same deadline materialization as Submit, minus admission control (the
  // caller runs on their own thread; there is no queue to shed from).
  if (request.cancel == nullptr && request.deadline_ms > 0.0) {
    ServiceRequest timed = request;
    timed.cancel = std::make_shared<CancelToken>(
        CancelToken::AfterMillis(request.deadline_ms));
    return Execute(timed);
  }
  return Execute(request);
}

Status PhraseService::AdmissionCheck(const ServiceRequest& request) {
  const AdmissionOptions& adm = options_.admission;
  if (adm.max_queue_depth == 0) return Status::OK();
  const std::size_t depth = pool_.queue_depth();
  // Sampled at every gate decision; the gauge's Max() is the high-water
  // depth the shed decisions actually saw.
  admission_depth_->Set(static_cast<int64_t>(depth));
  if (depth >= adm.max_queue_depth) {
    return Status::ResourceExhausted(
        "admission queue full (depth " + std::to_string(depth) +
        " >= bound " + std::to_string(adm.max_queue_depth) + ")");
  }
  if (!adm.cost_gate || request.cancel == nullptr ||
      !request.cancel->has_deadline()) {
    return Status::OK();
  }
  const double remaining = request.cancel->remaining_ms();
  if (remaining <= 0.0) {
    return Status::ResourceExhausted("deadline already expired at admission");
  }
  const double ewma_ms =
      static_cast<double>(ewma_latency_us_.load(std::memory_order_relaxed)) /
      1000.0;
  if (ewma_ms <= 0.0) return Status::OK();  // no latency signal yet: admit
  double exec_ms = ewma_ms;
  if (adm.cost_to_ms > 0.0 && sharded_ == nullptr &&
      !request.algorithm.has_value()) {
    // One extra (cheap, list-build-free) planning pass converts the cost
    // model's entry estimate into milliseconds; the measured EWMA stays
    // the floor so a mistuned cost_to_ms can only shed earlier, not admit
    // queries the observed latency already rules out.
    const Query canonical = CanonicalizeQuery(request.query);
    const PlanDecision decision =
        planner_.Plan(canonical, request.options, engine_->delta_snapshot());
    for (const auto& [algorithm, cost] : decision.estimated_costs) {
      if (algorithm == decision.algorithm) {
        exec_ms = std::max(exec_ms, cost * adm.cost_to_ms);
        break;
      }
    }
  }
  const double wait_ms = static_cast<double>(depth) * ewma_ms /
                         static_cast<double>(pool_.num_threads());
  if (wait_ms + exec_ms > remaining) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "hopeless under deadline: projected %.1fms wait + %.1fms "
                  "execute > %.1fms remaining",
                  wait_ms, exec_ms, remaining);
    return Status::ResourceExhausted(buf);
  }
  return Status::OK();
}

Status PhraseService::ValidateRequest(const Query& canonical,
                                      const MineOptions& options) {
  if (canonical.terms.empty()) {
    return Status::InvalidArgument("query has no terms");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  return Status::OK();
}

ServiceReply PhraseService::Execute(const ServiceRequest& request) {
  if (sharded_ != nullptr) return ExecuteSharded(request);
  StopWatch watch;
  ServiceReply reply;
  // The request's span tree hangs off the reply, never the cached result;
  // every layer below holds a TraceSpan* that is null when tracing is off
  // (the null-safe helpers then do nothing -- no allocations).
  if (request.options.trace) {
    reply.trace = std::make_shared<TraceSpan>();
    reply.trace->name = "query";
  }
  TraceSpan* troot = reply.trace.get();
  const Query canonical = CanonicalizeQuery(request.query);
  if (Status invalid = ValidateRequest(canonical, request.options);
      !invalid.ok()) {
    reply.status = std::move(invalid);
    reply.latency_ms = watch.ElapsedMillis();
    if (troot != nullptr) troot->wall_ms = reply.latency_ms;
    return reply;
  }
  // Thread the request's token into the mine options every layer below
  // receives; the cache key serializer ignores the pointer, so deadline
  // and no-deadline spellings of a query share cache entries.
  MineOptions mine_options = request.options;
  if (request.cancel != nullptr) mine_options.cancel = request.cancel.get();
  if (CancelExpired(mine_options.cancel)) {
    deadline_exceeded_total_->Increment();
    reply.status =
        Status::DeadlineExceeded("deadline expired before execution");
    reply.latency_ms = watch.ElapsedMillis();
    if (troot != nullptr) troot->wall_ms = reply.latency_ms;
    return reply;
  }
  CountTermQueries(canonical);

  // One update snapshot per request: the epoch keys the result cache, the
  // generation keys the word lists, and the overlay delta-corrects the
  // mine. Fetched before planning so a racing Ingest can only move this
  // request to a *newer* epoch, never an older one.
  const EpochDelta snap = engine_->delta_snapshot();

  Algorithm algorithm;
  {
    TraceSpan* plan_span = AddSpan(troot, "plan");
    SpanTimer plan_timer(plan_span);
    if (request.algorithm.has_value()) {
      algorithm = *request.algorithm;
      reply.plan.algorithm = algorithm;
      reply.plan.op = canonical.op;
      reply.plan.k = mine_options.k;
      reply.plan.reason = "forced by caller";
    } else {
      reply.plan = planner_.Plan(canonical, mine_options, snap);
      algorithm = reply.plan.algorithm;
    }
    plan_timer.Stop();
    SetDetail(plan_span, reply.plan.ToString());
  }

  // Caller-supplied delta overlays are external mutable state and not
  // cacheable; the engine's own overlay is immutable per epoch, so its
  // results cache fine under the epoch-stamped key.
  const bool cacheable =
      options_.enable_result_cache && mine_options.delta == nullptr;
  std::string key;
  if (cacheable) {
    // kSmj output depends on the construction fraction of the id-ordered
    // lists it will run on: the service's resolved fraction for cached
    // bundles, the engine's current fraction when routed through Mine().
    double smj_fraction = -1.0;
    if (algorithm == Algorithm::kSmj) {
      smj_fraction = options_.enable_word_list_cache
                         ? smj_fraction_
                         : engine_->smj_fraction();
    }
    key = ResultCacheKey(canonical, algorithm, mine_options, smj_fraction,
                         snap.epoch);
    TraceSpan* cache_span = AddSpan(troot, "cache_lookup");
    SpanTimer cache_timer(cache_span);
    auto hit = result_cache_.Get(key);
    cache_timer.Stop();
    AddCounter(cache_span, "hit", hit.has_value() ? 1.0 : 0.0);
    if (hit) {
      reply.result = (*hit)->result;
      reply.epoch = reply.result.epoch;
      reply.result_cache_hit = true;
      reply.latency_ms = watch.ElapsedMillis();
      if (troot != nullptr) troot->wall_ms = reply.latency_ms;
      RecordQuery(algorithm, request.algorithm.has_value(),
                  /*executed=*/false, reply.latency_ms);
      MaybeLogSlowQuery(canonical, algorithm, reply);
      return reply;
    }
  }

  reply.result = Run(canonical, algorithm, mine_options, snap);
  // A non-OK mine (deadline fired mid-merge, disk tier latched an error)
  // surfaces on the reply; the partial result is accounting, not a
  // ranking, and must never be cached.
  reply.status = reply.result.status;
  if (reply.status.code() == StatusCode::kDeadlineExceeded) {
    deadline_exceeded_total_->Increment();
  }
  // Re-root the mine's trace under the request span and strip it from the
  // result: the result may be cached below, and a cached trace would
  // replay a stale execution story on every hit.
  if (troot != nullptr && reply.result.trace != nullptr) {
    troot->children.push_back(std::move(reply.result.trace));
  }
  reply.result.trace.reset();
  // Run stamps epoch and guarantee (bundle mines from the snapshot, engine
  // mines inside the engine); max() keeps the label truthful if an
  // engine-routed mine raced onto a newer epoch. A caller-supplied overlay
  // is external state the engine knows nothing about -- its results keep
  // epoch 0, matching the engine's own contract.
  if (mine_options.delta == nullptr) {
    reply.result.epoch = std::max(reply.result.epoch, snap.epoch);
  }
  reply.epoch = reply.result.epoch;
  if (cacheable && reply.status.ok()) {
    auto shared =
        std::make_shared<const CachedResult>(CachedResult{reply.result, {}});
    result_cache_.Put(key, shared, ResultCharge(key, *shared));
  }
  reply.latency_ms = watch.ElapsedMillis();
  if (troot != nullptr) troot->wall_ms = reply.latency_ms;
  RecordQuery(algorithm, request.algorithm.has_value(), /*executed=*/true,
              reply.latency_ms, reply.result.disk_io);
  MaybeLogSlowQuery(canonical, algorithm, reply);
  return reply;
}

ServiceReply PhraseService::ExecuteSharded(const ServiceRequest& request) {
  StopWatch watch;
  ServiceReply reply;
  if (request.options.trace) {
    reply.trace = std::make_shared<TraceSpan>();
    reply.trace->name = "query";
  }
  TraceSpan* troot = reply.trace.get();
  const Query canonical = CanonicalizeQuery(request.query);
  if (Status invalid = ValidateRequest(canonical, request.options);
      !invalid.ok()) {
    reply.status = std::move(invalid);
    reply.latency_ms = watch.ElapsedMillis();
    if (troot != nullptr) troot->wall_ms = reply.latency_ms;
    return reply;
  }
  // Caller-supplied overlays are a single-engine concept; the sharded
  // engine applies its own per-shard overlays internally (and would
  // refuse an external one). Drop it and say so rather than aborting.
  MineOptions effective = request.options;
  const bool caller_delta = effective.delta != nullptr;
  effective.delta = nullptr;
  // One shared token cancels every shard leg: the first leg observing the
  // deadline latches it, the siblings see the flag.
  if (request.cancel != nullptr) effective.cancel = request.cancel.get();
  if (CancelExpired(effective.cancel)) {
    deadline_exceeded_total_->Increment();
    reply.status =
        Status::DeadlineExceeded("deadline expired before execution");
    reply.latency_ms = watch.ElapsedMillis();
    if (troot != nullptr) troot->wall_ms = reply.latency_ms;
    return reply;
  }
  CountTermQueries(canonical);

  // The composite epoch vector plays the role the scalar snapshot epoch
  // plays on the single-engine path: fetched before planning, it keys the
  // result cache so an ingest to any shard strands that shard's stale
  // entries by unreachability. A mine racing onto a newer shard epoch only
  // moves the reply forward in freshness, same as the engine-routed path.
  const std::vector<uint64_t> epochs = sharded_->epochs();

  Algorithm algorithm;
  {
    TraceSpan* plan_span = AddSpan(troot, "plan");
    SpanTimer plan_timer(plan_span);
    if (request.algorithm.has_value()) {
      algorithm = *request.algorithm;
      reply.plan.algorithm = algorithm;
      reply.plan.op = canonical.op;
      reply.plan.k = effective.k;
      reply.plan.reason = "forced by caller";
    } else {
      // Per-shard inputs are gathered by the sharded engine under its
      // fleet lock -- the service must never cache per-shard planners,
      // which would dangle across a dictionary refresh.
      reply.plan = CostPlanner::PlanAcrossShards(
          sharded_->GatherPlannerInputs(canonical, effective),
          options_.planner);
      algorithm = reply.plan.algorithm;
    }
    if (caller_delta) {
      reply.plan.reason +=
          " (caller delta ignored: sharded engines apply per-shard overlays)";
    }
    plan_timer.Stop();
    SetDetail(plan_span, reply.plan.ToString());
  }

  const bool cacheable = options_.enable_result_cache && !caller_delta;
  std::string key;
  if (cacheable) {
    // Sharded SMJ always merges full lists, so its fraction is fixed 1.
    key = ResultCacheKey(canonical, algorithm, effective,
                         algorithm == Algorithm::kSmj ? 1.0 : -1.0,
                         /*epoch=*/0, epochs);
    TraceSpan* cache_span = AddSpan(troot, "cache_lookup");
    SpanTimer cache_timer(cache_span);
    auto hit = result_cache_.Get(key);
    cache_timer.Stop();
    AddCounter(cache_span, "hit", hit.has_value() ? 1.0 : 0.0);
    if (hit) {
      reply.result = (*hit)->result;
      reply.phrase_texts = (*hit)->texts;
      reply.epoch = reply.result.epoch;
      reply.result_cache_hit = true;
      reply.latency_ms = watch.ElapsedMillis();
      if (troot != nullptr) troot->wall_ms = reply.latency_ms;
      RecordQuery(algorithm, request.algorithm.has_value(),
                  /*executed=*/false, reply.latency_ms);
      MaybeLogSlowQuery(canonical, algorithm, reply);
      return reply;
    }
  }

  ShardedMineResult mined = sharded_->Mine(canonical, algorithm, effective);
  reply.result = std::move(mined.result);
  reply.phrase_texts = std::move(mined.texts);
  // A cancelled scatter-gather surfaces its status here; the partial
  // accounting it assembled is not a ranking and is never cached.
  reply.status = reply.result.status;
  if (reply.status.code() == StatusCode::kDeadlineExceeded) {
    deadline_exceeded_total_->Increment();
  }
  reply.epoch = reply.result.epoch;
  // Fleet-level registry counters: threshold-exchange effectiveness plus
  // the per-shard disk-tier split (the aggregate disk counters are
  // accumulated by RecordQuery below).
  exchange_pruned_total_->Add(reply.result.candidates_pruned);
  fill_slots_total_->Add(mined.fill_slots);
  for (std::size_t s = 0;
       s < mined.shard_disk_io.size() && s < shard_disk_blocks_.size(); ++s) {
    const DiskIoStats& io = mined.shard_disk_io[s];
    if (io.blocks_read == 0 && io.bytes == 0) continue;
    shard_disk_blocks_[s]->Add(io.blocks_read);
    shard_disk_seeks_[s]->Add(io.seeks);
    shard_disk_bytes_[s]->Add(io.bytes);
  }
  // Re-root the merge's trace under the request span and strip it from
  // the result before the cache sees it (a cached trace would replay a
  // stale execution story on every hit).
  if (troot != nullptr && reply.result.trace != nullptr) {
    troot->children.push_back(std::move(reply.result.trace));
  }
  reply.result.trace.reset();
  if (cacheable && reply.status.ok()) {
    auto shared = std::make_shared<const CachedResult>(
        CachedResult{reply.result, reply.phrase_texts});
    result_cache_.Put(key, shared, ResultCharge(key, *shared));
  }
  reply.latency_ms = watch.ElapsedMillis();
  if (troot != nullptr) troot->wall_ms = reply.latency_ms;
  RecordQuery(algorithm, request.algorithm.has_value(), /*executed=*/true,
              reply.latency_ms, reply.result.disk_io);
  MaybeLogSlowQuery(canonical, algorithm, reply);
  return reply;
}

MineResult PhraseService::Run(const Query& canonical, Algorithm algorithm,
                              const MineOptions& options, EpochDelta snap) {
  if (options_.enable_word_list_cache &&
      (algorithm == Algorithm::kNra || algorithm == Algorithm::kSmj)) {
    // The list-based serving algorithms mine per-query bundles assembled
    // from the sharded cache: no engine mutation, no global lock. Under a
    // pending overlay the miners delta-correct each entry at read time,
    // so cached lists stay valid across delta epochs. The loop restarts
    // with a fresh snapshot when a background rebuild swaps the structure
    // generation mid-assembly (GetOrBuild* then refuses to build, so a
    // new-generation list can never be cached under the old key).
    //
    // The miners receive engine_->dict() by reference but never read it
    // during Mine (scores come entirely from the bundle + overlay; the
    // overlay snapshots its base dfs at ingest). If a list miner ever
    // starts dereferencing the dictionary mid-mine, this lock-free path
    // must move under WithSharedStructures or pin the dictionary.
    for (;;) {
      MineOptions effective = options;
      if (effective.delta == nullptr && snap.delta != nullptr &&
          snap.delta->pending_updates() > 0) {
        effective.delta = snap.delta.get();
      }
      bool stale = false;
      MineResult result;
      if (algorithm == Algorithm::kNra) {
        WordScoreLists bundle;
        for (TermId t : canonical.terms) {
          SharedWordList list = GetOrBuildScoreList(t, snap.generation);
          if (list == nullptr) {
            stale = true;
            break;
          }
          bundle.Insert(t, std::move(list));
        }
        if (!stale) {
          NraMiner miner(bundle, engine_->dict());
          result = miner.Mine(canonical, effective);
        }
      } else {
        WordIdOrderedLists bundle(smj_fraction_);
        for (TermId t : canonical.terms) {
          CachedWordList cached = GetOrBuildIdList(t, snap.generation);
          if (cached.list == nullptr) {
            stale = true;
            break;
          }
          SharedWordList base = cached.list;
          SharedSoAList soa = std::move(cached.soa);
          if (effective.delta != nullptr) {
            // Overlay phrases whose co-occurrence with t became positive
            // purely through updates; without them SMJ loses its
            // exactness guarantee under inserts (Section 4.5.1). When the
            // overlay returns the base pointer untouched (no extras for
            // this term) the cached SoA view stays valid; otherwise the
            // bundle re-packs the overlaid run.
            SharedWordList overlaid =
                effective.delta->OverlayIdOrdered(t, base);
            if (overlaid != base) soa = nullptr;
            base = std::move(overlaid);
          }
          bundle.Insert(t, std::move(base), std::move(soa));
        }
        if (!stale) {
          SmjMiner miner(bundle, engine_->dict());
          result = miner.Mine(canonical, effective);
        }
      }
      if (!stale) {
        if (options.delta == nullptr) result.epoch = snap.epoch;
        result.guarantee = GuaranteeFor(algorithm, effective.delta != nullptr,
                                        smj_fraction_ >= 1.0);
        return result;
      }
      snap = engine_->delta_snapshot();
    }
  }
  MineOptions effective = options;
  if (effective.delta == nullptr && snap.delta != nullptr &&
      snap.delta->pending_updates() > 0) {
    effective.delta = snap.delta.get();
  }
  return engine_->Mine(canonical, algorithm, effective);
}

SharedWordList PhraseService::GetOrBuildScoreList(TermId term,
                                                  uint64_t generation) {
  const uint64_t key = ScoreListKey(term, generation);
  if (auto cached = word_list_cache_.Get(key)) return cached->list;
  // Two threads racing on the same cold term both build; the lists are
  // identical by construction, so the second Put is a harmless refresh.
  // The shared structure lock keeps a concurrent rebuild from swapping
  // the source indexes mid-build, and the generation check under that
  // lock keeps a list built from post-rebuild indexes from being cached
  // under the pre-rebuild key (nullptr tells the caller to refresh its
  // snapshot and retry).
  SharedWordList list =
      engine_->WithSharedStructures([&]() -> SharedWordList {
        if (engine_->list_generation() != generation) return nullptr;
        return WordScoreLists::BuildOne(engine_->inverted(),
                                        engine_->forward(), engine_->dict(),
                                        term);
      });
  if (list == nullptr) return nullptr;
  word_list_cache_.Put(key, CachedWordList{list, nullptr},
                       list->size() * kListEntryBytes + 64);
  return list;
}

PhraseService::CachedWordList PhraseService::GetOrBuildIdList(
    TermId term, uint64_t generation) {
  const uint64_t key = IdListKey(term, generation);
  if (auto cached = word_list_cache_.Get(key)) return *cached;
  SharedWordList score = GetOrBuildScoreList(term, generation);
  if (score == nullptr) return {};  // stale generation: caller retries
  const double fraction = std::clamp(smj_fraction_, 0.0, 1.0);
  const std::size_t prefix_len = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(score->size())));
  SharedWordList id_list = WordIdOrderedLists::IdOrderPrefix(
      std::span<const ListEntry>(*score).subspan(0, prefix_len));
  // The SoA kernel view is built once here and shared into every SMJ
  // bundle that hits this cache entry.
  auto soa = std::make_shared<const SoABlockList>(
      SoABlockList::FromIdOrdered(std::span<const ListEntry>(*id_list)));
  const CachedWordList entry{std::move(id_list), std::move(soa)};
  word_list_cache_.Put(key, entry,
                       entry.list->size() * kListEntryBytes +
                           entry.soa->MemoryBytes() + 64);
  return entry;
}

UpdateStats PhraseService::Ingest(UpdateDoc doc) {
  UpdateBatch batch;
  batch.inserts.push_back(std::move(doc));
  return IngestBatch(batch);
}

UpdateStats PhraseService::IngestBatch(const UpdateBatch& batch) {
  if (sharded_ != nullptr) {
    ShardedUpdateStats stats = sharded_->ApplyUpdate(batch);
    ingests_total_->Increment();
    if (stats.total.rebuild_recommended && options_.enable_auto_rebuild) {
      MaybeScheduleRebuild(std::move(stats.rebuild_recommended));
    }
    return stats.total;
  }
  const UpdateStats stats = engine_->ApplyUpdate(batch);
  ingests_total_->Increment();
  if (stats.rebuild_recommended && options_.enable_auto_rebuild) {
    MaybeScheduleRebuild();
  }
  return stats;
}

Result<uint64_t> PhraseService::Subscribe(const SubscriptionRequest& request) {
  std::scoped_lock lock(subscriptions_mu_);
  if (subscriptions_ == nullptr) {
    SubscriptionManagerOptions opts = options_.subscriptions;
    opts.metrics = &registry_;  // subscribe_* metrics live with service_*
    subscriptions_ =
        sharded_ != nullptr
            ? std::make_unique<SubscriptionManager>(sharded_, opts)
            : std::make_unique<SubscriptionManager>(engine_, opts);
    subscriptions_ptr_.store(subscriptions_.get(), std::memory_order_release);
  }
  return subscriptions_->Subscribe(request);
}

Status PhraseService::Unsubscribe(uint64_t subscription) {
  SubscriptionManager* manager = subscriptions();
  if (manager == nullptr) {
    return Status::NotFound("unknown subscription " +
                            std::to_string(subscription));
  }
  return manager->Unsubscribe(subscription);
}

Result<std::vector<SubscriptionUpdate>> PhraseService::PollSubscription(
    uint64_t subscription, std::size_t max_updates, double wait_ms) {
  SubscriptionManager* manager = subscriptions();
  if (manager == nullptr) {
    return Status::NotFound("unknown subscription " +
                            std::to_string(subscription));
  }
  return manager->Poll(subscription, max_updates, wait_ms);
}

Result<SubscriptionState> PhraseService::SubscriptionSnapshot(
    uint64_t subscription) const {
  SubscriptionManager* manager = subscriptions();
  if (manager == nullptr) {
    return Status::NotFound("unknown subscription " +
                            std::to_string(subscription));
  }
  return manager->Snapshot(subscription);
}

void PhraseService::MaybeScheduleRebuild(std::vector<uint8_t> shard_flags) {
  if (rebuild_inflight_.exchange(true)) return;
  auto rebuild = [this, flags = std::move(shard_flags)] {
    if (sharded_ != nullptr) {
      // Only the shards that crossed their threshold rebuild; each one
      // counts as one completed rebuild (that is the blast-radius story:
      // queries lose at most one shard's freshness at a time).
      for (std::size_t s = 0; s < flags.size(); ++s) {
        if (!flags[s]) continue;
        sharded_->RebuildShard(s);
        rebuilds_total_->Increment();
      }
    } else {
      engine_->Rebuild();
      rebuilds_total_->Increment();
    }
    rebuild_inflight_.store(false);
  };
  // Pool shut down: rebuild inline so the recommendation is not lost.
  if (!pool_.Submit(rebuild)) rebuild();
}

void PhraseService::CountTermQueries(const Query& canonical) {
  {
    // The handle map is tiny (distinct queried terms) and the critical
    // section is pointer lookups plus relaxed atomic adds; GetCounter is
    // find-or-create, so every term keeps one stable registry counter
    // under the labels-in-name convention.
    std::scoped_lock lock(term_counts_mu_);
    for (TermId t : canonical.terms) {
      Counter*& counter = term_counters_[t];
      if (counter == nullptr) {
        counter = registry_.GetCounter("service_term_queries_total{term=\"" +
                                       std::to_string(t) + "\"}");
      }
      counter->Increment();
    }
  }
  const std::size_t interval = options_.placement_refresh_interval;
  if (interval == 0) return;
  if (queries_since_refresh_.fetch_add(1, std::memory_order_relaxed) + 1 >=
      interval) {
    // Benign race: two threads crossing the boundary together both reset
    // and both refresh -- the second install sees an empty window and
    // keeps the placement, so the cadence never double-moves the tier.
    queries_since_refresh_.store(0, std::memory_order_relaxed);
    RefreshPlacement();
  }
}

bool PhraseService::RefreshPlacement() {
  auto observed = std::make_shared<TermPopularity>();
  {
    std::scoped_lock lock(term_counts_mu_);
    for (const auto& [term, counter] : term_counters_) {
      // Window counts: only demand since the previous refresh moves the
      // placement, so the tier tracks hot-set drift instead of being
      // anchored by stale cumulative history.
      const uint64_t total = counter->Value();
      const uint64_t installed = installed_counts_[term];
      if (total > installed) (*observed)[term] = total - installed;
    }
    if (observed->empty()) return false;  // no new traffic: keep placement
    for (const auto& [term, delta] : *observed) {
      installed_counts_[term] += delta;
    }
  }
  if (sharded_ != nullptr) {
    sharded_->SetTermPopularity(std::move(observed));
  } else {
    engine_->SetTermPopularity(std::move(observed));
  }
  placement_refreshes_total_->Increment();
  return true;
}

void PhraseService::RecordQuery(Algorithm algorithm, bool forced,
                                bool executed, double latency_ms,
                                const DiskIoStats& disk_io) {
  // Registry handles only: each update is a relaxed striped-atomic add,
  // so concurrent queries never serialize on a stats mutex here.
  queries_total_->Increment();
  (forced ? forced_total_ : planned_total_)->Increment();
  if (executed) {
    // EWMA of executed latency (alpha 1/8) for the admission cost gate;
    // the load/store race can drop an update, never corrupt the value.
    const uint64_t sample = LatencyMicros(latency_ms);
    const uint64_t old = ewma_latency_us_.load(std::memory_order_relaxed);
    ewma_latency_us_.store(old == 0 ? sample : (old * 7 + sample) / 8,
                           std::memory_order_relaxed);
    const auto index = static_cast<std::size_t>(algorithm);
    if (index < algorithm_total_.size()) algorithm_total_[index]->Increment();
    if (disk_io.blocks_read > 0 || disk_io.bytes > 0) {
      disk_blocks_total_->Add(disk_io.blocks_read);
      disk_seeks_total_->Add(disk_io.seeks);
      disk_bytes_total_->Add(disk_io.bytes);
    }
  }
  latency_us_->Record(LatencyMicros(latency_ms));
}

void PhraseService::MaybeLogSlowQuery(const Query& canonical,
                                      Algorithm algorithm,
                                      const ServiceReply& reply) {
  if (options_.slow_query_ms <= 0.0 ||
      reply.latency_ms < options_.slow_query_ms) {
    return;
  }
  slow_queries_total_->Increment();
  SlowQueryEntry entry;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s %s k=%zu terms=[",
                AlgorithmName(algorithm),
                canonical.op == QueryOperator::kAnd ? "AND" : "OR",
                reply.plan.k);
  entry.description = buf;
  for (std::size_t i = 0; i < canonical.terms.size(); ++i) {
    if (i > 0) entry.description += ',';
    entry.description += std::to_string(canonical.terms[i]);
  }
  entry.description += ']';
  if (reply.result_cache_hit) entry.description += " (cache hit)";
  entry.latency_ms = reply.latency_ms;
  if (reply.trace != nullptr) entry.explain = reply.trace->Explain();
  std::scoped_lock lock(slow_mu_);
  slow_log_.push_back(std::move(entry));
  while (slow_log_.size() > options_.slow_query_log_capacity) {
    slow_log_.pop_front();
  }
}

std::vector<PhraseService::SlowQueryEntry> PhraseService::slow_queries()
    const {
  std::scoped_lock lock(slow_mu_);
  return {slow_log_.begin(), slow_log_.end()};
}

ServiceStats PhraseService::stats() const {
  ServiceStats stats;
  // One registry snapshot is the single source for every counter the
  // service publishes; the struct is just a typed view over it.
  const MetricsSnapshot snap = registry_.Snapshot();
  stats.queries = snap.counter("service_queries_total");
  stats.planned = snap.counter("service_planned_total");
  stats.forced = snap.counter("service_forced_total");
  stats.ingests = snap.counter("service_ingests_total");
  stats.rebuilds = snap.counter("service_rebuilds_total");
  stats.placement_refreshes =
      snap.counter("service_placement_refreshes_total");
  stats.shed = snap.counter("service_shed_total");
  stats.deadline_exceeded = snap.counter("service_deadline_exceeded_total");
  for (std::size_t i = 0; i < stats.per_algorithm.size(); ++i) {
    stats.per_algorithm[i] = snap.counter(
        std::string("service_executions_total{algorithm=\"") +
        AlgorithmName(static_cast<Algorithm>(i)) + "\"}");
  }
  stats.disk_io.blocks_read = snap.counter("disk_blocks_total");
  stats.disk_io.seeks = snap.counter("disk_seeks_total");
  stats.disk_io.bytes = snap.counter("disk_bytes_total");
  if (const HistogramSnapshot* latency = snap.histogram("service_latency_us");
      latency != nullptr) {
    stats.p50_latency_ms = latency->Quantile(0.50) / 1000.0;
    stats.p95_latency_ms = latency->Quantile(0.95) / 1000.0;
    stats.p99_latency_ms = latency->Quantile(0.99) / 1000.0;
    stats.p999_latency_ms = latency->Quantile(0.999) / 1000.0;
  }
  if (sharded_ != nullptr) {
    stats.epoch = sharded_->epoch();
    stats.update = sharded_->update_stats();
  } else {
    stats.epoch = engine_->epoch();
    stats.update = engine_->update_stats();
  }
  stats.result_cache = result_cache_.stats();
  stats.word_list_cache = word_list_cache_.stats();
  stats.pool = pool_.stats();
  return stats;
}

}  // namespace phrasemine
