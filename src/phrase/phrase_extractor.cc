#include "phrase/phrase_extractor.h"

#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace phrasemine {

namespace {

/// Candidate counter with per-document dedupe: `last_doc` records the most
/// recent document that touched this candidate so repeats within one
/// document do not inflate the document frequency.
struct Candidate {
  uint32_t df = 0;
  DocId last_doc = kInvalidTermId;
};

uint64_t PairKey(PhraseId prefix, TermId next) {
  return (static_cast<uint64_t>(prefix) << 32) | next;
}

}  // namespace

PhraseExtractor::PhraseExtractor(PhraseExtractorOptions options)
    : options_(options) {
  PM_CHECK(options_.max_phrase_len >= 1);
  PM_CHECK(options_.min_df >= 1);
}

PhraseDictionary PhraseExtractor::Extract(const Corpus& corpus) const {
  PhraseDictionary dict;
  const std::size_t num_docs = corpus.size();

  // prev[d][i] = id of the frequent (level)-gram starting at position i of
  // document d, or kInvalidPhraseId. Level 0 bootstrap: "empty prefix" is
  // encoded by treating level 1 specially (keyed on the token itself).
  std::vector<std::vector<PhraseId>> prev(num_docs);

  // ---- Level 1: unigram document frequencies -------------------------------
  {
    std::unordered_map<TermId, Candidate> counts;
    for (DocId d = 0; d < num_docs; ++d) {
      for (TermId t : corpus.doc(d).tokens) {
        Candidate& c = counts[t];
        if (c.last_doc != d) {
          ++c.df;
          c.last_doc = d;
        }
      }
    }
    for (const auto& [term, cand] : counts) {
      if (cand.df >= options_.min_df) {
        dict.AddPhrase({term}, kInvalidPhraseId, cand.df);
      }
    }
    // Fill prev with level-1 ids.
    for (DocId d = 0; d < num_docs; ++d) {
      const std::vector<TermId>& tokens = corpus.doc(d).tokens;
      prev[d].resize(tokens.size());
      for (std::size_t i = 0; i < tokens.size(); ++i) {
        prev[d][i] = dict.Unigram(tokens[i]);
      }
    }
  }

  // ---- Levels 2..max: Apriori extension ------------------------------------
  for (std::size_t level = 2; level <= options_.max_phrase_len; ++level) {
    std::unordered_map<uint64_t, Candidate> counts;
    bool any_prefix = false;
    for (DocId d = 0; d < num_docs; ++d) {
      const std::vector<TermId>& tokens = corpus.doc(d).tokens;
      if (tokens.size() < level) continue;
      const std::size_t limit = tokens.size() - level + 1;
      for (std::size_t i = 0; i < limit; ++i) {
        const PhraseId prefix = prev[d][i];
        if (prefix == kInvalidPhraseId) continue;
        // The extending word must itself be frequent (Apriori on the suffix
        // unigram): a phrase containing an infrequent word cannot reach
        // min_df documents.
        const TermId next = tokens[i + level - 1];
        if (dict.Unigram(next) == kInvalidPhraseId) continue;
        any_prefix = true;
        Candidate& c = counts[PairKey(prefix, next)];
        if (c.last_doc != d) {
          ++c.df;
          c.last_doc = d;
        }
      }
    }
    if (!any_prefix) break;

    std::size_t created = 0;
    for (const auto& [key, cand] : counts) {
      if (cand.df < options_.min_df) continue;
      const PhraseId prefix = static_cast<PhraseId>(key >> 32);
      const TermId next = static_cast<TermId>(key & 0xFFFFFFFFu);
      std::vector<TermId> tokens = dict.info(prefix).tokens;
      tokens.push_back(next);
      dict.AddPhrase(std::move(tokens), prefix, cand.df);
      ++created;
    }
    if (created == 0) break;

    // Refresh prev to hold level-n ids for the next round.
    for (DocId d = 0; d < num_docs; ++d) {
      const std::vector<TermId>& tokens = corpus.doc(d).tokens;
      std::vector<PhraseId>& p = prev[d];
      if (tokens.size() < level) {
        p.clear();
        continue;
      }
      const std::size_t limit = tokens.size() - level + 1;
      for (std::size_t i = 0; i < limit; ++i) {
        p[i] = (p[i] == kInvalidPhraseId)
                   ? kInvalidPhraseId
                   : dict.Child(p[i], tokens[i + level - 1]);
      }
      p.resize(limit);
    }
  }

  return dict;
}

}  // namespace phrasemine
