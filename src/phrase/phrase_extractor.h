#ifndef PHRASEMINE_PHRASE_PHRASE_EXTRACTOR_H_
#define PHRASEMINE_PHRASE_PHRASE_EXTRACTOR_H_

#include <cstdint>

#include "phrase/phrase_dictionary.h"
#include "text/corpus.h"

namespace phrasemine {

/// Extraction knobs. Paper defaults: n-grams of up to 6 words occurring in
/// more than 5 (or 10) documents.
struct PhraseExtractorOptions {
  /// Maximum phrase length in words.
  std::size_t max_phrase_len = 6;
  /// Minimum document frequency for a phrase to enter P.
  uint32_t min_df = 5;
};

/// Builds the phrase dictionary P from a corpus with a level-wise (Apriori)
/// sweep: level n counts only n-grams whose (n-1)-prefix already qualified,
/// which keeps the candidate space linear in corpus size instead of
/// exploding with all possible n-grams. Document frequency is counted
/// set-wise (each document contributes at most 1 per phrase), matching the
/// docs(D, p) cardinalities used throughout the paper's formulas.
class PhraseExtractor {
 public:
  explicit PhraseExtractor(PhraseExtractorOptions options = {});

  /// Extracts the dictionary. Facet terms are excluded; only token text
  /// participates in phrases.
  PhraseDictionary Extract(const Corpus& corpus) const;

 private:
  PhraseExtractorOptions options_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_PHRASE_PHRASE_EXTRACTOR_H_
