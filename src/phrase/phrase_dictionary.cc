#include "phrase/phrase_dictionary.h"

#include <utility>

#include "common/check.h"

namespace phrasemine {

PhraseId PhraseDictionary::AddPhrase(std::vector<TermId> tokens,
                                     PhraseId parent, uint32_t df) {
  PM_CHECK(!tokens.empty());
  const PhraseId id = static_cast<PhraseId>(phrases_.size());
  if (tokens.size() == 1) {
    PM_CHECK_MSG(parent == kInvalidPhraseId, "unigram must have no parent");
    const bool inserted = unigrams_.emplace(tokens[0], id).second;
    PM_CHECK_MSG(inserted, "duplicate unigram phrase");
  } else {
    PM_CHECK_MSG(parent < phrases_.size(), "parent must be registered first");
    PM_CHECK(phrases_[parent].tokens.size() + 1 == tokens.size());
    const bool inserted =
        children_.emplace(ChildKey(parent, tokens.back()), id).second;
    PM_CHECK_MSG(inserted, "duplicate phrase extension");
  }
  if (tokens.size() > max_len_) max_len_ = tokens.size();
  phrases_.push_back(PhraseInfo{std::move(tokens), parent, df});
  return id;
}

PhraseId PhraseDictionary::Unigram(TermId term) const {
  auto it = unigrams_.find(term);
  return it == unigrams_.end() ? kInvalidPhraseId : it->second;
}

PhraseId PhraseDictionary::Child(PhraseId parent, TermId next) const {
  auto it = children_.find(ChildKey(parent, next));
  return it == children_.end() ? kInvalidPhraseId : it->second;
}

PhraseId PhraseDictionary::Find(std::span<const TermId> tokens) const {
  if (tokens.empty()) return kInvalidPhraseId;
  PhraseId id = Unigram(tokens[0]);
  for (std::size_t i = 1; i < tokens.size() && id != kInvalidPhraseId; ++i) {
    id = Child(id, tokens[i]);
  }
  return id;
}

const PhraseInfo& PhraseDictionary::info(PhraseId id) const {
  PM_CHECK(id < phrases_.size());
  return phrases_[id];
}

void PhraseDictionary::set_df(PhraseId id, uint32_t df) {
  PM_CHECK(id < phrases_.size());
  phrases_[id].df = df;
}

std::string PhraseDictionary::Text(PhraseId id,
                                   const Vocabulary& vocab) const {
  const PhraseInfo& p = info(id);
  std::string out;
  for (std::size_t i = 0; i < p.tokens.size(); ++i) {
    if (i > 0) out += ' ';
    out += vocab.TermText(p.tokens[i]);
  }
  return out;
}

void PhraseDictionary::Serialize(BinaryWriter* writer) const {
  writer->PutU32(static_cast<uint32_t>(phrases_.size()));
  for (const PhraseInfo& p : phrases_) {
    writer->PutU32Vector(p.tokens);
    writer->PutU32(p.parent);
    writer->PutU32(p.df);
  }
}

Result<PhraseDictionary> PhraseDictionary::Deserialize(BinaryReader* reader) {
  uint32_t n = 0;
  Status s = reader->GetU32(&n);
  if (!s.ok()) return s;
  PhraseDictionary dict;
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<TermId> tokens;
    uint32_t parent = 0;
    uint32_t df = 0;
    s = reader->GetU32Vector(&tokens);
    if (!s.ok()) return s;
    s = reader->GetU32(&parent);
    if (!s.ok()) return s;
    s = reader->GetU32(&df);
    if (!s.ok()) return s;
    if (tokens.empty()) return Status::Corruption("empty phrase");
    dict.AddPhrase(std::move(tokens), parent, df);
  }
  return dict;
}

}  // namespace phrasemine
