#ifndef PHRASEMINE_PHRASE_PHRASE_DICTIONARY_H_
#define PHRASEMINE_PHRASE_PHRASE_DICTIONARY_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/io_util.h"
#include "common/status.h"
#include "text/types.h"
#include "text/vocabulary.h"

namespace phrasemine {

/// Metadata for one phrase in P.
struct PhraseInfo {
  /// The phrase's token-id sequence (1..max_phrase_len terms).
  std::vector<TermId> tokens;
  /// Id of the length-(n-1) prefix phrase, or kInvalidPhraseId for unigrams.
  /// By the Apriori property every frequent phrase's prefix is frequent, so
  /// the parent always exists; this chain is what the prefix-compressed
  /// forward index (Bedathur-style) relies on.
  PhraseId parent = kInvalidPhraseId;
  /// Document frequency in the whole corpus: |docs(D, p)| = freq(p, D).
  uint32_t df = 0;
};

/// The global phrase set P of the paper (Table 2): every word n-gram of up
/// to `max_phrase_len` words occurring in at least `min_df` documents.
/// Phrases are identified by dense PhraseIds; navigation is via the
/// (parent, next-term) -> child map, which makes both lookup of arbitrary
/// token spans and per-document phrase enumeration O(length) per step.
class PhraseDictionary {
 public:
  PhraseDictionary() = default;

  PhraseDictionary(PhraseDictionary&&) = default;
  PhraseDictionary& operator=(PhraseDictionary&&) = default;
  PhraseDictionary(const PhraseDictionary&) = delete;
  PhraseDictionary& operator=(const PhraseDictionary&) = delete;

  /// Registers a phrase. `parent` must already exist (or be invalid for
  /// unigrams); duplicate (parent, last-term) registrations are forbidden.
  PhraseId AddPhrase(std::vector<TermId> tokens, PhraseId parent, uint32_t df);

  /// Id of the unigram phrase for `term`, or kInvalidPhraseId.
  PhraseId Unigram(TermId term) const;

  /// Id of the phrase extending `parent` with `next`, or kInvalidPhraseId.
  PhraseId Child(PhraseId parent, TermId next) const;

  /// Id of the phrase with exactly this token sequence, or kInvalidPhraseId.
  PhraseId Find(std::span<const TermId> tokens) const;

  /// Number of phrases (|P|).
  std::size_t size() const { return phrases_.size(); }

  const PhraseInfo& info(PhraseId id) const;

  /// Document frequency freq(p, D), the denominator of Eq. 1.
  uint32_t df(PhraseId id) const { return info(id).df; }

  /// Mutable df accessor used by the incremental delta index (Section 4.5.1).
  void set_df(PhraseId id, uint32_t df);

  /// Renders the phrase as space-joined words.
  std::string Text(PhraseId id, const Vocabulary& vocab) const;

  /// Longest phrase length present.
  std::size_t max_len() const { return max_len_; }

  /// Serialization to/from the library's binary format.
  void Serialize(BinaryWriter* writer) const;
  static Result<PhraseDictionary> Deserialize(BinaryReader* reader);

 private:
  static uint64_t ChildKey(PhraseId parent, TermId next) {
    return (static_cast<uint64_t>(parent) << 32) | next;
  }

  std::vector<PhraseInfo> phrases_;
  std::unordered_map<TermId, PhraseId> unigrams_;
  std::unordered_map<uint64_t, PhraseId> children_;
  std::size_t max_len_ = 0;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_PHRASE_PHRASE_DICTIONARY_H_
