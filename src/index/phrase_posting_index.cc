#include "index/phrase_posting_index.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace phrasemine {

PhrasePostingIndex PhrasePostingIndex::Build(const ForwardIndex& forward,
                                             const PhraseDictionary& dict) {
  PhrasePostingIndex index;
  index.postings_.resize(dict.size());
  for (DocId d = 0; d < forward.num_docs(); ++d) {
    for (PhraseId p : forward.Phrases(d, dict)) {
      index.postings_[p].push_back(d);
    }
  }
  index.by_cardinality_.resize(dict.size());
  std::iota(index.by_cardinality_.begin(), index.by_cardinality_.end(), 0u);
  std::sort(index.by_cardinality_.begin(), index.by_cardinality_.end(),
            [&](PhraseId a, PhraseId b) {
              const std::size_t ca = index.postings_[a].size();
              const std::size_t cb = index.postings_[b].size();
              if (ca != cb) return ca > cb;
              return a < b;
            });
  return index;
}

std::span<const DocId> PhrasePostingIndex::docs(PhraseId p) const {
  PM_CHECK(p < postings_.size());
  return postings_[p];
}

std::size_t PhrasePostingIndex::TotalEntries() const {
  std::size_t total = 0;
  for (const auto& list : postings_) total += list.size();
  return total;
}

}  // namespace phrasemine
