#ifndef PHRASEMINE_INDEX_SOA_LIST_H_
#define PHRASEMINE_INDEX_SOA_LIST_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "index/list_entry.h"
#include "text/types.h"

namespace phrasemine {

namespace kernels {

/// True when the AVX2 intra-block scan is compiled in AND the CPU supports
/// it (checked once at runtime); the SSE2/scalar path is used otherwise.
/// Either path returns identical values -- the dispatch is purely a speed
/// decision, which is what keeps kernel results bitwise reproducible
/// across machines.
bool HasAvx2();

/// Number of elements < target in the sorted range [a, a + n). Because the
/// range is sorted this equals the lower-bound index, computed as a
/// branch-free SIMD count (AVX2/SSE2 on x86-64, an autovectorizable scalar
/// loop elsewhere).
std::size_t CountLessU32(const uint32_t* a, std::size_t n, uint32_t target);

/// Lower bound over a sorted u32 array starting the search at `from`:
/// gallops to bracket the target, binary-narrows to a small window, then
/// SIMD-counts within it. Returns the first index in [from, n) with
/// a[i] >= target, or n.
std::size_t LowerBoundU32(const uint32_t* a, std::size_t n, std::size_t from,
                          uint32_t target);

}  // namespace kernels

/// Packed structure-of-arrays view of one id-ordered word list: the phrase
/// ids and probabilities of the AoS `ListEntry` run live in two contiguous
/// parallel arrays, split into fixed-size blocks with a per-block max-id
/// skip header. The id array is what the merge kernels (core/kernels.h)
/// actually scan, so a cache line carries 16 ids instead of 4 padded
/// entries, and the skip headers let an AND intersection jump whole blocks
/// without touching them. Probabilities are only loaded for positions a
/// kernel lands on.
///
/// Instances are immutable after construction (same sharing contract as
/// SharedWordList).
class SoABlockList {
 public:
  /// Entries per block. 128 ids = 512 bytes = 8 cache lines per header,
  /// small enough that one intra-block SIMD count resolves a skip.
  static constexpr std::size_t kBlockEntries = 128;

  SoABlockList() = default;

  /// Builds the SoA view of an id-ordered entry run (ids must be strictly
  /// increasing, as WordIdOrderedLists guarantees).
  static SoABlockList FromIdOrdered(std::span<const ListEntry> entries);

  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  const PhraseId* ids() const { return ids_.data(); }
  const double* probs() const { return probs_.data(); }

  /// First position >= `from` whose id is >= `target`; size() when none.
  /// Consults the block skip headers, so skipping far ahead costs one
  /// binary search over headers plus one intra-block count instead of a
  /// linear walk.
  std::size_t SkipTo(std::size_t from, PhraseId target) const;

  /// Largest id of the block containing position `pos` (precondition:
  /// pos < size()). The OR merge uses this as its per-block boundary.
  PhraseId BlockMaxAt(std::size_t pos) const {
    return block_max_[pos / kBlockEntries];
  }

  /// Resident bytes of the SoA arrays (ids + probs + headers).
  std::size_t MemoryBytes() const;

 private:
  std::vector<PhraseId> ids_;
  std::vector<double> probs_;
  std::vector<PhraseId> block_max_;  // skip headers, one per block
};

/// A shared immutable SoA view; built once per physical list and reusable
/// across the engine's cached id-ordered lists, service cache entries and
/// per-query bundles, exactly like SharedWordList.
using SharedSoAList = std::shared_ptr<const SoABlockList>;

}  // namespace phrasemine

#endif  // PHRASEMINE_INDEX_SOA_LIST_H_
