#ifndef PHRASEMINE_INDEX_FORWARD_INDEX_H_
#define PHRASEMINE_INDEX_FORWARD_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/io_util.h"
#include "common/status.h"
#include "phrase/phrase_dictionary.h"
#include "text/corpus.h"
#include "text/types.h"

namespace phrasemine {

/// Storage policy for per-document phrase lists (Section 2, Table 3).
enum class ForwardStorage {
  /// One entry per distinct phrase in the document (Bedathur et al. [2]
  /// without optimizations).
  kFull,
  /// Store only phrases that are not the prefix of another stored phrase of
  /// the same document; prefixes are implied and reconstructed by walking
  /// the phrase dictionary's parent chain. This is the storage optimization
  /// of [2]/[8] and what our GM baseline operates on.
  kPrefixCompressed,
};

/// Document -> phrase-id forward lists in CSR layout. The lists realize
/// "(Phrases in d) ∩ P" from Table 3 and are the index the exact baselines
/// (GM / Bedathur-style) traverse for every document of D'.
class ForwardIndex {
 public:
  ForwardIndex() = default;

  ForwardIndex(ForwardIndex&&) = default;
  ForwardIndex& operator=(ForwardIndex&&) = default;
  ForwardIndex(const ForwardIndex&) = delete;
  ForwardIndex& operator=(const ForwardIndex&) = delete;

  /// Builds forward lists for every document.
  static ForwardIndex Build(const Corpus& corpus, const PhraseDictionary& dict,
                            ForwardStorage storage = ForwardStorage::kFull);

  /// The stored (possibly prefix-compressed) sorted phrase list of doc d.
  std::span<const PhraseId> stored(DocId d) const;

  /// The full distinct phrase set of doc d, expanding implied prefixes when
  /// the index is prefix-compressed. Returns a sorted vector.
  std::vector<PhraseId> Phrases(DocId d, const PhraseDictionary& dict) const;

  ForwardStorage storage() const { return storage_; }
  std::size_t num_docs() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  /// Total stored entries across all documents (index-size accounting).
  std::size_t TotalStoredEntries() const { return values_.size(); }

  /// Serialization to/from the library's binary format.
  void Serialize(BinaryWriter* writer) const;
  static Result<ForwardIndex> Deserialize(BinaryReader* reader);

 private:
  ForwardStorage storage_ = ForwardStorage::kFull;
  std::vector<uint64_t> offsets_;  // num_docs + 1 entries.
  std::vector<PhraseId> values_;
};

/// Computes the sorted set of distinct phrases occurring in a token
/// sequence, by walking the dictionary's child map from every position.
/// Exposed for reuse by the delta index and tests.
std::vector<PhraseId> CollectDocPhrases(std::span<const TermId> tokens,
                                        const PhraseDictionary& dict);

}  // namespace phrasemine

#endif  // PHRASEMINE_INDEX_FORWARD_INDEX_H_
