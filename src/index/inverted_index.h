#ifndef PHRASEMINE_INDEX_INVERTED_INDEX_H_
#define PHRASEMINE_INDEX_INVERTED_INDEX_H_

#include <span>
#include <vector>

#include "common/io_util.h"
#include "common/status.h"
#include "text/corpus.h"
#include "text/types.h"

namespace phrasemine {

/// Classic word -> sorted document-id postings over words *and* facets.
/// This realizes docs(D, q) from Eq. 2 of the paper and is the substrate
/// every mining algorithm uses to materialize the sub-collection D'.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;
  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;

  /// Builds the index over all tokens and facet terms of the corpus.
  static InvertedIndex Build(const Corpus& corpus);

  /// Sorted, duplicate-free posting list for a term. Terms with no postings
  /// (or ids beyond the vocabulary) yield an empty list.
  const std::vector<DocId>& docs(TermId term) const;

  /// Document frequency |docs(D, q)|.
  uint32_t df(TermId term) const {
    return static_cast<uint32_t>(docs(term).size());
  }

  std::size_t num_terms() const { return postings_.size(); }

  /// Intersection of several sorted doc lists (the AND aggregation of
  /// Eq. 2). Lists are processed smallest-first with galloping probes.
  static std::vector<DocId> Intersect(
      const std::vector<const std::vector<DocId>*>& lists);

  /// Union of several sorted doc lists (the OR aggregation of Eq. 2).
  static std::vector<DocId> Union(
      const std::vector<const std::vector<DocId>*>& lists);

  /// |a ∩ b| for two sorted doc lists, without materializing the result.
  static std::size_t IntersectSize(std::span<const DocId> a,
                                   std::span<const DocId> b);

  /// Serialization to/from the library's binary format.
  void Serialize(BinaryWriter* writer) const;
  static Result<InvertedIndex> Deserialize(BinaryReader* reader);

 private:
  std::vector<std::vector<DocId>> postings_;
  std::vector<DocId> empty_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_INDEX_INVERTED_INDEX_H_
