#include "index/forward_index.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace phrasemine {

std::vector<PhraseId> CollectDocPhrases(std::span<const TermId> tokens,
                                        const PhraseDictionary& dict) {
  std::vector<PhraseId> ids;
  const std::size_t max_len = std::max<std::size_t>(dict.max_len(), 1);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    PhraseId id = dict.Unigram(tokens[i]);
    std::size_t len = 1;
    while (id != kInvalidPhraseId) {
      ids.push_back(id);
      if (len >= max_len || i + len >= tokens.size()) break;
      id = dict.Child(id, tokens[i + len]);
      ++len;
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

ForwardIndex ForwardIndex::Build(const Corpus& corpus,
                                 const PhraseDictionary& dict,
                                 ForwardStorage storage) {
  ForwardIndex index;
  index.storage_ = storage;
  index.offsets_.reserve(corpus.size() + 1);
  index.offsets_.push_back(0);

  // Scratch set of phrases that are a direct parent of another phrase in the
  // same document; only used in compressed mode.
  std::unordered_set<PhraseId> implied;

  for (DocId d = 0; d < corpus.size(); ++d) {
    std::vector<PhraseId> ids = CollectDocPhrases(corpus.doc(d).tokens, dict);
    if (storage == ForwardStorage::kPrefixCompressed) {
      implied.clear();
      for (PhraseId id : ids) {
        const PhraseId parent = dict.info(id).parent;
        if (parent != kInvalidPhraseId) implied.insert(parent);
      }
      std::erase_if(ids, [&](PhraseId id) { return implied.contains(id); });
    }
    index.values_.insert(index.values_.end(), ids.begin(), ids.end());
    index.offsets_.push_back(index.values_.size());
  }
  return index;
}

std::span<const PhraseId> ForwardIndex::stored(DocId d) const {
  PM_CHECK(d + 1 < offsets_.size());
  return {values_.data() + offsets_[d],
          values_.data() + offsets_[d + 1]};
}

std::vector<PhraseId> ForwardIndex::Phrases(DocId d,
                                            const PhraseDictionary& dict) const {
  std::span<const PhraseId> base = stored(d);
  std::vector<PhraseId> ids(base.begin(), base.end());
  if (storage_ == ForwardStorage::kPrefixCompressed) {
    // Expand implied prefixes by walking parent chains; dedupe at the end.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      PhraseId parent = dict.info(ids[i]).parent;
      while (parent != kInvalidPhraseId) {
        ids.push_back(parent);
        parent = dict.info(parent).parent;
      }
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  }
  return ids;
}

void ForwardIndex::Serialize(BinaryWriter* writer) const {
  writer->PutU8(storage_ == ForwardStorage::kPrefixCompressed ? 1 : 0);
  writer->PutU32(static_cast<uint32_t>(num_docs()));
  writer->PutU64(values_.size());
  for (uint64_t off : offsets_) writer->PutU64(off);
  writer->PutRaw(values_.data(), values_.size() * sizeof(PhraseId));
}

Result<ForwardIndex> ForwardIndex::Deserialize(BinaryReader* reader) {
  uint8_t compressed = 0;
  uint32_t num_docs = 0;
  uint64_t num_values = 0;
  Status s = reader->GetU8(&compressed);
  if (!s.ok()) return s;
  s = reader->GetU32(&num_docs);
  if (!s.ok()) return s;
  s = reader->GetU64(&num_values);
  if (!s.ok()) return s;
  ForwardIndex index;
  index.storage_ = compressed != 0 ? ForwardStorage::kPrefixCompressed
                                   : ForwardStorage::kFull;
  index.offsets_.resize(static_cast<std::size_t>(num_docs) + 1);
  for (uint64_t& off : index.offsets_) {
    s = reader->GetU64(&off);
    if (!s.ok()) return s;
  }
  index.values_.resize(static_cast<std::size_t>(num_values));
  s = reader->GetRaw(index.values_.data(), index.values_.size() * sizeof(PhraseId));
  if (!s.ok()) return s;
  return index;
}

}  // namespace phrasemine
