#include "index/phrase_list_file.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace phrasemine {

PhraseListFile PhraseListFile::Build(const PhraseDictionary& dict,
                                     const Vocabulary& vocab,
                                     std::size_t slot_size) {
  PM_CHECK(slot_size >= 1);
  PhraseListFile file;
  file.slot_size_ = slot_size;
  file.bytes_.assign(dict.size() * slot_size, 0);
  for (PhraseId id = 0; id < dict.size(); ++id) {
    const std::string text = dict.Text(id, vocab);
    const std::size_t n = std::min(text.size(), slot_size);
    if (text.size() > slot_size) ++file.truncated_;
    std::memcpy(file.bytes_.data() + file.SlotOffset(id), text.data(), n);
  }
  return file;
}

std::string PhraseListFile::Text(PhraseId id) const {
  PM_CHECK(id < num_phrases());
  const uint8_t* slot = bytes_.data() + SlotOffset(id);
  std::size_t len = 0;
  while (len < slot_size_ && slot[len] != 0) ++len;
  return std::string(reinterpret_cast<const char*>(slot), len);
}

void PhraseListFile::Serialize(BinaryWriter* writer) const {
  writer->PutU32(static_cast<uint32_t>(slot_size_));
  writer->PutU64(truncated_);
  writer->PutU64(bytes_.size());
  writer->PutRaw(bytes_.data(), bytes_.size());
}

Result<PhraseListFile> PhraseListFile::Deserialize(BinaryReader* reader) {
  uint32_t slot_size = 0;
  uint64_t truncated = 0;
  uint64_t num_bytes = 0;
  Status s = reader->GetU32(&slot_size);
  if (!s.ok()) return s;
  s = reader->GetU64(&truncated);
  if (!s.ok()) return s;
  s = reader->GetU64(&num_bytes);
  if (!s.ok()) return s;
  if (slot_size == 0) return Status::Corruption("zero slot size");
  if (num_bytes % slot_size != 0) {
    return Status::Corruption("phrase list byte count not slot-aligned");
  }
  // Guard before resize: an oversize length prefix must fail with a clean
  // Status, not an allocation of corrupt-length gigabytes.
  if (num_bytes > reader->Remaining()) {
    return Status::Corruption("phrase list byte count exceeds remaining bytes");
  }
  PhraseListFile file;
  file.slot_size_ = slot_size;
  file.truncated_ = static_cast<std::size_t>(truncated);
  file.bytes_.resize(static_cast<std::size_t>(num_bytes));
  s = reader->GetRaw(file.bytes_.data(), file.bytes_.size());
  if (!s.ok()) return s;
  return file;
}

}  // namespace phrasemine
