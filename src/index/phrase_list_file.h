#ifndef PHRASEMINE_INDEX_PHRASE_LIST_FILE_H_
#define PHRASEMINE_INDEX_PHRASE_LIST_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/io_util.h"
#include "common/status.h"
#include "phrase/phrase_dictionary.h"
#include "text/types.h"
#include "text/vocabulary.h"

namespace phrasemine {

/// The phrase list of Section 4.2.1 / Figure 1: the lexical representation
/// of every phrase in P stored in fixed-size slots of `slot_size` bytes
/// (paper default s = 50), zero-padded, with the slot position serving as
/// the phrase ID. Finding phrase i means reading bytes
/// [(i-1)*s+1, i*s] -- here, the 0-based equivalent [i*s, (i+1)*s).
class PhraseListFile {
 public:
  /// Paper's slot size: 50 bytes covered every phrase they encountered.
  static constexpr std::size_t kDefaultSlotSize = 50;

  PhraseListFile() = default;

  /// Builds the slot file from a dictionary. Phrases longer than the slot
  /// are truncated (and counted in truncated_count()) rather than rejected,
  /// so slot sizing is observable by callers.
  static PhraseListFile Build(const PhraseDictionary& dict,
                              const Vocabulary& vocab,
                              std::size_t slot_size = kDefaultSlotSize);

  /// The lexical form of phrase `id` (zero padding stripped).
  std::string Text(PhraseId id) const;

  /// Byte offset of the slot for phrase `id` (the Figure 1 calculation).
  std::size_t SlotOffset(PhraseId id) const { return id * slot_size_; }

  std::size_t slot_size() const { return slot_size_; }
  std::size_t num_phrases() const {
    return slot_size_ == 0 ? 0 : bytes_.size() / slot_size_;
  }
  std::size_t SizeBytes() const { return bytes_.size(); }
  std::size_t truncated_count() const { return truncated_; }

  /// Serialization to/from the library's binary format.
  void Serialize(BinaryWriter* writer) const;
  static Result<PhraseListFile> Deserialize(BinaryReader* reader);

  /// Byte offset of slot 0 within a serialized payload (after the u32
  /// slot size, u64 truncated count and u64 byte count headers). The disk
  /// tier registers [offset, offset + SizeBytes()) of the index file's
  /// phrase-list section as its device-resident phrase file, so phrase
  /// lookups touch the real mapped slot bytes.
  static constexpr std::size_t kSerializedSlotsOffset =
      sizeof(uint32_t) + 2 * sizeof(uint64_t);

 private:
  std::size_t slot_size_ = kDefaultSlotSize;
  std::size_t truncated_ = 0;
  std::vector<uint8_t> bytes_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_INDEX_PHRASE_LIST_FILE_H_
