#ifndef PHRASEMINE_INDEX_PHRASE_POSTING_INDEX_H_
#define PHRASEMINE_INDEX_PHRASE_POSTING_INDEX_H_

#include <span>
#include <vector>

#include "index/forward_index.h"
#include "phrase/phrase_dictionary.h"
#include "text/types.h"

namespace phrasemine {

/// Phrase -> sorted document-id postings, with phrases additionally ordered
/// by decreasing posting-list cardinality. This is the index layout of
/// Simitsis et al. [15] (Table 3, row 1): one list per phrase, most abundant
/// phrase first, so the first-phase filter can stop once remaining lists are
/// shorter than an already-achieved intersection cardinality.
class PhrasePostingIndex {
 public:
  PhrasePostingIndex() = default;

  PhrasePostingIndex(PhrasePostingIndex&&) = default;
  PhrasePostingIndex& operator=(PhrasePostingIndex&&) = default;
  PhrasePostingIndex(const PhrasePostingIndex&) = delete;
  PhrasePostingIndex& operator=(const PhrasePostingIndex&) = delete;

  /// Inverts a forward index into phrase postings.
  static PhrasePostingIndex Build(const ForwardIndex& forward,
                                  const PhraseDictionary& dict);

  /// Sorted doc list of a phrase.
  std::span<const DocId> docs(PhraseId p) const;

  /// Phrase ids sorted by decreasing |docs(p)| (ties by increasing id).
  const std::vector<PhraseId>& by_cardinality() const { return by_cardinality_; }

  std::size_t num_phrases() const { return postings_.size(); }

  /// Total posting entries (index-size accounting).
  std::size_t TotalEntries() const;

 private:
  std::vector<std::vector<DocId>> postings_;
  std::vector<PhraseId> by_cardinality_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_INDEX_PHRASE_POSTING_INDEX_H_
