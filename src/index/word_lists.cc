#include "index/word_lists.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <utility>

#include "common/check.h"

namespace phrasemine {

namespace {

/// Builds the score-ordered list for one term: count phrase co-occurrences
/// over docs(term), normalize by df(p), sort by (prob desc, id asc).
std::vector<ListEntry> BuildOneList(const InvertedIndex& inverted,
                                    const ForwardIndex& forward,
                                    const PhraseDictionary& dict,
                                    TermId term,
                                    std::unordered_map<PhraseId, uint32_t>*
                                        scratch_counts) {
  scratch_counts->clear();
  for (DocId d : inverted.docs(term)) {
    for (PhraseId p : forward.Phrases(d, dict)) {
      ++(*scratch_counts)[p];
    }
  }
  std::vector<ListEntry> list;
  list.reserve(scratch_counts->size());
  for (const auto& [phrase, count] : *scratch_counts) {
    const uint32_t df = dict.df(phrase);
    PM_CHECK_MSG(count <= df, "co-occurrence count exceeds phrase df");
    if (count == 0) continue;  // Zero scores are omitted (Section 4.2.2).
    list.push_back(ListEntry{phrase, static_cast<double>(count) / df});
  }
  std::sort(list.begin(), list.end(), [](const ListEntry& a, const ListEntry& b) {
    if (a.prob != b.prob) return a.prob > b.prob;
    return a.phrase < b.phrase;
  });
  return list;
}

}  // namespace

WordScoreLists WordScoreLists::Build(const InvertedIndex& inverted,
                                     const ForwardIndex& forward,
                                     const PhraseDictionary& dict,
                                     std::span<const TermId> terms) {
  WordScoreLists result;
  std::unordered_map<PhraseId, uint32_t> scratch;
  for (TermId t : terms) {
    if (result.lists_.contains(t)) continue;
    result.lists_.emplace(t, std::make_shared<const std::vector<ListEntry>>(
                                 BuildOneList(inverted, forward, dict, t,
                                              &scratch)));
  }
  return result;
}

WordScoreLists WordScoreLists::BuildAll(const InvertedIndex& inverted,
                                        const ForwardIndex& forward,
                                        const PhraseDictionary& dict,
                                        uint32_t min_term_df) {
  WordScoreLists result;
  std::unordered_map<PhraseId, uint32_t> scratch;
  for (TermId t = 0; t < inverted.num_terms(); ++t) {
    if (inverted.df(t) < min_term_df) continue;
    result.lists_.emplace(t, std::make_shared<const std::vector<ListEntry>>(
                                 BuildOneList(inverted, forward, dict, t,
                                              &scratch)));
  }
  return result;
}

SharedWordList WordScoreLists::BuildOne(const InvertedIndex& inverted,
                                        const ForwardIndex& forward,
                                        const PhraseDictionary& dict,
                                        TermId term) {
  std::unordered_map<PhraseId, uint32_t> scratch;
  return std::make_shared<const std::vector<ListEntry>>(
      BuildOneList(inverted, forward, dict, term, &scratch));
}

std::span<const ListEntry> WordScoreLists::list(TermId term) const {
  auto it = lists_.find(term);
  if (it == lists_.end()) return {};
  return *it->second;
}

SharedWordList WordScoreLists::shared(TermId term) const {
  auto it = lists_.find(term);
  if (it == lists_.end()) return nullptr;
  return it->second;
}

void WordScoreLists::Insert(TermId term, SharedWordList list) {
  PM_CHECK_MSG(list != nullptr, "Insert requires a non-null list");
  lists_.try_emplace(term, std::move(list));
}

std::span<const ListEntry> WordScoreLists::Partial(TermId term,
                                                   double fraction) const {
  std::span<const ListEntry> full = list(term);
  fraction = std::clamp(fraction, 0.0, 1.0);
  const std::size_t n = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(full.size())));
  return full.subspan(0, n);
}

std::size_t WordScoreLists::TotalEntries() const {
  std::size_t total = 0;
  for (const auto& [term, list] : lists_) total += list->size();
  return total;
}

std::size_t WordScoreLists::EntriesAt(double fraction) const {
  fraction = std::clamp(fraction, 0.0, 1.0);
  std::size_t total = 0;
  for (const auto& [term, list] : lists_) {
    total += static_cast<std::size_t>(
        std::ceil(fraction * static_cast<double>(list->size())));
  }
  return total;
}

std::size_t WordScoreLists::SizeBytes(double fraction) const {
  return EntriesAt(fraction) * kListEntryBytes;
}

std::size_t WordScoreLists::InMemoryBytes(double fraction) const {
  return EntriesAt(fraction) * kListEntryInMemoryBytes;
}

void WordScoreLists::Merge(WordScoreLists&& other) {
  for (auto& [term, list] : other.lists_) {
    lists_.try_emplace(term, std::move(list));
  }
  other.lists_.clear();
}

std::vector<TermId> WordScoreLists::Terms() const {
  std::vector<TermId> terms;
  terms.reserve(lists_.size());
  for (const auto& [term, list] : lists_) terms.push_back(term);
  return terms;
}

void WordScoreLists::Serialize(BinaryWriter* writer) const {
  // Terms in ascending id order: iteration over the unordered_map is not
  // deterministic, and the serialized bytes feed checksummed index file
  // sections where the same lists must always hash the same.
  std::vector<TermId> terms = Terms();
  std::sort(terms.begin(), terms.end());
  writer->PutU32(static_cast<uint32_t>(terms.size()));
  for (TermId term : terms) {
    const auto& list = lists_.at(term);
    writer->PutU32(term);
    writer->PutU64(list->size());
    for (const ListEntry& e : *list) {
      writer->PutU32(e.phrase);
      writer->PutDouble(e.prob);
    }
  }
}

Result<WordScoreLists> WordScoreLists::Deserialize(BinaryReader* reader,
                                                   SerializedLayout* layout) {
  const std::size_t origin = reader->position();
  uint32_t num_terms = 0;
  Status s = reader->GetU32(&num_terms);
  if (!s.ok()) return s;
  WordScoreLists result;
  for (uint32_t i = 0; i < num_terms; ++i) {
    uint32_t term = 0;
    uint64_t len = 0;
    s = reader->GetU32(&term);
    if (!s.ok()) return s;
    s = reader->GetU64(&len);
    if (!s.ok()) return s;
    // Oversize guard before allocating: each entry consumes kListEntryBytes
    // of payload, so a length prefix beyond the remaining bytes is corrupt.
    if (len > reader->Remaining() / kListEntryBytes) {
      return Status::Corruption("word list length exceeds remaining bytes");
    }
    if (layout != nullptr) {
      layout->entry_runs[term] = {reader->position() - origin, len};
    }
    std::vector<ListEntry> list(static_cast<std::size_t>(len));
    for (ListEntry& e : list) {
      s = reader->GetU32(&e.phrase);
      if (!s.ok()) return s;
      s = reader->GetDouble(&e.prob);
      if (!s.ok()) return s;
    }
    result.lists_.emplace(
        term, std::make_shared<const std::vector<ListEntry>>(std::move(list)));
  }
  return result;
}

WordIdOrderedLists::WordIdOrderedLists(double fraction)
    : fraction_(std::clamp(fraction, 0.0, 1.0)) {}

WordIdOrderedLists WordIdOrderedLists::Build(const WordScoreLists& score_lists,
                                             double fraction) {
  WordIdOrderedLists result;
  result.fraction_ = std::clamp(fraction, 0.0, 1.0);
  for (TermId t : score_lists.Terms()) {
    result.Insert(t, IdOrderPrefix(score_lists.Partial(t, result.fraction_)));
  }
  return result;
}

SharedWordList WordIdOrderedLists::IdOrderPrefix(
    std::span<const ListEntry> prefix) {
  std::vector<ListEntry> list(prefix.begin(), prefix.end());
  std::sort(list.begin(), list.end(),
            [](const ListEntry& a, const ListEntry& b) {
              return a.phrase < b.phrase;
            });
  return std::make_shared<const std::vector<ListEntry>>(std::move(list));
}

SharedWordList WordIdOrderedLists::MergeById(std::span<const ListEntry> base,
                                             std::span<const ListEntry> extras) {
  std::vector<ListEntry> merged;
  merged.reserve(base.size() + extras.size());
  std::merge(base.begin(), base.end(), extras.begin(), extras.end(),
             std::back_inserter(merged),
             [](const ListEntry& a, const ListEntry& b) {
               return a.phrase < b.phrase;
             });
  return std::make_shared<const std::vector<ListEntry>>(std::move(merged));
}

std::span<const ListEntry> WordIdOrderedLists::list(TermId term) const {
  auto it = lists_.find(term);
  if (it == lists_.end()) return {};
  return *it->second.entries;
}

SharedWordList WordIdOrderedLists::shared(TermId term) const {
  auto it = lists_.find(term);
  if (it == lists_.end()) return nullptr;
  return it->second.entries;
}

const SoABlockList* WordIdOrderedLists::soa(TermId term) const {
  auto it = lists_.find(term);
  if (it == lists_.end()) return nullptr;
  return it->second.soa.get();
}

SharedSoAList WordIdOrderedLists::shared_soa(TermId term) const {
  auto it = lists_.find(term);
  if (it == lists_.end()) return nullptr;
  return it->second.soa;
}

void WordIdOrderedLists::Insert(TermId term, SharedWordList list,
                                SharedSoAList soa) {
  PM_CHECK_MSG(list != nullptr, "Insert requires a non-null list");
  if (soa == nullptr) {
    soa = std::make_shared<const SoABlockList>(
        SoABlockList::FromIdOrdered(std::span<const ListEntry>(*list)));
  }
  lists_.try_emplace(term, Stored{std::move(list), std::move(soa)});
}

std::size_t WordIdOrderedLists::TotalEntries() const {
  std::size_t total = 0;
  for (const auto& [term, stored] : lists_) total += stored.entries->size();
  return total;
}

}  // namespace phrasemine
