#include "index/soa_list.h"

#include <algorithm>
#include <bit>

#if defined(__x86_64__) || defined(_M_X64)
#define PHRASEMINE_X86_64 1
#include <immintrin.h>
#endif

namespace phrasemine {

namespace kernels {

namespace {

#if !defined(PHRASEMINE_X86_64)
std::size_t CountLessScalar(const uint32_t* a, std::size_t n,
                            uint32_t target) {
  // Branch-free accumulation; autovectorizes on both gcc and clang.
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += a[i] < target ? 1u : 0u;
  return count;
}
#endif

#if PHRASEMINE_X86_64

// SSE2 is part of the x86-64 baseline: always available, no dispatch.
std::size_t CountLessSse2(const uint32_t* a, std::size_t n, uint32_t target) {
  // cmpgt is signed; XOR with the sign bit maps unsigned order onto it.
  const __m128i flip = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i t =
      _mm_set1_epi32(static_cast<int>(target ^ 0x80000000u));
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    v = _mm_xor_si128(v, flip);
    const __m128i lt = _mm_cmpgt_epi32(t, v);  // a[i] < target
    count += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(lt)))));
  }
  for (; i < n; ++i) count += a[i] < target ? 1u : 0u;
  return count;
}

#if defined(__GNUC__) || defined(__clang__)
#define PHRASEMINE_HAS_AVX2_PATH 1

__attribute__((target("avx2"))) std::size_t CountLessAvx2(const uint32_t* a,
                                                          std::size_t n,
                                                          uint32_t target) {
  const __m256i flip = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i t =
      _mm256_set1_epi32(static_cast<int>(target ^ 0x80000000u));
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    v = _mm256_xor_si256(v, flip);
    const __m256i lt = _mm256_cmpgt_epi32(t, v);  // a[i] < target
    count += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(lt)))));
  }
  for (; i < n; ++i) count += a[i] < target ? 1u : 0u;
  return count;
}

#endif  // __GNUC__ || __clang__
#endif  // PHRASEMINE_X86_64

}  // namespace

bool HasAvx2() {
#if defined(PHRASEMINE_HAS_AVX2_PATH)
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

std::size_t CountLessU32(const uint32_t* a, std::size_t n, uint32_t target) {
#if defined(PHRASEMINE_HAS_AVX2_PATH)
  if (n >= 8 && HasAvx2()) return CountLessAvx2(a, n, target);
#endif
#if PHRASEMINE_X86_64
  return CountLessSse2(a, n, target);
#else
  return CountLessScalar(a, n, target);
#endif
}

std::size_t LowerBoundU32(const uint32_t* a, std::size_t n, std::size_t from,
                          uint32_t target) {
  if (from >= n) return n;
  if (a[from] >= target) return from;
  // Gallop to bracket the target so a short probe into a long list costs
  // O(log distance) instead of O(distance).
  std::size_t step = 1;
  std::size_t lo = from;              // a[lo] < target
  std::size_t hi = from + step;
  while (hi < n && a[hi] < target) {
    lo = hi;
    step <<= 1;
    hi = from + step;
  }
  hi = std::min(hi, n);               // a[hi] >= target (or hi == n)
  // Binary-narrow to one SIMD window, then count within it.
  constexpr std::size_t kWindow = 128;
  while (hi - lo > kWindow) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (a[mid] < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo + CountLessU32(a + lo, hi - lo, target);
}

}  // namespace kernels

SoABlockList SoABlockList::FromIdOrdered(std::span<const ListEntry> entries) {
  SoABlockList list;
  list.ids_.reserve(entries.size());
  list.probs_.reserve(entries.size());
  for (const ListEntry& e : entries) {
    list.ids_.push_back(e.phrase);
    list.probs_.push_back(e.prob);
  }
  const std::size_t blocks =
      (entries.size() + kBlockEntries - 1) / kBlockEntries;
  list.block_max_.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t last =
        std::min(entries.size(), (b + 1) * kBlockEntries) - 1;
    list.block_max_.push_back(list.ids_[last]);
  }
  return list;
}

std::size_t SoABlockList::SkipTo(std::size_t from, PhraseId target) const {
  const std::size_t n = ids_.size();
  if (from >= n) return n;
  if (ids_[from] >= target) return from;
  std::size_t b = from / kBlockEntries;
  if (block_max_[b] < target) {
    // Jump via the skip headers: every entry of a block whose max id is
    // below the target is below it too.
    b = static_cast<std::size_t>(
        std::lower_bound(block_max_.begin() + static_cast<std::ptrdiff_t>(b) + 1,
                         block_max_.end(), target) -
        block_max_.begin());
    if (b >= block_max_.size()) return n;
    from = b * kBlockEntries;
    if (ids_[from] >= target) return from;
  }
  const std::size_t end = std::min(n, (b + 1) * kBlockEntries);
  return from + kernels::CountLessU32(ids_.data() + from, end - from, target);
}

std::size_t SoABlockList::MemoryBytes() const {
  return ids_.capacity() * sizeof(PhraseId) +
         probs_.capacity() * sizeof(double) +
         block_max_.capacity() * sizeof(PhraseId);
}

}  // namespace phrasemine
