#ifndef PHRASEMINE_INDEX_WORD_LISTS_H_
#define PHRASEMINE_INDEX_WORD_LISTS_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/io_util.h"
#include "common/status.h"
#include "index/forward_index.h"
#include "index/inverted_index.h"
#include "index/list_entry.h"
#include "index/soa_list.h"
#include "phrase/phrase_dictionary.h"
#include "text/types.h"

namespace phrasemine {

/// Word-specific phrase lists sorted by non-increasing P(q|p), ties broken
/// by increasing phrase id (Section 4.2.2). Zero-probability phrases are
/// omitted. These lists are the input of the NRA algorithm; truncating each
/// to its top fraction gives the paper's "partial lists".
///
/// Threading: individual lists are immutable after construction, and all
/// const member functions are safe to call concurrently. Mutations (Merge,
/// Insert) require exclusive access; MiningEngine serializes them behind
/// its internal lock, and PhraseService builds per-query bundles that are
/// never shared across threads.
class WordScoreLists {
 public:
  WordScoreLists() = default;

  WordScoreLists(WordScoreLists&&) = default;
  WordScoreLists& operator=(WordScoreLists&&) = default;
  WordScoreLists(const WordScoreLists&) = delete;
  WordScoreLists& operator=(const WordScoreLists&) = delete;

  /// Builds lists for the given terms only. Building a term's list costs
  /// O(sum of forward-list lengths over docs(term)), so restricting to the
  /// query workload's terms keeps preprocessing tractable on large corpora;
  /// BuildAll covers every term for small corpora and for index-size
  /// studies.
  static WordScoreLists Build(const InvertedIndex& inverted,
                              const ForwardIndex& forward,
                              const PhraseDictionary& dict,
                              std::span<const TermId> terms);

  /// Builds lists for every term with document frequency >= min_term_df.
  static WordScoreLists BuildAll(const InvertedIndex& inverted,
                                 const ForwardIndex& forward,
                                 const PhraseDictionary& dict,
                                 uint32_t min_term_df = 1);

  /// Builds the score-ordered list of a single term. This is the unit of
  /// work the service-layer word-list cache stores and shares; the output
  /// is byte-identical to the per-term lists produced by Build/BuildAll.
  static SharedWordList BuildOne(const InvertedIndex& inverted,
                                 const ForwardIndex& forward,
                                 const PhraseDictionary& dict, TermId term);

  /// True if a list exists for this term (it may still be empty).
  bool Has(TermId term) const { return lists_.contains(term); }

  /// Full score-ordered list for a term; empty span if absent.
  std::span<const ListEntry> list(TermId term) const;

  /// Shared handle to a term's list; nullptr if absent.
  SharedWordList shared(TermId term) const;

  /// Adds a prebuilt list for a term; keeps the existing list if one is
  /// already present (all builders produce identical lists for a term).
  void Insert(TermId term, SharedWordList list);

  /// Prefix of the list covering `fraction` of its entries (ceil rounding),
  /// the paper's partial-list view. fraction is clamped to [0, 1].
  std::span<const ListEntry> Partial(TermId term, double fraction) const;

  /// Number of terms with lists.
  std::size_t num_terms() const { return lists_.size(); }

  /// Total entries across all lists.
  std::size_t TotalEntries() const;

  /// Index size in bytes at the packed 12 bytes/entry (Section 5.7
  /// accounting), scaled by the partial-list fraction.
  std::size_t SizeBytes(double fraction = 1.0) const;

  /// Resident index size at sizeof(ListEntry) bytes/entry -- what the AoS
  /// lists actually occupy in RAM (see kListEntryInMemoryBytes).
  std::size_t InMemoryBytes(double fraction = 1.0) const;

  /// Terms that have lists, in unspecified order.
  std::vector<TermId> Terms() const;

  /// Absorbs all lists of `other` (move). Lists for terms already present
  /// are kept as-is; both sides were built from the same immutable corpus,
  /// so they are identical anyway. Enables incremental extension of the
  /// indexed term set as new query workloads arrive.
  void Merge(WordScoreLists&& other);

  /// Per-term location of the packed 12-byte entry runs inside a
  /// serialized WordScoreLists payload, as captured by Deserialize:
  /// byte offset of the term's first entry (local to the payload start)
  /// and its entry count. The entries of one term are contiguous at
  /// kListEntryBytes each, so the disk tier can register each run as a
  /// mapped byte range and stream it straight out of the index file.
  struct SerializedLayout {
    std::unordered_map<TermId, std::pair<uint64_t, uint64_t>> entry_runs;
  };

  /// Serialization to/from the library's binary format. The serialized
  /// form is deterministic (terms written in ascending id order), so the
  /// same lists always produce the same bytes -- a requirement for the
  /// checksummed index file sections.
  void Serialize(BinaryWriter* writer) const;
  /// When `layout` is non-null, records each term's entry-run location
  /// (offsets relative to the reader's position at call time).
  static Result<WordScoreLists> Deserialize(BinaryReader* reader,
                                            SerializedLayout* layout = nullptr);

 private:
  /// Entries across all lists at a partial fraction (ceil per list), the
  /// shared truncation rule behind both byte accountings.
  std::size_t EntriesAt(double fraction) const;

  std::unordered_map<TermId, SharedWordList> lists_;
};

/// Word-specific lists re-ordered by increasing phrase id (Section 4.4.1,
/// Figure 4), the input of the SMJ algorithm. Partial lists are a
/// construction-time decision here: the top `fraction` of the score-ordered
/// list is taken first and then re-sorted by id, so a different fraction
/// requires rebuilding -- exactly the run-time/construction-time asymmetry
/// the paper contrasts between NRA and SMJ.
///
/// Every inserted list also carries a packed SoA block view (SoABlockList,
/// core/kernels.h): contiguous id and prob arrays with per-block max-id
/// skip headers. The merge kernels run on that view; the AoS entry run
/// stays the canonical representation for overlay assembly and the scalar
/// reference path.
///
/// Threading: same contract as WordScoreLists -- const reads are safe
/// concurrently, mutations require exclusive access.
class WordIdOrderedLists {
 public:
  WordIdOrderedLists() = default;

  /// Empty container pinned at a fraction, to be populated via Insert
  /// (service-layer per-query bundles assembled from cached lists).
  explicit WordIdOrderedLists(double fraction);

  WordIdOrderedLists(WordIdOrderedLists&&) = default;
  WordIdOrderedLists& operator=(WordIdOrderedLists&&) = default;
  WordIdOrderedLists(const WordIdOrderedLists&) = delete;
  WordIdOrderedLists& operator=(const WordIdOrderedLists&) = delete;

  /// Builds id-ordered lists from score-ordered lists at a fixed fraction.
  static WordIdOrderedLists Build(const WordScoreLists& score_lists,
                                  double fraction);

  /// Re-sorts one score-ordered list prefix by phrase id; the single-term
  /// unit of Build, shared with the service-layer cache. The prefix must
  /// already be truncated to the desired fraction (see
  /// WordScoreLists::Partial).
  static SharedWordList IdOrderPrefix(std::span<const ListEntry> prefix);

  /// Merges two id-ordered entry runs into one id-ordered list. Used to
  /// overlay DeltaIndex::ExtraIdOrderedEntries onto a stored list for the
  /// per-query SMJ bundles mined under live updates; the inputs must be
  /// sorted by phrase id and share no phrase.
  static SharedWordList MergeById(std::span<const ListEntry> base,
                                  std::span<const ListEntry> extras);

  bool Has(TermId term) const { return lists_.contains(term); }

  /// Id-ordered list for a term; empty span if absent.
  std::span<const ListEntry> list(TermId term) const;

  /// Shared handle to a term's list; nullptr if absent.
  SharedWordList shared(TermId term) const;

  /// Packed SoA block view of a term's list (built at Insert time);
  /// nullptr if the term has no list. Valid as long as the container (the
  /// view is shared-owned alongside the AoS run).
  const SoABlockList* soa(TermId term) const;

  /// Shared handle to a term's SoA view; nullptr if absent. Pass it to
  /// another container's Insert to share the view instead of rebuilding
  /// it (per-query bundles assembled from cached lists).
  SharedSoAList shared_soa(TermId term) const;

  /// Adds a prebuilt id-ordered list; keeps any existing list for the
  /// term. When `soa` is null the SoA view is built here (an O(list)
  /// copy); pass the list's already-built view to make insertion O(1) --
  /// the per-query bundle paths do, so a bundle never re-packs a list the
  /// engine or service already packed.
  void Insert(TermId term, SharedWordList list, SharedSoAList soa = nullptr);

  double fraction() const { return fraction_; }
  std::size_t TotalEntries() const;

 private:
  struct Stored {
    SharedWordList entries;
    SharedSoAList soa;
  };
  double fraction_ = 1.0;
  std::unordered_map<TermId, Stored> lists_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_INDEX_WORD_LISTS_H_
