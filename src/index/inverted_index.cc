#include "index/inverted_index.h"

#include <algorithm>

#include "common/check.h"

namespace phrasemine {

InvertedIndex InvertedIndex::Build(const Corpus& corpus) {
  InvertedIndex index;
  index.postings_.resize(corpus.vocab().size());
  for (DocId d = 0; d < corpus.size(); ++d) {
    const Document& doc = corpus.doc(d);
    auto add = [&](TermId t) {
      PM_CHECK(t < index.postings_.size());
      std::vector<DocId>& list = index.postings_[t];
      if (list.empty() || list.back() != d) list.push_back(d);
    };
    for (TermId t : doc.tokens) add(t);
    for (TermId t : doc.facets) add(t);
  }
  return index;
}

const std::vector<DocId>& InvertedIndex::docs(TermId term) const {
  if (term >= postings_.size()) return empty_;
  return postings_[term];
}

std::vector<DocId> InvertedIndex::Intersect(
    const std::vector<const std::vector<DocId>*>& lists) {
  if (lists.empty()) return {};
  std::vector<const std::vector<DocId>*> sorted = lists;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<DocId> result = *sorted[0];
  for (std::size_t i = 1; i < sorted.size() && !result.empty(); ++i) {
    const std::vector<DocId>& other = *sorted[i];
    std::vector<DocId> next;
    next.reserve(result.size());
    auto it = other.begin();
    for (DocId d : result) {
      it = std::lower_bound(it, other.end(), d);
      if (it == other.end()) break;
      if (*it == d) next.push_back(d);
    }
    result = std::move(next);
  }
  return result;
}

std::vector<DocId> InvertedIndex::Union(
    const std::vector<const std::vector<DocId>*>& lists) {
  std::vector<DocId> result;
  for (const std::vector<DocId>* list : lists) {
    if (list->empty()) continue;
    if (result.empty()) {
      result = *list;
      continue;
    }
    std::vector<DocId> merged;
    merged.reserve(result.size() + list->size());
    std::set_union(result.begin(), result.end(), list->begin(), list->end(),
                   std::back_inserter(merged));
    result = std::move(merged);
  }
  return result;
}

std::size_t InvertedIndex::IntersectSize(std::span<const DocId> a,
                                         std::span<const DocId> b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::size_t count = 0;
  auto it = b.begin();
  for (DocId d : a) {
    it = std::lower_bound(it, b.end(), d);
    if (it == b.end()) break;
    if (*it == d) {
      ++count;
      ++it;
    }
  }
  return count;
}

void InvertedIndex::Serialize(BinaryWriter* writer) const {
  writer->PutU32(static_cast<uint32_t>(postings_.size()));
  for (const std::vector<DocId>& list : postings_) {
    writer->PutU32Vector(list);
  }
}

Result<InvertedIndex> InvertedIndex::Deserialize(BinaryReader* reader) {
  uint32_t n = 0;
  Status s = reader->GetU32(&n);
  if (!s.ok()) return s;
  InvertedIndex index;
  index.postings_.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    s = reader->GetU32Vector(&index.postings_[i]);
    if (!s.ok()) return s;
  }
  return index;
}

}  // namespace phrasemine
