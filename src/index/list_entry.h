#ifndef PHRASEMINE_INDEX_LIST_ENTRY_H_
#define PHRASEMINE_INDEX_LIST_ENTRY_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "text/types.h"

namespace phrasemine {

/// One [phraseid, prob] pair of a word-specific list (Figure 2). `prob`
/// holds P(q|p) = |docs(q) ∩ docs(p)| / |docs(p)| (Eq. 13).
struct ListEntry {
  PhraseId phrase;
  double prob;
};

/// Packed on-disk entry size: 4-byte id + 8-byte double, the figure the
/// paper's Section 5.7 index-size accounting uses and the unit
/// SimulatedDisk charges per entry. This is NOT sizeof(ListEntry): in
/// memory the struct pads the id to alignof(double), so a resident AoS
/// list costs kListEntryInMemoryBytes per entry (the SoA kernel layout
/// packs ids and probs into separate arrays and pays exactly the packed
/// figure instead). table5_index_sizes reports both so the paper-figure
/// reproduction does not under-count RAM.
inline constexpr std::size_t kListEntryBytes = 12;

/// Resident AoS entry size (padded).
inline constexpr std::size_t kListEntryInMemoryBytes = sizeof(ListEntry);

static_assert(sizeof(ListEntry) == 16,
              "ListEntry pads to 16 bytes in memory; kListEntryBytes (12) is "
              "deliberately the packed on-disk figure, not sizeof");

/// A word-specific list held by shared ownership. Lists are immutable once
/// built, so one physical list can back an engine's lazy index, a service
/// cache entry, and a per-query bundle simultaneously without copying.
using SharedWordList = std::shared_ptr<const std::vector<ListEntry>>;

}  // namespace phrasemine

#endif  // PHRASEMINE_INDEX_LIST_ENTRY_H_
