#include "subscribe/subscription_manager.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/cancel.h"
#include "core/delta_index.h"
#include "index/word_lists.h"
#include "testing/failpoint.h"

namespace phrasemine {

namespace {

/// Component-wise a <= b; false when the shapes differ (shard count
/// changed -- treat as incomparable).
bool VecLeq(const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

uint64_t VecSum(const std::vector<uint64_t>& v) {
  uint64_t sum = 0;
  for (uint64_t x : v) sum += x;
  return sum;
}

}  // namespace

const char* TopKChangeKindName(TopKChangeKind kind) {
  switch (kind) {
    case TopKChangeKind::kEntered:
      return "entered";
    case TopKChangeKind::kLeft:
      return "left";
    case TopKChangeKind::kReordered:
      return "reordered";
    case TopKChangeKind::kRescored:
      return "rescored";
  }
  return "unknown";
}

/// All mutable mining state is worker-only after the bootstrap command is
/// enqueued; the published state and the notification queue are guarded
/// by the manager's subs_mu_.
struct SubscriptionManager::Sub {
  uint64_t id = 0;
  SubscriptionRequest request;  // terms canonicalized
  Query query;
  std::size_t k_shadow = 0;
  std::atomic<bool> cancelled{false};

  // --- Worker-only mining state ---
  bool bootstrapped = false;
  /// Set when incremental maintenance is impossible (rebuild, lost
  /// events, inconclusive exact bound, cancelled re-mine): the next
  /// processed event re-mines from scratch.
  bool dirty = false;
  /// Rank-ordered qualifying phrases with exact scores; every phrase
  /// outside ranks worse than the bound below (or does not qualify).
  std::vector<MinedPhrase> shadow;
  /// True when `shadow` provably holds EVERY qualifying phrase (the last
  /// full mine returned fewer than k_shadow results).
  bool bound_none = true;
  double bound_score = 0.0;
  PhraseId bound_phrase = 0;
  /// Per-shard epochs at which `shadow` is exact ({epoch} on a monolith).
  std::vector<uint64_t> state_vec;

  // --- Published state + notifications (guarded by subs_mu_) ---
  std::vector<MinedPhrase> published;
  uint64_t published_epoch = 0;
  bool published_exact = true;
  bool ever_published = false;
  std::deque<SubscriptionUpdate> updates;
};

namespace {

/// Diff of two publishes in the new publish's rank order, kLeft entries
/// last -- the notification payload subscribers act on.
std::vector<TopKChange> DiffTopK(const std::vector<MinedPhrase>& old_topk,
                                 const std::vector<MinedPhrase>& new_topk) {
  std::vector<TopKChange> changes;
  std::unordered_map<PhraseId, int> old_rank;
  old_rank.reserve(old_topk.size());
  for (std::size_t i = 0; i < old_topk.size(); ++i) {
    old_rank.emplace(old_topk[i].phrase, static_cast<int>(i));
  }
  std::unordered_map<PhraseId, int> new_rank;
  new_rank.reserve(new_topk.size());
  for (std::size_t i = 0; i < new_topk.size(); ++i) {
    new_rank.emplace(new_topk[i].phrase, static_cast<int>(i));
  }
  for (std::size_t i = 0; i < new_topk.size(); ++i) {
    const MinedPhrase& np = new_topk[i];
    auto it = old_rank.find(np.phrase);
    if (it == old_rank.end()) {
      changes.push_back(TopKChange{TopKChangeKind::kEntered, np.phrase, -1,
                                   static_cast<int>(i), 0.0, np.score});
      continue;
    }
    const MinedPhrase& op = old_topk[static_cast<std::size_t>(it->second)];
    if (it->second != static_cast<int>(i)) {
      changes.push_back(TopKChange{TopKChangeKind::kReordered, np.phrase,
                                   it->second, static_cast<int>(i), op.score,
                                   np.score});
    } else if (op.score != np.score) {
      changes.push_back(TopKChange{TopKChangeKind::kRescored, np.phrase,
                                   it->second, static_cast<int>(i), op.score,
                                   np.score});
    }
  }
  for (std::size_t i = 0; i < old_topk.size(); ++i) {
    if (new_rank.find(old_topk[i].phrase) == new_rank.end()) {
      changes.push_back(TopKChange{TopKChangeKind::kLeft, old_topk[i].phrase,
                                   static_cast<int>(i), -1, old_topk[i].score,
                                   0.0});
    }
  }
  return changes;
}

}  // namespace

SubscriptionManager::SubscriptionManager(MiningEngine* engine, Options options)
    : options_(options), mono_(engine) {
  Attach();
}

SubscriptionManager::SubscriptionManager(ShardedEngine* engine, Options options)
    : options_(options), sharded_(engine) {
  Attach();
}

void SubscriptionManager::Attach() {
  options_.queue_capacity = std::max<std::size_t>(options_.queue_capacity, 1);
  options_.event_capacity = std::max<std::size_t>(options_.event_capacity, 1);
  options_.shadow_pad = std::max<std::size_t>(options_.shadow_pad, 1);
  MetricsRegistry& reg =
      options_.metrics != nullptr ? *options_.metrics : MetricsRegistry::Default();
  subscriptions_gauge_ = reg.GetGauge("subscribe_subscriptions");
  batches_total_ = reg.GetCounter("subscribe_batches_total");
  incremental_total_ = reg.GetCounter("subscribe_incremental_total");
  remine_total_ = reg.GetCounter("subscribe_remine_total");
  notifications_total_ = reg.GetCounter("subscribe_notifications_total");
  dropped_total_ = reg.GetCounter("subscribe_dropped_total");
  events_dropped_total_ = reg.GetCounter("subscribe_events_dropped_total");
  fanout_deadline_total_ = reg.GetCounter("subscribe_fanout_deadline_total");
  touched_total_ = reg.GetCounter("subscribe_touched_phrases_total");

  worker_ = std::thread([this] { WorkerLoop(); });
  if (sharded_ != nullptr) {
    sharded_->SetUpdateListener([this](const ShardedUpdateEvent& ev) {
      Msg msg;
      msg.kind = Msg::Kind::kShardedEvent;
      msg.sharded = ev;
      EnqueueEvent(std::move(msg));
    });
  } else {
    mono_->SetUpdateListener([this](const UpdateEvent& ev) {
      Msg msg;
      msg.kind = Msg::Kind::kMonoEvent;
      msg.mono = ev;
      EnqueueEvent(std::move(msg));
    });
  }
}

SubscriptionManager::~SubscriptionManager() {
  // Detach first: after SetUpdateListener(nullptr) returns no further
  // callback can run, so the queue below is final.
  if (sharded_ != nullptr) {
    sharded_->SetUpdateListener(nullptr);
  } else {
    mono_->SetUpdateListener(nullptr);
  }
  {
    std::scoped_lock lock(queue_mu_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  drain_cv_.notify_all();
  worker_.join();
  subs_cv_.notify_all();
}

void SubscriptionManager::EnqueueEvent(Msg msg) {
  // Runs on the ingest thread, under the engine's update mutex: enqueue
  // and return, nothing else. Data events are dropped on overflow (the
  // lost flag re-mines every subscription later); control commands are
  // always admitted.
  {
    std::scoped_lock lock(queue_mu_);
    if (shutdown_) return;
    if (msg.kind != Msg::Kind::kBootstrap &&
        queue_.size() >= options_.event_capacity) {
      events_lost_ = true;
      events_dropped_total_->Increment();
      return;
    }
    queue_.push_back(std::move(msg));
  }
  queue_cv_.notify_one();
}

void SubscriptionManager::WorkerLoop() {
  for (;;) {
    Msg msg;
    bool lost = false;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) return;
      msg = std::move(queue_.front());
      queue_.pop_front();
      processing_ = true;
      lost = events_lost_;
      events_lost_ = false;
    }
    Handle(msg, lost);
    {
      std::scoped_lock lock(queue_mu_);
      processing_ = false;
      // Re-latch the lost flag if this was a control message: the next
      // data event still has to re-mine everyone.
      if (lost && msg.kind == Msg::Kind::kBootstrap) events_lost_ = true;
      if (queue_.empty()) drain_cv_.notify_all();
    }
  }
}

void SubscriptionManager::Handle(Msg& msg, bool events_lost) {
  if (msg.kind == Msg::Kind::kBootstrap) {
    std::shared_ptr<Sub> sub;
    {
      std::scoped_lock lock(subs_mu_);
      auto it = subs_.find(msg.subscription);
      if (it != subs_.end()) sub = it->second;
    }
    if (sub != nullptr && !sub->cancelled.load(std::memory_order_relaxed)) {
      Remine(*sub, nullptr, /*bootstrap=*/true, nullptr);
    }
    return;
  }
  ProcessDataEvent(msg, events_lost);
}

void SubscriptionManager::ProcessDataEvent(Msg& msg, bool events_lost) {
  batches_total_->Increment();
  const bool rebuilt = msg.kind == Msg::Kind::kShardedEvent
                           ? msg.sharded.rebuilt
                           : msg.mono.rebuilt;
  const std::vector<PhraseId>& touched = msg.kind == Msg::Kind::kShardedEvent
                                             ? msg.sharded.touched
                                             : msg.mono.touched;
  touched_total_->Add(touched.size());

  std::vector<uint64_t> event_vec;
  if (msg.kind == Msg::Kind::kShardedEvent) {
    event_vec.reserve(msg.sharded.shards.size());
    for (const ShardUpdateEvent& s : msg.sharded.shards) {
      event_vec.push_back(s.epoch);
    }
  } else {
    event_vec.push_back(msg.mono.epoch);
  }

  std::shared_ptr<TraceSpan> trace;
  if (options_.trace) {
    trace = std::make_shared<TraceSpan>();
    trace->name = "subscribe.batch";
    AddCounter(trace.get(), "touched", static_cast<double>(touched.size()));
    AddCounter(trace.get(), "epoch", static_cast<double>(VecSum(event_vec)));
  }
  SpanTimer batch_timer(trace.get());

  std::vector<std::shared_ptr<Sub>> subs;
  {
    std::scoped_lock lock(subs_mu_);
    subs.reserve(subs_.size());
    for (const auto& [id, sub] : subs_) subs.push_back(sub);
  }

  const bool has_deadline = options_.fanout_deadline_ms > 0.0;
  CancelToken deadline = has_deadline
                             ? CancelToken::AfterMillis(options_.fanout_deadline_ms)
                             : CancelToken();
  const CancelToken* token = has_deadline ? &deadline : nullptr;

  std::size_t incremental_subs = 0;
  for (const std::shared_ptr<Sub>& sp : subs) {
    Sub& sub = *sp;
    if (sub.cancelled.load(std::memory_order_relaxed)) continue;
    // A subscription whose bootstrap command is still queued has no state
    // to maintain; its bootstrap mine will cover this batch.
    if (!sub.bootstrapped) continue;
    if (rebuilt || events_lost) sub.dirty = true;
    if (token != nullptr && token->Expired()) {
      sub.dirty = true;
      fanout_deadline_total_->Increment();
      continue;
    }
    if (!sub.dirty) {
      if (VecLeq(event_vec, sub.state_vec)) continue;  // already covered
      const bool contiguous =
          prev_event_valid_ && VecLeq(prev_event_vec_, sub.state_vec) &&
          VecLeq(sub.state_vec, event_vec);
      if (contiguous) {
        if (IncrementalStep(sub, msg, event_vec)) {
          ++incremental_subs;
        } else {
          sub.dirty = true;  // inconclusive under an exact guarantee
        }
      } else {
        // The shadow state interleaves the event stream (a re-mine raced
        // concurrent ingest): the gap to this event is not a single
        // batch, so the touched set does not bound what changed.
        sub.dirty = true;
      }
    }
    if (sub.dirty) {
      TraceSpan* remine_span = nullptr;
      if (trace != nullptr) {
        remine_span = AddSpan(trace.get(), "remine");
        SetDetail(remine_span, "subscription " + std::to_string(sub.id));
      }
      Remine(sub, token, /*bootstrap=*/false, remine_span);
    }
  }

  if (rebuilt) {
    base_lists_.clear();
    prev_event_valid_ = false;
  } else if (events_lost) {
    prev_event_valid_ = false;
  } else {
    prev_event_vec_ = event_vec;
    prev_event_valid_ = true;
  }

  if (trace != nullptr) {
    AddCounter(trace.get(), "incremental_subscriptions",
               static_cast<double>(incremental_subs));
    batch_timer.Stop();
    std::scoped_lock lock(subs_mu_);
    last_batch_trace_ = std::move(trace);
  }
}

bool SubscriptionManager::IncrementalStep(
    Sub& sub, const Msg& msg, const std::vector<uint64_t>& event_vec) {
  const std::vector<PhraseId>& touched = msg.kind == Msg::Kind::kShardedEvent
                                             ? msg.sharded.touched
                                             : msg.mono.touched;
  bool ok = true;
  const std::vector<Rescored> rescored = RescoreTouched(sub, msg, touched, &ok);
  if (!ok) return false;  // structures moved past the event: re-mine

  // Merge the rescored phrases into the shadow set. Positions of existing
  // entries first, so each touched phrase updates in place or is removed.
  std::unordered_map<PhraseId, std::size_t> pos;
  pos.reserve(sub.shadow.size());
  for (std::size_t i = 0; i < sub.shadow.size(); ++i) {
    pos.emplace(sub.shadow[i].phrase, i);
  }
  std::vector<bool> remove(sub.shadow.size(), false);
  std::vector<MinedPhrase> inserts;
  for (std::size_t t = 0; t < touched.size(); ++t) {
    const PhraseId p = touched[t];
    const Rescored& r = rescored[t];
    auto it = pos.find(p);
    if (it != pos.end()) {
      if (r.qualifies) {
        sub.shadow[it->second].score = r.score;
        sub.shadow[it->second].interestingness = r.interestingness;
      } else {
        remove[it->second] = true;
      }
      continue;
    }
    if (!r.qualifies) continue;
    // Outside phrases ranking worse than the bound stay outside -- the
    // invariant already covers them.
    if (!sub.bound_none &&
        !RanksBetter(r.score, p, sub.bound_score, sub.bound_phrase)) {
      continue;
    }
    inserts.push_back(MinedPhrase{p, r.score, r.interestingness});
  }

  std::vector<MinedPhrase> next;
  next.reserve(sub.shadow.size() + inserts.size());
  for (std::size_t i = 0; i < sub.shadow.size(); ++i) {
    if (!remove[i]) next.push_back(sub.shadow[i]);
  }
  next.insert(next.end(), inserts.begin(), inserts.end());
  std::sort(next.begin(), next.end(),
            [](const MinedPhrase& a, const MinedPhrase& b) {
              return RanksBetter(a.score, a.phrase, b.score, b.phrase);
            });

  // Prune back to the cap: entries ranking worse than the bound go first
  // (free -- the invariant already lets them live outside); if the set is
  // still oversized the bound tightens to the last kept entry.
  if (next.size() > sub.k_shadow) {
    if (!sub.bound_none) {
      while (!next.empty() &&
             RanksBetter(sub.bound_score, sub.bound_phrase, next.back().score,
                         next.back().phrase)) {
        next.pop_back();
      }
    }
    if (next.size() > sub.k_shadow) {
      next.resize(sub.k_shadow);
      sub.bound_none = false;
      sub.bound_score = next.back().score;
      sub.bound_phrase = next.back().phrase;
    }
  }
  sub.shadow = std::move(next);

  // Publish is provably the fresh top-k iff no outside phrase can rank at
  // or above the k-th shadow entry: either the shadow holds every
  // qualifying phrase, or its k-th entry still ranks at or above the
  // bound (everything outside ranks strictly worse than the bound).
  const std::size_t k = sub.request.k;
  const bool conclusive =
      sub.bound_none ||
      (sub.shadow.size() >= k &&
       !RanksBetter(sub.bound_score, sub.bound_phrase, sub.shadow[k - 1].score,
                    sub.shadow[k - 1].phrase));
  if (!conclusive && sub.request.exact) return false;

  sub.state_vec = event_vec;
  incremental_total_->Increment();
  Publish(sub, conclusive, /*initial=*/false);
  return true;
}

std::vector<SubscriptionManager::Rescored> SubscriptionManager::RescoreTouched(
    const Sub& sub, const Msg& msg, const std::vector<PhraseId>& touched,
    bool* ok) {
  const std::vector<TermId>& terms = sub.query.terms;
  const std::size_t nt = terms.size();
  const std::size_t np = touched.size();
  std::vector<Rescored> out(np);
  std::vector<double> probs(nt, 0.0);
  const QueryOperator op = sub.request.op;

  if (msg.kind == Msg::Kind::kMonoEvent) {
    if (!EnsureBaseLists(0, terms, msg.mono.structure_version)) {
      *ok = false;
      return out;
    }
    const DeltaIndex* delta = msg.mono.delta.get();
    for (std::size_t i = 0; i < np; ++i) {
      const PhraseId p = touched[i];
      for (std::size_t j = 0; j < nt; ++j) {
        const double base = BaseProb(0, terms[j], p);
        probs[j] = delta != nullptr ? delta->AdjustedProb(terms[j], p, base)
                                    : std::clamp(base, 0.0, 1.0);
      }
      bool qualifies = true;
      if (op == QueryOperator::kAnd) {
        for (double prob : probs) {
          if (!(prob > 0.0)) {
            qualifies = false;
            break;
          }
        }
      }
      if (!qualifies) continue;
      const double score = op == QueryOperator::kAnd
                               ? AndScore(probs)
                               : OrScore(probs, sub.request.or_order);
      if (op == QueryOperator::kAnd ? score == kMinusInfinity
                                    : !(score > 0.0)) {
        continue;
      }
      out[i] = Rescored{true, score, ScoreToInterestingness(score, op)};
    }
    return out;
  }

  // Sharded: global score = f(summed per-shard integer supports), the
  // gather's exact arithmetic (AdjustedShardDf/AdjustedShardCodf are the
  // very helpers its fill rounds use). One locked pass per shard covers
  // every touched phrase.
  const std::size_t num_shards = msg.sharded.shards.size();
  std::vector<uint64_t> df(np, 0);
  std::vector<uint64_t> codf(np * nt, 0);
  for (std::size_t s = 0; s < num_shards && *ok; ++s) {
    const ShardUpdateEvent& se = msg.sharded.shards[s];
    if (!EnsureBaseLists(s, terms, se.structure_version)) {
      *ok = false;
      break;
    }
    sharded_->WithShard(s, [&](MiningEngine& engine) {
      engine.WithSharedStructures([&] {
        if (engine.structure_version() != se.structure_version) {
          *ok = false;
          return;
        }
        const DeltaIndex* delta = se.delta.get();
        const PhraseDictionary& dict = engine.dict();
        for (std::size_t i = 0; i < np; ++i) {
          const PhraseId p = touched[i];
          if (p >= dict.size()) continue;
          const uint32_t base_df = dict.df(p);
          const uint32_t df_adj = AdjustedShardDf(base_df, p, delta);
          df[i] += df_adj;
          for (std::size_t j = 0; j < nt; ++j) {
            const double base = BaseProb(s, terms[j], p);
            codf[i * nt + j] +=
                AdjustedShardCodf(base, base_df, terms[j], p, delta, df_adj);
          }
        }
      });
    });
  }
  if (!*ok) return out;

  for (std::size_t i = 0; i < np; ++i) {
    bool all_present = true;
    for (std::size_t j = 0; j < nt; ++j) {
      const uint64_t c = codf[i * nt + j];
      if (c == 0) all_present = false;
      probs[j] = df[i] == 0 ? 0.0
                            : static_cast<double>(c) /
                                  static_cast<double>(df[i]);
    }
    if (op == QueryOperator::kAnd && !all_present) continue;
    const double score = op == QueryOperator::kAnd
                             ? AndScore(probs)
                             : OrScore(probs, sub.request.or_order);
    if (op == QueryOperator::kAnd ? score == kMinusInfinity : !(score > 0.0)) {
      continue;
    }
    out[i] = Rescored{true, score, ScoreToInterestingness(score, op)};
  }
  return out;
}

double SubscriptionManager::BaseProb(std::size_t shard, TermId term,
                                     PhraseId phrase) const {
  const uint64_t key = (static_cast<uint64_t>(shard) << 32) |
                       static_cast<uint64_t>(term);
  auto it = base_lists_.find(key);
  if (it == base_lists_.end() || it->second.id_ordered == nullptr) return 0.0;
  const std::vector<ListEntry>& list = *it->second.id_ordered;
  auto pos = std::lower_bound(
      list.begin(), list.end(), phrase,
      [](const ListEntry& e, PhraseId id) { return e.phrase < id; });
  if (pos == list.end() || pos->phrase != phrase) return 0.0;
  return pos->prob;
}

bool SubscriptionManager::EnsureBaseLists(std::size_t shard,
                                          const std::vector<TermId>& terms,
                                          uint64_t version) {
  std::vector<TermId> missing;
  for (TermId t : terms) {
    const uint64_t key = (static_cast<uint64_t>(shard) << 32) |
                         static_cast<uint64_t>(t);
    auto it = base_lists_.find(key);
    if (it == base_lists_.end() || it->second.version != version) {
      missing.push_back(t);
    }
  }
  if (missing.empty()) return true;

  std::vector<SharedWordList> score_lists(missing.size());
  bool ok = true;
  auto read = [&](MiningEngine& engine) {
    engine.EnsureWordLists(missing);
    engine.WithSharedStructures([&] {
      if (engine.structure_version() != version) {
        ok = false;
        return;
      }
      for (std::size_t i = 0; i < missing.size(); ++i) {
        score_lists[i] = engine.word_lists().shared(missing[i]);
      }
    });
  };
  if (sharded_ != nullptr) {
    sharded_->WithShard(shard, read);
  } else {
    read(*mono_);
  }
  if (!ok) return false;

  for (std::size_t i = 0; i < missing.size(); ++i) {
    const uint64_t key = (static_cast<uint64_t>(shard) << 32) |
                         static_cast<uint64_t>(missing[i]);
    SharedWordList id_ordered =
        score_lists[i] == nullptr
            ? std::make_shared<const std::vector<ListEntry>>()
            : WordIdOrderedLists::IdOrderPrefix(*score_lists[i]);
    base_lists_[key] = CachedList{version, std::move(id_ordered)};
  }
  return true;
}

void SubscriptionManager::Remine(Sub& sub, const CancelToken* cancel,
                                 bool bootstrap, TraceSpan* span) {
  if (!bootstrap) remine_total_->Increment();
  SpanTimer timer(span);

  MineOptions mo;
  mo.k = sub.k_shadow;
  mo.or_order = sub.request.or_order;
  mo.cancel = cancel;
  MineResult result;
  std::vector<uint64_t> vec;
  if (sharded_ != nullptr) {
    ShardedMineResult sr = sharded_->Mine(sub.query, Algorithm::kSmj, mo);
    result = std::move(sr.result);
    vec = result.shard_epochs;
  } else {
    result = mono_->Mine(sub.query, Algorithm::kSmj, mo);
    vec = {result.epoch};
  }
  if (!result.status.ok()) {
    // Cancelled or failed mid-run: partial rankings must never be
    // installed. Stay dirty; the next event retries.
    sub.dirty = true;
    if (cancel != nullptr && cancel->cancelled()) {
      fanout_deadline_total_->Increment();
    }
    return;
  }

  sub.shadow = std::move(result.phrases);
  sub.bound_none = sub.shadow.size() < sub.k_shadow;
  if (!sub.bound_none) {
    sub.bound_score = sub.shadow.back().score;
    sub.bound_phrase = sub.shadow.back().phrase;
  }
  sub.state_vec = std::move(vec);
  sub.dirty = false;
  sub.bootstrapped = true;
  Publish(sub, /*exact=*/true, bootstrap);
}

void SubscriptionManager::Publish(Sub& sub, bool exact, bool initial) {
  const std::size_t k = std::min(sub.request.k, sub.shadow.size());
  std::vector<MinedPhrase> topk(sub.shadow.begin(), sub.shadow.begin() + k);
  const uint64_t epoch = VecSum(sub.state_vec);

  // The failpoint models the notification channel to one subscriber:
  // injected latency slows only this worker (ingest keeps publishing
  // events into the bounded queue), an injected error drops the
  // notification while the published state still advances. Evaluated
  // outside the lock so an armed delay never blocks Poll/Subscribe.
  const Status notify_status = PM_FAILPOINT("subscribe.notify");

  bool notify = false;
  {
    std::scoped_lock lock(subs_mu_);
    std::vector<TopKChange> changes = DiffTopK(sub.published, topk);
    const bool changed = !sub.ever_published || initial || !changes.empty() ||
                         exact != sub.published_exact;
    sub.published = topk;
    sub.published_epoch = epoch;
    sub.published_exact = exact;
    sub.ever_published = true;
    if (changed) {
      if (!notify_status.ok()) {
        dropped_total_->Increment();
      } else {
        if (sub.updates.size() >= options_.queue_capacity) {
          sub.updates.pop_front();
          dropped_total_->Increment();
        }
        SubscriptionUpdate update;
        update.subscription = sub.id;
        update.epoch = epoch;
        update.exact = exact;
        update.initial = initial;
        update.topk = std::move(topk);
        update.changes = std::move(changes);
        sub.updates.push_back(std::move(update));
        notifications_total_->Increment();
        notify = true;
      }
    }
  }
  if (notify) subs_cv_.notify_all();
}

Result<uint64_t> SubscriptionManager::Subscribe(
    const SubscriptionRequest& request) {
  if (request.terms.empty()) {
    return Status::InvalidArgument("subscription needs at least one term");
  }
  if (request.k == 0) {
    return Status::InvalidArgument("subscription k must be positive");
  }
  // Full id-ordered lists are what makes both the incremental rescore and
  // the re-mine fallback exact; truncated lists would make them silently
  // approximate, so refuse instead.
  const double fraction =
      sharded_ != nullptr ? 1.0 : mono_->smj_fraction();
  if (fraction < 1.0) {
    return Status::FailedPrecondition(
        "subscriptions need full SMJ lists (smj_fraction >= 1)");
  }

  // Canonicalize exactly like PhraseService: sorted, deduplicated terms.
  std::vector<std::string> terms = request.terms;
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  std::string text;
  for (const std::string& t : terms) {
    if (!text.empty()) text += ' ';
    text += t;
  }
  Result<Query> query = sharded_ != nullptr
                            ? sharded_->ParseQuery(text, request.op)
                            : mono_->ParseQuery(text, request.op);
  if (!query.ok()) return query.status();

  auto sub = std::make_shared<Sub>();
  sub->request = request;
  sub->request.terms = std::move(terms);
  sub->query = std::move(query).value();
  sub->k_shadow = request.k + options_.shadow_pad;

  uint64_t id = 0;
  {
    std::scoped_lock lock(subs_mu_);
    id = next_id_++;
    sub->id = id;
    subs_.emplace(id, sub);
  }
  subscriptions_gauge_->Add(1);

  Msg msg;
  msg.kind = Msg::Kind::kBootstrap;
  msg.subscription = id;
  EnqueueEvent(std::move(msg));
  return id;
}

Status SubscriptionManager::Unsubscribe(uint64_t id) {
  std::shared_ptr<Sub> sub;
  {
    std::scoped_lock lock(subs_mu_);
    auto it = subs_.find(id);
    if (it == subs_.end()) {
      return Status::NotFound("unknown subscription");
    }
    sub = it->second;
    subs_.erase(it);
  }
  sub->cancelled.store(true, std::memory_order_relaxed);
  subscriptions_gauge_->Add(-1);
  subs_cv_.notify_all();  // wake any Poll waiter parked on this id
  return Status::OK();
}

Result<std::vector<SubscriptionUpdate>> SubscriptionManager::Poll(
    uint64_t id, std::size_t max_updates, double wait_ms) {
  std::unique_lock lock(subs_mu_);
  auto it = subs_.find(id);
  if (it == subs_.end()) return Status::NotFound("unknown subscription");
  std::shared_ptr<Sub> sub = it->second;
  if (sub->updates.empty() && wait_ms > 0.0) {
    subs_cv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(wait_ms), [&] {
          return !sub->updates.empty() ||
                 sub->cancelled.load(std::memory_order_relaxed);
        });
  }
  std::vector<SubscriptionUpdate> out;
  while (!sub->updates.empty() && out.size() < max_updates) {
    out.push_back(std::move(sub->updates.front()));
    sub->updates.pop_front();
  }
  return out;
}

Result<SubscriptionState> SubscriptionManager::Snapshot(uint64_t id) const {
  std::scoped_lock lock(subs_mu_);
  auto it = subs_.find(id);
  if (it == subs_.end()) return Status::NotFound("unknown subscription");
  SubscriptionState state;
  state.epoch = it->second->published_epoch;
  state.exact = it->second->published_exact;
  state.topk = it->second->published;
  return state;
}

void SubscriptionManager::Flush() {
  std::unique_lock lock(queue_mu_);
  drain_cv_.wait(lock, [this] {
    return shutdown_ || (queue_.empty() && !processing_);
  });
}

std::size_t SubscriptionManager::num_subscriptions() const {
  std::scoped_lock lock(subs_mu_);
  return subs_.size();
}

std::shared_ptr<const TraceSpan> SubscriptionManager::LastBatchTrace() const {
  std::scoped_lock lock(subs_mu_);
  return last_batch_trace_;
}

}  // namespace phrasemine
