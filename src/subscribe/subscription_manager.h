#ifndef PHRASEMINE_SUBSCRIBE_SUBSCRIPTION_MANAGER_H_
#define PHRASEMINE_SUBSCRIBE_SUBSCRIPTION_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/miner.h"
#include "core/query.h"
#include "core/scoring.h"
#include "index/list_entry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/sharded_engine.h"
#include "text/types.h"

namespace phrasemine {

/// What a standing query asks for. Terms are canonicalized exactly like
/// PhraseService canonicalizes ad-hoc queries (sorted, deduplicated), so a
/// subscription's top-k is comparable to the service's cached results for
/// the same term set.
struct SubscriptionRequest {
  std::vector<std::string> terms;
  QueryOperator op = QueryOperator::kAnd;
  /// Result count the subscriber sees per publish.
  std::size_t k = 5;
  /// OR-score expansion order (must match the mines being compared
  /// against; the manager re-mines with the same order).
  OrExpansionOrder or_order = OrExpansionOrder::kFirstOrder;
  /// true: every published top-k is provably equal to a fresh SMJ re-mine
  /// at that epoch -- inconclusive incremental bounds trigger a scoped
  /// re-mine (counted in subscribe_remine_total). false (best-effort):
  /// inconclusive publishes go out anyway, flagged `exact = false`; the
  /// recall bound is documented in docs/subscriptions.md (any missed
  /// phrase ranks below the last full mine's k_shadow-th boundary).
  bool exact = true;
};

/// How one phrase's membership in the published top-k changed.
enum class TopKChangeKind {
  kEntered,    ///< Not in the previous publish, in this one.
  kLeft,       ///< In the previous publish, not in this one.
  kReordered,  ///< In both, at a different rank.
  kRescored,   ///< Same rank, different score.
};

/// Renders "entered"/"left"/"reordered"/"rescored".
const char* TopKChangeKindName(TopKChangeKind kind);

/// One entry of a publish's delta against the previous publish.
struct TopKChange {
  TopKChangeKind kind = TopKChangeKind::kRescored;
  PhraseId phrase = kInvalidPhraseId;
  /// Rank in the previous publish (-1 for kEntered).
  int old_rank = -1;
  /// Rank in this publish (-1 for kLeft).
  int new_rank = -1;
  double old_score = 0.0;
  double new_score = 0.0;
};

/// One notification drained by Poll: the full top-k as of `epoch` plus the
/// delta against the subscriber's previous notification.
struct SubscriptionUpdate {
  uint64_t subscription = 0;
  /// Engine epoch of this publish (composite sum for a sharded fleet).
  uint64_t epoch = 0;
  /// True when this publish is provably equal to a fresh re-mine at
  /// `epoch`; false only for best-effort subscriptions that published
  /// through an inconclusive bound.
  bool exact = true;
  /// True for the bootstrap publish right after Subscribe.
  bool initial = false;
  std::vector<MinedPhrase> topk;
  std::vector<TopKChange> changes;
};

/// Point-in-time view of a subscription's current published state
/// (independent of the notification queue; Poll never has to be caught up
/// for Snapshot to be current).
struct SubscriptionState {
  uint64_t epoch = 0;
  bool exact = true;
  std::vector<MinedPhrase> topk;
};

/// Sizing and policy knobs for SubscriptionManager.
struct SubscriptionManagerOptions {
  /// Bounded per-subscriber notification queue: when a subscriber stops
  /// polling, the oldest notification is dropped to admit the newest
  /// (drop-oldest, counted in subscribe_dropped_total) -- the PR 9
  /// admission philosophy applied to fan-out. Clamped to >= 1.
  std::size_t queue_capacity = 64;
  /// Bounded update-event queue between the engine's ingest thread and
  /// the worker. Overflow drops the data event (ingest never blocks) and
  /// latches a lost-events flag: every subscription is re-mined at the
  /// next processed event (counted in subscribe_events_dropped_total).
  /// Clamped to >= 1.
  std::size_t event_capacity = 256;
  /// Shadow-set headroom beyond k: the manager tracks the top
  /// (k + shadow_pad) qualifying phrases so rank churn around the k-th
  /// floor stays conclusive without re-mining. Clamped to >= 1.
  std::size_t shadow_pad = 16;
  /// Per-batch fan-out deadline in milliseconds (0 = none): when
  /// processing one batch across all subscriptions exceeds it, the
  /// remaining subscriptions are marked dirty (re-mined on the next
  /// event) instead of stalling the event queue, and any in-flight
  /// scoped re-mine is cancelled through the same token (a cancelled
  /// mine is never installed). Counted in
  /// subscribe_fanout_deadline_total.
  double fanout_deadline_ms = 0.0;
  /// When true the worker keeps a per-batch trace span tree readable via
  /// LastBatchTrace() -- the same TraceSpan shape the mines emit.
  bool trace = false;
  /// Metric registry the subscribe_* metrics land in; null uses
  /// MetricsRegistry::Default(). PhraseService passes its own registry.
  MetricsRegistry* metrics = nullptr;
};

/// Standing queries over the live update stream (the ROADMAP's
/// "incremental maintenance of standing top-k subscriptions" item).
///
/// A subscription registers a phrase query once; from then on every
/// ApplyUpdate batch is turned into the subscription's top-k *delta*
/// incrementally from the batch's co-deltas instead of re-mining:
///
///  * The manager installs the engine's update listener
///    (MiningEngine::SetUpdateListener / ShardedEngine::SetUpdateListener)
///    and only enqueues the immutable UpdateEvent -- the ingest thread is
///    never blocked by subscription work, slow subscribers included.
///  * A single worker thread drains events in epoch order. Per
///    subscription it maintains a shadow set S: the top (k + shadow_pad)
///    qualifying phrases with *exact* scores, plus a rank bound B -- the
///    rank (score, PhraseId) of the last shadow entry retained from the
///    last full mine. Invariant: every phrase outside S either does not
///    qualify or ranks strictly worse than B.
///  * Per batch, exactly the event's touched phrases (the phrases whose
///    df/co-deltas the batch moved -- the complete "can have changed"
///    set) are rescored with the engine's own delta-adjustment arithmetic
///    (DeltaIndex::AdjustedProb on a monolith; summed per-shard
///    AdjustedShardDf/AdjustedShardCodf supports on a fleet) and merged
///    into S. The first k of S equal a fresh re-mine's top-k whenever
///    S[k-1] ranks at or above B (no outside phrase can rank above the
///    k-th published entry) -- the proof sketch is in
///    docs/subscriptions.md.
///  * Only when that bound is inconclusive (the floor sank below B) does
///    an exact subscription fall back to a scoped re-mine at k + pad,
///    counted in subscribe_remine_total so the incremental hit-rate is
///    observable. Best-effort subscriptions publish anyway, flagged
///    approximate.
///
/// Exactness requires full SMJ lists: Subscribe fails with
/// FailedPrecondition when the engine's id-ordered lists are truncated
/// (smj_fraction < 1). Rebuild / RefreshDictionary events invalidate all
/// derived state (PhraseIds may be reassigned) and trigger re-mines.
///
/// Threading: Subscribe/Unsubscribe/Poll/Snapshot/Flush are safe from any
/// thread, concurrently with engine ingest, mines and rebuilds. The
/// manager must be destroyed before its engine; destruction detaches the
/// listener first, so no callback can outlive it.
class SubscriptionManager {
 public:
  using Options = SubscriptionManagerOptions;

  /// Attaches to a monolithic engine (installs its update listener and
  /// starts the worker). The engine must outlive the manager and must not
  /// have another update listener.
  explicit SubscriptionManager(MiningEngine* engine, Options options = {});

  /// Attaches to a sharded fleet; per-shard deltas arrive pre-merged
  /// under the global PhraseId space (ShardedUpdateEvent).
  explicit SubscriptionManager(ShardedEngine* engine, Options options = {});

  ~SubscriptionManager();

  SubscriptionManager(const SubscriptionManager&) = delete;
  SubscriptionManager& operator=(const SubscriptionManager&) = delete;

  /// Registers a standing query and returns its id. The initial top-k is
  /// mined asynchronously (the bootstrap publish arrives with
  /// SubscriptionUpdate::initial set; Flush() forces it through). Fails
  /// with InvalidArgument for an empty term set / k = 0 / unknown terms,
  /// FailedPrecondition when exactness cannot be guaranteed (truncated
  /// SMJ lists).
  Result<uint64_t> Subscribe(const SubscriptionRequest& request);

  /// Deregisters; pending notifications are discarded. NotFound for
  /// unknown ids.
  Status Unsubscribe(uint64_t id);

  /// Drains up to max_updates pending notifications, blocking up to
  /// wait_ms (0 = non-blocking) for the first one. Returns an empty
  /// vector on timeout; NotFound for unknown ids.
  Result<std::vector<SubscriptionUpdate>> Poll(uint64_t id,
                                               std::size_t max_updates = 16,
                                               double wait_ms = 0.0);

  /// The subscription's current published top-k (see SubscriptionState).
  Result<SubscriptionState> Snapshot(uint64_t id) const;

  /// Blocks until every event and bootstrap enqueued so far has been
  /// fully processed (tests call Ingest -> Flush -> Snapshot to compare
  /// against a fresh mine at the same epoch).
  void Flush();

  std::size_t num_subscriptions() const;

  /// Trace of the most recently processed batch (Options::trace only;
  /// null otherwise): one child span per re-mined subscription plus
  /// aggregate rescore counters.
  std::shared_ptr<const TraceSpan> LastBatchTrace() const;

 private:
  /// Rank comparator shared by every shadow-set decision: higher score
  /// first, ties to the smaller PhraseId -- exactly TopKCollector's
  /// ordering, so shadow order is mine order.
  static bool RanksBetter(double score_a, PhraseId a, double score_b,
                          PhraseId b) {
    if (score_a != score_b) return score_a > score_b;
    return a < b;
  }

  /// One queued message: an engine update event or a control command.
  /// Control commands (bootstrap, i.e. "mine the initial state of
  /// subscription `subscription`") are never dropped; data events are
  /// subject to Options::event_capacity.
  struct Msg {
    enum class Kind { kMonoEvent, kShardedEvent, kBootstrap };
    Kind kind = Kind::kBootstrap;
    UpdateEvent mono;
    ShardedUpdateEvent sharded;
    uint64_t subscription = 0;
  };

  struct Sub;

  /// Per-(shard, term) cached base list in id order, tagged with the
  /// structure version it was read at. Worker-only.
  struct CachedList {
    uint64_t version = 0;
    SharedWordList id_ordered;
  };

  /// Outcome of rescoring one phrase under one batch's deltas.
  struct Rescored {
    bool qualifies = false;
    double score = 0.0;
    double interestingness = 0.0;
  };

  void Attach();
  void EnqueueEvent(Msg msg);
  void WorkerLoop();
  void Handle(Msg& msg, bool events_lost);
  void ProcessDataEvent(Msg& msg, bool events_lost);
  /// Incremental maintenance of one subscription under one batch; returns
  /// false when the publish bound was inconclusive under an exact
  /// guarantee (caller re-mines).
  bool IncrementalStep(Sub& sub, const Msg& msg,
                       const std::vector<uint64_t>& event_vec);
  /// Scoped full re-mine (bootstrap or fallback); cancelled mines are not
  /// installed and leave the subscription dirty.
  void Remine(Sub& sub, const CancelToken* cancel, bool bootstrap,
              TraceSpan* span);
  /// Exact rescore of `touched` under the event's deltas, in touched
  /// order; `ok` turns false when the engine's structures moved past the
  /// event (caller re-mines).
  std::vector<Rescored> RescoreTouched(const Sub& sub, const Msg& msg,
                                       const std::vector<PhraseId>& touched,
                                       bool* ok);
  /// Base list probability of (shard, term, phrase); 0.0 when absent.
  double BaseProb(std::size_t shard, TermId term, PhraseId phrase) const;
  /// Refreshes the (shard, term) cached lists at `version`; false when
  /// the engine is no longer at that structure version.
  bool EnsureBaseLists(std::size_t shard, const std::vector<TermId>& terms,
                       uint64_t version);
  void Publish(Sub& sub, bool exact, bool initial);

  Options options_;
  MiningEngine* mono_ = nullptr;
  ShardedEngine* sharded_ = nullptr;

  // Cached metric handles (stable pointers; see MetricsRegistry).
  Gauge* subscriptions_gauge_ = nullptr;
  Counter* batches_total_ = nullptr;
  Counter* incremental_total_ = nullptr;
  Counter* remine_total_ = nullptr;
  Counter* notifications_total_ = nullptr;
  Counter* dropped_total_ = nullptr;
  Counter* events_dropped_total_ = nullptr;
  Counter* fanout_deadline_total_ = nullptr;
  Counter* touched_total_ = nullptr;

  /// Guards subs_, next_id_ and every Sub's published state and
  /// notification queue; subs_cv_ wakes Poll waiters.
  mutable std::mutex subs_mu_;
  std::condition_variable subs_cv_;
  std::map<uint64_t, std::shared_ptr<Sub>> subs_;
  uint64_t next_id_ = 1;

  /// Guards the event queue and the drain bookkeeping. The engine's
  /// ingest thread only ever takes this mutex (briefly, to enqueue);
  /// subscription work never runs on it.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drain_cv_;
  std::deque<Msg> queue_;
  bool events_lost_ = false;
  bool processing_ = false;
  bool shutdown_ = false;

  // Worker-only state (no locks needed).
  std::unordered_map<uint64_t, CachedList> base_lists_;  // (shard<<32)|term
  std::vector<uint64_t> prev_event_vec_;
  bool prev_event_valid_ = false;

  /// Last processed batch's trace root (Options::trace only), swapped in
  /// whole under subs_mu_.
  std::shared_ptr<TraceSpan> last_batch_trace_;

  std::thread worker_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_SUBSCRIBE_SUBSCRIPTION_MANAGER_H_
