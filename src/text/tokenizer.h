#ifndef PHRASEMINE_TEXT_TOKENIZER_H_
#define PHRASEMINE_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace phrasemine {

/// Splits raw text into lowercase word tokens. Characters outside
/// [a-zA-Z0-9'] terminate a token; apostrophes are kept inside words
/// ("taiwan's") but stripped at token edges. This mirrors the simple
/// whitespace/punctuation tokenization used by the corpora in the paper.
class Tokenizer {
 public:
  Tokenizer() = default;

  /// Tokenizes `text` and appends the tokens to `out`.
  void Tokenize(std::string_view text, std::vector<std::string>* out) const;

  /// Convenience overload returning a fresh vector.
  std::vector<std::string> Tokenize(std::string_view text) const;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_TEXT_TOKENIZER_H_
