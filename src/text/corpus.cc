#include "text/corpus.h"

#include "common/check.h"
#include "text/tokenizer.h"

namespace phrasemine {

DocId Corpus::AddText(std::string_view text) {
  Tokenizer tokenizer;
  return AddTokenized(tokenizer.Tokenize(text));
}

DocId Corpus::AddTokenized(const std::vector<std::string>& tokens,
                           const std::vector<std::string>& facets) {
  Document doc;
  doc.tokens.reserve(tokens.size());
  for (const std::string& t : tokens) {
    doc.tokens.push_back(vocab_.Intern(t));
  }
  doc.facets.reserve(facets.size());
  for (const std::string& f : facets) {
    doc.facets.push_back(vocab_.Intern(f));
  }
  return AddDocument(std::move(doc));
}

DocId Corpus::AddDocument(Document doc) {
  const DocId id = static_cast<DocId>(docs_.size());
  docs_.push_back(std::move(doc));
  return id;
}

const Document& Corpus::doc(DocId id) const {
  PM_CHECK(id < docs_.size());
  return docs_[id];
}

uint64_t Corpus::TotalTokens() const {
  uint64_t total = 0;
  for (const Document& d : docs_) {
    total += d.tokens.size();
  }
  return total;
}

void Corpus::Serialize(BinaryWriter* writer) const {
  vocab_.Serialize(writer);
  SerializeDocs(writer);
}

void Corpus::SerializeDocs(BinaryWriter* writer) const {
  writer->PutU32(static_cast<uint32_t>(docs_.size()));
  for (const Document& d : docs_) {
    writer->PutU32Vector(d.tokens);
    writer->PutU32Vector(d.facets);
  }
}

Status Corpus::DeserializeDocs(BinaryReader* reader, Corpus* corpus) {
  uint32_t n = 0;
  Status s = reader->GetU32(&n);
  if (!s.ok()) return s;
  corpus->docs_.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    s = reader->GetU32Vector(&corpus->docs_[i].tokens);
    if (!s.ok()) return s;
    s = reader->GetU32Vector(&corpus->docs_[i].facets);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Result<Corpus> Corpus::Deserialize(BinaryReader* reader) {
  Result<Vocabulary> vocab = Vocabulary::Deserialize(reader);
  if (!vocab.ok()) return vocab.status();
  Corpus corpus;
  corpus.vocab_ = std::move(vocab.value());
  Status s = DeserializeDocs(reader, &corpus);
  if (!s.ok()) return s;
  return corpus;
}

Status Corpus::SaveToFile(const std::string& path) const {
  BinaryWriter writer;
  Serialize(&writer);
  return writer.WriteToFile(path);
}

Result<Corpus> Corpus::LoadFromFile(const std::string& path) {
  Result<BinaryReader> reader = BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  return Deserialize(&reader.value());
}

}  // namespace phrasemine
