#ifndef PHRASEMINE_TEXT_CORPUS_H_
#define PHRASEMINE_TEXT_CORPUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/io_util.h"
#include "common/status.h"
#include "text/types.h"
#include "text/vocabulary.h"

namespace phrasemine {

/// A document is its token-id sequence plus optional metadata facet terms.
/// Facet terms participate in querying exactly like words (Table 1 of the
/// paper) but do not participate in phrase extraction.
struct Document {
  std::vector<TermId> tokens;
  std::vector<TermId> facets;
};

/// The static corpus D: an append-only set of tokenized documents sharing a
/// vocabulary. Mining structures (indexes, dictionaries) are built over a
/// frozen Corpus; incremental updates are layered on via core/DeltaIndex.
class Corpus {
 public:
  Corpus() = default;

  // Movable but not copyable: corpora can be hundreds of megabytes.
  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;
  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;

  /// Tokenizes and appends a raw-text document; returns its DocId.
  DocId AddText(std::string_view text);

  /// Appends a document with pre-tokenized words and facet strings.
  DocId AddTokenized(const std::vector<std::string>& tokens,
                     const std::vector<std::string>& facets = {});

  /// Appends a document that already uses this corpus's term ids.
  DocId AddDocument(Document doc);

  /// Number of documents (|D|).
  std::size_t size() const { return docs_.size(); }

  const Document& doc(DocId id) const;

  Vocabulary& vocab() { return vocab_; }
  const Vocabulary& vocab() const { return vocab_; }

  /// Total token count across all documents.
  uint64_t TotalTokens() const;

  /// Serialization to/from the library's binary format.
  void Serialize(BinaryWriter* writer) const;
  static Result<Corpus> Deserialize(BinaryReader* reader);

  /// Document-only halves of Serialize/Deserialize, without the leading
  /// vocabulary. The index file stores the vocabulary and the documents as
  /// separate sections (the vocabulary is also needed alone, e.g. by a
  /// sharded manifest), so each half must be addressable on its own;
  /// Serialize remains SerializeVocab-then-SerializeDocs.
  void SerializeDocs(BinaryWriter* writer) const;
  static Status DeserializeDocs(BinaryReader* reader, Corpus* corpus);

  /// Replaces the vocabulary (used when assembling a corpus from separate
  /// vocabulary and document sections).
  void SetVocab(Vocabulary vocab) { vocab_ = std::move(vocab); }

  /// Convenience wrappers over Serialize/Deserialize for files.
  Status SaveToFile(const std::string& path) const;
  static Result<Corpus> LoadFromFile(const std::string& path);

 private:
  Vocabulary vocab_;
  std::vector<Document> docs_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_TEXT_CORPUS_H_
