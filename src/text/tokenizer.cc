#include "text/tokenizer.h"

#include <cctype>

namespace phrasemine {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '\'';
}

}  // namespace

void Tokenizer::Tokenize(std::string_view text,
                         std::vector<std::string>* out) const {
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    while (i < n && !IsWordChar(text[i])) ++i;
    std::size_t start = i;
    while (i < n && IsWordChar(text[i])) ++i;
    if (i > start) {
      // Strip edge apostrophes, lowercase the rest.
      std::size_t b = start;
      std::size_t e = i;
      while (b < e && text[b] == '\'') ++b;
      while (e > b && text[e - 1] == '\'') --e;
      if (e > b) {
        std::string token;
        token.reserve(e - b);
        for (std::size_t j = b; j < e; ++j) {
          token.push_back(static_cast<char>(
              std::tolower(static_cast<unsigned char>(text[j]))));
        }
        out->push_back(std::move(token));
      }
    }
  }
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  Tokenize(text, &out);
  return out;
}

}  // namespace phrasemine
