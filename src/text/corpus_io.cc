#include "text/corpus_io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "text/tokenizer.h"

namespace phrasemine {

namespace {

std::vector<std::string> SplitFacets(const std::string& spec) {
  std::vector<std::string> facets;
  std::string current;
  for (char c : spec) {
    if (c == ',') {
      if (!current.empty()) facets.push_back(std::move(current));
      current.clear();
    } else if (c != ' ') {
      current.push_back(c);
    }
  }
  if (!current.empty()) facets.push_back(std::move(current));
  return facets;
}

}  // namespace

Corpus CorpusReader::FromPlainStream(std::istream& in) {
  Corpus corpus;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    corpus.AddText(line);
  }
  return corpus;
}

Corpus CorpusReader::FromFacetedStream(std::istream& in) {
  Corpus corpus;
  Tokenizer tokenizer;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      corpus.AddText(line);
      continue;
    }
    const std::vector<std::string> facets = SplitFacets(line.substr(0, tab));
    const std::vector<std::string> tokens =
        tokenizer.Tokenize(line.substr(tab + 1));
    corpus.AddTokenized(tokens, facets);
  }
  return corpus;
}

Result<Corpus> CorpusReader::FromPlainFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open corpus file: " + path);
  }
  return FromPlainStream(in);
}

Result<Corpus> CorpusReader::FromFacetedFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open corpus file: " + path);
  }
  return FromFacetedStream(in);
}

}  // namespace phrasemine
