#ifndef PHRASEMINE_TEXT_VOCABULARY_H_
#define PHRASEMINE_TEXT_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/io_util.h"
#include "common/status.h"
#include "text/types.h"

namespace phrasemine {

/// Bidirectional mapping between term strings (words and metadata facets)
/// and dense TermIds. The paper's set W of queryable features maps 1:1 onto
/// this vocabulary: metadata facets are interned like words, conventionally
/// spelled "facet:value" (e.g. "venue:sigmod").
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id of `term`, interning it if previously unseen.
  TermId Intern(std::string_view term);

  /// Returns the id of `term` or kInvalidTermId if it was never interned.
  TermId Lookup(std::string_view term) const;

  /// Returns the string for a valid term id.
  const std::string& TermText(TermId id) const;

  /// Number of distinct terms (|W| in the paper's notation).
  std::size_t size() const { return terms_.size(); }

  /// Serialization to/from the library's binary format.
  void Serialize(BinaryWriter* writer) const;
  static Result<Vocabulary> Deserialize(BinaryReader* reader);

 private:
  std::vector<std::string> terms_;
  std::unordered_map<std::string, TermId> ids_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_TEXT_VOCABULARY_H_
