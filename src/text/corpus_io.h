#ifndef PHRASEMINE_TEXT_CORPUS_IO_H_
#define PHRASEMINE_TEXT_CORPUS_IO_H_

#include <istream>
#include <string>

#include "common/status.h"
#include "text/corpus.h"

namespace phrasemine {

/// Loaders for external document collections. Two plain-text layouts are
/// supported, both one document per line:
///
///  * plain:  the whole line is the document body;
///  * faceted: "facet1,facet2<TAB>body" -- everything before the first tab
///    is a comma-separated facet list ("topic:trade,year:1987"), matching
///    the metadata model of Table 1 in the paper.
///
/// Blank lines are skipped. Tokenization is the library's standard
/// Tokenizer (lowercased word tokens).
class CorpusReader {
 public:
  /// Reads a plain one-document-per-line stream.
  static Corpus FromPlainStream(std::istream& in);

  /// Reads a faceted "facets<TAB>body" stream; lines without a tab are
  /// treated as facet-less documents.
  static Corpus FromFacetedStream(std::istream& in);

  /// File wrappers around the stream loaders.
  static Result<Corpus> FromPlainFile(const std::string& path);
  static Result<Corpus> FromFacetedFile(const std::string& path);
};

}  // namespace phrasemine

#endif  // PHRASEMINE_TEXT_CORPUS_IO_H_
